// E5 — §7.7/§8.2: "By deferring the creation of backup processes for as
// long as possible ... we assure that the overhead is limited. In many
// cases, short lived processes will not have to have a backup process or a
// backup page account."
//
// A parent forks a burst of children; children live `spin` instructions and
// exit. With the default (deferred) policy, backups for children that die
// before their first sync are never created; an eager policy (sync
// immediately via a tiny time trigger) pays for every child. Reported:
//   children          processes forked
//   backups_created   backup PCBs actually materialized
//   birth_notices     (cheap) fork announcements — always one per fork
//   shipped_kb        state shipped for backup maintenance
//   sim_ms            completion time

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

Executable ForkBurst(int children, int child_spin) {
  // Parent forks `children` kids; each kid spins then exits; parent exits.
  return MustAssemble(R"(
start:
    li r7, 0
fork_loop:
    sys fork
    li r12, 0
    beq r0, r12, child
    addi r7, r7, 1
    li r12, )" + std::to_string(children) + R"(
    blt r7, r12, fork_loop
    exit 0
child:
    li r9, 0
spin:
    addi r9, r9, 1
    li r11, )" + std::to_string(child_spin) + R"(
    blt r9, r11, spin
    exit 0
)");
}

void RunBurst(benchmark::State& state, bool eager) {
  const int children = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MachineOptions options;
    options.config.num_clusters = 2;
    if (eager) {
      options.config.sync_time_limit_us = 200;  // first sync almost at birth
    }
    Machine machine(options);
    machine.Boot();
    SimTime workload_start = machine.Now();
    Machine::UserSpawnOptions w;
    w.backup_cluster = 0;
    machine.SpawnUserProgram(1, ForkBurst(children, 2000), w);
    bool done = machine.RunUntil(
        [&] { return machine.exit_statuses().size() >= static_cast<size_t>(children + 1); },
        3'000'000'000ull);
    SimTime done_at = machine.Now();
    machine.Settle();
    AURAGEN_CHECK(done);

    const Metrics& m = machine.metrics();
    state.counters["children"] = children;
    state.counters["backups_created"] = static_cast<double>(m.backups_created);
    state.counters["birth_notices"] = static_cast<double>(m.birth_notices);
    state.counters["shipped_kb"] =
        static_cast<double>(m.sync_bytes_shipped + m.backup_create_bytes) / 1024.0;
    state.counters["sim_ms"] = static_cast<double>(done_at - workload_start) / 1000.0;
  }
}

void BM_DeferredBackups(benchmark::State& s) { RunBurst(s, /*eager=*/false); }
void BM_EagerBackups(benchmark::State& s) { RunBurst(s, /*eager=*/true); }

BENCHMARK(BM_DeferredBackups)->Arg(4)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EagerBackups)->Arg(4)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
