// E6 — §5.1/§7.1: the dual intercluster bus provides serialized atomic
// multicast; a frame costs one transmission regardless of destination count,
// and failover to the second line costs a bounded timeout.
//
// Pure bus-level microbenchmarks (no kernels). Reported:
//   frames_per_sim_s   multicast throughput at a given cluster count
//   us_per_frame       simulated service time per frame
//   deliveries         per-destination deliveries performed
//   failover pass:     added latency when line 0 is down

#include <benchmark/benchmark.h>

#include "src/bus/intercluster_bus.h"
#include "src/sim/engine.h"

namespace auragen::bench {
namespace {

struct NullEndpoint : BusEndpoint {
  uint64_t received = 0;
  void OnFrame(const Frame&) override { ++received; }
};

void BM_MulticastThroughput(benchmark::State& state) {
  const uint32_t clusters = static_cast<uint32_t>(state.range(0));
  const int frames = 2000;
  for (auto _ : state) {
    Engine engine;
    InterclusterBus bus(engine, BusConfig{}, clusters);
    std::vector<NullEndpoint> endpoints(clusters);
    for (ClusterId c = 0; c < clusters; ++c) {
      bus.AttachEndpoint(c, &endpoints[c]);
    }
    ClusterMask all = 0;
    for (ClusterId c = 0; c < clusters; ++c) {
      all |= MaskOf(c);
    }
    for (int i = 0; i < frames; ++i) {
      // Three-destination pattern: primary dst, dst backup, sender backup.
      ClusterMask mask = clusters <= 3 ? all
                                       : (MaskOf(i % clusters) |
                                          MaskOf((i + 1) % clusters) |
                                          MaskOf((i + 2) % clusters));
      bus.Transmit(i % clusters, mask, Bytes(64, 0));
    }
    engine.Run();
    double sim_s = static_cast<double>(engine.Now()) / 1e6;
    state.counters["frames_per_sim_s"] = frames / sim_s;
    state.counters["us_per_frame"] = static_cast<double>(engine.Now()) / frames;
    state.counters["deliveries"] = static_cast<double>(bus.stats().deliveries);
  }
}

void BM_PayloadSizeSweep(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    InterclusterBus bus(engine, BusConfig{}, 4);
    std::vector<NullEndpoint> endpoints(4);
    for (ClusterId c = 0; c < 4; ++c) {
      bus.AttachEndpoint(c, &endpoints[c]);
    }
    const int frames = 500;
    for (int i = 0; i < frames; ++i) {
      bus.Transmit(0, MaskOf(1) | MaskOf(2) | MaskOf(3), Bytes(bytes, 0));
    }
    engine.Run();
    state.counters["us_per_frame"] = static_cast<double>(engine.Now()) / frames;
    state.counters["mb_per_sim_s"] =
        static_cast<double>(bus.stats().bytes_sent) / static_cast<double>(engine.Now());
  }
}

void BM_LineFailover(benchmark::State& state) {
  const bool fail = state.range(0) != 0;
  for (auto _ : state) {
    Engine engine;
    InterclusterBus bus(engine, BusConfig{}, 2);
    NullEndpoint a;
    NullEndpoint b;
    bus.AttachEndpoint(0, &a);
    bus.AttachEndpoint(1, &b);
    if (fail) {
      bus.FailLine(0);
    }
    const int frames = 200;
    for (int i = 0; i < frames; ++i) {
      bus.Transmit(0, MaskOf(1), Bytes(64, 0));
    }
    engine.Run();
    state.counters["us_per_frame"] = static_cast<double>(engine.Now()) / frames;
    state.counters["failovers"] = static_cast<double>(bus.stats().failovers);
  }
}

BENCHMARK(BM_MulticastThroughput)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PayloadSizeSweep)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LineFailover)->Arg(0)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
