// E9 — §3.2 + Fig. §7.1: "The system should ... maximize the productive use
// of hardware during normal execution. A solution which requires the
// dedication of substantial system resources solely for the support of
// fault tolerance is therefore unacceptable."
//
// A fixed batch of compute jobs is spread across the clusters under three
// regimes: inactive backups (the paper), lockstep active replication (the
// §2 Stratus-style baseline: every job runs twice), and no FT. Reported:
//   jobs_done_per_sim_s   useful completions per simulated second
//   sim_ms                batch completion time
//   capacity_vs_none      throughput normalized to the no-FT run
//
// Expected shape: msgsys ≈ none (duplicate hardware runs *other* primaries);
// lockstep ≈ half of none (duplicate hardware re-runs the same work).

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"
#include "src/baselines/lockstep.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

constexpr int kJobsPerCluster = 6;
constexpr int kJobSpin = 40'000;

double RunBatch(uint32_t clusters, FtStrategy strategy, bool lockstep) {
  MachineOptions options;
  options.config.num_clusters = clusters;
  options.config.strategy = strategy;
  Machine machine(options);
  machine.Boot();
    SimTime workload_start = machine.Now();
  const int jobs = static_cast<int>(clusters) * kJobsPerCluster;
  std::vector<LockstepPair> pairs;
  for (int i = 0; i < jobs; ++i) {
    ClusterId c = static_cast<ClusterId>(i % clusters);
    if (lockstep) {
      pairs.push_back(SpawnLockstep(machine, c, (c + 1) % clusters,
                                    ComputeJob(kJobSpin), Machine::UserSpawnOptions{}));
    } else {
      Machine::UserSpawnOptions o;
      o.backup_cluster = (c + 1) % clusters;
      machine.SpawnUserProgram(c, ComputeJob(kJobSpin), o);
    }
  }
  bool done = machine.RunUntilAllExited(3'000'000'000ull);
  AURAGEN_CHECK(done);
  double sim_s = static_cast<double>(machine.Now() - workload_start) / 1e6;
  return jobs / sim_s;  // useful completions per simulated second
}

void BM_Capacity(benchmark::State& state, FtStrategy strategy, bool lockstep) {
  const uint32_t clusters = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    double rate = RunBatch(clusters, strategy, lockstep);
    double none_rate = RunBatch(clusters, FtStrategy::kNone, false);
    state.counters["jobs_per_sim_s"] = rate;
    state.counters["capacity_vs_none"] = rate / none_rate;
  }
}

void BM_InactiveBackups(benchmark::State& s) {
  BM_Capacity(s, FtStrategy::kMessageSystem, false);
}
void BM_Lockstep(benchmark::State& s) { BM_Capacity(s, FtStrategy::kNone, true); }
void BM_NoFt(benchmark::State& s) { BM_Capacity(s, FtStrategy::kNone, false); }

BENCHMARK(BM_InactiveBackups)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lockstep)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoFt)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
