// E2 — §2: explicit checkpointing "slows down the primary process and uses
// up a large portion of the added computing power", which the message-based
// strategy replaces with cheap asynchronous syncs.
//
// A stateful worker (reads a tick per round, touches `pages` pages per
// round) runs to completion under four strategies. Reported:
//   sim_ms           simulated completion time (primary slowdown)
//   stall_ms         time the primary stood still for FT bookkeeping
//   shipped_kb       state bytes pushed for backup maintenance
//   slowdown_vs_none completion time normalized to the no-FT run
//
// Expected shape: msgsys within a few percent of none; checkpoint-full far
// slower and growing with state size; incremental in between.

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

double BaselineSimMs(int pages) {
  static std::map<int, double> cache;
  auto it = cache.find(pages);
  if (it != cache.end()) {
    return it->second;
  }
  MachineOptions options;
  options.config.num_clusters = 2;
  options.config.strategy = FtStrategy::kNone;
  Machine machine(options);
  machine.Boot();
    SimTime workload_start = machine.Now();
  Machine::UserSpawnOptions w;
  w.backup_cluster = 0;
  machine.SpawnUserProgram(1, StatefulWorker("w", 40, 3000, pages), w);
  machine.SpawnUserProgram(0, Feeder("w", 40, 50), Machine::UserSpawnOptions{});
  AURAGEN_CHECK(machine.RunUntilAllExited(3'000'000'000ull));
  double ms = static_cast<double>(machine.Now() - workload_start) / 1000.0;
  cache[pages] = ms;
  return ms;
}

void RunStrategy(benchmark::State& state, FtStrategy strategy) {
  const int pages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MachineOptions options;
    options.config.num_clusters = 2;
    options.config.strategy = strategy;
    // Equalize trigger cadence across strategies: every 8 reads.
    options.config.sync_reads_limit = 8;
    Machine machine(options);
    machine.Boot();
    SimTime workload_start = machine.Now();
    Machine::UserSpawnOptions w;
    w.backup_cluster = 0;
    machine.SpawnUserProgram(1, StatefulWorker("w", 40, 3000, pages), w);
    machine.SpawnUserProgram(0, Feeder("w", 40, 50), Machine::UserSpawnOptions{});
    bool done = machine.RunUntilAllExited(3'000'000'000ull);
    SimTime done_at = machine.Now();
    machine.Settle();
    AURAGEN_CHECK(done) << "worker stalled";

    const Metrics& m = machine.metrics();
    double sim_ms = static_cast<double>(done_at - workload_start) / 1000.0;
    state.counters["sim_ms"] = sim_ms;
    state.counters["stall_ms"] =
        static_cast<double>(m.sync_primary_stall_us + m.checkpoint_stall_us) / 1000.0;
    state.counters["shipped_kb"] =
        static_cast<double>(m.sync_bytes_shipped + m.checkpoint_bytes) / 1024.0;
    state.counters["slowdown_vs_none"] = sim_ms / BaselineSimMs(pages);
  }
}

void BM_MessageSystem(benchmark::State& s) { RunStrategy(s, FtStrategy::kMessageSystem); }
void BM_CheckpointFull(benchmark::State& s) { RunStrategy(s, FtStrategy::kCheckpointFull); }
void BM_CheckpointIncr(benchmark::State& s) {
  RunStrategy(s, FtStrategy::kCheckpointIncremental);
}
void BM_NoFt(benchmark::State& s) { RunStrategy(s, FtStrategy::kNone); }

#define SWEEP ->Arg(2)->Arg(16)->Arg(64)->Iterations(1)->Unit(benchmark::kMillisecond)
BENCHMARK(BM_MessageSystem) SWEEP;
BENCHMARK(BM_CheckpointFull) SWEEP;
BENCHMARK(BM_CheckpointIncr) SWEEP;
BENCHMARK(BM_NoFt) SWEEP;

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
