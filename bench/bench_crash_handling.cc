// E8 — §8.4/§7.10: "Processes unaffected by the crash ... may begin to
// execute before all crash handling has been completed"; crash handling
// scales with routing-table size but unaffected work resumes quickly.
//
// N worker pairs spread over 4 clusters; one cluster is crashed. Reported:
//   detect_ms         crash -> detection (heartbeat timeout, §7.10)
//   first_dispatch_ms detection -> first unaffected process back on a CPU
//   handled_ms        detection -> crash handling complete (tables patched,
//                     backups runnable)
//   takeovers         processes recovered

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

void BM_CrashHandlingScale(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MachineOptions options;
    options.config.num_clusters = 4;
    Machine machine(options);
    machine.Boot();
    SimTime workload_start = machine.Now();
    (void)workload_start;
    for (int i = 0; i < pairs; ++i) {
      std::string tag = "p" + std::to_string(i);
      ClusterId a = static_cast<ClusterId>(i % 4);
      ClusterId b = static_cast<ClusterId>((i + 2) % 4);
      Machine::UserSpawnOptions ao;
      ao.backup_cluster = (a + 1) % 4;
      Machine::UserSpawnOptions bo;
      bo.backup_cluster = (b + 1) % 4;
      machine.SpawnUserProgram(a, Pinger(tag, 5000), ao);
      machine.SpawnUserProgram(b, Ponger(tag, 5000), bo);
    }
    machine.Run(50'000);
    SimTime crash_time = machine.Now();
    machine.CrashCluster(3);
    machine.Run(3'000'000);

    const Metrics& m = machine.metrics();
    state.counters["detect_ms"] =
        static_cast<double>(m.last_crash_detected_at - crash_time) / 1000.0;
    state.counters["first_dispatch_ms"] =
        static_cast<double>(m.last_recovery_first_dispatch_at - m.last_crash_detected_at) /
        1000.0;
    state.counters["handled_ms"] =
        static_cast<double>(m.last_recovery_complete_at - m.last_crash_detected_at) / 1000.0;
    state.counters["takeovers"] = static_cast<double>(m.takeovers);
    state.counters["replayed"] = static_cast<double>(m.rollforward_msgs_replayed);
  }
}

BENCHMARK(BM_CrashHandlingScale)->Arg(2)->Arg(8)->Arg(24)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
