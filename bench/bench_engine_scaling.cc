// E11 — parallel engine scaling (DESIGN.md §16): events/s of the sharded
// conservative-window engine versus worker-thread count, on machine-shaped
// topologies (8 and 32 clusters, shard 0 = shared bus).
//
//   events_per_s   dispatched simulation events per wall-clock second
//   threads        worker threads driving the windows
//   digest_ok      1 iff this run's trace digest is bit-identical to the
//                  sequential (threads=1) run of the same topology/seed
//
// Every row re-checks the determinism oracle: a parallel engine that is
// fast but drifts from the sequential digest is a broken engine, not a fast
// one, and the row aborts. Wall-clock speedup needs real cores — on a
// single-core runner threads>1 rows measure synchronization overhead, which
// is itself worth tracking — so the baseline gates each row against its own
// history rather than asserting cross-row ratios.

#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "src/base/check.h"
#include "src/sim/cluster_model.h"
#include "src/sim/sharded_engine.h"
#include "src/trace/trace.h"

namespace auragen::bench {
namespace {

constexpr SimTime kHorizonUs = 60'000;
constexpr uint64_t kSeed = 1;

struct RunResult {
  uint64_t dispatched = 0;
  uint64_t fingerprint = 0;
  uint64_t digest_hash = 0;
  uint64_t digest_count = 0;
};

RunResult RunModel(uint32_t clusters, uint32_t threads) {
  ShardedEngineOptions seo;
  seo.num_shards = 1 + clusters;
  seo.threads = threads;
  seo.lookahead_us = 2;
  ShardedEngine engine(seo);
  TraceOptions to;
  to.enabled = true;
  to.unbounded = false;  // flight-recorder ring: digest covers everything
  to.ring_capacity = 1024;
  Tracer tracer(to);
  engine.set_tracer(&tracer);
  ClusterModelOptions cmo;
  cmo.clusters = clusters;
  cmo.seed = kSeed;
  cmo.horizon_us = kHorizonUs;
  ClusterModel model(engine, cmo);
  model.Install();
  RunResult r;
  r.dispatched = engine.Run();
  r.fingerprint = model.Fingerprint();
  r.digest_hash = tracer.digest().hash;
  r.digest_count = tracer.digest().count;
  return r;
}

// Sequential reference per topology, computed once (untimed) and shared by
// every thread-count row of that topology.
const RunResult& Reference(uint32_t clusters) {
  static std::map<uint32_t, RunResult> refs;
  auto it = refs.find(clusters);
  if (it == refs.end()) {
    it = refs.emplace(clusters, RunModel(clusters, 1)).first;
  }
  return it->second;
}

void BM_EngineScaling(benchmark::State& state) {
  const uint32_t clusters = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const RunResult& want = Reference(clusters);

  uint64_t dispatched = 0;
  RunResult got;
  for (auto _ : state) {
    got = RunModel(clusters, threads);
    dispatched += got.dispatched;
  }

  const bool digest_ok = got.fingerprint == want.fingerprint &&
                         got.digest_hash == want.digest_hash &&
                         got.digest_count == want.digest_count;
  if (!digest_ok) {
    state.SkipWithError("parallel run diverged from the sequential digest");
  }
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(dispatched), benchmark::Counter::kIsRate);
  state.counters["threads"] = threads;
  state.counters["digest_ok"] = digest_ok ? 1 : 0;
}

BENCHMARK(BM_EngineScaling)
    ->ArgNames({"clusters", "threads"})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
