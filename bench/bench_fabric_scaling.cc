// E13 — segmented fabric scaling (DESIGN.md §18): delivery latency and
// per-segment bus utilization of the switched multi-segment fabric versus
// the single shared bus, at 8 -> 256 clusters.
//
//   us_per_delivery    mean simulated send->deliver latency per destination
//   max_seg_busy_frac  the busiest segment bus's transmit-busy fraction of
//                      simulated time; on one segment this is THE bus, the
//                      saturation ceiling the fabric exists to break
//   trunk_forwards     segment-masked copies emitted by the trunk sequencer
//   digest_ok          1 iff the multi-threaded machine's trace digest is
//                      bit-identical to the sequential run (gated)
//
// The offered load scales with the cluster count while the injection window
// stays fixed, so the single-bus rows saturate as clusters grow and the
// segmented rows show sub-linear per-bus utilization growth: most traffic
// stays on its segment bus and only cross-segment multicasts pay the trunk.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/bus/fabric.h"
#include "src/machine/machine.h"
#include "src/sim/engine.h"
#include "src/workload/kv_service.h"

namespace auragen::bench {
namespace {

constexpr size_t kPayloadBytes = 128;
constexpr SimTime kInjectWindowUs = 100'000;
constexpr int kFramesPerCluster = 64;

// The send time rides in the payload head: unlike Frame::sent_at, which a
// forwarded copy reacquires when it re-enters the destination segment's
// arbitration, the payload is shared immutable end to end.
Bytes StampedPayload(SimTime now) {
  Bytes p(kPayloadBytes, 0);
  for (int i = 0; i < 8; ++i) {
    p[static_cast<size_t>(i)] = static_cast<uint8_t>(now >> (8 * i));
  }
  return p;
}

struct LatencyEndpoint : BusEndpoint {
  Engine* engine = nullptr;
  uint64_t received = 0;
  uint64_t latency_sum_us = 0;
  void OnFrame(const Frame& frame) override {
    SimTime sent = 0;
    for (int i = 0; i < 8; ++i) {
      sent |= static_cast<SimTime>((*frame.payload)[static_cast<size_t>(i)]) << (8 * i);
    }
    ++received;
    latency_sum_us += engine->Now() - sent;
  }
};

// Pure fabric run (no kernels): `clusters * kFramesPerCluster` three-target
// multicasts injected evenly across a fixed window, 3/4 segment-local and
// 1/4 spanning a remote segment — the paper's locality assumption that makes
// segmentation pay.
void BM_FabricDelivery(benchmark::State& state) {
  const uint32_t clusters = static_cast<uint32_t>(state.range(0));
  const uint32_t segments = static_cast<uint32_t>(state.range(1));
  const int frames = static_cast<int>(clusters) * kFramesPerCluster;

  for (auto _ : state) {
    Engine engine;
    const Topology topo =
        segments == 1 ? Topology::SingleSegment(clusters)
                      : Topology::Uniform(segments, clusters / segments);
    Fabric fabric(engine, topo);
    std::vector<LatencyEndpoint> endpoints(clusters);
    for (ClusterId c = 0; c < clusters; ++c) {
      endpoints[c].engine = &engine;
      fabric.AttachEndpoint(c, &endpoints[c]);
    }

    Rng rng(0x9e3779b9u + clusters * 8 + segments);
    for (int i = 0; i < frames; ++i) {
      const SimTime at =
          1 + (static_cast<SimTime>(i) * kInjectWindowUs) / static_cast<SimTime>(frames);
      const ClusterId src = static_cast<ClusterId>(rng.Below(clusters));
      const SegmentId seg = topo.segment_of(src);
      const ClusterId base = topo.segment_base(seg);
      const uint32_t size = topo.segment_size(seg);
      ClusterMask mask;
      if (segments == 1 || !rng.Chance(0.25)) {
        mask = MaskOf(base + static_cast<ClusterId>(rng.Below(size))) |
               MaskOf(base + static_cast<ClusterId>(rng.Below(size)));
      } else {
        mask = MaskOf(static_cast<ClusterId>(rng.Below(clusters))) |
               MaskOf(static_cast<ClusterId>(rng.Below(clusters)));
      }
      mask |= MaskOf((src + 1) % clusters);  // the sender's-backup leg
      engine.ScheduleAt(at, [&engine, &fabric, src, mask] {
        fabric.Transmit(src, mask, StampedPayload(engine.Now()));
      });
    }
    engine.Run();

    uint64_t deliveries = 0;
    uint64_t latency_sum = 0;
    for (const auto& e : endpoints) {
      deliveries += e.received;
      latency_sum += e.latency_sum_us;
    }
    double max_busy = 0;
    for (SegmentId s = 0; s < fabric.num_segments(); ++s) {
      max_busy = std::max(
          max_busy, static_cast<double>(fabric.segment_stats(s).busy_us));
    }
    state.counters["us_per_delivery"] =
        deliveries == 0 ? 0.0
                        : static_cast<double>(latency_sum) / static_cast<double>(deliveries);
    state.counters["max_seg_busy_frac"] =
        max_busy / static_cast<double>(engine.Now());
    state.counters["trunk_forwards"] = static_cast<double>(fabric.trunk_forwards());
    state.counters["deliveries"] = static_cast<double>(deliveries);
  }
}

// The single-bus baseline exists only up to the paper's 32-cluster machine
// (§7.1) — that ceiling is the point. Past it, only segmented rows exist:
// 64 = 2x32, 128 = 4x32, 256 = 8x32.
BENCHMARK(BM_FabricDelivery)
    ->ArgNames({"clusters", "segments"})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({64, 2})
    ->Args({128, 4})
    ->Args({256, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

struct RunResult {
  uint64_t dispatched = 0;
  uint64_t trunk_forwards = 0;
  uint64_t digest_hash = 0;
  uint64_t digest_count = 0;
};

// Full-machine run on a segmented topology: boot, deploy the KV workload,
// run to completion. Digest covers every traced event in merge order.
RunResult RunSegmentedMachine(uint32_t segments, uint32_t threads) {
  constexpr uint32_t kClusters = 16;
  MachineOptions mo;
  if (segments == 1) {
    mo.config.num_clusters = kClusters;
  } else {
    mo.WithTopology(Topology::Uniform(segments, kClusters / segments));
  }
  mo.seed = 1;
  mo.engine_threads = threads;
  mo.trace.enabled = true;
  mo.trace.unbounded = false;
  mo.trace.ring_capacity = 4096;
  Machine machine(mo);
  machine.Boot();
  workload::KvOptions kv;
  kv.sessions = kClusters * 4;
  kv.partitions = kClusters / 2;
  kv.requests_per_session = 8;
  kv.seed = 1;
  workload::KvDeployment d = workload::DeployKv(machine, kv);
  machine.RunUntil([&] { return workload::KvClientsDone(machine, d); },
                   600'000'000);
  RunResult r;
  r.dispatched = machine.dispatched();
  r.trunk_forwards = machine.bus().trunk_forwards();
  r.digest_hash = machine.tracer()->digest().hash;
  r.digest_count = machine.tracer()->digest().count;
  return r;
}

// Sequential reference per segment count, computed once (untimed) and shared
// by every thread-count row of that topology.
const RunResult& Reference(uint32_t segments) {
  static std::map<uint32_t, RunResult> refs;
  auto it = refs.find(segments);
  if (it == refs.end()) {
    it = refs.emplace(segments, RunSegmentedMachine(segments, 1)).first;
  }
  return it->second;
}

// The determinism oracle for the fabric on the ShardedEngine: each segment's
// bus and switch is its own shard, and the digest must be bit-identical at
// any thread count. A parallel fabric that drifts is broken, not fast.
void BM_FabricMachineDigest(benchmark::State& state) {
  const uint32_t segments = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const RunResult& want = Reference(segments);

  uint64_t dispatched = 0;
  RunResult got;
  for (auto _ : state) {
    got = RunSegmentedMachine(segments, threads);
    dispatched += got.dispatched;
  }

  const bool digest_ok =
      got.digest_hash == want.digest_hash && got.digest_count == want.digest_count;
  if (!digest_ok) {
    state.SkipWithError("parallel fabric diverged from the sequential digest");
  }
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(dispatched), benchmark::Counter::kIsRate);
  state.counters["trunk_forwards"] = static_cast<double>(got.trunk_forwards);
  state.counters["digest_ok"] = digest_ok ? 1 : 0;
}

BENCHMARK(BM_FabricMachineDigest)
    ->ArgNames({"segments", "threads"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
