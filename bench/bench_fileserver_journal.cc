// E14 — journaled, cache-backed file server (DESIGN.md §19): what group
// commit buys a write-heavy workload. Per-op commit (sync_every_ops=1)
// pays a full log-append + commit-record + home-migration round per write;
// group commit amortizes the same durability over a batch, and the buffer
// cache keeps re-read blocks off the device entirely.
//
//   ops_per_s        churner writes per simulated second
//   write_p99_us     client-observed p99 write latency (kRequestMark pairs)
//   queue_p99_us     p99 disk-queue wait behind the fs actuator
//   commits          durable commit records over the run
//   blocks_per_commit mean batch size a commit carried
//   speedup          group-commit sim-time speedup over per-op commit
//   digest_ok        1 iff machine-threads {2,4} reproduce the threads=1
//                    trace digest bit for bit
//
// Correctness is load-bearing: every run asserts zero read-back mismatches
// (the churners verify their own writes), and the speedup row AURAGEN_CHECKs
// the >= 2x claim — a journal that lost its batching would abort the bench,
// not just slow it down. Simulated counters are deterministic for the fixed
// seed, so check_bench.py gates write_p99_us and digest_ok (gated_counters)
// on top of the wall-clock gate.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/machine/machine.h"
#include "src/trace/analysis.h"
#include "src/workload/guest_programs.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

constexpr int kChurners = 3;
constexpr int kRecords = 40;

struct ChurnResult {
  SimTime sim_us = 0;           // workload start -> all exited
  uint64_t writes = 0;          // paired write marks
  SimTime write_p99_us = 0;
  SimTime queue_p99_us = 0;
  uint64_t commits = 0;
  double blocks_per_commit = 0;
  uint64_t digest_hash = 0;
  uint64_t digest_count = 0;
};

ChurnResult RunChurn(uint32_t sync_every_ops, uint32_t threads) {
  MachineOptions options;
  options.config.num_clusters = 2;
  options.seed = 1;
  options.engine_threads = threads;
  options.file_server.sync_every_ops = sync_every_ops;
  options.trace.enabled = true;
  options.trace.unbounded = true;
  options.trace.kind_mask = TraceKindBit(TraceEventKind::kRequestMark) |
                            TraceKindBit(TraceEventKind::kDiskQueueWait) |
                            TraceKindBit(TraceEventKind::kFsLogCommit);
  Machine machine(options);
  machine.Boot();
  SimTime start = machine.Now();
  std::vector<Gpid> pids;
  for (int i = 0; i < kChurners; ++i) {
    Machine::UserSpawnOptions w;
    w.backup_cluster = 1;
    pids.push_back(machine.SpawnUserProgram(
        0, FileChurner("jrnl" + std::to_string(i) + ".dat", kRecords, /*pace=*/2), w));
  }
  bool done = machine.RunUntilAllExited(3'000'000'000ull);
  SimTime done_at = machine.Now();
  machine.Settle();
  AURAGEN_CHECK(done);
  for (Gpid pid : pids) {
    AURAGEN_CHECK(machine.ExitStatus(pid) == 0) << "churner lost an acked write";
  }

  const TraceAnalysis a = AnalyzeTrace(machine.tracer()->Events());
  ChurnResult r;
  r.sim_us = done_at - start;
  r.writes = a.request_write_latency.count();
  r.write_p99_us = a.request_write_latency.p99();
  r.queue_p99_us = a.disk_queue_wait.p99();
  r.commits = a.fs_log_commits;
  r.blocks_per_commit = a.fs_commit_blocks.mean_us();
  r.digest_hash = machine.tracer()->digest().hash;
  r.digest_count = machine.tracer()->digest().count;
  return r;
}

void BM_JournalWriteThroughput(benchmark::State& state) {
  const uint32_t every = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    ChurnResult r = RunChurn(every, /*threads=*/1);
    state.counters["ops_per_s"] =
        r.sim_us > 0 ? static_cast<double>(r.writes) * 1e6 / static_cast<double>(r.sim_us)
                     : 0;
    state.counters["write_p99_us"] = static_cast<double>(r.write_p99_us);
    state.counters["queue_p99_us"] = static_cast<double>(r.queue_p99_us);
    state.counters["commits"] = static_cast<double>(r.commits);
    state.counters["blocks_per_commit"] = r.blocks_per_commit;
    state.counters["sim_ms"] = static_cast<double>(r.sim_us) / 1000.0;
  }
}

// The headline claim, asserted: group commit at the default interval is at
// least 2x faster (simulated completion time) than committing every op, on
// the same workload, with zero lost writes on either side.
void BM_JournalGroupCommitSpeedup(benchmark::State& state) {
  for (auto _ : state) {
    ChurnResult per_op = RunChurn(1, 1);
    ChurnResult grouped = RunChurn(16, 1);
    const double speedup =
        static_cast<double>(per_op.sim_us) / static_cast<double>(grouped.sim_us);
    AURAGEN_CHECK(speedup >= 2.0)
        << "group commit speedup collapsed: " << speedup << "x";
    state.counters["speedup"] = speedup;
    state.counters["perop_sim_ms"] = static_cast<double>(per_op.sim_us) / 1000.0;
    state.counters["grouped_sim_ms"] = static_cast<double>(grouped.sim_us) / 1000.0;
  }
}

// Determinism oracle: the same journaled workload at 2 and 4 shard-worker
// threads must reproduce the sequential trace digest bit for bit.
void BM_JournalDigest(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  ChurnResult want = RunChurn(16, 1);
  ChurnResult got;
  for (auto _ : state) {
    got = RunChurn(16, threads);
  }
  const bool digest_ok =
      got.digest_hash == want.digest_hash && got.digest_count == want.digest_count;
  if (!digest_ok) {
    state.SkipWithError("parallel run diverged from the sequential digest");
  }
  state.counters["digest_ok"] = digest_ok ? 1 : 0;
  state.counters["threads"] = threads;
}

BENCHMARK(BM_JournalWriteThroughput)->Arg(1)->Arg(4)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JournalGroupCommitSpeedup)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JournalDigest)->ArgName("threads")->Arg(2)->Arg(4)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
