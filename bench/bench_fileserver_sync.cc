// E7 — §7.9: the file server flushes its cache to the dual-ported disk at
// sync time, so "a substantial portion of the server's address space is
// available to its backup" via hardware rather than the message system —
// the explicit ServerSync message stays small.
//
// A writer appends records to a file; the file server's sync interval is
// swept. Reported:
//   disk_kb         state made durable via the dual-ported disk
//   syncmsg_kb      state shipped through the message system (ServerSync)
//   ratio           disk bytes per message byte (claim: >> 1)
//   commits         shadow-block superblock commits
//   sim_ms          completion time

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

Executable FileAppender(int writes) {
  return MustAssemble(R"(
start:
    li r1, fname
    li r2, 7
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, payload
    li r3, 96
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(writes) + R"(
    blt r8, r11, loop
    exit 0
.data
fname: .ascii "log.dat"
payload: .space 96
)");
}

void BM_FsSyncInterval(benchmark::State& state) {
  const uint32_t every = static_cast<uint32_t>(state.range(0));
  const int writes = 64;
  for (auto _ : state) {
    MachineOptions options;
    options.config.num_clusters = 2;
    options.file_server.sync_every_ops = every;
    Machine machine(options);
    machine.Boot();
    SimTime workload_start = machine.Now();
    Machine::UserSpawnOptions w;
    w.backup_cluster = 1;
    machine.SpawnUserProgram(0, FileAppender(writes), w);
    bool done = machine.RunUntilAllExited(3'000'000'000ull);
    SimTime done_at = machine.Now();
    machine.Settle();
    AURAGEN_CHECK(done);

    const Metrics& m = machine.metrics();
    double disk_kb = static_cast<double>(m.fileserver_disk_bytes) / 1024.0;
    double msg_kb = static_cast<double>(m.server_sync_bytes) / 1024.0;
    state.counters["disk_kb"] = disk_kb;
    state.counters["syncmsg_kb"] = msg_kb;
    state.counters["ratio"] = msg_kb > 0 ? disk_kb / msg_kb : 0;
    state.counters["server_syncs"] = static_cast<double>(m.server_syncs);
    state.counters["sim_ms"] = static_cast<double>(done_at - workload_start) / 1000.0;
  }
}

// Robustness claim of §7.9: a crash mid-stream never corrupts the committed
// filesystem — after takeover a reader sees a consistent prefix, then the
// recovered writer completes. Counter `consistent` is 1 when the post-crash
// read-back matches what the writer acked.
void BM_CrashDuringCommit(benchmark::State& state) {
  const SimTime crash_at = static_cast<SimTime>(state.range(0));
  for (auto _ : state) {
    MachineOptions options;
    options.config.num_clusters = 2;
    options.file_server.sync_every_ops = 8;
    Machine machine(options);
    machine.Boot();
    SimTime workload_start = machine.Now();
    Machine::UserSpawnOptions w;
    w.backup_cluster = 1;
    Gpid pid = machine.SpawnUserProgram(0, FileAppender(48), w);
    machine.CrashClusterAt(machine.Now() + crash_at, 0);
    bool done = machine.RunUntilAllExited(3'000'000'000ull);
    SimTime done_at = machine.Now();
    machine.Settle();
    state.counters["consistent"] = done && machine.ExitStatus(pid) == 0 ? 1 : 0;
    state.counters["sim_ms"] = static_cast<double>(done_at - workload_start) / 1000.0;
  }
}

BENCHMARK(BM_FsSyncInterval)->Arg(2)->Arg(8)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CrashDuringCommit)->Arg(30'000)->Arg(60'000)->Arg(90'000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
