// E10 — serving-workload SLO bench (DESIGN.md §15): what do checkpointing,
// sync, and failover do to *tail* latency under sustained closed-loop load?
// The microbenches (E1-E9) measure executive overhead per primitive; this
// one measures what a client of the replicated KV service actually observes:
//
//   p50_us / p99_us / p999_us   client-observed request latency (simulated)
//   goodput_rps                 verified completions per simulated second
//
// Three configurations, per the roadmap's serving north star:
//   BM_KvNoFault           incremental sync, no faults — the steady state
//   BM_KvIncrementalAsync  async page shipping — sync off the request path
//   BM_KvMidRunCrash       a cluster crash mid-run — failover tail cost
//
// Every run asserts the no-acked-write-lost invariant (mismatches == 0);
// a bench that loses writes is a broken bench, not a fast one. Simulated
// latency counters are deterministic for a fixed seed, so check_bench.py
// gates p99_us tightly (gated_counters) on top of the wall-clock gate.

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/kv_service.h"
#include "src/workload/slo.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

constexpr uint32_t kClusters = 8;
constexpr uint32_t kPartitions = 8;
constexpr uint32_t kRequests = 8;
constexpr SimTime kCrashAtUs = 10'000;  // mid-stream for both bench sizes

SloReport RunServing(uint32_t sessions, SyncMode mode, bool crash) {
  MachineOptions options;
  options.config.num_clusters = kClusters;
  options.config.strategy = FtStrategy::kMessageSystem;
  options.config.sync_policy.mode = mode;
  options.seed = 1;
  options.trace.enabled = true;
  options.trace.unbounded = true;
  options.trace.kind_mask = TraceKindBit(TraceEventKind::kRequestMark) |
                            TraceKindBit(TraceEventKind::kCrashDetect) |
                            TraceKindBit(TraceEventKind::kCrashHandled) |
                            TraceKindBit(TraceEventKind::kRecoveryDispatch) |
                            TraceKindBit(TraceEventKind::kTakeover);
  Machine machine(options);
  machine.Boot();

  KvOptions kv;
  kv.sessions = sessions;
  kv.partitions = kPartitions;
  kv.requests_per_session = kRequests;
  kv.seed = 1;
  KvDeployment d = DeployKv(machine, kv);
  if (crash) {
    machine.CrashClusterAt(machine.Now() + kCrashAtUs, /*cluster=*/2);
  }
  const bool done =
      machine.RunUntil([&] { return KvClientsDone(machine, d); }, 2'000'000'000ull);
  machine.Settle();
  SloReport report = BuildSloReport(machine.tracer()->Events(), machine, d, done);
  AURAGEN_CHECK(report.complete);
  AURAGEN_CHECK(report.mismatches == 0);
  return report;
}

void BM_KvServing(benchmark::State& state, SyncMode mode, bool crash) {
  const uint32_t sessions = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    SloReport r = RunServing(sessions, mode, crash);
    state.counters["p50_us"] = static_cast<double>(r.p50_us);
    state.counters["p99_us"] = static_cast<double>(r.p99_us);
    state.counters["p999_us"] = static_cast<double>(r.p999_us);
    state.counters["goodput_rps"] = r.goodput_rps;
    state.counters["retries"] = static_cast<double>(r.retries);
  }
}

void BM_KvNoFault(benchmark::State& s) {
  BM_KvServing(s, SyncMode::kIncremental, /*crash=*/false);
}
void BM_KvIncrementalAsync(benchmark::State& s) {
  BM_KvServing(s, SyncMode::kIncrementalAsync, /*crash=*/false);
}
void BM_KvMidRunCrash(benchmark::State& s) {
  BM_KvServing(s, SyncMode::kIncremental, /*crash=*/true);
}

BENCHMARK(BM_KvNoFault)->Arg(64)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KvIncrementalAsync)->Arg(64)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KvMidRunCrash)->Arg(64)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
