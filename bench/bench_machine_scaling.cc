// E12 — full-machine scaling on the ShardPlan layout (DESIGN.md §17):
// events/s of the complete Machine (kernels, servers, bus, disks) and
// campaign seeds/s versus shard-worker thread count.
//
//   events_per_s   dispatched simulation events per wall-clock second
//   seeds_per_s    completed campaign scenarios per wall-clock second
//   threads        shard-worker threads inside each machine run
//   digest_ok      1 iff this run's trace digest is bit-identical to the
//                  sequential (threads=1) run of the same configuration
//
// Every row re-checks the determinism oracle and aborts on divergence: a
// parallel machine that drifts from the sequential digest is broken, not
// fast. Wall-clock speedup needs real cores — on a single-core runner the
// threads>1 rows measure synchronization overhead, which is itself worth
// tracking — so the baseline gates each row's digest against its own
// history rather than asserting cross-row ratios.

#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "src/fault/campaign.h"
#include "src/machine/machine.h"
#include "src/workload/kv_service.h"

namespace auragen::bench {
namespace {

struct RunResult {
  uint64_t dispatched = 0;
  uint64_t digest_hash = 0;
  uint64_t digest_count = 0;
};

// One serving-shaped machine run: boot, deploy the KV workload sized to the
// topology, run to completion. The digest covers every traced event of the
// run in merge order.
RunResult RunMachine(uint32_t clusters, uint32_t threads) {
  MachineOptions mo;
  mo.config.num_clusters = clusters;
  mo.seed = 1;
  mo.engine_threads = threads;
  mo.trace.enabled = true;
  mo.trace.unbounded = false;
  mo.trace.ring_capacity = 4096;
  Machine machine(mo);
  machine.Boot();
  workload::KvOptions kv;
  kv.sessions = clusters * 8;
  kv.partitions = clusters / 2;
  kv.requests_per_session = 8;
  kv.seed = 1;
  workload::KvDeployment d = workload::DeployKv(machine, kv);
  machine.RunUntil([&] { return workload::KvClientsDone(machine, d); },
                   600'000'000);
  RunResult r;
  r.dispatched = machine.dispatched();
  r.digest_hash = machine.tracer()->digest().hash;
  r.digest_count = machine.tracer()->digest().count;
  return r;
}

// Sequential reference per topology, computed once (untimed) and shared by
// every thread-count row of that topology.
const RunResult& Reference(uint32_t clusters) {
  static std::map<uint32_t, RunResult> refs;
  auto it = refs.find(clusters);
  if (it == refs.end()) {
    it = refs.emplace(clusters, RunMachine(clusters, 1)).first;
  }
  return it->second;
}

void BM_MachineScaling(benchmark::State& state) {
  const uint32_t clusters = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const RunResult& want = Reference(clusters);

  uint64_t dispatched = 0;
  RunResult got;
  for (auto _ : state) {
    got = RunMachine(clusters, threads);
    dispatched += got.dispatched;
  }

  const bool digest_ok =
      got.digest_hash == want.digest_hash && got.digest_count == want.digest_count;
  if (!digest_ok) {
    state.SkipWithError("parallel machine diverged from the sequential digest");
  }
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(dispatched), benchmark::Counter::kIsRate);
  state.counters["threads"] = threads;
  state.counters["digest_ok"] = digest_ok ? 1 : 0;
}

BENCHMARK(BM_MachineScaling)
    ->ArgNames({"clusters", "threads"})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

constexpr uint64_t kCampaignFirstSeed = 1;
constexpr uint64_t kCampaignSeeds = 3;

// Campaign throughput with parallel machines: full scenarios (reference +
// faulted run per seed) at 8 clusters, digests compared seed for seed
// against the machine_threads=1 campaign.
void BM_MachineCampaign(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  CampaignOptions opt;
  opt.num_clusters = 8;
  opt.check_determinism = false;  // the cross-thread digest check below replays
  opt.machine_threads = 1;

  static std::map<uint64_t, TraceDigest> want;  // seed -> sequential digest
  if (want.empty()) {
    RunCampaign(kCampaignFirstSeed, kCampaignSeeds, opt,
                [&](const ScenarioResult& r) { want[r.seed] = r.trace_digest; });
  }

  opt.machine_threads = threads;
  uint64_t seeds_done = 0;
  bool digest_ok = true;
  for (auto _ : state) {
    RunCampaign(kCampaignFirstSeed, kCampaignSeeds, opt,
                [&](const ScenarioResult& r) {
                  ++seeds_done;
                  digest_ok = digest_ok && r.ok && want.at(r.seed) == r.trace_digest;
                });
  }

  if (!digest_ok) {
    state.SkipWithError("parallel campaign diverged from the sequential digests");
  }
  state.counters["seeds_per_s"] =
      benchmark::Counter(static_cast<double>(seeds_done), benchmark::Counter::kIsRate);
  state.counters["threads"] = threads;
  state.counters["digest_ok"] = digest_ok ? 1 : 0;
}

BENCHMARK(BM_MachineCampaign)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
