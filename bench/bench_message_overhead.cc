// E1 — §5.1/§8.1: "Although most messages go to three destinations, they
// are transmitted just once across the intercluster bus. ... Processes
// running on the work processors are not affected by the delivery of the
// two backup copies."
//
// Ping-pong pairs exchange messages with fault tolerance on (msgsys) and
// off (none). Reported per configuration:
//   frames_per_msg   bus transmissions per logical message (claim: ~1.0 both)
//   deliv_per_msg    per-destination deliveries per message (claim: 3 vs 1)
//   exec_us_per_msg  executive-processor time per message (rises with FT)
//   work_us_per_msg  work-processor time per message (claim: FT-invariant)
//   sim_ms           simulated completion time

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

void RunPairs(benchmark::State& state, FtStrategy strategy) {
  const int pairs = static_cast<int>(state.range(0));
  const int rounds = 200;
  for (auto _ : state) {
    MachineOptions options;
    options.config.num_clusters = 2;
    options.config.strategy = strategy;
    Machine machine(options);
    machine.Boot();
    SimTime workload_start = machine.Now();
    uint64_t bus_frames_before = machine.bus().stats().frames_sent;
    for (int i = 0; i < pairs; ++i) {
      std::string tag = "pp" + std::to_string(i);
      Machine::UserSpawnOptions a;
      a.backup_cluster = 1;
      Machine::UserSpawnOptions b;
      b.backup_cluster = 0;
      machine.SpawnUserProgram(0, Pinger(tag, rounds), a);
      machine.SpawnUserProgram(1, Ponger(tag, rounds), b);
    }
    bool done = machine.RunUntilAllExited(3'000'000'000ull);
    SimTime done_at = machine.Now();
    machine.Settle();
    AURAGEN_CHECK(done) << "ping-pong stalled";

    const Metrics& m = machine.metrics();
    double msgs = static_cast<double>(m.messages_sent);
    uint64_t frames = machine.bus().stats().frames_sent - bus_frames_before;
    double delivered = static_cast<double>(m.deliveries_primary + m.deliveries_backup +
                                           m.deliveries_count_only);
    state.counters["frames_per_msg"] = static_cast<double>(frames) / msgs;
    state.counters["deliv_per_msg"] = delivered / static_cast<double>(m.deliveries_primary);
    state.counters["exec_us_per_msg"] = static_cast<double>(m.exec_busy_us) / msgs;
    state.counters["work_us_per_msg"] = static_cast<double>(m.work_busy_us) / msgs;
    state.counters["sim_ms"] = static_cast<double>(done_at - workload_start) / 1000.0;
    state.counters["msgs"] = msgs;
  }
}

void BM_MsgSys(benchmark::State& state) { RunPairs(state, FtStrategy::kMessageSystem); }
void BM_NoFt(benchmark::State& state) { RunPairs(state, FtStrategy::kNone); }

BENCHMARK(BM_MsgSys)->Arg(1)->Arg(4)->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoFt)->Arg(1)->Arg(4)->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
