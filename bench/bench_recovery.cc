// E4 — §4/§8.4: recovery is rollforward from the last sync; the sync
// interval trades normal-execution overhead against recovery latency —
// "periodic synchronization ... limits the amount of recomputation required
// for the backup to catch up" (§11).
//
// Sweep the sync interval (reads trigger). A digit worker is crashed at a
// fixed instant. Reported:
//   syncs             syncs before the crash (overhead side of the trade)
//   replayed_msgs     saved messages replayed at takeover (recomputation)
//   recovery_ms       crash instant -> worker completion, minus the
//                     failure-free remainder (pure recovery cost)
//   overhead_pct      failure-free slowdown vs no-FT

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

constexpr int kRounds = 24;
constexpr int kSpin = 3000;
constexpr SimTime kCrashAt = 60'000;

struct RunResult {
  double sim_ms = 0;
  double replayed = 0;
  double syncs = 0;
  bool ok = false;
};

RunResult RunWorker(uint32_t reads_limit, bool crash, FtStrategy strategy) {
  MachineOptions options;
  options.config.num_clusters = 2;
  options.config.strategy = strategy;
  options.config.sync_reads_limit = reads_limit;
  options.config.sync_time_limit_us = 3'000'000'000ull;  // reads trigger only
  Machine machine(options);
  machine.Boot();
    SimTime workload_start = machine.Now();
  Machine::UserSpawnOptions w;
  w.backup_cluster = 0;
  machine.SpawnUserProgram(1, StatefulWorker("w", kRounds, kSpin, 2), w);
  machine.SpawnUserProgram(0, Feeder("w", kRounds, 400), Machine::UserSpawnOptions{});
  if (crash) {
    machine.CrashClusterAt(machine.Now() + kCrashAt, 1);
  }
  RunResult r;
  r.ok = machine.RunUntilAllExited(3'000'000'000ull);
  r.sim_ms = static_cast<double>(machine.Now() - workload_start) / 1000.0;
  machine.Settle();
  r.replayed = static_cast<double>(machine.metrics().rollforward_msgs_replayed);
  r.syncs = static_cast<double>(machine.metrics().syncs);
  return r;
}

void BM_RecoveryVsSyncInterval(benchmark::State& state) {
  const uint32_t limit = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    RunResult clean = RunWorker(limit, /*crash=*/false, FtStrategy::kMessageSystem);
    RunResult crashed = RunWorker(limit, /*crash=*/true, FtStrategy::kMessageSystem);
    RunResult no_ft = RunWorker(limit, /*crash=*/false, FtStrategy::kNone);
    AURAGEN_CHECK(clean.ok && crashed.ok && no_ft.ok);
    state.counters["syncs"] = clean.syncs;
    state.counters["replayed_msgs"] = crashed.replayed;
    state.counters["recovery_ms"] = crashed.sim_ms - clean.sim_ms;
    state.counters["overhead_pct"] = 100.0 * (clean.sim_ms - no_ft.sim_ms) / no_ft.sim_ms;
  }
}

// The §8.3 forced-sync ablation: how much extra sync traffic asynchronous
// signals cause at various alarm rates.
void BM_ForcedSignalSyncs(benchmark::State& state) {
  const uint64_t alarm_period_us = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    MachineOptions options;
    options.config.num_clusters = 2;
    Machine machine(options);
    machine.Boot();
    SimTime workload_start = machine.Now();
    // Worker re-arms an alarm in its handler, forcing a sync per delivery.
    Executable prog = MustAssemble(R"(
start:
    li r1, handler
    sys sigset
    li r1, )" + std::to_string(alarm_period_us) + R"(
    sys alarm
    li r8, 0
loop:
    addi r8, r8, 1
    li r9, 400000
    blt r8, r9, loop
    exit 0
handler:
    li r1, )" + std::to_string(alarm_period_us) + R"(
    sys alarm
    sys sigret
)");
    Machine::UserSpawnOptions w;
    w.backup_cluster = 0;
    machine.SpawnUserProgram(1, prog, w);
    bool done = machine.RunUntilAllExited(3'000'000'000ull);
    SimTime done_at = machine.Now();
    machine.Settle();
    AURAGEN_CHECK(done);
    const Metrics& m = machine.metrics();
    state.counters["forced_syncs"] = static_cast<double>(m.forced_signal_syncs);
    state.counters["total_syncs"] = static_cast<double>(m.syncs);
    state.counters["sim_ms"] = static_cast<double>(done_at - workload_start) / 1000.0;
  }
}

BENCHMARK(BM_RecoveryVsSyncInterval)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForcedSignalSyncs)
    ->Arg(5'000)->Arg(20'000)->Arg(80'000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
