// BENCH_sync — the copy-on-write sync pipeline (§8.3) behind SyncPolicy.
// One binary sweeps the three modes over the same 25%-dirty working set
// (64 of the AVM's 256 pages dirtied per sync interval), so a single
// BENCH_sync.json self-contains the before/after comparison:
//
//   stop-and-copy      every resident page shipped, primary stalls for all
//   incremental        dirty pages only, still enqueued synchronously
//   incremental-async  dirty pages only, drained while the primary runs
//
// Reported per mode:
//   stall_us_per_sync   primary wall-clock held per sync (the headline)
//   kb_per_sync         bytes shipped per sync
//   drain_us_per_sync   executive drain work per sync (async only)
//   sim_ms              workload completion in simulated time

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

void BM_SyncMode(benchmark::State& state) {
  const SyncMode mode = static_cast<SyncMode>(state.range(0));
  for (auto _ : state) {
    MachineOptions options = MachineOptions().WithClusters(2).WithSyncMode(mode);
    options.config.sync_reads_limit = 4;  // sync every 4 rounds
    Machine machine(options);
    machine.Boot();
    SimTime workload_start = machine.Now();
    Machine::UserSpawnOptions w;
    w.backup_cluster = 0;
    // 64 pages re-dirtied per round = 25% of the 256-page AVM space, on top
    // of a primed 96-page cold footprint that only stop-and-copy re-ships.
    machine.SpawnUserProgram(1, WideStatefulWorker("w", 48, 2000, 64, 96), w);
    machine.SpawnUserProgram(0, Feeder("w", 48), Machine::UserSpawnOptions{});
    bool done = machine.RunUntilAllExited(3'000'000'000ull);
    SimTime done_at = machine.Now();
    machine.Settle();
    AURAGEN_CHECK(done);

    const Metrics& m = machine.metrics();
    double syncs = static_cast<double>(m.syncs);
    state.counters["syncs"] = syncs;
    state.counters["stall_us_per_sync"] =
        static_cast<double>(m.sync_primary_stall_us) / syncs;
    state.counters["kb_per_sync"] =
        static_cast<double>(m.sync_bytes_shipped) / 1024.0 / syncs;
    state.counters["drain_us_per_sync"] =
        static_cast<double>(m.sync_drain_async_us) / syncs;
    state.counters["sim_ms"] = static_cast<double>(done_at - workload_start) / 1000.0;
    state.SetLabel(SyncModeName(mode));
  }
}

// Adaptive trigger ablation: a bursty dirtier under a fixed time trigger vs
// the adaptive one. Adaptation should cut pages-per-flush during bursts
// (tighten) and sync less often when quiet (loosen).
void BM_AdaptiveTrigger(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  for (auto _ : state) {
    MachineOptions options =
        MachineOptions().WithClusters(2).WithSyncMode(SyncMode::kIncrementalAsync);
    options.config.sync_reads_limit = 1'000'000;  // time trigger only
    options.config.sync_time_limit_us = 20'000;
    options.config.sync_policy.adaptive = adaptive;
    Machine machine(options);
    machine.Boot();
    Machine::UserSpawnOptions w;
    w.backup_cluster = 0;
    machine.SpawnUserProgram(1, StatefulWorker("w", 48, 4000, 48), w);
    machine.SpawnUserProgram(0, Feeder("w", 48, 2000), Machine::UserSpawnOptions{});
    bool done = machine.RunUntilAllExited(3'000'000'000ull);
    machine.Settle();
    AURAGEN_CHECK(done);

    const Metrics& m = machine.metrics();
    double syncs = static_cast<double>(m.syncs);
    state.counters["syncs"] = syncs;
    state.counters["pages_per_flush"] = static_cast<double>(m.sync_pages_shipped) / syncs;
    state.counters["tighten"] = static_cast<double>(m.sync_adaptive_tighten);
    state.counters["loosen"] = static_cast<double>(m.sync_adaptive_loosen);
    state.SetLabel(adaptive ? "adaptive" : "fixed");
  }
}

BENCHMARK(BM_SyncMode)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdaptiveTrigger)
    ->Arg(0)->Arg(1)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
