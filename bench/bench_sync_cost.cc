// E3 — §8.3: "The primary interrupts its normal execution for only as long
// as it takes to place its dirty pages and the sync message on the outgoing
// queue" — primary stall grows only with the number of dirty pages
// *enqueued*, not with the page server's or backup's processing.
//
// Sweep dirty pages per sync interval. Reported per configuration:
//   stall_us_per_sync   primary stall per sync (claim: linear in pages)
//   kb_per_sync         bytes shipped per sync
//   syncs               number of syncs
//   stall_share_pct     stall as % of total work time (claim: small)

#include <benchmark/benchmark.h>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"

namespace auragen::bench {

using namespace auragen::workload;
namespace {

void BM_SyncStallVsDirtyPages(benchmark::State& state) {
  const int pages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MachineOptions options;
    options.config.num_clusters = 2;
    options.config.sync_reads_limit = 4;  // sync every 4 rounds
    Machine machine(options);
    machine.Boot();
    Machine::UserSpawnOptions w;
    w.backup_cluster = 0;
    machine.SpawnUserProgram(1, StatefulWorker("w", 48, 2000, pages), w);
    machine.SpawnUserProgram(0, Feeder("w", 48), Machine::UserSpawnOptions{});
    bool done = machine.RunUntilAllExited(3'000'000'000ull);
    machine.Settle();
    AURAGEN_CHECK(done);

    const Metrics& m = machine.metrics();
    double syncs = static_cast<double>(m.syncs);
    state.counters["syncs"] = syncs;
    state.counters["stall_us_per_sync"] =
        static_cast<double>(m.sync_primary_stall_us) / syncs;
    state.counters["kb_per_sync"] =
        static_cast<double>(m.sync_bytes_shipped) / 1024.0 / syncs;
    state.counters["stall_share_pct"] =
        100.0 * static_cast<double>(m.sync_primary_stall_us) /
        static_cast<double>(m.work_busy_us);
  }
}

// Ablation: read-count trigger vs time trigger for a fixed workload — the
// §7.8 tunables. Sweeps the reads limit with the time trigger disabled.
void BM_SyncTriggerReads(benchmark::State& state) {
  const uint32_t limit = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    MachineOptions options;
    options.config.num_clusters = 2;
    options.config.sync_reads_limit = limit;
    options.config.sync_time_limit_us = 3'000'000'000ull;
    Machine machine(options);
    machine.Boot();
    SimTime workload_start = machine.Now();
    Machine::UserSpawnOptions w;
    w.backup_cluster = 0;
    machine.SpawnUserProgram(1, StatefulWorker("w", 64, 1500, 4), w);
    machine.SpawnUserProgram(0, Feeder("w", 64), Machine::UserSpawnOptions{});
    bool done = machine.RunUntilAllExited(3'000'000'000ull);
    SimTime done_at = machine.Now();
    machine.Settle();
    AURAGEN_CHECK(done);
    const Metrics& m = machine.metrics();
    state.counters["syncs"] = static_cast<double>(m.syncs);
    state.counters["stall_ms_total"] = static_cast<double>(m.sync_primary_stall_us) / 1000.0;
    state.counters["shipped_kb"] = static_cast<double>(m.sync_bytes_shipped) / 1024.0;
    state.counters["sim_ms"] = static_cast<double>(done_at - workload_start) / 1000.0;
  }
}

BENCHMARK(BM_SyncStallVsDirtyPages)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(48)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SyncTriggerReads)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auragen::bench

BENCHMARK_MAIN();
