#!/usr/bin/env python3
"""Compare a bench-results directory against the committed baseline.

Usage:
  python3 bench/check_bench.py [--results DIR] [--baseline FILE] [--update]

Reads BENCH_<suite>.json files (Google Benchmark JSON, as produced by
bench/run_benches.sh) from the results directory and prints a per-benchmark
comparison against the baseline. Suites listed as "gated" in the baseline
fail the run (exit 1) when any of their benchmarks regress beyond the
baseline's threshold; the other suites are informational only.

Times compared are real_time (wall clock). When a results file contains
repetitions, the minimum across repetitions is used — the minimum is the
noise-robust statistic for "how fast can this code go".

A regression needs both a relative and an absolute exceedance: ratio above
the threshold AND slowdown above the baseline's noise floor (floor_ns,
default 50us). Micro-benchmarks that complete in tens of microseconds swing
far past 20% from scheduler jitter alone on shared CI runners; the floor
keeps them gated against real regressions without making the job flaky.

--update rewrites the baseline from the current results directory, keeping
the gated-suite list, threshold, and noise floor.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "baseline.json")

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_results(path):
    """Returns {benchmark_name: real_time_ns} from a Google Benchmark JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions); the raw
        # repetition rows all share run_name, and min is taken below.
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name", b["name"])
        ns = b["real_time"] * TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        if name not in out or ns < out[name]:
            out[name] = ns
    return out


def load_counters(path, wanted):
    """Returns {benchmark_name: {counter: value}} for the counters in `wanted`."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name", b["name"])
        vals = {c: float(b[c]) for c in wanted if c in b}
        if vals:
            out.setdefault(name, {}).update(vals)
    return out


def fmt_ms(ns):
    return "%8.3f" % (ns / 1e6)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--results", default="bench-results")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from --results")
    args = ap.parse_args()

    if not os.path.isdir(args.results):
        print("check_bench: no results directory %r (run bench/run_benches.sh first)"
              % args.results, file=sys.stderr)
        return 2

    with open(args.baseline) as f:
        baseline = json.load(f)
    gated = set(baseline.get("gated", []))
    threshold = float(baseline.get("threshold", 1.20))
    floor_ns = float(baseline.get("floor_ns", 50_000.0))
    # Per-suite counters gated on their own values, e.g.
    # {"kv_serving": ["p99_us"]}. Counters measured in *simulated* time are
    # deterministic for a fixed seed, so unlike wall clock they get no noise
    # floor: any exceedance past the threshold is a real regression.
    gated_counters = baseline.get("gated_counters", {})

    if args.update:
        results = {}
        counters = {}
        for fname in sorted(os.listdir(args.results)):
            if not (fname.startswith("BENCH_") and fname.endswith(".json")):
                continue
            suite = fname[len("BENCH_"):-len(".json")]
            results[suite] = load_results(os.path.join(args.results, fname))
            if suite in gated_counters:
                counters[suite] = load_counters(
                    os.path.join(args.results, fname), gated_counters[suite])
        baseline["results"] = results
        baseline["counters"] = counters
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print("check_bench: baseline updated from %s (%d suites)"
              % (args.results, len(results)))
        return 0

    failures = []
    print("%-52s %10s %10s %8s" % ("benchmark", "base(ms)", "now(ms)", "ratio"))
    for suite in sorted(baseline.get("results", {})):
        base = baseline["results"][suite]
        path = os.path.join(args.results, "BENCH_%s.json" % suite)
        if not os.path.exists(path):
            line = "%s: results file missing (%s)" % (suite, path)
            if suite in gated:
                failures.append(line)
            print("  " + line)
            continue
        now = load_results(path)
        for name in sorted(base):
            if name not in now:
                line = "%s:%s missing from results" % (suite, name)
                if suite in gated:
                    failures.append(line)
                print("  " + line)
                continue
            ratio = now[name] / base[name] if base[name] > 0 else float("inf")
            mark = ""
            if ratio > threshold and now[name] - base[name] > floor_ns:
                mark = " REGRESSION" if suite in gated else " (slower, not gated)"
                if suite in gated:
                    failures.append("%s:%s %.2fx over baseline" % (suite, name, ratio))
            elif ratio > threshold:
                mark = " (slower, under noise floor)"
            print("%-52s %s %s %7.2fx%s"
                  % ("%s:%s" % (suite, name), fmt_ms(base[name]), fmt_ms(now[name]),
                     ratio, mark))

    for suite in sorted(baseline.get("counters", {})):
        base = baseline["counters"][suite]
        path = os.path.join(args.results, "BENCH_%s.json" % suite)
        if not os.path.exists(path):
            line = "%s: results file missing (%s)" % (suite, path)
            failures.append(line)
            print("  " + line)
            continue
        now = load_counters(path, gated_counters.get(suite, []))
        for name in sorted(base):
            for counter in sorted(base[name]):
                if name not in now or counter not in now[name]:
                    line = "%s:%s[%s] missing from results" % (suite, name, counter)
                    failures.append(line)
                    print("  " + line)
                    continue
                b, n = base[name][counter], now[name][counter]
                ratio = n / b if b > 0 else float("inf")
                mark = ""
                if ratio > threshold:
                    mark = " REGRESSION"
                    failures.append("%s:%s[%s] %.2fx over baseline"
                                    % (suite, name, counter, ratio))
                print("%-52s %10.1f %10.1f %7.2fx%s"
                      % ("%s:%s[%s]" % (suite, name, counter), b, n, ratio, mark))

    if failures:
        print("\ncheck_bench: FAIL — gated suites regressed >%.0f%%:"
              % ((threshold - 1.0) * 100))
        for f_ in failures:
            print("  " + f_)
        return 1
    print("\ncheck_bench: OK (gated: %s, threshold %.0f%%)"
          % (", ".join(sorted(gated)) or "none", (threshold - 1.0) * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
