#!/usr/bin/env sh
# Run every benchmark binary and collect one JSON result file per bench, so
# the perf trajectory (BENCH_*.json) can be tracked across commits.
#
#   bench/run_benches.sh [BUILD_DIR] [OUT_DIR] [-- extra benchmark args]
#
# The `--` separator may appear in any position; everything after it is
# passed verbatim to each benchmark binary.
#
# Examples:
#   bench/run_benches.sh
#   bench/run_benches.sh build bench-results -- --benchmark_filter=E1
#   bench/run_benches.sh -- --benchmark_repetitions=3
set -eu

usage() {
  echo "usage: bench/run_benches.sh [BUILD_DIR] [OUT_DIR] [-- extra benchmark args]" >&2
  echo "  BUILD_DIR  cmake build tree containing bench/ (default: build)" >&2
  echo "  OUT_DIR    directory for BENCH_*.json results (default: bench-results)" >&2
  exit "${1:-2}"
}

BUILD_DIR=""
OUT_DIR=""
npos=0
while [ $# -gt 0 ]; do
  case "$1" in
    --)
      shift
      break
      ;;
    -h|--help)
      usage 0
      ;;
    -*)
      echo "run_benches.sh: unknown option '$1' (pass benchmark args after --)" >&2
      usage
      ;;
    *)
      npos=$((npos + 1))
      case $npos in
        1) BUILD_DIR="$1" ;;
        2) OUT_DIR="$1" ;;
        *)
          echo "run_benches.sh: too many positional arguments ('$1')" >&2
          usage
          ;;
      esac
      shift
      ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-bench-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_benches.sh: no $BUILD_DIR/bench — build first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
status=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  out="$OUT_DIR/BENCH_${name#bench_}.json"
  echo "== $name -> $out"
  if ! "$bin" --benchmark_out="$out" --benchmark_out_format=json \
              --benchmark_format=console "$@"; then
    echo "run_benches.sh: $name failed" >&2
    status=1
  fi
done
exit $status
