#!/usr/bin/env sh
# Run every benchmark binary and collect one JSON result file per bench, so
# the perf trajectory (BENCH_*.json) can be tracked across commits.
#
#   bench/run_benches.sh [BUILD_DIR] [OUT_DIR] [-- extra benchmark args]
#
# Example: bench/run_benches.sh build bench-results -- --benchmark_filter=E1
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
shift $(( $# > 2 ? 2 : $# )) || true
[ "${1:-}" = "--" ] && shift

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_benches.sh: no $BUILD_DIR/bench — build first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
status=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  out="$OUT_DIR/BENCH_${name#bench_}.json"
  echo "== $name -> $out"
  if ! "$bin" --benchmark_out="$out" --benchmark_out_format=json \
              --benchmark_format=console "$@"; then
    echo "run_benches.sh: $name failed" >&2
    status=1
  fi
done
exit $status
