// Shared workload builders for the experiment benches (DESIGN.md §5).
//
// Each bench binary reproduces one qualitative claim from the paper's
// evaluation (§2/§8) as a quantitative table; EXPERIMENTS.md records the
// measured shapes against the claims. Benches run whole-machine simulations
// per iteration, so they register with Iterations(1) and report simulated-
// time/byte counters rather than host wall-time.

#ifndef AURAGEN_BENCH_WORKLOADS_H_
#define AURAGEN_BENCH_WORKLOADS_H_

#include <string>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen::bench {

// Ping-pong pair: `rounds` request/reply exchanges over a paired channel,
// then both exit. `tag` distinguishes channel names for concurrent pairs.
inline Executable Pinger(const std::string& tag, int rounds) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r12, )" + std::to_string(rounds) + R"(
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

inline Executable Ponger(const std::string& tag, int rounds) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r12, )" + std::to_string(rounds) + R"(
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

// Compute worker touching `pages` distinct pages per round for `rounds`
// rounds of `spin` loop iterations; reads one message per round from a
// feeder (so read-triggered policies engage), then exits.
inline Executable StatefulWorker(const std::string& tag, int rounds, int spin, int pages) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0           ; round
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r11, )" + std::to_string(spin) + R"(
    blt r9, r11, spin
    ; touch `pages` pages, 256 bytes apart, starting at 0x6000
    li r5, 0
    li r6, 0x6000
touch:
    st r8, r6, 0
    addi r6, r6, 256
    addi r5, r5, 1
    li r11, )" + std::to_string(pages) + R"(
    blt r5, r11, touch
    ; one read per round (feeder supplies)
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r11, )" + std::to_string(rounds) + R"(
    blt r8, r11, rounds
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

// StatefulWorker with a primed resident footprint: touches `cold` pages once
// at startup (at 0xA000), then dirties only `hot` pages (at 0x6000) per
// round. Separates sync modes that ship the whole resident set from
// dirty-only ones: after the first sync the cold pages are clean but still
// resident.
inline Executable WideStatefulWorker(const std::string& tag, int rounds, int spin,
                                     int hot, int cold) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    ; prime the cold footprint once
    li r5, 0
    li r6, 0xA000
prime:
    st r5, r6, 0
    addi r6, r6, 256
    addi r5, r5, 1
    li r11, )" + std::to_string(cold) + R"(
    blt r5, r11, prime
    li r8, 0           ; round
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r11, )" + std::to_string(spin) + R"(
    blt r9, r11, spin
    ; dirty `hot` pages, 256 bytes apart
    li r5, 0
    li r6, 0x6000
touch:
    st r8, r6, 0
    addi r6, r6, 256
    addi r5, r5, 1
    li r11, )" + std::to_string(hot) + R"(
    blt r5, r11, touch
    ; one read per round (feeder supplies)
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r11, )" + std::to_string(rounds) + R"(
    blt r8, r11, rounds
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

// Feeder for StatefulWorker: sends `rounds` ticks then exits.
inline Executable Feeder(const std::string& tag, int rounds, int pace = 500) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, )" + std::to_string(pace) + R"(
    blt r9, r11, pace
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(rounds) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

// Pure compute: spins then exits (capacity benches).
inline Executable ComputeJob(int total_spin) {
  return MustAssemble(R"(
start:
    li r9, 0
spin:
    addi r9, r9, 1
    li r11, )" + std::to_string(total_spin) + R"(
    blt r9, r11, spin
    exit 0
)");
}

}  // namespace auragen::bench

#endif  // AURAGEN_BENCH_WORKLOADS_H_
