file(REMOVE_RECURSE
  "CMakeFiles/bench_backup_creation.dir/bench_backup_creation.cc.o"
  "CMakeFiles/bench_backup_creation.dir/bench_backup_creation.cc.o.d"
  "bench_backup_creation"
  "bench_backup_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backup_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
