# Empty compiler generated dependencies file for bench_backup_creation.
# This may be replaced when dependencies are built.
