file(REMOVE_RECURSE
  "CMakeFiles/bench_bus.dir/bench_bus.cc.o"
  "CMakeFiles/bench_bus.dir/bench_bus.cc.o.d"
  "bench_bus"
  "bench_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
