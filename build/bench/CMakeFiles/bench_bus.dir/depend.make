# Empty dependencies file for bench_bus.
# This may be replaced when dependencies are built.
