file(REMOVE_RECURSE
  "CMakeFiles/bench_capacity.dir/bench_capacity.cc.o"
  "CMakeFiles/bench_capacity.dir/bench_capacity.cc.o.d"
  "bench_capacity"
  "bench_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
