file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_vs_message.dir/bench_checkpoint_vs_message.cc.o"
  "CMakeFiles/bench_checkpoint_vs_message.dir/bench_checkpoint_vs_message.cc.o.d"
  "bench_checkpoint_vs_message"
  "bench_checkpoint_vs_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_vs_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
