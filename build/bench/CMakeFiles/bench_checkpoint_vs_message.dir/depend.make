# Empty dependencies file for bench_checkpoint_vs_message.
# This may be replaced when dependencies are built.
