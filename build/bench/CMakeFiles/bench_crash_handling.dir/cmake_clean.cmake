file(REMOVE_RECURSE
  "CMakeFiles/bench_crash_handling.dir/bench_crash_handling.cc.o"
  "CMakeFiles/bench_crash_handling.dir/bench_crash_handling.cc.o.d"
  "bench_crash_handling"
  "bench_crash_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
