# Empty compiler generated dependencies file for bench_crash_handling.
# This may be replaced when dependencies are built.
