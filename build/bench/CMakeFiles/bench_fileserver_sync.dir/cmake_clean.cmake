file(REMOVE_RECURSE
  "CMakeFiles/bench_fileserver_sync.dir/bench_fileserver_sync.cc.o"
  "CMakeFiles/bench_fileserver_sync.dir/bench_fileserver_sync.cc.o.d"
  "bench_fileserver_sync"
  "bench_fileserver_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fileserver_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
