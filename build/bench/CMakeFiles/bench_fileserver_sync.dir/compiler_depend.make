# Empty compiler generated dependencies file for bench_fileserver_sync.
# This may be replaced when dependencies are built.
