file(REMOVE_RECURSE
  "CMakeFiles/bench_message_overhead.dir/bench_message_overhead.cc.o"
  "CMakeFiles/bench_message_overhead.dir/bench_message_overhead.cc.o.d"
  "bench_message_overhead"
  "bench_message_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
