# Empty dependencies file for bench_message_overhead.
# This may be replaced when dependencies are built.
