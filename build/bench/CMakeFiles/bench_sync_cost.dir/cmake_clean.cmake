file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_cost.dir/bench_sync_cost.cc.o"
  "CMakeFiles/bench_sync_cost.dir/bench_sync_cost.cc.o.d"
  "bench_sync_cost"
  "bench_sync_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
