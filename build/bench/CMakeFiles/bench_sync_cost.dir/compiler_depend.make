# Empty compiler generated dependencies file for bench_sync_cost.
# This may be replaced when dependencies are built.
