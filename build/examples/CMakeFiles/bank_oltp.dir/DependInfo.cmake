
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bank_oltp.cpp" "examples/CMakeFiles/bank_oltp.dir/bank_oltp.cpp.o" "gcc" "examples/CMakeFiles/bank_oltp.dir/bank_oltp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/auragen_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/auragen_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/auragen_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/servers/CMakeFiles/auragen_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/auragen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/auragen_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/auragen_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/avm/CMakeFiles/auragen_avm.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/auragen_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/auragen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/auragen_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
