file(REMOVE_RECURSE
  "CMakeFiles/bank_oltp.dir/bank_oltp.cpp.o"
  "CMakeFiles/bank_oltp.dir/bank_oltp.cpp.o.d"
  "bank_oltp"
  "bank_oltp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
