# Empty dependencies file for bank_oltp.
# This may be replaced when dependencies are built.
