file(REMOVE_RECURSE
  "CMakeFiles/terminal_session.dir/terminal_session.cpp.o"
  "CMakeFiles/terminal_session.dir/terminal_session.cpp.o.d"
  "terminal_session"
  "terminal_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terminal_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
