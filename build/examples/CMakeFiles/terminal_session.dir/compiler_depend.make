# Empty compiler generated dependencies file for terminal_session.
# This may be replaced when dependencies are built.
