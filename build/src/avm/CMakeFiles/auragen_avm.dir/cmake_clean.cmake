file(REMOVE_RECURSE
  "CMakeFiles/auragen_avm.dir/assembler.cc.o"
  "CMakeFiles/auragen_avm.dir/assembler.cc.o.d"
  "CMakeFiles/auragen_avm.dir/cpu.cc.o"
  "CMakeFiles/auragen_avm.dir/cpu.cc.o.d"
  "CMakeFiles/auragen_avm.dir/memory.cc.o"
  "CMakeFiles/auragen_avm.dir/memory.cc.o.d"
  "libauragen_avm.a"
  "libauragen_avm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_avm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
