file(REMOVE_RECURSE
  "libauragen_avm.a"
)
