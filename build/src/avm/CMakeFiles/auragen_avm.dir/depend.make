# Empty dependencies file for auragen_avm.
# This may be replaced when dependencies are built.
