file(REMOVE_RECURSE
  "CMakeFiles/auragen_base.dir/codec.cc.o"
  "CMakeFiles/auragen_base.dir/codec.cc.o.d"
  "CMakeFiles/auragen_base.dir/log.cc.o"
  "CMakeFiles/auragen_base.dir/log.cc.o.d"
  "libauragen_base.a"
  "libauragen_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
