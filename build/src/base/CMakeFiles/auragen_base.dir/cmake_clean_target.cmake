file(REMOVE_RECURSE
  "libauragen_base.a"
)
