# Empty compiler generated dependencies file for auragen_base.
# This may be replaced when dependencies are built.
