file(REMOVE_RECURSE
  "CMakeFiles/auragen_baselines.dir/lockstep.cc.o"
  "CMakeFiles/auragen_baselines.dir/lockstep.cc.o.d"
  "libauragen_baselines.a"
  "libauragen_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
