file(REMOVE_RECURSE
  "libauragen_baselines.a"
)
