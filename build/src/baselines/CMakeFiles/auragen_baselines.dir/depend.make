# Empty dependencies file for auragen_baselines.
# This may be replaced when dependencies are built.
