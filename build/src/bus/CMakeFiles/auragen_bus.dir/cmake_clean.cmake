file(REMOVE_RECURSE
  "CMakeFiles/auragen_bus.dir/intercluster_bus.cc.o"
  "CMakeFiles/auragen_bus.dir/intercluster_bus.cc.o.d"
  "libauragen_bus.a"
  "libauragen_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
