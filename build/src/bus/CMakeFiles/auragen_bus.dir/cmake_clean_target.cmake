file(REMOVE_RECURSE
  "libauragen_bus.a"
)
