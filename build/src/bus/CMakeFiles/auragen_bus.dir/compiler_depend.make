# Empty compiler generated dependencies file for auragen_bus.
# This may be replaced when dependencies are built.
