
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/crash.cc" "src/core/CMakeFiles/auragen_core.dir/crash.cc.o" "gcc" "src/core/CMakeFiles/auragen_core.dir/crash.cc.o.d"
  "/root/repo/src/core/delivery.cc" "src/core/CMakeFiles/auragen_core.dir/delivery.cc.o" "gcc" "src/core/CMakeFiles/auragen_core.dir/delivery.cc.o.d"
  "/root/repo/src/core/kernel.cc" "src/core/CMakeFiles/auragen_core.dir/kernel.cc.o" "gcc" "src/core/CMakeFiles/auragen_core.dir/kernel.cc.o.d"
  "/root/repo/src/core/lifecycle.cc" "src/core/CMakeFiles/auragen_core.dir/lifecycle.cc.o" "gcc" "src/core/CMakeFiles/auragen_core.dir/lifecycle.cc.o.d"
  "/root/repo/src/core/routing.cc" "src/core/CMakeFiles/auragen_core.dir/routing.cc.o" "gcc" "src/core/CMakeFiles/auragen_core.dir/routing.cc.o.d"
  "/root/repo/src/core/sync.cc" "src/core/CMakeFiles/auragen_core.dir/sync.cc.o" "gcc" "src/core/CMakeFiles/auragen_core.dir/sync.cc.o.d"
  "/root/repo/src/core/syscalls.cc" "src/core/CMakeFiles/auragen_core.dir/syscalls.cc.o" "gcc" "src/core/CMakeFiles/auragen_core.dir/syscalls.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/core/CMakeFiles/auragen_core.dir/wire.cc.o" "gcc" "src/core/CMakeFiles/auragen_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/auragen_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/auragen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/auragen_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/avm/CMakeFiles/auragen_avm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/auragen_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
