file(REMOVE_RECURSE
  "CMakeFiles/auragen_core.dir/crash.cc.o"
  "CMakeFiles/auragen_core.dir/crash.cc.o.d"
  "CMakeFiles/auragen_core.dir/delivery.cc.o"
  "CMakeFiles/auragen_core.dir/delivery.cc.o.d"
  "CMakeFiles/auragen_core.dir/kernel.cc.o"
  "CMakeFiles/auragen_core.dir/kernel.cc.o.d"
  "CMakeFiles/auragen_core.dir/lifecycle.cc.o"
  "CMakeFiles/auragen_core.dir/lifecycle.cc.o.d"
  "CMakeFiles/auragen_core.dir/routing.cc.o"
  "CMakeFiles/auragen_core.dir/routing.cc.o.d"
  "CMakeFiles/auragen_core.dir/sync.cc.o"
  "CMakeFiles/auragen_core.dir/sync.cc.o.d"
  "CMakeFiles/auragen_core.dir/syscalls.cc.o"
  "CMakeFiles/auragen_core.dir/syscalls.cc.o.d"
  "CMakeFiles/auragen_core.dir/wire.cc.o"
  "CMakeFiles/auragen_core.dir/wire.cc.o.d"
  "libauragen_core.a"
  "libauragen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
