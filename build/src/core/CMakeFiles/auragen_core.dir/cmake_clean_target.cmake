file(REMOVE_RECURSE
  "libauragen_core.a"
)
