# Empty compiler generated dependencies file for auragen_core.
# This may be replaced when dependencies are built.
