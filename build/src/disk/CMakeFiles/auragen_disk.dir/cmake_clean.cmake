file(REMOVE_RECURSE
  "CMakeFiles/auragen_disk.dir/disk.cc.o"
  "CMakeFiles/auragen_disk.dir/disk.cc.o.d"
  "libauragen_disk.a"
  "libauragen_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
