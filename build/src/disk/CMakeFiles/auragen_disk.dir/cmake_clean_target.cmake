file(REMOVE_RECURSE
  "libauragen_disk.a"
)
