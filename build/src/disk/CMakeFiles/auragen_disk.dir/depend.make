# Empty dependencies file for auragen_disk.
# This may be replaced when dependencies are built.
