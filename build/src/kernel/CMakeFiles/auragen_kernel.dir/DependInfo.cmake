
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/avm_body.cc" "src/kernel/CMakeFiles/auragen_kernel.dir/avm_body.cc.o" "gcc" "src/kernel/CMakeFiles/auragen_kernel.dir/avm_body.cc.o.d"
  "/root/repo/src/kernel/native_body.cc" "src/kernel/CMakeFiles/auragen_kernel.dir/native_body.cc.o" "gcc" "src/kernel/CMakeFiles/auragen_kernel.dir/native_body.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/auragen_base.dir/DependInfo.cmake"
  "/root/repo/build/src/avm/CMakeFiles/auragen_avm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
