file(REMOVE_RECURSE
  "CMakeFiles/auragen_kernel.dir/avm_body.cc.o"
  "CMakeFiles/auragen_kernel.dir/avm_body.cc.o.d"
  "CMakeFiles/auragen_kernel.dir/native_body.cc.o"
  "CMakeFiles/auragen_kernel.dir/native_body.cc.o.d"
  "libauragen_kernel.a"
  "libauragen_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
