file(REMOVE_RECURSE
  "libauragen_kernel.a"
)
