# Empty compiler generated dependencies file for auragen_kernel.
# This may be replaced when dependencies are built.
