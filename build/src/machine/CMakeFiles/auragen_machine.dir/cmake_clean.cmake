file(REMOVE_RECURSE
  "CMakeFiles/auragen_machine.dir/machine.cc.o"
  "CMakeFiles/auragen_machine.dir/machine.cc.o.d"
  "libauragen_machine.a"
  "libauragen_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
