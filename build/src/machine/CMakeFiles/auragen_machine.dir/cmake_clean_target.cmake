file(REMOVE_RECURSE
  "libauragen_machine.a"
)
