# Empty compiler generated dependencies file for auragen_machine.
# This may be replaced when dependencies are built.
