file(REMOVE_RECURSE
  "CMakeFiles/auragen_paging.dir/page_server.cc.o"
  "CMakeFiles/auragen_paging.dir/page_server.cc.o.d"
  "libauragen_paging.a"
  "libauragen_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
