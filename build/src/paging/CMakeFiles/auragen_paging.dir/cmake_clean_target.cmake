file(REMOVE_RECURSE
  "libauragen_paging.a"
)
