# Empty dependencies file for auragen_paging.
# This may be replaced when dependencies are built.
