file(REMOVE_RECURSE
  "CMakeFiles/auragen_servers.dir/file_server.cc.o"
  "CMakeFiles/auragen_servers.dir/file_server.cc.o.d"
  "CMakeFiles/auragen_servers.dir/process_server.cc.o"
  "CMakeFiles/auragen_servers.dir/process_server.cc.o.d"
  "CMakeFiles/auragen_servers.dir/tty_server.cc.o"
  "CMakeFiles/auragen_servers.dir/tty_server.cc.o.d"
  "libauragen_servers.a"
  "libauragen_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
