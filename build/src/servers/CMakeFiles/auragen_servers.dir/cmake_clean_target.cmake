file(REMOVE_RECURSE
  "libauragen_servers.a"
)
