# Empty compiler generated dependencies file for auragen_servers.
# This may be replaced when dependencies are built.
