file(REMOVE_RECURSE
  "CMakeFiles/auragen_sim.dir/engine.cc.o"
  "CMakeFiles/auragen_sim.dir/engine.cc.o.d"
  "libauragen_sim.a"
  "libauragen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auragen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
