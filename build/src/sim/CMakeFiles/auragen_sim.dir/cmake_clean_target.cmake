file(REMOVE_RECURSE
  "libauragen_sim.a"
)
