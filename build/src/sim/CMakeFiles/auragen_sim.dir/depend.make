# Empty dependencies file for auragen_sim.
# This may be replaced when dependencies are built.
