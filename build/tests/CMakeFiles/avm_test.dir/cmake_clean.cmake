file(REMOVE_RECURSE
  "CMakeFiles/avm_test.dir/avm_test.cc.o"
  "CMakeFiles/avm_test.dir/avm_test.cc.o.d"
  "avm_test"
  "avm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
