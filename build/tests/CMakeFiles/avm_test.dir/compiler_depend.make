# Empty compiler generated dependencies file for avm_test.
# This may be replaced when dependencies are built.
