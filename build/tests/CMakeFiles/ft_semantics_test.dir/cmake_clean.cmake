file(REMOVE_RECURSE
  "CMakeFiles/ft_semantics_test.dir/ft_semantics_test.cc.o"
  "CMakeFiles/ft_semantics_test.dir/ft_semantics_test.cc.o.d"
  "ft_semantics_test"
  "ft_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
