# Empty compiler generated dependencies file for ft_semantics_test.
# This may be replaced when dependencies are built.
