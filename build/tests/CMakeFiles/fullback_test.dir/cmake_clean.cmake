file(REMOVE_RECURSE
  "CMakeFiles/fullback_test.dir/fullback_test.cc.o"
  "CMakeFiles/fullback_test.dir/fullback_test.cc.o.d"
  "fullback_test"
  "fullback_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
