# Empty dependencies file for fullback_test.
# This may be replaced when dependencies are built.
