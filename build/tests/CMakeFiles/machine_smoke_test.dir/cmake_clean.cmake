file(REMOVE_RECURSE
  "CMakeFiles/machine_smoke_test.dir/machine_smoke_test.cc.o"
  "CMakeFiles/machine_smoke_test.dir/machine_smoke_test.cc.o.d"
  "machine_smoke_test"
  "machine_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
