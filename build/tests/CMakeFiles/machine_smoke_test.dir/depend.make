# Empty dependencies file for machine_smoke_test.
# This may be replaced when dependencies are built.
