file(REMOVE_RECURSE
  "CMakeFiles/oltp_property_test.dir/oltp_property_test.cc.o"
  "CMakeFiles/oltp_property_test.dir/oltp_property_test.cc.o.d"
  "oltp_property_test"
  "oltp_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
