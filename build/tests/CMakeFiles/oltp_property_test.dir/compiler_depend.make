# Empty compiler generated dependencies file for oltp_property_test.
# This may be replaced when dependencies are built.
