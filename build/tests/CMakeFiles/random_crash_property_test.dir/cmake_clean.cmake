file(REMOVE_RECURSE
  "CMakeFiles/random_crash_property_test.dir/random_crash_property_test.cc.o"
  "CMakeFiles/random_crash_property_test.dir/random_crash_property_test.cc.o.d"
  "random_crash_property_test"
  "random_crash_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_crash_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
