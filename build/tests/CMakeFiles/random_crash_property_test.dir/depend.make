# Empty dependencies file for random_crash_property_test.
# This may be replaced when dependencies are built.
