file(REMOVE_RECURSE
  "CMakeFiles/recovery_stress_test.dir/recovery_stress_test.cc.o"
  "CMakeFiles/recovery_stress_test.dir/recovery_stress_test.cc.o.d"
  "recovery_stress_test"
  "recovery_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
