# Empty dependencies file for recovery_stress_test.
# This may be replaced when dependencies are built.
