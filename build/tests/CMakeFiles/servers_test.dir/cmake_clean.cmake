file(REMOVE_RECURSE
  "CMakeFiles/servers_test.dir/servers_test.cc.o"
  "CMakeFiles/servers_test.dir/servers_test.cc.o.d"
  "servers_test"
  "servers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/servers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
