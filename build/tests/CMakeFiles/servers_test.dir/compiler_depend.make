# Empty compiler generated dependencies file for servers_test.
# This may be replaced when dependencies are built.
