file(REMOVE_RECURSE
  "CMakeFiles/syscall_edge_test.dir/syscall_edge_test.cc.o"
  "CMakeFiles/syscall_edge_test.dir/syscall_edge_test.cc.o.d"
  "syscall_edge_test"
  "syscall_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syscall_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
