# Empty compiler generated dependencies file for syscall_edge_test.
# This may be replaced when dependencies are built.
