// bank_oltp: the paper's motivating workload — on-line transaction
// processing (§3). Two teller processes stream transactions to an account
// manager over paired channels; the account manager keeps balances in its
// address space, logs every transaction to a file on the mirrored disk, and
// reports. A cluster crash is injected mid-stream.
//
// The interesting property: no transaction is lost and none is applied
// twice, even though the crash kills the account manager *and* the page
// server primary. Compare the final balances and the on-disk log length
// with the failure-free run.
//
//   $ ./examples/bank_oltp [crash_time_us]     (0 = no crash; default 70000)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"

using namespace auragen;
using workload::AccountManager;
using workload::Teller;

int main(int argc, char** argv) {
  SimTime crash_at = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 70'000;
  constexpr int kTxnsPerTeller = 16;
  constexpr int kTotal = 2 * kTxnsPerTeller;

  MachineOptions options;
  options.config.num_clusters = 2;
  options.config.sync_reads_limit = 6;
  Machine machine(options);
  machine.Boot();

  Machine::UserSpawnOptions mgr_opts;
  mgr_opts.with_tty = true;
  mgr_opts.backup_cluster = 0;
  Machine::UserSpawnOptions teller_opts;
  teller_opts.backup_cluster = 1;

  Gpid manager = machine.SpawnUserProgram(1, AccountManager(kTotal), mgr_opts);
  machine.SpawnUserProgram(0, Teller("ch:tla", kTxnsPerTeller, 7, 2000), teller_opts);
  machine.SpawnUserProgram(0, Teller("ch:tlb", kTxnsPerTeller, 5, 2600), teller_opts);

  if (crash_at != 0) {
    std::printf("will crash cluster 1 (account manager + page server) at +%llu us\n",
                static_cast<unsigned long long>(crash_at));
    machine.CrashClusterAt(machine.Now() + crash_at, 1);
  }

  bool done = machine.RunUntilAllExited(300'000'000);
  machine.Settle();

  std::printf("all processes finished: %s\n", done ? "yes" : "NO");
  std::printf("terminal: \"%s\"\n", machine.TtyOutput(0).c_str());
  std::printf("expected: \"....%d\" with %d dots and balance %d\n", 16 * 7 + 16 * 5,
              kTotal / 8, 16 * 7 + 16 * 5);
  std::printf("manager exit status: %d\n", done ? machine.ExitStatus(manager) : -1);

  const Metrics& m = machine.metrics();
  std::printf("\nmessage-system activity: %llu sends, %llu syncs, %llu takeovers, "
              "%llu suppressed resends\n",
              static_cast<unsigned long long>(m.messages_sent),
              static_cast<unsigned long long>(m.syncs),
              static_cast<unsigned long long>(m.takeovers),
              static_cast<unsigned long long>(m.sends_suppressed));

  std::string expected = "....0192";
  bool ok = done && machine.TtyOutput(0) == expected;
  std::printf("%s\n", ok ? "OK: ledger consistent after recovery."
                         : "FAILURE: ledger diverged!");
  return ok ? 0 : 1;
}
