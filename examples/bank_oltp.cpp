// bank_oltp: the paper's motivating workload — on-line transaction
// processing (§3). Two teller processes stream transactions to an account
// manager over paired channels; the account manager keeps balances in its
// address space, logs every transaction to a file on the mirrored disk, and
// reports. A cluster crash is injected mid-stream.
//
// The interesting property: no transaction is lost and none is applied
// twice, even though the crash kills the account manager *and* the page
// server primary. Compare the final balances and the on-disk log length
// with the failure-free run.
//
//   $ ./examples/bank_oltp [crash_time_us]     (0 = no crash; default 70000)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

using namespace auragen;

namespace {

// Teller: opens ch:<name>, sends `count` transactions of fixed amount,
// paced, then exits.
Executable Teller(const std::string& channel, int count, int amount, int pace) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 6
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, )" + std::to_string(pace) + R"(
    blt r9, r11, pace
    li r11, buf
    li r12, )" + std::to_string(amount) + R"(
    st r12, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(count) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii ")" + channel + R"("
buf: .word 0
)");
}

// Account manager: bunches both teller channels, applies each transaction
// to the balance, appends one byte per transaction to "txn.log", prints a
// '.' every 8 transactions and the final balance in decimal at the end.
Executable AccountManager(int total_txns) {
  return MustAssemble(R"(
start:
    li r1, name_a
    li r2, 6
    sys open
    mov r5, r0
    li r1, name_b
    li r2, 6
    sys open
    mov r6, r0
    li r1, logname
    li r2, 7
    sys open
    mov r7, r0          ; log fd
    li r11, fds
    st r5, r11, 0
    st r6, r11, 4
    li r1, fds
    li r2, 2
    sys bunch
    mov r13, r0         ; group id
    li r8, 0            ; txns applied
loop:
    mov r1, r13
    sys which
    mov r1, r0
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    li r11, balance
    ld r3, r11, 0
    add r3, r3, r2
    st r3, r11, 0
    ; append one byte to the log (blocks for the server's ack)
    mov r1, r7
    li r2, mark
    li r3, 1
    sys write
    addi r8, r8, 1
    ; progress dot every 8
    li r11, 8
    mod r12, r8, r11
    li r11, 0
    bne r12, r11, skip
    li r1, 2
    li r2, dot
    li r3, 1
    sys write
skip:
    li r11, )" + std::to_string(total_txns) + R"(
    blt r8, r11, loop
    ; print balance as four decimal digits
    li r11, balance
    ld r2, r11, 0
    li r9, 1000
    li r10, out
    li r5, 48
digits:
    div r4, r2, r9
    add r4, r4, r5
    stb r4, r10, 0
    mod r2, r2, r9
    li r4, 10
    div r9, r9, r4
    addi r10, r10, 1
    li r4, 0
    bne r9, r4, digits
    li r1, 2
    li r2, out
    li r3, 4
    sys write
    exit 0
.data
name_a: .ascii "ch:tla"
name_b: .ascii "ch:tlb"
logname: .ascii "txn.log"
fds: .space 8
buf: .word 0
balance: .word 0
mark: .ascii "#"
dot: .ascii "."
out: .space 8
)");
}

}  // namespace

int main(int argc, char** argv) {
  SimTime crash_at = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 70'000;
  constexpr int kTxnsPerTeller = 16;
  constexpr int kTotal = 2 * kTxnsPerTeller;

  MachineOptions options;
  options.config.num_clusters = 2;
  options.config.sync_reads_limit = 6;
  Machine machine(options);
  machine.Boot();

  Machine::UserSpawnOptions mgr_opts;
  mgr_opts.with_tty = true;
  mgr_opts.backup_cluster = 0;
  Machine::UserSpawnOptions teller_opts;
  teller_opts.backup_cluster = 1;

  Gpid manager = machine.SpawnUserProgram(1, AccountManager(kTotal), mgr_opts);
  machine.SpawnUserProgram(0, Teller("ch:tla", kTxnsPerTeller, 7, 2000), teller_opts);
  machine.SpawnUserProgram(0, Teller("ch:tlb", kTxnsPerTeller, 5, 2600), teller_opts);

  if (crash_at != 0) {
    std::printf("will crash cluster 1 (account manager + page server) at +%llu us\n",
                static_cast<unsigned long long>(crash_at));
    machine.CrashClusterAt(machine.engine().Now() + crash_at, 1);
  }

  bool done = machine.RunUntilAllExited(300'000'000);
  machine.Settle();

  std::printf("all processes finished: %s\n", done ? "yes" : "NO");
  std::printf("terminal: \"%s\"\n", machine.TtyOutput(0).c_str());
  std::printf("expected: \"....%d\" with %d dots and balance %d\n", 16 * 7 + 16 * 5,
              kTotal / 8, 16 * 7 + 16 * 5);
  std::printf("manager exit status: %d\n", done ? machine.ExitStatus(manager) : -1);

  const Metrics& m = machine.metrics();
  std::printf("\nmessage-system activity: %llu sends, %llu syncs, %llu takeovers, "
              "%llu suppressed resends\n",
              static_cast<unsigned long long>(m.messages_sent),
              static_cast<unsigned long long>(m.syncs),
              static_cast<unsigned long long>(m.takeovers),
              static_cast<unsigned long long>(m.sends_suppressed));

  std::string expected = "....0192";
  bool ok = done && machine.TtyOutput(0) == expected;
  std::printf("%s\n", ok ? "OK: ledger consistent after recovery."
                         : "FAILURE: ledger diverged!");
  return ok ? 0 : 1;
}
