// pipeline: a three-stage processing pipeline spread across clusters —
// producer -> transformer -> consumer — connected by paired channels
// (§7.4.1). Demonstrates that a chain of communicating processes survives
// the loss of the *middle* stage's cluster: the transformer rolls forward,
// re-reads its saved inputs, and its duplicate outputs are suppressed, so
// the consumer sees each item exactly once and in order.
//
//   $ ./examples/pipeline [crash_time_us]      (0 = no crash; default 45000)

#include <cstdio>
#include <cstdlib>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

using namespace auragen;

namespace {

constexpr int kItems = 16;

// Producer: sends 1..16 on ch:raw.
Executable Producer() {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 6
    sys open
    mov r10, r0
    li r8, 1
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, 1800
    blt r9, r11, pace
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, 17
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:raw"
buf: .word 0
)");
}

// Transformer: reads from ch:raw, squares each value mod 97, forwards on
// ch:cooked. This is the stage whose cluster dies.
Executable Transformer() {
  return MustAssemble(R"(
start:
    li r1, name_in
    li r2, 6
    sys open
    mov r10, r0
    li r1, name_out
    li r2, 9
    sys open
    mov r11, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r13, buf
    ld r2, r13, 0
    mul r2, r2, r2
    li r3, 97
    mod r2, r2, r3
    st r2, r13, 0
    mov r1, r11
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r12, 16
    blt r8, r12, loop
    exit 0
.data
name_in: .ascii "ch:raw"
name_out: .ascii "ch:cooked"
buf: .word 0
)");
}

// Consumer: reads 16 values from ch:cooked, prints each as two hex chars.
Executable Consumer() {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 9
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r13, buf
    ld r2, r13, 0
    ; hex digits
    li r3, 16
    div r4, r2, r3
    call hexchar
    li r13, out
    stb r0, r13, 0
    li r13, buf
    ld r2, r13, 0
    li r3, 16
    mod r4, r2, r3
    call hexchar
    li r13, out
    stb r0, r13, 1
    li r1, 2
    li r2, out
    li r3, 2
    sys write
    addi r8, r8, 1
    li r12, 16
    blt r8, r12, loop
    exit 0
hexchar:               ; r4 in [0,15] -> ascii in r0
    li r5, 10
    blt r4, r5, digit
    addi r0, r4, 87    ; 'a' - 10
    ret
digit:
    addi r0, r4, 48
    ret
.data
name: .ascii "ch:cooked"
buf: .word 0
out: .space 4
)");
}

}  // namespace

int main(int argc, char** argv) {
  SimTime crash_at = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;

  MachineOptions options;
  options.config.num_clusters = 3;
  options.config.sync_reads_limit = 4;
  Machine machine(options);
  machine.Boot();

  Machine::UserSpawnOptions prod_opts;
  prod_opts.backup_cluster = 1;
  Machine::UserSpawnOptions xform_opts;
  xform_opts.backup_cluster = 0;
  xform_opts.mode = BackupMode::kFullback;  // gets a replacement backup too
  Machine::UserSpawnOptions cons_opts;
  cons_opts.backup_cluster = 2;
  cons_opts.with_tty = true;

  machine.SpawnUserProgram(0, Producer(), prod_opts);
  machine.SpawnUserProgram(2, Transformer(), xform_opts);
  machine.SpawnUserProgram(1, Consumer(), cons_opts);

  if (crash_at != 0) {
    std::printf("will crash cluster 2 (the transformer stage) at +%llu us\n",
                static_cast<unsigned long long>(crash_at));
    machine.CrashClusterAt(machine.Now() + crash_at, 2);
  }

  bool done = machine.RunUntilAllExited(300'000'000);
  machine.Settle();

  // Reference: i*i mod 97 for i = 1..16, two hex chars each.
  std::string expected;
  for (int i = 1; i <= kItems; ++i) {
    char buf[3];
    std::snprintf(buf, sizeof buf, "%02x", (i * i) % 97);
    expected += buf;
  }

  std::printf("pipeline finished: %s\n", done ? "yes" : "NO");
  std::printf("consumer saw: \"%s\"\n", machine.TtyOutput(0).c_str());
  std::printf("expected:     \"%s\"\n", expected.c_str());
  std::printf("takeovers=%llu suppressed=%llu replayed=%llu\n",
              static_cast<unsigned long long>(machine.metrics().takeovers),
              static_cast<unsigned long long>(machine.metrics().sends_suppressed),
              static_cast<unsigned long long>(machine.metrics().rollforward_msgs_replayed));

  bool ok = done && machine.TtyOutput(0) == expected;
  std::printf("%s\n", ok ? "OK: exactly-once, in-order delivery through the crash."
                         : "FAILURE: stream corrupted!");
  return ok ? 0 : 1;
}
