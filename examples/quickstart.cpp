// Quickstart: boot a two-cluster Auragen 4000, run a guest program that
// prints to its terminal, crash the cluster it runs in mid-flight, and watch
// the backup take over — output intact, no duplicates, no program changes.
//
//   $ ./examples/quickstart
//
// This is the paper's whole pitch in one screen: fault tolerance is
// transparent (§3.3) — the guest below contains no recovery code at all.

#include <cstdio>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

using namespace auragen;

int main() {
  MachineOptions options;
  options.config.num_clusters = 2;
  Machine machine(options);
  machine.Boot();

  // An ordinary sequential program: ten rounds of compute-then-print.
  Executable guest = MustAssemble(R"(
start:
    li r8, 0           ; round
rounds:
    li r9, 0
spin:                  ; simulated work
    addi r9, r9, 1
    li r10, 6000
    blt r9, r10, spin
    li r10, 48
    add r10, r10, r8   ; '0' + round
    li r11, digit
    stb r10, r11, 0
    li r1, 2           ; fd 2: the terminal
    li r2, digit
    li r3, 1
    sys write
    addi r8, r8, 1
    li r10, 10
    blt r8, r10, rounds
    exit 0
.data
digit: .byte 0
)");

  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.backup_cluster = 0;  // inactive backup lives in cluster 0
  Gpid pid = machine.SpawnUserProgram(/*cluster=*/1, guest, opts);

  std::printf("running guest %s in cluster 1 (backup in cluster 0)...\n",
              GpidStr(pid).c_str());
  machine.Run(55'000);  // ~halfway through the ten rounds
  std::printf("  partial terminal output: \"%s\"\n", machine.TtyOutput(0).c_str());

  std::printf("*** crashing cluster 1 ***\n");
  machine.CrashCluster(1);

  bool finished = machine.RunUntilAllExited(60'000'000);
  machine.Settle();

  std::printf("guest finished: %s, exit status %d\n", finished ? "yes" : "NO",
              finished ? machine.ExitStatus(pid) : -1);
  std::printf("terminal output:  \"%s\"\n", machine.TtyOutput(0).c_str());
  std::printf("duplicates seen:  %llu\n",
              static_cast<unsigned long long>(machine.TtyDuplicates()));

  const Metrics& m = machine.metrics();
  std::printf("\nwhat the message system did behind the scenes:\n");
  std::printf("  syncs                 %8llu   (dirty pages shipped: %llu)\n",
              static_cast<unsigned long long>(m.syncs),
              static_cast<unsigned long long>(m.sync_pages_shipped));
  std::printf("  takeovers             %8llu\n",
              static_cast<unsigned long long>(m.takeovers));
  std::printf("  messages replayed     %8llu   (saved queue, §5.2)\n",
              static_cast<unsigned long long>(m.rollforward_msgs_replayed));
  std::printf("  sends suppressed      %8llu   (duplicate suppression, §5.4)\n",
              static_cast<unsigned long long>(m.sends_suppressed));
  std::printf("  pages demand-faulted  %8llu   (page server, §7.10.2)\n",
              static_cast<unsigned long long>(m.page_faults_served));

  bool ok = finished && machine.TtyOutput(0) == "0123456789" && machine.TtyDuplicates() == 0;
  std::printf("\n%s\n", ok ? "OK: output identical to a failure-free run."
                           : "FAILURE: output diverged!");
  return ok ? 0 : 1;
}
