// terminal_session: an interactive-style session — a guest shell echoes
// typed lines with a counter prefix and handles ^C via a signal handler
// (§7.5.2) — surviving the crash of the cluster hosting the *tty server*
// itself. Shows the peripheral-server recovery story of §7.9: the active
// backup takes over the terminal line, at most a small re-emission window
// appears in the raw stream, and the deduplicated view is exact.
//
//   $ ./examples/terminal_session

#include <cstdio>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

using namespace auragen;

int main() {
  MachineOptions options;
  options.config.num_clusters = 2;
  Machine machine(options);
  machine.Boot();

  // Shell: prints a prompt, then loops: read a line from the terminal, echo
  // it back prefixed by a sequence digit. ^C raises SIGINT; the signal
  // interrupts the blocked read (restartable-syscall semantics) and the
  // handler says goodbye and exits — like a shell trapping SIGINT.
  Executable shell = MustAssemble(R"(
start:
    li r1, handler
    sys sigset
    li r1, 2
    li r2, prompt
    li r3, 2
    sys write
    li r8, 48          ; '0'
loop:
    li r1, 2
    li r2, buf
    li r3, 32
    sys read           ; one input line (interruptible by SIGINT)
    mov r4, r0
    li r12, 0
    beq r4, r12, loop
    li r11, line
    addi r8, r8, 1
    stb r8, r11, 0
    li r1, 2
    li r2, line
    li r3, 2
    sys write          ; "N>"
    li r1, 2
    li r2, buf
    mov r3, r4
    sys write          ; echo
    jmp loop
handler:
    li r1, 2
    li r2, byemsg
    li r3, 3
    sys write
    exit 0
.data
prompt: .ascii "$ "
line: .ascii "?>"
buf: .space 32
byemsg: .ascii "bye"
)");

  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.backup_cluster = 0;
  machine.SpawnUserProgram(1, shell, opts);

  // Scripted "typing". The tty server lives in cluster 0, which dies
  // between the second and third line.
  SimTime t0 = machine.Now();
  machine.InjectTtyInput(0, "ls\n", t0 + 20'000);
  machine.InjectTtyInput(0, "make\n", t0 + 40'000);
  machine.CrashClusterAt(t0 + 55'000, 0);
  machine.InjectTtyInput(0, "again\n", t0 + 120'000);
  machine.InjectTtyInput(0, "\x03", t0 + 170'000);

  bool done = machine.RunUntilAllExited(120'000'000);
  machine.Settle();

  std::printf("session finished: %s\n", done ? "yes" : "NO");
  std::printf("transcript (deduplicated):\n---\n%s\n---\n", machine.TtyOutput(0).c_str());
  std::printf("raw records: %zu, duplicates from server re-emission: %llu\n",
              machine.tty_raw().size(),
              static_cast<unsigned long long>(machine.TtyDuplicates()));
  std::printf("tty server now primary in cluster %u (was 0)\n",
              machine.tty_server_addr().primary);

  std::string expected = "$ 1>ls\n2>make\n3>again\nbye";
  bool ok = done && machine.TtyOutput(0) == expected;
  std::printf("%s\n", ok ? "OK: session survived the terminal server's crash."
                         : "FAILURE: transcript diverged!");
  return ok ? 0 : 1;
}
