#include "src/avm/assembler.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "src/base/check.h"

namespace auragen {
namespace {

struct Token {
  std::string text;
};

// One operand as parsed: either a register, a literal, or a label reference
// resolved in pass 2.
struct Operand {
  enum class Kind { kReg, kImm, kLabel } kind;
  uint8_t reg = 0;
  uint32_t imm = 0;
  std::string label;
};

struct Line {
  int number = 0;
  std::string label;               // optional "name:" definition
  std::string mnemonic;            // lowercased; empty for label-only lines
  std::vector<Operand> operands;
  std::string str_literal;         // for .ascii/.asciz
  bool has_str = false;
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  bool Parse(std::vector<Line>* out, std::string* error) {
    std::istringstream stream{std::string(src_)};
    std::string raw;
    int line_no = 0;
    while (std::getline(stream, raw)) {
      ++line_no;
      std::string err;
      if (!ParseLine(raw, line_no, out, &err)) {
        *error = "line " + std::to_string(line_no) + ": " + err;
        return false;
      }
    }
    return true;
  }

 private:
  static std::string StripComment(const std::string& s) {
    std::string out;
    bool in_str = false;
    for (char c : s) {
      if (c == '"') {
        in_str = !in_str;
      }
      if (!in_str && (c == ';' || c == '#')) {
        break;
      }
      out.push_back(c);
    }
    return out;
  }

  bool ParseLine(const std::string& raw, int number, std::vector<Line>* out, std::string* err) {
    std::string s = StripComment(raw);
    size_t pos = 0;
    auto skip_ws = [&] {
      while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
        ++pos;
      }
    };
    skip_ws();
    if (pos == s.size()) {
      return true;
    }

    Line line;
    line.number = number;

    // Optional label.
    if (IsIdentStart(s[pos]) && s[pos] != '.') {
      size_t start = pos;
      while (pos < s.size() && IsIdentChar(s[pos])) {
        ++pos;
      }
      size_t after = pos;
      skip_ws();
      if (pos < s.size() && s[pos] == ':') {
        line.label = s.substr(start, after - start);
        ++pos;
        skip_ws();
      } else {
        pos = start;  // was a mnemonic, rewind
      }
    }

    if (pos < s.size()) {
      size_t start = pos;
      while (pos < s.size() && IsIdentChar(s[pos])) {
        ++pos;
      }
      line.mnemonic = s.substr(start, pos - start);
      for (char& c : line.mnemonic) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      skip_ws();

      // String literal operand?
      if (pos < s.size() && s[pos] == '"') {
        ++pos;
        std::string lit;
        while (pos < s.size() && s[pos] != '"') {
          char c = s[pos++];
          if (c == '\\' && pos < s.size()) {
            char e = s[pos++];
            switch (e) {
              case 'n': lit.push_back('\n'); break;
              case 't': lit.push_back('\t'); break;
              case '0': lit.push_back('\0'); break;
              case '\\': lit.push_back('\\'); break;
              case '"': lit.push_back('"'); break;
              default: lit.push_back(e); break;
            }
          } else {
            lit.push_back(c);
          }
        }
        if (pos >= s.size()) {
          *err = "unterminated string";
          return false;
        }
        ++pos;
        line.str_literal = lit;
        line.has_str = true;
      } else {
        // Comma-separated operands.
        while (pos < s.size()) {
          skip_ws();
          if (pos >= s.size()) {
            break;
          }
          size_t op_start = pos;
          while (pos < s.size() && s[pos] != ',') {
            ++pos;
          }
          std::string tok = s.substr(op_start, pos - op_start);
          // trim
          while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.back()))) {
            tok.pop_back();
          }
          size_t lead = 0;
          while (lead < tok.size() && std::isspace(static_cast<unsigned char>(tok[lead]))) {
            ++lead;
          }
          tok = tok.substr(lead);
          if (tok.empty()) {
            *err = "empty operand";
            return false;
          }
          Operand op;
          if (!ParseOperand(tok, &op, err)) {
            return false;
          }
          line.operands.push_back(std::move(op));
          if (pos < s.size() && s[pos] == ',') {
            ++pos;
          }
        }
      }
    }

    out->push_back(std::move(line));
    return true;
  }

  static bool ParseOperand(const std::string& tok, Operand* op, std::string* err) {
    std::string low = tok;
    for (char& c : low) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    // Register?
    auto as_reg = [&](const std::string& t) -> std::optional<uint8_t> {
      if (t == "sp") {
        return kSpReg;
      }
      if (t == "lr") {
        return kLrReg;
      }
      if (t.size() >= 2 && t[0] == 'r') {
        char* end = nullptr;
        long v = std::strtol(t.c_str() + 1, &end, 10);
        if (end != nullptr && *end == '\0' && v >= 0 && v < static_cast<long>(kAvmNumRegs)) {
          return static_cast<uint8_t>(v);
        }
      }
      return std::nullopt;
    };
    if (auto r = as_reg(low)) {
      op->kind = Operand::Kind::kReg;
      op->reg = *r;
      return true;
    }
    // Char literal?
    if (tok.size() >= 3 && tok.front() == '\'') {
      char c = tok[1];
      if (c == '\\' && tok.size() >= 4) {
        switch (tok[2]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          default: c = tok[2]; break;
        }
      }
      op->kind = Operand::Kind::kImm;
      op->imm = static_cast<uint32_t>(c);
      return true;
    }
    // Number?
    if (!tok.empty() && (std::isdigit(static_cast<unsigned char>(tok[0])) || tok[0] == '-' ||
                         tok[0] == '+')) {
      char* end = nullptr;
      long long v = std::strtoll(tok.c_str(), &end, 0);
      if (end == nullptr || *end != '\0') {
        *err = "bad number: " + tok;
        return false;
      }
      op->kind = Operand::Kind::kImm;
      op->imm = static_cast<uint32_t>(v);
      return true;
    }
    // Label reference.
    if (IsIdentStart(tok[0])) {
      op->kind = Operand::Kind::kLabel;
      op->label = tok;
      return true;
    }
    *err = "unparseable operand: " + tok;
    return false;
  }

  std::string_view src_;
};

const std::map<std::string, Sys>& SysNames() {
  static const std::map<std::string, Sys> kMap = {
      {"open", Sys::kOpen},     {"close", Sys::kClose},   {"read", Sys::kRead},
      {"write", Sys::kWrite},   {"fork", Sys::kFork},     {"exit", Sys::kExit},
      {"getpid", Sys::kGetpid}, {"gettime", Sys::kGettime}, {"alarm", Sys::kAlarm},
      {"sigset", Sys::kSigset}, {"sigret", Sys::kSigret}, {"yield", Sys::kYield},
      {"bunch", Sys::kBunch},   {"which", Sys::kWhich},   {"writev", Sys::kWritev},
      {"putc", Sys::kDebugPutc}, {"synchint", Sys::kSyncHint},
      {"mark", Sys::kMark},
  };
  return kMap;
}

struct Emitter {
  Bytes text;
  Bytes data;
  std::map<std::string, uint32_t> labels;  // resolved in pass 2 for data? two-pass below
};

// Size in bytes a line will occupy in its section. Pseudo-instructions may
// expand to several instructions.
struct Sizer {
  static std::optional<uint32_t> InstrCount(const std::string& m) {
    static const std::map<std::string, uint32_t> kCounts = {
        {"nop", 1},  {"halt", 1}, {"li", 1},   {"mov", 1},  {"ld", 1},   {"ldb", 1},
        {"st", 1},   {"stb", 1},  {"add", 1},  {"sub", 1},  {"mul", 1},  {"div", 1},
        {"mod", 1},  {"and", 1},  {"or", 1},   {"xor", 1},  {"shl", 1},  {"shr", 1},
        {"slt", 1},  {"sltu", 1}, {"addi", 1}, {"jmp", 1},  {"beq", 1},  {"bne", 1},
        {"blt", 1},  {"bge", 1},  {"jal", 1},  {"jr", 1},   {"sys", 1},
        {"call", 1}, {"ret", 1},  {"push", 2}, {"pop", 2},  {"exit", 2},
    };
    auto it = kCounts.find(m);
    if (it == kCounts.end()) {
      return std::nullopt;
    }
    return it->second;
  }
};

class Assembler {
 public:
  AsmOutput Run(std::string_view source) {
    AsmOutput out;
    std::vector<Line> lines;
    if (!Parser(source).Parse(&lines, &out.error)) {
      return out;
    }

    // Pass 1: lay out sections, record label addresses. Data follows text,
    // 8-aligned.
    uint32_t text_size = 0;
    uint32_t data_size = 0;
    bool in_data = false;
    for (const Line& line : lines) {
      uint32_t& cursor = in_data ? data_size : text_size;
      if (!line.label.empty()) {
        pending_labels_.push_back(line.label);
      }
      if (line.mnemonic.empty()) {
        continue;
      }
      if (line.mnemonic == ".text") {
        in_data = false;
        continue;
      }
      if (line.mnemonic == ".data") {
        in_data = true;
        continue;
      }
      // Bind pending labels to the current cursor of the active section.
      uint32_t size = 0;
      std::string err;
      if (!SizeOf(line, &size, &err)) {
        return Fail(line, err);
      }
      BindLabels(in_data, cursor);
      cursor += size;
    }
    // Labels at end of file bind to the end of the current section.
    BindLabels(in_data, in_data ? data_size : text_size);

    data_base_ = (text_size + 7u) & ~7u;
    for (auto& [name, loc] : label_locs_) {
      labels_[name] = loc.in_data ? data_base_ + loc.offset : loc.offset;
    }

    // Pass 2: emit.
    in_data = false;
    Bytes text;
    Bytes data;
    for (const Line& line : lines) {
      if (line.mnemonic.empty()) {
        continue;
      }
      if (line.mnemonic == ".text") {
        in_data = false;
        continue;
      }
      if (line.mnemonic == ".data") {
        in_data = true;
        continue;
      }
      Bytes& sect = in_data ? data : text;
      std::string err;
      if (!Emit(line, &sect, &err)) {
        return Fail(line, err);
      }
    }

    Executable exe;
    exe.image = std::move(text);
    exe.image.resize(data_base_, 0);
    exe.image.insert(exe.image.end(), data.begin(), data.end());
    if (auto it = labels_.find("start"); it != labels_.end()) {
      exe.entry = it->second;
    } else {
      exe.entry = 0;
    }
    if (exe.image.size() > kStackTop) {
      out.error = "image too large: " + std::to_string(exe.image.size());
      return out;
    }

    out.ok = true;
    out.exe = std::move(exe);
    return out;
  }

 private:
  struct LabelLoc {
    bool in_data;
    uint32_t offset;
  };

  void BindLabels(bool in_data, uint32_t offset) {
    for (const std::string& name : pending_labels_) {
      label_locs_[name] = LabelLoc{in_data, offset};
    }
    pending_labels_.clear();
  }

  static AsmOutput Fail(const Line& line, const std::string& msg) {
    AsmOutput out;
    out.error = "line " + std::to_string(line.number) + ": " + msg;
    return out;
  }

  bool SizeOf(const Line& line, uint32_t* size, std::string* err) {
    const std::string& m = line.mnemonic;
    if (auto count = Sizer::InstrCount(m)) {
      *size = *count * kAvmInstrBytes;
      return true;
    }
    if (m == ".word") {
      *size = static_cast<uint32_t>(line.operands.size()) * 4;
      return true;
    }
    if (m == ".byte") {
      *size = static_cast<uint32_t>(line.operands.size());
      return true;
    }
    if (m == ".ascii" || m == ".asciz") {
      if (!line.has_str) {
        *err = m + " needs a string";
        return false;
      }
      *size = static_cast<uint32_t>(line.str_literal.size()) + (m == ".asciz" ? 1 : 0);
      return true;
    }
    if (m == ".space") {
      if (line.operands.size() != 1 || line.operands[0].kind != Operand::Kind::kImm) {
        *err = ".space needs a literal size";
        return false;
      }
      *size = line.operands[0].imm;
      return true;
    }
    if (m == ".align") {
      // Sized during pass 1 by current offset — handled by caller? We align
      // by padding to 8 in both passes using the same cursor rule, so we can
      // compute it here only if we track the cursor. Simplify: .align pads a
      // fixed 0..7; we instead forbid it in favour of automatic 8-alignment
      // of .word.
      *err = ".align unsupported (sections are 8-aligned; .word is naturally aligned)";
      return false;
    }
    *err = "unknown mnemonic: " + m;
    return false;
  }

  bool ResolveImm(const Operand& op, uint32_t* out, std::string* err) const {
    if (op.kind == Operand::Kind::kImm) {
      *out = op.imm;
      return true;
    }
    if (op.kind == Operand::Kind::kLabel) {
      auto it = labels_.find(op.label);
      if (it == labels_.end()) {
        *err = "undefined label: " + op.label;
        return false;
      }
      *out = it->second;
      return true;
    }
    *err = "expected immediate or label, got register";
    return false;
  }

  bool Emit(const Line& line, Bytes* sect, std::string* err) {
    const std::string& m = line.mnemonic;
    auto push_instr = [&](Instr in) {
      uint8_t raw[kAvmInstrBytes];
      EncodeInstr(in, raw);
      sect->insert(sect->end(), raw, raw + kAvmInstrBytes);
    };
    auto need = [&](size_t n) {
      if (line.operands.size() != n) {
        *err = m + " wants " + std::to_string(n) + " operands, got " +
               std::to_string(line.operands.size());
        return false;
      }
      return true;
    };
    auto reg_of = [&](size_t i, uint8_t* r) {
      if (line.operands[i].kind != Operand::Kind::kReg) {
        *err = m + ": operand " + std::to_string(i + 1) + " must be a register";
        return false;
      }
      *r = line.operands[i].reg;
      return true;
    };
    auto imm_of = [&](size_t i, uint32_t* v) { return ResolveImm(line.operands[i], v, err); };

    // Directives.
    if (m == ".word") {
      for (const Operand& op : line.operands) {
        uint32_t v = 0;
        if (!ResolveImm(op, &v, err)) {
          return false;
        }
        for (int i = 0; i < 4; ++i) {
          sect->push_back(static_cast<uint8_t>(v >> (8 * i)));
        }
      }
      return true;
    }
    if (m == ".byte") {
      for (const Operand& op : line.operands) {
        uint32_t v = 0;
        if (!ResolveImm(op, &v, err)) {
          return false;
        }
        sect->push_back(static_cast<uint8_t>(v));
      }
      return true;
    }
    if (m == ".ascii" || m == ".asciz") {
      for (char c : line.str_literal) {
        sect->push_back(static_cast<uint8_t>(c));
      }
      if (m == ".asciz") {
        sect->push_back(0);
      }
      return true;
    }
    if (m == ".space") {
      sect->insert(sect->end(), line.operands[0].imm, 0);
      return true;
    }

    // Three-register ALU ops.
    static const std::map<std::string, Op> kAlu = {
        {"add", Op::kAdd}, {"sub", Op::kSub}, {"mul", Op::kMul}, {"div", Op::kDiv},
        {"mod", Op::kMod}, {"and", Op::kAnd}, {"or", Op::kOr},   {"xor", Op::kXor},
        {"shl", Op::kShl}, {"shr", Op::kShr}, {"slt", Op::kSlt}, {"sltu", Op::kSltu},
    };
    if (auto it = kAlu.find(m); it != kAlu.end()) {
      if (!need(3)) {
        return false;
      }
      Instr in;
      in.op = it->second;
      if (!reg_of(0, &in.ra) || !reg_of(1, &in.rb) || !reg_of(2, &in.rc)) {
        return false;
      }
      push_instr(in);
      return true;
    }

    // Branches: ra, rb, target.
    static const std::map<std::string, Op> kBranch = {
        {"beq", Op::kBeq}, {"bne", Op::kBne}, {"blt", Op::kBlt}, {"bge", Op::kBge}};
    if (auto it = kBranch.find(m); it != kBranch.end()) {
      if (!need(3)) {
        return false;
      }
      Instr in;
      in.op = it->second;
      if (!reg_of(0, &in.ra) || !reg_of(1, &in.rb) || !imm_of(2, &in.imm)) {
        return false;
      }
      push_instr(in);
      return true;
    }

    if (m == "nop") { push_instr({}); return true; }
    if (m == "halt") { Instr in; in.op = Op::kHalt; push_instr(in); return true; }
    if (m == "li") {
      if (!need(2)) { return false; }
      Instr in; in.op = Op::kLi;
      if (!reg_of(0, &in.ra) || !imm_of(1, &in.imm)) { return false; }
      push_instr(in); return true;
    }
    if (m == "mov") {
      if (!need(2)) { return false; }
      Instr in; in.op = Op::kMov;
      if (!reg_of(0, &in.ra) || !reg_of(1, &in.rb)) { return false; }
      push_instr(in); return true;
    }
    if (m == "addi") {
      if (!need(3)) { return false; }
      Instr in; in.op = Op::kAddi;
      if (!reg_of(0, &in.ra) || !reg_of(1, &in.rb) || !imm_of(2, &in.imm)) { return false; }
      push_instr(in); return true;
    }
    // Loads/stores: ld ra, rb, off  (address = rb + off); off optional.
    static const std::map<std::string, Op> kMem = {
        {"ld", Op::kLd}, {"ldb", Op::kLdb}, {"st", Op::kSt}, {"stb", Op::kStb}};
    if (auto it = kMem.find(m); it != kMem.end()) {
      if (line.operands.size() != 2 && line.operands.size() != 3) {
        *err = m + " wants 2 or 3 operands";
        return false;
      }
      Instr in;
      in.op = it->second;
      if (!reg_of(0, &in.ra) || !reg_of(1, &in.rb)) { return false; }
      if (line.operands.size() == 3 && !imm_of(2, &in.imm)) { return false; }
      push_instr(in);
      return true;
    }
    if (m == "jmp" || m == "jal" || m == "call") {
      if (!need(1)) { return false; }
      Instr in;
      in.op = (m == "jmp") ? Op::kJmp : Op::kJal;
      if (!imm_of(0, &in.imm)) { return false; }
      push_instr(in);
      return true;
    }
    if (m == "jr") {
      if (!need(1)) { return false; }
      Instr in; in.op = Op::kJr;
      if (!reg_of(0, &in.ra)) { return false; }
      push_instr(in); return true;
    }
    if (m == "ret") {
      if (!need(0)) { return false; }
      Instr in; in.op = Op::kJr; in.ra = kLrReg;
      push_instr(in); return true;
    }
    if (m == "push") {
      if (!need(1)) { return false; }
      uint8_t r = 0;
      if (!reg_of(0, &r)) { return false; }
      Instr sub; sub.op = Op::kAddi; sub.ra = kSpReg; sub.rb = kSpReg;
      sub.imm = static_cast<uint32_t>(-4);
      push_instr(sub);
      Instr st; st.op = Op::kSt; st.ra = r; st.rb = kSpReg; st.imm = 0;
      push_instr(st);
      return true;
    }
    if (m == "pop") {
      if (!need(1)) { return false; }
      uint8_t r = 0;
      if (!reg_of(0, &r)) { return false; }
      Instr ld; ld.op = Op::kLd; ld.ra = r; ld.rb = kSpReg; ld.imm = 0;
      push_instr(ld);
      Instr add; add.op = Op::kAddi; add.ra = kSpReg; add.rb = kSpReg; add.imm = 4;
      push_instr(add);
      return true;
    }
    if (m == "exit") {
      if (!need(1)) { return false; }
      uint32_t v = 0;
      if (!imm_of(0, &v)) { return false; }
      Instr li; li.op = Op::kLi; li.ra = 1; li.imm = v;
      push_instr(li);
      Instr sys; sys.op = Op::kSys; sys.imm = static_cast<uint32_t>(Sys::kExit);
      push_instr(sys);
      return true;
    }
    if (m == "sys") {
      if (!need(1)) { return false; }
      Instr in;
      in.op = Op::kSys;
      const Operand& op = line.operands[0];
      if (op.kind == Operand::Kind::kLabel) {
        auto it = SysNames().find(op.label);
        if (it == SysNames().end()) {
          *err = "unknown syscall name: " + op.label;
          return false;
        }
        in.imm = static_cast<uint32_t>(it->second);
      } else if (op.kind == Operand::Kind::kImm) {
        in.imm = op.imm;
      } else {
        *err = "sys wants a number or name";
        return false;
      }
      push_instr(in);
      return true;
    }

    *err = "unknown mnemonic: " + m;
    return false;
  }

  std::vector<std::string> pending_labels_;
  std::map<std::string, LabelLoc> label_locs_;
  std::map<std::string, uint32_t> labels_;
  uint32_t data_base_ = 0;
};

}  // namespace

AsmOutput Assemble(std::string_view source) { return Assembler().Run(source); }

Executable MustAssemble(std::string_view source) {
  AsmOutput out = Assemble(source);
  AURAGEN_CHECK(out.ok) << "assembly failed:" << out.error;
  return std::move(out.exe);
}

}  // namespace auragen
