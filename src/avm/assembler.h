// Two-pass assembler for AVM programs.
//
// Guest programs in examples/ and tests/ are written in this assembly so the
// transparency claim (§3.3) is demonstrable: the same source runs unchanged
// with fault tolerance on or off.
//
// Syntax:
//   ; or # start a comment
//   label:            — defines `label` at the current location
//   .text / .data     — sections; text is emitted first, then data
//   .word v, v, ...   — 32-bit little-endian values (numbers or labels)
//   .byte v, v, ...
//   .ascii "s" / .asciz "s"
//   .space N          — N zero bytes
//   .align            — pad to an 8-byte boundary
//
// Operands: registers r0..r15 (aliases sp=r14, lr=r15), immediates in
// decimal / 0x hex / 'c' char / label, negative values allowed.
//
// Pseudo-instructions: call <label> (jal), ret (jr lr),
// push <r> / pop <r>, exit <imm> (li r1,imm; halt).
// `sys` accepts a number or a name: open close read write fork exit getpid
// gettime alarm sigset sigret yield bunch which writev putc synchint mark.

#ifndef AURAGEN_SRC_AVM_ASSEMBLER_H_
#define AURAGEN_SRC_AVM_ASSEMBLER_H_

#include <string>
#include <string_view>

#include "src/avm/program.h"

namespace auragen {

struct AsmOutput {
  bool ok = false;
  std::string error;   // "line N: message" when !ok
  Executable exe;
};

AsmOutput Assemble(std::string_view source);

// Convenience for tests/examples: asserts on assembly errors.
Executable MustAssemble(std::string_view source);

}  // namespace auragen

#endif  // AURAGEN_SRC_AVM_ASSEMBLER_H_
