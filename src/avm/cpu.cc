#include "src/avm/cpu.h"

#include <sstream>

namespace auragen {

namespace {

StepResult PageFault(PageNum page) {
  StepResult r;
  r.kind = StepKind::kPageFault;
  r.fault_page = page;
  return r;
}

StepResult Fault(const char* reason) {
  StepResult r;
  r.kind = StepKind::kFault;
  r.fault_reason = reason;
  return r;
}

}  // namespace

StepResult Step(CpuContext& ctx, GuestMemory& mem) {
  // Fetch. The PC must be 8-byte aligned; text pages are ordinary pages and
  // can fault like any other (text is demand-paged on recovery, §7.10.2).
  if (ctx.pc % kAvmInstrBytes != 0 || ctx.pc + kAvmInstrBytes > kAvmMemBytes) {
    return Fault("bad pc");
  }
  uint8_t raw[kAvmInstrBytes];
  {
    GuestMemory::Access a = mem.FetchInstr(ctx.pc, raw);
    if (a == GuestMemory::Access::kFault) {
      return PageFault(mem.fault_page());
    }
    if (a == GuestMemory::Access::kOutOfRange) {
      return Fault("fetch out of range");
    }
  }
  Instr in = DecodeInstr(raw);

  auto reg_ok = [](uint8_t r) { return r < kAvmNumRegs; };
  if (!reg_ok(in.ra) || !reg_ok(in.rb) || !reg_ok(in.rc)) {
    return Fault("bad register");
  }
  uint32_t& ra = ctx.regs[in.ra];
  uint32_t rb = ctx.regs[in.rb];
  uint32_t rc = ctx.regs[in.rc];
  uint32_t next_pc = ctx.pc + kAvmInstrBytes;

  switch (in.op) {
    case Op::kNop:
      break;
    case Op::kHalt: {
      StepResult r;
      r.kind = StepKind::kHalt;
      return r;
    }

    case Op::kLi:
      ra = in.imm;
      break;
    case Op::kMov:
      ra = rb;
      break;

    case Op::kLd: {
      uint32_t v = 0;
      GuestMemory::Access a = mem.Read32(rb + in.imm, &v);
      if (a == GuestMemory::Access::kFault) {
        return PageFault(mem.fault_page());
      }
      if (a == GuestMemory::Access::kOutOfRange) {
        return Fault("load out of range");
      }
      ra = v;
      break;
    }
    case Op::kLdb: {
      uint8_t v = 0;
      GuestMemory::Access a = mem.Read8(rb + in.imm, &v);
      if (a == GuestMemory::Access::kFault) {
        return PageFault(mem.fault_page());
      }
      if (a == GuestMemory::Access::kOutOfRange) {
        return Fault("load out of range");
      }
      ra = v;
      break;
    }
    case Op::kSt: {
      GuestMemory::Access a = mem.Write32(rb + in.imm, ra);
      if (a == GuestMemory::Access::kFault) {
        return PageFault(mem.fault_page());
      }
      if (a == GuestMemory::Access::kOutOfRange) {
        return Fault("store out of range");
      }
      break;
    }
    case Op::kStb: {
      GuestMemory::Access a = mem.Write8(rb + in.imm, static_cast<uint8_t>(ra));
      if (a == GuestMemory::Access::kFault) {
        return PageFault(mem.fault_page());
      }
      if (a == GuestMemory::Access::kOutOfRange) {
        return Fault("store out of range");
      }
      break;
    }

    case Op::kAdd: ra = rb + rc; break;
    case Op::kSub: ra = rb - rc; break;
    case Op::kMul: ra = rb * rc; break;
    case Op::kDiv:
      if (rc == 0) {
        return Fault("divide by zero");
      }
      ra = static_cast<uint32_t>(static_cast<int32_t>(rb) / static_cast<int32_t>(rc));
      break;
    case Op::kMod:
      if (rc == 0) {
        return Fault("divide by zero");
      }
      ra = static_cast<uint32_t>(static_cast<int32_t>(rb) % static_cast<int32_t>(rc));
      break;
    case Op::kAnd: ra = rb & rc; break;
    case Op::kOr: ra = rb | rc; break;
    case Op::kXor: ra = rb ^ rc; break;
    case Op::kShl: ra = rb << (rc & 31); break;
    case Op::kShr: ra = rb >> (rc & 31); break;
    case Op::kSlt: ra = static_cast<int32_t>(rb) < static_cast<int32_t>(rc) ? 1 : 0; break;
    case Op::kSltu: ra = rb < rc ? 1 : 0; break;
    case Op::kAddi: ra = rb + in.imm; break;

    case Op::kJmp:
      next_pc = in.imm;
      break;
    case Op::kBeq:
      if (ctx.regs[in.ra] == rb) {
        next_pc = in.imm;
      }
      break;
    case Op::kBne:
      if (ctx.regs[in.ra] != rb) {
        next_pc = in.imm;
      }
      break;
    case Op::kBlt:
      if (static_cast<int32_t>(ctx.regs[in.ra]) < static_cast<int32_t>(rb)) {
        next_pc = in.imm;
      }
      break;
    case Op::kBge:
      if (static_cast<int32_t>(ctx.regs[in.ra]) >= static_cast<int32_t>(rb)) {
        next_pc = in.imm;
      }
      break;
    case Op::kJal:
      ctx.regs[kLrReg] = next_pc;
      next_pc = in.imm;
      break;
    case Op::kJr:
      next_pc = ctx.regs[in.ra];
      break;

    case Op::kSys: {
      // The trap retires: pc moves past SYS so the kernel resumes the
      // process at the next instruction after writing r0.
      ctx.pc = next_pc;
      StepResult r;
      r.kind = StepKind::kSyscall;
      r.sys_num = in.imm;
      return r;
    }

    default:
      return Fault("illegal opcode");
  }

  ctx.pc = next_pc;
  return StepResult{};
}

std::string Disassemble(const Instr& in) {
  std::ostringstream os;
  auto r = [](uint8_t n) { return "r" + std::to_string(n); };
  switch (in.op) {
    case Op::kNop: os << "nop"; break;
    case Op::kHalt: os << "halt"; break;
    case Op::kLi: os << "li " << r(in.ra) << ", " << in.imm; break;
    case Op::kMov: os << "mov " << r(in.ra) << ", " << r(in.rb); break;
    case Op::kLd: os << "ld " << r(in.ra) << ", [" << r(in.rb) << "+" << in.imm << "]"; break;
    case Op::kLdb: os << "ldb " << r(in.ra) << ", [" << r(in.rb) << "+" << in.imm << "]"; break;
    case Op::kSt: os << "st " << r(in.ra) << ", [" << r(in.rb) << "+" << in.imm << "]"; break;
    case Op::kStb: os << "stb " << r(in.ra) << ", [" << r(in.rb) << "+" << in.imm << "]"; break;
    case Op::kAdd: os << "add " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kSub: os << "sub " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kMul: os << "mul " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kDiv: os << "div " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kMod: os << "mod " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kAnd: os << "and " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kOr: os << "or " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kXor: os << "xor " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kShl: os << "shl " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kShr: os << "shr " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kSlt: os << "slt " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kSltu: os << "sltu " << r(in.ra) << ", " << r(in.rb) << ", " << r(in.rc); break;
    case Op::kAddi: os << "addi " << r(in.ra) << ", " << r(in.rb) << ", " << in.imm; break;
    case Op::kJmp: os << "jmp " << in.imm; break;
    case Op::kBeq: os << "beq " << r(in.ra) << ", " << r(in.rb) << ", " << in.imm; break;
    case Op::kBne: os << "bne " << r(in.ra) << ", " << r(in.rb) << ", " << in.imm; break;
    case Op::kBlt: os << "blt " << r(in.ra) << ", " << r(in.rb) << ", " << in.imm; break;
    case Op::kBge: os << "bge " << r(in.ra) << ", " << r(in.rb) << ", " << in.imm; break;
    case Op::kJal: os << "jal " << in.imm; break;
    case Op::kJr: os << "jr " << r(in.ra); break;
    case Op::kSys: os << "sys " << in.imm; break;
    default: os << "ILLEGAL(" << static_cast<int>(in.op) << ")"; break;
  }
  return os.str();
}

}  // namespace auragen
