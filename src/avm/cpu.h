// AVM interpreter.
//
// The CPU is deliberately a pure function: Step(context, memory) executes
// one instruction and reports what happened. All durable state lives in
// CpuContext (the register part of the PCB, §7.7) and GuestMemory (the page
// account, §7.6) — exactly the two things the sync protocol ships. An
// instruction that page-faults has *no* side effects and leaves the PC
// unchanged, so it re-executes cleanly after page-in.

#ifndef AURAGEN_SRC_AVM_CPU_H_
#define AURAGEN_SRC_AVM_CPU_H_

#include <cstdint>
#include <string>

#include "src/base/codec.h"
#include "src/avm/isa.h"
#include "src/avm/memory.h"

namespace auragen {

// Register context. This plus the guest memory is the complete user-mode
// state of a process; both serialize bit-exactly.
struct CpuContext {
  uint32_t regs[kAvmNumRegs] = {};
  uint32_t pc = 0;

  void Serialize(ByteWriter& w) const {
    for (uint32_t r : regs) {
      w.U32(r);
    }
    w.U32(pc);
  }
  static CpuContext Deserialize(ByteReader& r) {
    CpuContext c;
    for (uint32_t& reg : c.regs) {
      reg = r.U32();
    }
    c.pc = r.U32();
    return c;
  }
  friend bool operator==(const CpuContext& a, const CpuContext& b) {
    for (uint32_t i = 0; i < kAvmNumRegs; ++i) {
      if (a.regs[i] != b.regs[i]) {
        return false;
      }
    }
    return a.pc == b.pc;
  }
};

enum class StepKind : uint8_t {
  kOk,         // instruction retired
  kSyscall,    // SYS trap; pc already advanced, kernel writes r0 and resumes
  kPageFault,  // pc unchanged; re-execute after page-in
  kHalt,       // HALT retired; r1 = exit status
  kFault,      // synchronous program error (div0, illegal op, wild access);
               // deterministic, so it recurs identically on rollforward (§7.5.2)
};

struct StepResult {
  StepKind kind = StepKind::kOk;
  uint32_t sys_num = 0;       // valid when kSyscall
  PageNum fault_page = 0;     // valid when kPageFault
  const char* fault_reason = nullptr;  // valid when kFault
};

// Executes one instruction.
StepResult Step(CpuContext& ctx, GuestMemory& mem);

// Renders an instruction for traces and the disassembler.
std::string Disassemble(const Instr& instr);

}  // namespace auragen

#endif  // AURAGEN_SRC_AVM_CPU_H_
