// AVM — the Auragen Virtual Machine instruction set.
//
// The paper runs user programs on MC68000 work processors; what its
// algorithms actually require of the user ISA is (a) deterministic
// execution, (b) a process state that decomposes into a small register
// context (the PCB of §7.7) plus a paged address space (the page account of
// §7.6), and (c) a trap into the kernel for system calls. The AVM is the
// smallest ISA with those properties: 16 32-bit registers, a 64 KiB paged
// address space, and fixed 8-byte instructions.
//
// Instruction encoding (little-endian):
//   byte 0: opcode
//   byte 1: ra (destination / first operand register)
//   byte 2: rb
//   byte 3: rc
//   bytes 4..7: imm32
//
// Register conventions (enforced by the assembler's aliases, not hardware):
//   r0       return value / syscall result (negative values are -Errc)
//   r1..r5   arguments (function and syscall)
//   r14 (sp) stack pointer, grows down from kSignalSaveBase
//   r15 (lr) link register
//
// Memory map:
//   0x0000...          text, then data (loaded from the executable image)
//   ... up to 0xFDFF   heap/stack (stack grows down from 0xFE00)
//   0xFE00..0xFEFF     reserved scratch
//   0xFF00..0xFFFF     signal save area: the kernel spills the interrupted
//                      register context here before vectoring to a handler;
//                      SYS sigret restores it. Keeping it in *user* memory
//                      means it is captured by the ordinary page-based sync
//                      (§7.5.2's determinism requirement).

#ifndef AURAGEN_SRC_AVM_ISA_H_
#define AURAGEN_SRC_AVM_ISA_H_

#include <cstdint>

namespace auragen {

inline constexpr uint32_t kAvmMemBytes = 64 * 1024;
inline constexpr uint32_t kAvmPageBytes = 256;
inline constexpr uint32_t kAvmNumPages = kAvmMemBytes / kAvmPageBytes;
inline constexpr uint32_t kAvmNumRegs = 16;
inline constexpr uint32_t kAvmInstrBytes = 8;
inline constexpr uint32_t kSignalSaveBase = 0xFF00;
inline constexpr uint32_t kStackTop = 0xFE00;
inline constexpr uint32_t kSpReg = 14;
inline constexpr uint32_t kLrReg = 15;

enum class Op : uint8_t {
  kNop = 0x00,
  kHalt = 0x01,   // terminate with r1 as exit status (assembler sugar: EXIT)

  // Data movement.
  kLi = 0x10,     // ra = imm32
  kMov = 0x11,    // ra = rb
  kLd = 0x12,     // ra = mem32[rb + imm32]
  kLdb = 0x13,    // ra = mem8[rb + imm32]
  kSt = 0x14,     // mem32[rb + imm32] = ra
  kStb = 0x15,    // mem8[rb + imm32] = ra (low byte)

  // ALU, three-register: ra = rb OP rc.
  kAdd = 0x20,
  kSub = 0x21,
  kMul = 0x22,
  kDiv = 0x23,    // signed; divide by zero raises a synchronous fault
  kMod = 0x24,
  kAnd = 0x25,
  kOr = 0x26,
  kXor = 0x27,
  kShl = 0x28,
  kShr = 0x29,    // logical
  kSlt = 0x2a,    // ra = (int)rb < (int)rc
  kSltu = 0x2b,   // ra = rb < rc (unsigned)
  kAddi = 0x2c,   // ra = rb + imm32

  // Control flow; targets are absolute byte addresses in imm32.
  kJmp = 0x30,
  kBeq = 0x31,    // if ra == rb goto imm32
  kBne = 0x32,
  kBlt = 0x33,    // signed ra < rb
  kBge = 0x34,
  kJal = 0x35,    // lr = pc + 8; goto imm32
  kJr = 0x36,     // goto ra

  // Kernel trap; syscall number in imm32.
  kSys = 0x40,
};

// System calls. The mapping to the message system is the heart of the
// reproduction: every one of these either is serviced with purely
// cluster-independent data or turns into a message exchange, so that a
// rolled-forward backup observes identical results (§7.5).
enum class Sys : uint32_t {
  kOpen = 1,      // r1=name ptr, r2=name len -> fd   (open request to file server)
  kClose = 2,     // r1=fd
  kRead = 3,      // r1=fd, r2=buf, r3=max -> len; always blocking (§7.5.1)
  kWrite = 4,     // r1=fd, r2=buf, r3=len -> len
  kFork = 5,      // -> 0 in child, child gpid-low in parent (birth notice, §7.7)
  kExit = 6,      // r1=status
  kGetpid = 7,    // -> low 32 bits of the globally unique pid (§7.5.1)
  kGettime = 8,   // -> time via process server message round-trip (§7.5.1)
  kAlarm = 9,     // r1=delay us: SIGALRM via signal channel later (§7.5.2)
  kSigset = 10,   // r1=handler address (0 = ignore); one signal vector
  kSigret = 11,   // return from signal handler (restore save area)
  kYield = 12,    // relinquish the work processor
  kBunch = 13,    // r1=ptr to fd array, r2=count -> group id (§7.5.1)
  kWhich = 14,    // r1=group id -> fd of first channel with a message
  kWritev = 15,   // r1=fd, r2=buf, r3=len: write requiring server answer
  kDebugPutc = 16,// r1=char: UNSAFE direct host output, bypasses the message
                  // system; duplicates during rollforward by design (tests
                  // use it to observe recomputation)
  kSyncHint = 17, // ask the kernel to sync now (not required; tests/benches)
  kMark = 18,     // r1=phase, r2=tag: record a kRequestMark trace event for
                  // the SLO layer (src/workload); no observable guest effect
};

struct Instr {
  Op op = Op::kNop;
  uint8_t ra = 0;
  uint8_t rb = 0;
  uint8_t rc = 0;
  uint32_t imm = 0;
};

inline void EncodeInstr(const Instr& in, uint8_t out[kAvmInstrBytes]) {
  out[0] = static_cast<uint8_t>(in.op);
  out[1] = in.ra;
  out[2] = in.rb;
  out[3] = in.rc;
  out[4] = static_cast<uint8_t>(in.imm);
  out[5] = static_cast<uint8_t>(in.imm >> 8);
  out[6] = static_cast<uint8_t>(in.imm >> 16);
  out[7] = static_cast<uint8_t>(in.imm >> 24);
}

inline Instr DecodeInstr(const uint8_t in[kAvmInstrBytes]) {
  Instr i;
  i.op = static_cast<Op>(in[0]);
  i.ra = in[1];
  i.rb = in[2];
  i.rc = in[3];
  i.imm = static_cast<uint32_t>(in[4]) | (static_cast<uint32_t>(in[5]) << 8) |
          (static_cast<uint32_t>(in[6]) << 16) | (static_cast<uint32_t>(in[7]) << 24);
  return i;
}

}  // namespace auragen

#endif  // AURAGEN_SRC_AVM_ISA_H_
