#include "src/avm/memory.h"

namespace auragen {

GuestMemory::GuestMemory()
    : pages_(kAvmNumPages), resident_(kAvmNumPages, false), dirty_(kAvmNumPages, false) {}

GuestMemory::Access GuestMemory::Require(uint32_t addr, uint32_t len) {
  if (addr + len > kAvmMemBytes || addr + len < addr) {
    return Access::kOutOfRange;
  }
  PageNum first = PageOf(addr);
  PageNum last = PageOf(addr + len - 1);
  for (PageNum p = first; p <= last; ++p) {
    if (!resident_[p]) {
      fault_page_ = p;
      return Access::kFault;
    }
  }
  return Access::kOk;
}

GuestMemory::Access GuestMemory::Read8(uint32_t addr, uint8_t* out) {
  Access a = Require(addr, 1);
  if (a != Access::kOk) {
    return a;
  }
  *out = pages_[PageOf(addr)][addr % kAvmPageBytes];
  return Access::kOk;
}

GuestMemory::Access GuestMemory::Read32(uint32_t addr, uint32_t* out) {
  Access a = Require(addr, 4);
  if (a != Access::kOk) {
    return a;
  }
  uint32_t v = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    uint32_t byte_addr = addr + i;
    v |= static_cast<uint32_t>(pages_[PageOf(byte_addr)][byte_addr % kAvmPageBytes]) << (8 * i);
  }
  *out = v;
  return Access::kOk;
}

GuestMemory::Access GuestMemory::Write8(uint32_t addr, uint8_t value) {
  Access a = Require(addr, 1);
  if (a != Access::kOk) {
    return a;
  }
  PageNum p = PageOf(addr);
  pages_[p][addr % kAvmPageBytes] = value;
  dirty_[p] = true;
  return Access::kOk;
}

GuestMemory::Access GuestMemory::Write32(uint32_t addr, uint32_t value) {
  Access a = Require(addr, 4);
  if (a != Access::kOk) {
    return a;
  }
  for (uint32_t i = 0; i < 4; ++i) {
    uint32_t byte_addr = addr + i;
    PageNum p = PageOf(byte_addr);
    pages_[p][byte_addr % kAvmPageBytes] = static_cast<uint8_t>(value >> (8 * i));
    dirty_[p] = true;
  }
  return Access::kOk;
}

GuestMemory::Access GuestMemory::ReadRange(uint32_t addr, uint32_t len, Bytes* out) {
  Access a = Require(addr, len);
  if (a != Access::kOk) {
    return a;
  }
  out->clear();
  out->reserve(len);
  for (uint32_t i = 0; i < len; ++i) {
    uint32_t byte_addr = addr + i;
    out->push_back(pages_[PageOf(byte_addr)][byte_addr % kAvmPageBytes]);
  }
  return Access::kOk;
}

GuestMemory::Access GuestMemory::WriteRange(uint32_t addr, const Bytes& data) {
  Access a = Require(addr, static_cast<uint32_t>(data.size()));
  if (a != Access::kOk) {
    return a;
  }
  for (uint32_t i = 0; i < data.size(); ++i) {
    uint32_t byte_addr = addr + i;
    PageNum p = PageOf(byte_addr);
    pages_[p][byte_addr % kAvmPageBytes] = data[i];
    dirty_[p] = true;
  }
  return Access::kOk;
}

void GuestMemory::InstallPage(PageNum page, const Bytes& content) {
  AURAGEN_CHECK(page < kAvmNumPages);
  AURAGEN_CHECK(content.size() == kAvmPageBytes) << "bad page size" << content.size();
  pages_[page] = content;
  resident_[page] = true;
  dirty_[page] = false;
}

void GuestMemory::InstallPageDirty(PageNum page, const Bytes& content) {
  InstallPage(page, content);
  dirty_[page] = true;
}

void GuestMemory::MaterializeZero(PageNum page, bool dirty) {
  AURAGEN_CHECK(page < kAvmNumPages);
  pages_[page].assign(kAvmPageBytes, 0);
  resident_[page] = true;
  dirty_[page] = dirty;
}

Bytes GuestMemory::ExtractPage(PageNum page) const {
  AURAGEN_CHECK(page < kAvmNumPages);
  AURAGEN_CHECK(resident_[page]) << "extracting non-resident page" << page;
  return pages_[page];
}

std::vector<PageNum> GuestMemory::DirtyPages() const {
  std::vector<PageNum> out;
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    if (dirty_[p]) {
      out.push_back(p);
    }
  }
  return out;
}

uint32_t GuestMemory::DirtyCount() const {
  uint32_t n = 0;
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    n += dirty_[p] ? 1u : 0u;
  }
  return n;
}

void GuestMemory::ClearAllDirty() { dirty_.assign(kAvmNumPages, false); }

void GuestMemory::EvictAll() {
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    pages_[p].clear();
    pages_[p].shrink_to_fit();
    resident_[p] = false;
    dirty_[p] = false;
  }
}

uint32_t GuestMemory::resident_count() const {
  uint32_t n = 0;
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    n += resident_[p] ? 1u : 0u;
  }
  return n;
}

}  // namespace auragen
