#include "src/avm/memory.h"

#include <algorithm>
#include <cstring>

namespace auragen {

GuestMemory::GuestMemory()
    : pages_(kAvmNumPages), resident_(kAvmNumPages, false), dirty_gen_(kAvmNumPages, 0) {}

GuestMemory::Access GuestMemory::ReadRange(uint32_t addr, uint32_t len, Bytes* out) {
  Access a = Require(addr, len);
  if (a != Access::kOk) {
    return a;
  }
  out->resize(len);
  uint32_t done = 0;
  while (done < len) {
    uint32_t byte_addr = addr + done;
    uint32_t off = byte_addr % kAvmPageBytes;
    uint32_t chunk = std::min(len - done, kAvmPageBytes - off);
    std::memcpy(out->data() + done, pages_[PageOf(byte_addr)].data() + off, chunk);
    done += chunk;
  }
  return Access::kOk;
}

GuestMemory::Access GuestMemory::WriteRange(uint32_t addr, const Bytes& data) {
  uint32_t len = static_cast<uint32_t>(data.size());
  Access a = Require(addr, len);
  if (a != Access::kOk) {
    return a;
  }
  uint32_t done = 0;
  while (done < len) {
    uint32_t byte_addr = addr + done;
    PageNum p = PageOf(byte_addr);
    uint32_t off = byte_addr % kAvmPageBytes;
    uint32_t chunk = std::min(len - done, kAvmPageBytes - off);
    std::memcpy(pages_[p].data() + off, data.data() + done, chunk);
    dirty_gen_[p] = write_gen_;
    done += chunk;
  }
  return Access::kOk;
}

void GuestMemory::InstallPage(PageNum page, const Bytes& content) {
  AURAGEN_CHECK(page < kAvmNumPages);
  AURAGEN_CHECK(content.size() == kAvmPageBytes) << "bad page size" << content.size();
  pages_[page] = content;
  resident_[page] = true;
  dirty_gen_[page] = 0;
}

void GuestMemory::InstallPageDirty(PageNum page, const Bytes& content) {
  InstallPage(page, content);
  dirty_gen_[page] = write_gen_;
}

void GuestMemory::MaterializeZero(PageNum page, bool dirty) {
  AURAGEN_CHECK(page < kAvmNumPages);
  pages_[page].assign(kAvmPageBytes, 0);
  resident_[page] = true;
  dirty_gen_[page] = dirty ? write_gen_ : 0;
}

Bytes GuestMemory::ExtractPage(PageNum page) const {
  AURAGEN_CHECK(page < kAvmNumPages);
  AURAGEN_CHECK(resident_[page]) << "extracting non-resident page" << page;
  return pages_[page];
}

std::vector<PageNum> GuestMemory::DirtyPages() const {
  std::vector<PageNum> out;
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    if (Dirty(p)) {
      out.push_back(p);
    }
  }
  return out;
}

uint32_t GuestMemory::DirtyCount() const {
  uint32_t n = 0;
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    n += Dirty(p) ? 1u : 0u;
  }
  return n;
}

void GuestMemory::ClearAllDirty() {
  // Commit the current generation as flushed and open a new one, so pages
  // written from here on read as dirty again.
  flushed_gen_ = write_gen_;
  ++write_gen_;
}

std::vector<std::pair<PageNum, Bytes>> GuestMemory::CaptureFlushPages(bool full) {
  std::vector<std::pair<PageNum, Bytes>> out;
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    if (!resident_[p]) {
      continue;
    }
    if (full || Dirty(p)) {
      out.emplace_back(p, pages_[p]);
    }
  }
  ClearAllDirty();
  return out;
}

void GuestMemory::EvictAll() {
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    pages_[p].clear();
    pages_[p].shrink_to_fit();
    resident_[p] = false;
    dirty_gen_[p] = 0;
  }
}

uint32_t GuestMemory::resident_count() const {
  uint32_t n = 0;
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    n += resident_[p] ? 1u : 0u;
  }
  return n;
}

}  // namespace auragen
