// Paged guest memory with dirty and residency tracking.
//
// This is the cooperation point between the message system and the paging
// mechanism (§5.2, §7.6): sync ships exactly the pages dirtied since the
// last sync to the page server, and a recovering backup starts with *no*
// resident pages and demand-faults its address space back in (§7.10.2).
//
// Reads/writes return kFault when the page is not resident; the CPU aborts
// the current instruction without side effects so it can be re-executed
// after the kernel resolves the fault (zero-fill for fresh pages, a page
// server round-trip during/after recovery).

#ifndef AURAGEN_SRC_AVM_MEMORY_H_
#define AURAGEN_SRC_AVM_MEMORY_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/codec.h"
#include "src/base/types.h"
#include "src/avm/isa.h"

namespace auragen {

class GuestMemory {
 public:
  GuestMemory();

  // Access results. kFault sets fault_page().
  enum class Access : uint8_t { kOk, kFault, kOutOfRange };

  Access Read8(uint32_t addr, uint8_t* out);
  Access Read32(uint32_t addr, uint32_t* out);
  Access Write8(uint32_t addr, uint8_t value);
  Access Write32(uint32_t addr, uint32_t value);

  // Bulk access for kernel copies of syscall buffers. Faults on the first
  // non-resident page touched.
  Access ReadRange(uint32_t addr, uint32_t len, Bytes* out);
  Access WriteRange(uint32_t addr, const Bytes& data);

  PageNum fault_page() const { return fault_page_; }

  // Installs page content, resident + clean (page-in from the page server).
  void InstallPage(PageNum page, const Bytes& content);
  // Installs content, resident + dirty (program load, fork copy): the page
  // must reach the page account at the next sync.
  void InstallPageDirty(PageNum page, const Bytes& content);
  // Marks a page resident, zero-filled, dirty=false on page-in of a page the
  // server never saw (fresh stack/heap). Deterministic across replay.
  void MaterializeZero(PageNum page, bool dirty);

  Bytes ExtractPage(PageNum page) const;

  bool Resident(PageNum page) const { return resident_[page]; }
  bool Dirty(PageNum page) const { return dirty_[page]; }
  std::vector<PageNum> DirtyPages() const;
  uint32_t DirtyCount() const;
  void ClearDirty(PageNum page) { dirty_[page] = false; }
  void ClearAllDirty();

  // Drops every page (recovery: the backup begins with an empty resident
  // set, §7.10.2). Content is discarded — it must come back from the page
  // server.
  void EvictAll();

  uint32_t resident_count() const;

 private:
  Access Require(uint32_t addr, uint32_t len);

  std::vector<Bytes> pages_;     // page -> kAvmPageBytes content (or empty)
  std::vector<bool> resident_;
  std::vector<bool> dirty_;
  PageNum fault_page_ = 0;
};

inline PageNum PageOf(uint32_t addr) { return addr / kAvmPageBytes; }

}  // namespace auragen

#endif  // AURAGEN_SRC_AVM_MEMORY_H_
