// Paged guest memory with dirty and residency tracking.
//
// This is the cooperation point between the message system and the paging
// mechanism (§5.2, §7.6): sync ships exactly the pages dirtied since the
// last sync to the page server, and a recovering backup starts with *no*
// resident pages and demand-faults its address space back in (§7.10.2).
//
// Reads/writes return kFault when the page is not resident; the CPU aborts
// the current instruction without side effects so it can be re-executed
// after the kernel resolves the fault (zero-fill for fresh pages, a page
// server round-trip during/after recovery).

#ifndef AURAGEN_SRC_AVM_MEMORY_H_
#define AURAGEN_SRC_AVM_MEMORY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/base/codec.h"
#include "src/base/types.h"
#include "src/avm/isa.h"

namespace auragen {

class GuestMemory {
 public:
  GuestMemory();

  // Access results. kFault sets fault_page().
  enum class Access : uint8_t { kOk, kFault, kOutOfRange };

  Access Read8(uint32_t addr, uint8_t* out);
  Access Read32(uint32_t addr, uint32_t* out);
  Access Write8(uint32_t addr, uint8_t value);
  Access Write32(uint32_t addr, uint32_t value);

  // One aligned instruction word per call. Alignment guarantees the fetch
  // never crosses a page (kAvmPageBytes is a multiple of kAvmInstrBytes),
  // so a single residency check covers all bytes.
  Access FetchInstr(uint32_t addr, uint8_t out[kAvmInstrBytes]);

  // Bulk access for kernel copies of syscall buffers. Faults on the first
  // non-resident page touched.
  Access ReadRange(uint32_t addr, uint32_t len, Bytes* out);
  Access WriteRange(uint32_t addr, const Bytes& data);

  PageNum fault_page() const { return fault_page_; }

  // Installs page content, resident + clean (page-in from the page server).
  void InstallPage(PageNum page, const Bytes& content);
  // Installs content, resident + dirty (program load, fork copy): the page
  // must reach the page account at the next sync.
  void InstallPageDirty(PageNum page, const Bytes& content);
  // Marks a page resident, zero-filled, dirty=false on page-in of a page the
  // server never saw (fresh stack/heap). Deterministic across replay.
  void MaterializeZero(PageNum page, bool dirty);

  Bytes ExtractPage(PageNum page) const;

  bool Resident(PageNum page) const { return resident_[page]; }
  // Dirty = written since the last flush capture (generation newer than the
  // last one flushed).
  bool Dirty(PageNum page) const { return dirty_gen_[page] > flushed_gen_; }
  std::vector<PageNum> DirtyPages() const;
  uint32_t DirtyCount() const;
  void ClearDirty(PageNum page) { dirty_gen_[page] = 0; }
  void ClearAllDirty();

  // Copy-on-write flush capture: snapshots every page dirtied since the
  // previous capture (or every resident page when `full`), then advances
  // the dirty generation. Writes landing after the capture stamp the new
  // generation, so they belong to the *next* increment even while the
  // returned snapshots are still draining to the page server.
  std::vector<std::pair<PageNum, Bytes>> CaptureFlushPages(bool full);

  // Generation introspection (tests / diagnostics).
  uint32_t write_generation() const { return write_gen_; }
  uint32_t flushed_generation() const { return flushed_gen_; }
  uint32_t page_generation(PageNum page) const { return dirty_gen_[page]; }

  // Drops every page (recovery: the backup begins with an empty resident
  // set, §7.10.2). Content is discarded — it must come back from the page
  // server.
  void EvictAll();

  uint32_t resident_count() const;

 private:
  Access Require(uint32_t addr, uint32_t len);

  std::vector<Bytes> pages_;     // page -> kAvmPageBytes content (or empty)
  std::vector<bool> resident_;
  // Per-page dirty generation: the value of write_gen_ at the page's most
  // recent write (0 = never written / explicitly cleaned). A page is dirty
  // when its generation is newer than flushed_gen_, the generation covered
  // by the last flush capture.
  std::vector<uint32_t> dirty_gen_;
  uint32_t write_gen_ = 1;
  uint32_t flushed_gen_ = 0;
  PageNum fault_page_ = 0;
};

inline PageNum PageOf(uint32_t addr) { return addr / kAvmPageBytes; }

// The single-byte/word accessors sit on the interpreter's per-instruction
// path; they are defined inline so the fetch/decode loop pays no call cost.

inline GuestMemory::Access GuestMemory::Require(uint32_t addr, uint32_t len) {
  if (addr + len > kAvmMemBytes || addr + len < addr) {
    return Access::kOutOfRange;
  }
  PageNum first = PageOf(addr);
  PageNum last = PageOf(addr + len - 1);
  for (PageNum p = first; p <= last; ++p) {
    if (!resident_[p]) {
      fault_page_ = p;
      return Access::kFault;
    }
  }
  return Access::kOk;
}

inline GuestMemory::Access GuestMemory::Read8(uint32_t addr, uint8_t* out) {
  Access a = Require(addr, 1);
  if (a != Access::kOk) {
    return a;
  }
  *out = pages_[PageOf(addr)][addr % kAvmPageBytes];
  return Access::kOk;
}

inline GuestMemory::Access GuestMemory::Read32(uint32_t addr, uint32_t* out) {
  Access a = Require(addr, 4);
  if (a != Access::kOk) {
    return a;
  }
  uint32_t off = addr % kAvmPageBytes;
  if (off + 4 <= kAvmPageBytes) {
    const uint8_t* b = pages_[PageOf(addr)].data() + off;
    *out = static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
           static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
    return Access::kOk;
  }
  uint32_t v = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    uint32_t byte_addr = addr + i;
    v |= static_cast<uint32_t>(pages_[PageOf(byte_addr)][byte_addr % kAvmPageBytes]) << (8 * i);
  }
  *out = v;
  return Access::kOk;
}

inline GuestMemory::Access GuestMemory::Write8(uint32_t addr, uint8_t value) {
  Access a = Require(addr, 1);
  if (a != Access::kOk) {
    return a;
  }
  PageNum p = PageOf(addr);
  pages_[p][addr % kAvmPageBytes] = value;
  dirty_gen_[p] = write_gen_;
  return Access::kOk;
}

inline GuestMemory::Access GuestMemory::Write32(uint32_t addr, uint32_t value) {
  Access a = Require(addr, 4);
  if (a != Access::kOk) {
    return a;
  }
  uint32_t off = addr % kAvmPageBytes;
  if (off + 4 <= kAvmPageBytes) {
    PageNum p = PageOf(addr);
    uint8_t* b = pages_[p].data() + off;
    b[0] = static_cast<uint8_t>(value);
    b[1] = static_cast<uint8_t>(value >> 8);
    b[2] = static_cast<uint8_t>(value >> 16);
    b[3] = static_cast<uint8_t>(value >> 24);
    dirty_gen_[p] = write_gen_;
    return Access::kOk;
  }
  for (uint32_t i = 0; i < 4; ++i) {
    uint32_t byte_addr = addr + i;
    PageNum p = PageOf(byte_addr);
    pages_[p][byte_addr % kAvmPageBytes] = static_cast<uint8_t>(value >> (8 * i));
    dirty_gen_[p] = write_gen_;
  }
  return Access::kOk;
}

inline GuestMemory::Access GuestMemory::FetchInstr(uint32_t addr,
                                                   uint8_t out[kAvmInstrBytes]) {
  static_assert(kAvmPageBytes % kAvmInstrBytes == 0,
                "aligned fetches must not cross pages");
  Access a = Require(addr, kAvmInstrBytes);
  if (a != Access::kOk) {
    return a;
  }
  const uint8_t* b = pages_[PageOf(addr)].data() + addr % kAvmPageBytes;
  for (uint32_t i = 0; i < kAvmInstrBytes; ++i) {
    out[i] = b[i];
  }
  return Access::kOk;
}

}  // namespace auragen

#endif  // AURAGEN_SRC_AVM_MEMORY_H_
