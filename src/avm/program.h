// Executable image format for AVM programs.
//
// An Executable is the flat initial contents of a process's address space
// (text then data, loaded at address 0) plus the entry point. Loading one is
// deterministic, which is what lets a pre-first-sync backup recover by
// simply re-running the image against the saved message queue (§7.7: head-
// of-family backups exist from creation but hold no pages until first sync).

#ifndef AURAGEN_SRC_AVM_PROGRAM_H_
#define AURAGEN_SRC_AVM_PROGRAM_H_

#include <cstdint>

#include "src/base/codec.h"
#include "src/base/types.h"
#include "src/avm/isa.h"

namespace auragen {

struct Executable {
  Bytes image;        // text + data, loaded at address 0
  uint32_t entry = 0; // initial pc

  // Number of pages the image occupies.
  uint32_t NumPages() const {
    return static_cast<uint32_t>((image.size() + kAvmPageBytes - 1) / kAvmPageBytes);
  }

  // Initial content of page `p`, zero-padded to a full page.
  Bytes PageContent(PageNum p) const {
    Bytes out(kAvmPageBytes, 0);
    size_t base = static_cast<size_t>(p) * kAvmPageBytes;
    for (size_t i = 0; i < kAvmPageBytes && base + i < image.size(); ++i) {
      out[i] = image[base + i];
    }
    return out;
  }

  void Serialize(ByteWriter& w) const {
    w.U32(entry);
    w.Blob(image);
  }
  static Executable Deserialize(ByteReader& r) {
    Executable e;
    e.entry = r.U32();
    e.image = r.Blob();
    return e;
  }
};

}  // namespace auragen

#endif  // AURAGEN_SRC_AVM_PROGRAM_H_
