// Invariant checking for the Auragen reproduction.
//
// The simulated kernel is presumed free of errors (paper §3.1); any violated
// invariant is a bug in this implementation, never a recoverable condition,
// so checks abort. AURAGEN_CHECK is always on (it guards simulation
// correctness, not performance-critical host paths); AURAGEN_DCHECK compiles
// out in NDEBUG builds.

#ifndef AURAGEN_SRC_BASE_CHECK_H_
#define AURAGEN_SRC_BASE_CHECK_H_

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace auragen {

[[noreturn]] inline void PanicAt(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "PANIC %s:%d: %s\n", file, line, msg.c_str());
  void* frames[32];
  int n = backtrace(frames, 32);
  backtrace_symbols_fd(frames, n, 2);
  std::abort();
}

namespace internal {

// Accumulates a panic message from streamed operands, then aborts in the
// destructor. Used by the AURAGEN_CHECK macros so call sites can stream
// context: AURAGEN_CHECK(x) << "x was " << x;
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* cond) : file_(file), line_(line) {
    stream_ << "check failed: " << cond;
  }
  [[noreturn]] ~CheckFailureStream() { PanicAt(file_, line_, stream_.str()); }

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace auragen

#define AURAGEN_CHECK(cond)                                             \
  if (cond) {                                                           \
  } else                                                                \
    ::auragen::internal::CheckFailureStream(__FILE__, __LINE__, #cond)

#define AURAGEN_PANIC(msg) ::auragen::PanicAt(__FILE__, __LINE__, (msg))

#ifdef NDEBUG
#define AURAGEN_DCHECK(cond) AURAGEN_CHECK(true || (cond))
#else
#define AURAGEN_DCHECK(cond) AURAGEN_CHECK(cond)
#endif

#endif  // AURAGEN_SRC_BASE_CHECK_H_
