#include "src/base/codec.h"

#include <array>

namespace auragen {

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string HexDump(const Bytes& b, size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  size_t n = b.size() < max_bytes ? b.size() : max_bytes;
  out.reserve(n * 3 + 8);
  for (size_t i = 0; i < n; ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
  }
  if (n < b.size()) {
    out += " ...";
  }
  return out;
}

}  // namespace auragen
