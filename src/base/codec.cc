#include "src/base/codec.h"

#include <array>
#include <utility>

namespace auragen {

BufferPool& BufferPool::Get() {
  static thread_local BufferPool pool;
  return pool;
}

Bytes BufferPool::Acquire() {
  if (free_.empty()) {
    return Bytes{};
  }
  Bytes b = std::move(free_.back());
  free_.pop_back();
  b.clear();  // capacity retained
  ++reuses_;
  return b;
}

void BufferPool::Release(Bytes&& buf) {
  if (free_.size() >= kMaxFree || buf.capacity() == 0 ||
      buf.capacity() > kMaxPooledCapacity) {
    return;  // let the allocator have it
  }
  ++releases_;
  free_.push_back(std::move(buf));
}

PayloadPtr MakePayload(Bytes&& bytes) {
  return PayloadPtr(new Bytes(std::move(bytes)), [](const Bytes* p) {
    BufferPool::Get().Release(std::move(*const_cast<Bytes*>(p)));
    delete p;
  });
}

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string HexDump(const Bytes& b, size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  size_t n = b.size() < max_bytes ? b.size() : max_bytes;
  out.reserve(n * 3 + 8);
  for (size_t i = 0; i < n; ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
  }
  if (n < b.size()) {
    out += " ...";
  }
  return out;
}

}  // namespace auragen
