// Byte-level message encoding.
//
// Everything that crosses the intercluster bus — user payloads, sync
// messages, open replies, birth notices, server state — is serialized into a
// flat byte vector with these little-endian writer/reader helpers. Keeping
// messages as plain bytes (instead of passing C++ objects by pointer between
// "clusters") is what keeps the simulation honest: a backup can only use
// information that was actually transmitted.

#ifndef AURAGEN_SRC_BASE_CODEC_H_
#define AURAGEN_SRC_BASE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/check.h"

namespace auragen {

using Bytes = std::vector<uint8_t>;

// Appends fixed-width little-endian fields and length-prefixed blobs.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : buf_(std::move(initial)) {}

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { AppendLe(v); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void I32(int32_t v) { AppendLe(static_cast<uint32_t>(v)); }

  // Length-prefixed (u32) byte blob.
  void Blob(const uint8_t* data, size_t size) {
    U32(static_cast<uint32_t>(size));
    buf_.insert(buf_.end(), data, data + size);
  }
  void Blob(const Bytes& b) { Blob(b.data(), b.size()); }
  void Str(std::string_view s) { Blob(reinterpret_cast<const uint8_t*>(s.data()), s.size()); }

  // Raw bytes, no length prefix (caller knows the framing).
  void Raw(const uint8_t* data, size_t size) { buf_.insert(buf_.end(), data, data + size); }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

// Reads fields written by ByteWriter. Out-of-bounds reads are checked: a
// malformed message indicates an implementation bug (the simulated bus never
// corrupts payloads unless fault injection asks it to, and fault-injected
// corruption is detected by checksum before decoding).
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() { return data_[Advance(1)]; }
  uint16_t U16() { return ReadLe<uint16_t>(); }
  uint32_t U32() { return ReadLe<uint32_t>(); }
  uint64_t U64() { return ReadLe<uint64_t>(); }
  int32_t I32() { return static_cast<int32_t>(ReadLe<uint32_t>()); }
  int64_t I64() { return static_cast<int64_t>(ReadLe<uint64_t>()); }

  Bytes Blob() {
    uint32_t n = U32();
    size_t at = Advance(n);
    return Bytes(data_ + at, data_ + at + n);
  }
  std::string Str() {
    uint32_t n = U32();
    size_t at = Advance(n);
    return std::string(reinterpret_cast<const char*>(data_ + at), n);
  }

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  template <typename T>
  T ReadLe() {
    size_t at = Advance(sizeof(T));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[at + i]) << (8 * i)));
    }
    return v;
  }

  size_t Advance(size_t n) {
    AURAGEN_CHECK(pos_ + n <= size_) << "short message: need" << n << "have" << (size_ - pos_);
    size_t at = pos_;
    pos_ += n;
    return at;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// FNV-1a over a byte range; used by the bus model's corruption detection and
// by tests comparing state snapshots.
uint64_t Fnv1a(const uint8_t* data, size_t size);
inline uint64_t Fnv1a(const Bytes& b) { return Fnv1a(b.data(), b.size()); }

// Renders bytes as hex for diagnostics (truncated past `max_bytes`).
std::string HexDump(const Bytes& b, size_t max_bytes = 32);

}  // namespace auragen

#endif  // AURAGEN_SRC_BASE_CODEC_H_
