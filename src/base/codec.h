// Byte-level message encoding.
//
// Everything that crosses the intercluster bus — user payloads, sync
// messages, open replies, birth notices, server state — is serialized into a
// flat byte vector with these little-endian writer/reader helpers. Keeping
// messages as plain bytes (instead of passing C++ objects by pointer between
// "clusters") is what keeps the simulation honest: a backup can only use
// information that was actually transmitted.
//
// Ownership model (DESIGN.md §13): encoded buffers are produced once at the
// sender, wrapped in a shared immutable PayloadPtr by the bus, and *viewed*
// (ByteView) everywhere else. Copying bytes is legal only at the point a
// queue takes ownership of a message.

#ifndef AURAGEN_SRC_BASE_CODEC_H_
#define AURAGEN_SRC_BASE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/check.h"

namespace auragen {

using Bytes = std::vector<uint8_t>;

// Non-owning view over a byte range (span-style). Implicitly constructible
// from Bytes so decode helpers accept either; the caller guarantees the
// underlying buffer outlives the view (frame payloads are kept alive by the
// PayloadPtr travelling alongside the view).
class ByteView {
 public:
  constexpr ByteView() = default;
  constexpr ByteView(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  ByteView(const Bytes& b) : data_(b.data()), size_(b.size()) {}  // NOLINT

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }

  ByteView subview(size_t off, size_t len) const {
    AURAGEN_CHECK(off + len <= size_) << "subview out of range";
    return ByteView(data_ + off, len);
  }

  // The one explicit copy point: materializes an owned buffer.
  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

inline bool operator==(ByteView a, ByteView b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

// Small free-list of byte buffers for the sim hot loop. Encoded payloads are
// allocated, shipped across the bus, and dropped again thousands of times a
// simulated second; recycling the vectors (capacity retained) keeps that
// churn off the allocator. Correctness never depends on the pool — it only
// changes where a buffer's storage comes from, never its contents.
//
// The simulation is single-threaded; the pool is thread-local so parallel
// test shards can never race on it.
class BufferPool {
 public:
  static BufferPool& Get();

  // Returns an empty buffer, reusing a pooled one's capacity if available.
  Bytes Acquire();
  // Donates a buffer's storage back to the pool (contents discarded).
  void Release(Bytes&& buf);

  size_t pooled() const { return free_.size(); }
  uint64_t reuses() const { return reuses_; }
  uint64_t releases() const { return releases_; }

 private:
  // Bounded so a burst of giant BackupCreate bodies cannot pin memory.
  static constexpr size_t kMaxFree = 64;
  static constexpr size_t kMaxPooledCapacity = 256 * 1024;

  std::vector<Bytes> free_;
  uint64_t reuses_ = 0;
  uint64_t releases_ = 0;
};

// Shared immutable frame payload: one encode, one buffer, any number of
// readers (bus queue, per-destination deliveries, deferred executive work).
using PayloadPtr = std::shared_ptr<const Bytes>;

// Wraps an encoded buffer for zero-copy fan-out. When the last reference
// drops, the buffer's storage returns to the BufferPool.
PayloadPtr MakePayload(Bytes&& bytes);

// Appends fixed-width little-endian fields and length-prefixed blobs. The
// default-constructed writer draws its buffer from the BufferPool, closing
// the encode -> transmit -> release -> encode recycling loop.
class ByteWriter {
 public:
  ByteWriter() : buf_(BufferPool::Get().Acquire()) {}
  explicit ByteWriter(Bytes initial) : buf_(std::move(initial)) {}

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { AppendLe(v); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void I32(int32_t v) { AppendLe(static_cast<uint32_t>(v)); }

  // Length-prefixed (u32) byte blob.
  void Blob(const uint8_t* data, size_t size) {
    U32(static_cast<uint32_t>(size));
    buf_.insert(buf_.end(), data, data + size);
  }
  void Blob(ByteView b) { Blob(b.data(), b.size()); }
  void Str(std::string_view s) { Blob(reinterpret_cast<const uint8_t*>(s.data()), s.size()); }

  // Raw bytes, no length prefix (caller knows the framing).
  void Raw(const uint8_t* data, size_t size) { buf_.insert(buf_.end(), data, data + size); }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

// Reads fields written by ByteWriter. Out-of-bounds reads are checked: a
// malformed message indicates an implementation bug (the simulated bus never
// corrupts payloads unless fault injection asks it to, and fault-injected
// corruption is detected by checksum before decoding).
class ByteReader {
 public:
  explicit ByteReader(ByteView buf) : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() { return data_[Advance(1)]; }
  uint16_t U16() { return ReadLe<uint16_t>(); }
  uint32_t U32() { return ReadLe<uint32_t>(); }
  uint64_t U64() { return ReadLe<uint64_t>(); }
  int32_t I32() { return static_cast<int32_t>(ReadLe<uint32_t>()); }
  int64_t I64() { return static_cast<int64_t>(ReadLe<uint64_t>()); }

  Bytes Blob() {
    uint32_t n = U32();
    size_t at = Advance(n);
    return Bytes(data_ + at, data_ + at + n);
  }
  // Zero-copy variant: the returned view aliases the reader's buffer.
  ByteView BlobView() {
    uint32_t n = U32();
    size_t at = Advance(n);
    return ByteView(data_ + at, n);
  }
  std::string Str() {
    uint32_t n = U32();
    size_t at = Advance(n);
    return std::string(reinterpret_cast<const char*>(data_ + at), n);
  }

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  size_t pos() const { return pos_; }

 private:
  template <typename T>
  T ReadLe() {
    size_t at = Advance(sizeof(T));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[at + i]) << (8 * i)));
    }
    return v;
  }

  size_t Advance(size_t n) {
    AURAGEN_CHECK(pos_ + n <= size_) << "short message: need" << n << "have" << (size_ - pos_);
    size_t at = pos_;
    pos_ += n;
    return at;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// FNV-1a over a byte range; used by the bus model's corruption detection and
// by tests comparing state snapshots.
uint64_t Fnv1a(const uint8_t* data, size_t size);
inline uint64_t Fnv1a(ByteView b) { return Fnv1a(b.data(), b.size()); }

// Renders bytes as hex for diagnostics (truncated past `max_bytes`).
std::string HexDump(const Bytes& b, size_t max_bytes = 32);

}  // namespace auragen

#endif  // AURAGEN_SRC_BASE_CODEC_H_
