#include "src/base/log.h"

#include <cstdio>

namespace auragen {

thread_local std::function<SimTime()> Logger::time_source_;

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::set_time_source(std::function<SimTime()> source) {
  time_source_ = std::move(source);
}

void Logger::Emit(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"T", "D", "I", "W", "E"};
  const char* name = kNames[static_cast<int>(level)];
  if (time_source_) {
    std::fprintf(stderr, "[%10llu us] %s %s\n",
                 static_cast<unsigned long long>(time_source_()), name, msg.c_str());
  } else {
    std::fprintf(stderr, "[          ] %s %s\n", name, msg.c_str());
  }
}

}  // namespace auragen
