// Minimal leveled logger with a pluggable simulated-time source.
//
// Log lines are prefixed with the current simulation time so traces from a
// run read like a kernel log: "[  1250us] c0 exec: deliver ch<7> ...".
// Logging is off by default (benchmarks must not pay for it); tests and the
// examples enable it explicitly.

#ifndef AURAGEN_SRC_BASE_LOG_H_
#define AURAGEN_SRC_BASE_LOG_H_

#include <functional>
#include <sstream>
#include <string>

#include "src/base/types.h"

namespace auragen {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool Enabled(LogLevel level) const { return level >= level_; }

  // The simulation engine installs itself here so log lines carry sim time.
  // Thread-local: parallel campaign workers each run their own Machine (and
  // so their own Engine clock) — a process-global source would race and
  // stamp one machine's lines with another's clock.
  void set_time_source(std::function<SimTime()> source);

  void Emit(LogLevel level, const std::string& msg);

 private:
  LogLevel level_ = LogLevel::kOff;
  static thread_local std::function<SimTime()> time_source_;
};

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Get().Emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace auragen

#define AURAGEN_LOG(level)                                 \
  if (!::auragen::Logger::Get().Enabled(level)) {          \
  } else                                                   \
    ::auragen::internal::LogLine(level)

#define ALOG_TRACE() AURAGEN_LOG(::auragen::LogLevel::kTrace)
#define ALOG_DEBUG() AURAGEN_LOG(::auragen::LogLevel::kDebug)
#define ALOG_INFO() AURAGEN_LOG(::auragen::LogLevel::kInfo)
#define ALOG_WARN() AURAGEN_LOG(::auragen::LogLevel::kWarn)
#define ALOG_ERROR() AURAGEN_LOG(::auragen::LogLevel::kError)

#endif  // AURAGEN_SRC_BASE_LOG_H_
