// Lightweight Result<T> for fallible operations.
//
// The simulated kernel and servers run without exceptions (matching the
// freestanding style of the original Auros kernel); recoverable failures are
// carried in Result values, while broken invariants abort via AURAGEN_CHECK.

#ifndef AURAGEN_SRC_BASE_RESULT_H_
#define AURAGEN_SRC_BASE_RESULT_H_

#include <string>
#include <utility>
#include <variant>

#include "src/base/check.h"

namespace auragen {

// Error codes for the simulated system-call and server interfaces. Modeled
// on the UNIX errno values the paper's Auros kernel would return.
enum class Errc : int32_t {
  kOk = 0,
  kNoEntry,        // ENOENT: no such name / channel / file
  kBadDescriptor,  // EBADF
  kWouldBlock,     // read with no message and non-blocking context
  kExists,         // EEXIST
  kNoSpace,        // ENOSPC: disk or page store exhausted
  kIo,             // EIO: device failure
  kInvalid,        // EINVAL
  kNotSupported,   // ENOSYS
  kPeerGone,       // ECONNRESET: channel peer exited or unrecoverable
  kUnavailable,    // channel marked unusable during fullback re-creation (§7.10.1)
  kLimit,          // resource table full
  kKilled,         // process destroyed (cluster crash without backup)
};

const char* ErrcName(Errc e);

inline const char* ErrcName(Errc e) {
  switch (e) {
    case Errc::kOk: return "ok";
    case Errc::kNoEntry: return "no-entry";
    case Errc::kBadDescriptor: return "bad-fd";
    case Errc::kWouldBlock: return "would-block";
    case Errc::kExists: return "exists";
    case Errc::kNoSpace: return "no-space";
    case Errc::kIo: return "io";
    case Errc::kInvalid: return "invalid";
    case Errc::kNotSupported: return "not-supported";
    case Errc::kPeerGone: return "peer-gone";
    case Errc::kUnavailable: return "unavailable";
    case Errc::kLimit: return "limit";
    case Errc::kKilled: return "killed";
  }
  return "?";
}

// Result<T>: either a value or an Errc. Result<void> holds only a status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Errc error) : rep_(error) {           // NOLINT(google-explicit-constructor)
    AURAGEN_CHECK(error != Errc::kOk) << "use a value for success";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  Errc error() const { return ok() ? Errc::kOk : std::get<Errc>(rep_); }

  T& value() & {
    AURAGEN_CHECK(ok()) << "Result error:" << ErrcName(error());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    AURAGEN_CHECK(ok()) << "Result error:" << ErrcName(error());
    return std::get<T>(rep_);
  }
  T&& value() && {
    AURAGEN_CHECK(ok()) << "Result error:" << ErrcName(error());
    return std::get<T>(std::move(rep_));
  }

  // GCC 12's -Wmaybe-uninitialized misfires on std::variant's unengaged
  // alternative here (the value bytes are never read when holding Errc).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  T value_or(T fallback) const {
    if (const T* v = std::get_if<T>(&rep_)) {
      return *v;
    }
    return fallback;
  }
#pragma GCC diagnostic pop

 private:
  std::variant<T, Errc> rep_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : error_(Errc::kOk) {}
  Result(Errc error) : error_(error) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return error_ == Errc::kOk; }
  explicit operator bool() const { return ok(); }
  Errc error() const { return error_; }

 private:
  Errc error_;
};

inline Result<void> OkResult() { return Result<void>(); }

}  // namespace auragen

#endif  // AURAGEN_SRC_BASE_RESULT_H_
