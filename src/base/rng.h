// Deterministic pseudo-random number generation.
//
// Every source of variation in the simulation (workload arrivals, crash
// instants, service jitter) draws from a seeded Xoshiro256** stream so that
// a run is a pure function of its seed — the property the crash/recovery
// equivalence tests in tests/ rely on. Never use std::random_device or
// std::mt19937 default seeding inside the simulator.

#ifndef AURAGEN_SRC_BASE_RNG_H_
#define AURAGEN_SRC_BASE_RNG_H_

#include <cstdint>

#include "src/base/check.h"

namespace auragen {

// SplitMix64: used only to expand a single seed into Xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Xoshiro256** by Blackman & Vigna. Small, fast, reproducible across
// platforms (pure 64-bit integer arithmetic).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t Below(uint64_t bound) {
    AURAGEN_CHECK(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    AURAGEN_CHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Derives an independent child stream; deterministic in (this state, tag).
  Rng Fork(uint64_t tag) {
    uint64_t mix = Next() ^ (tag * 0x9e3779b97f4a7c15ull);
    return Rng(mix);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace auragen

#endif  // AURAGEN_SRC_BASE_RNG_H_
