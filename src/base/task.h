// MoveFn: a move-only callable with a large inline buffer; Task is the
// nullary `void()` alias the engine schedules.
//
// The discrete-event engine schedules hundreds of thousands of closures per
// simulated second. std::function's small-object buffer (16 bytes on
// libstdc++) is too small for the hot closures — `this` plus a Frame or a
// decoded message view — so every Schedule() call heap-allocated, and every
// dispatch *copied* the closure (std::function is copyable, so pulling the
// event out of the queue duplicated it). MoveFn sizes its inline buffer for
// the delivery-path closures and is move-only, so scheduling a hot event
// touches the allocator zero times. The disk completion callbacks use the
// typed forms (`MoveFn<void(Result<void>)>` etc.) for the same reason.
//
// Semantics: construct from any callable, invoke once or many times via
// operator(), move freely. A moved-from MoveFn is empty; invoking an empty
// MoveFn is checked.

#ifndef AURAGEN_SRC_BASE_TASK_H_
#define AURAGEN_SRC_BASE_TASK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "src/base/check.h"

namespace auragen {

template <typename Sig>
class MoveFn;  // undefined; only the R(Args...) specialization exists

template <typename R, typename... Args>
class MoveFn<R(Args...)> {
 public:
  // Sized for the hot closures: `this` + MsgView (header + shared payload +
  // body cursor) on delivery, `this` + pid + BodyRun on dispatch completion.
  // Larger captures fall back to the heap.
  static constexpr size_t kInlineBytes = 120;

  MoveFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  MoveFn(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = InlineVtable<Fn>();
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vt_ = HeapVtable<Fn>();
    }
  }

  MoveFn(MoveFn&& other) noexcept { MoveFrom(other); }

  MoveFn& operator=(MoveFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  MoveFn(const MoveFn&) = delete;
  MoveFn& operator=(const MoveFn&) = delete;

  ~MoveFn() { Reset(); }

  R operator()(Args... args) {
    AURAGEN_CHECK(vt_ != nullptr) << "invoking empty MoveFn";
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct Vtable {
    R (*invoke)(void* buf, Args&&... args);
    // Moves the callable from `from` into raw storage `to` and destroys the
    // source, leaving the `from` MoveFn logically empty.
    void (*relocate)(void* to, void* from) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename Fn>
  static const Vtable* InlineVtable() {
    static constexpr Vtable vt = {
        [](void* buf, Args&&... args) -> R {
          return (*std::launder(reinterpret_cast<Fn*>(buf)))(
              std::forward<Args>(args)...);
        },
        [](void* to, void* from) noexcept {
          Fn* src = std::launder(reinterpret_cast<Fn*>(from));
          ::new (to) Fn(std::move(*src));
          src->~Fn();
        },
        [](void* buf) noexcept { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
    };
    return &vt;
  }

  template <typename Fn>
  static const Vtable* HeapVtable() {
    static constexpr Vtable vt = {
        [](void* buf, Args&&... args) -> R {
          return (**reinterpret_cast<Fn**>(buf))(std::forward<Args>(args)...);
        },
        [](void* to, void* from) noexcept {
          *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
        },
        [](void* buf) noexcept { delete *reinterpret_cast<Fn**>(buf); },
    };
    return &vt;
  }

  void MoveFrom(MoveFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const Vtable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

using Task = MoveFn<void()>;

}  // namespace auragen

#endif  // AURAGEN_SRC_BASE_TASK_H_
