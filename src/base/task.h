// Task: a move-only `void()` callable with a large inline buffer.
//
// The discrete-event engine schedules hundreds of thousands of closures per
// simulated second. std::function's small-object buffer (16 bytes on
// libstdc++) is too small for the hot closures — `this` plus a Frame or a
// decoded message view — so every Schedule() call heap-allocated, and every
// dispatch *copied* the closure (std::function is copyable, so pulling the
// event out of the queue duplicated it). Task sizes its inline buffer for
// the delivery-path closures and is move-only, so scheduling a hot event
// touches the allocator zero times.
//
// Semantics: construct from any callable, invoke once or many times via
// operator(), move freely. A moved-from Task is empty; invoking an empty
// Task is checked.

#ifndef AURAGEN_SRC_BASE_TASK_H_
#define AURAGEN_SRC_BASE_TASK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "src/base/check.h"

namespace auragen {

class Task {
 public:
  // Sized for the hot closures: `this` + MsgView (header + shared payload +
  // body cursor) on delivery, `this` + pid + BodyRun on dispatch completion.
  // Larger captures fall back to the heap.
  static constexpr size_t kInlineBytes = 120;

  Task() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Task> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = InlineVtable<Fn>();
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vt_ = HeapVtable<Fn>();
    }
  }

  Task(Task&& other) noexcept { MoveFrom(other); }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Reset(); }

  void operator()() {
    AURAGEN_CHECK(vt_ != nullptr) << "invoking empty Task";
    vt_->invoke(buf_);
  }

  explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct Vtable {
    void (*invoke)(void* buf);
    // Moves the callable from `from` into raw storage `to` and destroys the
    // source, leaving the `from` Task logically empty.
    void (*relocate)(void* to, void* from) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename Fn>
  static const Vtable* InlineVtable() {
    static constexpr Vtable vt = {
        [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
        [](void* to, void* from) noexcept {
          Fn* src = std::launder(reinterpret_cast<Fn*>(from));
          ::new (to) Fn(std::move(*src));
          src->~Fn();
        },
        [](void* buf) noexcept { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
    };
    return &vt;
  }

  template <typename Fn>
  static const Vtable* HeapVtable() {
    static constexpr Vtable vt = {
        [](void* buf) { (**reinterpret_cast<Fn**>(buf))(); },
        [](void* to, void* from) noexcept {
          *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
        },
        [](void* buf) noexcept { delete *reinterpret_cast<Fn**>(buf); },
    };
    return &vt;
  }

  void MoveFrom(Task& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const Vtable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace auragen

#endif  // AURAGEN_SRC_BASE_TASK_H_
