// Fundamental identifier and time types shared by every Auragen subsystem.
//
// The paper's machine is 2..32 clusters, each running an independent kernel.
// Identifiers that cross cluster boundaries (global process ids, channel
// names) must be globally unique without inter-kernel coordination (§7.5.1),
// so they embed the allocating cluster's id in their high bits.

#ifndef AURAGEN_SRC_BASE_TYPES_H_
#define AURAGEN_SRC_BASE_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace auragen {

// Index of a processing unit ("cluster", §7.1). Dense, 0-based.
using ClusterId = uint32_t;
inline constexpr ClusterId kNoCluster = 0xffffffffu;

// Index of a fabric segment: one paper-faithful dual bus bridged to the
// others by store-and-forward switch nodes (src/bus/topology.h). Dense,
// 0-based, in cluster order.
using SegmentId = uint32_t;
inline constexpr SegmentId kNoSegment = 0xffffffffu;

// Simulated time in microseconds since machine power-on.
using SimTime = uint64_t;
inline constexpr SimTime kSimForever = ~SimTime{0};

// Globally unique process id (§7.5.1: "we have made the process id into a
// globally unique identifier"). High 16 bits: allocating cluster; low 48
// bits: per-cluster counter. A process keeps its gpid across recovery.
struct Gpid {
  uint64_t value = 0;

  static constexpr Gpid Make(ClusterId cluster, uint64_t counter) {
    return Gpid{(static_cast<uint64_t>(cluster) << 48) | (counter & 0xffffffffffffull)};
  }
  constexpr ClusterId origin_cluster() const { return static_cast<ClusterId>(value >> 48); }
  constexpr bool valid() const { return value != 0; }

  friend constexpr bool operator==(Gpid a, Gpid b) { return a.value == b.value; }
  friend constexpr bool operator!=(Gpid a, Gpid b) { return a.value != b.value; }
  friend constexpr bool operator<(Gpid a, Gpid b) { return a.value < b.value; }
};
inline constexpr Gpid kNoGpid{};

// Globally unique channel id, allocated by the file server when it pairs two
// openers of the same name (§7.4.1). Both ends and both backups of a channel
// share the ChannelId; routing-table entries are addressed by (cluster,
// ChannelId, endpoint).
struct ChannelId {
  uint64_t value = 0;

  constexpr bool valid() const { return value != 0; }
  friend constexpr bool operator==(ChannelId a, ChannelId b) { return a.value == b.value; }
  friend constexpr bool operator!=(ChannelId a, ChannelId b) { return a.value != b.value; }
  friend constexpr bool operator<(ChannelId a, ChannelId b) { return a.value < b.value; }
};
inline constexpr ChannelId kNoChannel{};

// UNIX-style file descriptor returned by open (§7.4.1).
using Fd = int32_t;
inline constexpr Fd kBadFd = -1;

// Page number within a process's virtual address space.
using PageNum = uint32_t;

// Disk block address.
using BlockNum = uint32_t;

// How a process is backed up after a crash (§7.3).
enum class BackupMode : uint8_t {
  kQuarterback,  // backed up until a crash; no new backup afterwards (default)
  kHalfback,     // new backup only when the original cluster returns (peripheral servers)
  kFullback,     // new backup created before the new primary runs (needs >= 3 clusters)
};

const char* BackupModeName(BackupMode mode);

inline const char* BackupModeName(BackupMode mode) {
  switch (mode) {
    case BackupMode::kQuarterback:
      return "quarterback";
    case BackupMode::kHalfback:
      return "halfback";
    case BackupMode::kFullback:
      return "fullback";
  }
  return "?";
}

std::string GpidStr(Gpid gpid);

inline std::string GpidStr(Gpid gpid) {
  if (!gpid.valid()) {
    return "pid<none>";
  }
  return "pid<" + std::to_string(gpid.origin_cluster()) + "." +
         std::to_string(gpid.value & 0xffffffffffffull) + ">";
}

}  // namespace auragen

template <>
struct std::hash<auragen::Gpid> {
  size_t operator()(auragen::Gpid g) const noexcept { return std::hash<uint64_t>{}(g.value); }
};

template <>
struct std::hash<auragen::ChannelId> {
  size_t operator()(auragen::ChannelId c) const noexcept { return std::hash<uint64_t>{}(c.value); }
};

#endif  // AURAGEN_SRC_BASE_TYPES_H_
