#include "src/baselines/lockstep.h"

namespace auragen {

LockstepPair SpawnLockstep(Machine& machine, ClusterId cluster, ClusterId shadow_cluster,
                           const Executable& exe, const Machine::UserSpawnOptions& opts) {
  Machine::UserSpawnOptions primary_opts = opts;
  LockstepPair pair;
  pair.primary = machine.SpawnUserProgram(cluster, exe, primary_opts);
  Machine::UserSpawnOptions shadow_opts = opts;
  shadow_opts.with_tty = false;  // the shadow's device output is discarded
  pair.shadow = machine.SpawnUserProgram(shadow_cluster, exe, shadow_opts);
  return pair;
}

size_t UsefulCompletions(const Machine& machine, const std::vector<LockstepPair>& pairs) {
  size_t n = 0;
  for (const LockstepPair& pair : pairs) {
    if (machine.exit_statuses().count(pair.primary.value) != 0) {
      ++n;
    }
  }
  return n;
}

}  // namespace auragen
