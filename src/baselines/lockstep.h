// Lockstep active-replication baseline (§2: "A process and its backups
// execute simultaneously ... the duplicate hardware provides no increased
// computational capability", the Stratus/32 design the paper contrasts
// against).
//
// The helper spawns the same guest image as a primary in one cluster and a
// shadow replica in another. Both execute every instruction; the shadow's
// terminal/debug output is identified by its pid so harnesses can exclude
// it from "useful work" accounting. Experiment E9 uses this to show the
// capacity cost of dedicated duplicate hardware versus inactive backups.

#ifndef AURAGEN_SRC_BASELINES_LOCKSTEP_H_
#define AURAGEN_SRC_BASELINES_LOCKSTEP_H_

#include <vector>

#include "src/machine/machine.h"

namespace auragen {

struct LockstepPair {
  Gpid primary;
  Gpid shadow;
};

// Spawns exe in `cluster` and a lockstep shadow in `shadow_cluster`.
LockstepPair SpawnLockstep(Machine& machine, ClusterId cluster, ClusterId shadow_cluster,
                           const Executable& exe,
                           const Machine::UserSpawnOptions& opts);

// Work accounting helper: total exits counting lockstep pairs once.
size_t UsefulCompletions(const Machine& machine, const std::vector<LockstepPair>& pairs);

}  // namespace auragen

#endif  // AURAGEN_SRC_BASELINES_LOCKSTEP_H_
