#include "src/bus/fabric.h"

#include <utility>

#include "src/base/log.h"
#include "src/sim/sharded_engine.h"

namespace auragen {

Fabric::Fabric(ShardedEngine& engine, const Topology& topology,
               std::vector<uint32_t> segment_shards)
    : sharded_(&engine),
      engine_(&engine.shard_core(kSharedShard)),
      topology_(topology),
      num_clusters_(topology.num_clusters()),
      segment_shards_(std::move(segment_shards)) {
  if (std::string err = topology_.Validate(); !err.empty()) {
    AURAGEN_PANIC("invalid Topology: " + err);
  }
  AURAGEN_CHECK(segment_shards_.size() == topology_.num_segments())
      << "one engine shard per segment bus";
  if (topology_.num_segments() > 1) {
    AURAGEN_CHECK(topology_.switch_latency_us >= engine.lookahead())
        << "switch store-and-forward latency is a cross-shard hop; it must "
        << "cover the engine lookahead (" << topology_.switch_latency_us
        << " < " << engine.lookahead() << ")";
  }
  BuildSegments(segment_shards_);
}

Fabric::Fabric(Engine& engine, const Topology& topology)
    : engine_(&engine), topology_(topology), num_clusters_(topology.num_clusters()) {
  if (std::string err = topology_.Validate(); !err.empty()) {
    AURAGEN_PANIC("invalid Topology: " + err);
  }
  segment_shards_.assign(topology_.num_segments(), 0);
  BuildSegments(segment_shards_);
}

void Fabric::BuildSegments(const std::vector<uint32_t>& segment_shards) {
  const uint32_t n_seg = topology_.num_segments();
  const bool bridged = n_seg > 1;
  for (SegmentId s = 0; s < n_seg; ++s) {
    segment_masks_.push_back(topology_.segment_mask(s));
    BusBinding binding;
    binding.segment = s;
    binding.home_shard = segment_shards[s];
    // Single segment: the default (empty = all-local) mask and the 1,2,3,...
    // frame-id sequence reproduce the pre-fabric bus bit for bit.
    if (bridged) {
      binding.local = segment_masks_[s];
      binding.frame_id_base = 1 + s;
      binding.frame_id_stride = n_seg;
    }
    if (sharded_ != nullptr) {
      buses_.push_back(std::make_unique<InterclusterBus>(
          *sharded_, topology_.segments[s].bus, num_clusters_, binding));
    } else {
      buses_.push_back(std::make_unique<InterclusterBus>(
          *engine_, topology_.segments[s].bus, num_clusters_, binding));
    }
  }
  if (bridged) {
    trunk_held_.resize(n_seg);
    for (SegmentId s = 0; s < n_seg; ++s) {
      switches_.push_back(std::make_unique<SwitchNode>(*this, s));
      buses_[s]->set_switch(switches_[s].get());
    }
  }
}

void Fabric::AttachEndpoint(ClusterId cluster, BusEndpoint* endpoint) {
  AURAGEN_CHECK(cluster < num_clusters_);
  // Every segment bus carries the full endpoint table (slots are owned by
  // the cluster's own shard), but a cluster only ever receives from its own
  // segment's bus — deliveries are gated by the local member mask.
  buses_[segment_of(cluster)]->AttachEndpoint(cluster, endpoint);
}

void Fabric::DetachEndpoint(ClusterId cluster) {
  AURAGEN_CHECK(cluster < num_clusters_);
  buses_[segment_of(cluster)]->DetachEndpoint(cluster);
}

bool Fabric::IsAttached(ClusterId cluster) const {
  return cluster < num_clusters_ && buses_[topology_.segment_of(cluster)]->IsAttached(cluster);
}

void Fabric::Transmit(ClusterId src, ClusterMask targets, Bytes payload, bool urgent) {
  AURAGEN_CHECK(src < num_clusters_);
  buses_[segment_of(src)]->Transmit(src, targets, std::move(payload), urgent);
}

void Fabric::FailLine(int line) {
  for (auto& bus : buses_) {
    bus->FailLine(line);
  }
}

void Fabric::RestoreLine(int line) {
  for (auto& bus : buses_) {
    bus->RestoreLine(line);
  }
}

void Fabric::InjectAtomicityViolation(AtomicityViolation mode, double probability,
                                      uint64_t seed) {
  for (SegmentId s = 0; s < buses_.size(); ++s) {
    buses_[s]->InjectAtomicityViolation(mode, probability, seed + s);
  }
}

BusStats Fabric::stats() const {
  BusStats agg;
  for (const auto& bus : buses_) {
    BusStats s = bus->stats();
    agg.frames_sent += s.frames_sent;
    agg.deliveries += s.deliveries;
    agg.bytes_sent += s.bytes_sent;
    agg.failovers += s.failovers;
    agg.busy_us += s.busy_us;
    agg.failover_wait_us += s.failover_wait_us;
  }
  return agg;
}

void Fabric::ResetStats() {
  for (auto& bus : buses_) {
    bus->ResetStats();
  }
  trunk_forwards_ = 0;
}

void Fabric::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  for (auto& bus : buses_) {
    bus->set_tracer(tracer);
  }
}

void Fabric::FailSwitch(SegmentId s) {
  AURAGEN_CHECK(s < switches_.size()) << "no switch on a single-segment fabric";
  switches_[s]->Fail();
}

void Fabric::RestoreSwitch(SegmentId s) {
  AURAGEN_CHECK(s < switches_.size()) << "no switch on a single-segment fabric";
  switches_[s]->Restore();
  // Inbound copies that arrived at the trunk during the partition drain in
  // trunk order. Control context: every shard is parked, and the posts
  // carry the full store-and-forward latency, so the drain is race-free and
  // lands ahead of (or tied with) any copy sequenced after the restore.
  auto& held = trunk_held_[s];
  while (!held.empty()) {
    auto [frame, urgent] = std::move(held.front());
    held.pop_front();
    PostToSegment(s, std::move(frame), urgent);
  }
}

bool Fabric::SwitchOk(SegmentId s) const {
  return s < switches_.size() ? switches_[s]->ok() : true;
}

const SwitchStats& Fabric::switch_stats(SegmentId s) const {
  AURAGEN_CHECK(s < switches_.size());
  return switches_[s]->stats();
}

void Fabric::PostToTrunk(SegmentId origin, Frame frame, bool urgent) {
  const SimTime hop = topology_.switch_latency_us;
  if (sharded_ != nullptr) {
    sharded_->ScheduleOn(kSharedShard, hop,
                         [this, origin, frame = std::move(frame), urgent] {
                           TrunkAccept(origin, frame, urgent);
                         });
    return;
  }
  engine_->Schedule(hop, [this, origin, frame = std::move(frame), urgent] {
    TrunkAccept(origin, frame, urgent);
  });
}

void Fabric::TrunkAccept(SegmentId origin, const Frame& frame, bool urgent) {
  // One totally-ordered pass: the sequence number is assigned here, on the
  // trunk's home shard, and every target segment receives its copy in this
  // order (FIFO posts with equal latency; FIFO re-injection at the far end).
  const uint64_t seq = ++next_trunk_seq_;
  for (SegmentId s = 0; s < buses_.size(); ++s) {
    ClusterMask local = frame.targets & segment_masks_[s];
    if (!local.any()) {
      continue;
    }
    Frame copy = frame;
    copy.targets = local;
    ++trunk_forwards_;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventKind::kSwitchFwd, frame.src, 0, s, frame.frame_id, seq);
    }
    if (!switches_[s]->ok()) {
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kSwitchHeld, frame.src, 0, s, frame.frame_id, 1);
      }
      trunk_held_[s].emplace_back(std::move(copy), urgent);
      continue;
    }
    PostToSegment(s, std::move(copy), urgent);
  }
  (void)origin;
}

void Fabric::PostToSegment(SegmentId dest, Frame frame, bool urgent) {
  const SimTime hop = topology_.switch_latency_us;
  if (sharded_ != nullptr) {
    sharded_->ScheduleOn(segment_shards_[dest], hop,
                         [this, dest, frame = std::move(frame), urgent] {
                           switches_[dest]->Inject(frame, urgent);
                         });
    return;
  }
  engine_->Schedule(hop, [this, dest, frame = std::move(frame), urgent] {
    switches_[dest]->Inject(frame, urgent);
  });
}

}  // namespace auragen
