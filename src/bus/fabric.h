// Fabric: the segmented intercluster interconnect — per-segment dual buses
// (intercluster_bus.h) bridged by store-and-forward switch nodes
// (switch_node.h) over a hub trunk, described and validated by a Topology.
//
// Routing is hierarchical. A frame whose targets stay inside the sender's
// segment never leaves its segment bus — the paper's machine, verbatim. A
// frame whose targets span segments is forwarded exactly once to the trunk
// sequencer, which emits exactly one segment-masked copy per *target*
// segment (origin included); each copy re-enters its destination segment's
// bus arbitration after the switch's store-and-forward latency.
//
// Why the trunk sequences cross-segment frames for every target segment,
// including the origin: §5.1's second property (no interleaving) must hold
// pairwise across the whole machine, because a primary and its backup may
// sit in different segments and both must see their shared multicasts in
// the same order. With per-segment buses alone, a multicast local to
// segment X and one local to segment Y that both span X and Y could arrive
// in opposite orders at the two ends. Routing every multi-segment multicast
// through one totally-ordered trunk — the fixed-sequencer scheme of the
// Generic Multicast literature — restores the invariant: any two frames
// sharing a destination are either both ordered by that destination's
// segment bus (same-segment traffic) or both ordered by the trunk, and
// trunk order is preserved into every segment by FIFO, equal-latency posts.
//
// Determinism: the trunk lives on the shared shard (kSharedShard), where
// barrier drain order makes its sequence numbers a pure function of the
// per-shard schedules — the same mechanism that already made single-bus
// frame ids deterministic. Digests are bit-identical at any thread count.
//
// Single-segment topologies build exactly one bus, no switches and no
// trunk, with the historical shard-0 binding and frame-id sequence: every
// pre-fabric trace digest is reproduced bit for bit.

#ifndef AURAGEN_SRC_BUS_FABRIC_H_
#define AURAGEN_SRC_BUS_FABRIC_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "src/bus/intercluster_bus.h"
#include "src/bus/switch_node.h"
#include "src/bus/topology.h"
#include "src/sim/engine.h"

namespace auragen {

class ShardedEngine;

class Fabric {
 public:
  // Sharded-machine mode. `segment_shards[s]` is the engine shard hosting
  // segment s's bus and switch; the ShardPlan puts segment 0 on the shared
  // shard (which also hosts the trunk) and later segments on their own
  // shards after the cluster shards.
  Fabric(ShardedEngine& engine, const Topology& topology,
         std::vector<uint32_t> segment_shards);

  // Single-engine mode (unit tests, microbenches): every segment bus, every
  // switch, and the trunk share one event heap.
  Fabric(Engine& engine, const Topology& topology);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- the InterclusterBus surface kernels and servers use (env.h) ---
  void AttachEndpoint(ClusterId cluster, BusEndpoint* endpoint);
  void DetachEndpoint(ClusterId cluster);
  bool IsAttached(ClusterId cluster) const;
  void Transmit(ClusterId src, ClusterMask targets, Bytes payload, bool urgent = false);

  // Legacy machine-wide dual-line faults: the line fails (or returns) on
  // every segment at once, so the pre-fabric bus-outage scenarios keep their
  // meaning on any topology and `line_ok` stays consistent across segments.
  void FailLine(int line);
  void RestoreLine(int line);
  bool line_ok(int line) const { return buses_[0]->line_ok(line); }
  int alive_lines() const { return buses_[0]->alive_lines(); }

  // Applied to every segment bus (segment 0 only would silently weaken
  // multi-segment negative tests).
  void InjectAtomicityViolation(AtomicityViolation mode, double probability, uint64_t seed);

  // Aggregated over every segment bus.
  BusStats stats() const;
  void ResetStats();
  uint32_t num_clusters() const { return num_clusters_; }
  void set_tracer(Tracer* tracer);

  // --- segment-aware surface ---
  const Topology& topology() const { return topology_; }
  uint32_t num_segments() const { return static_cast<uint32_t>(buses_.size()); }
  SegmentId segment_of(ClusterId c) const { return topology_.segment_of(c); }
  InterclusterBus& segment_bus(SegmentId s) { return *buses_[s]; }
  BusStats segment_stats(SegmentId s) const { return buses_[s]->stats(); }

  // Switch faults (control-event-only during a run). Failing a segment's
  // switch partitions it from the fabric: its outbound cross-segment frames
  // hold at the switch, its inbound copies hold at the trunk; both drain
  // FIFO on restore, so no frame is dropped or reordered. A single-segment
  // fabric has no switches; s is checked.
  void FailSwitch(SegmentId s);
  void RestoreSwitch(SegmentId s);
  bool SwitchOk(SegmentId s) const;
  const SwitchStats& switch_stats(SegmentId s) const;

  // Cross-segment copies emitted by the trunk (== kSwitchFwd records).
  uint64_t trunk_forwards() const { return trunk_forwards_; }
  SimTime switch_latency_us() const { return topology_.switch_latency_us; }

  // --- SwitchNode backend (not for component use) ---
  // Egress: schedules TrunkAccept on the trunk's home shard after the
  // store-and-forward hop. Called from the origin segment's home shard (or
  // a control event draining a restored switch).
  void PostToTrunk(SegmentId origin, Frame frame, bool urgent);
  InterclusterBus& bus_of_segment(SegmentId s) { return *buses_[s]; }
  Tracer* tracer() { return tracer_; }

 private:
  void BuildSegments(const std::vector<uint32_t>& segment_shards);
  // Trunk sequencer, runs on the trunk home shard: orders the frame and
  // emits one masked copy per target segment.
  void TrunkAccept(SegmentId origin, const Frame& frame, bool urgent);
  // Schedules SwitchNode::Inject on the destination segment's shard after
  // the store-and-forward hop.
  void PostToSegment(SegmentId dest, Frame frame, bool urgent);

  ShardedEngine* sharded_ = nullptr;  // null in single-engine mode
  Engine* engine_ = nullptr;          // trunk home core
  Topology topology_;
  uint32_t num_clusters_ = 0;
  std::vector<uint32_t> segment_shards_;
  std::vector<ClusterMask> segment_masks_;
  std::vector<std::unique_ptr<InterclusterBus>> buses_;
  std::vector<std::unique_ptr<SwitchNode>> switches_;  // empty when 1 segment

  // Trunk state: touched only on the trunk home shard (and by control
  // events, which run with every shard parked).
  uint64_t next_trunk_seq_ = 0;
  uint64_t trunk_forwards_ = 0;
  std::vector<std::deque<std::pair<Frame, bool>>> trunk_held_;  // per dest segment

  Tracer* tracer_ = nullptr;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_BUS_FABRIC_H_
