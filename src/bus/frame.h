// Wire-level frame carried by the intercluster bus.
//
// The bus is payload-agnostic: it moves opaque bytes from one cluster to a
// *set* of clusters (a 32-bit mask matches the machine's 2..32 clusters,
// §7.1). Message semantics — three-way routing, sync, crash notices — live
// in src/core; the bus provides only the two atomicity guarantees of §5.1.

#ifndef AURAGEN_SRC_BUS_FRAME_H_
#define AURAGEN_SRC_BUS_FRAME_H_

#include <cstdint>

#include "src/base/codec.h"
#include "src/base/types.h"

namespace auragen {

// Set of destination clusters, bit i = cluster i.
using ClusterMask = uint32_t;

inline constexpr ClusterMask MaskOf(ClusterId c) { return ClusterMask{1} << c; }
inline constexpr bool MaskHas(ClusterMask m, ClusterId c) { return (m & MaskOf(c)) != 0; }

struct Frame {
  uint64_t frame_id = 0;       // assigned by the bus, for tracing
  ClusterId src = kNoCluster;  // transmitting cluster
  ClusterMask targets = 0;     // receivers (may include src: local delivery
                               // happens after successful transmission, §7.4.2)
  SimTime sent_at = 0;         // bus-accept time; observability only, not on
                               // the wire (excluded from WireSize)
  // Shared immutable payload (DESIGN.md §13): one encoded buffer serves the
  // bus queue, every per-destination delivery, and any deferred executive
  // work. Copying a Frame bumps a refcount; the bytes are copied only where
  // a queue takes ownership.
  PayloadPtr payload;

  size_t payload_size() const { return payload == nullptr ? 0 : payload->size(); }
  size_t WireSize() const { return payload_size() + kHeaderBytes; }

  static constexpr size_t kHeaderBytes = 16;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_BUS_FRAME_H_
