// Wire-level frame carried by the intercluster bus.
//
// The bus is payload-agnostic: it moves opaque bytes from one cluster to a
// *set* of clusters. The paper's machine is 2..32 clusters on one dual bus
// (§7.1); the segmented fabric (src/bus/fabric.h) scales that to
// kMaxClusters across bridged segments, so the destination set is a 256-bit
// mask. Message semantics — three-way routing, sync, crash notices — live
// in src/core; the bus provides only the two atomicity guarantees of §5.1.

#ifndef AURAGEN_SRC_BUS_FRAME_H_
#define AURAGEN_SRC_BUS_FRAME_H_

#include <cstdint>

#include "src/base/codec.h"
#include "src/base/types.h"

namespace auragen {

// Fabric-wide cluster ceiling (per-segment the paper's 2..32 still holds;
// Topology::Validate enforces it).
inline constexpr uint32_t kMaxClusters = 256;

// Set of destination clusters, bit i = cluster i. Value-semantic fixed-width
// bitset: the implicit uint64_t constructor keeps historical call sites
// (`ClusterMask m = 0;`, `m != 0`) compiling unchanged.
struct ClusterMask {
  uint64_t w[4] = {0, 0, 0, 0};

  constexpr ClusterMask() = default;
  constexpr ClusterMask(uint64_t low) : w{low, 0, 0, 0} {}  // NOLINT(google-explicit-constructor)

  constexpr bool any() const { return (w[0] | w[1] | w[2] | w[3]) != 0; }
  constexpr bool none() const { return !any(); }
  constexpr uint32_t count() const {
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i) {
      uint64_t v = w[i];
      while (v != 0) {
        v &= v - 1;
        ++n;
      }
    }
    return n;
  }

  constexpr ClusterMask& operator|=(const ClusterMask& o) {
    for (int i = 0; i < 4; ++i) w[i] |= o.w[i];
    return *this;
  }
  constexpr ClusterMask& operator&=(const ClusterMask& o) {
    for (int i = 0; i < 4; ++i) w[i] &= o.w[i];
    return *this;
  }
  friend constexpr ClusterMask operator|(ClusterMask a, const ClusterMask& b) { return a |= b; }
  friend constexpr ClusterMask operator&(ClusterMask a, const ClusterMask& b) { return a &= b; }
  friend constexpr ClusterMask operator~(ClusterMask a) {
    for (int i = 0; i < 4; ++i) a.w[i] = ~a.w[i];
    return a;
  }
  friend constexpr bool operator==(const ClusterMask& a, const ClusterMask& b) {
    return a.w[0] == b.w[0] && a.w[1] == b.w[1] && a.w[2] == b.w[2] && a.w[3] == b.w[3];
  }
  friend constexpr bool operator!=(const ClusterMask& a, const ClusterMask& b) {
    return !(a == b);
  }
};

inline constexpr ClusterMask MaskOf(ClusterId c) {
  ClusterMask m;
  m.w[(c >> 6) & 3] = uint64_t{1} << (c & 63);
  return m;
}

inline constexpr bool MaskHas(const ClusterMask& m, ClusterId c) {
  return ((m.w[(c >> 6) & 3] >> (c & 63)) & 1) != 0;
}

// Clusters [0, n): the broadcast domain of an n-cluster machine or the
// member set of a fabric segment starting at cluster 0.
inline constexpr ClusterMask MaskOfRange(ClusterId first, uint32_t n) {
  ClusterMask m;
  for (uint32_t i = 0; i < n; ++i) {
    m |= MaskOf(first + i);
  }
  return m;
}

struct Frame {
  uint64_t frame_id = 0;       // assigned by the bus, for tracing
  ClusterId src = kNoCluster;  // transmitting cluster
  ClusterMask targets;         // receivers (may include src: local delivery
                               // happens after successful transmission, §7.4.2)
  SimTime sent_at = 0;         // bus-accept time; observability only, not on
                               // the wire (excluded from WireSize)
  // Shared immutable payload (DESIGN.md §13): one encoded buffer serves the
  // bus queue, every per-destination delivery, and any deferred executive
  // work. Copying a Frame bumps a refcount; the bytes are copied only where
  // a queue takes ownership.
  PayloadPtr payload;

  size_t payload_size() const { return payload == nullptr ? 0 : payload->size(); }
  size_t WireSize() const { return payload_size() + kHeaderBytes; }

  static constexpr size_t kHeaderBytes = 16;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_BUS_FRAME_H_
