#include "src/bus/intercluster_bus.h"

#include <utility>

#include "src/base/log.h"
#include "src/bus/switch_node.h"
#include "src/sim/sharded_engine.h"

namespace auragen {

namespace {

// ShardPlan convention (src/machine/shard_plan.h): shard 0 is shared,
// cluster c lives on shard 1 + c.
ShardId ShardOfCluster(ClusterId c) { return 1 + c; }

// A default (empty) binding mask means every cluster is a local member.
ClusterMask ResolveLocal(const BusBinding& binding, uint32_t num_clusters) {
  return binding.local.any() ? binding.local : MaskOfRange(0, num_clusters);
}

}  // namespace

InterclusterBus::InterclusterBus(Engine& engine, BusConfig config, uint32_t num_clusters,
                                 BusBinding binding)
    : engine_(&engine),
      config_(config),
      binding_(binding),
      local_mask_(ResolveLocal(binding, num_clusters)),
      endpoints_(num_clusters, nullptr),
      next_frame_id_(binding.frame_id_base),
      deliveries_(num_clusters, 0) {
  AURAGEN_CHECK(num_clusters >= 2 && num_clusters <= kMaxClusters)
      << "the fabric carries 2..256 clusters, got" << num_clusters;
}

InterclusterBus::InterclusterBus(ShardedEngine& engine, BusConfig config, uint32_t num_clusters,
                                 BusBinding binding)
    : engine_(&engine.shard_core(binding.home_shard)),
      sharded_(&engine),
      config_(config),
      binding_(binding),
      local_mask_(ResolveLocal(binding, num_clusters)),
      endpoints_(num_clusters, nullptr),
      next_frame_id_(binding.frame_id_base),
      deliveries_(num_clusters, 0) {
  AURAGEN_CHECK(num_clusters >= 2 && num_clusters <= kMaxClusters)
      << "the fabric carries 2..256 clusters, got" << num_clusters;
  AURAGEN_CHECK(engine.num_shards() >= 1 + num_clusters)
      << "ShardPlan layout needs a shard per cluster plus the shared shard";
  AURAGEN_CHECK(config_.arbitration_us >= engine.lookahead())
      << "bus arbitration is the minimum cross-shard latency; it must cover "
      << "the engine lookahead (" << config_.arbitration_us << " < "
      << engine.lookahead() << ")";
}

void InterclusterBus::AttachEndpoint(ClusterId cluster, BusEndpoint* endpoint) {
  AURAGEN_CHECK(cluster < endpoints_.size());
  endpoints_[cluster] = endpoint;
}

void InterclusterBus::DetachEndpoint(ClusterId cluster) {
  AURAGEN_CHECK(cluster < endpoints_.size());
  endpoints_[cluster] = nullptr;
}

bool InterclusterBus::IsAttached(ClusterId cluster) const {
  return cluster < endpoints_.size() && endpoints_[cluster] != nullptr;
}

SimTime InterclusterBus::LocalNow() const {
  if (sharded_ != nullptr) {
    ShardId s = sharded_->CurrentShard();
    return s == kNoShard ? sharded_->Now() : sharded_->ShardNow(s);
  }
  return engine_->Now();
}

BusStats InterclusterBus::stats() const {
  BusStats s = stats_;
  for (uint64_t d : deliveries_) {
    s.deliveries += d;
  }
  return s;
}

void InterclusterBus::ResetStats() {
  stats_ = BusStats{};
  deliveries_.assign(deliveries_.size(), 0);
}

void InterclusterBus::Transmit(ClusterId src, ClusterMask targets, Bytes payload, bool urgent) {
  AURAGEN_CHECK(src < endpoints_.size());
  AURAGEN_CHECK(targets != 0) << "frame with no destinations";
  Frame frame;
  frame.src = src;
  frame.targets = targets;
  frame.payload = MakePayload(std::move(payload));
  if (sharded_ != nullptr) {
    // §5.1 minimum propagation latency, sender to arbitration: the request
    // reaches the bus (its home shard) arbitration_us after the sender
    // issued it — which is what licenses the cross-shard post under the
    // lookahead contract. Frame ids are assigned at accept on the home
    // shard, where barrier drain order makes them a pure function of the
    // per-shard schedules.
    sharded_->ScheduleOn(binding_.home_shard, config_.arbitration_us,
                         [this, frame = std::move(frame), urgent]() mutable {
                           AcceptFrame(std::move(frame), urgent);
                         });
    return;
  }
  AcceptFrame(std::move(frame), urgent);
}

void InterclusterBus::ForwardAccept(Frame frame, bool urgent) {
  AcceptFrame(std::move(frame), urgent);
}

void InterclusterBus::AcceptFrame(Frame frame, bool urgent) {
  frame.frame_id = next_frame_id_;
  next_frame_id_ += binding_.frame_id_stride;
  frame.sent_at = LocalNow();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kBusTx, frame.src, 0, 0, frame.frame_id,
                    frame.WireSize());
  }
  if (urgent) {
    urgent_pending_.push_back(std::move(frame));
  } else {
    pending_.push_back(std::move(frame));
  }
  if (!transmitting_) {
    StartNext();
  }
}

void InterclusterBus::StartNext() {
  if (pending_.empty() && urgent_pending_.empty()) {
    transmitting_ = false;
    return;
  }
  if (alive_lines() == 0) {
    // Both lines dead: frames stay queued until a line is restored. A dual
    // bus failing twice is a double fault, outside the tolerated model
    // (§3.1), but the fault campaign exercises it.
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const bool urgent = !urgent_pending_.empty();
  std::deque<Frame>& lane = urgent ? urgent_pending_ : pending_;
  InFlight fl;
  fl.urgent = urgent;
  fl.frame = std::move(lane.front());
  lane.pop_front();
  fl.cost = config_.FrameTime(fl.frame.WireSize());
  if (line_ok_[0]) {
    fl.line = 0;
  } else {
    // The preferred line is down: the low-level protocol times out and
    // retries on line 1. The wait is accounted separately from transmit-busy
    // time — the line is idle while the sender waits out the timeout.
    fl.line = 1;
    fl.wait = config_.line_failover_timeout_us;
  }
  const SimTime total = fl.cost + fl.wait;
  in_flight_ = std::move(fl);
  in_flight_->completion = engine_->Schedule(total, [this] { OnTransmitComplete(); });
}

void InterclusterBus::OnTransmitComplete() {
  AURAGEN_CHECK(in_flight_.has_value());
  InFlight fl = std::move(*in_flight_);
  in_flight_.reset();
  // Accounting happens at completion: only a frame that actually crossed a
  // line is charged.
  stats_.busy_us += fl.cost;
  if (fl.wait > 0) {
    stats_.failover_wait_us += fl.wait;
    ++stats_.failovers;
  }
  ++stats_.frames_sent;
  stats_.bytes_sent += fl.frame.payload_size();
  const ClusterMask remote = fl.frame.targets & ~local_mask_;
  if (switch_ != nullptr && remote.any()) {
    // Multi-segment multicast: no destination — not even a local member —
    // is delivered from this transmission. The whole frame goes to the
    // fabric's trunk sequencer, which re-injects one copy per *target*
    // segment (the origin segment included), so every delivery of a
    // cross-segment frame is ordered by its destination segment's bus in
    // trunk order. That is what keeps §5.1's consistent total order when a
    // primary and its backup sit in different segments (fabric.h).
    switch_->ForwardFromBus(fl.frame, fl.urgent);
  } else {
    Deliver(fl.frame);
  }
  StartNext();
}

void InterclusterBus::Deliver(const Frame& frame) {
  if (violation_ == AtomicityViolation::kInterleave &&
      violation_rng_.Chance(violation_probability_)) {
    // Spread this frame's per-destination deliveries over time so another
    // frame can land in between — precisely what §5.1 forbids.
    for (ClusterId c = 0; c < endpoints_.size(); ++c) {
      if (!MaskHas(frame.targets, c) || !MaskHas(local_mask_, c)) {
        continue;
      }
      SimTime jitter = violation_rng_.Range(0, 3 * config_.arbitration_us + 5);
      // Each per-destination closure carries its own Frame copy, but the
      // payload is shared — allocations no longer scale with |targets|.
      engine_->Schedule(jitter, [this, frame, c] { DeliverTo(frame, c); });
    }
    return;
  }

  for (ClusterId c = 0; c < endpoints_.size(); ++c) {
    if (!MaskHas(frame.targets, c) || !MaskHas(local_mask_, c)) {
      continue;
    }
    if (violation_ == AtomicityViolation::kDropPerDestination &&
        violation_rng_.Chance(violation_probability_)) {
      ALOG_DEBUG() << "bus: injected drop of frame " << frame.frame_id << " at cluster " << c;
      continue;
    }
    DeliverTo(frame, c);
  }
}

void InterclusterBus::DeliverTo(const Frame& frame, ClusterId c) {
  if (sharded_ != nullptr) {
    // §5.1 minimum propagation latency, line to receiving executive: the
    // destination cluster observes the frame arbitration_us after line
    // transmission completed. Posted unconditionally; whether the endpoint
    // is attached is decided on the destination's own shard (endpoint state
    // is owned by that cluster).
    sharded_->ScheduleOn(ShardOfCluster(c), config_.arbitration_us,
                         [this, frame, c] { DeliverLocal(frame, c); });
    return;
  }
  DeliverLocal(frame, c);
}

void InterclusterBus::DeliverLocal(const Frame& frame, ClusterId c) {
  if (endpoints_[c] == nullptr) {
    return;
  }
  ++deliveries_[c];
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kBusRx, c, 0, 0, frame.frame_id,
                    LocalNow() - frame.sent_at);
  }
  endpoints_[c]->OnFrame(frame);
}

void InterclusterBus::FailLine(int line) {
  AURAGEN_CHECK(line == 0 || line == 1);
  line_ok_[line] = false;
  if (in_flight_.has_value() && in_flight_->line == line) {
    // The frame on the wire dies with its line: abort the completion event,
    // return the frame to the front of its lane (nothing was delivered, so
    // nothing is charged), and retry — on the surviving line if one is up,
    // else the frame waits for a restore.
    engine_->Cancel(in_flight_->completion);
    InFlight fl = std::move(*in_flight_);
    in_flight_.reset();
    (fl.urgent ? urgent_pending_ : pending_).push_front(std::move(fl.frame));
    transmitting_ = false;
    StartNext();
  }
}

void InterclusterBus::RestoreLine(int line) {
  AURAGEN_CHECK(line == 0 || line == 1);
  line_ok_[line] = true;
  // Restart the pump when *either* lane has queued frames. Checking only
  // pending_ left urgent heartbeats stranded after a dual-line outage —
  // exactly the liveness traffic the dual bus exists to protect (§7.10).
  if (!transmitting_ && (!pending_.empty() || !urgent_pending_.empty())) {
    StartNext();
  }
}

void InterclusterBus::InjectAtomicityViolation(AtomicityViolation mode, double probability,
                                               uint64_t seed) {
  violation_ = mode;
  violation_probability_ = probability;
  violation_rng_ = Rng(seed);
}

}  // namespace auragen
