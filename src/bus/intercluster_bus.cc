#include "src/bus/intercluster_bus.h"

#include <utility>

#include "src/base/log.h"

namespace auragen {

InterclusterBus::InterclusterBus(Engine& engine, BusConfig config, uint32_t num_clusters)
    : engine_(engine), config_(config), endpoints_(num_clusters, nullptr) {
  AURAGEN_CHECK(num_clusters >= 2 && num_clusters <= 32)
      << "Auragen 4000 is 2..32 clusters, got" << num_clusters;
}

void InterclusterBus::AttachEndpoint(ClusterId cluster, BusEndpoint* endpoint) {
  AURAGEN_CHECK(cluster < endpoints_.size());
  endpoints_[cluster] = endpoint;
}

void InterclusterBus::DetachEndpoint(ClusterId cluster) {
  AURAGEN_CHECK(cluster < endpoints_.size());
  endpoints_[cluster] = nullptr;
}

bool InterclusterBus::IsAttached(ClusterId cluster) const {
  return cluster < endpoints_.size() && endpoints_[cluster] != nullptr;
}

void InterclusterBus::Transmit(ClusterId src, ClusterMask targets, Bytes payload, bool urgent) {
  AURAGEN_CHECK(src < endpoints_.size());
  AURAGEN_CHECK(targets != 0) << "frame with no destinations";
  Frame frame;
  frame.frame_id = next_frame_id_++;
  frame.src = src;
  frame.targets = targets;
  frame.sent_at = engine_.Now();
  frame.payload = MakePayload(std::move(payload));
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kBusTx, src, 0, 0, frame.frame_id,
                    frame.WireSize());
  }
  if (urgent) {
    urgent_pending_.push_back(std::move(frame));
  } else {
    pending_.push_back(std::move(frame));
  }
  if (!transmitting_) {
    StartNext();
  }
}

void InterclusterBus::StartNext() {
  if (pending_.empty() && urgent_pending_.empty()) {
    transmitting_ = false;
    return;
  }
  if (alive_lines() == 0) {
    // Both lines dead: frames stay queued until a line is restored. A dual
    // bus failing twice is a double fault, outside the tolerated model
    // (§3.1), but the bench harness exercises it.
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  std::deque<Frame>& lane = urgent_pending_.empty() ? pending_ : urgent_pending_;
  Frame frame = std::move(lane.front());
  lane.pop_front();

  SimTime cost = config_.FrameTime(frame.WireSize());
  stats_.busy_us += cost;
  if (!line_ok_[0]) {
    // The preferred line is down: the low-level protocol times out and
    // retries on line 1. The wait is accounted separately from transmit-busy
    // time — the line is idle while the sender waits out the timeout.
    cost += config_.line_failover_timeout_us;
    stats_.failover_wait_us += config_.line_failover_timeout_us;
    ++stats_.failovers;
  }
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.payload_size();

  engine_.Schedule(cost, [this, frame = std::move(frame)]() mutable {
    Deliver(frame);
    StartNext();
  });
}

void InterclusterBus::Deliver(const Frame& frame) {
  if (violation_ == AtomicityViolation::kInterleave &&
      violation_rng_.Chance(violation_probability_)) {
    // Spread this frame's per-destination deliveries over time so another
    // frame can land in between — precisely what §5.1 forbids.
    for (ClusterId c = 0; c < endpoints_.size(); ++c) {
      if (!MaskHas(frame.targets, c)) {
        continue;
      }
      SimTime jitter = violation_rng_.Range(0, 3 * config_.arbitration_us + 5);
      // Each per-destination closure carries its own Frame copy, but the
      // payload is shared — allocations no longer scale with |targets|.
      engine_.Schedule(jitter, [this, frame, c] {
        if (endpoints_[c] != nullptr) {
          ++stats_.deliveries;
          if (tracer_ != nullptr) {
            tracer_->Record(TraceEventKind::kBusRx, c, 0, 0, frame.frame_id,
                            engine_.Now() - frame.sent_at);
          }
          endpoints_[c]->OnFrame(frame);
        }
      });
    }
    return;
  }

  for (ClusterId c = 0; c < endpoints_.size(); ++c) {
    if (!MaskHas(frame.targets, c)) {
      continue;
    }
    if (violation_ == AtomicityViolation::kDropPerDestination &&
        violation_rng_.Chance(violation_probability_)) {
      ALOG_DEBUG() << "bus: injected drop of frame " << frame.frame_id << " at cluster " << c;
      continue;
    }
    if (endpoints_[c] != nullptr) {
      ++stats_.deliveries;
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kBusRx, c, 0, 0, frame.frame_id,
                        engine_.Now() - frame.sent_at);
      }
      endpoints_[c]->OnFrame(frame);
    }
  }
}

void InterclusterBus::FailLine(int line) {
  AURAGEN_CHECK(line == 0 || line == 1);
  line_ok_[line] = false;
}

void InterclusterBus::RestoreLine(int line) {
  AURAGEN_CHECK(line == 0 || line == 1);
  line_ok_[line] = true;
  if (!transmitting_ && !pending_.empty()) {
    StartNext();
  }
}

void InterclusterBus::InjectAtomicityViolation(AtomicityViolation mode, double probability,
                                               uint64_t seed) {
  violation_ = mode;
  violation_probability_ = probability;
  violation_rng_ = Rng(seed);
}

}  // namespace auragen
