// Dual high-speed intercluster bus model (§7.1, §5.1).
//
// Guarantees enforced (these carry the paper's whole correctness argument):
//   1. All-or-nothing: every *alive* target cluster of a frame receives it,
//      or none does (a frame is never partially delivered).
//   2. No interleaving: the bus transmits one frame at a time; if frame A is
//      accepted before frame B, A is delivered at every destination before B
//      is delivered at any destination. Together with per-cluster FIFO
//      outgoing queues this gives the identical-order property a primary and
//      its backup rely on.
//
// The machine has two bus lines. Frames normally ride line 0; if a line is
// failed by fault injection, transmission detects the failure after a
// timeout and retries on the surviving line (cost model for bench E6).
//
// Negative-testing hooks deliberately break guarantee 1 or 2 so the test
// suite can demonstrate that recovery correctness *depends* on them
// (DESIGN.md invariant 5).

#ifndef AURAGEN_SRC_BUS_INTERCLUSTER_BUS_H_
#define AURAGEN_SRC_BUS_INTERCLUSTER_BUS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "src/base/rng.h"
#include "src/bus/frame.h"
#include "src/sim/engine.h"

namespace auragen {

class ShardedEngine;
class SwitchNode;

// A cluster's receive side. The executive processor implements this.
class BusEndpoint {
 public:
  virtual ~BusEndpoint() = default;
  virtual void OnFrame(const Frame& frame) = 0;
};

struct BusConfig {
  // Fixed per-frame cost: arbitration + header, in microseconds.
  SimTime arbitration_us = 2;
  // Payload cost: microseconds per byte (dual high-speed bus; default
  // ~16 MB/s per line, generous for 1983 but the *relative* shapes matter).
  double us_per_byte = 0.0625;
  // Time for the sender to notice a dead line and fail over to the other.
  SimTime line_failover_timeout_us = 50;

  SimTime FrameTime(size_t wire_bytes) const {
    return arbitration_us + static_cast<SimTime>(static_cast<double>(wire_bytes) * us_per_byte);
  }
};

struct BusStats {
  uint64_t frames_sent = 0;       // accepted transmissions
  uint64_t deliveries = 0;        // per-destination deliveries
  uint64_t bytes_sent = 0;        // payload bytes transmitted (once per frame)
  uint64_t failovers = 0;         // line failovers performed
  SimTime busy_us = 0;            // time a line spent transmitting payload
  SimTime failover_wait_us = 0;   // time spent detecting a dead line before
                                  // retrying on the other (not transmit-busy;
                                  // folding it into busy_us inflated E6's
                                  // bus-utilization numbers)
};

// How a bus instance sits inside a segmented fabric (src/bus/fabric.h). The
// default binding is the pre-fabric machine: segment 0, arbitration on the
// shared shard, every cluster a local member, frame ids 1, 2, 3, ...
struct BusBinding {
  SegmentId segment = 0;
  // Engine shard hosting this bus's arbitration and line state (sharded
  // mode only). Segment 0 keeps the historical shard-0 home.
  uint32_t home_shard = 0;
  // Local members: only these clusters are delivered to directly; targets
  // outside the mask leave through the segment's switch. A default (empty)
  // mask means "every cluster is local" (single-bus machine).
  ClusterMask local;
  // Frame-id sequence (base + k*stride): segments interleave their id
  // spaces so every frame id is fabric-unique in traces.
  uint64_t frame_id_base = 1;
  uint64_t frame_id_stride = 1;
};

// Modes for deliberately violating §5.1 guarantees in negative tests.
enum class AtomicityViolation : uint8_t {
  kNone,
  // Each destination independently has a chance of being skipped
  // (violates all-or-nothing).
  kDropPerDestination,
  // Destinations of one frame are delivered at independently jittered times,
  // allowing another frame to arrive in between (violates non-interleaving).
  kInterleave,
};

class InterclusterBus {
 public:
  InterclusterBus(Engine& engine, BusConfig config, uint32_t num_clusters,
                  BusBinding binding = BusBinding{});

  // Sharded-machine mode (ShardPlan layout: shard 0 = shared bus + disks,
  // shard 1+c = cluster c, extra segments' buses on their own shards).
  // Arbitration and line state live on the binding's home shard; Transmit
  // posts the frame there and delivery posts per-destination closures to the
  // receiving cluster's shard, each hop carrying the §5.1 minimum
  // propagation latency (arbitration_us >= the engine's lookahead), which is
  // exactly the conservative contract ShardedEngine checks.
  InterclusterBus(ShardedEngine& engine, BusConfig config, uint32_t num_clusters,
                  BusBinding binding = BusBinding{});

  // Registers the receive callback for a cluster. Must be called for every
  // cluster before traffic starts.
  void AttachEndpoint(ClusterId cluster, BusEndpoint* endpoint);

  // A cluster whose endpoint is detached (crashed) silently receives
  // nothing; the remaining destinations still get the frame.
  void DetachEndpoint(ClusterId cluster);
  bool IsAttached(ClusterId cluster) const;

  // Queues a frame for transmission. The bus serializes: at most one frame
  // is on a line at a time; queued frames go out FIFO. Delivery to all
  // targets happens at transmission-complete time, in target-cluster order
  // within the same instant.
  //
  // `urgent` frames model the low-level bus interface protocol (heartbeats,
  // §7.10): they win arbitration over queued message frames, so liveness
  // signaling is never delayed behind a deep data backlog. Urgent frames
  // stay FIFO among themselves; the relative order of regular frames is
  // untouched, so guarantee 2 still holds where it matters.
  void Transmit(ClusterId src, ClusterMask targets, Bytes payload, bool urgent = false);

  // --- fabric integration (segmented machine only) ---
  // Registers the segment's switch. A frame whose targets leave the local
  // member set is handed to the switch at transmission-complete time instead
  // of being delivered; the fabric's trunk sequencer then re-injects a copy
  // per target segment (see fabric.h for the ordering argument).
  void set_switch(SwitchNode* sw) { switch_ = sw; }
  // Re-injection entry used by the segment's switch: the (already
  // segment-masked) copy re-enters arbitration as a fresh local frame, so
  // every delivery in this segment — local or forwarded — is totally ordered
  // by this bus. Must run on the binding's home shard.
  void ForwardAccept(Frame frame, bool urgent);
  SegmentId segment() const { return binding_.segment; }
  const ClusterMask& local_mask() const { return local_mask_; }

  // --- fault injection ---
  // Failing the line currently carrying a frame aborts that transmission:
  // the frame goes back to the front of its lane (nothing was sent, nothing
  // is charged) and retries on the surviving line, or waits for a restore.
  void FailLine(int line);     // line in {0,1}
  void RestoreLine(int line);
  int alive_lines() const { return (line_ok_[0] ? 1 : 0) + (line_ok_[1] ? 1 : 0); }
  bool line_ok(int line) const { return line_ok_[line]; }

  // Enables a §5.1 violation for negative tests. `probability` applies per
  // destination (kDropPerDestination) or per frame (kInterleave).
  void InjectAtomicityViolation(AtomicityViolation mode, double probability, uint64_t seed);

  // Aggregated on read: per-destination delivery counts are kept per
  // cluster slot (each written only by its own shard on the parallel
  // machine) and summed here.
  BusStats stats() const;
  void ResetStats();
  uint32_t num_clusters() const { return static_cast<uint32_t>(endpoints_.size()); }

  // Write-only observability (kBusTx at accept, kBusRx per destination).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  // A frame occupying a line. Stats are charged at completion, not at
  // start: a transmission aborted by line failure never happened as far as
  // accounting is concerned (the old start-time charging left busy_us
  // inflated and `transmitting_` stranded when both lines died mid-queue).
  struct InFlight {
    Frame frame;
    bool urgent = false;
    int line = 0;        // line carrying the frame
    SimTime cost = 0;    // transmit-busy time
    SimTime wait = 0;    // failover detection wait (0 when line 0 was up)
    EventId completion = kNoEvent;
  };

  void AcceptFrame(Frame frame, bool urgent);
  void StartNext();
  void OnTransmitComplete();
  void Deliver(const Frame& frame);
  void DeliverTo(const Frame& frame, ClusterId c);
  void DeliverLocal(const Frame& frame, ClusterId c);
  SimTime LocalNow() const;

  Engine* engine_;                     // home-shard core in sharded mode
  ShardedEngine* sharded_ = nullptr;   // null in single-engine mode
  BusConfig config_;
  BusBinding binding_;
  ClusterMask local_mask_;             // resolved: binding.local or "all"
  SwitchNode* switch_ = nullptr;       // null on a single-segment machine
  std::vector<BusEndpoint*> endpoints_;
  std::deque<Frame> pending_;
  std::deque<Frame> urgent_pending_;  // heartbeat lane, wins arbitration
  bool transmitting_ = false;
  bool line_ok_[2] = {true, true};
  uint64_t next_frame_id_ = 1;
  std::optional<InFlight> in_flight_;
  BusStats stats_;
  std::vector<uint64_t> deliveries_;  // per destination cluster
  Tracer* tracer_ = nullptr;

  AtomicityViolation violation_ = AtomicityViolation::kNone;
  double violation_probability_ = 0.0;
  Rng violation_rng_{0};
};

}  // namespace auragen

#endif  // AURAGEN_SRC_BUS_INTERCLUSTER_BUS_H_
