#include "src/bus/switch_node.h"

#include <utility>

#include "src/bus/fabric.h"

namespace auragen {

void SwitchNode::ForwardFromBus(const Frame& frame, bool urgent) {
  if (!ok_) {
    ++stats_.held;
    if (fabric_.tracer() != nullptr) {
      fabric_.tracer()->Record(TraceEventKind::kSwitchHeld, frame.src, 0, segment_,
                               frame.frame_id, 0);
    }
    egress_held_.push_back(Held{frame, urgent});
    return;
  }
  ++stats_.forwarded;
  stats_.forwarded_bytes += frame.payload_size();
  fabric_.PostToTrunk(segment_, frame, urgent);
}

void SwitchNode::Inject(const Frame& frame, bool urgent) {
  ++stats_.injected;
  fabric_.bus_of_segment(segment_).ForwardAccept(frame, urgent);
}

void SwitchNode::Restore() {
  ok_ = true;
  // Control context (every shard parked): the held frames re-enter the
  // trunk FIFO, in the order the segment bus emitted them.
  while (!egress_held_.empty()) {
    Held h = std::move(egress_held_.front());
    egress_held_.pop_front();
    ++stats_.forwarded;
    stats_.forwarded_bytes += h.frame.payload_size();
    fabric_.PostToTrunk(segment_, std::move(h.frame), h.urgent);
  }
}

}  // namespace auragen
