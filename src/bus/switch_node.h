// SwitchNode: the store-and-forward bridge between one fabric segment's
// dual bus and the fabric trunk (fabric.h).
//
// Egress: the segment bus hands a frame over at transmission-complete time
// when its target set leaves the segment; the switch forwards it to the
// trunk sequencer after the store-and-forward latency. Ingress: the trunk
// posts segment-masked copies back; the switch re-injects them into the
// segment bus's arbitration, so all deliveries inside a segment — local
// traffic and forwarded multicasts alike — share one total order.
//
// A failed switch holds, never drops: egress frames queue FIFO at the
// switch until a restore, preserving §5.1's all-or-none property in the
// eventual sense (a partitioned segment's multicasts are late, not
// partial). Fail/Restore fire only from machine control events (between
// engine windows, every shard parked), so the ok flag is race-free.

#ifndef AURAGEN_SRC_BUS_SWITCH_NODE_H_
#define AURAGEN_SRC_BUS_SWITCH_NODE_H_

#include <cstdint>
#include <deque>

#include "src/bus/frame.h"

namespace auragen {

class Fabric;

struct SwitchStats {
  uint64_t forwarded = 0;        // frames sent up to the trunk
  uint64_t forwarded_bytes = 0;  // payload bytes of those frames
  uint64_t injected = 0;         // trunk copies re-injected into the segment
  uint64_t held = 0;             // frames queued while the switch was failed
};

class SwitchNode {
 public:
  SwitchNode(Fabric& fabric, SegmentId segment)
      : fabric_(fabric), segment_(segment) {}

  // Bus egress hook (runs on the segment's home shard).
  void ForwardFromBus(const Frame& frame, bool urgent);

  // Trunk ingress (runs on the segment's home shard after the trunk's
  // store-and-forward hop). `frame.targets` is already segment-masked.
  void Inject(const Frame& frame, bool urgent);

  // Control-event-only fault hooks. Restore drains the held egress queue
  // FIFO, so the partition reorders nothing.
  void Fail() { ok_ = false; }
  void Restore();
  bool ok() const { return ok_; }

  SegmentId segment() const { return segment_; }
  const SwitchStats& stats() const { return stats_; }

 private:
  struct Held {
    Frame frame;
    bool urgent = false;
  };

  Fabric& fabric_;
  SegmentId segment_;
  bool ok_ = true;
  std::deque<Held> egress_held_;
  SwitchStats stats_;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_BUS_SWITCH_NODE_H_
