#include "src/bus/topology.h"

#include <sstream>

namespace auragen {

Topology Topology::SingleSegment(uint32_t num_clusters, BusConfig bus) {
  Topology t;
  t.segments.push_back(SegmentConfig{num_clusters, bus});
  return t;
}

Topology Topology::Uniform(uint32_t num_segments, uint32_t clusters_per_segment,
                           BusConfig bus) {
  Topology t;
  for (uint32_t s = 0; s < num_segments; ++s) {
    t.segments.push_back(SegmentConfig{clusters_per_segment, bus});
  }
  return t;
}

uint32_t Topology::num_clusters() const {
  uint32_t n = 0;
  for (const SegmentConfig& s : segments) {
    n += s.num_clusters;
  }
  return n;
}

SegmentId Topology::segment_of(ClusterId c) const {
  ClusterId base = 0;
  for (SegmentId s = 0; s < segments.size(); ++s) {
    base += segments[s].num_clusters;
    if (c < base) {
      return s;
    }
  }
  return kNoSegment;
}

ClusterId Topology::segment_base(SegmentId s) const {
  ClusterId base = 0;
  for (SegmentId i = 0; i < s; ++i) {
    base += segments[i].num_clusters;
  }
  return base;
}

ClusterMask Topology::segment_mask(SegmentId s) const {
  return MaskOfRange(segment_base(s), segments[s].num_clusters);
}

std::string Topology::Validate() const {
  if (segments.empty()) {
    return "Topology has no segments";
  }
  for (SegmentId s = 0; s < segments.size(); ++s) {
    const uint32_t n = segments[s].num_clusters;
    if (n < 2 || n > 32) {
      return "segment " + std::to_string(s) + " has " + std::to_string(n) +
             " clusters; a segment is a paper machine, 2..32 (§7.1)";
    }
    if (segments[s].bus.arbitration_us < 1) {
      return "segment " + std::to_string(s) +
             ": BusConfig::arbitration_us must be >= 1 (it is the minimum "
             "cross-shard propagation latency)";
    }
  }
  if (num_clusters() > kMaxClusters) {
    return "topology exceeds kMaxClusters=" + std::to_string(kMaxClusters) +
           " clusters (got " + std::to_string(num_clusters()) + ")";
  }
  if (segments.size() > 1 && switch_latency_us < 1) {
    return "switch_latency_us must be >= 1 with multiple segments (it bounds "
           "the cross-segment lookahead)";
  }
  return "";
}

std::string Topology::Describe() const {
  std::ostringstream os;
  os << num_clusters() << " clusters / " << segments.size() << " segment"
     << (segments.size() == 1 ? "" : "s") << " [";
  for (SegmentId s = 0; s < segments.size(); ++s) {
    if (s > 0) {
      os << "+";
    }
    os << segments[s].num_clusters;
  }
  os << "]";
  if (segments.size() > 1) {
    os << " switch=" << switch_latency_us << "us";
  }
  return os.str();
}

}  // namespace auragen
