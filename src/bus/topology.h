// Topology: the validated description of the machine's intercluster fabric.
//
// The paper fixes one dual bus carrying 2..32 clusters (§5.1, §7.1). The
// segmented fabric keeps that machine as the *segment* — each segment is a
// paper-faithful dual bus with 2..32 member clusters — and bridges segments
// with store-and-forward switch nodes (switch_node.h) so the whole machine
// scales to kMaxClusters. A Topology lists the segments in cluster order
// (segment 0 owns clusters [0, n0), segment 1 owns [n0, n0+n1), ...), the
// per-segment BusConfig, and the switch forwarding latency.
//
// This struct is the single source of truth for the cluster count: the
// Fabric, the ShardPlan, and SystemConfig::num_clusters are all derived
// from (or checked against) it at Machine::Boot(). A default-constructed
// (empty) Topology means "single segment over SystemConfig::num_clusters" —
// the exact machine every pre-fabric call site configured.

#ifndef AURAGEN_SRC_BUS_TOPOLOGY_H_
#define AURAGEN_SRC_BUS_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bus/frame.h"
#include "src/bus/intercluster_bus.h"

namespace auragen {

// One dual-bus segment: a paper-faithful 2..32-cluster machine.
struct SegmentConfig {
  uint32_t num_clusters = 2;
  BusConfig bus;
};

struct Topology {
  // Segments in cluster order: segment s owns the next segments[s]
  // .num_clusters cluster ids after its predecessors.
  std::vector<SegmentConfig> segments;

  // Store-and-forward cost of one switch hop (segment bus -> trunk, or
  // trunk -> segment bus). A cross-segment frame pays two hops on top of
  // its origin-bus transmission. Also the floor of the cross-segment
  // lookahead (shard_plan.cc): a switch can never affect another shard
  // sooner than this.
  SimTime switch_latency_us = 4;

  // --- factories ---
  // The pre-fabric machine: one segment, every cluster on one dual bus.
  static Topology SingleSegment(uint32_t num_clusters, BusConfig bus = BusConfig{});
  // `num_segments` equal segments of `clusters_per_segment` each.
  static Topology Uniform(uint32_t num_segments, uint32_t clusters_per_segment,
                          BusConfig bus = BusConfig{});

  // --- fluent mutators (MachineOptions idiom) ---
  Topology& WithSegment(uint32_t num_clusters, BusConfig bus = BusConfig{}) {
    segments.push_back(SegmentConfig{num_clusters, bus});
    return *this;
  }
  Topology& WithSwitchLatency(SimTime us) {
    switch_latency_us = us;
    return *this;
  }

  // --- derived shape ---
  bool empty() const { return segments.empty(); }
  uint32_t num_segments() const { return static_cast<uint32_t>(segments.size()); }
  uint32_t num_clusters() const;
  SegmentId segment_of(ClusterId c) const;
  ClusterId segment_base(SegmentId s) const;   // first cluster id of segment s
  uint32_t segment_size(SegmentId s) const { return segments[s].num_clusters; }
  ClusterMask segment_mask(SegmentId s) const;

  // "" when valid; otherwise an actionable diagnostic. Valid means: at least
  // one segment, every segment in the paper's 2..32 range, the total within
  // kMaxClusters, and a usable (>= 1us) switch latency when more than one
  // segment needs bridging.
  std::string Validate() const;

  std::string Describe() const;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_BUS_TOPOLOGY_H_
