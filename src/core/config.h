// Tunable parameters of the simulated machine and of the fault-tolerance
// mechanisms. The FT-relevant knobs correspond to the "system-defined"
// values of §5.2 and §7.8 ("It is possible to set the message count and
// execution time interval which trigger sync for each process").

#ifndef AURAGEN_SRC_CORE_CONFIG_H_
#define AURAGEN_SRC_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/base/types.h"
#include "src/bus/topology.h"

namespace auragen {

// How processes are kept recoverable. kMessageSystem is the paper; the
// others are the §2 baselines implemented in src/baselines for the
// efficiency comparisons (experiments E2/E9).
enum class FtStrategy : uint8_t {
  kNone,            // no backups at all
  kMessageSystem,   // the paper: 3-way delivery + sync + rollforward
  kCheckpointFull,  // §2: copy the whole data space to the backup each trigger
  kCheckpointIncremental,  // checkpoint only pages dirtied since last trigger
  kLockstep,        // §2/Stratus: backup executes every instruction too
};

const char* FtStrategyName(FtStrategy s);

inline const char* FtStrategyName(FtStrategy s) {
  switch (s) {
    case FtStrategy::kNone: return "none";
    case FtStrategy::kMessageSystem: return "msgsys";
    case FtStrategy::kCheckpointFull: return "ckpt-full";
    case FtStrategy::kCheckpointIncremental: return "ckpt-incr";
    case FtStrategy::kLockstep: return "lockstep";
  }
  return "?";
}

// How dirty pages travel to the page server at a sync (§5.2, §8.3).
enum class SyncMode : uint8_t {
  // Ship every resident page synchronously at each sync: the classic
  // checkpoint transfer the incremental pipeline is measured against.
  kStopAndCopy,
  // Ship only pages dirtied since the last flush, synchronously: the
  // primary stalls for build + per-page enqueue time (§8.3).
  kIncremental,
  // Ship only pages dirtied since the last acknowledged flush, and let the
  // primary resume after the record is built: copy-on-write snapshots drain
  // to the outgoing queue from the executive while the process runs.
  kIncrementalAsync,
};

inline const char* SyncModeName(SyncMode m) {
  switch (m) {
    case SyncMode::kStopAndCopy: return "stop-and-copy";
    case SyncMode::kIncremental: return "incremental";
    case SyncMode::kIncrementalAsync: return "incremental-async";
  }
  return "?";
}

// Typed configuration for the sync pipeline. Replaces growing SystemConfig
// with more loose scalars: the mode, drain pacing, and the adaptive-trigger
// bounds travel together and are validated as a unit at Machine::Boot().
struct SyncPolicy {
  SyncMode mode = SyncMode::kIncremental;

  // kIncrementalAsync: pages enqueued per executive drain step. Smaller
  // batches interleave more with regular outgoing traffic; larger batches
  // finish the flush sooner.
  uint32_t drain_batch_pages = 8;

  // Adaptive trigger (§7.8 lets the trigger be set per process; this moves
  // it automatically). After each flush the effective time limit halves
  // when the flush captured more than `dirty_high` pages and grows 2x when
  // it captured fewer than `dirty_low`, clamped to [min,max].
  bool adaptive = false;
  SimTime adaptive_min_time_us = 2000;
  SimTime adaptive_max_time_us = 80000;
  uint32_t adaptive_dirty_high = 24;
  uint32_t adaptive_dirty_low = 4;

  // Empty string = valid; otherwise a diagnostic naming the bad field.
  std::string Validate() const {
    if (mode != SyncMode::kStopAndCopy && mode != SyncMode::kIncremental &&
        mode != SyncMode::kIncrementalAsync) {
      return "SyncPolicy.mode is not a known SyncMode";
    }
    if (drain_batch_pages == 0) {
      return "SyncPolicy.drain_batch_pages must be >= 1";
    }
    if (adaptive) {
      if (adaptive_min_time_us == 0) {
        return "SyncPolicy.adaptive_min_time_us must be > 0";
      }
      if (adaptive_min_time_us > adaptive_max_time_us) {
        return "SyncPolicy.adaptive_min_time_us exceeds adaptive_max_time_us";
      }
      if (adaptive_dirty_low >= adaptive_dirty_high) {
        return "SyncPolicy.adaptive_dirty_low must be < adaptive_dirty_high";
      }
    }
    return "";
  }
};

struct SystemConfig {
  uint32_t num_clusters = 2;
  uint32_t work_processors_per_cluster = 2;   // §7.1

  FtStrategy strategy = FtStrategy::kMessageSystem;

  // --- work-processor cost model ---
  double us_per_work_unit = 0.5;   // one AVM instruction ≈ 0.5us (2 MIPS, M68000-era)
  uint64_t quantum_work = 500;     // work units per dispatch

  // --- executive-processor cost model (§7.1: it handles all intercluster
  //     message traffic; §8.1: backup copies cost executive, not work, time) ---
  SimTime exec_send_us = 4;        // take a message off the outgoing queue
  SimTime exec_deliver_us = 3;     // distribute one arriving message locally
  SimTime exec_sync_apply_us = 6;  // apply a sync record to a backup PCB

  // --- sync triggers (§5.2, §7.8) ---
  uint32_t sync_reads_limit = 32;        // reads since sync
  SimTime sync_time_limit_us = 20000;    // execution time since sync
  // Work-processor stall per dirty page enqueued at sync (§8.3: the primary
  // is interrupted "only as long as it takes to place its dirty pages and
  // the sync message on the outgoing queue").
  SimTime sync_page_enqueue_us = 2;
  SimTime sync_build_us = 10;
  // How dirty pages travel at a sync (mode + drain pacing + adaptive
  // trigger bounds); see SyncPolicy above.
  SyncPolicy sync_policy;

  // Page-server shards (§7.9 scaled out): backup images for processes born
  // on different clusters land on different page-server instances, so
  // recovery paging does not converge on a single hot cluster. Shard choice
  // is pid.origin_cluster() % page_shards — stable across primary moves.
  uint32_t page_shards = 1;

  // --- failure detection (§7.10: periodic polling) ---
  SimTime heartbeat_period_us = 5000;
  SimTime heartbeat_timeout_us = 12000;  // missed ~2 heartbeats

  // --- crash handling (§7.10.1) ---
  SimTime crash_scan_per_entry_us = 1;   // routing-table patch cost per entry

  BusConfig bus;

  // Intercluster fabric layout (src/bus/topology.h). Empty (the default)
  // means the pre-fabric machine: one segment over `num_clusters` clusters
  // using `bus` — see resolved_topology(). When set, it is the single source
  // of truth for the cluster count; Machine::Boot() CHECKs that
  // `num_clusters` agrees (MachineOptions::WithTopology keeps them in sync).
  Topology topology;

  // The topology every component actually runs on.
  Topology resolved_topology() const {
    return topology.empty() ? Topology::SingleSegment(num_clusters, bus) : topology;
  }

  // Default backup mode for user processes (§7.3: "The default mode, at
  // least for the first implementation, will be quarterback").
  BackupMode default_mode = BackupMode::kQuarterback;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_CORE_CONFIG_H_
