// Crash handling and recovery (§6, §7.10). A whole processing unit fails
// fail-stop; surviving kernels learn via heartbeat timeout, serialize a
// crash notice through the bus (which orders it after every message the dead
// cluster managed to send), patch their routing tables, and bring up the
// backups of the lost primaries. User-process backups roll forward from the
// last sync; peripheral-server backups are already warm (§7.9).

#include "src/core/kernel.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/kernel/avm_body.h"
#include "src/servers/protocol.h"

namespace auragen {

ClusterMask Kernel::LiveBroadcastMask() const {
  ClusterMask mask = 0;
  for (ClusterId c = 0; c < env_.config().num_clusters; ++c) {
    if (c == id_ || peer_alive_[c]) {
      mask |= MaskOf(c);
    }
  }
  return mask;
}

void Kernel::BroadcastBackupLocation(Gpid pid, ClusterId cluster) {
  // kBackupReady: peers update their triple-send address for `pid`, unfreeze
  // its channels, and release held messages. kNoCluster announces "no backup
  // anymore" — peers unfreeze without a save destination.
  Msg ready;
  ready.header.kind = MsgKind::kBackupReady;
  ready.header.src_pid = kernel_pid_;
  ready.header.dst_pid = pid;
  ByteWriter w;
  w.U64(pid.value);
  w.U32(cluster);
  ready.body = w.Take();
  EnqueueOutgoing(std::move(ready), LiveBroadcastMask());
}

void Kernel::BroadcastCrashNotice(ClusterId dead) {
  Msg msg;
  msg.header.kind = MsgKind::kCrashNotice;
  msg.header.src_pid = kernel_pid_;
  ByteWriter w;
  w.U32(dead);
  msg.body = w.Take();
  // Like heartbeats, the notice bypasses the outgoing queue: it must get out
  // even while a previous crash has transmission disabled, and its position
  // in the global bus order is the synchronization point every cluster
  // starts crash handling from (§7.10.1). The freshly dead cluster is still
  // in the mask (peer_alive_ flips in HandleCrashNotice); clusters from
  // *earlier* handled crashes are not.
  env_.bus().Transmit(id_, LiveBroadcastMask(), msg.Encode());
}

void Kernel::HandleCrashNotice(ClusterId dead) {
  if (dead == id_) {
    // The rest of the machine has declared this cluster dead and is already
    // committed to bringing up its backups. Continuing to run would be
    // split-brain: two live copies of every process hosted here. Fail-stop
    // semantics demand the accused side fence itself (§6).
    ALOG_WARN() << "c" << id_ << ": fencing after crash notice naming self";
    CrashNow();
    return;
  }
  if (dead >= crash_handled_.size() || crash_handled_[dead]) {
    return;
  }
  crash_handled_[dead] = true;
  peer_alive_[dead] = false;
  crash_detect_at_[dead] = env_.engine().Now();
  if (env_.metrics().last_crash_detected_at < env_.engine().Now()) {
    env_.metrics().last_crash_detected_at = env_.engine().Now();
  }
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kCrashDetect, id_, 0, 0, dead, 0);
  }
  ALOG_INFO() << "c" << id_ << ": handling crash of cluster " << dead;

  // §7.10.1: transmission of outgoing messages is disabled, then two very
  // high priority crash processes run once all previously-arrived messages
  // are distributed. Bus serialization means everything the dead cluster
  // sent was already delivered when the notice fired; the scan cost is
  // charged against the work processors (the crash processes are "special
  // high priority user processes", §8.4).
  transmit_enabled_ = false;
  ++pending_crash_handlers_;
  SimTime scan_cost = env_.config().crash_scan_per_entry_us *
                      std::max<size_t>(1, routing_.size()) /
                      std::max<uint32_t>(1, env_.config().work_processors_per_cluster);
  env_.metrics().work_busy_us += scan_cost;
  env_.engine().Schedule(scan_cost, [this, dead] {
    if (!alive_) {
      return;
    }
    RunCrashHandling(dead);
  });
}

void Kernel::PatchEntryAfterCrash(RoutingEntry& entry, ClusterId dead) {
  if (entry.peer_primary_cluster == dead) {
    if (entry.peer_backup_cluster != kNoCluster) {
      // §7.10.1 step 1: the primary destination is replaced by the backup
      // destination; fullback channels are unusable until the new backup's
      // location arrives.
      entry.peer_primary_cluster = entry.peer_backup_cluster;
      entry.peer_backup_cluster = kNoCluster;
      if (static_cast<BackupMode>(entry.peer_mode) == BackupMode::kFullback) {
        entry.unusable = true;
      }
    } else {
      entry.closed_by_peer = true;  // peer died unprotected
    }
  } else if (entry.peer_backup_cluster == dead) {
    entry.peer_backup_cluster = kNoCluster;
    if (static_cast<BackupMode>(entry.peer_mode) == BackupMode::kFullback &&
        !entry.closed_by_peer) {
      // The fullback peer's *backup* died while its primary lives on. Its
      // kernel will rebuild protection and broadcast kBackupReady (or give
      // up with kNoCluster). Until then nothing may reach the primary
      // unsaved: a message it read before the replacement existed would be
      // missing from the replacement's saved queue, and the next sync's
      // trim would underflow.
      entry.unusable = true;
    }
  }
  if (entry.own_backup_cluster == dead) {
    entry.own_backup_cluster = kNoCluster;
  }
}

void Kernel::RunCrashHandling(ClusterId dead) {
  // Step 1: patch the routing table.
  routing_.ForEach([&](RoutingEntry& entry) { PatchEntryAfterCrash(entry, dead); });

  // Step 4: adjust the outgoing queue like the routing table.
  for (OutgoingItem& item : outgoing_) {
    MsgHeader& h = item.msg.header;
    item.targets &= ~MaskOf(dead);
    if (h.dst_primary_cluster == dead) {
      if (h.dst_backup_cluster != kNoCluster) {
        h.dst_primary_cluster = h.dst_backup_cluster;
        h.dst_backup_cluster = kNoCluster;
        item.targets |= MaskOf(h.dst_primary_cluster);
        // Fullback destination: hold until its new backup is known.
        RoutingEntry* e = routing_.Find(h.channel, h.src_pid, /*backup=*/false);
        if (e != nullptr && e->unusable) {
          item.held_for = h.dst_pid;
        }
      } else {
        item.targets = 0;  // destination lost for good; dropped at transmit
      }
    }
    if (h.dst_backup_cluster == dead) {
      h.dst_backup_cluster = kNoCluster;
    }
    if (h.src_backup_cluster == dead) {
      h.src_backup_cluster = kNoCluster;
    }
    if (item.targets == 0) {
      // Nothing left to address: a held item would otherwise wait forever
      // for a kBackupReady that can no longer matter. Release it so the
      // pump drains (and drops) it.
      item.held_for = Gpid{};
    }
  }

  // Steps 2/3: make runnable the backups of lost primaries.
  std::vector<Gpid> lost;
  for (auto& [pid, b] : backups_) {
    if (b.primary_cluster == dead) {
      lost.push_back(pid);
    }
  }
  for (Gpid pid : lost) {
    BackupPcb b = std::move(backups_[pid]);
    backups_.erase(pid);
    TakeOver(std::move(b));
  }

  // Step 5: peripheral-server backups begin recovery (§7.10.1).
  std::vector<Gpid> parked;
  for (auto& [pid, pcb] : procs_) {
    if (pcb->server_backup && pcb->primary_cluster == dead) {
      parked.push_back(pid);
    }
  }
  for (Gpid pid : parked) {
    TakeOverParkedServer(*procs_[pid]);
  }

  // Wake readers whose peers died unprotected (they see EOF now), and
  // re-issue page requests that may have been swallowed by the crash.
  for (auto& [pid, pcb] : procs_) {
    if (pcb->state == ProcState::kBlockedRead || pcb->state == ProcState::kBlockedWhich) {
      TryCompleteBlocked(*pcb);
    }
  }
  ReissuePageRequests();

  // Live primaries whose *backup* cluster died are now unprotected: stop
  // syncing into the void, and — for fullbacks — re-establish protection.
  // Quarterback and halfback processes stay unprotected by contract (§7.3:
  // their modes do not re-back after a failure).
  for (auto& [pid, pcb] : procs_) {
    if (pcb->backup_cluster != dead || pcb->server_backup) {
      continue;
    }
    pcb->backup_cluster = kNoCluster;
    pcb->backup_exists = false;
    if (pcb->mode == BackupMode::kFullback && !pcb->peripheral &&
        pcb->state != ProcState::kExited &&
        env_.config().strategy == FtStrategy::kMessageSystem) {
      pcb->needs_rebackup = true;
      // Peers freeze these channels when their own crash handling runs, but
      // detections are staggered by up to a heartbeat period. Capture the
      // replacement image only after every live peer has certainly frozen
      // and its pre-freeze traffic has drained; anything read before the
      // capture is then part of the image, and everything after is either
      // held at the sender or triple-sent to the announced replacement.
      pcb->rebackup_not_before =
          env_.engine().Now() + env_.config().heartbeat_period_us + 1000;
      Gpid rebuild_pid = pid;
      env_.engine().ScheduleAt(pcb->rebackup_not_before, [this, rebuild_pid] {
        if (!alive_) {
          return;
        }
        Pcb* p = FindProcess(rebuild_pid);
        if (p == nullptr) {
          // Exited and reaped while peers were frozen: unfreeze them.
          BroadcastBackupLocation(rebuild_pid, kNoCluster);
          return;
        }
        if (p->needs_rebackup) {
          RebuildLostBackup(*p);
        }
      });
    }
  }

  AURAGEN_CHECK(pending_crash_handlers_ > 0) << "crash handler drained twice";
  --pending_crash_handlers_;
  if (pending_crash_handlers_ == 0) {
    // §7.10.1: only when *every* pending crash has been handled may regular
    // transmission resume — an earlier crash's completion must not release
    // messages addressed with routing state that still names a later dead
    // cluster.
    transmit_enabled_ = true;
  }
  env_.metrics().crashes_handled++;
  env_.metrics().last_recovery_complete_at = env_.engine().Now();
  SimTime handling_us = env_.engine().Now() - crash_detect_at_[dead];
  env_.metrics().rollforward_replay_us += handling_us;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kCrashHandled, id_, 0, 0, dead, handling_us);
  }
  PumpTransmit();
  TryDispatch();
}

void Kernel::RebuildLostBackup(Pcb& pcb) {
  if (!pcb.needs_rebackup) {
    return;
  }
  if (env_.config().strategy != FtStrategy::kMessageSystem ||
      pcb.mode != BackupMode::kFullback || pcb.peripheral || pcb.server_backup ||
      pcb.state == ProcState::kExited) {
    // Permanently not rebuildable: release the peers that froze for us.
    pcb.needs_rebackup = false;
    BroadcastBackupLocation(pcb.pid, kNoCluster);
    return;
  }
  if (env_.engine().Now() < pcb.rebackup_not_before) {
    return;  // peers may not all have frozen yet; the scheduled retry comes
  }
  if (pcb.dispatched) {
    return;  // mid-slice; FinishRun -> MaybeTriggerSync retries
  }
  ClusterId nb = env_.PlaceNewBackup(id_, kNoCluster);
  if (nb == kNoCluster) {
    pcb.needs_rebackup = false;  // nowhere left to back up; run unprotected
    BroadcastBackupLocation(pcb.pid, kNoCluster);
    return;
  }
  pcb.backup_cluster = nb;
  // The capture must accept a process blocked awaiting a reply: that reply
  // is held at the sender by the §7.10.1 freeze, and only this re-backup's
  // broadcast releases it — deferring to a sync-safe point would deadlock.
  pcb.rebuild_capture = true;
  if (!CanSyncNow(pcb)) {
    pcb.rebuild_capture = false;
    pcb.backup_cluster = kNoCluster;
    return;  // flag stays set; retried from MaybeTriggerSync
  }
  pcb.needs_rebackup = false;
  for (RoutingEntry* e : routing_.EntriesOf(pcb.pid, /*backup=*/false)) {
    e->own_backup_cluster = nb;
  }
  // Order matters: the sync ships dirty pages and stages the page server's
  // backup account (§7.8 atomicity), so the context the create carries and
  // the page account a future rollforward reads agree. Both captures see the
  // same quiescent state, so the create's context matches the sync's. The
  // flush must be synchronous: an async drain would let the create (sent
  // below) overtake the record, and the new backup would trim its saved
  // queues twice.
  ForceSync(pcb, /*signal_forced=*/false, /*force_synchronous=*/true);
  CreateReplacementBackup(pcb, CaptureKernelContext(pcb));
  pcb.rebuild_capture = false;
  pcb.backup_exists = true;
}

void Kernel::TakeOver(BackupPcb b) {
  Gpid pid = b.pid;
  ALOG_INFO() << "c" << id_ << ": takeover of " << GpidStr(pid)
              << (b.has_sync ? " (rollforward)" : " (restart)");
  auto pcb = std::make_unique<Pcb>();
  Pcb& p = *pcb;
  p.pid = pid;
  p.mode = b.mode;
  p.parent = b.parent;
  p.family_head = b.family_head;
  p.is_server = b.is_server;
  p.peripheral = b.peripheral;
  p.sync_seq = b.sync_seq;
  p.sig_handler = b.sig_handler;
  p.signal_channel = b.signal_channel;

  Bytes replacement_context = b.context;

  const bool checkpoint_mode = env_.config().strategy == FtStrategy::kCheckpointFull ||
                               env_.config().strategy == FtStrategy::kCheckpointIncremental;

  if (b.is_server) {
    p.body = std::make_unique<NativeBody>(env_.MakeServerProgram(pid), /*paged_ft=*/true);
  } else if (b.has_sync) {
    p.body = std::make_unique<AvmBody>(Executable{});
  } else {
    ByteReader r(b.exe);
    p.exe = Executable::Deserialize(r);
    p.body = std::make_unique<AvmBody>(p.exe);
  }

  if (b.has_sync) {
    KernelContext kctx = KernelContext::Decode(b.context);
    p.body->RestoreContext(kctx.body_context);
    if (checkpoint_mode) {
      // §2 baseline: state comes from the shipped checkpoint images, not
      // from a page server; untouched pages zero-fill locally.
      for (const auto& [page, content] : b.ckpt_pages) {
        p.body->InstallPage(page, /*known=*/true, content);
      }
    } else {
      p.body->EvictAllPages();  // §7.10.2: no pages resident; demand-fault in
    }
    p.next_fd = kctx.next_fd;
    p.next_group = kctx.next_group;
    for (const auto& [gid, fds] : kctx.groups) {
      p.groups[gid] = fds;
    }
    p.fork_seq = kctx.fork_seq;
    p.in_signal = kctx.in_signal;
    p.ever_synced = true;
  } else {
    p.next_fd = 3;
  }

  // Flip the saved backup routing entries into primary entries, preserving
  // queues (the rollforward input, §5.2) and write counts (the §5.4
  // suppression budget).
  std::vector<RoutingEntry*> flips = routing_.EntriesOf(pid, /*backup=*/true);
  std::vector<RoutingEntry> copies;
  copies.reserve(flips.size());
  uint64_t replayed = 0;
  for (RoutingEntry* e : flips) {
    copies.push_back(*e);
    replayed += e->queue.size();
    env_.metrics().rollforward_msgs_replayed += e->queue.size();
  }
  routing_.RemoveAllOf(pid, /*backup=*/true);
  for (RoutingEntry& c : copies) {
    RoutingEntry& ne = routing_.Create(c.channel, pid, /*backup=*/false);
    Gpid owner = ne.owner;
    ne = c;
    ne.owner = owner;
    ne.backup_entry = false;
    ne.own_backup_cluster = kNoCluster;  // set below for fullbacks
    ne.opened_since_sync = false;
    if (ne.fd != kBadFd) {
      p.fds[ne.fd] = FdBinding{ne.channel, static_cast<PeerKind>(ne.peer_kind)};
    }
    if (ne.binding_tag == kBindSignalChannel) {
      p.signal_channel = ne.channel;
    }
  }

  // Fork-replay inputs (§7.10.2).
  if (auto it = birth_store_.find(pid); it != birth_store_.end()) {
    p.pending_birth_notices = it->second;
  }
  for (const BirthNotice& n : b.birth_notices) {
    bool seen = false;
    for (const BirthNotice& have : p.pending_birth_notices) {
      seen = seen || have.fork_seq == n.fork_seq;
    }
    if (!seen) {
      p.pending_birth_notices.push_back(n);
    }
  }

  // Backup-mode epilogue (§7.3).
  switch (p.mode) {
    case BackupMode::kQuarterback:
    case BackupMode::kHalfback:
      p.backup_cluster = kNoCluster;
      p.backup_exists = false;
      break;
    case BackupMode::kFullback: {
      ClusterId nb = env_.PlaceNewBackup(id_, kNoCluster);
      p.backup_cluster = nb;
      if (nb != kNoCluster) {
        for (RoutingEntry* e : routing_.EntriesOf(pid, /*backup=*/false)) {
          e->own_backup_cluster = nb;
        }
        CreateReplacementBackup(p, replacement_context);
        p.backup_exists = true;
      } else {
        // Nowhere to back up: run unprotected, and release the peers that
        // froze this process's channels awaiting the new location (§7.10.1)
        // — without the broadcast they would hold their messages forever.
        p.backup_cluster = kNoCluster;
        BroadcastBackupLocation(pid, kNoCluster);
      }
      break;
    }
  }

  p.state = ProcState::kReady;
  if (p.is_server) {
    EnsureSelfEntry(p);
  }
  Gpid ppid = p.pid;
  procs_[ppid] = std::move(pcb);
  env_.metrics().takeovers++;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kTakeover, id_, ppid.value, 0,
                    b.has_sync ? 1 : 0, replayed);
  }
  if (p.is_server) {
    env_.OnServerTakeover(ppid, id_);
  }
  MakeReady(*procs_[ppid]);
}

void Kernel::TakeOverParkedServer(Pcb& pcb) {
  ALOG_INFO() << "c" << id_ << ": peripheral server " << GpidStr(pcb.pid) << " taking over";
  // The active backup is warm (§7.9): entries flip, suppression counts and
  // saved (untrimmed) requests come along, and the program simply starts its
  // read-service loop against the saved queue.
  std::vector<RoutingEntry*> flips = routing_.EntriesOf(pcb.pid, /*backup=*/true);
  std::vector<RoutingEntry> copies;
  uint64_t replayed = 0;
  for (RoutingEntry* e : flips) {
    copies.push_back(*e);
    replayed += e->queue.size();
    env_.metrics().rollforward_msgs_replayed += e->queue.size();
  }
  routing_.RemoveAllOf(pcb.pid, /*backup=*/true);
  for (RoutingEntry& c : copies) {
    RoutingEntry& ne = routing_.Create(c.channel, pcb.pid, /*backup=*/false);
    ne = c;
    ne.owner = pcb.pid;
    ne.backup_entry = false;
    ne.own_backup_cluster = kNoCluster;  // halfback: re-backed when the
                                         // original cluster returns (§7.3)
  }
  pcb.server_backup = false;
  pcb.backup_cluster = kNoCluster;
  pcb.primary_cluster = kNoCluster;
  pcb.state = ProcState::kReady;
  EnsureSelfEntry(pcb);
  env_.metrics().takeovers++;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kTakeover, id_, pcb.pid.value, 0, 2, replayed);
  }
  env_.OnServerTakeover(pcb.pid, id_);
  MakeReady(pcb);
}

void Kernel::CreateReplacementBackup(Pcb& pcb, const Bytes& sync_context) {
  BackupCreateBody body;
  body.pid = pcb.pid;
  body.mode = pcb.mode;
  body.parent = pcb.parent;
  body.family_head = pcb.family_head;
  body.primary_cluster = id_;
  body.has_sync = pcb.ever_synced;
  body.is_server = pcb.is_server;
  body.sync_seq = pcb.sync_seq;
  body.context = sync_context;
  body.sig_handler = pcb.sig_handler;
  if (!pcb.is_server && !pcb.ever_synced) {
    ByteWriter w;
    pcb.exe.Serialize(w);
    body.exe = w.Take();
  }
  for (const auto& [fd, binding] : pcb.fds) {
    body.fds.emplace_back(fd, binding.channel.value);
  }
  for (RoutingEntry* e : routing_.EntriesOf(pcb.pid, /*backup=*/false)) {
    SavedQueueRecord rec;
    rec.channel = e->channel;
    rec.fd = e->fd;
    rec.peer_pid = e->peer_pid;
    rec.peer_primary_cluster = e->peer_primary_cluster;
    rec.peer_backup_cluster = e->peer_backup_cluster;
    rec.peer_kind = e->peer_kind;
    rec.peer_mode = e->peer_mode;
    // The remaining §5.4 suppression budget travels: it counts sends already
    // delivered to the world since the last sync (by the dead primary or by
    // us); a replacement backup rolling forward must skip exactly those.
    rec.writes_since_sync = e->writes_since_sync;
    if (pcb.state == ProcState::kBlockedRead && pcb.blocked_side_effects &&
        e->channel == pcb.blocked_channel) {
      // The captured context rewinds to the request this process is blocked
      // on (the §5.4 note in CanSyncNow): a rollforward re-issues it, so one
      // extra suppression turns that resend into a no-op instead of a
      // duplicate at the peer.
      rec.writes_since_sync++;
    }
    for (const QueuedMsg& q : e->queue) {
      rec.queued.push_back(q.msg.Encode());
    }
    body.queues.push_back(std::move(rec));
  }

  Msg create;
  create.header.kind = MsgKind::kBackupCreate;
  create.header.src_pid = kernel_pid_;
  create.header.dst_pid = pcb.pid;
  create.body = body.Encode();
  env_.metrics().backup_create_bytes += create.body.size();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kBackupShip, id_, pcb.pid.value, 0, 0,
                    create.body.size());
  }
  EnqueueOutgoing(std::move(create), MaskOf(pcb.backup_cluster));

  // §7.10.1: once the new backup's location is known, peers unfreeze their
  // channels. Bus FIFO guarantees the create lands before the ready.
  BroadcastBackupLocation(pcb.pid, pcb.backup_cluster);
}

void Kernel::HandleBackupCreate(const BackupCreateBody& body, ClusterId from) {
  (void)from;
  if (body.peripheral) {
    // Halfback re-backup (§7.3): materialize a parked *active* backup with
    // the shipped program state and saved queues.
    auto pcb = std::make_unique<Pcb>();
    Pcb& p = *pcb;
    p.pid = body.pid;
    p.mode = body.mode;
    p.is_server = true;
    p.peripheral = true;
    p.server_backup = true;
    p.primary_cluster = body.primary_cluster;
    p.state = ProcState::kParkedBackup;
    auto program = env_.MakeServerProgram(body.pid);
    ByteReader state(body.context);
    program->RestoreState(state);
    p.body = std::make_unique<NativeBody>(std::move(program), /*paged_ft=*/false);
    for (const SavedQueueRecord& rec : body.queues) {
      RoutingEntry& e = routing_.Create(rec.channel, body.pid, /*backup=*/true);
      e.fd = rec.fd;
      e.peer_pid = rec.peer_pid;
      e.peer_primary_cluster = rec.peer_primary_cluster;
      e.peer_backup_cluster = rec.peer_backup_cluster;
      e.peer_kind = rec.peer_kind;
      e.peer_mode = rec.peer_mode;
      e.own_backup_cluster = id_;
      e.opened_since_sync = false;
      for (const Bytes& m : rec.queued) {
        QueuedMsg q;
        q.arrival_seq = next_arrival_seq_++;
        q.msg = Msg::Decode(m);
        e.queue.push_back(std::move(q));
      }
    }
    procs_[body.pid] = std::move(pcb);
    env_.metrics().backups_created++;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventKind::kBackupCreate, id_, body.pid.value, 0, 1, 0);
    }
    return;
  }
  BackupPcb b;
  b.pid = body.pid;
  b.mode = body.mode;
  b.parent = body.parent;
  b.family_head = body.family_head;
  b.primary_cluster = body.primary_cluster;
  b.has_sync = body.has_sync;
  b.is_server = body.is_server;
  b.sync_seq = body.sync_seq;
  b.context = body.context;
  b.sig_handler = body.sig_handler;
  b.exe = body.exe;
  for (const auto& [fd, chan] : body.fds) {
    b.fds[fd] = ChannelId{chan};
  }
  for (const SavedQueueRecord& rec : body.queues) {
    RoutingEntry& e = routing_.Create(rec.channel, body.pid, /*backup=*/true);
    e.fd = rec.fd;
    e.peer_pid = rec.peer_pid;
    e.peer_primary_cluster = rec.peer_primary_cluster;
    e.peer_backup_cluster = rec.peer_backup_cluster;
    e.peer_kind = rec.peer_kind;
    e.peer_mode = rec.peer_mode;
    e.own_backup_cluster = id_;
    e.writes_since_sync = rec.writes_since_sync;
    e.opened_since_sync = false;
    for (const Bytes& m : rec.queued) {
      QueuedMsg q;
      q.arrival_seq = next_arrival_seq_++;
      q.msg = Msg::Decode(m);
      e.queue.push_back(std::move(q));
    }
    if (e.binding_tag == kBindSignalChannel) {
      b.signal_channel = e.channel;
    }
  }
  backups_[body.pid] = std::move(b);
  env_.metrics().backups_created++;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kBackupCreate, id_, body.pid.value, 0, 0, 0);
  }
}

void Kernel::HandleBackupReady(Gpid pid, ClusterId new_backup, ClusterId primary_home) {
  // The announced cluster can itself be dead by the time the notice is
  // consumed (the creator queued it before learning of the crash). Treating
  // it as "no backup" keeps us from triple-sending into a void the creator
  // will re-announce from its own crash handling anyway.
  if (new_backup != kNoCluster &&
      (new_backup >= peer_alive_.size() ||
       (new_backup != id_ && !peer_alive_[new_backup]))) {
    new_backup = kNoCluster;
  }
  auto dead_here = [&](ClusterId c) {
    return c != kNoCluster && c != id_ &&
           (c >= peer_alive_.size() || !peer_alive_[c]);
  };
  routing_.ForEach([&](RoutingEntry& entry) {
    if (entry.peer_pid == pid) {
      entry.peer_backup_cluster = new_backup;
      entry.unusable = false;
      // The ready always originates from the primary's current kernel.
      // Detections are staggered, so a takeover's announcement can overtake
      // this kernel's own crash handling; without the repair the pending
      // PatchEntryAfterCrash pass would promote the freshly announced
      // *backup* into the primary slot and the primary leg would be lost.
      if (dead_here(entry.peer_primary_cluster)) {
        entry.peer_primary_cluster = primary_home;
      }
    }
  });
  bool released = false;
  for (OutgoingItem& item : outgoing_) {
    if (item.held_for == pid) {
      item.held_for = Gpid{};
      MsgHeader& h = item.msg.header;
      h.dst_backup_cluster = new_backup;
      if (new_backup != kNoCluster) {
        item.targets |= MaskOf(new_backup);
      }
      if (dead_here(h.dst_primary_cluster)) {
        // Same overtaking race for a held item: redirect its primary leg to
        // the announcing kernel before the transmit pump purges the dead bit.
        item.targets &= ~MaskOf(h.dst_primary_cluster);
        h.dst_primary_cluster = primary_home;
        item.targets |= MaskOf(primary_home);
      }
      released = true;
    }
  }
  if (released) {
    PumpTransmit();
  }
}

// --------------------------- §10 extension: individual-process failure

void Kernel::FailProcess(Gpid pid) {
  Pcb* pcb = FindProcess(pid);
  if (pcb == nullptr) {
    return;
  }
  ALOG_INFO() << "c" << id_ << ": process fault kills " << GpidStr(pid);
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kProcFail, id_, pid.value, 0, 0, 0);
  }
  // The process vanishes as a hardware fault would take it: no exit notice,
  // no channel closes — peers and the backup learn via the crash notice.
  routing_.RemoveAllOf(pid, /*backup=*/false);
  procs_.erase(pid);
  for (auto it = ready_.begin(); it != ready_.end();) {
    it = *it == pid ? ready_.erase(it) : std::next(it);
  }
  Msg notice;
  notice.header.kind = MsgKind::kProcCrash;
  notice.header.src_pid = kernel_pid_;
  notice.header.dst_pid = pid;
  ByteWriter w;
  w.U64(pid.value);
  w.U32(id_);
  notice.body = w.Take();
  EnqueueOutgoing(std::move(notice), LiveBroadcastMask());
}

void Kernel::HandleProcCrash(Gpid pid, ClusterId at) {
  // Scoped version of RunCrashHandling: only entries referring to this one
  // process are patched, and only its backup is brought up.
  routing_.ForEach([&](RoutingEntry& entry) {
    if (entry.peer_pid != pid) {
      return;
    }
    if (entry.peer_primary_cluster == at) {
      if (entry.peer_backup_cluster != kNoCluster) {
        entry.peer_primary_cluster = entry.peer_backup_cluster;
        entry.peer_backup_cluster = kNoCluster;
        if (static_cast<BackupMode>(entry.peer_mode) == BackupMode::kFullback) {
          entry.unusable = true;
        }
      } else {
        entry.closed_by_peer = true;
      }
    }
  });
  for (OutgoingItem& item : outgoing_) {
    MsgHeader& h = item.msg.header;
    if (h.dst_pid != pid || h.dst_primary_cluster != at) {
      continue;
    }
    if (h.dst_backup_cluster != kNoCluster) {
      item.targets &= ~MaskOf(at);
      h.dst_primary_cluster = h.dst_backup_cluster;
      h.dst_backup_cluster = kNoCluster;
      item.targets |= MaskOf(h.dst_primary_cluster);
    } else {
      item.targets = 0;
      item.held_for = Gpid{};  // nothing left to wait for; drop at transmit
    }
  }
  auto bit = backups_.find(pid);
  if (bit != backups_.end() && bit->second.primary_cluster == at) {
    BackupPcb b = std::move(bit->second);
    backups_.erase(bit);
    TakeOver(std::move(b));
  }
  for (auto& [ppid, pcb] : procs_) {
    if (pcb->state == ProcState::kBlockedRead || pcb->state == ProcState::kBlockedWhich) {
      TryCompleteBlocked(*pcb);
    }
  }
  PumpTransmit();
}

// ----------------------- §7.3 halfback return-to-service re-backup

void Kernel::RecreateServerBackup(Gpid pid, ClusterId target) {
  Pcb* pcb = FindProcess(pid);
  if (pcb == nullptr || !pcb->peripheral || pcb->server_backup) {
    return;
  }
  auto* nb = dynamic_cast<NativeBody*>(pcb->body.get());
  if (nb == nullptr) {
    return;
  }
  BackupCreateBody body;
  body.pid = pid;
  body.mode = pcb->mode;
  body.primary_cluster = id_;
  body.has_sync = true;
  body.is_server = true;
  body.peripheral = true;
  ByteWriter state;
  nb->program().SerializeState(state);
  body.context = state.Take();
  for (RoutingEntry* e : routing_.EntriesOf(pid, /*backup=*/false)) {
    e->own_backup_cluster = target;
    SavedQueueRecord rec;
    rec.channel = e->channel;
    rec.fd = e->fd;
    rec.peer_pid = e->peer_pid;
    rec.peer_primary_cluster = e->peer_primary_cluster;
    rec.peer_backup_cluster = e->peer_backup_cluster;
    rec.peer_kind = e->peer_kind;
    rec.peer_mode = e->peer_mode;
    // The remaining §5.4 suppression budget travels: it counts sends already
    // delivered to the world since the last sync (by the dead primary or by
    // us); a replacement backup rolling forward must skip exactly those.
    rec.writes_since_sync = e->writes_since_sync;
    // Unserviced requests travel so the new backup's saved queues match.
    for (const QueuedMsg& q : e->queue) {
      rec.queued.push_back(q.msg.Encode());
    }
    body.queues.push_back(std::move(rec));
  }
  pcb->backup_cluster = target;

  Msg create;
  create.header.kind = MsgKind::kBackupCreate;
  create.header.src_pid = kernel_pid_;
  create.header.dst_pid = pid;
  create.body = body.Encode();
  env_.metrics().backup_create_bytes += create.body.size();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kBackupShip, id_, pid.value, 0, 1,
                    create.body.size());
  }
  EnqueueOutgoing(std::move(create), MaskOf(target));

  // Peers resume triple-sending to the new backup location. Only self and
  // live peers are addressed; a cluster that died since this server's last
  // crash handling must not be.
  BroadcastBackupLocation(pid, target);
}

void Kernel::HandleServerSync(const MsgView& msg) {
  Pcb* pcb = FindProcess(msg.header.dst_pid);
  if (pcb == nullptr || !pcb->server_backup) {
    return;
  }
  ByteReader r(msg.body());
  ServerSyncPrefix prefix = ServerSyncPrefix::Deserialize(r);
  for (const auto& [chan, count] : prefix.serviced) {
    RoutingEntry* e = routing_.Find(chan, pcb->pid, /*backup=*/true);
    if (e == nullptr) {
      continue;
    }
    for (uint32_t i = 0; i < count && !e->queue.empty(); ++i) {
      e->queue.pop_front();
      env_.metrics().backup_msgs_trimmed++;
    }
    e->writes_since_sync = 0;
  }
  auto* nb = dynamic_cast<NativeBody*>(pcb->body.get());
  if (nb != nullptr) {
    nb->program().ApplyServerSync(r);
  }
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kServerSyncApply, id_, pcb->pid.value, 0,
                    msg.body().size(), 0);
  }
}

}  // namespace auragen
