// Executive-processor model: outgoing-queue drain, frame reception, and the
// three-role message distribution of §5.1/§7.4.2. Everything here runs "on
// the executive processor" — its costs accrue to Metrics::exec_busy_us, not
// work_busy_us, which is how experiment E1 checks §8.1's claim.

#include "src/core/kernel.h"

#include "src/base/log.h"
#include "src/servers/protocol.h"

namespace auragen {

void Kernel::ExecEnqueue(SimTime cost, Task fn) {
  exec_queue_.push_back(ExecItem{cost, std::move(fn)});
  ExecPump();
}

void Kernel::ExecPump() {
  if (exec_busy_ || exec_queue_.empty() || !alive_) {
    return;
  }
  exec_busy_ = true;
  ExecItem item = std::move(exec_queue_.front());
  exec_queue_.pop_front();
  env_.metrics().exec_busy_us += item.cost;
  // The running task is parked in a member rather than captured: a closure
  // holding a Task would always overflow Task's own inline buffer and force
  // a heap allocation per executive step. Only one task runs at a time
  // (exec_busy_), so the slot cannot be clobbered.
  exec_running_ = std::move(item.fn);
  env_.engine().Schedule(item.cost, [this] {
    if (!alive_) {
      return;
    }
    exec_busy_ = false;
    Task fn = std::move(exec_running_);
    fn();
    ExecPump();
  });
}

ClusterMask Kernel::TargetsOf(const RoutingEntry& entry) const {
  ClusterMask mask = 0;
  if (entry.peer_primary_cluster != kNoCluster) {
    mask |= MaskOf(entry.peer_primary_cluster);
  }
  if (entry.peer_backup_cluster != kNoCluster) {
    mask |= MaskOf(entry.peer_backup_cluster);
  }
  if (entry.own_backup_cluster != kNoCluster &&
      env_.config().strategy == FtStrategy::kMessageSystem) {
    mask |= MaskOf(entry.own_backup_cluster);
  }
  return mask;
}

void Kernel::EnqueueOutgoing(Msg msg, ClusterMask targets) {
  if (!alive_) {
    return;
  }
  OutgoingItem item;
  item.msg = std::move(msg);
  item.targets = targets;
  outgoing_.push_back(std::move(item));
  PumpTransmit();
}

void Kernel::PumpTransmit() {
  if (transmit_pumping_ || !transmit_enabled_ || !alive_) {
    return;
  }
  // Is anything transmittable (not held for a fullback re-creation)?
  bool any = false;
  for (const OutgoingItem& item : outgoing_) {
    if (!item.held_for.valid()) {
      any = true;
      break;
    }
  }
  if (!any) {
    return;
  }
  transmit_pumping_ = true;
  ExecEnqueue(env_.config().exec_send_us, [this] {
    transmit_pumping_ = false;
    if (!transmit_enabled_) {
      return;
    }
    for (auto it = outgoing_.begin(); it != outgoing_.end();) {
      if (it->held_for.valid()) {
        ++it;
        continue;
      }
      if (it->targets == 0) {
        // Crash handling stripped every destination (the peer died
        // unprotected): nothing to transmit, and paying a send slot per
        // dead item would stall live traffic behind a long casualty list.
        it = outgoing_.erase(it);
        continue;
      }
      Msg msg = std::move(it->msg);
      ClusterMask targets = it->targets;
      outgoing_.erase(it);
      env_.bus().Transmit(id_, targets, msg.Encode());
      break;
    }
    PumpTransmit();
  });
}

void Kernel::OnFrame(const Frame& frame) {
  if (!alive_) {
    return;
  }
  // Decode-once (§7.4.2): parse the fixed header in place; the body remains
  // a view into the shared frame payload, kept alive by the MsgView. No
  // bytes are copied until a queue takes ownership of the message.
  MsgView msg = MsgView::Parse(frame.payload);
  if (msg.header.kind == MsgKind::kHeartbeat) {
    // Heartbeats are handled by the bus interface hardware directly; they
    // cost no executive time and cannot be delayed behind message work.
    if (frame.src < last_heartbeat_.size()) {
      last_heartbeat_[frame.src] = env_.engine().Now();
      if (!peer_alive_[frame.src] && crash_handled_[frame.src]) {
        // A crashed cluster is beating again: it restarted (halfback path).
        peer_alive_[frame.src] = true;
        crash_handled_[frame.src] = false;
      }
    }
    return;
  }
  // Delivery latency (bus accept at the sender to arrival here); heartbeats
  // never enter this path.
  env_.metrics().delivery_latency_us_total += env_.engine().Now() - frame.sent_at;
  env_.metrics().delivery_latency_samples++;
  ExecEnqueue(env_.config().exec_deliver_us, [this, msg = std::move(msg)] {
    DeliverLocal(msg);
  });
}

void Kernel::EnqueueAtEntry(RoutingEntry& entry, const MsgView& msg) {
  QueuedMsg q;
  q.arrival_seq = next_arrival_seq_++;
  q.msg = msg.ToOwned();  // the queue takes ownership: the one legal copy
  entry.queue.push_back(std::move(q));
}

void Kernel::DeliverLocal(const MsgView& msg) {
  const MsgHeader& h = msg.header;
  switch (h.kind) {
    case MsgKind::kUser:
    case MsgKind::kOpenReply:
    case MsgKind::kSignal:
    case MsgKind::kClose:
    case MsgKind::kPageWrite:
    case MsgKind::kPageRequest:
    case MsgKind::kSync:
      break;  // channel-routed below
    default:
      HandleControl(msg);
      return;
  }

  // §7.4.2: the executive determines which of the three roles this cluster
  // plays; co-resident roles are all served from the single transmission.
  if (h.dst_primary_cluster == id_) {
    RoutingEntry* entry = routing_.Find(h.channel, h.dst_pid, /*backup=*/false);
    if (entry == nullptr && h.dst_backup_cluster != id_) {
      // Detection stagger: a peer that already ran its crash handling
      // addresses this cluster as the destination's new primary before our
      // own handling has flipped the passive/parked backup entries. Park the
      // message in the saved queue — the takeover flip replays it.
      RoutingEntry* saved = routing_.Find(h.channel, h.dst_pid, /*backup=*/true);
      if (saved != nullptr && h.kind != MsgKind::kClose) {
        EnqueueAtEntry(*saved, msg);
        env_.metrics().deliveries_backup++;
        if (tracer_ != nullptr) {
          tracer_->Record(TraceEventKind::kDeliverBackup, id_, h.dst_pid.value,
                          h.channel.value, static_cast<uint64_t>(h.kind),
                          msg.body().size());
        }
      }
    } else if (entry != nullptr) {
      if (h.kind == MsgKind::kClose) {
        entry->closed_by_peer = true;
      } else {
        EnqueueAtEntry(*entry, msg);
        env_.metrics().deliveries_primary++;
        if (tracer_ != nullptr) {
          tracer_->Record(TraceEventKind::kDeliverPrimary, id_, h.dst_pid.value,
                          h.channel.value, static_cast<uint64_t>(h.kind),
                          msg.body().size());
        }
      }
      WakeReaders(*entry);
      if (h.kind == MsgKind::kSignal) {
        // Interrupt a restartable wait right away (§7.5.2); otherwise the
        // signal is picked up at the next dispatch boundary.
        auto it = procs_.find(h.dst_pid);
        if (it != procs_.end()) {
          DeliverPendingSignal(*it->second);
          if (it->second->state == ProcState::kReady && !it->second->dispatched) {
            MakeReady(*it->second);
          }
        }
      }
    } else if (h.dst_pid == kernel_pid_) {
      // Kernel-addressed channel traffic (page replies ride kPageWrite-like
      // paths only toward servers; nothing else lands here today).
      ALOG_DEBUG() << "c" << id_ << ": kernel-addressed " << MsgKindName(h.kind);
    } else {
      ALOG_DEBUG() << "c" << id_ << ": no primary entry for ch " << h.channel.value << " "
                   << GpidStr(h.dst_pid) << " kind " << MsgKindName(h.kind);
    }
  }

  if (h.dst_backup_cluster == id_) {
    RoutingEntry* entry = routing_.Find(h.channel, h.dst_pid, /*backup=*/true);
    if (entry == nullptr && h.dst_primary_cluster != id_) {
      // Takeover stagger, reverse direction: the save leg of a message sent
      // with pre-takeover routing arrives after this cluster's backup entry
      // flipped to primary. Both legs ride one bus transmission, so a read
      // by the old primary implies the save landed here first — a late save
      // leg therefore carries a message the destination never saw. Deliver
      // it to the flipped primary entry instead of dropping it.
      RoutingEntry* flipped = routing_.Find(h.channel, h.dst_pid, /*backup=*/false);
      if (flipped != nullptr) {
        if (h.kind == MsgKind::kClose) {
          flipped->closed_by_peer = true;
        } else {
          EnqueueAtEntry(*flipped, msg);
          env_.metrics().deliveries_primary++;
          if (tracer_ != nullptr) {
            tracer_->Record(TraceEventKind::kDeliverPrimary, id_, h.dst_pid.value,
                            h.channel.value, static_cast<uint64_t>(h.kind),
                            msg.body().size());
          }
        }
        WakeReaders(*flipped);
      }
    } else if (entry != nullptr) {
      if (h.kind == MsgKind::kClose) {
        entry->closed_by_peer = true;
      } else {
        EnqueueAtEntry(*entry, msg);
        env_.metrics().deliveries_backup++;
        if (tracer_ != nullptr) {
          tracer_->Record(TraceEventKind::kDeliverBackup, id_, h.dst_pid.value,
                          h.channel.value, static_cast<uint64_t>(h.kind),
                          msg.body().size());
        }
      }
    }
    if (h.kind == MsgKind::kOpenReply) {
      // §7.4.1: "The arrival of an open reply at a backup cluster causes the
      // creation of the backup routing table entry."
      OpenReplyBody reply = OpenReplyBody::Decode(msg.body());
      if (reply.status == 0) {
        RoutingEntry* existing = routing_.Find(reply.channel, h.dst_pid, /*backup=*/true);
        if (existing == nullptr) {
          RoutingEntry& ne = routing_.Create(reply.channel, h.dst_pid, /*backup=*/true);
          ne.peer_pid = reply.peer_pid;
          ne.peer_primary_cluster = reply.peer_primary_cluster;
          ne.peer_backup_cluster = reply.peer_backup_cluster;
          ne.peer_kind = reply.peer_kind;
          ne.peer_mode = reply.peer_mode;
          ne.own_backup_cluster = id_;
          // Same staleness hazard as the open-completion path: a held reply
          // re-delivered after a crash names pre-crash peer clusters.
          for (ClusterId c = 0; c < env_.config().num_clusters; ++c) {
            if (crash_handled_[c]) {
              PatchEntryAfterCrash(ne, c);
            }
          }
        }
      }
    }
  }

  if (h.src_backup_cluster == id_) {
    // Third destination (§5.1): count and discard.
    RoutingEntry* entry = routing_.Find(h.channel, h.src_pid, /*backup=*/true);
    if (entry != nullptr && h.kind != MsgKind::kClose) {
      entry->writes_since_sync++;
      env_.metrics().deliveries_count_only++;
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kDeliverCount, id_, h.src_pid.value,
                        h.channel.value, entry->writes_since_sync, 0);
      }
    }
  }

  if (h.kind == MsgKind::kSync) {
    // Beyond the page-server channel delivery above, a sync message updates
    // the backup PCB when this cluster hosts it (§7.8).
    SyncRecord record = SyncRecord::Decode(msg.body());
    if (record.backup_cluster == id_) {
      ExecEnqueue(env_.config().exec_sync_apply_us, [this, record = std::move(record)] {
        ApplySyncAtBackup(record);
      });
    }
  }
}

void Kernel::WakeReaders(const RoutingEntry& entry) {
  auto it = procs_.find(entry.owner);
  if (it == procs_.end()) {
    return;
  }
  Pcb& pcb = *it->second;
  if (pcb.state != ProcState::kBlockedRead && pcb.state != ProcState::kBlockedWhich) {
    return;
  }
  // Completing a blocked read pops the message and finishes the syscall;
  // TryCompleteBlocked no-ops when this arrival does not satisfy the wait.
  TryCompleteBlocked(pcb);
}

void Kernel::HandleControl(const MsgView& msg) {
  switch (msg.header.kind) {
    case MsgKind::kChanCreate: {
      ChanCreate c = ChanCreate::Decode(msg.body());
      // Never clobber queues/counters of an existing entry: replayed forks
      // and duplicate notices re-announce channels that already carry saved
      // traffic. Only refresh the addressing.
      RoutingEntry* existing = routing_.Find(c.channel, c.owner, c.backup_entry);
      RoutingEntry& e = existing != nullptr
                            ? *existing
                            : routing_.Create(c.channel, c.owner, c.backup_entry);
      e.fd = c.fd;
      e.peer_pid = c.peer_pid;
      e.peer_primary_cluster = c.peer_primary_cluster;
      e.peer_backup_cluster = c.peer_backup_cluster;
      e.own_backup_cluster = c.own_backup_cluster;
      e.peer_kind = c.peer_kind;
      e.peer_mode = c.peer_mode;
      e.binding_tag = c.binding_tag;
      break;
    }
    case MsgKind::kBirthNotice:
      HandleBirthNotice(BirthNotice::Decode(msg.body()));
      break;
    case MsgKind::kExitNotice:
      HandleExitNotice(msg.header.dst_pid);
      break;
    case MsgKind::kCrashNotice: {
      ByteReader r(msg.body());
      HandleCrashNotice(static_cast<ClusterId>(r.U32()));
      break;
    }
    case MsgKind::kBackupCreate:
      HandleBackupCreate(BackupCreateBody::Decode(msg.body()),
                         msg.header.src_pid.origin_cluster());
      break;
    case MsgKind::kBackupReady: {
      ByteReader r(msg.body());
      Gpid pid;
      pid.value = r.U64();
      ClusterId nb = r.U32();
      HandleBackupReady(pid, nb, msg.header.src_pid.origin_cluster());
      break;
    }
    case MsgKind::kServerSync:
      HandleServerSync(msg);
      break;
    case MsgKind::kCheckpoint:
      ApplyCheckpointAtBackup(msg);
      break;
    case MsgKind::kProcCrash: {
      ByteReader r(msg.body());
      Gpid pid;
      pid.value = r.U64();
      ClusterId at = r.U32();
      HandleProcCrash(pid, at);
      break;
    }
    case MsgKind::kPageReply:
      if (msg.header.dst_primary_cluster == id_) {
        HandlePageReply(PageReplyBody::Decode(msg.body()));
      }
      if (msg.header.src_backup_cluster == id_) {
        // Count the page server's reply at its backup (suppression on
        // server rollforward).
        RoutingEntry* entry =
            routing_.Find(msg.header.channel, msg.header.src_pid, /*backup=*/true);
        if (entry != nullptr) {
          entry->writes_since_sync++;
        }
      }
      break;
    default:
      ALOG_WARN() << "c" << id_ << ": unhandled control " << MsgKindName(msg.header.kind);
      break;
  }
}

}  // namespace auragen
