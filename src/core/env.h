// MachineEnv: what a cluster kernel needs from the machine around it.
//
// Kernels never reach into each other — everything inter-cluster goes over
// the bus — but they share the simulation engine, the cost model, metrics,
// and the simulated peripherals their local servers drive. The interface
// also carries the two pieces of global knowledge the paper assigns to the
// process server that we resolve machine-side (documented in DESIGN.md):
// fullback placement and device bindings.

#ifndef AURAGEN_SRC_CORE_ENV_H_
#define AURAGEN_SRC_CORE_ENV_H_

#include <functional>
#include <memory>

#include "src/base/codec.h"
#include "src/base/result.h"
#include "src/base/types.h"
#include "src/bus/fabric.h"
#include "src/core/config.h"
#include "src/core/metrics.h"
#include "src/disk/disk.h"
#include "src/sim/engine.h"

namespace auragen {

class NativeProgram;

class MachineEnv {
 public:
  virtual ~MachineEnv() = default;

  virtual Engine& engine() = 0;
  // The intercluster fabric, behind the historical bus surface (Transmit /
  // Attach / Detach). Kernels address clusters, not segments: routing across
  // segments is the fabric's business.
  virtual Fabric& bus() = 0;
  virtual const SystemConfig& config() const = 0;
  virtual Metrics& metrics() = 0;

  // Device access for peripheral servers (native syscalls kDiskRead/Write,
  // kTtyEmit). The machine resolves `server` to its bound device; the
  // callback fires after the simulated device latency.
  virtual void DiskRead(Gpid server, BlockNum block,
                        std::function<void(Result<Bytes>)> done) = 0;
  virtual void DiskWrite(Gpid server, BlockNum block, Bytes data,
                         std::function<void(Result<void>)> done) = 0;
  // Multi-block transaction (kDiskWriteVec): the whole batch is one device
  // request — one seek + streamed transfer per mirror — and lands
  // atomically. The file server's group commit is built on this.
  virtual void DiskWriteMulti(Gpid server, DiskWriteBatch batch,
                              std::function<void(Result<void>)> done) = 0;
  virtual void TtyEmit(Gpid server, const Bytes& data) = 0;

  // Fullback placement (§7.10.2: the process server decides; we use a
  // deterministic machine-level rule — lowest-numbered alive cluster that is
  // neither `avoid_a` nor `avoid_b`).
  virtual ClusterId PlaceNewBackup(ClusterId avoid_a, ClusterId avoid_b) = 0;

  // Re-instantiates the native program of a page-synced system server when
  // its passive backup takes over (its state is then restored from the page
  // account, like any user process).
  virtual std::unique_ptr<NativeProgram> MakeServerProgram(Gpid pid) = 0;

  // A server's primary moved (takeover). The machine updates its directory
  // so future spawns address the new location.
  virtual void OnServerTakeover(Gpid pid, ClusterId new_cluster) = 0;

  // Observation hooks (workloads, tests). Not part of the simulated system.
  virtual void OnProcessExit(Gpid pid, int32_t status) = 0;
  virtual void OnDebugPutc(Gpid pid, char c) = 0;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_CORE_ENV_H_
