// Kernel lifecycle and work-processor scheduling. The message-system pieces
// live in delivery.cc / syscalls.cc / sync.cc / lifecycle.cc / crash.cc.

#include "src/core/kernel.h"

#include <utility>

#include "src/base/log.h"
#include "src/kernel/avm_body.h"

namespace auragen {

Kernel::Kernel(MachineEnv& env, ClusterId id)
    : env_(env),
      id_(id),
      idle_workers_(env.config().work_processors_per_cluster),
      last_heartbeat_(env.config().num_clusters, 0),
      peer_alive_(env.config().num_clusters, true),
      crash_handled_(env.config().num_clusters, false),
      crash_detect_at_(env.config().num_clusters, 0) {
  kernel_pid_ = Gpid::Make(id_, 1);
}

Kernel::~Kernel() = default;

void Kernel::Start() {
  env_.bus().AttachEndpoint(id_, this);
  // Heartbeat polling (§7.10): periodic liveness broadcast + peer check.
  // Clusters offset their first beat by their id so beats interleave rather
  // than stampede — a real system's clocks would not be aligned either.
  env_.engine().Schedule(env_.config().heartbeat_period_us / 4 * (id_ % 4) + 1,
                         [this] { HeartbeatTick(); });
}

void Kernel::HeartbeatTick() {
  if (!alive_) {
    return;
  }
  SimTime now = env_.engine().Now();
  last_heartbeat_[id_] = now;
  ClusterMask others = 0;
  for (ClusterId c = 0; c < env_.config().num_clusters; ++c) {
    if (c != id_) {
      others |= MaskOf(c);
    }
  }
  Msg beat;
  beat.header.kind = MsgKind::kHeartbeat;
  beat.header.src_pid = kernel_pid_;
  // Heartbeats bypass the outgoing queue AND win bus arbitration: the
  // low-level bus interface protocol sends them even while crash handling
  // has transmission of regular messages disabled (§7.10.1), and never
  // behind a data backlog — a saturated bus must not read as a dead
  // cluster, or every overload turns into a false takeover.
  env_.bus().Transmit(id_, others, beat.Encode(), /*urgent=*/true);
  CheckPeers();
  env_.engine().Schedule(env_.config().heartbeat_period_us, [this] { HeartbeatTick(); });
}

void Kernel::CheckPeers() {
  SimTime now = env_.engine().Now();
  if (now < env_.config().heartbeat_timeout_us) {
    return;  // grace period at boot
  }
  for (ClusterId c = 0; c < env_.config().num_clusters; ++c) {
    if (c == id_ || !peer_alive_[c] || crash_handled_[c]) {
      continue;
    }
    if (last_heartbeat_[c] + env_.config().heartbeat_timeout_us < now) {
      ALOG_INFO() << "c" << id_ << ": detected crash of cluster " << c;
      BroadcastCrashNotice(c);
    }
  }
}

Gpid Kernel::AllocPid() { return Gpid::Make(id_, next_pid_counter_++); }

ChannelId Kernel::AllocChannel() {
  // High 16 bits: allocating cluster + 1 (so the file server's allocator,
  // which uses prefix 0xFFFF, can never collide).
  return ChannelId{((static_cast<uint64_t>(id_) + 1) << 48) | next_channel_counter_++};
}

Gpid Kernel::Spawn(SpawnSpec spec) {
  AURAGEN_CHECK(alive_) << "spawn on crashed cluster";
  auto pcb = std::make_unique<Pcb>();
  Pcb& p = *pcb;
  p.pid = spec.fixed_pid.valid() ? spec.fixed_pid : AllocPid();
  p.mode = spec.mode;
  p.family_head = p.pid;
  p.backup_cluster = spec.backup_cluster;
  p.sync_reads_limit = spec.sync_reads_limit;
  p.sync_time_limit_us = spec.sync_time_limit_us;
  p.peripheral = spec.peripheral;
  p.server_backup = spec.server_backup;
  p.primary_cluster = spec.primary_cluster;

  if (spec.native != nullptr) {
    p.is_server = true;
    p.body = std::make_unique<NativeBody>(std::move(spec.native), spec.native_paged_ft);
  } else {
    p.exe = spec.exe;
    p.body = std::make_unique<AvmBody>(spec.exe);
  }

  if (spec.server_backup) {
    // Active backup of a peripheral server (§7.9): alive, never scheduled
    // until takeover. Its routing entries are the channels' backup entries,
    // created by ChanCreate traffic as the primary's channels come up.
    p.state = ProcState::kParkedBackup;
    p.backup_cluster = kNoCluster;
  } else {
    FabricateSpawnChannels(p, spec);
    if (p.is_server) {
      EnsureSelfEntry(p);
    }
    if (p.backup_cluster != kNoCluster && !p.peripheral &&
        env_.config().strategy == FtStrategy::kMessageSystem) {
      // Heads of families and system servers get their backup PCB at
      // creation (§7.7); forked children defer to first sync; peripheral
      // servers use the active-backup scheme instead (§7.9).
      SendBackupSkeleton(p);
      p.backup_exists = true;
    }
    p.state = ProcState::kReady;
  }

  Gpid pid = p.pid;
  procs_[pid] = std::move(pcb);
  env_.metrics().processes_spawned++;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kSpawn, id_, pid.value, 0,
                    static_cast<uint64_t>(p.mode), p.is_server ? 1 : 0);
  }
  if (procs_[pid]->state == ProcState::kReady) {
    MakeReady(*procs_[pid]);
  }
  return pid;
}

void Kernel::MakeReady(Pcb& pcb) {
  if (!alive_ || pcb.state == ProcState::kExited) {
    return;
  }
  pcb.state = ProcState::kReady;
  if (!pcb.dispatched) {
    for (Gpid q : ready_) {
      if (q == pcb.pid) {
        TryDispatch();
        return;
      }
    }
    ready_.push_back(pcb.pid);
  }
  TryDispatch();
}

uint64_t Kernel::WorkBudget(const Pcb&) const { return env_.config().quantum_work; }

SimTime Kernel::WorkTime(uint64_t work) const {
  return static_cast<SimTime>(static_cast<double>(work) * env_.config().us_per_work_unit);
}

void Kernel::TryDispatch() {
  while (idle_workers_ > 0 && !ready_.empty()) {
    Gpid pid = ready_.front();
    ready_.pop_front();
    auto it = procs_.find(pid);
    if (it == procs_.end() || it->second->state != ProcState::kReady) {
      continue;
    }
    Pcb& pcb = *it->second;
    if (pcb.stall_until > env_.engine().Now()) {
      // Still paying for its last sync/checkpoint stall (§8.3): resume when
      // it ends. The worker stays free for other processes meanwhile.
      Gpid stalled = pcb.pid;
      env_.engine().ScheduleAt(pcb.stall_until, [this, stalled] {
        if (!alive_) {
          return;
        }
        if (Pcb* p = FindProcess(stalled); p != nullptr && p->state == ProcState::kReady) {
          MakeReady(*p);
        }
      });
      continue;
    }
    pcb.dispatched = true;
    --idle_workers_;

    // Pending non-ignored signal? Sync, then divert into the handler before
    // the next user instruction (§7.5.2).
    DeliverPendingSignal(pcb);
    if (pcb.state != ProcState::kReady) {
      // Signal machinery blocked the process (cannot happen today, but keep
      // the dispatch loop robust).
      pcb.dispatched = false;
      ++idle_workers_;
      continue;
    }

    if (env_.metrics().last_crash_detected_at != 0 &&
        env_.metrics().last_recovery_first_dispatch_at <
            env_.metrics().last_crash_detected_at) {
      env_.metrics().last_recovery_first_dispatch_at = env_.engine().Now();
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kRecoveryDispatch, id_, pcb.pid.value, 0, 0, 0);
      }
    }

    BodyRun run = pcb.body->Run(WorkBudget(pcb));
    SimTime cost = WorkTime(run.work);
    env_.metrics().work_busy_us += cost;
    pcb.exec_us_total += cost;
    pcb.exec_us_since_sync += cost;
    env_.engine().Schedule(cost, [this, pid, run = std::move(run)]() mutable {
      if (!alive_) {
        return;
      }
      ++idle_workers_;
      auto pit = procs_.find(pid);
      if (pit == procs_.end()) {
        TryDispatch();
        return;
      }
      pit->second->dispatched = false;
      FinishRun(pid, std::move(run));
      TryDispatch();
    });
  }
}

void Kernel::FinishRun(Gpid pid, BodyRun run) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return;
  }
  Pcb& pcb = *it->second;
  if (pcb.state == ProcState::kExited) {
    return;
  }

  switch (run.kind) {
    case BodyRun::Kind::kBudget:
      MaybeTriggerSync(pcb);
      if (pcb.state == ProcState::kReady) {
        MakeReady(pcb);
      }
      break;
    case BodyRun::Kind::kSyscall: {
      DoSyscall(pcb, run.request);
      // The syscall may have been exit: re-resolve before touching the PCB.
      auto again = procs_.find(pid);
      if (again != procs_.end() && again->second->state != ProcState::kExited) {
        MaybeTriggerSync(*again->second);
      }
      break;
    }
    case BodyRun::Kind::kPageFault:
      HandlePageFault(pcb, run.fault_page);
      break;
    case BodyRun::Kind::kExited:
      DestroyProcess(pcb, run.exit_status);
      break;
    case BodyRun::Kind::kFault:
      ALOG_WARN() << "c" << id_ << " " << GpidStr(pcb.pid)
                  << " program fault: " << run.fault_reason;
      DestroyProcess(pcb, -1);
      break;
  }
}

void Kernel::CrashNow() {
  if (!alive_) {
    return;
  }
  ALOG_INFO() << "c" << id_ << ": CRASH";
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kClusterCrash, id_, 0, 0, 0, 0);
  }
  alive_ = false;
  env_.bus().DetachEndpoint(id_);
  // Everything in flight inside this cluster dies with it: queued outgoing
  // messages never reach the bus (the paper's atomicity argument for sync
  // depends on this, §7.8), queued executive work stops, and processes
  // stop running (their scheduled completions check alive_).
  outgoing_.clear();
  exec_queue_.clear();
  ready_.clear();
  ResetFlushPipeline();
}

void Kernel::Restart() {
  AURAGEN_CHECK(!alive_);
  alive_ = true;
  procs_.clear();
  backups_.clear();
  routing_ = RoutingTable();
  ready_.clear();
  outgoing_.clear();
  exec_queue_.clear();
  exec_busy_ = false;
  transmit_enabled_ = true;
  transmit_pumping_ = false;
  pending_crash_handlers_ = 0;
  idle_workers_ = env_.config().work_processors_per_cluster;
  next_arrival_seq_ = 1;
  page_waiters_.clear();
  ResetFlushPipeline();
  for (ClusterId c = 0; c < env_.config().num_clusters; ++c) {
    last_heartbeat_[c] = env_.engine().Now();
  }
  crash_handled_[id_] = false;
  env_.bus().AttachEndpoint(id_, this);
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kClusterRestart, id_, 0, 0, 0, 0);
  }
  env_.engine().Schedule(1, [this] { HeartbeatTick(); });
}

Pcb* Kernel::FindProcess(Gpid pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

const BackupPcb* Kernel::FindBackup(Gpid pid) const {
  auto it = backups_.find(pid);
  return it == backups_.end() ? nullptr : &it->second;
}

size_t Kernel::num_live_processes() const {
  size_t n = 0;
  for (const auto& [pid, pcb] : procs_) {
    if (pcb->state != ProcState::kExited && pcb->state != ProcState::kParkedBackup) {
      ++n;
    }
  }
  return n;
}

bool Kernel::Quiescent() const {
  return ready_.empty() && outgoing_.empty() && exec_queue_.empty() &&
         flush_queue_.empty();
}

}  // namespace auragen
