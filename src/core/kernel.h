// The per-cluster Auros kernel with its embedded message system (§7.2,
// §7.4). This class is the paper's contribution: three-destination message
// delivery (§5.1), read/write count bookkeeping, periodic synchronization
// (§5.2, §7.8), duplicate-send suppression (§5.4), birth notices and lazy
// backup creation (§7.7), and crash handling with rollforward recovery
// (§6, §7.10).
//
// One Kernel instance exists per cluster. Kernels are never synchronized
// with each other (§7.2); everything they exchange rides the intercluster
// bus as encoded Msg payloads. The split between "work processors" (which
// run process bodies and execute system calls) and the "executive
// processor" (which transmits, receives and distributes messages) is
// modeled by separate serialized cost queues, so experiment E1 can measure
// §8.1's claim that backup copies never cost work-processor time.

#ifndef AURAGEN_SRC_CORE_KERNEL_H_
#define AURAGEN_SRC_CORE_KERNEL_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/task.h"
#include "src/core/config.h"
#include "src/core/env.h"
#include "src/core/pcb.h"
#include "src/core/routing.h"
#include "src/core/wire.h"
#include "src/kernel/native_body.h"

namespace auragen {

// Addressing of a server a newly spawned process gets a channel to.
struct ServerAddr {
  Gpid pid;
  ClusterId primary = kNoCluster;
  ClusterId backup = kNoCluster;
  bool valid() const { return pid.valid(); }
};

struct SpawnSpec {
  // Exactly one of exe / native is used.
  Executable exe;
  std::unique_ptr<NativeProgram> native;
  bool native_paged_ft = false;   // system server: page-diff sync FT
  bool peripheral = false;        // explicit-sync FT, device syscalls allowed
  bool server_backup = false;     // spawn as a parked active backup (§7.9)

  BackupMode mode = BackupMode::kQuarterback;
  ClusterId backup_cluster = kNoCluster;
  ClusterId primary_cluster = kNoCluster;  // server_backup: where the primary runs
  Gpid fixed_pid;                 // optional well-known pid (servers)

  uint32_t sync_reads_limit = 0;  // 0: system default
  SimTime sync_time_limit_us = 0;

  // Spawn-time channels (fabricated by the kernel; fd 0 / fd 1 / fd 2).
  ServerAddr file_server;
  ServerAddr proc_server;
  ServerAddr tty_server;
  uint32_t tty_line = 0;
};

class Kernel : public BusEndpoint {
 public:
  Kernel(MachineEnv& env, ClusterId id);
  ~Kernel() override;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Attaches to the bus and starts heartbeat polling.
  void Start();

  // Creates a process in this cluster. Fabricates its spawn channels and —
  // for heads of families and servers — its backup PCB (§7.7).
  Gpid Spawn(SpawnSpec spec);

  // Fail-stop: the whole processing unit goes down (§7.10 initial model).
  void CrashNow();
  bool alive() const { return alive_; }
  ClusterId id() const { return id_; }

  // This kernel's local belief about a peer's liveness, maintained purely by
  // bus traffic (heartbeats set it, crash notices clear it). Backup
  // placement consults the *caller's* belief rather than ground truth: on
  // the parallel machine another cluster's actual state is unreadable from
  // this shard, and the paper's kernels never had privileged knowledge
  // either — they only ever saw the bus.
  bool PeerBelievedAlive(ClusterId c) const {
    return c < peer_alive_.size() && peer_alive_[c];
  }

  // Rejoins a restored cluster (halfback support). State is wiped; peers
  // learn via heartbeats that the cluster is back.
  void Restart();

  // §10 extension — individual-process failure: kills one process as if an
  // isolatable hardware fault destroyed it; its backup (elsewhere) is
  // brought up without taking the whole cluster down.
  void FailProcess(Gpid pid);

  // §7.3 halfback return-to-service: re-creates this peripheral server's
  // active backup at `target` (a freshly restored cluster), shipping the
  // program state, channel entries, and unserviced queues.
  void RecreateServerBackup(Gpid pid, ClusterId target);

  // BusEndpoint.
  void OnFrame(const Frame& frame) override;

  // --- test & harness access ---
  Pcb* FindProcess(Gpid pid);
  const BackupPcb* FindBackup(Gpid pid) const;
  RoutingTable& routing() { return routing_; }
  size_t num_live_processes() const;
  bool Quiescent() const;  // no ready work, empty queues (drained)

  // Registers a callback run when process `pid` exits locally.
  using ExitHook = std::function<void(Gpid, int32_t)>;
  void set_exit_hook(ExitHook hook) { exit_hook_ = std::move(hook); }

  // The pseudo-pid owning kernel-side channels (page/report traffic).
  Gpid kernel_pid() const { return kernel_pid_; }

  // Places a message on a local entry of `owner` identified by binding_tag
  // (self channels: timer fires, terminal hardware input). Local-only: never
  // crosses the bus and is not part of the fault-tolerance envelope.
  void InjectLocalMessage(Gpid owner, uint32_t binding_tag, Bytes payload);

  // Fabricates this kernel's channel to a server (page traffic, §7.6). The
  // kernel side is not backed up — kernels are never synchronized (§7.2) —
  // but the server side is, so requests reach the server's backup queue.
  void CreateKernelChannel(const ServerAddr& server, uint32_t tag);

  // Write-only observability (src/trace contract): never read back, so a
  // traced kernel behaves identically to an untraced one.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  // ---- scheduling (kernel.cc) ----
  void MakeReady(Pcb& pcb);
  void TryDispatch();
  void FinishRun(Gpid pid, BodyRun run);
  uint64_t WorkBudget(const Pcb& pcb) const;
  SimTime WorkTime(uint64_t work) const;

  // ---- executive processor (delivery.cc) ----
  struct OutgoingItem {
    Msg msg;
    ClusterMask targets = 0;
    Gpid held_for;  // fullback destination awaiting kBackupReady (§7.10.1)
  };
  void EnqueueOutgoing(Msg msg, ClusterMask targets);
  void ExecEnqueue(SimTime cost, Task fn);
  void ExecPump();
  void PumpTransmit();
  void DeliverLocal(const MsgView& msg);
  void EnqueueAtEntry(RoutingEntry& entry, const MsgView& msg);
  void WakeReaders(const RoutingEntry& entry);
  void HandleControl(const MsgView& msg);
  ClusterMask TargetsOf(const RoutingEntry& entry) const;

  // ---- system calls (syscalls.cc) ----
  void DoSyscall(Pcb& pcb, const SyscallRequest& req);
  void CompleteAndReady(Pcb& pcb, int64_t rv, Bytes data = {});
  void SysOpen(Pcb& pcb, const SyscallRequest& req);
  void SysRead(Pcb& pcb, const SyscallRequest& req);
  void SysWrite(Pcb& pcb, const SyscallRequest& req, bool wants_answer);
  void SysFork(Pcb& pcb);
  void SysExit(Pcb& pcb, int32_t status);
  void SysBunch(Pcb& pcb, const SyscallRequest& req);
  void SysWhich(Pcb& pcb, const SyscallRequest& req);
  void SysGettime(Pcb& pcb);
  void SysAlarm(Pcb& pcb, uint64_t delay_us);
  void SysClose(Pcb& pcb, Fd fd);
  void DoNativeSyscall(Pcb& pcb, const SyscallRequest& req);

  // Attempts to satisfy a blocking read immediately or parks the process.
  void ReadOrBlock(Pcb& pcb, Fd fd, uint64_t max);
  // Re-checks a blocked read/which after a new arrival (or EOF).
  void TryCompleteBlocked(Pcb& pcb);
  // Parks the process awaiting a server reply, re-checking immediately
  // (rollforward may find the reply already saved).
  void BlockForReply(Pcb& pcb, const RoutingEntry& entry, Fd fd, uint64_t max = ~0ull);
  // Consumes the head message of `entry` for `pcb` (counts the read).
  void ConsumeMessage(Pcb& pcb, RoutingEntry& entry, int64_t max, bool read_any);
  bool EntryReadable(const RoutingEntry& entry) const;
  RoutingEntry* EntryOfFd(Pcb& pcb, Fd fd);
  // Lowest-arrival-seq readable entry of a process (read-any / which).
  RoutingEntry* PickReadable(Pcb& pcb, const std::vector<Fd>& fds, Fd* out_fd);
  RoutingEntry* PickReadableAny(Pcb& pcb);

  // Send path: builds the three-destination message (§5.1) with §5.4
  // suppression for recovered processes. `counted=false` marks sends driven
  // by local device input (terminal lines): they are not regenerated by
  // rollforward, so they must not consume or contribute suppression budget —
  // at-most-once, matching §7.9's lost-input window.
  void SendOnChannel(Pcb& pcb, RoutingEntry& entry, MsgKind kind, Bytes body,
                     bool counted = true);

  // ---- sync (sync.cc) ----
  void MaybeTriggerSync(Pcb& pcb);
  bool CanSyncNow(const Pcb& pcb) const;
  // `force_synchronous` overrides SyncMode::kIncrementalAsync: the record
  // and every page go on the outgoing queue before this returns. Crash
  // paths need it — replacement-backup creation must follow its sync record
  // immediately (§7.10.1), with no drain in between.
  void ForceSync(Pcb& pcb, bool signal_forced, bool force_synchronous = false);
  void ApplySyncAtBackup(const SyncRecord& record);
  // Adaptive trigger (SyncPolicy.adaptive): retune the process's effective
  // time limit from the dirty-page count the flush just observed.
  void RetuneSyncTrigger(Pcb& pcb, size_t flushed_pages);
  // Effective sync trigger limits for `pcb` (per-process override, else
  // system default; time limit further moved by the adaptive trigger).
  uint32_t SyncReadsLimit(const Pcb& pcb) const;
  SimTime SyncTimeLimit(const Pcb& pcb) const;

  // ---- async flush drain (sync.cc) ----
  // A copy-on-write flush parked on the per-kernel drain queue (§8.3: "the
  // primary continues … with the sync message on the outgoing queue"). The
  // executive enqueues the snapshots batch by batch and finishes with the
  // sync record, so per-process FIFO ordering — pages, then record, after
  // every message the record's counters cover — is preserved.
  struct FlushJob {
    Gpid pid;
    SimTime started_at = 0;
    std::vector<std::pair<PageNum, Bytes>> pages;
    size_t next_page = 0;
    SyncRecord record;
    bool cancelled = false;  // process exited mid-drain
  };
  // Enqueues the kSync multicast (backup cluster + page shard + its backup).
  void SendSyncRecord(const SyncRecord& record, RoutingEntry* page_entry);
  void StartFlushDrain();
  void ScheduleFlushStep();
  void FlushStep(uint64_t epoch, uint32_t batch, SimTime cost);
  void CompleteFlushJob(FlushJob& job);
  void CancelFlushJobs(Gpid pid);
  void ResetFlushPipeline();  // crash/restart: in-flight flushes die
  // Checkpoint baselines (§2) replace ForceSync when configured.
  void ForceCheckpoint(Pcb& pcb);
  void ApplyCheckpointAtBackup(const MsgView& msg);
  // Serialized KernelContext of `pcb` at a quiescent point (sync, checkpoint
  // and replacement-backup creation all ship exactly this).
  Bytes CaptureKernelContext(Pcb& pcb);
  // Closed-channel record seen by a backup (sync or checkpoint): drop the
  // saved entry and the fd binding, guarding fd == kBadFd.
  void DropClosedBackupChannel(BackupPcb& b, ChannelId channel, Gpid pid, Fd fd);

  // ---- paging (sync.cc) ----
  void HandlePageFault(Pcb& pcb, PageNum page);
  void HandlePageReply(const PageReplyBody& reply);
  void ReissuePageRequests();
  // The kernel's own channel to a page-server shard (fabricated at boot,
  // one per shard). A process's pages always go to the shard keyed by its
  // origin cluster, which never changes — so the backup account is found
  // at the same shard after any number of takeovers.
  RoutingEntry* KernelPageEntry(uint32_t shard = 0);
  RoutingEntry* KernelPageEntryFor(Gpid pid);
  uint32_t PageShardOf(Gpid pid) const;
  // Sends on a kernel-owned channel (no Pcb, no suppression — kernels are
  // not backed up, §7.2).
  void SendKernelChannel(RoutingEntry& entry, MsgKind kind, Bytes body);

  // ---- signals (syscalls.cc) ----
  void DeliverPendingSignal(Pcb& pcb);
  RoutingEntry* SignalEntry(Gpid pid, bool backup_entry);

  // ---- fork/exit/backup lifecycle (lifecycle.cc) ----
  Gpid AllocPid();
  ChannelId AllocChannel();
  void FabricateSpawnChannels(Pcb& pcb, const SpawnSpec& spec);
  // Fabricates one process<->server channel: local primary entry, backup
  // entry at the owner's backup cluster, and both server-side entries.
  // `channel` is caller-allocated so fork replay can reuse recorded ids.
  void CreateChannelPair(Pcb& pcb, Fd fd, ChannelId channel, const ServerAddr& server,
                         PeerKind kind, uint32_t binding_tag);
  void SendBackupSkeleton(const Pcb& pcb);
  // Native servers get a local self channel (timers, device input).
  void EnsureSelfEntry(Pcb& pcb);
  void DestroyProcess(Pcb& pcb, int32_t status);
  void HandleBirthNotice(const BirthNotice& notice);
  void HandleExitNotice(Gpid pid);

  // ---- crash handling & recovery (crash.cc) ----
  void HeartbeatTick();
  void CheckPeers();
  void BroadcastCrashNotice(ClusterId dead);
  void HandleCrashNotice(ClusterId dead);
  void RunCrashHandling(ClusterId dead);
  void PatchEntryAfterCrash(RoutingEntry& entry, ClusterId dead);
  void TakeOver(BackupPcb backup);
  void TakeOverParkedServer(Pcb& pcb);
  void CreateReplacementBackup(Pcb& pcb, const Bytes& sync_context);
  // A live primary whose backup cluster died: place, sync, and announce a
  // fresh backup (deferred via Pcb::needs_rebackup when the process is not
  // at a sync-safe point).
  void RebuildLostBackup(Pcb& pcb);
  // kBackupReady broadcast: `pid`'s backup now lives at `cluster` (or
  // nowhere, for kNoCluster — peers unfreeze without a save destination).
  void BroadcastBackupLocation(Gpid pid, ClusterId cluster);
  // Clusters a broadcast from this kernel should reach: self plus every
  // peer not yet known dead (§7.10.1 — never address handled-dead clusters).
  ClusterMask LiveBroadcastMask() const;
  void HandleBackupCreate(const BackupCreateBody& body, ClusterId from);
  void HandleBackupReady(Gpid pid, ClusterId new_backup, ClusterId primary_home);
  void HandleServerSync(const MsgView& msg);
  void HandleProcCrash(Gpid pid, ClusterId at);

  MachineEnv& env_;
  const ClusterId id_;
  bool alive_ = true;

  RoutingTable routing_;
  std::map<Gpid, std::unique_ptr<Pcb>> procs_;
  std::map<Gpid, BackupPcb> backups_;

  // Scheduling.
  std::deque<Gpid> ready_;
  uint32_t idle_workers_;

  // Executive processor: serialized service queue + FIFO outgoing queue.
  struct ExecItem {
    SimTime cost;
    Task fn;
  };
  std::deque<ExecItem> exec_queue_;
  bool exec_busy_ = false;
  Task exec_running_;  // the in-flight exec task (see ExecPump)
  std::deque<OutgoingItem> outgoing_;
  bool transmit_enabled_ = true;
  bool transmit_pumping_ = false;
  // Crash handlers scheduled but not yet run (§7.10.1). Transmission stays
  // disabled until every pending handler has drained; re-enabling after the
  // first of two overlapping crashes would let messages out with routing
  // state that still names the second dead cluster.
  uint32_t pending_crash_handlers_ = 0;

  // Arrival sequence numbers (§7.5.1: assigned on arrival at a cluster).
  uint64_t next_arrival_seq_ = 1;

  // Id allocation.
  uint64_t next_pid_counter_ = 16;
  uint64_t next_channel_counter_ = 1;
  Gpid kernel_pid_;

  // Liveness (§7.10): last heartbeat seen per cluster.
  std::vector<SimTime> last_heartbeat_;
  std::vector<bool> peer_alive_;
  std::vector<bool> crash_handled_;
  // When this kernel received the crash notice, per dead cluster (feeds the
  // rollforward_replay_us aggregate and kCrashHandled trace events).
  std::vector<SimTime> crash_detect_at_;

  Tracer* tracer_ = nullptr;

  // Outstanding page requests: cookie -> waiting pid.
  std::map<uint64_t, Gpid> page_waiters_;
  uint64_t next_cookie_ = 1;

  // Async flush drain (SyncMode::kIncrementalAsync). Jobs drain in FIFO
  // order on the executive; the epoch invalidates steps scheduled before a
  // crash or restart wiped the queue.
  std::deque<FlushJob> flush_queue_;
  bool flush_draining_ = false;
  uint64_t flush_epoch_ = 0;

  // Birth notices by parent (§7.7), kept independent of BackupPcb existence:
  // a parent re-created by its own parent's replayed fork still needs them.
  std::map<Gpid, std::vector<BirthNotice>> birth_store_;

  ExitHook exit_hook_;

  friend class KernelTestPeer;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_CORE_KERNEL_H_
