// Process lifecycle: spawn-time channel fabrication, fork with birth
// notices (§7.7), exit, and the backup-PCB skeletons for heads of families.

#include "src/core/kernel.h"

#include "src/base/log.h"
#include "src/kernel/avm_body.h"
#include "src/servers/protocol.h"

namespace auragen {

namespace {

ChanCreate MakeChanCreate(ChannelId channel, Gpid owner, bool backup_entry, Fd fd,
                          Gpid peer_pid, ClusterId peer_primary, ClusterId peer_backup,
                          ClusterId own_backup, PeerKind kind, BackupMode peer_mode,
                          uint32_t tag) {
  ChanCreate c;
  c.channel = channel;
  c.owner = owner;
  c.backup_entry = backup_entry;
  c.fd = fd;
  c.peer_pid = peer_pid;
  c.peer_primary_cluster = peer_primary;
  c.peer_backup_cluster = peer_backup;
  c.own_backup_cluster = own_backup;
  c.peer_kind = static_cast<uint8_t>(kind);
  c.peer_mode = static_cast<uint8_t>(peer_mode);
  c.binding_tag = tag;
  return c;
}

}  // namespace

void Kernel::CreateChannelPair(Pcb& pcb, Fd fd, ChannelId channel, const ServerAddr& server,
                               PeerKind kind, uint32_t binding_tag) {
  // Local primary entry for the process end.
  RoutingEntry& e = routing_.Create(channel, pcb.pid, /*backup=*/false);
  e.fd = fd;
  e.peer_pid = server.pid;
  e.peer_primary_cluster = server.primary;
  e.peer_backup_cluster = server.backup;
  e.own_backup_cluster = pcb.backup_cluster;
  e.peer_kind = static_cast<uint8_t>(kind);
  e.peer_mode = static_cast<uint8_t>(BackupMode::kHalfback);  // servers (§7.3)
  e.binding_tag = binding_tag;

  if (fd != kBadFd) {
    pcb.fds[fd] = FdBinding{channel, kind};
  } else if (binding_tag == kBindSignalChannel) {
    pcb.signal_channel = channel;
  }

  auto send_create = [&](ClusterId to, const ChanCreate& c) {
    if (to == kNoCluster) {
      return;
    }
    Msg msg;
    msg.header.kind = MsgKind::kChanCreate;
    msg.header.src_pid = kernel_pid_;
    msg.header.dst_pid = c.owner;
    msg.body = c.Encode();
    if (to == id_) {
      // Local fabrication (server in this very cluster): apply directly so
      // ordering against locally-queued work stays trivial.
      HandleControl(MsgView::FromOwned(std::move(msg)));
      return;
    }
    EnqueueOutgoing(std::move(msg), MaskOf(to));
  };

  // Backup entry for the process end at its backup cluster.
  send_create(pcb.backup_cluster,
              MakeChanCreate(channel, pcb.pid, /*backup=*/true, fd, server.pid,
                             server.primary, server.backup, pcb.backup_cluster, kind,
                             BackupMode::kHalfback, binding_tag));
  // Server-side primary + backup entries.
  send_create(server.primary,
              MakeChanCreate(channel, server.pid, /*backup=*/false, kBadFd, pcb.pid, id_,
                             pcb.backup_cluster, server.backup, PeerKind::kUserPeer,
                             pcb.mode, binding_tag));
  send_create(server.backup,
              MakeChanCreate(channel, server.pid, /*backup=*/true, kBadFd, pcb.pid, id_,
                             pcb.backup_cluster, server.backup, PeerKind::kUserPeer,
                             pcb.mode, binding_tag));

  // Terminal sessions bind their line at creation so input can arrive
  // before the session's first output. The bind message is kernel-
  // originated (src = kernel pseudo-pid), so it perturbs no §5.4 write
  // count, and it rides the normal backed-up channel, so the tty server's
  // saved queue replays it on takeover.
  if (binding_tag >= kBindTtyLineBase && binding_tag < kBindTtyLineBase + 0x1000) {
    Msg bind;
    bind.header.kind = MsgKind::kUser;
    bind.header.src_pid = pcb.pid;
    bind.header.dst_pid = server.pid;
    bind.header.channel = channel;
    bind.header.dst_primary_cluster = server.primary;
    bind.header.dst_backup_cluster = server.backup;
    bind.header.src_backup_cluster = kNoCluster;
    bind.body = EncodeTagged(ReqTag::kTtyBind);
    ClusterMask targets = MaskOf(server.primary);
    if (server.backup != kNoCluster) {
      targets |= MaskOf(server.backup);
    }
    EnqueueOutgoing(std::move(bind), targets);
  }
}

void Kernel::FabricateSpawnChannels(Pcb& pcb, const SpawnSpec& spec) {
  if (spec.file_server.valid()) {
    CreateChannelPair(pcb, 0, AllocChannel(), spec.file_server, PeerKind::kServerControl,
                      kBindFsChannel);
  }
  if (spec.proc_server.valid()) {
    CreateChannelPair(pcb, 1, AllocChannel(), spec.proc_server, PeerKind::kServerControl,
                      kBindProcChannel);
    // The implicit signal channel (§7.5.2); all signals originate at the
    // process server in this implementation.
    CreateChannelPair(pcb, kBadFd, AllocChannel(), spec.proc_server,
                      PeerKind::kServerControl, kBindSignalChannel);
  }
  if (spec.tty_server.valid()) {
    CreateChannelPair(pcb, 2, AllocChannel(), spec.tty_server, PeerKind::kServerControl,
                      kBindTtyLineBase + spec.tty_line);
  }
  pcb.next_fd = 3;
}

void Kernel::CreateKernelChannel(const ServerAddr& server, uint32_t tag) {
  ChannelId channel = AllocChannel();
  RoutingEntry& e = routing_.Create(channel, kernel_pid_, /*backup=*/false);
  e.peer_pid = server.pid;
  e.peer_primary_cluster = server.primary;
  e.peer_backup_cluster = server.backup;
  e.own_backup_cluster = kNoCluster;
  e.peer_mode = static_cast<uint8_t>(BackupMode::kHalfback);
  e.binding_tag = tag;

  for (bool backup_entry : {false, true}) {
    ClusterId to = backup_entry ? server.backup : server.primary;
    if (to == kNoCluster) {
      continue;
    }
    Msg msg;
    msg.header.kind = MsgKind::kChanCreate;
    msg.header.src_pid = kernel_pid_;
    msg.header.dst_pid = server.pid;
    msg.body = MakeChanCreate(channel, server.pid, backup_entry, kBadFd, kernel_pid_, id_,
                              kNoCluster, server.backup, PeerKind::kUserPeer,
                              BackupMode::kQuarterback, tag)
                   .Encode();
    if (to == id_) {
      HandleControl(MsgView::FromOwned(std::move(msg)));
    } else {
      EnqueueOutgoing(std::move(msg), MaskOf(to));
    }
  }
}

void Kernel::EnsureSelfEntry(Pcb& pcb) {
  for (RoutingEntry* e : routing_.EntriesOf(pcb.pid, /*backup=*/false)) {
    if (e->binding_tag == kBindSelfChannel) {
      return;
    }
  }
  RoutingEntry& e = routing_.Create(AllocChannel(), pcb.pid, /*backup=*/false);
  e.binding_tag = kBindSelfChannel;
  e.own_backup_cluster = kNoCluster;
}

void Kernel::InjectLocalMessage(Gpid owner, uint32_t binding_tag, Bytes payload) {
  if (!alive_) {
    return;
  }
  for (RoutingEntry* e : routing_.EntriesOf(owner, /*backup=*/false)) {
    if (e->binding_tag != binding_tag) {
      continue;
    }
    Msg msg;
    msg.header.kind = MsgKind::kUser;
    msg.header.src_pid = kernel_pid_;
    msg.header.dst_pid = owner;
    msg.header.channel = e->channel;
    msg.body = std::move(payload);
    EnqueueAtEntry(*e, MsgView::FromOwned(std::move(msg)));
    WakeReaders(*e);
    return;
  }
}

void Kernel::SendBackupSkeleton(const Pcb& pcb) {
  BackupCreateBody body;
  body.pid = pcb.pid;
  body.mode = pcb.mode;
  body.parent = pcb.parent;
  body.family_head = pcb.family_head;
  body.primary_cluster = id_;
  body.has_sync = false;
  body.is_server = pcb.is_server;
  if (!pcb.is_server) {
    ByteWriter w;
    pcb.exe.Serialize(w);
    body.exe = w.Take();
  }
  Msg msg;
  msg.header.kind = MsgKind::kBackupCreate;
  msg.header.src_pid = kernel_pid_;
  msg.header.dst_pid = pcb.pid;
  msg.body = body.Encode();
  env_.metrics().backup_create_bytes += msg.body.size();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kBackupShip, id_, pcb.pid.value, 0, 2,
                    msg.body.size());
  }
  EnqueueOutgoing(std::move(msg), MaskOf(pcb.backup_cluster));
}

// --------------------------------------------------------------------- fork

void Kernel::SysFork(Pcb& parent) {
  auto* avm = dynamic_cast<AvmBody*>(parent.body.get());
  if (avm == nullptr) {
    CompleteAndReady(parent, -static_cast<int64_t>(Errc::kNotSupported));
    return;
  }
  parent.fork_seq++;

  auto pid_rv = [](Gpid pid) {
    return static_cast<int64_t>((pid.origin_cluster() << 24) |
                                static_cast<uint32_t>(pid.value & 0xffffff));
  };

  // Rollforward (§7.10.2): "On fork, the process checks whether it has any
  // birth notices. If it does, it either avoids the fork altogether if the
  // child process already exists, or uses information in the birth notice
  // to fork a child with the same identity as its primary."
  const BirthNotice* notice = nullptr;
  for (const BirthNotice& n : parent.pending_birth_notices) {
    if (n.fork_seq == parent.fork_seq) {
      notice = &n;
      break;
    }
  }
  Gpid child_pid;
  std::vector<ChannelId> chan_ids;
  if (notice != nullptr) {
    child_pid = notice->child;
    if (procs_.count(child_pid) != 0 || backups_.count(child_pid) != 0) {
      // The child recovered (or is recovering) on its own: skip the fork.
      CompleteAndReady(parent, pid_rv(child_pid));
      return;
    }
    for (const Bytes& blob : notice->chan_creates) {
      chan_ids.push_back(ChanCreate::Decode(blob).channel);
    }
  } else {
    child_pid = AllocPid();
    chan_ids = {AllocChannel(), AllocChannel(), AllocChannel()};
  }
  while (chan_ids.size() < 3) {
    chan_ids.push_back(AllocChannel());
  }

  auto child = std::make_unique<Pcb>();
  Pcb& c = *child;
  c.pid = child_pid;
  c.mode = parent.mode;
  c.parent = parent.pid;
  c.family_head = parent.family_head;
  c.backup_cluster = parent.backup_cluster;  // family co-location (§7.7)
  c.sync_reads_limit = parent.sync_reads_limit;
  c.sync_time_limit_us = parent.sync_time_limit_us;
  c.exe = parent.exe;
  c.body = avm->CloneForFork(static_cast<uint32_t>(pid_rv(child_pid)));
  c.state = ProcState::kReady;

  // Fork-time channels: fresh fs/proc/signal channels (the child does not
  // share the parent's queues; see DESIGN.md on fd inheritance).
  ServerAddr fs;
  ServerAddr ps;
  if (RoutingEntry* e = EntryOfFd(parent, 0); e != nullptr) {
    fs = ServerAddr{e->peer_pid, e->peer_primary_cluster, e->peer_backup_cluster};
  }
  if (RoutingEntry* e = EntryOfFd(parent, 1); e != nullptr) {
    ps = ServerAddr{e->peer_pid, e->peer_primary_cluster, e->peer_backup_cluster};
  }
  std::vector<Bytes> chan_creates;
  if (fs.valid()) {
    CreateChannelPair(c, 0, chan_ids[0], fs, PeerKind::kServerControl, kBindFsChannel);
    chan_creates.push_back(MakeChanCreate(chan_ids[0], c.pid, true, 0, fs.pid, fs.primary,
                                          fs.backup, c.backup_cluster,
                                          PeerKind::kServerControl, BackupMode::kHalfback,
                                          kBindNone)
                               .Encode());
  }
  if (ps.valid()) {
    CreateChannelPair(c, 1, chan_ids[1], ps, PeerKind::kServerControl, kBindProcChannel);
    chan_creates.push_back(MakeChanCreate(chan_ids[1], c.pid, true, 1, ps.pid, ps.primary,
                                          ps.backup, c.backup_cluster,
                                          PeerKind::kServerControl, BackupMode::kHalfback,
                                          kBindNone)
                               .Encode());
    CreateChannelPair(c, kBadFd, chan_ids[2], ps, PeerKind::kServerControl,
                      kBindSignalChannel);
    chan_creates.push_back(MakeChanCreate(chan_ids[2], c.pid, true, kBadFd, ps.pid,
                                          ps.primary, ps.backup, c.backup_cluster,
                                          PeerKind::kServerControl, BackupMode::kHalfback,
                                          kBindSignalChannel)
                               .Encode());
  }
  c.next_fd = 3;

  // The child may itself be a replayed subtree: hand it any notices that
  // already arrived for it (same cluster — family backups are co-located).
  if (auto it = birth_store_.find(child_pid); it != birth_store_.end()) {
    c.pending_birth_notices = it->second;
  }

  // Birth notice to the family's backup cluster (§7.7): backup routing
  // entries must exist before messages to the child start arriving there;
  // the notice also records the identity for fork replay. Bus FIFO puts the
  // ChanCreates ahead of any message the child sends.
  if (c.backup_cluster != kNoCluster &&
      env_.config().strategy == FtStrategy::kMessageSystem) {
    BirthNotice notice_out;
    notice_out.parent = parent.pid;
    notice_out.child = child_pid;
    notice_out.fork_seq = parent.fork_seq;
    notice_out.mode = static_cast<uint8_t>(c.mode);
    notice_out.family_head = c.family_head;
    notice_out.chan_creates = chan_creates;
    Msg msg;
    msg.header.kind = MsgKind::kBirthNotice;
    msg.header.src_pid = parent.pid;
    msg.header.dst_pid = child_pid;
    msg.body = notice_out.Encode();
    env_.metrics().birth_notices++;
    EnqueueOutgoing(std::move(msg), MaskOf(c.backup_cluster));
  }

  env_.metrics().processes_spawned++;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kFork, id_, child_pid.value, 0,
                    parent.fork_seq, notice != nullptr ? 1 : 0);
  }
  procs_[child_pid] = std::move(child);
  MakeReady(*procs_[child_pid]);
  CompleteAndReady(parent, pid_rv(child_pid));
}

void Kernel::HandleBirthNotice(const BirthNotice& notice) {
  // Create the fork-time backup routing entries (§7.7: "they must be there
  // to receive backup copies of messages sent to the primary").
  for (const Bytes& blob : notice.chan_creates) {
    Msg msg;
    msg.header.kind = MsgKind::kChanCreate;
    msg.body = blob;
    HandleControl(MsgView::FromOwned(std::move(msg)));
  }
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kBirthNotice, id_, notice.child.value, 0,
                    notice.fork_seq, 0);
  }
  // Stash for fork replay, deduplicating (a recovered parent resends).
  std::vector<BirthNotice>& store = birth_store_[notice.parent];
  for (const BirthNotice& n : store) {
    if (n.fork_seq == notice.fork_seq) {
      return;
    }
  }
  store.push_back(notice);
  // Also attach to a live recovering parent, if one exists here already.
  if (Pcb* parent = FindProcess(notice.parent); parent != nullptr) {
    for (const BirthNotice& n : parent->pending_birth_notices) {
      if (n.fork_seq == notice.fork_seq) {
        return;
      }
    }
    parent->pending_birth_notices.push_back(notice);
  }
}

// --------------------------------------------------------------------- exit

void Kernel::SysExit(Pcb& pcb, int32_t status) {
  // Body completion is irrelevant now, but keep the latch consistent.
  pcb.body->CompleteSyscall(SyscallResult{});
  DestroyProcess(pcb, status);
}

void Kernel::DestroyProcess(Pcb& pcb, int32_t status) {
  Gpid pid = pcb.pid;
  pcb.state = ProcState::kExited;
  if (pcb.flush_in_flight) {
    // A draining flush must not deliver its record after the exit notice:
    // the backup would be dismantled and then resurrected by the record.
    CancelFlushJobs(pid);
    pcb.flush_in_flight = false;
    pcb.flush_window_writes.clear();
  }
  if (pcb.needs_rebackup) {
    // Exiting before the lost backup could be rebuilt: peers froze this
    // process's channels at crash handling and must not wait forever.
    pcb.needs_rebackup = false;
    BroadcastBackupLocation(pid, kNoCluster);
  }

  // Close every open channel so peers see EOF (readers wake via kClose).
  for (RoutingEntry* e : routing_.EntriesOf(pid, /*backup=*/false)) {
    if (!e->closed_local && !e->closed_by_peer && e->peer_pid.valid() &&
        e->binding_tag != kBindSignalChannel) {
      SendOnChannel(pcb, *e, MsgKind::kClose, {});
    }
  }
  routing_.RemoveAllOf(pid, /*backup=*/false);

  // Dismantle the backup (§7.7's lifecycle ends here for normal exits).
  if (pcb.backup_cluster != kNoCluster && pcb.backup_exists) {
    Msg msg;
    msg.header.kind = MsgKind::kExitNotice;
    msg.header.src_pid = kernel_pid_;
    msg.header.dst_pid = pid;
    EnqueueOutgoing(std::move(msg), MaskOf(pcb.backup_cluster));
  }

  env_.metrics().processes_exited++;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kExit, id_, pid.value, 0,
                    static_cast<uint64_t>(static_cast<int64_t>(status)), 0);
  }
  env_.OnProcessExit(pid, status);
  if (exit_hook_) {
    exit_hook_(pid, status);
  }
  birth_store_.erase(pid);
  procs_.erase(pid);
}

void Kernel::HandleExitNotice(Gpid pid) {
  backups_.erase(pid);
  routing_.RemoveAllOf(pid, /*backup=*/true);
  birth_store_.erase(pid);
}

}  // namespace auragen
