// Counters the benchmarks read. One Metrics object per machine; kernels and
// servers increment it as they go. Everything here is measurement-only —
// no simulated component ever reads a metric back, so metrics can never
// perturb determinism.

#ifndef AURAGEN_SRC_CORE_METRICS_H_
#define AURAGEN_SRC_CORE_METRICS_H_

#include <cstdint>

#include "src/base/types.h"

namespace auragen {

struct Metrics {
  // Message system.
  uint64_t messages_sent = 0;          // logical sends (writes entering the system)
  uint64_t deliveries_primary = 0;     // enqueues at primary destinations
  uint64_t deliveries_backup = 0;      // enqueues at destination backups
  uint64_t deliveries_count_only = 0;  // sender's-backup count bumps
  uint64_t sends_suppressed = 0;       // §5.4 duplicate suppression hits
  uint64_t bytes_sent = 0;

  // Sync machinery (§7.8).
  uint64_t syncs = 0;
  uint64_t sync_pages_shipped = 0;
  uint64_t sync_bytes_shipped = 0;
  SimTime sync_primary_stall_us = 0;   // time the primary was held up (§8.3)
  // The stall split (the pipeline's cost model): record construction vs
  // synchronous page enqueueing; plus drain work done on the executive
  // while the primary kept running (incremental+async only).
  SimTime sync_build_stall_us = 0;     // record construction (sync_build_us)
  SimTime sync_enqueue_stall_us = 0;   // inline page enqueues (primary held)
  SimTime sync_drain_async_us = 0;     // executive drain steps (primary runs)
  SimTime sync_flush_overlap_us = 0;   // flush-begin to record-on-queue time
  uint64_t sync_flushes_async = 0;     // flushes drained asynchronously
  uint64_t syncs_deferred_drain = 0;   // triggers deferred: flush in flight
  uint64_t sync_adaptive_tighten = 0;  // adaptive trigger halved the limit
  uint64_t sync_adaptive_loosen = 0;   // adaptive trigger doubled the limit
  uint64_t forced_signal_syncs = 0;    // syncs forced by signal delivery (§8.3)
  uint64_t backup_msgs_trimmed = 0;    // saved messages discarded by sync

  // Backup lifecycle (§7.7, §8.2).
  uint64_t backups_created = 0;
  uint64_t birth_notices = 0;
  uint64_t processes_spawned = 0;
  uint64_t processes_exited = 0;
  uint64_t backup_create_bytes = 0;    // state shipped to create backups

  // Checkpoint baselines (src/baselines).
  uint64_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  SimTime checkpoint_stall_us = 0;

  // Paging (§7.6).
  uint64_t page_writes = 0;
  uint64_t page_faults_served = 0;
  uint64_t page_fault_zero_fills = 0;

  // Recovery (§7.10).
  uint64_t crashes_handled = 0;
  uint64_t takeovers = 0;
  uint64_t rollforward_msgs_replayed = 0;
  SimTime last_crash_detected_at = 0;
  SimTime last_recovery_first_dispatch_at = 0;  // first unaffected process back on CPU
  SimTime last_recovery_complete_at = 0;        // all takeovers runnable
  // Crash-notice receipt to takeovers-runnable, summed over (survivor,
  // crash) pairs — the rollforward-replay cost a survivor pays per crash.
  SimTime rollforward_replay_us = 0;

  // Delivery latency: bus accept at the sender to frame arrival at each
  // receiving executive processor (heartbeats excluded).
  SimTime delivery_latency_us_total = 0;
  uint64_t delivery_latency_samples = 0;

  // Processor accounting (E1/E9: §8.1 claims backup copies cost the
  // executive, never the work processors).
  SimTime work_busy_us = 0;
  SimTime exec_busy_us = 0;

  // Servers.
  uint64_t server_syncs = 0;
  uint64_t server_sync_bytes = 0;
  uint64_t fileserver_disk_bytes = 0;  // state made available via disk (§7.9)

  void Reset() { *this = Metrics{}; }

  // Folds another cluster's metrics into this one. Counters and durations
  // add; the machine-wide last_* stamps take the latest across clusters.
  // The parallel machine keeps one Metrics per cluster shard (so kernels
  // never write a shared object across shards) and aggregates on read.
  void Accumulate(const Metrics& o) {
    messages_sent += o.messages_sent;
    deliveries_primary += o.deliveries_primary;
    deliveries_backup += o.deliveries_backup;
    deliveries_count_only += o.deliveries_count_only;
    sends_suppressed += o.sends_suppressed;
    bytes_sent += o.bytes_sent;
    syncs += o.syncs;
    sync_pages_shipped += o.sync_pages_shipped;
    sync_bytes_shipped += o.sync_bytes_shipped;
    sync_primary_stall_us += o.sync_primary_stall_us;
    sync_build_stall_us += o.sync_build_stall_us;
    sync_enqueue_stall_us += o.sync_enqueue_stall_us;
    sync_drain_async_us += o.sync_drain_async_us;
    sync_flush_overlap_us += o.sync_flush_overlap_us;
    sync_flushes_async += o.sync_flushes_async;
    syncs_deferred_drain += o.syncs_deferred_drain;
    sync_adaptive_tighten += o.sync_adaptive_tighten;
    sync_adaptive_loosen += o.sync_adaptive_loosen;
    forced_signal_syncs += o.forced_signal_syncs;
    backup_msgs_trimmed += o.backup_msgs_trimmed;
    backups_created += o.backups_created;
    birth_notices += o.birth_notices;
    processes_spawned += o.processes_spawned;
    processes_exited += o.processes_exited;
    backup_create_bytes += o.backup_create_bytes;
    checkpoints += o.checkpoints;
    checkpoint_bytes += o.checkpoint_bytes;
    checkpoint_stall_us += o.checkpoint_stall_us;
    page_writes += o.page_writes;
    page_faults_served += o.page_faults_served;
    page_fault_zero_fills += o.page_fault_zero_fills;
    crashes_handled += o.crashes_handled;
    takeovers += o.takeovers;
    rollforward_msgs_replayed += o.rollforward_msgs_replayed;
    if (o.last_crash_detected_at > last_crash_detected_at) {
      last_crash_detected_at = o.last_crash_detected_at;
    }
    if (o.last_recovery_first_dispatch_at > last_recovery_first_dispatch_at) {
      last_recovery_first_dispatch_at = o.last_recovery_first_dispatch_at;
    }
    if (o.last_recovery_complete_at > last_recovery_complete_at) {
      last_recovery_complete_at = o.last_recovery_complete_at;
    }
    rollforward_replay_us += o.rollforward_replay_us;
    delivery_latency_us_total += o.delivery_latency_us_total;
    delivery_latency_samples += o.delivery_latency_samples;
    work_busy_us += o.work_busy_us;
    exec_busy_us += o.exec_busy_us;
    server_syncs += o.server_syncs;
    server_sync_bytes += o.server_sync_bytes;
    fileserver_disk_bytes += o.fileserver_disk_bytes;
  }
};

}  // namespace auragen

#endif  // AURAGEN_SRC_CORE_METRICS_H_
