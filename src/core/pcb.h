// Process control blocks: live processes and passive backups (§7.7).
//
// A live Pcb drives a Body on the work processors. A BackupPcb is the
// passive shadow §7.7 describes — "a process control block ... less the
// kernel stack, and a backup page account kept by the page server" — plus
// the birth notices and saved channel bindings rollforward needs. Peripheral
// servers (§7.9) instead run an *active* backup: a live Pcb whose
// `server_backup` flag keeps it off the scheduler until takeover.

#ifndef AURAGEN_SRC_CORE_PCB_H_
#define AURAGEN_SRC_CORE_PCB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/types.h"
#include "src/avm/program.h"
#include "src/core/wire.h"
#include "src/kernel/body.h"

namespace auragen {

enum class ProcState : uint8_t {
  kReady,         // runnable (queued or on a work processor)
  kBlockedRead,   // awaiting a message on one channel
  kBlockedWhich,  // awaiting a message on any channel of a bunch group
  kBlockedPage,   // awaiting a page server reply (recovery paging, §7.10.2)
  kBlockedDevice, // peripheral server awaiting simulated device completion
  kParkedBackup,  // active server backup: alive, never scheduled (§7.9)
  kExited,
};

const char* ProcStateName(ProcState s);

inline const char* ProcStateName(ProcState s) {
  switch (s) {
    case ProcState::kReady: return "ready";
    case ProcState::kBlockedRead: return "blocked-read";
    case ProcState::kBlockedWhich: return "blocked-which";
    case ProcState::kBlockedPage: return "blocked-page";
    case ProcState::kBlockedDevice: return "blocked-device";
    case ProcState::kParkedBackup: return "parked-backup";
    case ProcState::kExited: return "exited";
  }
  return "?";
}

// Kind of peer on a channel (§7.4.1 status info: "the type of process at
// the other end").
//   kUserPeer      — another user process; read pops queued messages.
//   kServerControl — a server control channel (fs fd0, proc fd1, tty fd2);
//                    read pops queued messages (replies, pushed input).
//   kServerFile    — a per-file channel to the file server: read(fd)
//                    auto-sends a READ request and awaits the data reply.
enum class PeerKind : uint8_t { kUserPeer = 0, kServerControl = 1, kServerFile = 2 };

struct FdBinding {
  ChannelId channel;
  PeerKind peer = PeerKind::kUserPeer;
};

struct Pcb {
  Gpid pid;
  BackupMode mode = BackupMode::kQuarterback;
  Gpid parent;
  Gpid family_head;                 // §7.7: family backups share one cluster
  ClusterId backup_cluster = kNoCluster;  // kNoCluster: running unprotected
  bool backup_exists = false;       // backup PCB materialized (first sync or spawn)
  bool needs_rebackup = false;      // backup cluster died; re-create at the
                                    // next sync-safe point (crash.cc)
  SimTime rebackup_not_before = 0;  // earliest instant every live peer has
                                    // frozen this process's channels
  bool rebuild_capture = false;     // re-backup capture in flight: CanSyncNow
                                    // accepts a blocked-for-reply process
                                    // (the reply is held by the very §7.10.1
                                    // freeze the re-backup lifts)
  bool is_server = false;           // native server (system or peripheral)
  bool peripheral = false;          // explicit-sync FT, device syscalls allowed
  bool server_backup = false;       // active backup instance of a peripheral server
  ClusterId primary_cluster = kNoCluster;  // server_backup: where the primary runs

  std::unique_ptr<Body> body;
  Executable exe;                   // for forks and pre-first-sync recovery

  ProcState state = ProcState::kReady;
  bool dispatched = false;          // currently occupying a work processor

  // Block details.
  ChannelId blocked_channel;        // kBlockedRead
  Fd blocked_fd = kBadFd;
  uint32_t blocked_group = 0;       // kBlockedWhich
  bool blocked_read_any = false;    // server read-any (native kAnyChannel)
  bool blocked_side_effects = false;  // blocked awaiting a reply to a request
                                      // we sent (open/writev/gettime): sync
                                      // is postponed at such points
  uint64_t blocked_max = 0;         // read size limit
  PageNum blocked_page = 0;         // kBlockedPage
  uint64_t page_cookie = 0;

  // The implicit signal channel (§7.5.2).
  ChannelId signal_channel;

  // Descriptor table and bunch groups (§7.5.1).
  std::map<Fd, FdBinding> fds;
  Fd next_fd = 0;
  std::map<uint32_t, std::vector<Fd>> groups;
  uint32_t next_group = 1;

  // Sync bookkeeping (§5.2/§7.8).
  uint32_t reads_since_sync = 0;
  SimTime exec_us_since_sync = 0;
  uint64_t sync_seq = 0;
  bool ever_synced = false;
  uint32_t sync_reads_limit = 0;    // 0: use system default
  SimTime sync_time_limit_us = 0;
  // Adaptive trigger (SyncPolicy.adaptive): the effective time limit, moved
  // after each flush by the observed dirty-page count. 0 until first tuned.
  SimTime adaptive_time_limit_us = 0;
  // Async flush (§8.3): a copy-on-write flush for this process is still
  // draining to the outgoing queue. New sync triggers are deferred, and
  // counted sends are tallied per channel so the eventual sync record can
  // carry the backup's remaining duplicate-suppression budget (§5.4).
  bool flush_in_flight = false;
  std::map<uint64_t, uint32_t> flush_window_writes;

  // Signals (§7.5.2).
  uint32_t sig_handler = 0;         // 0 = ignore
  bool in_signal = false;

  // Fork bookkeeping (§7.7).
  uint64_t fork_seq = 0;
  std::vector<BirthNotice> pending_birth_notices;  // set at takeover; consulted
                                                   // when replaying forks

  // Accounting.
  SimTime exec_us_total = 0;
  uint64_t reads_total = 0;
  uint64_t writes_total = 0;

  // The primary's FT stall (§8.3: enqueueing dirty pages + the sync
  // message; for the §2 checkpoint baselines, the whole synchronous copy).
  // The scheduler keeps the process off the work processors until then.
  SimTime stall_until = 0;
};

// Passive backup (§7.7): state as of the last sync plus fork/channel
// bookkeeping. Lives in the backup cluster's kernel; becomes a live Pcb on
// takeover (§7.10.1 step 2).
struct BackupPcb {
  Gpid pid;
  BackupMode mode = BackupMode::kQuarterback;
  Gpid parent;
  Gpid family_head;
  ClusterId primary_cluster = kNoCluster;

  bool has_sync = false;            // false: recover by restarting the image
  uint64_t sync_seq = 0;
  Bytes context;                    // body context as of last sync
  uint32_t sig_handler = 0;
  std::map<Fd, ChannelId> fds;      // bindings as of last sync
  Bytes exe;                        // serialized Executable

  bool is_server = false;
  bool peripheral = false;
  ChannelId signal_channel;

  std::vector<BirthNotice> birth_notices;  // children announced by the primary

  // §2 checkpointing baseline only: page images shipped by checkpoints.
  std::map<PageNum, Bytes> ckpt_pages;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_CORE_PCB_H_
