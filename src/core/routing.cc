#include "src/core/routing.h"

#include <utility>

namespace auragen {

RoutingEntry& RoutingTable::Create(ChannelId channel, Gpid owner, bool backup_entry) {
  Key key{channel, owner, backup_entry};
  RoutingEntry entry;
  entry.channel = channel;
  entry.owner = owner;
  entry.backup_entry = backup_entry;
  auto [it, _] = entries_.insert_or_assign(key, std::move(entry));
  return it->second;
}

RoutingEntry* RoutingTable::Find(ChannelId channel, Gpid owner, bool backup_entry) {
  auto it = entries_.find(Key{channel, owner, backup_entry});
  return it == entries_.end() ? nullptr : &it->second;
}

const RoutingEntry* RoutingTable::Find(ChannelId channel, Gpid owner, bool backup_entry) const {
  auto it = entries_.find(Key{channel, owner, backup_entry});
  return it == entries_.end() ? nullptr : &it->second;
}

void RoutingTable::Remove(ChannelId channel, Gpid owner, bool backup_entry) {
  entries_.erase(Key{channel, owner, backup_entry});
}

std::vector<RoutingEntry*> RoutingTable::EntriesOf(Gpid owner, bool backup_entry) {
  std::vector<RoutingEntry*> out;
  for (auto& [key, entry] : entries_) {
    if (entry.owner == owner && entry.backup_entry == backup_entry) {
      out.push_back(&entry);
    }
  }
  return out;
}

void RoutingTable::RemoveAllOf(Gpid owner, bool backup_entry) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner == owner && it->second.backup_entry == backup_entry) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace auragen
