// Cluster-local routing table (§7.4.1).
//
// One entry defines one end of a channel for one process. A channel between
// two backed-up processes is four entries across up to four clusters: a
// primary entry at each endpoint's cluster and a backup entry at each
// endpoint's backup cluster. An entry holds everything §7.4.1 lists:
// addressing for the three delivery destinations, the incoming queue, and
// status — plus the two counters the fault-tolerance algorithms live on:
//   reads_since_sync  (primary entries; reported in the next sync message so
//                      the backup can discard that many saved messages, §5.2)
//   writes_since_sync (backup entries; incremented when the sender's-backup
//                      copy arrives, §5.1; decremented during rollforward to
//                      suppress already-sent messages, §5.4)

#ifndef AURAGEN_SRC_CORE_ROUTING_H_
#define AURAGEN_SRC_CORE_ROUTING_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/base/types.h"
#include "src/core/wire.h"

namespace auragen {

struct QueuedMsg {
  uint64_t arrival_seq = 0;  // assigned on arrival at this cluster (§7.5.1:
                             // lets `which` behave identically at the backup)
  Msg msg;
};

struct RoutingEntry {
  ChannelId channel;
  Gpid owner;                 // the local process (or backup) this end serves
  bool backup_entry = false;

  Fd fd = kBadFd;             // owner's descriptor (backup entries learn the
                              // binding from birth notices / sync records)
  Gpid peer_pid;
  ClusterId peer_primary_cluster = kNoCluster;
  ClusterId peer_backup_cluster = kNoCluster;
  ClusterId own_backup_cluster = kNoCluster;  // where the owner's backup entry lives
  uint8_t peer_kind = 0;      // PeerKind: user peer vs server (read semantics)
  uint8_t peer_mode = 0;      // peer's BackupMode (crash patching, §7.10.1)
  uint32_t binding_tag = 0;   // server-side meaning (e.g. tty line number)

  std::deque<QueuedMsg> queue;

  uint32_t reads_since_sync = 0;    // primary entries
  uint32_t writes_since_sync = 0;   // backup entries
  bool written_since_sync = false;  // primary entries: include in sync record
                                    // so the backup zeroes its write count
  bool opened_since_sync = true;    // include in next sync record (§7.8)
  bool closed_local = false;        // owner closed its end
  bool closed_by_peer = false;      // kClose arrived; EOF after queue drains
  bool unusable = false;            // peer is a fullback awaiting a new
                                    // backup (§7.10.1 step 1)
  uint64_t writes_total = 0;        // diagnostics/metrics only
  uint64_t reads_total = 0;
};

class RoutingTable {
 public:
  struct Key {
    ChannelId channel;
    Gpid owner;
    bool backup_entry;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.channel != b.channel) {
        return a.channel < b.channel;
      }
      if (a.owner != b.owner) {
        return a.owner < b.owner;
      }
      return a.backup_entry < b.backup_entry;
    }
  };

  // Creates an entry; replaces any stale entry under the same key.
  RoutingEntry& Create(ChannelId channel, Gpid owner, bool backup_entry);

  RoutingEntry* Find(ChannelId channel, Gpid owner, bool backup_entry);
  const RoutingEntry* Find(ChannelId channel, Gpid owner, bool backup_entry) const;

  void Remove(ChannelId channel, Gpid owner, bool backup_entry);

  // All entries owned by `owner` (primary or backup per flag).
  std::vector<RoutingEntry*> EntriesOf(Gpid owner, bool backup_entry);

  // Drops every entry owned by `owner` with the given role.
  void RemoveAllOf(Gpid owner, bool backup_entry);

  // Full scan (crash handling walks the whole table, §7.10.1 step 1).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& [key, entry] : entries_) {
      fn(entry);
    }
  }

  size_t size() const { return entries_.size(); }

 private:
  std::map<Key, RoutingEntry> entries_;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_CORE_ROUTING_H_
