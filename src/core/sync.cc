// Synchronization of a primary with its backup (§5.2, §7.8), demand paging
// against the page server (§7.6, §7.10.2), and the §2 explicit-checkpointing
// baseline.

#include "src/core/kernel.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/kernel/avm_body.h"
#include "src/servers/protocol.h"

namespace auragen {

RoutingEntry* Kernel::KernelPageEntry(uint32_t shard) {
  for (RoutingEntry* e : routing_.EntriesOf(kernel_pid_, /*backup=*/false)) {
    if (e->binding_tag == kBindPageChannel + shard) {
      return e;
    }
  }
  return nullptr;
}

uint32_t Kernel::PageShardOf(Gpid pid) const {
  uint32_t shards = env_.config().page_shards;
  if (shards <= 1) {
    return 0;
  }
  // Keyed by origin cluster, which is burned into the pid: the shard
  // holding a process's account stays the same across takeovers, so a
  // recovering backup demand-faults against the right instance (§7.10.2).
  return pid.origin_cluster() % shards;
}

RoutingEntry* Kernel::KernelPageEntryFor(Gpid pid) {
  return KernelPageEntry(PageShardOf(pid));
}

void Kernel::SendKernelChannel(RoutingEntry& entry, MsgKind kind, Bytes body) {
  Msg msg;
  msg.header.kind = kind;
  msg.header.src_pid = kernel_pid_;
  msg.header.dst_pid = entry.peer_pid;
  msg.header.channel = entry.channel;
  msg.header.dst_primary_cluster = entry.peer_primary_cluster;
  msg.header.dst_backup_cluster = entry.peer_backup_cluster;
  msg.header.src_backup_cluster = kNoCluster;
  msg.body = std::move(body);
  EnqueueOutgoing(std::move(msg), TargetsOf(entry));
}

bool Kernel::CanSyncNow(const Pcb& pcb) const {
  if (pcb.backup_cluster == kNoCluster || pcb.peripheral ||
      pcb.state == ProcState::kExited) {
    return false;
  }
  if (pcb.flush_in_flight) {
    // The previous flush is still draining; syncing again would interleave
    // two increments' pages ahead of the first record. Deferred until the
    // drain acknowledges (CompleteFlushJob re-checks the triggers).
    return false;
  }
  if (!pcb.body->SyncReady()) {
    return false;
  }
  switch (pcb.state) {
    case ProcState::kReady:
    case ProcState::kBlockedWhich:
      return true;
    case ProcState::kBlockedRead:
      // A read we can rewind and re-issue; waits for replies to requests we
      // already sent (open/writev/gettime) are postponed instead — capturing
      // there would make the restored backup resend the request (§5.4 note).
      // Exception: a re-backup capture cannot wait, because the reply may be
      // held by the §7.10.1 freeze that only the re-backup's own broadcast
      // lifts. It proceeds, and CreateReplacementBackup charges the resend
      // to the shipped suppression budget.
      return !pcb.blocked_side_effects || pcb.rebuild_capture;
    default:
      return false;
  }
}

void Kernel::MaybeTriggerSync(Pcb& pcb) {
  if (pcb.dispatched) {
    // Reentrant call: CompleteAndReady -> MakeReady -> TryDispatch already
    // advanced this body to its next syscall. Its own FinishRun will check
    // the triggers at the proper quiescent point.
    return;
  }
  if (pcb.needs_rebackup) {
    // Backup cluster lost mid-slice or mid-reply: crash handling deferred
    // the re-backup to this quiescent point.
    RebuildLostBackup(pcb);
  }
  const SystemConfig& cfg = env_.config();
  bool due = pcb.reads_since_sync >= SyncReadsLimit(pcb) ||
             pcb.exec_us_since_sync >= SyncTimeLimit(pcb);
  if (!due) {
    return;
  }
  switch (cfg.strategy) {
    case FtStrategy::kMessageSystem:
      if (pcb.flush_in_flight) {
        env_.metrics().syncs_deferred_drain++;
        break;
      }
      if (CanSyncNow(pcb)) {
        ForceSync(pcb, /*signal_forced=*/false);
      }
      break;
    case FtStrategy::kCheckpointFull:
    case FtStrategy::kCheckpointIncremental:
      if (pcb.backup_cluster != kNoCluster && pcb.body->SyncReady() && !pcb.peripheral) {
        ForceCheckpoint(pcb);
      }
      break;
    default:
      break;
  }
}

uint32_t Kernel::SyncReadsLimit(const Pcb& pcb) const {
  return pcb.sync_reads_limit != 0 ? pcb.sync_reads_limit
                                   : env_.config().sync_reads_limit;
}

SimTime Kernel::SyncTimeLimit(const Pcb& pcb) const {
  if (env_.config().sync_policy.adaptive && pcb.adaptive_time_limit_us != 0) {
    return pcb.adaptive_time_limit_us;
  }
  return pcb.sync_time_limit_us != 0 ? pcb.sync_time_limit_us
                                     : env_.config().sync_time_limit_us;
}

void Kernel::RetuneSyncTrigger(Pcb& pcb, size_t flushed_pages) {
  const SyncPolicy& policy = env_.config().sync_policy;
  if (!policy.adaptive) {
    return;
  }
  SimTime cur = SyncTimeLimit(pcb);
  SimTime next = cur;
  if (flushed_pages >= policy.adaptive_dirty_high) {
    next = std::max<SimTime>(policy.adaptive_min_time_us, cur / 2);
  } else if (flushed_pages <= policy.adaptive_dirty_low) {
    next = std::min<SimTime>(policy.adaptive_max_time_us, cur * 2);
  }
  if (next == cur) {
    return;
  }
  Metrics& m = env_.metrics();
  if (next < cur) {
    m.sync_adaptive_tighten++;
  } else {
    m.sync_adaptive_loosen++;
  }
  pcb.adaptive_time_limit_us = next;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kSyncAdaptive, id_, pcb.pid.value, 0, next,
                    flushed_pages);
  }
}

void Kernel::ForceSync(Pcb& pcb, bool signal_forced, bool force_synchronous) {
  if (!CanSyncNow(pcb)) {
    return;
  }
  const SystemConfig& cfg = env_.config();
  const SyncPolicy& policy = cfg.sync_policy;
  Metrics& m = env_.metrics();

  // §7.7: a parent's sync forces children that do not yet have backups to
  // sync first, so their page accounts exist before the parent's state
  // (which already references the fork) becomes the recovery point. The
  // drain queue is FIFO, so asynchronous child flushes still complete —
  // pages and records — before the parent's.
  for (auto& [cpid, child] : procs_) {
    if (child->parent == pcb.pid && !child->backup_exists && !child->dispatched &&
        child->backup_cluster != kNoCluster && child.get() != &pcb) {
      if (CanSyncNow(*child)) {
        ForceSync(*child, false, force_synchronous);
      }
    }
  }

  // Part 1 (§7.8): capture the pages to ship — a copy-on-write snapshot of
  // everything dirtied since the last flush (or every resident page under
  // stop-and-copy). The capture advances the dirty generation, so writes
  // from here on belong to the next increment even while these snapshots
  // are still draining.
  RoutingEntry* page_entry = KernelPageEntryFor(pcb.pid);
  bool full = policy.mode == SyncMode::kStopAndCopy;
  std::vector<std::pair<PageNum, Bytes>> pages = pcb.body->CaptureFlushPages(full);
  const size_t flushed_page_count = pages.size();
  AURAGEN_CHECK(pages.empty() || cfg.strategy != FtStrategy::kMessageSystem ||
                page_entry != nullptr)
      << "dirty pages with no page server attached";
  RetuneSyncTrigger(pcb, flushed_page_count);
  bool async = policy.mode == SyncMode::kIncrementalAsync && !force_synchronous &&
               page_entry != nullptr;

  SimTime enqueue_stall = 0;
  if (!async && page_entry != nullptr) {
    // Synchronous flush: the primary stalls for every page enqueue (§8.3).
    for (const auto& [page, content] : pages) {
      PageWriteBody body;
      body.pid = pcb.pid;
      body.page = page;
      body.content = content;
      m.sync_pages_shipped++;
      m.sync_bytes_shipped += body.content.size();
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kPageShip, id_, pcb.pid.value, 0, page,
                        body.content.size());
      }
      SendKernelChannel(*page_entry, MsgKind::kPageWrite, body.Encode());
      enqueue_stall += cfg.sync_page_enqueue_us;
    }
  }

  // Part 2: the sync message proper — small, cluster-independent state plus
  // per-channel deltas — sent atomically to the backup cluster, the page
  // server shard, and the shard's backup (§7.8: "either all or none of the
  // destinations get the sync message", which is why the page account can
  // never run ahead of the backup PCB). Under an asynchronous drain the
  // record is *built* now, at the capture point, but enqueued only after
  // the last page of this flush — the same invariant, shifted to drain end.
  SyncRecord record;
  record.pid = pcb.pid;
  record.sync_seq = ++pcb.sync_seq;
  record.first_sync = !pcb.ever_synced;
  record.backup_cluster = pcb.backup_cluster;
  record.primary_cluster = id_;
  record.mode = static_cast<uint8_t>(pcb.mode);
  record.parent = pcb.parent;
  record.family_head = pcb.family_head;
  record.sig_handler = pcb.sig_handler;
  record.exec_us = pcb.exec_us_total;
  record.context = CaptureKernelContext(pcb);

  std::vector<ChannelId> closed;
  for (RoutingEntry* e : routing_.EntriesOf(pcb.pid, /*backup=*/false)) {
    bool changed = e->opened_since_sync || e->closed_local || e->reads_since_sync > 0 ||
                   e->written_since_sync;
    if (!changed) {
      continue;
    }
    SyncChannelRecord rec;
    rec.channel = e->channel;
    rec.fd = e->fd;
    rec.opened_since_sync = e->opened_since_sync;
    rec.closed_since_sync = e->closed_local;
    rec.reads_since_sync = e->reads_since_sync;
    record.channels.push_back(rec);
    e->opened_since_sync = false;
    e->reads_since_sync = 0;
    e->written_since_sync = false;
    if (e->closed_local) {
      closed.push_back(e->channel);
    }
  }
  for (ChannelId ch : closed) {
    routing_.Remove(ch, pcb.pid, /*backup=*/false);
  }

  if (async) {
    // §8.3 overlap: park the snapshots and the finished record on the drain
    // queue; the executive ships them while the primary keeps running.
    FlushJob job;
    job.pid = pcb.pid;
    job.started_at = env_.engine().Now();
    job.pages = std::move(pages);
    job.record = std::move(record);
    flush_queue_.push_back(std::move(job));
    pcb.flush_in_flight = true;
    pcb.flush_window_writes.clear();
    m.sync_flushes_async++;
  } else {
    SendSyncRecord(record, page_entry);
  }

  pcb.reads_since_sync = 0;
  pcb.exec_us_since_sync = 0;
  pcb.ever_synced = true;
  pcb.backup_exists = true;

  SimTime stall = cfg.sync_build_us + enqueue_stall;
  m.syncs++;
  m.sync_primary_stall_us += stall;
  m.sync_build_stall_us += cfg.sync_build_us;
  m.sync_enqueue_stall_us += enqueue_stall;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kSyncFlushBegin, id_, pcb.pid.value, 0,
                    flushed_page_count, enqueue_stall);
    tracer_->Record(TraceEventKind::kSyncTrigger, id_, pcb.pid.value, 0,
                    pcb.sync_seq, stall);
    if (!async) {
      // Synchronous flush: acknowledged the instant the record is queued.
      tracer_->Record(TraceEventKind::kSyncFlushAck, id_, pcb.pid.value, 0,
                      pcb.sync_seq, 0);
    }
  }
  if (signal_forced) {
    m.forced_signal_syncs++;
  }
  // The stall is work-processor time the primary loses (§8.3).
  m.work_busy_us += stall;
  pcb.exec_us_total += stall;
  pcb.stall_until = env_.engine().Now() + stall;
  if (async) {
    StartFlushDrain();
  }
}

void Kernel::SendSyncRecord(const SyncRecord& record, RoutingEntry* page_entry) {
  Msg msg;
  msg.header.kind = MsgKind::kSync;
  msg.header.src_pid = record.pid;
  ClusterMask targets = MaskOf(record.backup_cluster);
  if (page_entry != nullptr) {
    msg.header.dst_pid = page_entry->peer_pid;
    msg.header.channel = page_entry->channel;
    msg.header.dst_primary_cluster = page_entry->peer_primary_cluster;
    msg.header.dst_backup_cluster = page_entry->peer_backup_cluster;
    targets |= TargetsOf(*page_entry);
  }
  msg.header.src_backup_cluster = kNoCluster;
  msg.body = record.Encode();
  EnqueueOutgoing(std::move(msg), targets);
}

// ------------------------------------------------------ async flush drain

void Kernel::StartFlushDrain() {
  if (flush_draining_ || flush_queue_.empty()) {
    return;
  }
  flush_draining_ = true;
  ScheduleFlushStep();
}

void Kernel::ScheduleFlushStep() {
  const SystemConfig& cfg = env_.config();
  FlushJob& job = flush_queue_.front();
  uint32_t remaining = static_cast<uint32_t>(job.pages.size() - job.next_page);
  uint32_t batch = std::min(cfg.sync_policy.drain_batch_pages, remaining);
  // A record-only step (no pages left) still costs one enqueue slot.
  SimTime cost = std::max<uint32_t>(batch, 1) * cfg.sync_page_enqueue_us;
  uint64_t epoch = flush_epoch_;
  ExecEnqueue(cost, [this, epoch, batch, cost] { FlushStep(epoch, batch, cost); });
}

void Kernel::FlushStep(uint64_t epoch, uint32_t batch, SimTime cost) {
  if (!alive_ || epoch != flush_epoch_ || flush_queue_.empty()) {
    return;
  }
  Metrics& m = env_.metrics();
  m.sync_drain_async_us += cost;
  FlushJob& job = flush_queue_.front();
  RoutingEntry* page_entry = KernelPageEntryFor(job.pid);
  for (uint32_t i = 0; i < batch && !job.cancelled; ++i) {
    AURAGEN_CHECK(job.next_page < job.pages.size()) << "flush step overran job";
    const auto& [page, content] = job.pages[job.next_page++];
    if (page_entry == nullptr) {
      continue;  // page server unreachable mid-drain; rebuild re-ships
    }
    PageWriteBody body;
    body.pid = job.pid;
    body.page = page;
    body.content = content;
    m.sync_pages_shipped++;
    m.sync_bytes_shipped += body.content.size();
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventKind::kPageShip, id_, job.pid.value, 0, page,
                      body.content.size());
    }
    SendKernelChannel(*page_entry, MsgKind::kPageWrite, body.Encode());
  }
  if (job.cancelled || job.next_page >= job.pages.size()) {
    CompleteFlushJob(job);
    flush_queue_.pop_front();
    if (flush_queue_.empty()) {
      flush_draining_ = false;
      return;
    }
  }
  ScheduleFlushStep();
}

void Kernel::CompleteFlushJob(FlushJob& job) {
  Pcb* pcb = FindProcess(job.pid);
  // The record is only valid against the backup it was built for. If the
  // backup cluster died (or the process did) while the flush drained, the
  // rebuild path re-syncs synchronously from current state; a stale record
  // must not materialize a ghost backup on a restarted cluster.
  bool record_valid = !job.cancelled && pcb != nullptr &&
                      pcb->backup_cluster == job.record.backup_cluster &&
                      !pcb->needs_rebackup;
  if (record_valid) {
    // §5.4: sends made while the flush drained reach the backup before this
    // record. Carry their counts so the backup keeps exactly that much
    // duplicate-suppression budget instead of zeroing it.
    for (const auto& [channel, writes] : pcb->flush_window_writes) {
      job.record.writes_in_flight.emplace_back(channel, writes);
    }
    SendSyncRecord(job.record, KernelPageEntryFor(job.pid));
  }
  SimTime overlap = env_.engine().Now() - job.started_at;
  env_.metrics().sync_flush_overlap_us += overlap;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kSyncFlushAck, id_, job.pid.value, 0,
                    job.record.sync_seq, overlap);
  }
  if (pcb != nullptr) {
    pcb->flush_in_flight = false;
    pcb->flush_window_writes.clear();
    // Triggers deferred during the drain (including a pending re-backup)
    // fire now, at the first quiescent point.
    if (!pcb->dispatched) {
      MaybeTriggerSync(*pcb);
    }
  }
}

void Kernel::CancelFlushJobs(Gpid pid) {
  for (FlushJob& job : flush_queue_) {
    if (job.pid == pid) {
      job.cancelled = true;
    }
  }
}

void Kernel::ResetFlushPipeline() {
  flush_queue_.clear();
  flush_draining_ = false;
  flush_epoch_++;
}

Bytes Kernel::CaptureKernelContext(Pcb& pcb) {
  KernelContext kctx;
  kctx.body_context = pcb.body->CaptureContext();
  kctx.next_fd = pcb.next_fd;
  kctx.next_group = pcb.next_group;
  for (const auto& [gid, fds] : pcb.groups) {
    kctx.groups.emplace_back(gid, fds);
  }
  kctx.fork_seq = pcb.fork_seq;
  kctx.in_signal = pcb.in_signal;
  return kctx.Encode();
}

void Kernel::DropClosedBackupChannel(BackupPcb& b, ChannelId channel, Gpid pid, Fd fd) {
  if (routing_.Find(channel, pid, /*backup=*/true) != nullptr) {
    routing_.Remove(channel, pid, /*backup=*/true);
  }
  // fd == kBadFd marks a channel that never had (or already lost) a
  // descriptor binding; erasing it would be a no-op today but is kept
  // guarded so the two closed-channel paths (sync and checkpoint) cannot
  // diverge again.
  if (fd != kBadFd) {
    b.fds.erase(fd);
  }
}

void Kernel::ApplySyncAtBackup(const SyncRecord& record) {
  auto [it, created] = backups_.try_emplace(record.pid);
  BackupPcb& b = it->second;
  if (!created && b.has_sync && record.sync_seq <= b.sync_seq) {
    // Stale or duplicate record (sync_seq is monotone along every valid
    // application order); applying it would re-trim saved queues.
    ALOG_WARN() << "c" << id_ << ": stale sync record seq " << record.sync_seq
                << " for " << GpidStr(record.pid) << " (have " << b.sync_seq << ")";
    return;
  }
  if (created) {
    b.pid = record.pid;
    b.mode = static_cast<BackupMode>(record.mode);
    b.parent = record.parent;
    b.family_head = record.family_head;
    env_.metrics().backups_created++;
  }
  b.primary_cluster = record.primary_cluster;
  b.has_sync = true;
  b.sync_seq = record.sync_seq;
  b.context = record.context;
  b.sig_handler = record.sig_handler;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kSyncApply, id_, record.pid.value, 0,
                    record.sync_seq, created ? 1 : 0);
  }

  for (const SyncChannelRecord& rec : record.channels) {
    if (rec.closed_since_sync) {
      DropClosedBackupChannel(b, rec.channel, record.pid, rec.fd);
      continue;
    }
    RoutingEntry* entry = routing_.Find(rec.channel, record.pid, /*backup=*/true);
    if (entry == nullptr) {
      // The entry should have been created by a ChanCreate / open reply /
      // birth notice that, per bus FIFO, precedes this sync. Seeing none is
      // a bug in entry fabrication, not a race.
      ALOG_WARN() << "c" << id_ << ": sync for unknown backup entry ch "
                  << rec.channel.value << " " << GpidStr(record.pid);
      continue;
    }
    entry->fd = rec.fd;
    if (rec.fd != kBadFd) {
      b.fds[rec.fd] = rec.channel;
    }
    if (entry->binding_tag == kBindSignalChannel) {
      b.signal_channel = rec.channel;
    }
    // §5.2: reads done by the primary let the backup discard that many
    // saved messages; §7.8 step 4 zeroes the write count.
    AURAGEN_CHECK(entry->queue.size() >= rec.reads_since_sync)
        << "backup queue shorter than primary reads: ch" << rec.channel.value << "have"
        << entry->queue.size() << "need" << rec.reads_since_sync;
    for (uint32_t i = 0; i < rec.reads_since_sync; ++i) {
      entry->queue.pop_front();
      env_.metrics().backup_msgs_trimmed++;
    }
    if (tracer_ != nullptr && rec.reads_since_sync > 0) {
      tracer_->Record(TraceEventKind::kSyncTrim, id_, record.pid.value,
                      rec.channel.value, rec.reads_since_sync, 0);
    }
    entry->writes_since_sync = 0;
  }

  // Async flush: counted sends made between record build and record
  // transmission arrived here ahead of the record (bus FIFO). Restore their
  // exact §5.4 suppression budget — zero would double-deliver them after a
  // rollforward; more would suppress genuinely new sends.
  for (const auto& [channel, writes] : record.writes_in_flight) {
    RoutingEntry* entry =
        routing_.Find(ChannelId{channel}, record.pid, /*backup=*/true);
    if (entry != nullptr) {
      entry->writes_since_sync = writes;
    }
  }
}

// --------------------------------------------------------------- paging

void Kernel::HandlePageFault(Pcb& pcb, PageNum page) {
  if (!pcb.body->NeedsServerPaging()) {
    // Normal-execution fault: fresh zero-fill stack/heap growth (§7.6's
    // demand paging; eviction pressure is not modeled, so nothing else can
    // be non-resident before recovery).
    pcb.body->InstallPage(page, /*known=*/false, {});
    env_.metrics().page_fault_zero_fills++;
    MakeReady(pcb);
    return;
  }
  RoutingEntry* page_entry = KernelPageEntryFor(pcb.pid);
  AURAGEN_CHECK(page_entry != nullptr) << "recovery paging with no page server";
  PageRequestBody req;
  req.pid = pcb.pid;
  req.page = page;
  req.reply_to = id_;
  req.cookie = next_cookie_++;
  pcb.state = ProcState::kBlockedPage;
  pcb.blocked_page = page;
  pcb.page_cookie = req.cookie;
  page_waiters_[req.cookie] = pcb.pid;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kPageFault, id_, pcb.pid.value, 0, page,
                    req.cookie);
  }
  SendKernelChannel(*page_entry, MsgKind::kPageRequest, req.Encode());
}

void Kernel::HandlePageReply(const PageReplyBody& reply) {
  auto it = page_waiters_.find(reply.cookie);
  if (it == page_waiters_.end()) {
    return;  // stale duplicate (server takeover re-service); idempotent drop
  }
  Gpid pid = it->second;
  page_waiters_.erase(it);
  Pcb* pcb = FindProcess(pid);
  if (pcb == nullptr || pcb->state != ProcState::kBlockedPage ||
      pcb->page_cookie != reply.cookie) {
    return;
  }
  pcb->body->InstallPage(reply.page, reply.known, reply.content);
  env_.metrics().page_faults_served++;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kPageReply, id_, pid.value, 0, reply.page,
                    reply.known ? 1 : 0);
  }
  if (!reply.known) {
    env_.metrics().page_fault_zero_fills++;
  }
  MakeReady(*pcb);
}

void Kernel::ReissuePageRequests() {
  // After crash handling the page server may have moved; re-ask for every
  // outstanding fault (§7.10.2: "page servers must be available to supply
  // pages demanded by user processes' backups").
  std::vector<Gpid> blocked;
  for (auto& [pid, pcb] : procs_) {
    if (pcb->state == ProcState::kBlockedPage) {
      blocked.push_back(pid);
    }
  }
  for (Gpid pid : blocked) {
    Pcb& pcb = *procs_[pid];
    page_waiters_.erase(pcb.page_cookie);
    RoutingEntry* page_entry = KernelPageEntryFor(pid);
    if (page_entry == nullptr) {
      continue;
    }
    PageRequestBody req;
    req.pid = pcb.pid;
    req.page = pcb.blocked_page;
    req.reply_to = id_;
    req.cookie = next_cookie_++;
    pcb.page_cookie = req.cookie;
    page_waiters_[req.cookie] = pid;
    SendKernelChannel(*page_entry, MsgKind::kPageRequest, req.Encode());
  }
}

// --------------------------------------------- §2 checkpointing baseline

void Kernel::ForceCheckpoint(Pcb& pcb) {
  const bool full = env_.config().strategy == FtStrategy::kCheckpointFull;
  Metrics& m = env_.metrics();

  ByteWriter w;
  w.U64(pcb.pid.value);
  w.U8(full ? 1 : 0);
  w.Blob(CaptureKernelContext(pcb));

  // Channel records (fd bindings + queue-trim counts), as in sync.
  std::vector<SyncChannelRecord> records;
  for (RoutingEntry* e : routing_.EntriesOf(pcb.pid, /*backup=*/false)) {
    SyncChannelRecord rec;
    rec.channel = e->channel;
    rec.fd = e->fd;
    rec.opened_since_sync = e->opened_since_sync;
    rec.closed_since_sync = e->closed_local;
    rec.reads_since_sync = e->reads_since_sync;
    records.push_back(rec);
    e->opened_since_sync = false;
    e->reads_since_sync = 0;
    e->written_since_sync = false;
  }
  w.U32(static_cast<uint32_t>(records.size()));
  for (const SyncChannelRecord& rec : records) {
    w.U64(rec.channel.value);
    w.I32(rec.fd);
    w.U8(rec.closed_since_sync ? 1 : 0);
    w.U32(rec.reads_since_sync);
  }

  // Full: every resident page; incremental: pages dirtied since last
  // checkpoint. Either way the copy is made synchronously — the primary is
  // stalled for the entire serialization, which is exactly the §2 cost the
  // message system avoids.
  std::vector<PageNum> pages;
  if (full) {
    for (PageNum p = 0; p < kAvmNumPages; ++p) {
      auto* avm = dynamic_cast<AvmBody*>(pcb.body.get());
      if (avm != nullptr && avm->memory().Resident(p)) {
        pages.push_back(p);
      }
    }
    if (pages.empty()) {
      pages = pcb.body->DirtyPages();
    }
  } else {
    pages = pcb.body->DirtyPages();
  }
  w.U32(static_cast<uint32_t>(pages.size()));
  for (PageNum p : pages) {
    w.U32(p);
    w.Blob(pcb.body->PageContent(p));
  }
  pcb.body->ClearDirty();

  Msg msg;
  msg.header.kind = MsgKind::kCheckpoint;
  msg.header.src_pid = pcb.pid;
  msg.header.dst_primary_cluster = pcb.backup_cluster;
  msg.body = w.Take();

  SimTime stall = env_.config().sync_build_us +
                  env_.config().sync_page_enqueue_us * pages.size() +
                  static_cast<SimTime>(static_cast<double>(msg.body.size()) *
                                       env_.config().bus.us_per_byte);
  m.checkpoints++;
  m.checkpoint_bytes += msg.body.size();
  m.checkpoint_stall_us += stall;
  m.work_busy_us += stall;
  pcb.exec_us_total += stall;
  pcb.stall_until = env_.engine().Now() + stall;
  pcb.exec_us_since_sync = 0;
  pcb.reads_since_sync = 0;

  EnqueueOutgoing(std::move(msg), MaskOf(pcb.backup_cluster));
}

void Kernel::ApplyCheckpointAtBackup(const MsgView& msg) {
  ByteReader r(msg.body());
  Gpid pid;
  pid.value = r.U64();
  bool full = r.U8() != 0;
  Bytes context = r.Blob();
  auto [it, created] = backups_.try_emplace(pid);
  BackupPcb& b = it->second;
  if (created) {
    b.pid = pid;
    env_.metrics().backups_created++;
  }
  b.primary_cluster = msg.header.src_pid.origin_cluster();
  b.has_sync = true;
  b.context = std::move(context);

  uint32_t nrec = r.U32();
  for (uint32_t i = 0; i < nrec; ++i) {
    ChannelId chan{r.U64()};
    Fd fd = r.I32();
    bool closed = r.U8() != 0;
    uint32_t reads = r.U32();
    if (closed) {
      DropClosedBackupChannel(b, chan, pid, fd);
      continue;
    }
    RoutingEntry* entry = routing_.Find(chan, pid, /*backup=*/true);
    if (entry == nullptr) {
      continue;
    }
    entry->fd = fd;
    if (fd != kBadFd) {
      b.fds[fd] = chan;
    }
    for (uint32_t k = 0; k < reads && !entry->queue.empty(); ++k) {
      entry->queue.pop_front();
    }
  }

  if (full) {
    b.ckpt_pages.clear();
  }
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; ++i) {
    PageNum p = r.U32();
    b.ckpt_pages[p] = r.Blob();
  }
}

}  // namespace auragen
