// System-call layer (§7.5). Each call either uses cluster-independent data
// or turns into message traffic, so a rolled-forward backup sees identical
// results. Reads are always blocking (§7.5.1); writes return once the
// message is on the outgoing queue; writes that need a server's answer
// (writev/open/gettime) block for the reply.

#include "src/core/kernel.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/kernel/avm_body.h"
#include "src/servers/protocol.h"

namespace auragen {

namespace {
int64_t NegErr(Errc e) { return -static_cast<int64_t>(e); }
}  // namespace

// Parks the process awaiting a reply to a request it just sent. During
// rollforward the reply may already sit in the (saved) queue, so the wait is
// re-checked immediately — blocking unconditionally would deadlock.
void Kernel::BlockForReply(Pcb& pcb, const RoutingEntry& entry, Fd fd, uint64_t max) {
  pcb.state = ProcState::kBlockedRead;
  pcb.blocked_channel = entry.channel;
  pcb.blocked_fd = fd;
  pcb.blocked_max = max;
  pcb.blocked_read_any = false;
  pcb.blocked_side_effects = true;
  TryCompleteBlocked(pcb);
}

RoutingEntry* Kernel::EntryOfFd(Pcb& pcb, Fd fd) {
  auto it = pcb.fds.find(fd);
  if (it == pcb.fds.end()) {
    return nullptr;
  }
  return routing_.Find(it->second.channel, pcb.pid, /*backup=*/false);
}

bool Kernel::EntryReadable(const RoutingEntry& entry) const { return !entry.queue.empty(); }

void Kernel::CompleteAndReady(Pcb& pcb, int64_t rv, Bytes data) {
  SyscallResult res;
  res.rv = rv;
  res.data = std::move(data);
  pcb.body->CompleteSyscall(res);
  pcb.blocked_side_effects = false;
  pcb.blocked_read_any = false;
  MakeReady(pcb);
}

// ---------------------------------------------------------------- send path

void Kernel::SendOnChannel(Pcb& pcb, RoutingEntry& entry, MsgKind kind, Bytes body,
                           bool counted) {
  // §5.4: a recovered process rolls forward past sends its dead primary
  // already performed. The flipped backup entry carried the count.
  if (counted && entry.writes_since_sync > 0) {
    entry.writes_since_sync--;
    env_.metrics().sends_suppressed++;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventKind::kSendSuppressed, id_, pcb.pid.value,
                      entry.channel.value, entry.writes_since_sync, 0);
    }
    return;
  }

  Msg msg;
  msg.header.kind = kind;
  msg.header.src_pid = pcb.pid;
  msg.header.dst_pid = entry.peer_pid;
  msg.header.channel = entry.channel;
  msg.header.dst_primary_cluster = entry.peer_primary_cluster;
  msg.header.dst_backup_cluster = entry.peer_backup_cluster;
  msg.header.src_backup_cluster = counted ? entry.own_backup_cluster : kNoCluster;
  msg.body = std::move(body);

  entry.written_since_sync = true;
  entry.writes_total++;
  pcb.writes_total++;
  if (pcb.flush_in_flight && counted && entry.own_backup_cluster != kNoCluster) {
    // This send's count leg reaches the backup before the draining sync
    // record does; tally it so the record preserves the §5.4 budget.
    pcb.flush_window_writes[entry.channel.value]++;
  }
  env_.metrics().messages_sent++;
  env_.metrics().bytes_sent += msg.body.size();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kSend, id_, pcb.pid.value, entry.channel.value,
                    static_cast<uint64_t>(kind), msg.body.size());
  }

  OutgoingItem item;
  item.msg = std::move(msg);
  item.targets = TargetsOf(entry);
  if (entry.unusable) {
    // Peer is a fullback awaiting its replacement backup (§7.10.1): hold
    // until kBackupReady supplies the new address.
    item.held_for = entry.peer_pid;
  }
  outgoing_.push_back(std::move(item));
  PumpTransmit();
}

// ------------------------------------------------------------------- reads

RoutingEntry* Kernel::PickReadable(Pcb& pcb, const std::vector<Fd>& fds, Fd* out_fd) {
  RoutingEntry* best = nullptr;
  Fd best_fd = kBadFd;
  for (Fd fd : fds) {
    RoutingEntry* e = EntryOfFd(pcb, fd);
    if (e == nullptr || e->queue.empty()) {
      continue;
    }
    if (best == nullptr || e->queue.front().arrival_seq < best->queue.front().arrival_seq) {
      best = e;
      best_fd = fd;
    }
  }
  if (out_fd != nullptr) {
    *out_fd = best_fd;
  }
  return best;
}

RoutingEntry* Kernel::PickReadableAny(Pcb& pcb) {
  RoutingEntry* best = nullptr;
  for (RoutingEntry* e : routing_.EntriesOf(pcb.pid, /*backup=*/false)) {
    if (e->queue.empty()) {
      continue;
    }
    if (best == nullptr || e->queue.front().arrival_seq < best->queue.front().arrival_seq) {
      best = e;
    }
  }
  return best;
}

void Kernel::ConsumeMessage(Pcb& pcb, RoutingEntry& entry, int64_t max, bool read_any) {
  AURAGEN_CHECK(!entry.queue.empty());
  QueuedMsg q = std::move(entry.queue.front());
  entry.queue.pop_front();

  pcb.reads_since_sync++;
  pcb.reads_total++;
  entry.reads_since_sync++;
  entry.reads_total++;

  const Msg& msg = q.msg;
  if (msg.header.kind == MsgKind::kOpenReply) {
    // Completion of a blocked open(): materialize the new channel.
    OpenReplyBody reply = OpenReplyBody::Decode(msg.body);
    if (reply.status != 0) {
      CompleteAndReady(pcb, reply.status);
      return;
    }
    Fd fd = pcb.next_fd++;
    RoutingEntry* existing = routing_.Find(reply.channel, pcb.pid, /*backup=*/false);
    RoutingEntry& ne = existing != nullptr
                           ? *existing
                           : routing_.Create(reply.channel, pcb.pid, /*backup=*/false);
    ne.fd = fd;
    ne.peer_pid = reply.peer_pid;
    ne.peer_primary_cluster = reply.peer_primary_cluster;
    ne.peer_backup_cluster = reply.peer_backup_cluster;
    ne.peer_kind = reply.peer_kind;
    ne.peer_mode = reply.peer_mode;
    ne.own_backup_cluster = pcb.backup_cluster;
    ne.opened_since_sync = true;
    // A reply held over a crash (re-delivered to a restarted opener) carries
    // the peer's pre-crash location. Apply the crashes this kernel has
    // already handled, or the first send walks into a dead cluster and the
    // save leg parks in a queue nothing will ever replay.
    for (ClusterId c = 0; c < env_.config().num_clusters; ++c) {
      if (crash_handled_[c]) {
        PatchEntryAfterCrash(ne, c);
      }
    }
    pcb.fds[fd] = FdBinding{reply.channel, static_cast<PeerKind>(reply.peer_kind)};
    CompleteAndReady(pcb, fd);
    return;
  }

  Bytes payload = msg.body;
  int64_t rv_override = -1;
  bool has_rv_override = false;
  if (!read_any &&
      (entry.peer_kind == static_cast<uint8_t>(PeerKind::kServerControl) ||
       entry.peer_kind == static_cast<uint8_t>(PeerKind::kServerFile)) &&
      !payload.empty()) {
    // Unwrap server reply framing so user programs see plain data/values:
    // kData / kTtyInput -> payload bytes, kStatus -> rv, kTime64 -> rv.
    ByteReader br(payload);
    ReqTag tag = static_cast<ReqTag>(br.U8());
    switch (tag) {
      case ReqTag::kData:
      case ReqTag::kTtyInput:
        payload = br.Blob();
        break;
      case ReqTag::kStatus:
        rv_override = br.I32();
        has_rv_override = true;
        payload.clear();
        break;
      case ReqTag::kTime64:
        rv_override = static_cast<int64_t>(br.U64());
        has_rv_override = true;
        payload.clear();
        break;
      default:
        break;  // raw delivery (signal bodies, app traffic)
    }
  }
  if (max >= 0 && payload.size() > static_cast<size_t>(max)) {
    payload.resize(static_cast<size_t>(max));
  }
  int64_t rv = has_rv_override ? rv_override : static_cast<int64_t>(payload.size());
  if (read_any) {
    // Native read-any result: {channel, src pid, binding tag, kind, payload}.
    ByteWriter w;
    w.U64(msg.header.channel.value);
    w.U64(msg.header.src_pid.value);
    w.U32(entry.binding_tag);
    w.U8(static_cast<uint8_t>(msg.header.kind));
    w.Blob(msg.body);
    payload = w.Take();
    rv = static_cast<int64_t>(msg.body.size());
  }
  CompleteAndReady(pcb, rv, std::move(payload));
}

void Kernel::ReadOrBlock(Pcb& pcb, Fd fd, uint64_t max) {
  RoutingEntry* entry = EntryOfFd(pcb, fd);
  if (entry == nullptr) {
    CompleteAndReady(pcb, NegErr(Errc::kBadDescriptor));
    return;
  }
  if (EntryReadable(*entry)) {
    ConsumeMessage(pcb, *entry, static_cast<int64_t>(max), /*read_any=*/false);
    return;
  }
  if (entry->closed_by_peer) {
    CompleteAndReady(pcb, 0);  // EOF
    return;
  }
  pcb.state = ProcState::kBlockedRead;
  pcb.blocked_channel = entry->channel;
  pcb.blocked_fd = fd;
  pcb.blocked_max = max;
  pcb.blocked_read_any = false;
}

void Kernel::TryCompleteBlocked(Pcb& pcb) {
  switch (pcb.state) {
    case ProcState::kBlockedRead: {
      if (pcb.blocked_read_any) {
        RoutingEntry* e = PickReadableAny(pcb);
        if (e != nullptr) {
          ConsumeMessage(pcb, *e, static_cast<int64_t>(pcb.blocked_max), /*read_any=*/true);
        }
        return;
      }
      RoutingEntry* e = routing_.Find(pcb.blocked_channel, pcb.pid, /*backup=*/false);
      if (e == nullptr) {
        CompleteAndReady(pcb, NegErr(Errc::kPeerGone));
        return;
      }
      if (EntryReadable(*e)) {
        ConsumeMessage(pcb, *e, static_cast<int64_t>(pcb.blocked_max), /*read_any=*/false);
      } else if (e->closed_by_peer) {
        CompleteAndReady(pcb, pcb.blocked_side_effects ? NegErr(Errc::kPeerGone) : 0);
      }
      return;
    }
    case ProcState::kBlockedWhich: {
      auto git = pcb.groups.find(pcb.blocked_group);
      if (git == pcb.groups.end()) {
        CompleteAndReady(pcb, NegErr(Errc::kInvalid));
        return;
      }
      Fd fd = kBadFd;
      if (PickReadable(pcb, git->second, &fd) != nullptr) {
        CompleteAndReady(pcb, fd);
      }
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------- dispatch

void Kernel::DoSyscall(Pcb& pcb, const SyscallRequest& req) {
  if (static_cast<uint32_t>(req.num) >= kFirstNativeSys) {
    DoNativeSyscall(pcb, req);
    return;
  }
  switch (req.num) {
    case Sys::kOpen:
      SysOpen(pcb, req);
      break;
    case Sys::kClose:
      SysClose(pcb, static_cast<Fd>(req.a));
      break;
    case Sys::kRead:
      SysRead(pcb, req);
      break;
    case Sys::kWrite:
      SysWrite(pcb, req, /*wants_answer=*/false);
      break;
    case Sys::kWritev:
      SysWrite(pcb, req, /*wants_answer=*/true);
      break;
    case Sys::kFork:
      SysFork(pcb);
      break;
    case Sys::kExit:
      SysExit(pcb, static_cast<int32_t>(req.a));
      break;
    case Sys::kGetpid: {
      // Cluster-independent (§7.5.1): derived from the globally unique pid.
      uint32_t rv = (pcb.pid.origin_cluster() << 24) |
                    static_cast<uint32_t>(pcb.pid.value & 0xffffff);
      CompleteAndReady(pcb, rv);
      break;
    }
    case Sys::kGettime:
      SysGettime(pcb);
      break;
    case Sys::kAlarm:
      SysAlarm(pcb, req.a);
      break;
    case Sys::kSigset:
      pcb.sig_handler = static_cast<uint32_t>(req.a);
      CompleteAndReady(pcb, 0);
      break;
    case Sys::kSigret: {
      auto* avm = dynamic_cast<AvmBody*>(pcb.body.get());
      if (avm == nullptr) {
        CompleteAndReady(pcb, NegErr(Errc::kNotSupported));
        break;
      }
      avm->LeaveSignal();
      pcb.in_signal = false;
      MakeReady(pcb);
      break;
    }
    case Sys::kYield:
      CompleteAndReady(pcb, 0);
      break;
    case Sys::kBunch:
      SysBunch(pcb, req);
      break;
    case Sys::kWhich:
      SysWhich(pcb, req);
      break;
    case Sys::kDebugPutc:
      env_.OnDebugPutc(pcb.pid, static_cast<char>(req.a));
      CompleteAndReady(pcb, 0);
      break;
    case Sys::kMark:
      // Workload SLO instrumentation: a = phase, b = request tag. Purely a
      // trace emission — no guest-visible effect, so rollforward replay of
      // a mark is harmless (the analyzer keeps the earliest issue mark).
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kRequestMark, id_, pcb.pid.value, 0,
                        req.a, req.b);
      }
      CompleteAndReady(pcb, 0);
      break;
    case Sys::kSyncHint:
      CompleteAndReady(pcb, 0);
      if (env_.config().strategy == FtStrategy::kMessageSystem) {
        ForceSync(pcb, /*signal_forced=*/false);
      } else if (env_.config().strategy == FtStrategy::kCheckpointFull ||
                 env_.config().strategy == FtStrategy::kCheckpointIncremental) {
        ForceCheckpoint(pcb);
      }
      break;
    default:
      CompleteAndReady(pcb, NegErr(Errc::kNotSupported));
      break;
  }
}

void Kernel::SysOpen(Pcb& pcb, const SyscallRequest& req) {
  RoutingEntry* fs = EntryOfFd(pcb, 0);
  if (fs == nullptr) {
    CompleteAndReady(pcb, NegErr(Errc::kNoEntry));
    return;
  }
  OpenRequest open;
  open.cookie = pcb.reads_total + 1;  // deterministic correlation tag
  open.name.assign(req.data.begin(), req.data.end());
  open.opener = pcb.pid;
  open.opener_cluster = id_;
  open.opener_backup = pcb.backup_cluster;
  open.opener_mode = static_cast<uint8_t>(pcb.mode);
  SendOnChannel(pcb, *fs, MsgKind::kUser, open.Encode());
  BlockForReply(pcb, *fs, 0);
}

void Kernel::SysClose(Pcb& pcb, Fd fd) {
  auto it = pcb.fds.find(fd);
  if (it == pcb.fds.end()) {
    CompleteAndReady(pcb, NegErr(Errc::kBadDescriptor));
    return;
  }
  RoutingEntry* entry = routing_.Find(it->second.channel, pcb.pid, /*backup=*/false);
  if (entry != nullptr) {
    if (!entry->closed_by_peer) {
      SendOnChannel(pcb, *entry, MsgKind::kClose, {});
    }
    entry->closed_local = true;
  }
  pcb.fds.erase(it);
  CompleteAndReady(pcb, 0);
}

void Kernel::SysRead(Pcb& pcb, const SyscallRequest& req) {
  if (req.a == kAnyChannel) {
    // Native servers: take the oldest message across all owned channels.
    pcb.blocked_max = req.c != 0 ? req.c : ~0ull;
    RoutingEntry* e = PickReadableAny(pcb);
    if (e != nullptr) {
      ConsumeMessage(pcb, *e, static_cast<int64_t>(pcb.blocked_max), /*read_any=*/true);
      return;
    }
    pcb.state = ProcState::kBlockedRead;
    pcb.blocked_read_any = true;
    pcb.blocked_side_effects = false;
    return;
  }

  Fd fd = static_cast<Fd>(req.a);
  auto it = pcb.fds.find(fd);
  if (it == pcb.fds.end()) {
    CompleteAndReady(pcb, NegErr(Errc::kBadDescriptor));
    return;
  }
  if (it->second.peer == PeerKind::kServerFile) {
    // File-channel read: request/reply with the file server (§7.6's servers
    // answer via message, so the same answer is available to the backup).
    RoutingEntry* entry = EntryOfFd(pcb, fd);
    if (entry == nullptr) {
      CompleteAndReady(pcb, NegErr(Errc::kBadDescriptor));
      return;
    }
    SendOnChannel(pcb, *entry, MsgKind::kUser,
                  EncodeTaggedU64(ReqTag::kFileRead, req.c));
    BlockForReply(pcb, *entry, fd, req.c);
    return;
  }
  ReadOrBlock(pcb, fd, req.c);
}

void Kernel::SysWrite(Pcb& pcb, const SyscallRequest& req, bool wants_answer) {
  Fd fd = static_cast<Fd>(req.a);
  auto it = pcb.fds.find(fd);
  if (it == pcb.fds.end()) {
    CompleteAndReady(pcb, NegErr(Errc::kBadDescriptor));
    return;
  }
  RoutingEntry* entry = EntryOfFd(pcb, fd);
  if (entry == nullptr || entry->closed_local) {
    CompleteAndReady(pcb, NegErr(Errc::kBadDescriptor));
    return;
  }
  if (entry->closed_by_peer && entry->peer_backup_cluster == kNoCluster &&
      entry->writes_since_sync == 0) {
    // kPeerGone is suppressed while a replay budget remains: a restarted
    // process re-executing a send that succeeded before the crash must see
    // it succeed again (§6 transparency), even if the peer has since closed
    // the channel — the close is in this process's replayed future. The
    // send itself is swallowed by the count check in SendOnChannel.
    CompleteAndReady(pcb, NegErr(Errc::kPeerGone));
    return;
  }

  Bytes payload;
  if (it->second.peer == PeerKind::kServerFile) {
    payload = EncodeTaggedBlob(ReqTag::kFileWrite, req.data);
  } else if (it->second.peer == PeerKind::kServerControl && fd == 2) {
    payload = EncodeTaggedBlob(ReqTag::kTtyWrite, req.data);
  } else {
    payload = req.data;
  }
  SendOnChannel(pcb, *entry, MsgKind::kUser, std::move(payload));

  if (wants_answer || it->second.peer == PeerKind::kServerFile) {
    // §7.5.1: writes requiring a server's answer cannot return until the
    // answer arrives.
    BlockForReply(pcb, *entry, fd);
    return;
  }
  CompleteAndReady(pcb, static_cast<int64_t>(req.data.size()));
}

void Kernel::SysBunch(Pcb& pcb, const SyscallRequest& req) {
  std::vector<Fd> fds;
  for (size_t at = 0; at + 4 <= req.data.size(); at += 4) {
    int32_t fd = static_cast<int32_t>(
        static_cast<uint32_t>(req.data[at]) | (static_cast<uint32_t>(req.data[at + 1]) << 8) |
        (static_cast<uint32_t>(req.data[at + 2]) << 16) |
        (static_cast<uint32_t>(req.data[at + 3]) << 24));
    fds.push_back(fd);
  }
  uint32_t group = pcb.next_group++;
  pcb.groups[group] = std::move(fds);
  CompleteAndReady(pcb, group);
}

void Kernel::SysWhich(Pcb& pcb, const SyscallRequest& req) {
  uint32_t group = static_cast<uint32_t>(req.a);
  auto it = pcb.groups.find(group);
  if (it == pcb.groups.end()) {
    CompleteAndReady(pcb, NegErr(Errc::kInvalid));
    return;
  }
  Fd fd = kBadFd;
  if (PickReadable(pcb, it->second, &fd) != nullptr) {
    CompleteAndReady(pcb, fd);
    return;
  }
  pcb.state = ProcState::kBlockedWhich;
  pcb.blocked_group = group;
  pcb.blocked_side_effects = false;
}

void Kernel::SysGettime(Pcb& pcb) {
  // §7.5.1: time is the process server's responsibility; request and answer
  // both travel by message so the backup sees the same value.
  RoutingEntry* ps = EntryOfFd(pcb, 1);
  if (ps == nullptr) {
    CompleteAndReady(pcb, NegErr(Errc::kNoEntry));
    return;
  }
  SendOnChannel(pcb, *ps, MsgKind::kUser, EncodeTagged(ReqTag::kTime));
  BlockForReply(pcb, *ps, 1);
}

void Kernel::SysAlarm(Pcb& pcb, uint64_t delay_us) {
  RoutingEntry* ps = EntryOfFd(pcb, 1);
  if (ps == nullptr) {
    CompleteAndReady(pcb, NegErr(Errc::kNoEntry));
    return;
  }
  SendOnChannel(pcb, *ps, MsgKind::kUser, EncodeTaggedU64(ReqTag::kAlarm, delay_us));
  CompleteAndReady(pcb, 0);
}

// ------------------------------------------------------------ signals

RoutingEntry* Kernel::SignalEntry(Gpid pid, bool backup_entry) {
  auto it = procs_.find(pid);
  if (it == procs_.end() || !it->second->signal_channel.valid()) {
    return nullptr;
  }
  return routing_.Find(it->second->signal_channel, pid, backup_entry);
}

void Kernel::DeliverPendingSignal(Pcb& pcb) {
  if (pcb.in_signal || !pcb.signal_channel.valid()) {
    return;
  }
  RoutingEntry* sig = routing_.Find(pcb.signal_channel, pcb.pid, /*backup=*/false);
  if (sig == nullptr || sig->queue.empty()) {
    return;
  }

  if (pcb.sig_handler == 0) {
    // Ignored: remove from the queue and count as a read (§7.5.2).
    sig->queue.pop_front();
    pcb.reads_since_sync++;
    pcb.reads_total++;
    sig->reads_since_sync++;
    return;
  }

  // A process parked in a restartable wait (read/which, no request of ours
  // awaiting its reply) is interrupted: the blocked SYS rewinds, the handler
  // runs, and sigret re-executes the wait — restartable syscalls.
  if (pcb.state == ProcState::kBlockedRead || pcb.state == ProcState::kBlockedWhich) {
    if (pcb.blocked_side_effects) {
      return;  // reply in flight; deliver at the next dispatch boundary
    }
    auto* avm = dynamic_cast<AvmBody*>(pcb.body.get());
    if (avm == nullptr) {
      return;  // native servers take no signals
    }
    avm->AbortBlockedSyscall();
    pcb.state = ProcState::kReady;
    pcb.blocked_read_any = false;
  } else if (pcb.state != ProcState::kReady) {
    return;
  }

  // Non-ignored: sync first (§7.5.2/§8.3 forced sync), then divert. On
  // rollforward the backup lands exactly here: at the sync point with the
  // signal message at the head of its saved signal queue.
  if (env_.config().strategy == FtStrategy::kMessageSystem &&
      pcb.backup_cluster != kNoCluster) {
    ForceSync(pcb, /*signal_forced=*/true);
  }
  QueuedMsg q = std::move(sig->queue.front());
  sig->queue.pop_front();
  pcb.reads_since_sync++;
  pcb.reads_total++;
  sig->reads_since_sync++;

  ByteReader r(q.msg.body);
  r.U8();  // tag
  r.U64(); // target pid (redundant here)
  uint32_t signum = r.U32();
  if (pcb.body->EnterSignal(pcb.sig_handler, signum)) {
    pcb.in_signal = true;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventKind::kSignalDeliver, id_, pcb.pid.value,
                      pcb.signal_channel.value, signum, 0);
    }
  }
}

// ------------------------------------------------------- native syscalls

void Kernel::DoNativeSyscall(Pcb& pcb, const SyscallRequest& req) {
  if (!pcb.is_server) {
    CompleteAndReady(pcb, NegErr(Errc::kNotSupported));
    return;
  }
  switch (static_cast<NativeSys>(req.num)) {
    case NativeSys::kDiskRead: {
      AURAGEN_CHECK(pcb.peripheral) << "disk access from non-peripheral server";
      pcb.state = ProcState::kBlockedDevice;
      Gpid pid = pcb.pid;
      env_.DiskRead(pcb.pid, static_cast<BlockNum>(req.a), [this, pid](Result<Bytes> r) {
        Pcb* p = FindProcess(pid);
        if (p == nullptr || p->state != ProcState::kBlockedDevice) {
          return;
        }
        if (r.ok()) {
          CompleteAndReady(*p, 0, std::move(r).value());
        } else {
          CompleteAndReady(*p, NegErr(r.error()));
        }
      });
      break;
    }
    case NativeSys::kDiskWrite: {
      AURAGEN_CHECK(pcb.peripheral) << "disk access from non-peripheral server";
      pcb.state = ProcState::kBlockedDevice;
      Gpid pid = pcb.pid;
      env_.DiskWrite(pcb.pid, static_cast<BlockNum>(req.a), req.data,
                     [this, pid](Result<void> r) {
                       Pcb* p = FindProcess(pid);
                       if (p == nullptr || p->state != ProcState::kBlockedDevice) {
                         return;
                       }
                       CompleteAndReady(*p, r.ok() ? 0 : NegErr(r.error()));
                     });
      break;
    }
    case NativeSys::kDiskWriteVec: {
      AURAGEN_CHECK(pcb.peripheral) << "disk access from non-peripheral server";
      pcb.state = ProcState::kBlockedDevice;
      Gpid pid = pcb.pid;
      ByteReader r(req.data);
      const uint32_t n = r.U32();
      DiskWriteBatch batch;
      batch.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        const BlockNum block = r.U32();
        batch.emplace_back(block, r.Blob());
      }
      env_.DiskWriteMulti(pcb.pid, std::move(batch),
                          [this, pid](Result<void> res) {
                            Pcb* p = FindProcess(pid);
                            if (p == nullptr || p->state != ProcState::kBlockedDevice) {
                              return;
                            }
                            CompleteAndReady(*p, res.ok() ? 0 : NegErr(res.error()));
                          });
      break;
    }
    case NativeSys::kServerSyncSend: {
      // Explicit peripheral-server sync (§7.9): ship to the backup cluster.
      if (pcb.backup_cluster == kNoCluster) {
        CompleteAndReady(pcb, 0);
        break;
      }
      Msg msg;
      msg.header.kind = MsgKind::kServerSync;
      msg.header.src_pid = pcb.pid;
      msg.header.dst_pid = pcb.pid;  // same logical process, backup instance
      msg.header.dst_primary_cluster = pcb.backup_cluster;
      msg.body = req.data;
      env_.metrics().server_syncs++;
      env_.metrics().server_sync_bytes += req.data.size();
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kServerSyncSend, id_, pcb.pid.value, 0, 0,
                        req.data.size());
      }
      EnqueueOutgoing(std::move(msg), MaskOf(pcb.backup_cluster));
      CompleteAndReady(pcb, 0);
      break;
    }
    case NativeSys::kTtyEmit:
      env_.TtyEmit(pcb.pid, req.data);
      CompleteAndReady(pcb, 0);
      break;
    case NativeSys::kSimTime:
      CompleteAndReady(pcb, static_cast<int64_t>(env_.engine().Now()));
      break;
    case NativeSys::kWriteChan: {
      ChannelId ch{req.b};
      RoutingEntry* entry = routing_.Find(ch, pcb.pid, /*backup=*/false);
      if (entry == nullptr) {
        CompleteAndReady(pcb, NegErr(Errc::kNoEntry));
        break;
      }
      MsgKind kind = MsgKind::kUser;
      if (req.a == 1) {
        kind = MsgKind::kOpenReply;
      } else if (req.a == 2) {
        kind = MsgKind::kSignal;
      } else if (req.a == 3) {
        kind = MsgKind::kPageReply;
      }
      Bytes payload = req.data;
      if (kind == MsgKind::kOpenReply) {
        // A server that took over a parked peripheral learned its own backup
        // location at boot, when it had none; replies naming the server as
        // peer must carry the kernel's current view or the opener's entries
        // are born pointing at no backup and close instead of failing over.
        OpenReplyBody reply = OpenReplyBody::Decode(payload);
        if (reply.status == 0 && reply.peer_pid == pcb.pid) {
          reply.peer_primary_cluster = id_;
          reply.peer_backup_cluster = pcb.backup_cluster;
          payload = reply.Encode();
        }
      }
      // req.c != 0: device-input-driven send; see SendOnChannel on counting.
      SendOnChannel(pcb, *entry, kind, payload, /*counted=*/req.c == 0);
      CompleteAndReady(pcb, static_cast<int64_t>(req.data.size()));
      break;
    }
    case NativeSys::kSetTimer: {
      Gpid pid = pcb.pid;
      uint64_t cookie = req.b;
      env_.engine().Schedule(req.a, [this, pid, cookie] {
        if (!alive_) {
          return;
        }
        InjectLocalMessage(pid, kBindSelfChannel, EncodeTaggedU64(ReqTag::kTimerFire, cookie));
      });
      CompleteAndReady(pcb, 0);
      break;
    }
    case NativeSys::kFindChan: {
      uint64_t found = 0;
      for (RoutingEntry* e : routing_.EntriesOf(pcb.pid, /*backup=*/false)) {
        if (e->binding_tag == static_cast<uint32_t>(req.a) &&
            (req.b == 0 || e->peer_pid.value == req.b)) {
          found = e->channel.value;
          break;
        }
      }
      CompleteAndReady(pcb, static_cast<int64_t>(found));
      break;
    }
    case NativeSys::kWhoAmI: {
      ByteWriter w;
      w.U64(pcb.pid.value);
      w.U32(id_);
      w.U32(pcb.backup_cluster);
      CompleteAndReady(pcb, 0, w.Take());
      break;
    }
    case NativeSys::kAcceptChan: {
      // A server materializes its own end of a channel it just handed out
      // (file opens, tty sessions), plus the backup entry at its backup
      // cluster. Replayed accepts after server rollforward are idempotent.
      ChanCreate c = ChanCreate::Decode(req.data);
      RoutingEntry* existing = routing_.Find(c.channel, pcb.pid, /*backup=*/false);
      RoutingEntry& e = existing != nullptr
                            ? *existing
                            : routing_.Create(c.channel, pcb.pid, /*backup=*/false);
      e.peer_pid = c.peer_pid;
      e.peer_primary_cluster = c.peer_primary_cluster;
      e.peer_backup_cluster = c.peer_backup_cluster;
      e.peer_kind = c.peer_kind;
      e.peer_mode = c.peer_mode;
      e.binding_tag = c.binding_tag;
      e.own_backup_cluster = pcb.backup_cluster;
      if (pcb.backup_cluster != kNoCluster) {
        ChanCreate backup = c;
        backup.owner = pcb.pid;
        backup.backup_entry = true;
        backup.own_backup_cluster = pcb.backup_cluster;
        Msg msg;
        msg.header.kind = MsgKind::kChanCreate;
        msg.header.src_pid = kernel_pid_;
        msg.header.dst_pid = pcb.pid;
        msg.body = backup.Encode();
        EnqueueOutgoing(std::move(msg), MaskOf(pcb.backup_cluster));
      }
      CompleteAndReady(pcb, 0);
      break;
    }
    default:
      CompleteAndReady(pcb, NegErr(Errc::kNotSupported));
      break;
  }
}

}  // namespace auragen
