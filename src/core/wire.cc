#include "src/core/wire.h"

namespace auragen {

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kUser: return "user";
    case MsgKind::kOpenReply: return "open-reply";
    case MsgKind::kSignal: return "signal";
    case MsgKind::kClose: return "close";
    case MsgKind::kSync: return "sync";
    case MsgKind::kBirthNotice: return "birth-notice";
    case MsgKind::kExitNotice: return "exit-notice";
    case MsgKind::kCrashNotice: return "crash-notice";
    case MsgKind::kHeartbeat: return "heartbeat";
    case MsgKind::kBackupCreate: return "backup-create";
    case MsgKind::kBackupReady: return "backup-ready";
    case MsgKind::kChanCreate: return "chan-create";
    case MsgKind::kPageWrite: return "page-write";
    case MsgKind::kPageRequest: return "page-request";
    case MsgKind::kPageReply: return "page-reply";
    case MsgKind::kServerSync: return "server-sync";
    case MsgKind::kCheckpoint: return "checkpoint";
    case MsgKind::kProcCrash: return "proc-crash";
  }
  return "?";
}

void MsgHeader::Serialize(ByteWriter& w) const {
  w.U8(static_cast<uint8_t>(kind));
  w.U64(src_pid.value);
  w.U64(dst_pid.value);
  w.U64(channel.value);
  w.U32(dst_primary_cluster);
  w.U32(dst_backup_cluster);
  w.U32(src_backup_cluster);
}

MsgHeader MsgHeader::Deserialize(ByteReader& r) {
  MsgHeader h;
  h.kind = static_cast<MsgKind>(r.U8());
  h.src_pid.value = r.U64();
  h.dst_pid.value = r.U64();
  h.channel.value = r.U64();
  h.dst_primary_cluster = r.U32();
  h.dst_backup_cluster = r.U32();
  h.src_backup_cluster = r.U32();
  return h;
}

Bytes Msg::Encode() const {
  ByteWriter w;
  header.Serialize(w);
  w.Blob(body);
  return w.Take();
}

Msg Msg::Decode(ByteView frame_payload) {
  ByteReader r(frame_payload);
  Msg m;
  m.header = MsgHeader::Deserialize(r);
  m.body = r.Blob();
  return m;
}

Msg MsgView::ToOwned() const {
  Msg m;
  m.header = header;
  m.body = body().ToBytes();
  return m;
}

MsgView MsgView::FromOwned(Msg&& m) {
  MsgView v;
  v.header = m.header;
  v.body_len = static_cast<uint32_t>(m.body.size());
  v.payload = MakePayload(std::move(m.body));
  v.body_off = 0;
  return v;
}

MsgView MsgView::Parse(const PayloadPtr& frame_payload) {
  ByteReader r(*frame_payload);
  MsgView v;
  v.header = MsgHeader::Deserialize(r);
  ByteView body = r.BlobView();
  v.payload = frame_payload;
  v.body_off = static_cast<uint32_t>(body.data() - frame_payload->data());
  v.body_len = static_cast<uint32_t>(body.size());
  return v;
}

Bytes SyncRecord::Encode() const {
  ByteWriter w;
  w.U64(pid.value);
  w.U64(sync_seq);
  w.U8(first_sync ? 1 : 0);
  w.Blob(context);
  w.U32(sig_handler);
  w.U64(exec_us);
  w.U32(backup_cluster);
  w.U32(primary_cluster);
  w.U8(mode);
  w.U64(parent.value);
  w.U64(family_head.value);
  w.U32(static_cast<uint32_t>(channels.size()));
  for (const SyncChannelRecord& c : channels) {
    w.U64(c.channel.value);
    w.I32(c.fd);
    w.U8(c.opened_since_sync ? 1 : 0);
    w.U8(c.closed_since_sync ? 1 : 0);
    w.U32(c.reads_since_sync);
  }
  w.U32(static_cast<uint32_t>(writes_in_flight.size()));
  for (const auto& [ch, writes] : writes_in_flight) {
    w.U64(ch);
    w.U32(writes);
  }
  return w.Take();
}

SyncRecord SyncRecord::Decode(ByteView body) {
  ByteReader r(body);
  SyncRecord s;
  s.pid.value = r.U64();
  s.sync_seq = r.U64();
  s.first_sync = r.U8() != 0;
  s.context = r.Blob();
  s.sig_handler = r.U32();
  s.exec_us = r.U64();
  s.backup_cluster = r.U32();
  s.primary_cluster = r.U32();
  s.mode = r.U8();
  s.parent.value = r.U64();
  s.family_head.value = r.U64();
  uint32_t n = r.U32();
  s.channels.resize(n);
  for (SyncChannelRecord& c : s.channels) {
    c.channel.value = r.U64();
    c.fd = r.I32();
    c.opened_since_sync = r.U8() != 0;
    c.closed_since_sync = r.U8() != 0;
    c.reads_since_sync = r.U32();
  }
  uint32_t wif = r.U32();
  s.writes_in_flight.resize(wif);
  for (auto& [ch, writes] : s.writes_in_flight) {
    ch = r.U64();
    writes = r.U32();
  }
  return s;
}

Bytes BirthNotice::Encode() const {
  ByteWriter w;
  w.U64(parent.value);
  w.U64(child.value);
  w.U64(fork_seq);
  w.U8(mode);
  w.U64(family_head.value);
  w.U32(static_cast<uint32_t>(chan_creates.size()));
  for (const Bytes& c : chan_creates) {
    w.Blob(c);
  }
  return w.Take();
}

BirthNotice BirthNotice::Decode(ByteView body) {
  ByteReader r(body);
  BirthNotice b;
  b.parent.value = r.U64();
  b.child.value = r.U64();
  b.fork_seq = r.U64();
  b.mode = r.U8();
  b.family_head.value = r.U64();
  uint32_t n = r.U32();
  b.chan_creates.resize(n);
  for (Bytes& c : b.chan_creates) {
    c = r.Blob();
  }
  return b;
}

Bytes KernelContext::Encode() const {
  ByteWriter w;
  w.Blob(body_context);
  w.I32(next_fd);
  w.U32(next_group);
  w.U32(static_cast<uint32_t>(groups.size()));
  for (const auto& [gid, fds] : groups) {
    w.U32(gid);
    w.U32(static_cast<uint32_t>(fds.size()));
    for (int32_t fd : fds) {
      w.I32(fd);
    }
  }
  w.U64(fork_seq);
  w.U8(in_signal ? 1 : 0);
  return w.Take();
}

KernelContext KernelContext::Decode(ByteView blob) {
  ByteReader r(blob);
  KernelContext k;
  k.body_context = r.Blob();
  k.next_fd = r.I32();
  k.next_group = r.U32();
  uint32_t n = r.U32();
  k.groups.resize(n);
  for (auto& [gid, fds] : k.groups) {
    gid = r.U32();
    uint32_t m = r.U32();
    fds.resize(m);
    for (int32_t& fd : fds) {
      fd = r.I32();
    }
  }
  k.fork_seq = r.U64();
  k.in_signal = r.U8() != 0;
  return k;
}

Bytes ChanCreate::Encode() const {
  ByteWriter w;
  w.U64(channel.value);
  w.U64(owner.value);
  w.U8(backup_entry ? 1 : 0);
  w.I32(fd);
  w.U64(peer_pid.value);
  w.U32(peer_primary_cluster);
  w.U32(peer_backup_cluster);
  w.U32(own_backup_cluster);
  w.U8(peer_kind);
  w.U8(peer_mode);
  w.U32(binding_tag);
  return w.Take();
}

ChanCreate ChanCreate::Decode(ByteView body) {
  ByteReader r(body);
  ChanCreate c;
  c.channel.value = r.U64();
  c.owner.value = r.U64();
  c.backup_entry = r.U8() != 0;
  c.fd = r.I32();
  c.peer_pid.value = r.U64();
  c.peer_primary_cluster = r.U32();
  c.peer_backup_cluster = r.U32();
  c.own_backup_cluster = r.U32();
  c.peer_kind = r.U8();
  c.peer_mode = r.U8();
  c.binding_tag = r.U32();
  return c;
}

Bytes OpenReplyBody::Encode() const {
  ByteWriter w;
  w.U64(request_cookie);
  w.I32(status);
  w.U64(channel.value);
  w.U64(peer_pid.value);
  w.U32(peer_primary_cluster);
  w.U32(peer_backup_cluster);
  w.U8(peer_kind);
  w.U8(peer_mode);
  return w.Take();
}

OpenReplyBody OpenReplyBody::Decode(ByteView body) {
  ByteReader r(body);
  OpenReplyBody o;
  o.request_cookie = r.U64();
  o.status = r.I32();
  o.channel.value = r.U64();
  o.peer_pid.value = r.U64();
  o.peer_primary_cluster = r.U32();
  o.peer_backup_cluster = r.U32();
  o.peer_kind = r.U8();
  o.peer_mode = r.U8();
  return o;
}

Bytes PageWriteBody::Encode() const {
  ByteWriter w;
  w.U64(pid.value);
  w.U32(page);
  w.Blob(content);
  return w.Take();
}

PageWriteBody PageWriteBody::Decode(ByteView body) {
  ByteReader r(body);
  PageWriteBody p;
  p.pid.value = r.U64();
  p.page = r.U32();
  p.content = r.Blob();
  return p;
}

Bytes PageRequestBody::Encode() const {
  ByteWriter w;
  w.U64(pid.value);
  w.U32(page);
  w.U32(reply_to);
  w.U64(cookie);
  return w.Take();
}

PageRequestBody PageRequestBody::Decode(ByteView body) {
  ByteReader r(body);
  PageRequestBody p;
  p.pid.value = r.U64();
  p.page = r.U32();
  p.reply_to = r.U32();
  p.cookie = r.U64();
  return p;
}

Bytes PageReplyBody::Encode() const {
  ByteWriter w;
  w.U64(pid.value);
  w.U32(page);
  w.U64(cookie);
  w.U8(known ? 1 : 0);
  w.Blob(content);
  return w.Take();
}

PageReplyBody PageReplyBody::Decode(ByteView body) {
  ByteReader r(body);
  PageReplyBody p;
  p.pid.value = r.U64();
  p.page = r.U32();
  p.cookie = r.U64();
  p.known = r.U8() != 0;
  p.content = r.Blob();
  return p;
}

void SavedQueueRecord::Serialize(ByteWriter& w) const {
  w.U64(channel.value);
  w.I32(fd);
  w.U64(peer_pid.value);
  w.U32(peer_primary_cluster);
  w.U32(peer_backup_cluster);
  w.U8(peer_kind);
  w.U8(peer_mode);
  w.U32(writes_since_sync);
  w.U32(static_cast<uint32_t>(queued.size()));
  for (const Bytes& m : queued) {
    w.Blob(m);
  }
}

SavedQueueRecord SavedQueueRecord::Deserialize(ByteReader& r) {
  SavedQueueRecord q;
  q.channel.value = r.U64();
  q.fd = r.I32();
  q.peer_pid.value = r.U64();
  q.peer_primary_cluster = r.U32();
  q.peer_backup_cluster = r.U32();
  q.peer_kind = r.U8();
  q.peer_mode = r.U8();
  q.writes_since_sync = r.U32();
  uint32_t n = r.U32();
  q.queued.resize(n);
  for (Bytes& m : q.queued) {
    m = r.Blob();
  }
  return q;
}

Bytes BackupCreateBody::Encode() const {
  ByteWriter w;
  w.U64(pid.value);
  w.U8(static_cast<uint8_t>(mode));
  w.U64(parent.value);
  w.U64(family_head.value);
  w.U32(primary_cluster);
  w.U8(has_sync ? 1 : 0);
  w.U8(is_server ? 1 : 0);
  w.U8(peripheral ? 1 : 0);
  w.U64(sync_seq);
  w.Blob(context);
  w.U32(sig_handler);
  w.Blob(exe);
  w.U32(static_cast<uint32_t>(fds.size()));
  for (const auto& [fd, chan] : fds) {
    w.I32(fd);
    w.U64(chan);
  }
  w.U32(static_cast<uint32_t>(queues.size()));
  for (const SavedQueueRecord& q : queues) {
    q.Serialize(w);
  }
  return w.Take();
}

BackupCreateBody BackupCreateBody::Decode(ByteView body) {
  ByteReader r(body);
  BackupCreateBody b;
  b.pid.value = r.U64();
  b.mode = static_cast<BackupMode>(r.U8());
  b.parent.value = r.U64();
  b.family_head.value = r.U64();
  b.primary_cluster = r.U32();
  b.has_sync = r.U8() != 0;
  b.is_server = r.U8() != 0;
  b.peripheral = r.U8() != 0;
  b.sync_seq = r.U64();
  b.context = r.Blob();
  b.sig_handler = r.U32();
  b.exe = r.Blob();
  uint32_t nfd = r.U32();
  b.fds.resize(nfd);
  for (auto& [fd, chan] : b.fds) {
    fd = r.I32();
    chan = r.U64();
  }
  uint32_t n = r.U32();
  b.queues.resize(n);
  for (SavedQueueRecord& q : b.queues) {
    q = SavedQueueRecord::Deserialize(r);
  }
  return b;
}

}  // namespace auragen
