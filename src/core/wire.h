// Message formats of the Auros message system (§5, §7.4).
//
// Every payload on the intercluster bus is one Msg: a fixed header followed
// by kind-specific bytes. The header carries the three-destination routing
// information of §5.1 — the clusters of the primary destination, of the
// destination's backup, and of the sender's backup — so a receiving
// executive processor can decide which of the three roles (or several at
// once, when roles co-reside) it plays for this message (§7.4.2).

#ifndef AURAGEN_SRC_CORE_WIRE_H_
#define AURAGEN_SRC_CORE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/codec.h"
#include "src/base/types.h"

namespace auragen {

enum class MsgKind : uint8_t {
  // --- channel traffic (three-way delivered, §5.1) ---
  kUser = 1,        // ordinary data written on a channel
  kOpenReply = 2,   // file server -> opener (+ backup): creates the backup
                    // routing entry for the new channel (§7.4.1)
  kSignal = 3,      // asynchronous signal on the signal channel (§7.5.2)
  kClose = 4,       // peer closed its end; reader sees EOF after draining

  // --- kernel control (cluster-addressed) ---
  kSync = 10,         // user-process sync record (§5.2, §7.8)
  kBirthNotice = 11,  // fork announcement to the family's backup cluster (§7.7)
  kExitNotice = 12,   // normal exit: dismantle the backup
  kCrashNotice = 13,  // a cluster is down; begin crash handling (§7.10.1)
  kHeartbeat = 14,    // liveness polling (§7.10)
  kBackupCreate = 15, // fullback: state shipment creating a replacement backup
  kBackupReady = 16,  // fullback: new backup in place; unfreeze channels
  kChanCreate = 17,   // fabricate routing entries for spawn-time server channels

  // --- paging traffic on the kernel<->page-server channel (§7.6) ---
  kPageWrite = 20,    // dirty page shipped at sync
  kPageRequest = 21,  // demand fault during/after recovery (§7.10.2)
  kPageReply = 22,

  // --- peripheral-server explicit sync (§7.9) ---
  kServerSync = 30,

  // --- §2 explicit-checkpointing baseline (src/baselines, experiment E2) ---
  kCheckpoint = 40,

  // --- §10 future-work extension: individual-process failure ---
  // "Hardware failures which do not affect all processes in a cluster will
  // not cause the cluster to crash, but will cause individual backups to be
  // brought up for the affected processes."
  kProcCrash = 50,
};

const char* MsgKindName(MsgKind kind);

// Fixed header. `channel` / `dst_pid` identify the destination routing
// entry; the three cluster fields drive delivery roles. Control messages use
// kNoChannel and address clusters directly via the frame target mask.
struct MsgHeader {
  MsgKind kind = MsgKind::kUser;
  Gpid src_pid;
  Gpid dst_pid;
  ChannelId channel;
  ClusterId dst_primary_cluster = kNoCluster;
  ClusterId dst_backup_cluster = kNoCluster;
  ClusterId src_backup_cluster = kNoCluster;

  void Serialize(ByteWriter& w) const;
  static MsgHeader Deserialize(ByteReader& r);
};

struct Msg {
  MsgHeader header;
  Bytes body;

  Bytes Encode() const;
  static Msg Decode(ByteView frame_payload);

  size_t ByteSize() const { return body.size() + 64; }
};

// Decode-once view of a frame payload (DESIGN.md §13). The executive parses
// the fixed header a single time per arriving frame; the body stays a
// non-owning cursor into the shared payload buffer, which the view keeps
// alive. Receivers copy bytes only at the point a queue genuinely takes
// ownership (ToOwned: primary read queue, backup saved queue).
struct MsgView {
  MsgHeader header;
  PayloadPtr payload;     // shared frame buffer; never mutated
  uint32_t body_off = 0;  // body location inside *payload
  uint32_t body_len = 0;

  ByteView body() const { return ByteView(payload->data() + body_off, body_len); }

  // The single legal copy point: materializes an owned Msg for a queue.
  Msg ToOwned() const;

  static MsgView Parse(const PayloadPtr& frame_payload);

  // Adapts a locally-built Msg (no frame involved) by moving its body into
  // the shared-payload plane — for kernel-internal self-delivery paths.
  static MsgView FromOwned(Msg&& m);
};

// --- kind-specific bodies ---

// kSync (§7.8): "all cluster-independent information kept about the
// process's state" plus per-channel deltas. `context` is the serialized body
// context (AVM registers or a native body's resume token); bulky state went
// separately as kPageWrite traffic.
struct SyncChannelRecord {
  ChannelId channel;
  Fd fd = kBadFd;
  bool opened_since_sync = false;
  bool closed_since_sync = false;
  uint32_t reads_since_sync = 0;
};

struct SyncRecord {
  Gpid pid;
  uint64_t sync_seq = 0;          // monotone per process
  bool first_sync = false;        // triggers backup-process creation (§7.7)
  Bytes context;                  // registers / native resume state (wrapped
                                  // in a KernelContext)
  uint32_t sig_handler = 0;       // signal disposition as of this sync
  uint64_t exec_us = 0;           // accounting info
  // Identity carried so a first sync can materialize the backup PCB.
  ClusterId backup_cluster = kNoCluster;  // who applies the PCB update
  ClusterId primary_cluster = kNoCluster;
  uint8_t mode = 0;               // BackupMode
  Gpid parent;
  Gpid family_head;
  std::vector<SyncChannelRecord> channels;
  // Async flush (§8.3): counted sends the primary made on each channel
  // between record build and record transmission. Those messages reach the
  // backup *before* this record, so the backup must keep exactly this much
  // duplicate-suppression budget (§5.4) instead of zeroing the counter.
  std::vector<std::pair<uint64_t, uint32_t>> writes_in_flight;

  Bytes Encode() const;
  static SyncRecord Decode(ByteView body);
};

// Kernel-held per-process state that must survive into the backup alongside
// the body context: descriptor allocation, bunch groups (§7.5.1), fork
// ordinal (§7.7), and the in-signal flag (§7.5.2). Wrapped around the body
// context inside SyncRecord::context.
struct KernelContext {
  Bytes body_context;
  int32_t next_fd = 0;
  uint32_t next_group = 1;
  std::vector<std::pair<uint32_t, std::vector<int32_t>>> groups;
  uint64_t fork_seq = 0;
  bool in_signal = false;

  Bytes Encode() const;
  static KernelContext Decode(ByteView blob);
};

// kBirthNotice (§7.7): enough to repeat the fork with the same identity, and
// to pre-create routing entries for fork-time channels.
struct BirthNotice {
  Gpid parent;
  Gpid child;
  uint64_t fork_seq = 0;          // ordinal of this fork at the parent
  uint8_t mode = 0;               // child's BackupMode
  Gpid family_head;
  std::vector<Bytes> chan_creates;  // encoded ChanCreate for fork channels

  Bytes Encode() const;
  static BirthNotice Decode(ByteView body);
};

// kChanCreate: instructs a cluster's executive to fabricate a routing entry.
// Used for spawn-time channels to system/peripheral servers and for backup
// entries announced by open replies and birth notices.
struct ChanCreate {
  ChannelId channel;
  Gpid owner;                     // process whose entry this is
  bool backup_entry = false;
  Fd fd = kBadFd;                 // owner-side fd binding (primary entries)
  Gpid peer_pid;
  ClusterId peer_primary_cluster = kNoCluster;
  ClusterId peer_backup_cluster = kNoCluster;
  ClusterId own_backup_cluster = kNoCluster;
  uint8_t peer_kind = 0;          // PeerKind: read semantics (§7.4.1 status)
  uint8_t peer_mode = 0;          // peer's BackupMode (crash patching, §7.10.1)
  uint32_t binding_tag = 0;       // server-side meaning (e.g. tty line)

  Bytes Encode() const;
  static ChanCreate Decode(ByteView body);
};

// kOpenReply body: the new channel's addressing, as seen by the opener.
struct OpenReplyBody {
  uint64_t request_cookie = 0;    // matches the open request
  int32_t status = 0;             // 0 ok, else -Errc
  ChannelId channel;              // new channel (when ok)
  Gpid peer_pid;
  ClusterId peer_primary_cluster = kNoCluster;
  ClusterId peer_backup_cluster = kNoCluster;
  uint8_t peer_kind = 0;          // PeerKind
  uint8_t peer_mode = 0;          // peer's BackupMode

  Bytes Encode() const;
  static OpenReplyBody Decode(ByteView body);
};

// kPageWrite / kPageReply payloads.
struct PageWriteBody {
  Gpid pid;
  PageNum page = 0;
  Bytes content;

  Bytes Encode() const;
  static PageWriteBody Decode(ByteView body);
};

struct PageRequestBody {
  Gpid pid;
  PageNum page = 0;
  ClusterId reply_to = kNoCluster;
  uint64_t cookie = 0;

  Bytes Encode() const;
  static PageRequestBody Decode(ByteView body);
};

struct PageReplyBody {
  Gpid pid;
  PageNum page = 0;
  uint64_t cookie = 0;
  bool known = false;             // false: zero-fill (never synced)
  Bytes content;

  Bytes Encode() const;
  static PageReplyBody Decode(ByteView body);
};

// kBackupCreate (§7.10.1 step 3): everything a cluster needs to become the
// new backup of a fullback process: last-sync PCB state plus the saved
// queues. Page data stays at the page server.
struct SavedQueueRecord {
  ChannelId channel;
  Fd fd = kBadFd;
  Gpid peer_pid;
  ClusterId peer_primary_cluster = kNoCluster;
  ClusterId peer_backup_cluster = kNoCluster;
  uint8_t peer_kind = 0;
  uint8_t peer_mode = 0;
  uint32_t writes_since_sync = 0;  // §5.4 suppression budget travels too
  std::vector<Bytes> queued;       // encoded Msgs, oldest first

  void Serialize(ByteWriter& w) const;
  static SavedQueueRecord Deserialize(ByteReader& r);
};

struct BackupCreateBody {
  Gpid pid;
  BackupMode mode = BackupMode::kQuarterback;
  Gpid parent;
  Gpid family_head;
  ClusterId primary_cluster = kNoCluster;
  bool has_sync = false;
  bool is_server = false;         // native system server (§7.6)
  bool peripheral = false;        // re-created *active* backup (§7.3 halfback
                                  // return-to-service); context = program state
  uint64_t sync_seq = 0;
  Bytes context;                  // KernelContext-wrapped body context
  uint32_t sig_handler = 0;
  Bytes exe;                      // serialized Executable (pre-first-sync restart)
  std::vector<std::pair<int32_t, uint64_t>> fds;  // fd -> channel as of sync
  std::vector<SavedQueueRecord> queues;

  Bytes Encode() const;
  static BackupCreateBody Decode(ByteView body);
};

}  // namespace auragen

#endif  // AURAGEN_SRC_CORE_WIRE_H_
