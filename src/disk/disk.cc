#include "src/disk/disk.h"

#include <memory>
#include <utility>

namespace auragen {

BlockDevice::BlockDevice(Engine& engine, DiskConfig config)
    : engine_(engine), config_(config), blocks_(config.num_blocks) {}

void BlockDevice::Read(BlockNum block, ReadCallback done) {
  AURAGEN_CHECK(block < config_.num_blocks) << "read past end of disk:" << block;
  Request req;
  req.is_write = false;
  req.block = block;
  req.read_done = std::move(done);
  queue_.push_back(std::move(req));
  if (!busy_) {
    StartNext();
  }
}

void BlockDevice::Write(BlockNum block, Bytes data, Callback done) {
  AURAGEN_CHECK(block < config_.num_blocks) << "write past end of disk:" << block;
  AURAGEN_CHECK(data.size() <= kBlockSize) << "block overflow:" << data.size();
  Request req;
  req.is_write = true;
  req.block = block;
  req.data = std::move(data);
  req.write_done = std::move(done);
  queue_.push_back(std::move(req));
  if (!busy_) {
    StartNext();
  }
}

void BlockDevice::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request req = std::move(queue_.front());
  queue_.pop_front();

  size_t bytes = req.is_write ? req.data.size() : kBlockSize;
  SimTime cost = ServiceTime(bytes);
  stats_.busy_us += cost;

  engine_.Schedule(cost, [this, req = std::move(req)]() mutable {
    if (failed_) {
      if (req.is_write) {
        req.write_done(Errc::kIo);
      } else {
        req.read_done(Errc::kIo);
      }
    } else if (req.is_write) {
      ++stats_.writes;
      stats_.bytes_written += req.data.size();
      blocks_[req.block] = std::move(req.data);
      req.write_done(OkResult());
    } else {
      ++stats_.reads;
      stats_.bytes_read += kBlockSize;
      req.read_done(Result<Bytes>(blocks_[req.block]));
    }
    StartNext();
  });
}

Bytes BlockDevice::PeekBlock(BlockNum block) const {
  AURAGEN_CHECK(block < config_.num_blocks);
  return blocks_[block];
}

void BlockDevice::PokeBlock(BlockNum block, const Bytes& data) {
  AURAGEN_CHECK(block < config_.num_blocks);
  AURAGEN_CHECK(data.size() <= kBlockSize);
  blocks_[block] = data;
}

MirroredDisk::MirroredDisk(Engine& engine, DiskConfig config, ClusterId port_a, ClusterId port_b)
    : drive0_(engine, config), drive1_(engine, config), port_a_(port_a), port_b_(port_b) {
  AURAGEN_CHECK(port_a != port_b) << "dual ports must reach distinct clusters";
}

void MirroredDisk::Read(BlockNum block, BlockDevice::ReadCallback done) {
  if (!drive0_.failed()) {
    drive0_.Read(block, std::move(done));
  } else if (!drive1_.failed()) {
    drive1_.Read(block, std::move(done));
  } else {
    done(Errc::kIo);
  }
}

void MirroredDisk::Write(BlockNum block, Bytes data, BlockDevice::Callback done) {
  // Duplex the write; report success when both healthy drives are done. A
  // failed drive is skipped — the mirror is then running unprotected, which
  // is fine under the single-failure model.
  struct Join {
    int pending = 0;
    Errc worst = Errc::kOk;
    BlockDevice::Callback done;
  };
  auto join = std::make_shared<Join>();
  join->done = std::move(done);

  auto arm = [&](BlockDevice& d) {
    if (d.failed()) {
      return;
    }
    ++join->pending;
    d.Write(block, data, [join](Result<void> r) {
      if (!r.ok()) {
        join->worst = r.error();
      }
      if (--join->pending == 0) {
        join->done(join->worst == Errc::kOk ? Result<void>() : Result<void>(join->worst));
      }
    });
  };
  arm(drive0_);
  arm(drive1_);
  if (join->pending == 0) {
    join->done(Errc::kIo);  // both drives dead
  }
}

}  // namespace auragen
