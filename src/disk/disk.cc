#include "src/disk/disk.h"

#include <memory>
#include <utility>

#include "src/trace/trace.h"

namespace auragen {

BlockDevice::BlockDevice(Engine& engine, DiskConfig config)
    : engine_(engine), config_(config), blocks_(config.num_blocks) {}

void BlockDevice::Read(BlockNum block, ReadCallback done) {
  AURAGEN_CHECK(block < config_.num_blocks) << "read past end of disk:" << block;
  Request req;
  req.op = Op::kRead;
  req.block = block;
  req.read_done = std::move(done);
  Enqueue(std::move(req));
}

void BlockDevice::Write(BlockNum block, Bytes data, Callback done) {
  AURAGEN_CHECK(block < config_.num_blocks) << "write past end of disk:" << block;
  AURAGEN_CHECK(data.size() <= kBlockSize) << "block overflow:" << data.size();
  Request req;
  req.op = Op::kWrite;
  req.block = block;
  req.data = std::move(data);
  req.write_done = std::move(done);
  Enqueue(std::move(req));
}

void BlockDevice::WriteMulti(DiskWriteBatch batch, Callback done) {
  AURAGEN_CHECK(!batch.empty()) << "empty disk write batch";
  for (const auto& [block, data] : batch) {
    AURAGEN_CHECK(block < config_.num_blocks) << "write past end of disk:" << block;
    AURAGEN_CHECK(data.size() <= kBlockSize) << "block overflow:" << data.size();
  }
  Request req;
  req.op = Op::kWriteMulti;
  req.batch = std::move(batch);
  req.write_done = std::move(done);
  Enqueue(std::move(req));
}

void BlockDevice::Enqueue(Request req) {
  req.enqueued_at = engine_.Now();
  queue_.push_back(std::move(req));
  const uint64_t depth = queue_.size() + (busy_ ? 1 : 0);
  if (depth > stats_.max_queue_depth) stats_.max_queue_depth = depth;
  if (!busy_) {
    StartNext();
  }
}

void BlockDevice::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const uint64_t depth = queue_.size();
  active_ = std::move(queue_.front());
  queue_.pop_front();

  const SimTime wait = engine_.Now() - active_.enqueued_at;
  stats_.queue_wait_us += wait;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kDiskQueueWait, kNoCluster, trace_gpid_,
                    trace_channel_, wait, depth);
  }

  size_t bytes = 0;
  switch (active_.op) {
    case Op::kRead:
      bytes = kBlockSize;
      break;
    case Op::kWrite:
      bytes = active_.data.size();
      break;
    case Op::kWriteMulti:
      for (const auto& [block, data] : active_.batch) bytes += data.size();
      break;
  }
  SimTime cost = ServiceTime(bytes);
  stats_.busy_us += cost;

  engine_.Schedule(cost, [this] { Complete(); });
}

void BlockDevice::Complete() {
  Request req = std::move(active_);
  if (failed_) {
    if (req.op == Op::kRead) {
      req.read_done(Errc::kIo);
    } else {
      req.write_done(Errc::kIo);
    }
  } else {
    switch (req.op) {
      case Op::kRead:
        ++stats_.reads;
        stats_.bytes_read += kBlockSize;
        req.read_done(Result<Bytes>(blocks_[req.block]));
        break;
      case Op::kWrite:
        ++stats_.writes;
        stats_.bytes_written += req.data.size();
        blocks_[req.block] = std::move(req.data);
        req.write_done(OkResult());
        break;
      case Op::kWriteMulti:
        ++stats_.batches;
        for (auto& [block, data] : req.batch) {
          ++stats_.writes;
          stats_.bytes_written += data.size();
          blocks_[block] = std::move(data);
        }
        req.write_done(OkResult());
        break;
    }
  }
  StartNext();
}

Bytes BlockDevice::PeekBlock(BlockNum block) const {
  AURAGEN_CHECK(block < config_.num_blocks);
  return blocks_[block];
}

void BlockDevice::PokeBlock(BlockNum block, const Bytes& data) {
  AURAGEN_CHECK(block < config_.num_blocks);
  AURAGEN_CHECK(data.size() <= kBlockSize);
  blocks_[block] = data;
}

MirroredDisk::MirroredDisk(Engine& engine, DiskConfig config, ClusterId port_a, ClusterId port_b)
    : drive0_(engine, config), drive1_(engine, config), port_a_(port_a), port_b_(port_b) {
  AURAGEN_CHECK(port_a != port_b) << "dual ports must reach distinct clusters";
}

void MirroredDisk::Read(BlockNum block, BlockDevice::ReadCallback done) {
  if (!drive0_.failed()) {
    drive0_.Read(block, std::move(done));
  } else if (!drive1_.failed()) {
    drive1_.Read(block, std::move(done));
  } else {
    done(Errc::kIo);
  }
}

// Duplex a write request; report success when both healthy drives are done.
// A failed drive is skipped — the mirror is then running unprotected, which
// is fine under the single-failure model.
template <typename Submit>
void MirroredDisk::DuplexWrite(BlockDevice::Callback done, Submit submit) {
  struct Join {
    int pending = 0;
    Errc worst = Errc::kOk;
    BlockDevice::Callback done;
  };
  auto join = std::make_shared<Join>();
  join->done = std::move(done);

  auto arm = [&](BlockDevice& d) {
    if (d.failed()) {
      return;
    }
    ++join->pending;
    submit(d, BlockDevice::Callback([join](Result<void> r) {
             if (!r.ok()) {
               join->worst = r.error();
             }
             if (--join->pending == 0) {
               join->done(join->worst == Errc::kOk ? Result<void>()
                                                   : Result<void>(join->worst));
             }
           }));
  };
  arm(drive0_);
  arm(drive1_);
  if (join->pending == 0) {
    join->done(Errc::kIo);  // both drives dead
  }
}

void MirroredDisk::Write(BlockNum block, Bytes data, BlockDevice::Callback done) {
  DuplexWrite(std::move(done), [&](BlockDevice& d, BlockDevice::Callback cb) {
    d.Write(block, data, std::move(cb));
  });
}

void MirroredDisk::WriteMulti(DiskWriteBatch batch, BlockDevice::Callback done) {
  DuplexWrite(std::move(done), [&](BlockDevice& d, BlockDevice::Callback cb) {
    d.WriteMulti(batch, std::move(cb));
  });
}

}  // namespace auragen
