// Simulated disks: block devices, dual-ported attachment, mirrored pairs.
//
// §7.1: "All peripherals are dual-ported and connected to two clusters. In
// addition, disks are connected in pairs to facilitate mirrored files."
// Peripheral servers (file/raw/page) run in one of a disk's two clusters,
// their backup in the other (§7.3 halfback placement); after a cluster crash
// the surviving cluster keeps a path to the same blocks. The page server's
// page accounts and the file server's shadow-block filesystem both sit on
// these devices.
//
// Service-time model: fixed seek + per-byte transfer. Requests on one device
// are serialized (single actuator); mirrored writes go to both devices in
// parallel and complete when the slower finishes.

#ifndef AURAGEN_SRC_DISK_DISK_H_
#define AURAGEN_SRC_DISK_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/base/codec.h"
#include "src/base/result.h"
#include "src/base/types.h"
#include "src/sim/engine.h"

namespace auragen {

inline constexpr uint32_t kBlockSize = 512;

struct DiskConfig {
  uint32_t num_blocks = 16384;       // 8 MiB default
  SimTime seek_us = 200;             // per request
  double us_per_byte = 0.5;          // ~2 MB/s, era-appropriate
};

struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  SimTime busy_us = 0;
};

// One physical drive. Requests complete asynchronously on the engine in
// submission order.
class BlockDevice {
 public:
  using Callback = std::function<void(Result<void>)>;
  using ReadCallback = std::function<void(Result<Bytes>)>;

  BlockDevice(Engine& engine, DiskConfig config);

  void Read(BlockNum block, ReadCallback done);
  void Write(BlockNum block, Bytes data, Callback done);

  // Synchronous accessors for test setup/inspection only; they bypass the
  // timing model and must not be used by simulated servers.
  Bytes PeekBlock(BlockNum block) const;
  void PokeBlock(BlockNum block, const Bytes& data);

  void Fail() { failed_ = true; }
  void Restore() { failed_ = false; }
  bool failed() const { return failed_; }

  uint32_t num_blocks() const { return config_.num_blocks; }
  const DiskStats& stats() const { return stats_; }

 private:
  struct Request {
    bool is_write;
    BlockNum block;
    Bytes data;
    Callback write_done;
    ReadCallback read_done;
  };

  void StartNext();
  SimTime ServiceTime(size_t bytes) const {
    return config_.seek_us + static_cast<SimTime>(static_cast<double>(bytes) * config_.us_per_byte);
  }

  Engine& engine_;
  DiskConfig config_;
  std::vector<Bytes> blocks_;
  std::deque<Request> queue_;
  bool busy_ = false;
  bool failed_ = false;
  DiskStats stats_;
};

// A mirrored pair of drives presented as one logical device (§7.1). Writes
// are duplexed; reads are served by the first healthy drive. The pair stays
// available through any single drive failure.
class MirroredDisk {
 public:
  MirroredDisk(Engine& engine, DiskConfig config, ClusterId port_a, ClusterId port_b);

  void Read(BlockNum block, BlockDevice::ReadCallback done);
  void Write(BlockNum block, Bytes data, BlockDevice::Callback done);

  // Dual-ported attachment: which clusters have a hardware path.
  bool AttachedTo(ClusterId cluster) const { return cluster == port_a_ || cluster == port_b_; }
  ClusterId port_a() const { return port_a_; }
  ClusterId port_b() const { return port_b_; }
  ClusterId OtherPort(ClusterId cluster) const { return cluster == port_a_ ? port_b_ : port_a_; }

  BlockDevice& drive(int i) { return i == 0 ? drive0_ : drive1_; }
  uint32_t num_blocks() const { return drive0_.num_blocks(); }

  uint64_t bytes_written() const {
    return drive0_.stats().bytes_written + drive1_.stats().bytes_written;
  }

 private:
  BlockDevice drive0_;
  BlockDevice drive1_;
  ClusterId port_a_;
  ClusterId port_b_;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_DISK_DISK_H_
