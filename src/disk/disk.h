// Simulated disks: block devices, dual-ported attachment, mirrored pairs.
//
// §7.1: "All peripherals are dual-ported and connected to two clusters. In
// addition, disks are connected in pairs to facilitate mirrored files."
// Peripheral servers (file/raw/page) run in one of a disk's two clusters,
// their backup in the other (§7.3 halfback placement); after a cluster crash
// the surviving cluster keeps a path to the same blocks. The page server's
// page accounts and the file server's journaled filesystem both sit on
// these devices.
//
// Service-time model: fixed seek + per-byte transfer. Requests on one device
// are serialized (single actuator); mirrored writes go to both devices in
// parallel and complete when the slower finishes. A multi-block write batch
// (WriteMulti) is one request — one seek, then the blocks stream — which is
// what makes the file server's group commit pay off.

#ifndef AURAGEN_SRC_DISK_DISK_H_
#define AURAGEN_SRC_DISK_DISK_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/base/codec.h"
#include "src/base/result.h"
#include "src/base/task.h"
#include "src/base/types.h"
#include "src/sim/engine.h"

namespace auragen {

class Tracer;

inline constexpr uint32_t kBlockSize = 512;

// An ordered set of block writes submitted as one disk transaction.
using DiskWriteBatch = std::vector<std::pair<BlockNum, Bytes>>;

struct DiskConfig {
  uint32_t num_blocks = 16384;       // 8 MiB default
  SimTime seek_us = 200;             // per request
  double us_per_byte = 0.5;          // ~2 MB/s, era-appropriate
};

struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;               // blocks written (a batch counts each)
  uint64_t batches = 0;              // WriteMulti requests
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  SimTime busy_us = 0;
  // Queueing: time requests sat behind the single actuator, and the deepest
  // the queue ever got (in-flight request included). Group commit shows up
  // here first — fewer, larger requests mean less waiting.
  SimTime queue_wait_us = 0;
  uint64_t max_queue_depth = 0;
};

// One physical drive. Requests complete asynchronously on the engine in
// submission order.
class BlockDevice {
 public:
  using Callback = MoveFn<void(Result<void>)>;
  using ReadCallback = MoveFn<void(Result<Bytes>)>;

  BlockDevice(Engine& engine, DiskConfig config);

  void Read(BlockNum block, ReadCallback done);
  void Write(BlockNum block, Bytes data, Callback done);
  // One seek for the whole batch; all blocks land atomically at completion
  // (block writes are device-atomic, and a cluster crash never stops a
  // request already accepted by the peripheral — torn states arise at
  // request granularity, not mid-block).
  void WriteMulti(DiskWriteBatch batch, Callback done);

  // Synchronous accessors for test setup/inspection only; they bypass the
  // timing model and must not be used by simulated servers.
  Bytes PeekBlock(BlockNum block) const;
  void PokeBlock(BlockNum block, const Bytes& data);

  void Fail() { failed_ = true; }
  void Restore() { failed_ = false; }
  bool failed() const { return failed_; }

  // Optional queue-wait tracing (kDiskQueueWait). `gpid` labels the bound
  // server, `channel` the drive index within a mirror.
  void set_tracer(Tracer* tracer, uint64_t gpid, uint64_t channel) {
    tracer_ = tracer;
    trace_gpid_ = gpid;
    trace_channel_ = channel;
  }

  uint32_t num_blocks() const { return config_.num_blocks; }
  const DiskStats& stats() const { return stats_; }

 private:
  enum class Op : uint8_t { kRead, kWrite, kWriteMulti };

  struct Request {
    Op op;
    BlockNum block = 0;
    Bytes data;
    DiskWriteBatch batch;
    Callback write_done;
    ReadCallback read_done;
    SimTime enqueued_at = 0;
  };

  void StartNext();
  void Complete();
  void Enqueue(Request req);
  SimTime ServiceTime(size_t bytes) const {
    return config_.seek_us + static_cast<SimTime>(static_cast<double>(bytes) * config_.us_per_byte);
  }

  Engine& engine_;
  DiskConfig config_;
  std::vector<Bytes> blocks_;
  std::deque<Request> queue_;
  // The single in-flight request lives here (not in the engine closure) so
  // the scheduled completion event captures only `this` and stays inside
  // Task's inline buffer — zero allocations per request.
  Request active_;
  bool busy_ = false;
  bool failed_ = false;
  DiskStats stats_;
  Tracer* tracer_ = nullptr;
  uint64_t trace_gpid_ = 0;
  uint64_t trace_channel_ = 0;
};

// A mirrored pair of drives presented as one logical device (§7.1). Writes
// are duplexed; reads are served by the first healthy drive. The pair stays
// available through any single drive failure.
class MirroredDisk {
 public:
  MirroredDisk(Engine& engine, DiskConfig config, ClusterId port_a, ClusterId port_b);

  void Read(BlockNum block, BlockDevice::ReadCallback done);
  void Write(BlockNum block, Bytes data, BlockDevice::Callback done);
  void WriteMulti(DiskWriteBatch batch, BlockDevice::Callback done);

  // Dual-ported attachment: which clusters have a hardware path.
  bool AttachedTo(ClusterId cluster) const { return cluster == port_a_ || cluster == port_b_; }
  ClusterId port_a() const { return port_a_; }
  ClusterId port_b() const { return port_b_; }
  ClusterId OtherPort(ClusterId cluster) const { return cluster == port_a_ ? port_b_ : port_a_; }

  BlockDevice& drive(int i) { return i == 0 ? drive0_ : drive1_; }
  uint32_t num_blocks() const { return drive0_.num_blocks(); }

  void set_tracer(Tracer* tracer, uint64_t gpid) {
    drive0_.set_tracer(tracer, gpid, 0);
    drive1_.set_tracer(tracer, gpid, 1);
  }

  uint64_t bytes_written() const {
    return drive0_.stats().bytes_written + drive1_.stats().bytes_written;
  }

 private:
  template <typename Submit>
  void DuplexWrite(BlockDevice::Callback done, Submit submit);

  BlockDevice drive0_;
  BlockDevice drive1_;
  ClusterId port_a_;
  ClusterId port_b_;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_DISK_DISK_H_
