#include "src/fault/campaign.h"

#include <atomic>
#include <sstream>
#include <thread>
#include <utility>

#include "src/avm/assembler.h"
#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/machine/machine.h"
#include "src/workload/guest_programs.h"
#include "src/workload/kv_service.h"

namespace auragen {

std::vector<ProcPlacement> CampaignWorkload::Placements() const {
  std::vector<ProcPlacement> out;
  for (const Pair& p : pairs) {
    out.push_back(p.producer);
    out.push_back(p.consumer);
  }
  return out;
}

CampaignWorkload MakeCampaignWorkload(uint64_t seed, uint32_t num_clusters) {
  Rng rng(seed);
  CampaignWorkload wl;
  int n = static_cast<int>(rng.Range(2, 4));
  for (int i = 0; i < n; ++i) {
    CampaignWorkload::Pair pair;
    auto place = [&](ProcPlacement& p) {
      p.primary = static_cast<ClusterId>(rng.Below(num_clusters));
      p.backup =
          static_cast<ClusterId>((p.primary + 1 + rng.Below(num_clusters - 1)) % num_clusters);
    };
    place(pair.producer);
    place(pair.consumer);
    pair.items = static_cast<int>(rng.Range(5, 12));
    pair.pace = static_cast<int>(rng.Range(800, 3200));
    pair.tty_line = static_cast<uint32_t>(i);
    wl.pairs.push_back(pair);
  }
  return wl;
}

FaultPlan MakeScenarioPlan(uint64_t seed, const CampaignOptions& options) {
  CampaignWorkload wl = MakeCampaignWorkload(seed, options.num_clusters);
  FaultPlanInputs inputs;
  inputs.num_clusters = options.num_clusters;
  inputs.num_segments = options.num_segments;
  inputs.procs = wl.Placements();
  return MakeFaultPlan(seed, inputs);
}

namespace {

// Routes the campaign's fabric shape into the machine configuration. With
// one segment this is a no-op: config.topology stays empty and the machine
// is the pre-fabric single-bus build, bit for bit.
void ApplyFabric(MachineOptions& mo, const CampaignOptions& opt) {
  if (opt.num_segments <= 1) {
    return;
  }
  AURAGEN_CHECK(opt.num_clusters % opt.num_segments == 0)
      << "campaign fabric: " << opt.num_clusters << " clusters do not divide into "
      << opt.num_segments << " equal segments";
  mo.config.topology =
      Topology::Uniform(opt.num_segments, opt.num_clusters / opt.num_segments, mo.config.bus)
          .WithSwitchLatency(opt.switch_latency_us);
}

}  // namespace

namespace {

// Same worker programs as the randomized crash sweep: a producer streams
// numbered words over a named channel at a seeded pace; the consumer folds
// each into a letter and prints it, so order, content, and count are all
// observable on the terminal.
Executable Producer(int index, int items, int pace) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 6
    sys open
    mov r10, r0
    li r8, 1
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, )" + std::to_string(pace) + R"(
    blt r9, r11, pace
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(items + 1) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:f)" + std::to_string(index) + R"("
buf: .word 0
)");
}

Executable Consumer(int index, int items) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 6
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    li r3, 26
    mod r2, r2, r3
    li r3, 97
    add r2, r2, r3
    li r11, out
    stb r2, r11, 0
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(items) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:f)" + std::to_string(index) + R"("
buf: .word 0
out: .byte 0
)");
}

void FoldBytes(uint64_t& h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;  // FNV-1a prime
  }
}

struct RunOutcome {
  bool completed = false;
  bool livelock = false;
  bool converged = false;
  uint64_t duplicates = 0;
  bool tty_dups_ok = false;
  uint64_t workload_digest = 0;
  TraceDigest trace_digest;
  std::map<uint64_t, int32_t> exit_statuses;
  std::string tty_concat;  // per-line outputs joined with '|', for messages
  uint64_t takeovers = 0;
  uint64_t crashes_handled = 0;
};

RunOutcome RunWorkload(const CampaignWorkload& wl, uint64_t seed, BackupMode mode,
                       const FaultPlan* plan, const CampaignOptions& opt) {
  MachineOptions mo;
  mo.config.num_clusters = opt.num_clusters;
  ApplyFabric(mo, opt);
  mo.config.sync_reads_limit = 4;  // tight sync cadence: more recovery points
  mo.config.sync_policy = opt.sync_policy;
  mo.config.page_shards = opt.page_shards;
  mo.seed = seed;
  mo.engine_threads = opt.machine_threads;
  // Ring-mode flight recorder: whole-run digest for the determinism replay
  // at bounded memory, and a tail of events if a scenario needs diagnosis.
  mo.trace.enabled = true;
  mo.trace.unbounded = false;
  mo.trace.ring_capacity = 4096;
  Machine machine(mo);
  machine.set_dispatch_limit(opt.dispatch_limit);
  machine.Boot();

  std::vector<Gpid> victims;
  for (size_t i = 0; i < wl.pairs.size(); ++i) {
    const CampaignWorkload::Pair& pair = wl.pairs[i];
    Machine::UserSpawnOptions popts;
    popts.mode = mode;
    popts.backup_cluster = pair.producer.backup;
    Machine::UserSpawnOptions copts;
    copts.mode = mode;
    copts.backup_cluster = pair.consumer.backup;
    copts.with_tty = true;
    copts.tty_line = pair.tty_line;
    victims.push_back(machine.SpawnUserProgram(
        pair.producer.primary, Producer(static_cast<int>(i), pair.items, pair.pace), popts));
    victims.push_back(machine.SpawnUserProgram(pair.consumer.primary,
                                               Consumer(static_cast<int>(i), pair.items),
                                               copts));
  }

  InjectionLog log;
  std::vector<ProcPlacement> placements;
  if (plan != nullptr) {
    placements = wl.Placements();
    InjectFaultPlan(machine, *plan, victims, placements, &log);
  }

  RunOutcome out;
  out.completed = machine.RunUntilAllExited(opt.run_cap_us);
  machine.Settle();
  out.livelock = machine.dispatch_limit_hit();
  out.duplicates = machine.TtyDuplicates();
  out.tty_dups_ok = log.tty_primary_crashed;
  out.exit_statuses = machine.exit_statuses();
  out.takeovers = machine.metrics().takeovers;
  out.crashes_handled = machine.metrics().crashes_handled;
  out.trace_digest = machine.tracer()->digest();

  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (size_t i = 0; i < wl.pairs.size(); ++i) {
    std::string line = machine.TtyOutput(static_cast<uint32_t>(i));
    FoldBytes(h, line.data(), line.size());
    FoldBytes(h, "|", 1);
    out.tty_concat += line;
    out.tty_concat += '|';
  }
  for (const auto& [pid, status] : out.exit_statuses) {
    FoldBytes(h, &pid, sizeof(pid));
    FoldBytes(h, &status, sizeof(status));
  }
  out.workload_digest = h;

  out.converged = true;
  for (ClusterId c = 0; c < opt.num_clusters; ++c) {
    if (machine.ClusterAlive(c) && !machine.kernel(c).Quiescent()) {
      out.converged = false;
    }
  }
  return out;
}

}  // namespace

ScenarioResult RunScenario(uint64_t seed, const CampaignOptions& opt) {
  CampaignWorkload wl = MakeCampaignWorkload(seed, opt.num_clusters);
  FaultPlan plan = MakeScenarioPlan(seed, opt);
  BackupMode mode = plan.fullback ? BackupMode::kFullback : BackupMode::kQuarterback;

  ScenarioResult result;
  result.seed = seed;
  result.scenario = plan.Describe();

  auto fail = [&](const std::string& why) {
    result.ok = false;
    if (!result.failure.empty()) {
      result.failure += "; ";
    }
    result.failure += why;
  };

  RunOutcome ref = RunWorkload(wl, seed, mode, nullptr, opt);
  if (!ref.completed) {
    fail(ref.livelock ? "reference run hit the dispatch limit" : "reference run stalled");
    return result;
  }
  if (ref.duplicates != 0) {
    fail("reference run produced duplicate tty records");
    return result;
  }

  RunOutcome got = RunWorkload(wl, seed, mode, &plan, opt);
  result.takeovers = got.takeovers;
  result.crashes_handled = got.crashes_handled;
  result.tty_duplicates = got.duplicates;
  result.trace_digest = got.trace_digest;
  if (got.livelock) {
    fail("livelock: dispatch limit hit");
  } else if (!got.completed) {
    fail("stalled: a workload process never exited");
  } else {
    if (got.exit_statuses != ref.exit_statuses) {
      fail("exit statuses diverge from the fault-free reference");
    }
    if (got.workload_digest != ref.workload_digest) {
      std::ostringstream os;
      os << "terminal output diverges from the fault-free reference (want \""
         << ref.tty_concat << "\" got \"" << got.tty_concat << "\")";
      fail(os.str());
    }
    if (got.duplicates != 0 && !got.tty_dups_ok) {
      fail("duplicate tty records without a tty-server crash");
    }
    if (!got.converged) {
      fail("a surviving cluster did not converge (kernel not quiescent after settle)");
    }
  }
  if (result.ok && opt.check_determinism) {
    RunOutcome replay = RunWorkload(wl, seed, mode, &plan, opt);
    if (replay.trace_digest != got.trace_digest) {
      fail("faulted run is nondeterministic: replay trace digest differs");
    }
  }
  return result;
}

namespace {

struct KvRunOutcome {
  bool completed = false;
  bool livelock = false;
  bool converged = false;
  uint64_t mismatches = 0;
  uint64_t takeovers = 0;
  uint64_t crashes_handled = 0;
  TraceDigest trace_digest;
};

KvRunOutcome RunKvWorkload(const workload::KvOptions& kv, uint64_t seed,
                           ClusterId victim, SimTime crash_rel_us,
                           const CampaignOptions& opt) {
  MachineOptions mo;
  mo.config.num_clusters = opt.num_clusters;
  ApplyFabric(mo, opt);
  mo.config.sync_reads_limit = 8;  // tight cadence: more recovery points
  mo.config.sync_policy = opt.sync_policy;
  mo.config.page_shards = opt.page_shards;
  mo.seed = seed;
  mo.engine_threads = opt.machine_threads;
  mo.trace.enabled = true;
  mo.trace.unbounded = false;
  mo.trace.ring_capacity = 4096;
  Machine machine(mo);
  machine.set_dispatch_limit(opt.dispatch_limit);
  machine.Boot();

  workload::KvDeployment d = workload::DeployKv(machine, kv);
  if (crash_rel_us != 0) {
    machine.CrashClusterAt(machine.Now() + crash_rel_us, victim);
  }

  KvRunOutcome out;
  out.completed = machine.RunUntil(
      [&] { return workload::KvClientsDone(machine, d); }, opt.run_cap_us);
  machine.Settle();
  out.livelock = machine.dispatch_limit_hit();
  out.mismatches = workload::KvMismatchTotal(machine, d);
  out.takeovers = machine.metrics().takeovers;
  out.crashes_handled = machine.metrics().crashes_handled;
  out.trace_digest = machine.tracer()->digest();
  out.converged = true;
  for (ClusterId c = 0; c < opt.num_clusters; ++c) {
    if (machine.ClusterAlive(c) && !machine.kernel(c).Quiescent()) {
      out.converged = false;
    }
  }
  return out;
}

}  // namespace

ScenarioResult RunKvScenario(uint64_t seed, const CampaignOptions& opt) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  workload::KvOptions kv;
  kv.sessions = static_cast<uint32_t>(rng.Range(8, 25));
  kv.partitions = static_cast<uint32_t>(rng.Range(2, 5));
  kv.requests_per_session = static_cast<uint32_t>(rng.Range(4, 11));
  kv.think_spin = static_cast<uint32_t>(rng.Range(8, 65));
  kv.seed = seed;
  const ClusterId victim = static_cast<ClusterId>(rng.Below(opt.num_clusters));
  // Boot + deploy land around t=20ms; the request window opens ~1-2ms after
  // that and spans several ms at these sizes, so this offset hits anywhere
  // from "channels still opening" to "mid-stream" — both interesting.
  const SimTime crash_rel_us = rng.Range(500, 9000);

  ScenarioResult result;
  result.seed = seed;
  {
    std::ostringstream os;
    os << "kv-cluster-crash sessions=" << kv.sessions << " partitions="
       << kv.partitions << " requests=" << kv.requests_per_session
       << " think=" << kv.think_spin << " victim=c" << victim
       << " at=+" << crash_rel_us << "us";
    result.scenario = os.str();
  }
  auto fail = [&](const std::string& why) {
    result.ok = false;
    if (!result.failure.empty()) {
      result.failure += "; ";
    }
    result.failure += why;
  };

  KvRunOutcome ref = RunKvWorkload(kv, seed, 0, 0, opt);
  if (!ref.completed) {
    fail(ref.livelock ? "reference run hit the dispatch limit" : "reference run stalled");
    return result;
  }
  if (ref.mismatches != 0) {
    fail("reference run had verification mismatches");
    return result;
  }

  KvRunOutcome got = RunKvWorkload(kv, seed, victim, crash_rel_us, opt);
  result.takeovers = got.takeovers;
  result.crashes_handled = got.crashes_handled;
  result.trace_digest = got.trace_digest;
  if (got.livelock) {
    fail("livelock: dispatch limit hit");
  } else if (!got.completed) {
    fail("stalled: a session never finished");
  } else {
    if (got.mismatches != 0) {
      std::ostringstream os;
      os << "acked-write loss: " << got.mismatches << " verification mismatches";
      fail(os.str());
    }
    if (!got.converged) {
      fail("a surviving cluster did not converge (kernel not quiescent after settle)");
    }
  }
  if (result.ok && opt.check_determinism) {
    KvRunOutcome replay = RunKvWorkload(kv, seed, victim, crash_rel_us, opt);
    if (replay.trace_digest != got.trace_digest) {
      fail("faulted run is nondeterministic: replay trace digest differs");
    }
  }
  return result;
}

namespace {

struct FileWorkload {
  struct Churner {
    std::string name;
    int records = 0;
    int pace = 0;
    ProcPlacement placement;
  };
  std::vector<Churner> churners;

  std::vector<ProcPlacement> Placements() const {
    std::vector<ProcPlacement> out;
    for (const Churner& c : churners) {
      out.push_back(c.placement);
    }
    return out;
  }
};

struct FileRunOutcome {
  bool completed = false;
  bool livelock = false;
  bool converged = false;
  std::map<uint64_t, int32_t> exit_statuses;
  uint64_t takeovers = 0;
  uint64_t crashes_handled = 0;
  TraceDigest trace_digest;
};

FileRunOutcome RunFileWorkload(const FileWorkload& wl, uint64_t seed, BackupMode mode,
                               const FaultPlan* plan, const CampaignOptions& opt) {
  MachineOptions mo;
  mo.config.num_clusters = opt.num_clusters;
  ApplyFabric(mo, opt);
  mo.config.sync_reads_limit = 4;
  mo.config.sync_policy = opt.sync_policy;
  mo.config.page_shards = opt.page_shards;
  // Tight group-commit cadence: the crash window is dense with log appends,
  // commit records, checkpoints, and syncs.
  mo.file_server.sync_every_ops = 4;
  mo.seed = seed;
  mo.engine_threads = opt.machine_threads;
  mo.trace.enabled = true;
  mo.trace.unbounded = false;
  mo.trace.ring_capacity = 4096;
  Machine machine(mo);
  machine.set_dispatch_limit(opt.dispatch_limit);
  machine.Boot();

  std::vector<Gpid> victims;
  for (const FileWorkload::Churner& c : wl.churners) {
    Machine::UserSpawnOptions popts;
    popts.mode = mode;
    popts.backup_cluster = c.placement.backup;
    victims.push_back(machine.SpawnUserProgram(
        c.placement.primary, workload::FileChurner(c.name, c.records, c.pace), popts));
  }

  InjectionLog log;
  std::vector<ProcPlacement> placements;
  if (plan != nullptr) {
    placements = wl.Placements();
    InjectFaultPlan(machine, *plan, victims, placements, &log);
  }

  FileRunOutcome out;
  out.completed = machine.RunUntilAllExited(opt.run_cap_us);
  machine.Settle();
  out.livelock = machine.dispatch_limit_hit();
  out.exit_statuses = machine.exit_statuses();
  out.takeovers = machine.metrics().takeovers;
  out.crashes_handled = machine.metrics().crashes_handled;
  out.trace_digest = machine.tracer()->digest();
  out.converged = true;
  for (ClusterId c = 0; c < opt.num_clusters; ++c) {
    if (machine.ClusterAlive(c) && !machine.kernel(c).Quiescent()) {
      out.converged = false;
    }
  }
  return out;
}

}  // namespace

ScenarioResult RunFileScenario(uint64_t seed, const CampaignOptions& opt) {
  // Decorrelated from the generic and KV families.
  Rng rng(seed ^ 0xc6a4a7935bd1e995ull);
  FileWorkload wl;
  int n = static_cast<int>(rng.Range(2, 4));
  for (int i = 0; i < n; ++i) {
    FileWorkload::Churner c;
    c.name = "jrnl" + std::to_string(i) + ".dat";
    c.records = static_cast<int>(rng.Range(6, 16));
    c.pace = static_cast<int>(rng.Range(500, 3000));
    c.placement.primary = static_cast<ClusterId>(rng.Below(opt.num_clusters));
    c.placement.backup = static_cast<ClusterId>(
        (c.placement.primary + 1 + rng.Below(opt.num_clusters - 1)) % opt.num_clusters);
    wl.churners.push_back(std::move(c));
  }

  // Alternate the two journal scenarios so both get half of every campaign;
  // the shapes draw from the same stream as MakeFaultPlan would.
  FaultPlanInputs inputs;
  inputs.num_clusters = opt.num_clusters;
  inputs.num_segments = opt.num_segments;
  inputs.procs = wl.Placements();
  FaultPlan plan;
  if (seed % 2 == 0) {
    plan.scenario = ScenarioKind::kCrashMidCommit;
    plan.fullback = rng.Chance(0.5);
    plan.actions = {FaultAction{FaultKind::kCrashCluster, rng.Range(20'000, 200'000),
                                inputs.server_home_a, 0}};
  } else {
    plan.scenario = ScenarioKind::kCrashDuringReplay;
    plan.fullback = true;
    SimTime t = rng.Range(15'000, 80'000);
    SimTime back = t + rng.Range(25'000, 60'000);
    plan.actions = {
        FaultAction{FaultKind::kCrashCluster, t, inputs.server_home_a, 0},
        FaultAction{FaultKind::kRestoreCluster, back, inputs.server_home_a, 0},
        FaultAction{FaultKind::kCrashCluster, back + rng.Range(15'000, 40'000),
                    inputs.server_home_b, 0}};
  }
  BackupMode mode = plan.fullback ? BackupMode::kFullback : BackupMode::kQuarterback;

  ScenarioResult result;
  result.seed = seed;
  {
    std::ostringstream os;
    os << plan.Describe() << " churners=" << n;
    result.scenario = os.str();
  }
  auto fail = [&](const std::string& why) {
    result.ok = false;
    if (!result.failure.empty()) {
      result.failure += "; ";
    }
    result.failure += why;
  };

  FileRunOutcome ref = RunFileWorkload(wl, seed, mode, nullptr, opt);
  if (!ref.completed) {
    fail(ref.livelock ? "reference run hit the dispatch limit" : "reference run stalled");
    return result;
  }
  for (const auto& [pid, status] : ref.exit_statuses) {
    if (status != 0) {
      fail("reference run had read-back mismatches");
      return result;
    }
  }

  FileRunOutcome got = RunFileWorkload(wl, seed, mode, &plan, opt);
  result.takeovers = got.takeovers;
  result.crashes_handled = got.crashes_handled;
  result.trace_digest = got.trace_digest;
  if (got.livelock) {
    fail("livelock: dispatch limit hit");
  } else if (!got.completed) {
    fail("stalled: a churner never exited (torn metadata or lost reply)");
  } else {
    uint64_t mismatches = 0;
    for (const auto& [pid, status] : got.exit_statuses) {
      mismatches += static_cast<uint64_t>(status < 0 ? -status : status);
    }
    if (mismatches != 0) {
      std::ostringstream os;
      os << "acked-write loss: " << mismatches << " read-back mismatches";
      fail(os.str());
    }
    if (got.exit_statuses != ref.exit_statuses) {
      fail("exit statuses diverge from the fault-free reference");
    }
    if (!got.converged) {
      fail("a surviving cluster did not converge (kernel not quiescent after settle)");
    }
  }
  if (result.ok && opt.check_determinism) {
    FileRunOutcome replay = RunFileWorkload(wl, seed, mode, &plan, opt);
    if (replay.trace_digest != got.trace_digest) {
      fail("faulted run is nondeterministic: replay trace digest differs");
    }
  }
  return result;
}

CampaignSummary RunCampaign(uint64_t first_seed, uint64_t count, const CampaignOptions& opt,
                            const std::function<void(const ScenarioResult&)>& on_result) {
  std::vector<ScenarioResult> results(count);
  auto run_one = [&](uint64_t index) {
    uint64_t seed = first_seed + index;
    results[index] = opt.file_workload ? RunFileScenario(seed, opt)
                     : opt.kv_workload ? RunKvScenario(seed, opt)
                                       : RunScenario(seed, opt);
  };

  uint32_t workers = std::max<uint32_t>(1, opt.engine_threads);
  workers = static_cast<uint32_t>(std::min<uint64_t>(workers, count));
  if (workers <= 1) {
    for (uint64_t i = 0; i < count; ++i) {
      run_one(i);
    }
  } else {
    // Seeds are independent deterministic simulations; a shared ticket
    // spreads them over the pool. Each result lands in its own slot, so the
    // aggregation below sees the exact sequential outcome, in seed order.
    std::atomic<uint64_t> next{0};
    auto pull = [&] {
      uint64_t i;
      while ((i = next.fetch_add(1, std::memory_order_relaxed)) < count) {
        run_one(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (uint32_t t = 0; t + 1 < workers; ++t) {
      pool.emplace_back(pull);
    }
    pull();
    for (std::thread& t : pool) {
      t.join();
    }
  }

  CampaignSummary summary;
  for (const ScenarioResult& r : results) {
    summary.run++;
    // First token of Describe() is the scenario kind.
    summary.by_scenario[r.scenario.substr(0, r.scenario.find(' '))]++;
    if (!r.ok) {
      summary.failed++;
      summary.failures.push_back(r);
    }
    if (on_result) {
      on_result(r);
    }
  }
  return summary;
}

}  // namespace auragen
