// Deterministic fault-injection campaign (ROADMAP: crash-path validation at
// scale). Each seed names one complete scenario: a seeded workload of
// producer/consumer pairs spread over the clusters, plus a seeded fault plan
// (fault_plan.h). The scenario runs three times:
//
//   1. fault-free reference — must complete; its terminal output and exit
//      statuses are folded into a workload digest;
//   2. faulted run — the plan fires; afterwards every invariant below is
//      checked;
//   3. determinism replay (optional) — the faulted run again; its full
//      machine trace digest must match run 2 exactly.
//
// Invariants checked after the faulted run:
//   * no AURAGEN_CHECK fires (a fired check aborts the campaign process);
//   * the run completes — every workload process exits — without tripping
//     the engine's dispatch limit (livelock guard);
//   * exit statuses and the workload digest equal the fault-free reference:
//     recovery is invisible to the application (§6);
//   * no duplicate terminal records unless a crash hit the cluster hosting
//     the tty server's primary (§7.9's at-least-once window);
//   * all surviving clusters converge: every live kernel is quiescent after
//     the machine settles (no stuck outgoing items, no leaked held_for
//     messages, no runnable work).

#ifndef AURAGEN_SRC_FAULT_CAMPAIGN_H_
#define AURAGEN_SRC_FAULT_CAMPAIGN_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/fault/fault_plan.h"
#include "src/trace/trace.h"

namespace auragen {

struct CampaignOptions {
  uint32_t num_clusters = 4;
  // Fabric segments (Topology::Uniform over num_clusters, which must divide
  // evenly). 1 = the pre-fabric single-bus machine, bit-identical to older
  // campaigns; >1 runs every scenario on the segmented fabric and arms the
  // kSegmentPartition scenario.
  uint32_t num_segments = 1;
  SimTime switch_latency_us = 4;
  SimTime run_cap_us = 600'000'000;
  // Dispatched-event ceiling per run; generous (normal runs are a few
  // hundred thousand events) so only a genuine livelock trips it.
  uint64_t dispatch_limit = 100'000'000;
  bool check_determinism = true;
  // Sync pipeline under test: every run of the campaign (reference, faulted,
  // replay) uses the same policy, so digests compare within one mode.
  SyncPolicy sync_policy;
  uint32_t page_shards = 1;
  // Scenario family: false = producer/consumer pairs under seeded fault
  // plans; true = the KV serving workload under seeded cluster crashes
  // (RunKvScenario), with the no-acked-write-lost invariant.
  bool kv_workload = false;
  // Third family: file-append churners against the journaled file server
  // under kCrashMidCommit / kCrashDuringReplay plans (RunFileScenario).
  // Takes precedence over kv_workload when both are set.
  bool file_workload = false;
  // Worker threads running seeds concurrently. Each seed is still simulated
  // by its own deterministic single-machine runs, so every ScenarioResult —
  // including its trace digest — is bit-identical to a threads=1 campaign;
  // only wall clock changes. Results are aggregated and reported in seed
  // order regardless of completion order.
  uint32_t engine_threads = 1;
  // Worker threads *inside* each machine run (ShardedEngine over the
  // ShardPlan layout). Orthogonal to engine_threads: that one spreads seeds
  // over a pool, this one parallelizes the shards of a single simulation.
  // Digests are bit-identical at any value — the CI cross-check compares a
  // parallel campaign against machine_threads=1 seed for seed.
  uint32_t machine_threads = 1;
};

struct ScenarioResult {
  uint64_t seed = 0;
  bool ok = true;
  std::string scenario;  // FaultPlan::Describe()
  std::string failure;   // empty when ok
  uint64_t takeovers = 0;
  uint64_t crashes_handled = 0;
  uint64_t tty_duplicates = 0;
  // Machine trace digest of the faulted run: the cross-mode equivalence
  // oracle (a parallel campaign must reproduce it seed for seed).
  TraceDigest trace_digest;
};

ScenarioResult RunScenario(uint64_t seed, const CampaignOptions& options);

// KV-serving variant (src/workload): each seed configures a small
// partitioned KV deployment plus a seeded mid-run cluster crash. The
// invariant under test is end-to-end: every session's verified private
// writes survive the crash — a lost acked write surfaces as a nonzero
// client verification count (exit status), a stuck session as an
// incomplete run. Runs reference / faulted / optional determinism replay
// like RunScenario.
ScenarioResult RunKvScenario(uint64_t seed, const CampaignOptions& options);

// Journaled-file-server variant: each seed spawns a few FileChurner guests
// appending sequence records to distinct files (tight group-commit cadence),
// under a kCrashMidCommit plan (even seeds: the file server's home dies at
// 1µs grain over the commit window) or a kCrashDuringReplay plan (odd
// seeds: crash / restore / crash-the-takeover, forcing a second boot-time
// log replay). Invariants: the run completes, every churner's read-back
// verification exits 0 (no acked write lost), exit statuses match the
// fault-free reference (no torn metadata — a corrupt filesystem would stall
// or mis-verify), survivors converge, and the faulted run replays
// bit-identically.
ScenarioResult RunFileScenario(uint64_t seed, const CampaignOptions& options);

struct CampaignSummary {
  uint64_t run = 0;
  uint64_t failed = 0;
  std::map<std::string, uint64_t> by_scenario;  // scenario kind name -> runs
  std::vector<ScenarioResult> failures;
};

// Runs seeds [first_seed, first_seed + count). `on_result` (if set) fires
// after every scenario, pass or fail.
CampaignSummary RunCampaign(uint64_t first_seed, uint64_t count,
                            const CampaignOptions& options,
                            const std::function<void(const ScenarioResult&)>& on_result = {});

// Exposed for tests: the seeded workload and plan a scenario will use.
struct CampaignWorkload {
  struct Pair {
    ProcPlacement producer;
    ProcPlacement consumer;
    int items = 0;
    int pace = 0;
    uint32_t tty_line = 0;
  };
  std::vector<Pair> pairs;

  // Spawn-order placements (producer then consumer per pair), matching the
  // victim list handed to InjectFaultPlan.
  std::vector<ProcPlacement> Placements() const;
};

CampaignWorkload MakeCampaignWorkload(uint64_t seed, uint32_t num_clusters);
FaultPlan MakeScenarioPlan(uint64_t seed, const CampaignOptions& options);

}  // namespace auragen

#endif  // AURAGEN_SRC_FAULT_CAMPAIGN_H_
