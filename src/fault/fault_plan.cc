#include "src/fault/fault_plan.h"

#include <algorithm>
#include <sstream>

#include "src/base/rng.h"
#include "src/machine/machine.h"

namespace auragen {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashCluster:
      return "crash";
    case FaultKind::kKillProcess:
      return "kill";
    case FaultKind::kRestoreCluster:
      return "restore";
    case FaultKind::kFailBusLine:
      return "bus-line-fail";
    case FaultKind::kRestoreBusLine:
      return "bus-line-restore";
    case FaultKind::kFailSwitch:
      return "switch-fail";
    case FaultKind::kRestoreSwitch:
      return "switch-restore";
  }
  return "?";
}

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kSingleCrash:
      return "single-crash";
    case ScenarioKind::kProcessKill:
      return "process-kill";
    case ScenarioKind::kCrashNearSync:
      return "crash-near-sync";
    case ScenarioKind::kTightDoubleCrash:
      return "tight-double-crash";
    case ScenarioKind::kCrashDuringRecovery:
      return "crash-during-recovery";
    case ScenarioKind::kReplacementBackupCrash:
      return "replacement-backup-crash";
    case ScenarioKind::kCrashRestoreCrash:
      return "crash-restore-crash";
    case ScenarioKind::kRestoreRecrash:
      return "restore-recrash";
    case ScenarioKind::kBusDualLineOutage:
      return "bus-dual-line-outage";
    case ScenarioKind::kSegmentPartition:
      return "segment-partition";
    case ScenarioKind::kCrashMidCommit:
      return "crash-mid-commit";
    case ScenarioKind::kCrashDuringReplay:
      return "crash-during-replay";
    case ScenarioKind::kNumScenarioKinds:
      break;
  }
  return "?";
}

std::string FaultPlan::Describe() const {
  std::ostringstream os;
  os << ScenarioKindName(scenario) << (fullback ? " [fullback]" : " [quarterback]");
  for (const FaultAction& a : actions) {
    os << " " << FaultKindName(a.kind);
    if (a.kind == FaultKind::kKillProcess) {
      os << " victim#" << a.victim;
    } else if (a.kind == FaultKind::kFailBusLine || a.kind == FaultKind::kRestoreBusLine) {
      os << " line" << a.cluster;
    } else if (a.kind == FaultKind::kFailSwitch || a.kind == FaultKind::kRestoreSwitch) {
      os << " seg" << a.cluster;
    } else {
      os << " c" << a.cluster;
    }
    os << "@" << a.at;
  }
  return os.str();
}

namespace {

// True when clusters `a` and `b` may be dead at the same instant without
// breaking the single-failure guarantee for the servers or any workload
// process (see the header comment).
bool ConcurrentDeathOk(const FaultPlanInputs& in, ClusterId a, ClusterId b) {
  if (a == b) {
    return false;
  }
  if ((a == in.server_home_a && b == in.server_home_b) ||
      (a == in.server_home_b && b == in.server_home_a)) {
    return false;
  }
  for (const ProcPlacement& p : in.procs) {
    if ((p.primary == a && p.backup == b) || (p.primary == b && p.backup == a)) {
      return false;
    }
  }
  return true;
}

// Mirrors MachineEnv::PlaceNewBackup for the moment right after `primary`
// died and its process was taken over at `takeover`: lowest-numbered live
// cluster other than the takeover cluster itself.
ClusterId PredictReplacementBackup(const FaultPlanInputs& in, ClusterId primary,
                                   ClusterId takeover) {
  for (ClusterId c = 0; c < in.num_clusters; ++c) {
    if (c != primary && c != takeover) {
      return c;
    }
  }
  return kNoCluster;
}

FaultAction Crash(ClusterId cluster, SimTime at) {
  return FaultAction{FaultKind::kCrashCluster, at, cluster, 0};
}

FaultAction Restore(ClusterId cluster, SimTime at) {
  return FaultAction{FaultKind::kRestoreCluster, at, cluster, 0};
}

FaultAction BusFail(int line, SimTime at) {
  return FaultAction{FaultKind::kFailBusLine, at, static_cast<ClusterId>(line), 0};
}

FaultAction BusRestore(int line, SimTime at) {
  return FaultAction{FaultKind::kRestoreBusLine, at, static_cast<ClusterId>(line), 0};
}

FaultAction SwitchFail(SegmentId segment, SimTime at) {
  return FaultAction{FaultKind::kFailSwitch, at, static_cast<ClusterId>(segment), 0};
}

FaultAction SwitchRestore(SegmentId segment, SimTime at) {
  return FaultAction{FaultKind::kRestoreSwitch, at, static_cast<ClusterId>(segment), 0};
}

void DegradeToSingleCrash(FaultPlan& plan, Rng& rng, uint32_t num_clusters) {
  plan.scenario = ScenarioKind::kSingleCrash;
  plan.actions = {Crash(static_cast<ClusterId>(rng.Below(num_clusters)),
                        rng.Range(15'000, 120'000))};
}

}  // namespace

FaultPlan MakeFaultPlan(uint64_t seed, const FaultPlanInputs& in) {
  // Decorrelate from the workload generator, which is seeded with the same
  // campaign seed.
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xFA017ull);
  FaultPlan plan;
  plan.scenario = static_cast<ScenarioKind>(
      rng.Below(static_cast<uint64_t>(ScenarioKind::kNumScenarioKinds)));

  auto any_cluster = [&] { return static_cast<ClusterId>(rng.Below(in.num_clusters)); };

  switch (plan.scenario) {
    case ScenarioKind::kSingleCrash: {
      plan.fullback = rng.Chance(0.5);
      plan.actions = {Crash(any_cluster(), rng.Range(15'000, 120'000))};
      break;
    }

    case ScenarioKind::kProcessKill: {
      plan.fullback = rng.Chance(0.5);
      if (in.procs.empty()) {
        DegradeToSingleCrash(plan, rng, in.num_clusters);
        break;
      }
      FaultAction a;
      a.kind = FaultKind::kKillProcess;
      a.victim = static_cast<uint32_t>(rng.Below(in.procs.size()));
      a.at = rng.Range(10'000, 120'000);
      plan.actions = {a};
      break;
    }

    case ScenarioKind::kCrashNearSync: {
      // Same shape as kSingleCrash but sampled at 1µs grain over the window
      // where the workload syncs constantly, so over a campaign the instant
      // lands in every phase of §7.8's page-ship / sync-message / staging
      // protocol — including between a page ship and its sync message.
      plan.fullback = rng.Chance(0.5);
      plan.actions = {Crash(any_cluster(), rng.Range(20'000, 200'000))};
      break;
    }

    case ScenarioKind::kTightDoubleCrash:
    case ScenarioKind::kCrashDuringRecovery: {
      plan.fullback = true;
      std::vector<std::pair<ClusterId, ClusterId>> pairs;
      for (ClusterId a = 0; a < in.num_clusters; ++a) {
        for (ClusterId b = 0; b < in.num_clusters; ++b) {
          if (ConcurrentDeathOk(in, a, b)) {
            pairs.emplace_back(a, b);
          }
        }
      }
      if (pairs.empty()) {
        DegradeToSingleCrash(plan, rng, in.num_clusters);
        break;
      }
      auto [first, second] = pairs[rng.Below(pairs.size())];
      SimTime t = rng.Range(20'000, 100'000);
      // Tight: both deaths inside one heartbeat/detection window, so peers
      // see back-to-back crash notices and the second arrives while the
      // first crash's scan is still pending. During-recovery: the second
      // death lands while takeover/rollforward/re-backup for the first is
      // still in flight.
      SimTime delta = plan.scenario == ScenarioKind::kTightDoubleCrash
                          ? rng.Range(1, 3'000)
                          : rng.Range(12'000, 40'000);
      plan.actions = {Crash(first, t), Crash(second, t + delta)};
      break;
    }

    case ScenarioKind::kReplacementBackupCrash: {
      plan.fullback = true;
      std::vector<std::pair<ClusterId, ClusterId>> choices;  // (primary, replacement)
      for (const ProcPlacement& p : in.procs) {
        ClusterId repl = PredictReplacementBackup(in, p.primary, p.backup);
        if (repl != kNoCluster && ConcurrentDeathOk(in, p.primary, repl)) {
          choices.emplace_back(p.primary, repl);
        }
      }
      if (choices.empty()) {
        DegradeToSingleCrash(plan, rng, in.num_clusters);
        break;
      }
      auto [primary, repl] = choices[rng.Below(choices.size())];
      SimTime t = rng.Range(20'000, 90'000);
      // The replacement dies between the takeover that chose it (detection
      // at t+timeout) and shortly after its kBackupReady has propagated —
      // covering both the stale-ready and the lost-fresh-backup windows.
      plan.actions = {Crash(primary, t),
                      Crash(repl, t + 12'000 + rng.Range(2'000, 18'000))};
      break;
    }

    case ScenarioKind::kCrashRestoreCrash: {
      plan.fullback = true;
      ClusterId a = any_cluster();
      ClusterId b = static_cast<ClusterId>((a + 1 + rng.Below(in.num_clusters - 1)) %
                                           in.num_clusters);
      SimTime t = rng.Range(15'000, 80'000);
      SimTime restored = t + rng.Range(60'000, 120'000);
      plan.actions = {Crash(a, t), Restore(a, restored),
                      Crash(b, restored + rng.Range(30'000, 80'000))};
      break;
    }

    case ScenarioKind::kRestoreRecrash: {
      plan.fullback = true;
      ClusterId a = any_cluster();
      SimTime t = rng.Range(15'000, 80'000);
      SimTime restored = t + rng.Range(60'000, 120'000);
      plan.actions = {Crash(a, t), Restore(a, restored),
                      Crash(a, restored + rng.Range(5'000, 25'000))};
      break;
    }

    case ScenarioKind::kBusDualLineOutage: {
      // §7.1's double fault: both lines of the dual bus die back-to-back.
      // Nothing crosses the bus until a restore, so heartbeats queue in the
      // urgent lane — the dark window stays well under the 12ms heartbeat
      // timeout so no peer falsely declares a cluster dead, and on restore
      // the queued heartbeats must drain ahead of the data backlog.
      plan.fullback = rng.Chance(0.5);
      SimTime t = rng.Range(20'000, 100'000);
      SimTime d1 = rng.Range(1, 500);        // second line dies mid-window
      // A segmented fabric drains the blackout backlog slower than the
      // single bus: a cross-segment frame transmits on its origin bus, then
      // re-arbitrates at every target segment behind that segment's own
      // backlog (fabric.h), roughly doubling the queued work per bus. The
      // tolerated dark window is therefore shorter on multi-segment
      // topologies — same draw count either way, so single-segment plans
      // are bit-identical to the pre-fabric campaign.
      SimTime outage = rng.Range(500, in.num_segments > 1 ? 4'000 : 8'000);
      int first_back = rng.Chance(0.5) ? 0 : 1;
      plan.actions = {BusFail(0, t), BusFail(1, t + d1),
                      BusRestore(first_back, t + d1 + outage),
                      BusRestore(1 - first_back, t + d1 + outage + rng.Range(0, 20'000))};
      break;
    }

    case ScenarioKind::kSegmentPartition: {
      // A segment's switch dies and returns inside the heartbeat timeout
      // (12ms): the segment is dark to the rest of the fabric, cross-segment
      // frames hold at the switch and the trunk, and the drain on restore
      // must reorder nothing — no peer may declare a false crash, no acked
      // cross-segment write may be lost.
      plan.fullback = rng.Chance(0.5);
      if (in.num_segments < 2) {
        DegradeToSingleCrash(plan, rng, in.num_clusters);
        break;
      }
      SegmentId seg = static_cast<SegmentId>(rng.Below(in.num_segments));
      SimTime t = rng.Range(20'000, 100'000);
      SimTime outage = rng.Range(1'000, 5'500);
      plan.actions = {SwitchFail(seg, t), SwitchRestore(seg, t + outage)};
      break;
    }

    case ScenarioKind::kCrashMidCommit: {
      // Like kCrashNearSync, but aimed at the file server's home so the
      // 1µs-grain instant sweeps the journal commit pipeline (log append →
      // commit record → checkpoint → sync) across a campaign.
      plan.fullback = rng.Chance(0.5);
      plan.actions = {Crash(in.server_home_a, rng.Range(20'000, 200'000))};
      break;
    }

    case ScenarioKind::kCrashDuringReplay: {
      // The file server's home dies (takeover boots the server from the
      // dual-ported disk on the other home, replaying the log if the crash
      // tore a commit), comes back after detection + takeover have run,
      // and then the takeover home dies once the §7.3 re-backup to the
      // restored home is in place — forcing a second boot-from-disk whose
      // replay runs amid the recovery traffic. The two homes are never
      // dead at the same instant, and each failure lands only after the
      // previous one's re-protection (the paper's §6 guarantee).
      plan.fullback = true;
      SimTime t = rng.Range(15'000, 80'000);
      SimTime back = t + rng.Range(25'000, 60'000);
      plan.actions = {Crash(in.server_home_a, t), Restore(in.server_home_a, back),
                      Crash(in.server_home_b, back + rng.Range(15'000, 40'000))};
      break;
    }

    case ScenarioKind::kNumScenarioKinds:
      DegradeToSingleCrash(plan, rng, in.num_clusters);
      break;
  }

  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) { return x.at < y.at; });
  return plan;
}

void InjectFaultPlan(Machine& machine, const FaultPlan& plan,
                     const std::vector<Gpid>& victims,
                     const std::vector<ProcPlacement>& placements,
                     InjectionLog* log) {
  // Action times are relative to injection (Boot() has already advanced the
  // simulated clock). Faults are machine-level interventions that reach into
  // several shards (kernel state, bus line state), so they fire as control
  // events: between windows, with every shard parked at the fault instant.
  const SimTime base = machine.Now();
  for (size_t i = 0; i < plan.actions.size(); ++i) {
    const FaultAction action = plan.actions[i];
    uint32_t index = static_cast<uint32_t>(i);
    // Resolve kill targets now: the action closures outlive the caller's
    // vectors.
    Gpid victim_pid;
    ClusterId victim_home = kNoCluster;
    if (action.kind == FaultKind::kKillProcess && action.victim < victims.size()) {
      victim_pid = victims[action.victim];
      victim_home = placements[action.victim].primary;
    }
    machine.ScheduleControlAt(base + action.at, [&machine, action, index, victim_pid,
                                                 victim_home, log] {
      auto record = [&](ClusterId cluster) {
        if (log != nullptr) {
          log->actions_fired++;
        }
        if (machine.tracer() != nullptr) {
          machine.tracer()->Record(TraceEventKind::kFaultInject, cluster, 0, 0,
                                   static_cast<uint64_t>(action.kind), index);
        }
      };
      switch (action.kind) {
        case FaultKind::kCrashCluster:
          if (!machine.ClusterAlive(action.cluster)) {
            return;
          }
          if (machine.tty_server_addr().primary == action.cluster && log != nullptr) {
            log->tty_primary_crashed = true;
          }
          record(action.cluster);
          machine.CrashCluster(action.cluster);
          break;
        case FaultKind::kRestoreCluster:
          if (machine.ClusterAlive(action.cluster)) {
            return;
          }
          record(action.cluster);
          machine.RestoreCluster(action.cluster);
          break;
        case FaultKind::kKillProcess: {
          if (victim_home == kNoCluster || !machine.ClusterAlive(victim_home)) {
            return;
          }
          record(victim_home);
          machine.FailProcess(victim_home, victim_pid);
          break;
        }
        case FaultKind::kFailBusLine: {
          const int line = static_cast<int>(action.cluster);
          if (!machine.bus().line_ok(line)) {
            return;
          }
          record(kNoCluster);
          machine.FailBusLine(line);
          break;
        }
        case FaultKind::kRestoreBusLine: {
          const int line = static_cast<int>(action.cluster);
          if (machine.bus().line_ok(line)) {
            return;
          }
          record(kNoCluster);
          machine.RestoreBusLine(line);
          break;
        }
        case FaultKind::kFailSwitch: {
          const SegmentId seg = static_cast<SegmentId>(action.cluster);
          if (machine.bus().num_segments() < 2 || !machine.SwitchOk(seg)) {
            return;
          }
          record(kNoCluster);
          machine.FailSwitch(seg);
          break;
        }
        case FaultKind::kRestoreSwitch: {
          const SegmentId seg = static_cast<SegmentId>(action.cluster);
          if (machine.bus().num_segments() < 2 || machine.SwitchOk(seg)) {
            return;
          }
          record(kNoCluster);
          machine.RestoreSwitch(seg);
          break;
        }
      }
    });
  }
}

}  // namespace auragen
