// Seeded fault plans: deterministic schedules of cluster crashes, cluster
// restores, and individual-process kills, shaped into the failure scenarios
// §6-§7.10 claims the message system survives. A plan is a pure function of
// (seed, workload placement); the same seed always produces the same
// scenario, the same victims, and the same instants, so a failing campaign
// seed is a complete reproduction recipe.
//
// The generator only emits *survivable* plans: the paper's guarantee is
// single-failure tolerance plus whatever re-protection (fullback replacement
// backups, halfback return-to-service, lost-backup rebuild) restores between
// failures. Concretely:
//   * the two server home clusters are never dead at the same time (their
//     peripheral servers' disks are dual-ported only between them, §7.9);
//   * a tight double crash never covers both the primary and the backup of
//     any workload process;
//   * well-spaced multi-crash scenarios run the workload in fullback mode so
//     protection is re-established before the next failure lands.
// Scenario shapes that cannot be made survivable under the given placements
// degrade to a single crash (the plan says so in Describe()).

#ifndef AURAGEN_SRC_FAULT_FAULT_PLAN_H_
#define AURAGEN_SRC_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "src/base/types.h"

namespace auragen {

class Machine;
class Tracer;

enum class FaultKind : uint8_t {
  kCrashCluster = 0,   // fail-stop of a whole processing unit (§7.10)
  kKillProcess = 1,    // §10 extension: isolatable fault kills one process
  kRestoreCluster = 2, // the unit returns to service (§7.3 halfback)
  kFailBusLine = 3,    // one line of the dual bus dies (§7.1); `cluster`
                       // carries the line number (0 or 1)
  kRestoreBusLine = 4, // the line returns to service
  kFailSwitch = 5,     // a fabric segment's switch node dies; `cluster`
                       // carries the segment id (multi-segment topologies)
  kRestoreSwitch = 6,  // the switch returns; held frames drain FIFO
};
const char* FaultKindName(FaultKind kind);

enum class ScenarioKind : uint8_t {
  kSingleCrash = 0,         // one cluster dies at a random instant
  kProcessKill,             // one workload process dies (FailProcess)
  kCrashNearSync,           // fine-grained instant in the sync-dense window
  kTightDoubleCrash,        // two clusters die within one detection window
  kCrashDuringRecovery,     // second cluster dies while the first crash's
                            // handling/rollforward is still in progress
  kReplacementBackupCrash,  // the freshly chosen replacement-backup cluster
                            // of a fullback takeover dies
  kCrashRestoreCrash,       // crash A, restore A, then crash B
  kRestoreRecrash,          // crash A, restore A, crash A again while the
                            // §7.3 re-backup traffic is in flight
  kBusDualLineOutage,       // both bus lines die back-to-back, then come
                            // back; queued traffic (heartbeats first) must
                            // drain without any peer declaring a false crash
  kSegmentPartition,        // a fabric segment's switch dies and returns
                            // inside the heartbeat timeout: the segment is
                            // isolated, cross-segment frames hold at the
                            // switch and trunk, and on restore they drain
                            // FIFO — no acked write lost, no false crash
                            // declared, remote primaries re-reached.
                            // Degrades to kSingleCrash on one segment.
  kCrashMidCommit,          // the file server's home cluster dies at 1µs
                            // grain over the commit-dense window, so over a
                            // campaign the instant lands in every phase of
                            // the journaled commit: between the log append
                            // and the commit record (torn batch, must be
                            // discarded), between the record and the
                            // checkpoint (committed, must be replayed), and
                            // mid-checkpoint
  kCrashDuringReplay,       // crash the file server's home, restore it,
                            // then crash the takeover home shortly after —
                            // the server boots from disk again while the
                            // previous incarnation's log replay / re-backup
                            // traffic may still be in flight
  kNumScenarioKinds,
};
const char* ScenarioKindName(ScenarioKind kind);

struct FaultAction {
  FaultKind kind = FaultKind::kCrashCluster;
  SimTime at = 0;
  ClusterId cluster = kNoCluster;  // crash / restore target, or bus line 0/1
  uint32_t victim = 0;             // kKillProcess: index into the victim list
};

// Where one workload process runs and is backed up at spawn time.
struct ProcPlacement {
  ClusterId primary = kNoCluster;
  ClusterId backup = kNoCluster;
};

struct FaultPlanInputs {
  uint32_t num_clusters = 4;
  // Fabric segments (Topology::num_segments()). 1 = the pre-fabric machine:
  // switch scenarios degrade and plans are unchanged bit for bit.
  uint32_t num_segments = 1;
  // Home clusters of the system/peripheral servers; at most one of the two
  // may be dead at any instant.
  ClusterId server_home_a = 0;
  ClusterId server_home_b = 1;
  std::vector<ProcPlacement> procs;  // order matches the victim pid list
};

struct FaultPlan {
  ScenarioKind scenario = ScenarioKind::kSingleCrash;
  // Protection mode the scenario requires of the workload: multi-failure
  // shapes need fullback so replacement backups keep processes protected
  // between failures; single-failure shapes draw quarterback or fullback.
  bool fullback = false;
  std::vector<FaultAction> actions;  // sorted by `at`

  std::string Describe() const;
};

// Deterministic in (seed, inputs).
FaultPlan MakeFaultPlan(uint64_t seed, const FaultPlanInputs& inputs);

// Filled in as the plan fires (pure function of machine state, so identical
// across same-seed runs).
struct InjectionLog {
  // A crash hit the cluster currently hosting the tty server's primary:
  // the §7.9 at-least-once window applies and duplicate tty records are
  // acceptable (content must still be equal after dedup).
  bool tty_primary_crashed = false;
  uint32_t actions_fired = 0;
};

// Schedules every action of `plan` as machine control events. `victims` and
// `placements` resolve kKillProcess actions (pid and the cluster it was
// spawned on). Actions against already-dead (or, for restore, alive)
// clusters are skipped at fire time. Records kFaultInject trace events when
// the machine has a tracer.
void InjectFaultPlan(Machine& machine, const FaultPlan& plan,
                     const std::vector<Gpid>& victims,
                     const std::vector<ProcPlacement>& placements,
                     InjectionLog* log);

}  // namespace auragen

#endif  // AURAGEN_SRC_FAULT_FAULT_PLAN_H_
