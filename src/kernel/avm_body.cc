#include "src/kernel/avm_body.h"

#include <utility>

namespace auragen {

AvmBody::AvmBody(const Executable& exe) {
  for (PageNum p = 0; p < exe.NumPages(); ++p) {
    mem_.InstallPageDirty(p, exe.PageContent(p));
  }
  ctx_.pc = exe.entry;
  ctx_.regs[kSpReg] = kStackTop;
}

BodyRun AvmBody::Run(uint64_t budget) {
  AURAGEN_CHECK(!awaiting_completion_) << "Run before CompleteSyscall";
  uint64_t work = 0;

  // Apply a deferred read-data copy first; it may fault and retry.
  if (pending_copy_.has_value()) {
    if (!pending_copy_->data.empty()) {
      GuestMemory::Access a = mem_.WriteRange(pending_copy_->addr, pending_copy_->data);
      if (a == GuestMemory::Access::kFault) {
        BodyRun r;
        r.kind = BodyRun::Kind::kPageFault;
        r.fault_page = mem_.fault_page();
        r.work = 0;
        return r;
      }
      if (a == GuestMemory::Access::kOutOfRange) {
        BodyRun r;
        r.kind = BodyRun::Kind::kFault;
        r.fault_reason = "read buffer out of range";
        return r;
      }
    }
    pending_copy_.reset();
  }

  while (work < budget) {
    StepResult step = Step(ctx_, mem_);
    switch (step.kind) {
      case StepKind::kOk:
        ++work;
        break;
      case StepKind::kSyscall: {
        work += kSyscallWork;
        std::optional<BodyRun> run = MaterializeSyscall(step.sys_num, work);
        if (run.has_value()) {
          return *run;
        }
        // Argument copy faulted: pc was rewound to re-trap; report the fault.
        BodyRun r;
        r.kind = BodyRun::Kind::kPageFault;
        r.fault_page = mem_.fault_page();
        r.work = work;
        return r;
      }
      case StepKind::kPageFault: {
        BodyRun r;
        r.kind = BodyRun::Kind::kPageFault;
        r.fault_page = step.fault_page;
        r.work = work;
        return r;
      }
      case StepKind::kHalt: {
        BodyRun r;
        r.kind = BodyRun::Kind::kExited;
        r.exit_status = static_cast<int32_t>(ctx_.regs[1]);
        r.work = work + 1;
        return r;
      }
      case StepKind::kFault: {
        BodyRun r;
        r.kind = BodyRun::Kind::kFault;
        r.fault_reason = step.fault_reason;
        r.work = work + 1;
        return r;
      }
    }
  }

  BodyRun r;
  r.kind = BodyRun::Kind::kBudget;
  r.work = work;
  return r;
}

std::optional<BodyRun> AvmBody::MaterializeSyscall(uint32_t sys_num, uint64_t work) {
  BodyRun run;
  run.kind = BodyRun::Kind::kSyscall;
  run.work = work;
  SyscallRequest& req = run.request;
  req.num = static_cast<Sys>(sys_num);
  req.a = ctx_.regs[1];
  req.b = ctx_.regs[2];
  req.c = ctx_.regs[3];

  auto read_guest = [&](uint32_t addr, uint32_t len) -> bool {
    GuestMemory::Access a = mem_.ReadRange(addr, len, &req.data);
    if (a == GuestMemory::Access::kOk) {
      return true;
    }
    if (a == GuestMemory::Access::kOutOfRange) {
      // Deterministic program error.
      run.kind = BodyRun::Kind::kFault;
      run.fault_reason = "syscall buffer out of range";
      return true;  // report `run` as-is
    }
    // Page fault: rewind so the SYS re-executes after page-in.
    ctx_.pc -= kAvmInstrBytes;
    return false;
  };

  switch (req.num) {
    case Sys::kOpen:
      // r1 = name ptr, r2 = name len.
      if (!read_guest(static_cast<uint32_t>(req.a), static_cast<uint32_t>(req.b))) {
        return std::nullopt;
      }
      break;
    case Sys::kWrite:
    case Sys::kWritev:
      // r1 = fd, r2 = buf, r3 = len.
      if (!read_guest(static_cast<uint32_t>(req.b), static_cast<uint32_t>(req.c))) {
        return std::nullopt;
      }
      break;
    case Sys::kBunch:
      // r1 = ptr to fd words, r2 = count.
      if (!read_guest(static_cast<uint32_t>(req.a), static_cast<uint32_t>(req.b) * 4)) {
        return std::nullopt;
      }
      break;
    case Sys::kRead:
      // r1 = fd, r2 = buf, r3 = max. Data lands via deferred copy.
      break;
    case Sys::kSigret: {
      // Restore the interrupted context from the signal save area. Handled
      // entirely inside the body; no kernel involvement needed — but we
      // still surface it as a syscall so the kernel can account for it and
      // clear its in-signal bookkeeping.
      break;
    }
    default:
      break;
  }
  awaiting_completion_ = true;
  return run;
}

void AvmBody::CompleteSyscall(const SyscallResult& result) {
  AURAGEN_CHECK(awaiting_completion_) << "CompleteSyscall without pending syscall";
  awaiting_completion_ = false;
  ctx_.regs[0] = static_cast<uint32_t>(result.rv);
  if (!result.data.empty()) {
    // Defer the copy into guest memory; Run applies (and can fault/retry).
    PendingCopy copy;
    copy.addr = ctx_.regs[2];  // read(fd, buf, max): r2 = buf
    copy.data = result.data;
    pending_copy_ = std::move(copy);
  }
}

Bytes AvmBody::CaptureContext() const {
  AURAGEN_CHECK(!pending_copy_.has_value()) << "sync with an unapplied read result";
  CpuContext snapshot = ctx_;
  if (awaiting_completion_) {
    snapshot.pc -= kAvmInstrBytes;  // re-execute the blocking SYS on restore
  }
  ByteWriter w;
  snapshot.Serialize(w);
  return w.Take();
}

void AvmBody::RestoreContext(const Bytes& context) {
  ByteReader r(context);
  ctx_ = CpuContext::Deserialize(r);
  awaiting_completion_ = false;
  pending_copy_.reset();
}

std::vector<PageNum> AvmBody::DirtyPages() const { return mem_.DirtyPages(); }

Bytes AvmBody::PageContent(PageNum page) const { return mem_.ExtractPage(page); }

void AvmBody::ClearDirty() { mem_.ClearAllDirty(); }

void AvmBody::EvictAllPages() {
  mem_.EvictAll();
  demand_from_server_ = true;
}

void AvmBody::InstallPage(PageNum page, bool known, const Bytes& content) {
  if (known) {
    mem_.InstallPage(page, content);
  } else {
    // The page server never saw it: deterministic zero fill. Mark dirty only
    // when materialized locally during normal execution so it reaches the
    // account at the next sync; a server-mediated zero page is already
    // "known missing" and stays clean until written.
    mem_.MaterializeZero(page, /*dirty=*/!demand_from_server_);
  }
}

bool AvmBody::NeedsServerPaging() const { return demand_from_server_; }

bool AvmBody::EnterSignal(uint32_t handler, uint32_t signal_number) {
  // Spill the interrupted context into the user-memory save area (so it is
  // part of the paged state, §7.5.2), then vector to the handler. The save
  // area is a reserved page; zero-filling it when non-resident is
  // deterministic because nothing else lives there.
  PageNum save_page = PageOf(kSignalSaveBase);
  if (!mem_.Resident(save_page)) {
    mem_.MaterializeZero(save_page, /*dirty=*/false);
  }
  uint32_t addr = kSignalSaveBase;
  for (uint32_t i = 0; i < kAvmNumRegs; ++i) {
    AURAGEN_CHECK(mem_.Write32(addr, ctx_.regs[i]) == GuestMemory::Access::kOk);
    addr += 4;
  }
  AURAGEN_CHECK(mem_.Write32(addr, ctx_.pc) == GuestMemory::Access::kOk);
  ctx_.regs[1] = signal_number;
  ctx_.pc = handler;
  return true;
}

void AvmBody::AbortBlockedSyscall() {
  AURAGEN_CHECK(awaiting_completion_ && !pending_copy_.has_value())
      << "abort of a non-restartable syscall";
  ctx_.pc -= kAvmInstrBytes;
  awaiting_completion_ = false;
}

void AvmBody::LeaveSignal() {
  // SYS sigret: restore the interrupted context. The save page is resident —
  // the handler entered via EnterSignal, which spilled into it.
  awaiting_completion_ = false;
  uint32_t addr = kSignalSaveBase;
  for (uint32_t i = 0; i < kAvmNumRegs; ++i) {
    AURAGEN_CHECK(mem_.Read32(addr, &ctx_.regs[i]) == GuestMemory::Access::kOk);
    addr += 4;
  }
  AURAGEN_CHECK(mem_.Read32(addr, &ctx_.pc) == GuestMemory::Access::kOk);
}

std::unique_ptr<AvmBody> AvmBody::CloneForFork(uint32_t parent_rv) {
  AURAGEN_CHECK(!awaiting_completion_ || true);
  auto child = std::make_unique<AvmBody>(*this);
  // The fork syscall completion wrote r0 already at the kernel's direction;
  // here we only differentiate child vs parent return values.
  child->ctx_.regs[0] = 0;
  child->awaiting_completion_ = false;
  child->pending_copy_.reset();
  ctx_.regs[0] = parent_rv;
  // Child pages must all reach the page server at its first sync.
  for (PageNum p = 0; p < kAvmNumPages; ++p) {
    if (child->mem_.Resident(p)) {
      Bytes content = child->mem_.ExtractPage(p);
      child->mem_.InstallPageDirty(p, content);
    }
  }
  return child;
}

}  // namespace auragen
