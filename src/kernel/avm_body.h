// AvmBody: a Body backed by the AVM interpreter.
//
// Process state = CpuContext (context blob) + GuestMemory (paged state),
// exactly the PCB/page-account split of §7.7-§7.8. Transparency (§3.3)
// falls out: the guest program contains no fault-tolerance code at all.

#ifndef AURAGEN_SRC_KERNEL_AVM_BODY_H_
#define AURAGEN_SRC_KERNEL_AVM_BODY_H_

#include <memory>
#include <optional>

#include "src/avm/cpu.h"
#include "src/avm/memory.h"
#include "src/avm/program.h"
#include "src/kernel/body.h"

namespace auragen {

class AvmBody : public Body {
 public:
  // Loads the image at address 0 with pages marked dirty (they must reach
  // the page account at the first sync), pc at entry, sp at the stack top.
  explicit AvmBody(const Executable& exe);

  BodyRun Run(uint64_t budget) override;
  void CompleteSyscall(const SyscallResult& result) override;

  bool SyncReady() const override { return !pending_copy_.has_value(); }
  // When blocked in a read/which (awaiting_completion_), the captured pc is
  // rewound to the SYS instruction so a restored backup re-issues the same
  // side-effect-free call — the §7.8 "virtual address of the next
  // instruction to be executed" is the trap itself.
  Bytes CaptureContext() const override;
  void RestoreContext(const Bytes& context) override;

  std::vector<PageNum> DirtyPages() const override;
  Bytes PageContent(PageNum page) const override;
  void ClearDirty() override;
  std::vector<std::pair<PageNum, Bytes>> CaptureFlushPages(bool full) override {
    return mem_.CaptureFlushPages(full);
  }
  void EvictAllPages() override;
  void InstallPage(PageNum page, bool known, const Bytes& content) override;
  bool NeedsServerPaging() const override;

  bool EnterSignal(uint32_t handler, uint32_t signal_number) override;

  // SYS sigret: restores the context spilled by EnterSignal and clears the
  // pending-syscall latch (the kernel must not also call CompleteSyscall).
  void LeaveSignal();

  // Interrupts a blocked side-effect-free syscall (read/which) so a signal
  // can be delivered: the pc rewinds to the SYS, which re-executes after the
  // handler returns — the AVM equivalent of UNIX's restartable syscalls.
  void AbortBlockedSyscall();

  // Fork support: clones memory and registers; the parent's clone sees
  // `parent_rv` in r0, the child's sees 0. All of the child's pages are
  // dirty so its first sync builds a complete page account (§7.7).
  std::unique_ptr<AvmBody> CloneForFork(uint32_t parent_rv);

  // Test/diagnostic access.
  const CpuContext& context() const { return ctx_; }
  GuestMemory& memory() { return mem_; }

  // Work cost of a syscall trap relative to one instruction.
  static constexpr uint64_t kSyscallWork = 20;

 private:
  // Builds the normalized request for the trapped syscall. Returns nullopt
  // and rewinds the pc when reading argument memory faults (the SYS will
  // re-trap after page-in).
  std::optional<BodyRun> MaterializeSyscall(uint32_t sys_num, uint64_t work);

  CpuContext ctx_;
  GuestMemory mem_;

  // Deferred completion of a read-like syscall: data to copy into guest
  // memory on the next Run (so the copy can fault and retry).
  struct PendingCopy {
    uint32_t addr = 0;
    uint32_t max = 0;
    Bytes data;
  };
  std::optional<PendingCopy> pending_copy_;
  bool awaiting_completion_ = false;

  // During normal execution a fault means fresh stack/heap growth; zero-fill
  // locally. After EvictAllPages (recovery) every fault must consult the
  // page server (§7.10.2), which owns the known/zero decision.
  bool demand_from_server_ = false;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_KERNEL_AVM_BODY_H_
