// Body: the user-mode part of a process, as the kernel drives it.
//
// The kernel never interprets what a body computes; it only advances it,
// services its system calls, and captures/restores its state. Two
// implementations exist:
//   AvmBody     — an AVM guest program (ordinary user processes);
//   NativeBody  — C++ state machines (system and peripheral servers, §7.6).
//
// The state model matches §7.7/§7.8: a small *context* blob (registers /
// resume token — what the sync message carries) plus *pages* of bulk state
// (what the paging mechanism ships to the page server). Peripheral servers
// opt out of paging (§7.9) and are handled by the explicit-sync path
// instead; see native_body.h.

#ifndef AURAGEN_SRC_KERNEL_BODY_H_
#define AURAGEN_SRC_KERNEL_BODY_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/codec.h"
#include "src/base/types.h"
#include "src/avm/isa.h"

namespace auragen {

// Normalized system-call request, independent of the body's calling
// convention. `data` carries outbound payload (write bodies, open names).
struct SyscallRequest {
  Sys num = Sys::kYield;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  Bytes data;
};

struct SyscallResult {
  int64_t rv = 0;   // return value; negative values are -Errc
  Bytes data;       // inbound payload (read results)
};

// Outcome of advancing a body.
struct BodyRun {
  enum class Kind : uint8_t {
    kBudget,     // consumed its work budget; still runnable
    kSyscall,    // trapped; `request` wants servicing
    kPageFault,  // needs `fault_page` resident; no side effects occurred
    kExited,     // terminated with `exit_status`
    kFault,      // deterministic program error (recurs identically on replay)
  };
  Kind kind = Kind::kBudget;
  uint64_t work = 0;             // abstract work units consumed (time accounting)
  SyscallRequest request;        // kSyscall
  PageNum fault_page = 0;        // kPageFault
  int32_t exit_status = 0;       // kExited
  const char* fault_reason = ""; // kFault
};

class Body {
 public:
  virtual ~Body() = default;

  // Advances until the budget is spent or a trap occurs. A body whose
  // previous Run returned kSyscall must receive CompleteSyscall before the
  // next Run.
  virtual BodyRun Run(uint64_t budget) = 0;

  // Delivers the result of the pending syscall. Side effects that can page-
  // fault (copying read data into guest memory) are deferred into the next
  // Run so faults retry uniformly.
  virtual void CompleteSyscall(const SyscallResult& result) = 0;

  // --- state capture (what the sync message carries, §7.8) ---
  // True when the body is at a capturable point: quiescent, or parked in a
  // side-effect-free blocking syscall (read/which) that capture represents
  // by rewinding to re-issue it.
  virtual bool SyncReady() const = 0;
  virtual Bytes CaptureContext() const = 0;
  virtual void RestoreContext(const Bytes& context) = 0;

  // --- paged bulk state (what goes to the page server, §7.6) ---
  // Pages dirtied since the last ClearDirty. Empty for explicit-sync bodies.
  virtual std::vector<PageNum> DirtyPages() const = 0;
  virtual Bytes PageContent(PageNum page) const = 0;
  virtual void ClearDirty() = 0;
  // Copy-on-write flush capture for the sync pipeline: snapshots the pages
  // to ship at this sync — pages dirtied since the previous capture, or
  // every resident page when `full` (stop-and-copy) — and advances the
  // body's dirty tracking so writes after the capture belong to the next
  // increment. The returned contents are immutable copies the caller may
  // drain to the outgoing queue asynchronously.
  virtual std::vector<std::pair<PageNum, Bytes>> CaptureFlushPages(bool full) {
    std::vector<std::pair<PageNum, Bytes>> out;
    for (PageNum p : DirtyPages()) {
      out.emplace_back(p, PageContent(p));
    }
    ClearDirty();
    (void)full;
    return out;
  }
  // Recovery: drop all pages; subsequent Runs fault them back in.
  virtual void EvictAllPages() = 0;
  // Page-in. `known=false` means the page server never saw this page: the
  // body materializes it deterministically (zero fill).
  virtual void InstallPage(PageNum page, bool known, const Bytes& content) = 0;

  // True after EvictAllPages: faults must be resolved through the page
  // server (§7.10.2). False during normal execution, where a fault can only
  // mean fresh zero-fill stack/heap growth resolved locally.
  virtual bool NeedsServerPaging() const = 0;

  // Asynchronous-signal support (§7.5.2). Divert to `handler`; the previous
  // context is saved in body-owned state so it is captured by sync. Bodies
  // that cannot take signals return false (signal stays ignored).
  virtual bool EnterSignal(uint32_t handler, uint32_t signal_number) = 0;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_KERNEL_BODY_H_
