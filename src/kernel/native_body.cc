#include "src/kernel/native_body.h"

#include <algorithm>
#include <utility>

namespace auragen {

NativeBody::NativeBody(std::unique_ptr<NativeProgram> program, bool paged_ft)
    : program_(std::move(program)), paged_ft_(paged_ft) {}

Bytes NativeBody::SerializeProgram() const {
  ByteWriter w;
  program_->SerializeState(w);
  return w.Take();
}

std::vector<Bytes> NativeBody::Chunk(const Bytes& blob) {
  std::vector<Bytes> chunks;
  for (size_t at = 0; at < blob.size(); at += kAvmPageBytes) {
    size_t n = std::min<size_t>(kAvmPageBytes, blob.size() - at);
    Bytes chunk(blob.begin() + at, blob.begin() + at + n);
    chunk.resize(kAvmPageBytes, 0);
    chunks.push_back(std::move(chunk));
  }
  if (chunks.empty()) {
    chunks.emplace_back(kAvmPageBytes, 0);
  }
  return chunks;
}

BodyRun NativeBody::Run(uint64_t budget) {
  (void)budget;
  AURAGEN_CHECK(!awaiting_completion_) << "Run before CompleteSyscall";
  BodyRun run;

  if (recovering_) {
    // Demand the state chunks back, in order, then resume.
    for (uint32_t i = 0; i < expected_chunks_; ++i) {
      if (!incoming_chunks_[i].has_value()) {
        run.kind = BodyRun::Kind::kPageFault;
        run.fault_page = i;
        return run;
      }
    }
    Bytes blob;
    for (uint32_t i = 0; i < expected_chunks_; ++i) {
      blob.insert(blob.end(), incoming_chunks_[i]->begin(), incoming_chunks_[i]->end());
    }
    ByteReader r(blob);
    program_->RestoreState(r);
    last_synced_chunks_ = Chunk(blob);  // account content as of last sync
    recovering_ = false;
    incoming_chunks_.clear();
    started_ = true;
    if (restore_pending_request_) {
      restore_pending_request_ = false;
      if (!program_->WantsRunAfterRestore()) {
        // Re-issue the blocked read/which captured at sync time.
        AURAGEN_CHECK(pending_.has_value());
        run.kind = BodyRun::Kind::kSyscall;
        run.request = *pending_;
        run.work = 1;
        awaiting_completion_ = true;
        return run;
      }
      pending_.reset();
    }
  }

  SyscallResult prev;
  bool first = !started_;
  if (have_result_) {
    prev = std::move(*last_result_);
    last_result_.reset();
    have_result_ = false;
  }
  started_ = true;

  SyscallRequest req = program_->Next(prev, first);
  run.work = program_->StepWork();
  if (req.num == Sys::kExit) {
    run.kind = BodyRun::Kind::kExited;
    run.exit_status = static_cast<int32_t>(req.a);
    return run;
  }
  run.kind = BodyRun::Kind::kSyscall;
  run.request = req;
  pending_ = std::move(req);
  awaiting_completion_ = true;
  return run;
}

void NativeBody::CompleteSyscall(const SyscallResult& result) {
  AURAGEN_CHECK(awaiting_completion_);
  awaiting_completion_ = false;
  pending_.reset();
  last_result_ = result;
  have_result_ = true;
}

Bytes NativeBody::CaptureContext() const {
  // Context = chunk count + the pending (side-effect-free) request, if any.
  // The kernel only syncs a native body when it is parked in a blocking
  // read/which or has consumed its last result, both representable here.
  ByteWriter w;
  Bytes blob = SerializeProgram();
  uint32_t chunks = static_cast<uint32_t>(Chunk(blob).size());
  w.U32(chunks);
  if (awaiting_completion_ && pending_.has_value()) {
    AURAGEN_CHECK(pending_->num == Sys::kRead || pending_->num == Sys::kWhich)
        << "sync with a side-effecting syscall pending: num="
        << static_cast<uint32_t>(pending_->num);
    w.U8(1);
    w.U32(static_cast<uint32_t>(pending_->num));
    w.U64(pending_->a);
    w.U64(pending_->b);
    w.U64(pending_->c);
    w.Blob(pending_->data);
  } else {
    AURAGEN_CHECK(!have_result_) << "sync with an unconsumed syscall result";
    w.U8(0);
  }
  return w.Take();
}

void NativeBody::RestoreContext(const Bytes& context) {
  ByteReader r(context);
  expected_chunks_ = r.U32();
  uint8_t has_pending = r.U8();
  if (has_pending != 0) {
    SyscallRequest req;
    req.num = static_cast<Sys>(r.U32());
    req.a = r.U64();
    req.b = r.U64();
    req.c = r.U64();
    req.data = r.Blob();
    pending_ = std::move(req);
    restore_pending_request_ = true;
  } else {
    pending_.reset();
    restore_pending_request_ = false;
  }
  awaiting_completion_ = false;
  have_result_ = false;
  last_result_.reset();
}

std::vector<PageNum> NativeBody::DirtyPages() const {
  if (!paged_ft_) {
    return {};
  }
  sync_snapshot_ = Chunk(SerializeProgram());
  std::vector<PageNum> dirty;
  size_t n = std::max(sync_snapshot_.size(), last_synced_chunks_.size());
  static const Bytes kZeroChunk(kAvmPageBytes, 0);
  for (size_t i = 0; i < n; ++i) {
    const Bytes& cur = i < sync_snapshot_.size() ? sync_snapshot_[i] : kZeroChunk;
    const Bytes& old = i < last_synced_chunks_.size() ? last_synced_chunks_[i] : kZeroChunk;
    if (cur != old) {
      dirty.push_back(static_cast<PageNum>(i));
    }
  }
  return dirty;
}

Bytes NativeBody::PageContent(PageNum page) const {
  AURAGEN_CHECK(page < sync_snapshot_.size()) << "PageContent outside snapshot";
  return sync_snapshot_[page];
}

void NativeBody::ClearDirty() {
  if (!paged_ft_) {
    return;
  }
  last_synced_chunks_ = sync_snapshot_;
}

std::vector<std::pair<PageNum, Bytes>> NativeBody::CaptureFlushPages(bool full) {
  if (!paged_ft_) {
    return {};
  }
  std::vector<std::pair<PageNum, Bytes>> out;
  if (full) {
    sync_snapshot_ = Chunk(SerializeProgram());
    for (size_t i = 0; i < sync_snapshot_.size(); ++i) {
      out.emplace_back(static_cast<PageNum>(i), sync_snapshot_[i]);
    }
  } else {
    for (PageNum p : DirtyPages()) {
      out.emplace_back(p, PageContent(p));
    }
  }
  last_synced_chunks_ = sync_snapshot_;
  return out;
}

void NativeBody::EvictAllPages() {
  recovering_ = true;
  incoming_chunks_.assign(expected_chunks_, std::nullopt);
}

void NativeBody::InstallPage(PageNum page, bool known, const Bytes& content) {
  AURAGEN_CHECK(recovering_) << "native page-in outside recovery";
  AURAGEN_CHECK(page < incoming_chunks_.size());
  if (known) {
    incoming_chunks_[page] = content;
  } else {
    incoming_chunks_[page] = Bytes(kAvmPageBytes, 0);
  }
}

bool NativeBody::EnterSignal(uint32_t handler, uint32_t signal_number) {
  (void)handler;
  (void)signal_number;
  return false;  // servers take no asynchronous signals
}

}  // namespace auragen
