// NativeBody: C++ state-machine processes (system and peripheral servers).
//
// §7.6 distinguishes two server varieties and this file supports both:
//
//  * System servers (e.g. the process server) "are backed up, communicate
//    via message, and execute in the same way as ordinary user processes".
//    A NativeBody with paged_ft=true gets that: its serialized state is
//    chunked into AVM-sized pages, and the standard sync machinery ships
//    only the chunks that changed — the native analogue of dirty pages.
//
//  * Peripheral servers (§7.9) are core-resident, talk to devices directly,
//    and are backed by an *active* backup process that applies explicit
//    ServerSync messages. A NativeBody with paged_ft=false reports no dirty
//    pages; its program sends ServerSync payloads through the
//    kServerSyncSend native syscall, and the backup instance consumes them
//    via NativeProgram::ApplyServerSync.
//
// Programs are continuation-passing state machines: each Next() consumes
// the previous syscall's result and returns the next request. A program
// parked in a blocking read serializes as "pending request", which the body
// re-issues verbatim after restore — safe because only side-effect-free
// requests (read/which) may be pending across a sync.

#ifndef AURAGEN_SRC_KERNEL_NATIVE_BODY_H_
#define AURAGEN_SRC_KERNEL_NATIVE_BODY_H_

#include <memory>
#include <optional>

#include "src/kernel/body.h"

namespace auragen {

// Native-only syscall numbers, dispatched by the kernel to simulated
// devices. User (AVM) programs cannot issue these; peripheral servers
// "execute special system calls not available to user processes" (§4).
enum class NativeSys : uint32_t {
  kDiskRead = 100,        // a = block -> data
  kDiskWrite = 101,       // a = block, data = content
  kServerSyncSend = 102,  // data = trim-prefix + opaque state (see below)
  kTtyEmit = 103,         // data -> the terminal line's host transcript
  kSimTime = 104,         // -> current simulated time (process server only)
  kWriteChan = 105,       // b = channel id, a = kind (0 user / 1 open-reply /
                          // 2 signal / 3 page-reply), c = 1 for device-
                          // input-driven sends (uncounted, at-most-once),
                          // data = payload
  kAcceptChan = 106,      // data = encoded ChanCreate: create the server-side
                          // entry for a channel this server just opened
  kSetTimer = 107,        // a = delay us, b = cookie: a {kTimerFire, cookie}
                          // message lands on the server's self channel later.
                          // Timers are cluster-local soft state; a recovered
                          // server re-arms from its own tables.
  kFindChan = 108,        // a = binding_tag, b = peer pid (0 = any) ->
                          // channel id of the matching local entry, 0 if none
  kWhoAmI = 109,          // -> data {pid u64, cluster u32, backup u32}:
                          // queried at startup/takeover, never from synced
                          // state (it is environmental, §7.5)
  kDiskWriteVec = 110,    // data = {n u32, n x {block u32, image blob}}: one
                          // multi-block disk transaction (single seek per
                          // mirror, all blocks land atomically). The file
                          // server's log append + checkpoint migration.
};

inline constexpr uint32_t kFirstNativeSys = 100;

// Sys::kRead with a == kAnyChannel: consume the oldest message across every
// channel the server owns (result: {channel u64, src pid u64, payload blob}).
inline constexpr uint64_t kAnyChannel = ~0ull;

inline SyscallRequest NativeRequest(NativeSys num) {
  SyscallRequest r;
  r.num = static_cast<Sys>(num);
  return r;
}

// The kServerSyncSend payload begins with a kernel-readable trim prefix —
// count of (channel id, requests serviced since last server sync) pairs —
// so the backup cluster's executive can discard already-serviced requests
// from the saved queues (§7.9), followed by an opaque program blob.
struct ServerSyncPrefix {
  std::vector<std::pair<ChannelId, uint32_t>> serviced;

  void Serialize(ByteWriter& w) const {
    w.U32(static_cast<uint32_t>(serviced.size()));
    for (const auto& [ch, n] : serviced) {
      w.U64(ch.value);
      w.U32(n);
    }
  }
  static ServerSyncPrefix Deserialize(ByteReader& r) {
    ServerSyncPrefix p;
    uint32_t n = r.U32();
    p.serviced.resize(n);
    for (auto& [ch, count] : p.serviced) {
      ch.value = r.U64();
      count = r.U32();
    }
    return p;
  }
};

class NativeProgram {
 public:
  virtual ~NativeProgram() = default;

  // Consumes the previous result and returns the next syscall. `first` is
  // true on the initial call (and after a restart from a pre-first-sync
  // state), where `prev` is meaningless.
  virtual SyscallRequest Next(const SyscallResult& prev, bool first) = 0;

  // Complete state capture/restore; must include the program's position in
  // its own request-handling loop.
  virtual void SerializeState(ByteWriter& w) const = 0;
  virtual void RestoreState(ByteReader& r) = 0;

  // Peripheral-server backups: apply the opaque part of a ServerSync.
  virtual void ApplyServerSync(ByteReader& r) { (void)r; }

  // Work units one Next() costs (time accounting).
  virtual uint64_t StepWork() const { return 50; }

  // After a page-synced restore, return true to take a fresh Next() call
  // instead of re-issuing the blocking read captured at sync time. Programs
  // that must re-arm soft state (the process server's timers) use this; the
  // program then owns re-entering its read loop.
  virtual bool WantsRunAfterRestore() const { return false; }
};

class NativeBody : public Body {
 public:
  NativeBody(std::unique_ptr<NativeProgram> program, bool paged_ft);

  BodyRun Run(uint64_t budget) override;
  void CompleteSyscall(const SyscallResult& result) override;

  bool SyncReady() const override { return !have_result_; }
  Bytes CaptureContext() const override;
  void RestoreContext(const Bytes& context) override;

  std::vector<PageNum> DirtyPages() const override;
  Bytes PageContent(PageNum page) const override;
  void ClearDirty() override;
  std::vector<std::pair<PageNum, Bytes>> CaptureFlushPages(bool full) override;
  void EvictAllPages() override;
  void InstallPage(PageNum page, bool known, const Bytes& content) override;
  bool NeedsServerPaging() const override { return recovering_; }

  bool EnterSignal(uint32_t handler, uint32_t signal_number) override;

  NativeProgram& program() { return *program_; }
  bool paged_ft() const { return paged_ft_; }

 private:
  Bytes SerializeProgram() const;
  static std::vector<Bytes> Chunk(const Bytes& blob);

  std::unique_ptr<NativeProgram> program_;
  bool paged_ft_;

  bool started_ = false;
  bool awaiting_completion_ = false;
  std::optional<SyscallRequest> pending_;   // issued, not yet completed
  std::optional<SyscallResult> last_result_;
  bool have_result_ = false;

  // Page-diff sync state (paged_ft only).
  mutable std::vector<Bytes> sync_snapshot_;     // chunks captured by DirtyPages
  std::vector<Bytes> last_synced_chunks_;

  // Recovery state.
  bool recovering_ = false;
  uint32_t expected_chunks_ = 0;
  std::vector<std::optional<Bytes>> incoming_chunks_;
  bool restore_pending_request_ = false;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_KERNEL_NATIVE_BODY_H_
