#include "src/machine/machine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/base/log.h"
#include "src/servers/protocol.h"

namespace auragen {

constexpr Gpid Machine::kFsPid;
constexpr Gpid Machine::kPsPid;
constexpr Gpid Machine::kTtyPid;
constexpr Gpid Machine::kPagePid;

namespace {

std::string PlacementError(const char* role, const std::string& what) {
  return std::string(role) + " server: " + what;
}

}  // namespace

std::string ServerPlacement::Validate(const SystemConfig& config) const {
  const uint32_t n = config.num_clusters;
  const bool ft = config.strategy == FtStrategy::kMessageSystem;
  if (n < 1) {
    return "num_clusters must be >= 1";
  }
  if (config.page_shards < 1 || config.page_shards > 32) {
    return "page_shards must be in [1, 32], got " + std::to_string(config.page_shards);
  }
  if (ft && n < 2) {
    return "message-system fault tolerance needs num_clusters >= 2 (backups must "
           "live on a different cluster)";
  }

  struct Role {
    const char* name;
    const ClusterPair* pair;
  };
  const Role roles[] = {{"file", &file}, {"process", &process}, {"tty", &tty}, {"page", &page}};
  for (const Role& r : roles) {
    if (r.pair->primary >= n) {
      return PlacementError(r.name, "primary cluster " + std::to_string(r.pair->primary) +
                                        " out of range (num_clusters=" + std::to_string(n) +
                                        ")");
    }
    if (!ft) {
      continue;  // backups are never spawned without the message system
    }
    if (r.pair->backup >= n) {
      return PlacementError(r.name, "backup cluster " + std::to_string(r.pair->backup) +
                                        " out of range (num_clusters=" + std::to_string(n) +
                                        ")");
    }
    if (r.pair->backup == r.pair->primary) {
      return PlacementError(r.name, "primary and backup must differ (both " +
                                        std::to_string(r.pair->primary) + ")");
    }
  }

  // Multi-segment fabric: a primary and its backup must share a segment.
  // Takeover and re-backup traffic may not depend on a switch surviving the
  // fault it is recovering from, and a dual-ported disk cannot span
  // segments at all.
  const Topology topo = config.resolved_topology();
  if (ft && topo.num_segments() > 1) {
    for (const Role& r : roles) {
      if (topo.segment_of(r.pair->primary) != topo.segment_of(r.pair->backup)) {
        return PlacementError(
            r.name, "primary (cluster " + std::to_string(r.pair->primary) +
                        ") and backup (cluster " + std::to_string(r.pair->backup) +
                        ") are in different fabric segments");
      }
    }
    const std::pair<const char*, const ClusterPair*> disks[] = {
        {"file disk", &file_disk}, {"page disk", &page_disk}};
    for (const auto& [name, ports] : disks) {
      if (ports->primary < n && ports->backup < n &&
          topo.segment_of(ports->primary) != topo.segment_of(ports->backup)) {
        return std::string(name) + ": ports {" + std::to_string(ports->primary) + "," +
               std::to_string(ports->backup) +
               "} span fabric segments (a dual-ported disk is cabled inside one segment)";
      }
    }
    // Page shards rotate within segment (s mod S); a base pair that is
    // congruent modulo some segment's size would fold a shard's primary and
    // backup onto one cluster there.
    for (SegmentId s = 0; s < topo.num_segments() && s < config.page_shards; ++s) {
      const uint32_t size = topo.segment_size(s);
      if (page.primary % size == page.backup % size ||
          page_disk.primary % size == page_disk.backup % size) {
        return PlacementError(
            "page", "shard rotation folds primary and backup onto one cluster in "
                    "segment " + std::to_string(s) + " (size " + std::to_string(size) +
                    "); pick a page/page_disk pair distinct modulo every segment size");
      }
    }
  }

  if (ft) {
    // §7.9: a peripheral server and its active backup each need a path to the
    // server's disk, i.e. both must sit on one of the disk's two ports.
    auto on_port = [](ClusterId c, const ClusterPair& disk) {
      return c == disk.primary || c == disk.backup;
    };
    auto check_ports = [&](const char* role, const ClusterPair& server,
                           const ClusterPair& disk) -> std::string {
      for (ClusterId c : {server.primary, server.backup}) {
        if (!on_port(c, disk)) {
          return PlacementError(role, "cluster " + std::to_string(c) +
                                          " is not a port of its disk {" +
                                          std::to_string(disk.primary) + "," +
                                          std::to_string(disk.backup) + "} (§7.9)");
        }
      }
      return {};
    };
    if (std::string err = check_ports("file", file, file_disk); !err.empty()) {
      return err;
    }
    if (std::string err = check_ports("page", page, page_disk); !err.empty()) {
      return err;
    }
    if (file_disk.primary >= n || file_disk.backup >= n || page_disk.primary >= n ||
        page_disk.backup >= n) {
      return "disk port out of range (num_clusters=" + std::to_string(n) + ")";
    }
  }
  return {};
}

std::string MachineOptions::Validate() const {
  if (std::string err = config.sync_policy.Validate(); !err.empty()) {
    return "sync_policy: " + err;
  }
  if (!config.topology.empty()) {
    if (std::string err = config.topology.Validate(); !err.empty()) {
      return "topology: " + err;
    }
    if (config.topology.num_clusters() != config.num_clusters) {
      return "topology names " + std::to_string(config.topology.num_clusters()) +
             " clusters but num_clusters is " + std::to_string(config.num_clusters) +
             " (use MachineOptions::WithTopology, which keeps them in sync)";
    }
  }
  return placement.Validate(config);
}

// ------------------------------------------------------------- ClusterEnv

ClusterEnv::ClusterEnv(Machine& machine, ClusterId cluster)
    : machine_(machine), cluster_(cluster) {}

Engine& ClusterEnv::engine() {
  return machine_.sharded_->shard_core(machine_.plan_.shard_of_cluster(cluster_));
}

Fabric& ClusterEnv::bus() { return *machine_.bus_; }

const SystemConfig& ClusterEnv::config() const { return machine_.options_.config; }

void ClusterEnv::DiskRead(Gpid server, BlockNum block,
                          std::function<void(Result<Bytes>)> done) {
  machine_.DiskReadFrom(cluster_, server, block, std::move(done));
}

void ClusterEnv::DiskWrite(Gpid server, BlockNum block, Bytes data,
                           std::function<void(Result<void>)> done) {
  if (server == Machine::kFsPid) {
    metrics_.fileserver_disk_bytes += data.size();
  }
  machine_.DiskWriteFrom(cluster_, server, block, std::move(data), std::move(done));
}

void ClusterEnv::DiskWriteMulti(Gpid server, DiskWriteBatch batch,
                                std::function<void(Result<void>)> done) {
  if (server == Machine::kFsPid) {
    for (const auto& [block, data] : batch) {
      metrics_.fileserver_disk_bytes += data.size();
    }
  }
  machine_.DiskWriteMultiFrom(cluster_, server, std::move(batch), std::move(done));
}

void ClusterEnv::TtyEmit(Gpid server, const Bytes& data) {
  machine_.TtyEmitFrom(cluster_, server, data);
}

ClusterId ClusterEnv::PlaceNewBackup(ClusterId avoid_a, ClusterId avoid_b) {
  return machine_.PlaceNewBackupFrom(cluster_, avoid_a, avoid_b);
}

std::unique_ptr<NativeProgram> ClusterEnv::MakeServerProgram(Gpid pid) {
  return machine_.MakeServerProgram(pid);
}

void ClusterEnv::OnServerTakeover(Gpid pid, ClusterId new_cluster) {
  machine_.OnServerTakeover(pid, new_cluster);
}

void ClusterEnv::OnProcessExit(Gpid pid, int32_t status) {
  machine_.OnProcessExit(pid, status);
}

void ClusterEnv::OnDebugPutc(Gpid pid, char c) { machine_.OnDebugPutc(pid, c); }

// ---------------------------------------------------------------- Machine

Machine::Machine(MachineOptions options)
    : options_(std::move(options)),
      topology_(options_.config.resolved_topology()),
      plan_(MakeShardPlan(options_.config, options_.disk)),
      rng_(options_.seed) {
  const SystemConfig& cfg = options_.config;
  // The Topology is the single source of truth for the cluster count; a
  // disagreeing num_clusters would size kernels and fabric differently.
  AURAGEN_CHECK(topology_.num_clusters() == cfg.num_clusters)
      << "topology names " << topology_.num_clusters() << " clusters but "
      << "SystemConfig::num_clusters is " << cfg.num_clusters
      << " (use MachineOptions::WithTopology, which keeps them in sync)";
  sharded_ = std::make_unique<ShardedEngine>(plan_.EngineOptions(options_.engine_threads));
  if (options_.trace.enabled) {
    tracer_ = std::make_unique<Tracer>(options_.trace);
    tracer_->set_clock([this] { return sharded_->Now(); });
    // Every component records through Tracer::Record as before; the hook
    // reroutes records into the engine's per-shard staging so the digest is
    // folded in deterministic merge order at each window barrier.
    tracer_->set_record_hook([this](TraceEventKind kind, ClusterId cluster, uint64_t gpid,
                                    uint64_t channel, uint64_t a, uint64_t b) {
      sharded_->Trace(kind, cluster, gpid, channel, a, b);
    });
    sharded_->set_tracer(tracer_.get());
    options_.file_server.tracer = tracer_.get();
    options_.page_server.tracer = tracer_.get();
  }
  std::vector<uint32_t> segment_shards(topology_.num_segments());
  for (SegmentId s = 0; s < segment_shards.size(); ++s) {
    segment_shards[s] = plan_.shard_of_segment(s);
  }
  bus_ = std::make_unique<Fabric>(*sharded_, topology_, std::move(segment_shards));
  bus_->set_tracer(tracer_.get());
  const ServerPlacement& place = options_.placement;
  Engine& shared_core = sharded_->shard_core(kSharedShard);
  fs_disk_ = std::make_unique<MirroredDisk>(shared_core, options_.disk,
                                            place.file_disk.primary, place.file_disk.backup);
  const uint32_t shards = std::max<uint32_t>(1, cfg.page_shards);
  for (uint32_t s = 0; s < shards; ++s) {
    const ClusterPair ports = PageShardPlace(place.page_disk, s);
    page_disks_.push_back(
        std::make_unique<MirroredDisk>(shared_core, options_.disk, ports.primary, ports.backup));
  }
  for (ClusterId c = 0; c < cfg.num_clusters; ++c) {
    envs_.push_back(std::make_unique<ClusterEnv>(*this, c));
    kernels_.push_back(std::make_unique<Kernel>(*envs_[c], c));
    kernels_.back()->set_tracer(tracer_.get());
  }
}

Machine::~Machine() = default;

void Machine::Boot() {
  AURAGEN_CHECK(!booted_) << "Boot() called twice";
  if (std::string err = options_.Validate(); !err.empty()) {
    AURAGEN_PANIC("invalid MachineOptions: " + err);
  }
  booted_ = true;
  for (auto& kernel : kernels_) {
    kernel->Start();
  }
  SpawnServers();
  // Let server spawn traffic (channel fabrication, filesystem format)
  // settle before user work arrives.
  Run(20000);
}

ClusterPair Machine::PageShardPlace(const ClusterPair& base, uint32_t s) const {
  const uint32_t num_segments = topology_.num_segments();
  const SegmentId seg = s % num_segments;
  const ClusterId first = topology_.segment_base(seg);
  const uint32_t size = topology_.segment_size(seg);
  const uint32_t turn = s / num_segments;
  return ClusterPair{first + (base.primary + turn) % size,
                     first + (base.backup + turn) % size};
}

void Machine::SpawnServers() {
  const bool ft = options_.config.strategy == FtStrategy::kMessageSystem;
  const ServerPlacement& place = options_.placement;

  fs_addr_ = ServerAddr{kFsPid, place.file.primary, ft ? place.file.backup : kNoCluster};
  ps_addr_ = ServerAddr{kPsPid, place.process.primary, ft ? place.process.backup : kNoCluster};
  tty_addr_ = ServerAddr{kTtyPid, place.tty.primary, ft ? place.tty.backup : kNoCluster};
  for (uint32_t s = 0; s < page_disks_.size(); ++s) {
    // Shard placement rotates with the shard index (and so do the disks,
    // built the same way in the constructor), spreading paging load across
    // segments and clusters while keeping §7.9 satisfied per shard.
    const ClusterPair pair = PageShardPlace(place.page, s);
    page_addrs_.push_back(
        ServerAddr{PageShardPid(s), pair.primary, ft ? pair.backup : kNoCluster});
  }

  server_disks_[kFsPid.value] = fs_disk_.get();
  server_locations_[kFsPid.value] = place.file.primary;
  if (tracer_ != nullptr) {
    fs_disk_->set_tracer(tracer_.get(), kFsPid.value);
    for (uint32_t s = 0; s < page_disks_.size(); ++s) {
      page_disks_[s]->set_tracer(tracer_.get(), PageShardPid(s).value);
    }
  }
  server_locations_[kPsPid.value] = place.process.primary;
  server_locations_[kTtyPid.value] = place.tty.primary;
  for (uint32_t s = 0; s < page_disks_.size(); ++s) {
    server_disks_[PageShardPid(s).value] = page_disks_[s].get();
    server_locations_[PageShardPid(s).value] = page_addrs_[s].primary;
  }

  auto spawn_peripheral = [&](Gpid pid, ClusterId primary, ClusterId backup,
                              auto make_program) {
    SpawnSpec spec;
    spec.native = make_program();
    spec.peripheral = true;
    spec.mode = BackupMode::kHalfback;  // §7.3: peripheral servers
    spec.fixed_pid = pid;
    spec.backup_cluster = ft ? backup : kNoCluster;
    if (pid == kTtyPid) {
      // The tty server routes ^C through the process server (§7.5.2).
      spec.proc_server = ps_addr_;
    }
    kernels_[primary]->Spawn(std::move(spec));
    if (ft && backup != kNoCluster) {
      SpawnSpec bspec;
      bspec.native = make_program();
      bspec.peripheral = true;
      bspec.mode = BackupMode::kHalfback;
      bspec.fixed_pid = pid;
      bspec.server_backup = true;
      bspec.primary_cluster = primary;
      kernels_[backup]->Spawn(std::move(bspec));
    }
  };

  for (uint32_t s = 0; s < page_addrs_.size(); ++s) {
    spawn_peripheral(PageShardPid(s), page_addrs_[s].primary,
                     PageShardPlace(place.page, s).backup,
                     [&] { return std::make_unique<PageServerProgram>(options_.page_server); });
  }
  spawn_peripheral(kFsPid, place.file.primary, place.file.backup, [&] {
    return std::make_unique<FileServerProgram>(options_.file_server);
  });
  spawn_peripheral(kTtyPid, place.tty.primary, place.tty.backup,
                   [&] { return std::make_unique<TtyServerProgram>(options_.tty_server); });

  // The process server is a *system* server (§7.6): standard page-diff sync
  // through the message system, passive backup PCB.
  {
    SpawnSpec spec;
    spec.native = std::make_unique<ProcessServerProgram>();
    spec.native_paged_ft = true;
    spec.mode = BackupMode::kQuarterback;
    spec.fixed_pid = kPsPid;
    spec.backup_cluster = ft ? place.process.backup : kNoCluster;
    // Aggressive sync keeps the PS backup near-current (it is tiny).
    spec.sync_reads_limit = 8;
    kernels_[place.process.primary]->Spawn(std::move(spec));
  }

  // Kernel page channels (§7.6): every kernel talks to every page-server
  // shard; the binding tag encodes the shard index.
  for (auto& kernel : kernels_) {
    for (uint32_t s = 0; s < page_addrs_.size(); ++s) {
      kernel->CreateKernelChannel(page_addrs_[s], kBindPageChannel + s);
    }
  }
}

Gpid Machine::SpawnUserProgram(ClusterId cluster, const Executable& exe,
                               const UserSpawnOptions& opts) {
  AURAGEN_CHECK(booted_) << "SpawnUserProgram before Boot";
  SpawnSpec spec;
  spec.exe = exe;
  spec.mode = opts.mode;
  if (options_.config.strategy == FtStrategy::kNone) {
    spec.backup_cluster = kNoCluster;
  } else if (opts.backup_cluster != kNoCluster) {
    spec.backup_cluster = opts.backup_cluster;
  } else {
    // Default placement: the next *alive* cluster (none alive -> no backup).
    spec.backup_cluster = kNoCluster;
    for (uint32_t step = 1; step < options_.config.num_clusters; ++step) {
      ClusterId candidate = (cluster + step) % options_.config.num_clusters;
      if (kernels_[candidate]->alive()) {
        spec.backup_cluster = candidate;
        break;
      }
    }
  }
  spec.sync_reads_limit = opts.sync_reads_limit;
  spec.sync_time_limit_us = opts.sync_time_limit_us;
  spec.file_server = fs_addr_;
  spec.proc_server = ps_addr_;
  if (opts.with_tty) {
    spec.tty_server = tty_addr_;
    spec.tty_line = opts.tty_line;
  }
  Gpid pid = kernels_[cluster]->Spawn(std::move(spec));
  user_pids_.push_back(pid);
  return pid;
}

void Machine::Run(SimTime duration) {
  sharded_->Run(sharded_->Now() + duration);
  // Align idle shard clocks with the global time so direct schedules from
  // the outside (spawns, kernel pokes between runs) base correctly.
  sharded_->SyncShardClocks();
}

bool Machine::RunUntil(const std::function<bool()>& pred, SimTime max_duration) {
  if (pred()) {
    return true;
  }
  sharded_->Run(sharded_->Now() + max_duration, pred);
  sharded_->SyncShardClocks();
  return pred();
}

bool Machine::AllUsersExited() const {
  for (Gpid pid : user_pids_) {
    if (exit_statuses_.count(pid.value) == 0) {
      return false;
    }
  }
  return true;
}

bool Machine::RunUntilAllExited(SimTime max_duration) {
  return RunUntil([this] { return AllUsersExited(); }, max_duration);
}

void Machine::CrashCluster(ClusterId cluster) {
  AURAGEN_CHECK(cluster < kernels_.size());
  kernels_[cluster]->CrashNow();
}

void Machine::CrashClusterAt(SimTime when, ClusterId cluster) {
  sharded_->ScheduleControlAt(when, [this, cluster] { CrashCluster(cluster); });
}

void Machine::FailBusLine(int line) { bus_->FailLine(line); }

void Machine::RestoreBusLine(int line) { bus_->RestoreLine(line); }

void Machine::RestoreCluster(ClusterId cluster) {
  kernels_[cluster]->Restart();
  for (uint32_t s = 0; s < page_addrs_.size(); ++s) {
    kernels_[cluster]->CreateKernelChannel(page_addrs_[s], kBindPageChannel + s);
  }
  // §7.3: halfbacks get new backups when the crashed cluster returns.
  // Every unprotected peripheral server whose disk (if any) reaches the
  // restored cluster re-creates its active backup there. A control event:
  // it reads the server directory and reaches into several kernels.
  sharded_->ScheduleControl(1000, [this, cluster] {
    std::vector<Gpid> peripherals = {kFsPid, kTtyPid};
    for (uint32_t s = 0; s < page_addrs_.size(); ++s) {
      peripherals.push_back(PageShardPid(s));
    }
    for (Gpid pid : peripherals) {
      auto loc = server_locations_.find(pid.value);
      if (loc == server_locations_.end() || !kernels_[loc->second]->alive()) {
        continue;
      }
      Pcb* pcb = kernels_[loc->second]->FindProcess(pid);
      if (pcb == nullptr || pcb->server_backup || pcb->backup_cluster != kNoCluster) {
        continue;
      }
      auto disk = server_disks_.find(pid.value);
      if (disk != server_disks_.end() && !disk->second->AttachedTo(cluster)) {
        continue;  // §7.9: the backup must sit on the other disk port
      }
      kernels_[loc->second]->RecreateServerBackup(pid, cluster);
      auto patch = [&](ServerAddr& addr) {
        if (addr.pid == pid) {
          addr.backup = cluster;
        }
      };
      patch(fs_addr_);
      patch(ps_addr_);
      patch(tty_addr_);
      for (ServerAddr& addr : page_addrs_) {
        patch(addr);
      }
    }
  });
}

void Machine::InjectTtyInput(uint32_t line, const std::string& text, SimTime at) {
  sharded_->ScheduleControlAt(at, [this, line, text] {
    auto it = server_locations_.find(kTtyPid.value);
    if (it == server_locations_.end() || !kernels_[it->second]->alive()) {
      return;  // terminal line dead with its cluster; user must retype
    }
    ByteWriter w;
    w.U8(static_cast<uint8_t>(ReqTag::kDevInput));
    w.U32(line);
    w.Blob(Bytes(text.begin(), text.end()));
    kernels_[it->second]->InjectLocalMessage(kTtyPid, kBindSelfChannel, w.Take());
  });
}

std::string Machine::TtyOutput(uint32_t line) const {
  auto it = tty_dedup_.find(line);
  if (it == tty_dedup_.end()) {
    return {};
  }
  std::string out;
  for (const auto& [seq, text] : it->second) {
    out += text;
  }
  return out;
}

size_t Machine::TotalLiveProcesses() const {
  size_t n = 0;
  for (const auto& kernel : kernels_) {
    if (kernel->alive()) {
      n += kernel->num_live_processes();
    }
  }
  return n;
}

Metrics Machine::metrics() const {
  Metrics agg;
  for (const auto& env : envs_) {
    agg.Accumulate(env->metrics());
  }
  return agg;
}

SimTime Machine::LocalNow() const {
  ShardId s = sharded_->CurrentShard();
  return s == kNoShard ? sharded_->Now() : sharded_->ShardNow(s);
}

// ------------------------------------------------- ClusterEnv backends

void Machine::DiskReadFrom(ClusterId from, Gpid server, BlockNum block,
                           std::function<void(Result<Bytes>)> done) {
  // max() never binds on the pre-fabric machine (lookahead <= arbitration by
  // construction); it keeps the hop legal when a custom topology's segment
  // buses are all slower than the SystemConfig-level `bus`.
  const SimTime hop = std::max(options_.config.bus.arbitration_us, plan_.lookahead_us);
  const ShardId home = plan_.shard_of_cluster(from);
  sharded_->ScheduleOn(
      kSharedShard, hop,
      [this, home, hop, server, block, done = std::move(done)]() mutable {
        auto it = server_disks_.find(server.value);
        AURAGEN_CHECK(it != server_disks_.end()) << "no disk bound to " << GpidStr(server);
        if (tracer_ != nullptr) {
          tracer_->Record(TraceEventKind::kDiskRead, kNoCluster, server.value, 0, block, 0);
        }
        it->second->Read(block, [this, home, hop, done = std::move(done)](Result<Bytes> r) mutable {
          sharded_->ScheduleOn(home, hop,
                               [done = std::move(done), r = std::move(r)]() mutable {
                                 done(std::move(r));
                               });
        });
      });
}

void Machine::DiskWriteFrom(ClusterId from, Gpid server, BlockNum block, Bytes data,
                            std::function<void(Result<void>)> done) {
  const SimTime hop = std::max(options_.config.bus.arbitration_us, plan_.lookahead_us);
  const ShardId home = plan_.shard_of_cluster(from);
  sharded_->ScheduleOn(
      kSharedShard, hop,
      [this, home, hop, server, block, data = std::move(data),
       done = std::move(done)]() mutable {
        auto it = server_disks_.find(server.value);
        AURAGEN_CHECK(it != server_disks_.end()) << "no disk bound to " << GpidStr(server);
        if (tracer_ != nullptr) {
          tracer_->Record(TraceEventKind::kDiskWrite, kNoCluster, server.value, 0, block,
                          data.size());
        }
        it->second->Write(block, std::move(data),
                          [this, home, hop, done = std::move(done)](Result<void> r) mutable {
                            sharded_->ScheduleOn(home, hop,
                                                 [done = std::move(done), r]() mutable {
                                                   done(r);
                                                 });
                          });
      });
}

void Machine::DiskWriteMultiFrom(ClusterId from, Gpid server, DiskWriteBatch batch,
                                 std::function<void(Result<void>)> done) {
  const SimTime hop = std::max(options_.config.bus.arbitration_us, plan_.lookahead_us);
  const ShardId home = plan_.shard_of_cluster(from);
  sharded_->ScheduleOn(
      kSharedShard, hop,
      [this, home, hop, server, batch = std::move(batch),
       done = std::move(done)]() mutable {
        auto it = server_disks_.find(server.value);
        AURAGEN_CHECK(it != server_disks_.end()) << "no disk bound to " << GpidStr(server);
        if (tracer_ != nullptr) {
          uint64_t bytes = 0;
          for (const auto& [block, data] : batch) bytes += data.size();
          // One trace event for the whole transaction; a = first home block,
          // channel = batch size.
          tracer_->Record(TraceEventKind::kDiskWrite, kNoCluster, server.value,
                          batch.size(), batch.front().first, bytes);
        }
        it->second->WriteMulti(std::move(batch),
                               [this, home, hop, done = std::move(done)](Result<void> r) mutable {
                                 sharded_->ScheduleOn(home, hop,
                                                      [done = std::move(done), r]() mutable {
                                                        done(r);
                                                      });
                               });
      });
}

void Machine::TtyEmitFrom(ClusterId /*from*/, Gpid server, const Bytes& data) {
  ByteReader r(data);
  TtyRecord rec;
  rec.line = r.U32();
  rec.seq = r.U64();
  Bytes text = r.Blob();
  rec.text.assign(text.begin(), text.end());
  rec.at = LocalNow();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kTtyEmit, kNoCluster, server.value, 0, rec.line,
                    rec.seq);
  }
  std::lock_guard<std::mutex> lk(state_mu_);
  auto& per_line = tty_dedup_[rec.line];
  if (per_line.count(rec.seq) != 0) {
    ++tty_duplicates_;  // recovery re-emission (§7.9 window); content equal
  } else {
    per_line[rec.seq] = rec.text;
  }
  tty_raw_.push_back(std::move(rec));
}

ClusterId Machine::PlaceNewBackupFrom(ClusterId from, ClusterId avoid_a, ClusterId avoid_b) {
  const Kernel& believer = *kernels_[from];
  for (ClusterId c = 0; c < kernels_.size(); ++c) {
    if (c == avoid_a || c == avoid_b) {
      continue;
    }
    const bool usable = c == from ? believer.alive() : believer.PeerBelievedAlive(c);
    if (usable) {
      return c;
    }
  }
  return kNoCluster;
}

std::unique_ptr<NativeProgram> Machine::MakeServerProgram(Gpid pid) {
  if (pid == kPsPid) {
    return std::make_unique<ProcessServerProgram>();
  }
  for (uint32_t s = 0; s < page_addrs_.size(); ++s) {
    if (pid == PageShardPid(s)) {
      return std::make_unique<PageServerProgram>(options_.page_server);
    }
  }
  if (pid == kFsPid) {
    return std::make_unique<FileServerProgram>(options_.file_server);
  }
  if (pid == kTtyPid) {
    return std::make_unique<TtyServerProgram>(options_.tty_server);
  }
  AURAGEN_PANIC("unknown server pid");
}

void Machine::OnServerTakeover(Gpid pid, ClusterId new_cluster) {
  std::lock_guard<std::mutex> lk(state_mu_);
  server_locations_[pid.value] = new_cluster;
  auto patch = [&](ServerAddr& addr) {
    if (addr.pid == pid) {
      addr.primary = new_cluster;
      addr.backup = kNoCluster;  // halfback: re-backed when the old cluster returns
    }
  };
  patch(fs_addr_);
  patch(ps_addr_);
  patch(tty_addr_);
  for (ServerAddr& addr : page_addrs_) {
    patch(addr);
  }
}

void Machine::OnProcessExit(Gpid pid, int32_t status) {
  std::lock_guard<std::mutex> lk(state_mu_);
  exit_statuses_[pid.value] = status;
}

void Machine::OnDebugPutc(Gpid pid, char c) {
  std::lock_guard<std::mutex> lk(state_mu_);
  debug_output_[pid.value].push_back(c);
}

}  // namespace auragen
