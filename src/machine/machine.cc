#include "src/machine/machine.h"

#include <algorithm>
#include <utility>

#include "src/base/log.h"
#include "src/servers/protocol.h"

namespace auragen {

constexpr Gpid Machine::kFsPid;
constexpr Gpid Machine::kPsPid;
constexpr Gpid Machine::kTtyPid;
constexpr Gpid Machine::kPagePid;

Machine::Machine(MachineOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  const SystemConfig& cfg = options_.config;
  if (options_.trace.enabled) {
    tracer_ = std::make_unique<Tracer>(options_.trace);
    tracer_->set_clock([this] { return engine_.Now(); });
    engine_.set_tracer(tracer_.get());
    options_.file_server.tracer = tracer_.get();
    options_.page_server.tracer = tracer_.get();
  }
  bus_ = std::make_unique<InterclusterBus>(engine_, cfg.bus, cfg.num_clusters);
  bus_->set_tracer(tracer_.get());
  fs_disk_ = std::make_unique<MirroredDisk>(engine_, options_.disk, options_.fs_cluster,
                                            options_.fs_backup);
  page_disk_ = std::make_unique<MirroredDisk>(engine_, options_.disk, options_.page_cluster,
                                              options_.page_backup);
  for (ClusterId c = 0; c < cfg.num_clusters; ++c) {
    kernels_.push_back(std::make_unique<Kernel>(*this, c));
    kernels_.back()->set_tracer(tracer_.get());
  }
}

Machine::~Machine() = default;

void Machine::Boot() {
  AURAGEN_CHECK(!booted_) << "Boot() called twice";
  booted_ = true;
  for (auto& kernel : kernels_) {
    kernel->Start();
  }
  SpawnServers();
  // Let server spawn traffic (channel fabrication, filesystem format)
  // settle before user work arrives.
  Run(20000);
}

void Machine::SpawnServers() {
  const bool ft = options_.config.strategy == FtStrategy::kMessageSystem;

  fs_addr_ = ServerAddr{kFsPid, options_.fs_cluster, ft ? options_.fs_backup : kNoCluster};
  ps_addr_ = ServerAddr{kPsPid, options_.ps_cluster, ft ? options_.ps_backup : kNoCluster};
  tty_addr_ =
      ServerAddr{kTtyPid, options_.tty_cluster, ft ? options_.tty_backup : kNoCluster};
  page_addr_ =
      ServerAddr{kPagePid, options_.page_cluster, ft ? options_.page_backup : kNoCluster};

  server_disks_[kFsPid.value] = fs_disk_.get();
  server_disks_[kPagePid.value] = page_disk_.get();
  server_locations_[kFsPid.value] = options_.fs_cluster;
  server_locations_[kPsPid.value] = options_.ps_cluster;
  server_locations_[kTtyPid.value] = options_.tty_cluster;
  server_locations_[kPagePid.value] = options_.page_cluster;

  auto spawn_peripheral = [&](Gpid pid, ClusterId primary, ClusterId backup,
                              auto make_program) {
    SpawnSpec spec;
    spec.native = make_program();
    spec.peripheral = true;
    spec.mode = BackupMode::kHalfback;  // §7.3: peripheral servers
    spec.fixed_pid = pid;
    spec.backup_cluster = ft ? backup : kNoCluster;
    if (pid == kTtyPid) {
      // The tty server routes ^C through the process server (§7.5.2).
      spec.proc_server = ps_addr_;
    }
    kernels_[primary]->Spawn(std::move(spec));
    if (ft && backup != kNoCluster) {
      SpawnSpec bspec;
      bspec.native = make_program();
      bspec.peripheral = true;
      bspec.mode = BackupMode::kHalfback;
      bspec.fixed_pid = pid;
      bspec.server_backup = true;
      bspec.primary_cluster = primary;
      kernels_[backup]->Spawn(std::move(bspec));
    }
  };

  spawn_peripheral(kPagePid, options_.page_cluster, options_.page_backup, [&] {
    return std::make_unique<PageServerProgram>(options_.page_server);
  });
  spawn_peripheral(kFsPid, options_.fs_cluster, options_.fs_backup, [&] {
    return std::make_unique<FileServerProgram>(options_.file_server);
  });
  spawn_peripheral(kTtyPid, options_.tty_cluster, options_.tty_backup,
                   [&] { return std::make_unique<TtyServerProgram>(options_.tty_server); });

  // The process server is a *system* server (§7.6): standard page-diff sync
  // through the message system, passive backup PCB.
  {
    SpawnSpec spec;
    spec.native = std::make_unique<ProcessServerProgram>();
    spec.native_paged_ft = true;
    spec.mode = BackupMode::kQuarterback;
    spec.fixed_pid = kPsPid;
    spec.backup_cluster = ft ? options_.ps_backup : kNoCluster;
    // Aggressive sync keeps the PS backup near-current (it is tiny).
    spec.sync_reads_limit = 8;
    kernels_[options_.ps_cluster]->Spawn(std::move(spec));
  }

  // Kernel page channels (§7.6): every kernel talks to the page server.
  for (auto& kernel : kernels_) {
    kernel->CreateKernelChannel(page_addr_, kBindPageChannel);
  }
}

Gpid Machine::SpawnUserProgram(ClusterId cluster, const Executable& exe,
                               const UserSpawnOptions& opts) {
  AURAGEN_CHECK(booted_) << "SpawnUserProgram before Boot";
  SpawnSpec spec;
  spec.exe = exe;
  spec.mode = opts.mode;
  if (options_.config.strategy == FtStrategy::kNone) {
    spec.backup_cluster = kNoCluster;
  } else if (opts.backup_cluster != kNoCluster) {
    spec.backup_cluster = opts.backup_cluster;
  } else {
    // Default placement: the next *alive* cluster (none alive -> no backup).
    spec.backup_cluster = kNoCluster;
    for (uint32_t step = 1; step < options_.config.num_clusters; ++step) {
      ClusterId candidate = (cluster + step) % options_.config.num_clusters;
      if (kernels_[candidate]->alive()) {
        spec.backup_cluster = candidate;
        break;
      }
    }
  }
  spec.sync_reads_limit = opts.sync_reads_limit;
  spec.sync_time_limit_us = opts.sync_time_limit_us;
  spec.file_server = fs_addr_;
  spec.proc_server = ps_addr_;
  if (opts.with_tty) {
    spec.tty_server = tty_addr_;
    spec.tty_line = opts.tty_line;
  }
  Gpid pid = kernels_[cluster]->Spawn(std::move(spec));
  user_pids_.push_back(pid);
  return pid;
}

bool Machine::RunUntil(const std::function<bool()>& pred, SimTime max_duration) {
  SimTime deadline = engine_.Now() + max_duration;
  while (!pred()) {
    if (!engine_.Step(deadline)) {
      return pred();
    }
  }
  return true;
}

bool Machine::RunUntilAllExited(SimTime max_duration) {
  return RunUntil(
      [this] {
        for (Gpid pid : user_pids_) {
          if (exit_statuses_.count(pid.value) == 0) {
            return false;
          }
        }
        return true;
      },
      max_duration);
}

void Machine::CrashCluster(ClusterId cluster) {
  AURAGEN_CHECK(cluster < kernels_.size());
  kernels_[cluster]->CrashNow();
}

void Machine::CrashClusterAt(SimTime when, ClusterId cluster) {
  engine_.ScheduleAt(when, [this, cluster] { CrashCluster(cluster); });
}

void Machine::RestoreCluster(ClusterId cluster) {
  kernels_[cluster]->Restart();
  kernels_[cluster]->CreateKernelChannel(page_addr_, kBindPageChannel);
  // §7.3: halfbacks get new backups when the crashed cluster returns.
  // Every unprotected peripheral server whose disk (if any) reaches the
  // restored cluster re-creates its active backup there.
  engine_.Schedule(1000, [this, cluster] {
    for (Gpid pid : {kFsPid, kPagePid, kTtyPid}) {
      auto loc = server_locations_.find(pid.value);
      if (loc == server_locations_.end() || !kernels_[loc->second]->alive()) {
        continue;
      }
      Pcb* pcb = kernels_[loc->second]->FindProcess(pid);
      if (pcb == nullptr || pcb->server_backup || pcb->backup_cluster != kNoCluster) {
        continue;
      }
      auto disk = server_disks_.find(pid.value);
      if (disk != server_disks_.end() && !disk->second->AttachedTo(cluster)) {
        continue;  // §7.9: the backup must sit on the other disk port
      }
      kernels_[loc->second]->RecreateServerBackup(pid, cluster);
      auto patch = [&](ServerAddr& addr) {
        if (addr.pid == pid) {
          addr.backup = cluster;
        }
      };
      patch(fs_addr_);
      patch(ps_addr_);
      patch(tty_addr_);
      patch(page_addr_);
    }
  });
}

void Machine::InjectTtyInput(uint32_t line, const std::string& text, SimTime at) {
  engine_.ScheduleAt(at, [this, line, text] {
    auto it = server_locations_.find(kTtyPid.value);
    if (it == server_locations_.end() || !kernels_[it->second]->alive()) {
      return;  // terminal line dead with its cluster; user must retype
    }
    ByteWriter w;
    w.U8(static_cast<uint8_t>(ReqTag::kDevInput));
    w.U32(line);
    w.Blob(Bytes(text.begin(), text.end()));
    kernels_[it->second]->InjectLocalMessage(kTtyPid, kBindSelfChannel, w.Take());
  });
}

std::string Machine::TtyOutput(uint32_t line) const {
  auto it = tty_dedup_.find(line);
  if (it == tty_dedup_.end()) {
    return {};
  }
  std::string out;
  for (const auto& [seq, text] : it->second) {
    out += text;
  }
  return out;
}

size_t Machine::TotalLiveProcesses() const {
  size_t n = 0;
  for (const auto& kernel : kernels_) {
    if (kernel->alive()) {
      n += kernel->num_live_processes();
    }
  }
  return n;
}

// ------------------------------------------------------------- MachineEnv

void Machine::DiskRead(Gpid server, BlockNum block,
                       std::function<void(Result<Bytes>)> done) {
  auto it = server_disks_.find(server.value);
  AURAGEN_CHECK(it != server_disks_.end()) << "no disk bound to " << GpidStr(server);
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kDiskRead, kNoCluster, server.value, 0, block, 0);
  }
  it->second->Read(block, std::move(done));
}

void Machine::DiskWrite(Gpid server, BlockNum block, Bytes data,
                        std::function<void(Result<void>)> done) {
  auto it = server_disks_.find(server.value);
  AURAGEN_CHECK(it != server_disks_.end()) << "no disk bound to " << GpidStr(server);
  if (server == kFsPid) {
    metrics_.fileserver_disk_bytes += data.size();
  }
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kDiskWrite, kNoCluster, server.value, 0, block,
                    data.size());
  }
  it->second->Write(block, std::move(data), std::move(done));
}

void Machine::TtyEmit(Gpid server, const Bytes& data) {
  ByteReader r(data);
  TtyRecord rec;
  rec.line = r.U32();
  rec.seq = r.U64();
  Bytes text = r.Blob();
  rec.text.assign(text.begin(), text.end());
  rec.at = engine_.Now();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kTtyEmit, kNoCluster, server.value, 0, rec.line,
                    rec.seq);
  }
  auto& per_line = tty_dedup_[rec.line];
  if (per_line.count(rec.seq) != 0) {
    ++tty_duplicates_;  // recovery re-emission (§7.9 window); content equal
  } else {
    per_line[rec.seq] = rec.text;
  }
  tty_raw_.push_back(std::move(rec));
}

ClusterId Machine::PlaceNewBackup(ClusterId avoid_a, ClusterId avoid_b) {
  for (ClusterId c = 0; c < kernels_.size(); ++c) {
    if (c != avoid_a && c != avoid_b && kernels_[c]->alive()) {
      return c;
    }
  }
  return kNoCluster;
}

std::unique_ptr<NativeProgram> Machine::MakeServerProgram(Gpid pid) {
  if (pid == kPsPid) {
    return std::make_unique<ProcessServerProgram>();
  }
  if (pid == kPagePid) {
    return std::make_unique<PageServerProgram>(options_.page_server);
  }
  if (pid == kFsPid) {
    return std::make_unique<FileServerProgram>(options_.file_server);
  }
  if (pid == kTtyPid) {
    return std::make_unique<TtyServerProgram>(options_.tty_server);
  }
  AURAGEN_PANIC("unknown server pid");
}

void Machine::OnServerTakeover(Gpid pid, ClusterId new_cluster) {
  server_locations_[pid.value] = new_cluster;
  auto patch = [&](ServerAddr& addr) {
    if (addr.pid == pid) {
      addr.primary = new_cluster;
      addr.backup = kNoCluster;  // halfback: re-backed when the old cluster returns
    }
  };
  patch(fs_addr_);
  patch(ps_addr_);
  patch(tty_addr_);
  patch(page_addr_);
}

void Machine::OnProcessExit(Gpid pid, int32_t status) {
  exit_statuses_[pid.value] = status;
}

void Machine::OnDebugPutc(Gpid pid, char c) { debug_output_[pid.value].push_back(c); }

}  // namespace auragen
