// Machine: the whole simulated Auragen 4000 — clusters with kernels, the
// dual intercluster bus, dual-ported mirrored disks, and the operating-
// system server processes (§7.1, §7.6). This is the public entry point of
// the library: construct one, Boot() it, spawn guest programs, drive the
// simulation, crash clusters, and observe transcripts and metrics.

#ifndef AURAGEN_SRC_MACHINE_MACHINE_H_
#define AURAGEN_SRC_MACHINE_MACHINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/core/kernel.h"
#include "src/disk/disk.h"
#include "src/paging/page_server.h"
#include "src/servers/file_server.h"
#include "src/servers/process_server.h"
#include "src/servers/tty_server.h"
#include "src/trace/trace.h"

namespace auragen {

// A primary/backup cluster pair: the placement of one server role, or the
// two ports of a dual-ported disk.
struct ClusterPair {
  ClusterId primary = 0;
  ClusterId backup = 1;
};

// Placement of every operating-system server and disk port. Replaces the
// former eight loose fs_cluster/fs_backup/... fields so a placement can be
// validated as a whole: §7.9 requires peripheral servers (and their active
// backups) to sit on a port of their disk, and a backup must never share a
// cluster with its primary.
struct ServerPlacement {
  ClusterPair file{0, 1};
  ClusterPair process{0, 1};
  ClusterPair tty{0, 1};
  // Page-server shard 0. With SystemConfig::page_shards > 1, shard s is
  // placed at ((page.* + s) mod num_clusters) — and so are its disk ports,
  // which keeps §7.9 holding for every shard whenever it holds for shard 0.
  ClusterPair page{1, 0};
  ClusterPair file_disk{0, 1};  // dual-port attachment of the file-system disk
  ClusterPair page_disk{1, 0};  // dual-port attachment of the paging disk(s)

  // "" when valid; otherwise an actionable diagnostic naming the offending
  // role. Backup and disk-port constraints are enforced only under the
  // message-system strategy — without it, backups are never spawned.
  std::string Validate(const SystemConfig& config) const;
};

struct MachineOptions {
  SystemConfig config;
  uint64_t seed = 1;
  DiskConfig disk;

  ServerPlacement placement;

  PageServerOptions page_server;
  FileServerOptions file_server;
  TtyServerOptions tty_server;

  // Event tracing (flight recorder). Disabled by default; when enabled the
  // Machine owns a Tracer and wires it through the engine, bus, kernels, and
  // servers. Write-only observability: enabling it never changes a run.
  TraceOptions trace;

  // "" when valid; Machine::Boot() aborts with this diagnostic otherwise.
  std::string Validate() const;

  // Fluent configuration path. Plain aggregate / field-assignment init keeps
  // working; these just let call sites chain the common knobs:
  //   MachineOptions().WithClusters(4).WithSyncMode(SyncMode::kIncrementalAsync)
  MachineOptions& WithSeed(uint64_t s) { seed = s; return *this; }
  MachineOptions& WithClusters(uint32_t n) { config.num_clusters = n; return *this; }
  MachineOptions& WithStrategy(FtStrategy s) { config.strategy = s; return *this; }
  MachineOptions& WithSyncPolicy(const SyncPolicy& p) { config.sync_policy = p; return *this; }
  MachineOptions& WithSyncMode(SyncMode m) { config.sync_policy.mode = m; return *this; }
  MachineOptions& WithAdaptiveSync(bool on = true) {
    config.sync_policy.adaptive = on;
    return *this;
  }
  MachineOptions& WithSyncLimits(uint32_t reads, SimTime time_us) {
    config.sync_reads_limit = reads;
    config.sync_time_limit_us = time_us;
    return *this;
  }
  MachineOptions& WithPageShards(uint32_t n) { config.page_shards = n; return *this; }
  MachineOptions& WithPlacement(const ServerPlacement& p) { placement = p; return *this; }
  MachineOptions& WithTrace(bool on = true) { trace.enabled = on; return *this; }
};

// One emitted terminal record (kTtyEmit payload plus arrival time).
struct TtyRecord {
  uint32_t line = 0;
  uint64_t seq = 0;
  std::string text;
  SimTime at = 0;
};

class Machine : public MachineEnv {
 public:
  explicit Machine(MachineOptions options);
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Creates the servers and their backups, wires kernel page channels, and
  // lets the machine settle (spawn traffic drains). Call once.
  void Boot();

  struct UserSpawnOptions {
    BackupMode mode = BackupMode::kQuarterback;
    ClusterId backup_cluster = kNoCluster;  // kNoCluster: pick the next cluster
    bool with_tty = false;
    uint32_t tty_line = 0;
    uint32_t sync_reads_limit = 0;  // 0: system default
    SimTime sync_time_limit_us = 0;
  };
  Gpid SpawnUserProgram(ClusterId cluster, const Executable& exe,
                        const UserSpawnOptions& opts);
  Gpid SpawnUserProgram(ClusterId cluster, const Executable& exe) {
    return SpawnUserProgram(cluster, exe, UserSpawnOptions{});
  }

  // --- driving the simulation ---
  Engine& engine() override { return engine_; }
  void Run(SimTime duration) { engine_.Run(engine_.Now() + duration); }
  // Steps until `pred` holds or `max_duration` elapses; true if pred held.
  bool RunUntil(const std::function<bool()>& pred, SimTime max_duration);
  // Runs until every spawned user process has exited (or timeout).
  bool RunUntilAllExited(SimTime max_duration);
  // Drains in-flight traffic (outgoing queues, bus, servers): writes are
  // asynchronous (§7.4.2), so output observed right at a process's exit may
  // still be in flight.
  void Settle(SimTime duration = 500'000) { Run(duration); }

  // --- fault injection ---
  void CrashCluster(ClusterId cluster);
  void CrashClusterAt(SimTime when, ClusterId cluster);
  // Returns a restored cluster to service. Peripheral servers whose backups
  // died with it re-create them there (§7.3 halfback return-to-service).
  void RestoreCluster(ClusterId cluster);
  bool ClusterAlive(ClusterId cluster) const { return kernels_[cluster]->alive(); }
  // §10 extension: an isolatable hardware fault kills one process; its
  // backup is brought up without a cluster crash.
  void FailProcess(ClusterId cluster, Gpid pid) { kernels_[cluster]->FailProcess(pid); }

  // --- terminal I/O ---
  void InjectTtyInput(uint32_t line, const std::string& text, SimTime at);
  const std::vector<TtyRecord>& tty_raw() const { return tty_raw_; }
  // Exactly-once view: records deduplicated by (line, seq), concatenated.
  std::string TtyOutput(uint32_t line) const;
  uint64_t TtyDuplicates() const { return tty_duplicates_; }

  // --- observation ---
  Kernel& kernel(ClusterId cluster) { return *kernels_[cluster]; }
  Metrics& metrics() override { return metrics_; }
  const std::map<uint64_t, int32_t>& exit_statuses() const { return exit_statuses_; }
  bool HasExited(Gpid pid) const { return exit_statuses_.count(pid.value) != 0; }
  int32_t ExitStatus(Gpid pid) const { return exit_statuses_.at(pid.value); }
  const std::string& DebugOutput(Gpid pid) { return debug_output_[pid.value]; }
  size_t TotalLiveProcesses() const;

  ServerAddr file_server_addr() const { return fs_addr_; }
  ServerAddr proc_server_addr() const { return ps_addr_; }
  ServerAddr tty_server_addr() const { return tty_addr_; }
  ServerAddr page_server_addr(uint32_t shard = 0) const { return page_addrs_[shard]; }
  uint32_t page_shard_count() const { return static_cast<uint32_t>(page_addrs_.size()); }
  MirroredDisk& fs_disk() { return *fs_disk_; }
  MirroredDisk& page_disk(uint32_t shard = 0) { return *page_disks_[shard]; }
  // Null unless MachineOptions::trace.enabled was set.
  Tracer* tracer() { return tracer_.get(); }
  InterclusterBus& bus() override { return *bus_; }
  const SystemConfig& config() const override { return options_.config; }
  Rng& rng() { return rng_; }

  // --- MachineEnv ---
  void DiskRead(Gpid server, BlockNum block,
                std::function<void(Result<Bytes>)> done) override;
  void DiskWrite(Gpid server, BlockNum block, Bytes data,
                 std::function<void(Result<void>)> done) override;
  void TtyEmit(Gpid server, const Bytes& data) override;
  ClusterId PlaceNewBackup(ClusterId avoid_a, ClusterId avoid_b) override;
  std::unique_ptr<NativeProgram> MakeServerProgram(Gpid pid) override;
  void OnServerTakeover(Gpid pid, ClusterId new_cluster) override;
  void OnProcessExit(Gpid pid, int32_t status) override;
  void OnDebugPutc(Gpid pid, char c) override;

  // Well-known server pids (cluster 32 is fictitious: these ids can never
  // collide with kernel-allocated pids).
  static constexpr Gpid kFsPid = Gpid::Make(32, 2);
  static constexpr Gpid kPsPid = Gpid::Make(32, 3);
  static constexpr Gpid kTtyPid = Gpid::Make(32, 4);
  // Page-server shard s is pid Make(32, 5 + s); kPagePid is shard 0.
  static constexpr Gpid kPagePid = Gpid::Make(32, 5);
  static constexpr Gpid PageShardPid(uint32_t shard) { return Gpid::Make(32, 5 + shard); }

 private:
  void SpawnServers();

  MachineOptions options_;
  Engine engine_;
  Rng rng_;
  Metrics metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<InterclusterBus> bus_;
  std::unique_ptr<MirroredDisk> fs_disk_;
  std::vector<std::unique_ptr<MirroredDisk>> page_disks_;  // one per shard
  std::vector<std::unique_ptr<Kernel>> kernels_;

  ServerAddr fs_addr_;
  ServerAddr ps_addr_;
  ServerAddr tty_addr_;
  std::vector<ServerAddr> page_addrs_;  // one per shard

  std::map<uint64_t, MirroredDisk*> server_disks_;  // pid.value -> disk
  std::map<uint64_t, ClusterId> server_locations_;  // pid.value -> cluster

  std::vector<TtyRecord> tty_raw_;
  std::map<uint32_t, std::map<uint64_t, std::string>> tty_dedup_;  // line -> seq -> text
  uint64_t tty_duplicates_ = 0;

  std::map<uint64_t, int32_t> exit_statuses_;
  std::map<uint64_t, std::string> debug_output_;
  std::vector<Gpid> user_pids_;
  bool booted_ = false;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_MACHINE_MACHINE_H_
