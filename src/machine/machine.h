// Machine: the whole simulated Auragen 4000 — clusters with kernels, the
// segmented intercluster fabric (per-segment dual buses bridged by switch
// nodes; src/bus/fabric.h), dual-ported mirrored disks, and the operating-
// system server processes (§7.1, §7.6). This is the public entry point of
// the library: construct one, Boot() it, spawn guest programs, drive the
// simulation, crash clusters, and observe transcripts and metrics.

#ifndef AURAGEN_SRC_MACHINE_MACHINE_H_
#define AURAGEN_SRC_MACHINE_MACHINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/core/kernel.h"
#include "src/disk/disk.h"
#include "src/machine/shard_plan.h"
#include "src/paging/page_server.h"
#include "src/servers/file_server.h"
#include "src/servers/process_server.h"
#include "src/servers/tty_server.h"
#include "src/sim/sharded_engine.h"
#include "src/trace/trace.h"

namespace auragen {

// A primary/backup cluster pair: the placement of one server role, or the
// two ports of a dual-ported disk.
struct ClusterPair {
  ClusterId primary = 0;
  ClusterId backup = 1;
};

// Placement of every operating-system server and disk port. Replaces the
// former eight loose fs_cluster/fs_backup/... fields so a placement can be
// validated as a whole: §7.9 requires peripheral servers (and their active
// backups) to sit on a port of their disk, and a backup must never share a
// cluster with its primary.
struct ServerPlacement {
  ClusterPair file{0, 1};
  ClusterPair process{0, 1};
  ClusterPair tty{0, 1};
  // Page-server shard 0. With SystemConfig::page_shards > 1, shard s is
  // placed by rotating these pairs across the topology: on a single segment
  // shard s lands at ((page.* + s) mod num_clusters); on a multi-segment
  // fabric shard s lands in segment (s mod num_segments), rotated within
  // that segment (Machine::PageShardPlace). The disk ports rotate the same
  // way, which keeps §7.9 holding for every shard whenever it holds for
  // shard 0.
  ClusterPair page{1, 0};
  ClusterPair file_disk{0, 1};  // dual-port attachment of the file-system disk
  ClusterPair page_disk{1, 0};  // dual-port attachment of the paging disk(s)

  // "" when valid; otherwise an actionable diagnostic naming the offending
  // role. Backup and disk-port constraints are enforced only under the
  // message-system strategy — without it, backups are never spawned. On a
  // multi-segment topology a primary and its backup (and a disk's two
  // ports) must additionally share a segment: recovery traffic must not
  // depend on a switch surviving the fault it is recovering from.
  std::string Validate(const SystemConfig& config) const;
};

struct MachineOptions {
  SystemConfig config;
  uint64_t seed = 1;
  DiskConfig disk;

  // Worker threads driving the sharded engine (ShardPlan layout: shard 0 =
  // bus + disks, shard 1+c = cluster c). 1 runs the same windowed code path
  // without spawning threads; trace digests are bit-identical for every
  // value (DESIGN.md §17).
  uint32_t engine_threads = 1;

  ServerPlacement placement;

  PageServerOptions page_server;
  FileServerOptions file_server;
  TtyServerOptions tty_server;

  // Event tracing (flight recorder). Disabled by default; when enabled the
  // Machine owns a Tracer and wires it through the engine, bus, kernels, and
  // servers. Write-only observability: enabling it never changes a run.
  TraceOptions trace;

  // "" when valid; Machine::Boot() aborts with this diagnostic otherwise.
  std::string Validate() const;

  // Fluent configuration path. Plain aggregate / field-assignment init keeps
  // working; these just let call sites chain the common knobs:
  //   MachineOptions().WithClusters(4).WithSyncMode(SyncMode::kIncrementalAsync)
  MachineOptions& WithSeed(uint64_t s) { seed = s; return *this; }
  // Deprecated single-segment shim: `WithClusters(n)` configures the
  // pre-fabric machine — one segment, n clusters on one dual bus — and
  // clears any topology set earlier so the two stay consistent. New call
  // sites should describe the fabric with WithTopology.
  MachineOptions& WithClusters(uint32_t n) {
    config.num_clusters = n;
    config.topology = Topology{};
    return *this;
  }
  // Sets the fabric topology and keeps config.num_clusters — which Boot()
  // CHECKs against it — in sync. The Topology is the single source of truth
  // for the cluster count.
  MachineOptions& WithTopology(const Topology& t) {
    config.topology = t;
    config.num_clusters = t.num_clusters();
    return *this;
  }
  MachineOptions& WithStrategy(FtStrategy s) { config.strategy = s; return *this; }
  MachineOptions& WithSyncPolicy(const SyncPolicy& p) { config.sync_policy = p; return *this; }
  MachineOptions& WithSyncMode(SyncMode m) { config.sync_policy.mode = m; return *this; }
  MachineOptions& WithAdaptiveSync(bool on = true) {
    config.sync_policy.adaptive = on;
    return *this;
  }
  MachineOptions& WithSyncLimits(uint32_t reads, SimTime time_us) {
    config.sync_reads_limit = reads;
    config.sync_time_limit_us = time_us;
    return *this;
  }
  MachineOptions& WithPageShards(uint32_t n) { config.page_shards = n; return *this; }
  MachineOptions& WithEngineThreads(uint32_t n) { engine_threads = n; return *this; }
  MachineOptions& WithPlacement(const ServerPlacement& p) { placement = p; return *this; }
  MachineOptions& WithTrace(bool on = true) { trace.enabled = on; return *this; }
};

// One emitted terminal record (kTtyEmit payload plus arrival time).
struct TtyRecord {
  uint32_t line = 0;
  uint64_t seq = 0;
  std::string text;
  SimTime at = 0;
};

class Machine;

// A cluster's private view of the machine (its MachineEnv). Each kernel gets
// its own, carrying the cluster shard's Engine core and a cluster-local
// Metrics object, so nothing a kernel touches through its env is shared
// mutable state across shards. Machine-level callbacks (exit records, tty
// transcripts, server directory updates) forward to the Machine, which
// guards its cross-cluster maps.
class ClusterEnv : public MachineEnv {
 public:
  ClusterEnv(Machine& machine, ClusterId cluster);

  Engine& engine() override;
  Fabric& bus() override;
  const SystemConfig& config() const override;
  Metrics& metrics() override { return metrics_; }
  void DiskRead(Gpid server, BlockNum block,
                std::function<void(Result<Bytes>)> done) override;
  void DiskWrite(Gpid server, BlockNum block, Bytes data,
                 std::function<void(Result<void>)> done) override;
  void DiskWriteMulti(Gpid server, DiskWriteBatch batch,
                      std::function<void(Result<void>)> done) override;
  void TtyEmit(Gpid server, const Bytes& data) override;
  ClusterId PlaceNewBackup(ClusterId avoid_a, ClusterId avoid_b) override;
  std::unique_ptr<NativeProgram> MakeServerProgram(Gpid pid) override;
  void OnServerTakeover(Gpid pid, ClusterId new_cluster) override;
  void OnProcessExit(Gpid pid, int32_t status) override;
  void OnDebugPutc(Gpid pid, char c) override;

 private:
  Machine& machine_;
  ClusterId cluster_;
  Metrics metrics_;
};

class Machine {
 public:
  explicit Machine(MachineOptions options);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Creates the servers and their backups, wires kernel page channels, and
  // lets the machine settle (spawn traffic drains). Call once.
  void Boot();

  struct UserSpawnOptions {
    BackupMode mode = BackupMode::kQuarterback;
    ClusterId backup_cluster = kNoCluster;  // kNoCluster: pick the next cluster
    bool with_tty = false;
    uint32_t tty_line = 0;
    uint32_t sync_reads_limit = 0;  // 0: system default
    SimTime sync_time_limit_us = 0;
  };
  Gpid SpawnUserProgram(ClusterId cluster, const Executable& exe,
                        const UserSpawnOptions& opts);
  Gpid SpawnUserProgram(ClusterId cluster, const Executable& exe) {
    return SpawnUserProgram(cluster, exe, UserSpawnOptions{});
  }

  // --- driving the simulation ---
  // The machine always runs on the sharded engine (threads=1 is the
  // sequential reference execution of the same windowed code path).
  ShardedEngine& sharded_engine() { return *sharded_; }
  const ShardPlan& shard_plan() const { return plan_; }
  SimTime Now() const { return sharded_->Now(); }
  uint64_t dispatched() const { return sharded_->dispatched(); }
  void set_dispatch_limit(uint64_t limit) { sharded_->set_dispatch_limit(limit); }
  bool dispatch_limit_hit() const { return sharded_->dispatch_limit_hit(); }
  void Run(SimTime duration);
  // Runs until `pred` holds or `max_duration` elapses; true if pred held.
  // The predicate is evaluated at window barriers (the deterministic unit of
  // parallel progress), so a run may overshoot by up to the lookahead.
  bool RunUntil(const std::function<bool()>& pred, SimTime max_duration);
  // Runs until every spawned user process has exited (or timeout).
  bool RunUntilAllExited(SimTime max_duration);
  // Drains in-flight traffic (outgoing queues, bus, servers): writes are
  // asynchronous (§7.4.2), so output observed right at a process's exit may
  // still be in flight.
  void Settle(SimTime duration = 500'000) { Run(duration); }

  // Machine-level actions during a run (fault injection, console input)
  // are control events: they fire between windows with every shard clock
  // aligned, so they may touch any cluster and are deterministic at any
  // thread count. See ShardedEngine::ScheduleControlAt.
  void ScheduleControlAt(SimTime when, Task fn) {
    sharded_->ScheduleControlAt(when, std::move(fn));
  }
  void ScheduleControl(SimTime delay, Task fn) {
    sharded_->ScheduleControl(delay, std::move(fn));
  }

  // --- fault injection ---
  void CrashCluster(ClusterId cluster);
  void CrashClusterAt(SimTime when, ClusterId cluster);
  // Bus line faults (dual-line outage scenarios). Applied to every segment
  // at once (Fabric::FailLine). Safe outside a run or from a control event.
  void FailBusLine(int line);
  void RestoreBusLine(int line);
  // Switch faults (multi-segment topologies): failing segment `s`'s switch
  // isolates it from the rest of the fabric — cross-segment frames hold at
  // the switch and the trunk, FIFO, and drain on restore; nothing is
  // dropped. Safe outside a run or from a control event.
  void FailSwitch(SegmentId segment) { bus_->FailSwitch(segment); }
  void RestoreSwitch(SegmentId segment) { bus_->RestoreSwitch(segment); }
  bool SwitchOk(SegmentId segment) const { return bus_->SwitchOk(segment); }
  // Returns a restored cluster to service. Peripheral servers whose backups
  // died with it re-create them there (§7.3 halfback return-to-service).
  void RestoreCluster(ClusterId cluster);
  bool ClusterAlive(ClusterId cluster) const { return kernels_[cluster]->alive(); }
  // §10 extension: an isolatable hardware fault kills one process; its
  // backup is brought up without a cluster crash.
  void FailProcess(ClusterId cluster, Gpid pid) { kernels_[cluster]->FailProcess(pid); }

  // --- terminal I/O ---
  void InjectTtyInput(uint32_t line, const std::string& text, SimTime at);
  const std::vector<TtyRecord>& tty_raw() const { return tty_raw_; }
  // Exactly-once view: records deduplicated by (line, seq), concatenated.
  std::string TtyOutput(uint32_t line) const;
  uint64_t TtyDuplicates() const { return tty_duplicates_; }

  // --- observation ---
  Kernel& kernel(ClusterId cluster) { return *kernels_[cluster]; }
  // Machine-wide metrics, aggregated across the per-cluster Metrics objects
  // (counters sum; the last_* stamps take the machine-wide max).
  Metrics metrics() const;
  // A single cluster's own counters.
  Metrics& cluster_metrics(ClusterId cluster) { return envs_[cluster]->metrics(); }
  const std::map<uint64_t, int32_t>& exit_statuses() const { return exit_statuses_; }
  bool HasExited(Gpid pid) const { return exit_statuses_.count(pid.value) != 0; }
  int32_t ExitStatus(Gpid pid) const { return exit_statuses_.at(pid.value); }
  const std::string& DebugOutput(Gpid pid) { return debug_output_[pid.value]; }
  size_t TotalLiveProcesses() const;

  ServerAddr file_server_addr() const { return fs_addr_; }
  ServerAddr proc_server_addr() const { return ps_addr_; }
  ServerAddr tty_server_addr() const { return tty_addr_; }
  ServerAddr page_server_addr(uint32_t shard = 0) const { return page_addrs_[shard]; }
  uint32_t page_shard_count() const { return static_cast<uint32_t>(page_addrs_.size()); }
  MirroredDisk& fs_disk() { return *fs_disk_; }
  MirroredDisk& page_disk(uint32_t shard = 0) { return *page_disks_[shard]; }
  // Null unless MachineOptions::trace.enabled was set.
  Tracer* tracer() { return tracer_.get(); }
  Fabric& bus() { return *bus_; }
  // The resolved fabric layout this machine runs on (single-segment when
  // MachineOptions left SystemConfig::topology empty).
  const Topology& topology() const { return topology_; }
  const SystemConfig& config() const { return options_.config; }
  Rng& rng() { return rng_; }

  // Well-known server pids (cluster 32 is fictitious: these ids can never
  // collide with kernel-allocated pids).
  static constexpr Gpid kFsPid = Gpid::Make(32, 2);
  static constexpr Gpid kPsPid = Gpid::Make(32, 3);
  static constexpr Gpid kTtyPid = Gpid::Make(32, 4);
  // Page-server shard s is pid Make(32, 5 + s); kPagePid is shard 0.
  static constexpr Gpid kPagePid = Gpid::Make(32, 5);
  static constexpr Gpid PageShardPid(uint32_t shard) { return Gpid::Make(32, 5 + shard); }

 private:
  friend class ClusterEnv;

  // Placement of page-server shard s (and, with `backup` pairs swapped in,
  // of its disk ports): segment (s mod S), base pair rotated within the
  // segment by floor(s / S). Reduces to ((pair + s) mod num_clusters) on a
  // single segment — the pre-fabric rotation, bit for bit.
  ClusterPair PageShardPlace(const ClusterPair& base, uint32_t s) const;

  void SpawnServers();
  bool AllUsersExited() const;
  // Current simulated instant from wherever we are called: the executing
  // shard's clock inside a callback, the global clock otherwise.
  SimTime LocalNow() const;

  // --- ClusterEnv backends (called from cluster shards during a run) ---
  // Disk traffic hops to the shared shard (where the disks live) and the
  // completion hops back, each hop carrying the §5.1 minimum latency
  // (bus.arbitration_us), which keeps the cross-shard posts legal under the
  // engine's lookahead contract.
  void DiskReadFrom(ClusterId from, Gpid server, BlockNum block,
                    std::function<void(Result<Bytes>)> done);
  void DiskWriteFrom(ClusterId from, Gpid server, BlockNum block, Bytes data,
                     std::function<void(Result<void>)> done);
  void DiskWriteMultiFrom(ClusterId from, Gpid server, DiskWriteBatch batch,
                          std::function<void(Result<void>)> done);
  void TtyEmitFrom(ClusterId from, Gpid server, const Bytes& data);
  // Fullback placement by the *calling kernel's* belief about peer liveness
  // (heartbeats + crash notices): on the parallel machine another cluster's
  // ground truth is unreadable from this shard — and the paper's kernels
  // only ever saw the bus anyway.
  ClusterId PlaceNewBackupFrom(ClusterId from, ClusterId avoid_a, ClusterId avoid_b);
  std::unique_ptr<NativeProgram> MakeServerProgram(Gpid pid);
  void OnServerTakeover(Gpid pid, ClusterId new_cluster);
  void OnProcessExit(Gpid pid, int32_t status);
  void OnDebugPutc(Gpid pid, char c);

  MachineOptions options_;
  Topology topology_;  // resolved: never empty
  ShardPlan plan_;
  std::unique_ptr<ShardedEngine> sharded_;
  Rng rng_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Fabric> bus_;
  std::unique_ptr<MirroredDisk> fs_disk_;
  std::vector<std::unique_ptr<MirroredDisk>> page_disks_;  // one per shard
  std::vector<std::unique_ptr<ClusterEnv>> envs_;          // one per cluster
  std::vector<std::unique_ptr<Kernel>> kernels_;

  // Guards the cross-cluster observation maps below: cluster shards write
  // them concurrently through their envs (exits, debug output, takeovers,
  // tty records). Control events and post-run readers are already ordered
  // by the engine's barrier handshake.
  mutable std::mutex state_mu_;

  ServerAddr fs_addr_;
  ServerAddr ps_addr_;
  ServerAddr tty_addr_;
  std::vector<ServerAddr> page_addrs_;  // one per shard

  std::map<uint64_t, MirroredDisk*> server_disks_;  // pid.value -> disk
  std::map<uint64_t, ClusterId> server_locations_;  // pid.value -> cluster

  std::vector<TtyRecord> tty_raw_;
  std::map<uint32_t, std::map<uint64_t, std::string>> tty_dedup_;  // line -> seq -> text
  uint64_t tty_duplicates_ = 0;

  std::map<uint64_t, int32_t> exit_statuses_;
  std::map<uint64_t, std::string> debug_output_;
  std::vector<Gpid> user_pids_;
  bool booted_ = false;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_MACHINE_MACHINE_H_
