#include "src/machine/shard_plan.h"

#include <algorithm>
#include <sstream>

#include "src/base/log.h"

namespace auragen {

ShardedEngineOptions ShardPlan::EngineOptions(uint32_t threads) const {
  ShardedEngineOptions opt;
  opt.num_shards = num_shards;
  opt.threads = threads;
  opt.lookahead_us = lookahead_us;
  return opt;
}

std::string ShardPlan::Describe() const {
  std::ostringstream os;
  os << "shards=" << num_shards << " (shared=0, clusters=1.." << num_clusters;
  if (num_segments > 1) {
    os << ", segments=" << (num_clusters + 1) << ".." << (num_shards - 1);
  }
  os << ") lookahead=" << lookahead_us << "us";
  return os.str();
}

ShardPlan MakeShardPlan(const SystemConfig& config, const DiskConfig& disk) {
  AURAGEN_CHECK(config.num_clusters >= 1) << "a machine needs at least one cluster";
  const Topology topo = config.resolved_topology();
  ShardPlan plan;
  plan.num_clusters = config.num_clusters;
  plan.num_segments = topo.num_segments();
  plan.num_shards = 1 + plan.num_clusters + (plan.num_segments - 1);
  // The soonest any shard can affect another: a cluster reaches its segment
  // shard no earlier than bus arbitration, the shared shard reaches a
  // cluster no earlier than the smaller of a zero-byte bus frame and a disk
  // completion, and on a bridged fabric a segment shard reaches the trunk
  // (and back) no earlier than the switch's store-and-forward latency.
  plan.lookahead_us = disk.seek_us;
  for (const SegmentConfig& seg : topo.segments) {
    plan.lookahead_us = std::min(plan.lookahead_us, seg.bus.arbitration_us);
  }
  if (plan.num_segments > 1) {
    plan.lookahead_us = std::min(plan.lookahead_us, topo.switch_latency_us);
  }
  AURAGEN_CHECK(plan.lookahead_us >= 1)
      << "derived lookahead is zero: a zero-latency bus/disk/switch leaves no "
         "conservative window (raise BusConfig::arbitration_us, "
         "DiskConfig::seek_us, or Topology::switch_latency_us)";
  return plan;
}

}  // namespace auragen
