#include "src/machine/shard_plan.h"

#include <algorithm>
#include <sstream>

#include "src/base/log.h"

namespace auragen {

ShardedEngineOptions ShardPlan::EngineOptions(uint32_t threads) const {
  ShardedEngineOptions opt;
  opt.num_shards = num_shards;
  opt.threads = threads;
  opt.lookahead_us = lookahead_us;
  return opt;
}

std::string ShardPlan::Describe() const {
  std::ostringstream os;
  os << "shards=" << num_shards << " (shared=0, clusters=1.." << (num_shards - 1)
     << ") lookahead=" << lookahead_us << "us";
  return os.str();
}

ShardPlan MakeShardPlan(const SystemConfig& config, const DiskConfig& disk) {
  AURAGEN_CHECK(config.num_clusters >= 1) << "a machine needs at least one cluster";
  ShardPlan plan;
  plan.num_shards = 1 + config.num_clusters;
  // The soonest any shard can affect another: a cluster reaches the shared
  // shard no earlier than bus arbitration, and the shared shard reaches a
  // cluster no earlier than the smaller of a zero-byte bus frame and a disk
  // completion. Both directions bound below by the arbitration time.
  plan.lookahead_us = std::min(config.bus.arbitration_us, disk.seek_us);
  AURAGEN_CHECK(plan.lookahead_us >= 1)
      << "derived lookahead is zero: a zero-latency bus/disk leaves no "
         "conservative window (raise BusConfig::arbitration_us or "
         "DiskConfig::seek_us)";
  return plan;
}

}  // namespace auragen
