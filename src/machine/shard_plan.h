// ShardPlan: how a machine topology maps onto ShardedEngine shards, and
// where the conservative lookahead comes from.
//
// The plan is the integration seam between the Machine's configuration and
// the parallel engine (sim/sharded_engine.h): shard 0 hosts every shared
// component (segment 0's bus arbitration, the fabric trunk, disks, the
// page/process servers' bus-facing side), shard 1+c hosts cluster c — its
// work processors, executive, kernel timers — and each additional fabric
// segment's bus + switch gets its own shard after the cluster shards. The
// lookahead is derived, not chosen: it is the minimum latency by which any
// shard can affect another — the smallest of the per-segment bus
// arbitration times (cluster -> bus), the disk seek floor (bus -> disk
// completion), and, on a multi-segment fabric, the switch store-and-forward
// latency (segment bus <-> trunk). §5.1's atomic-broadcast bus guarantees
// no cluster observes a remote effect sooner than that.
//
// The synthetic ClusterModel (sim/cluster_model.h) uses the same layout, so
// scaling results measured there transfer to the machine integration.

#ifndef AURAGEN_SRC_MACHINE_SHARD_PLAN_H_
#define AURAGEN_SRC_MACHINE_SHARD_PLAN_H_

#include <cstdint>
#include <string>

#include "src/base/types.h"
#include "src/bus/topology.h"
#include "src/core/config.h"
#include "src/disk/disk.h"
#include "src/sim/sharded_engine.h"

namespace auragen {

struct ShardPlan {
  uint32_t num_clusters = 1;
  uint32_t num_segments = 1;
  uint32_t num_shards = 2;     // 1 shared + one per cluster + one per extra segment
  SimTime lookahead_us = 1;    // min cross-shard model latency

  ShardId shard_of_cluster(ClusterId c) const { return 1 + c; }
  // Segment 0's bus shares the shared shard (the pre-fabric layout, which
  // keeps single-segment digests bit-identical); segment s > 0 lives on its
  // own shard after the cluster shards.
  ShardId shard_of_segment(SegmentId s) const {
    return s == 0 ? kSharedShard : 1 + num_clusters + (s - 1);
  }
  ShardId shared_shard() const { return kSharedShard; }

  // Engine options realizing this plan with the given worker count.
  ShardedEngineOptions EngineOptions(uint32_t threads) const;

  std::string Describe() const;
};

// Derives the plan from the machine configuration (whose resolved Topology
// names the segments). Checks that the derived lookahead is a usable
// (>= 1us) conservative window — a zero-latency bus, disk, or switch would
// serialize the shards and is rejected loudly rather than silently
// degrading.
ShardPlan MakeShardPlan(const SystemConfig& config, const DiskConfig& disk);

}  // namespace auragen

#endif  // AURAGEN_SRC_MACHINE_SHARD_PLAN_H_
