#include "src/paging/page_server.h"

#include <utility>

#include "src/core/wire.h"
#include "src/servers/protocol.h"
#include "src/trace/trace.h"

namespace auragen {

namespace {

// ServerSync op codes (the compact log the backup applies).
enum class PsOp : uint8_t { kWrite = 1, kSync = 2, kDrop = 3 };

SyscallRequest ReadAnyRequest() {
  SyscallRequest req;
  req.num = Sys::kRead;
  req.a = kAnyChannel;
  return req;
}

}  // namespace

PageServerProgram::PageServerProgram(PageServerOptions options)
    : options_(options), next_block_(options.first_block) {}

BlockNum PageServerProgram::Alloc() {
  if (!free_list_.empty()) {
    BlockNum b = free_list_.back();
    free_list_.pop_back();
    return b;
  }
  AURAGEN_CHECK(next_block_ < options_.num_blocks) << "page store exhausted";
  return next_block_++;
}

void PageServerProgram::Release(BlockNum block) {
  auto it = refcount_.find(block);
  AURAGEN_CHECK(it != refcount_.end()) << "release of untracked block" << block;
  if (--it->second == 0) {
    refcount_.erase(it);
    free_list_.push_back(block);
  }
}

void PageServerProgram::InstallWrite(Gpid pid, PageNum page, BlockNum block) {
  Account& acct = primary_[pid];
  if (auto it = acct.pages.find(page); it != acct.pages.end()) {
    Release(it->second);
  }
  acct.pages[page] = block;
  refcount_[block]++;
}

void PageServerProgram::CopyAccounts(Gpid pid) {
  // §7.8: "make the backup's account identical to that of the primary.
  // After a sync, only one copy of each page will exist."
  Account& b = backup_[pid];
  for (const auto& [page, block] : b.pages) {
    Release(block);
  }
  b = primary_[pid];
  for (const auto& [page, block] : b.pages) {
    refcount_[block]++;
  }
}

void PageServerProgram::DropAccounts(Gpid pid) {
  for (auto* accounts : {&primary_, &backup_}) {
    auto it = accounts->find(pid);
    if (it == accounts->end()) {
      continue;
    }
    for (const auto& [page, block] : it->second.pages) {
      Release(block);
    }
    accounts->erase(it);
  }
}

SyscallRequest PageServerProgram::ReadAny() {
  mode_ = Mode::kAwaitMessage;
  return ReadAnyRequest();
}

SyscallRequest PageServerProgram::AfterService() {
  if (ops_since_sync_ >= options_.sync_every_ops) {
    // §7.9 explicit sync: trim prefix + the op log the backup applies.
    ByteWriter w;
    ServerSyncPrefix prefix;
    for (const auto& [chan, count] : serviced_since_sync_) {
      prefix.serviced.emplace_back(ChannelId{chan}, count);
    }
    prefix.Serialize(w);
    w.Blob(ops_log_);
    serviced_since_sync_.clear();
    ops_log_.clear();
    ops_since_sync_ = 0;
    mode_ = Mode::kSendingSync;
    SyscallRequest req = NativeRequest(NativeSys::kServerSyncSend);
    req.data = w.Take();
    return req;
  }
  return ReadAny();
}

SyscallRequest PageServerProgram::Next(const SyscallResult& prev, bool first) {
  if (first) {
    mode_ = Mode::kStart;
  }
  switch (mode_) {
    case Mode::kStart:
      return ReadAny();

    case Mode::kAwaitMessage: {
      ByteReader r(prev.data);
      cur_channel_ = r.U64();
      r.U64();  // src pid
      r.U32();  // binding tag
      MsgKind kind = static_cast<MsgKind>(r.U8());
      Bytes body = r.Blob();
      serviced_since_sync_[cur_channel_]++;

      switch (kind) {
        case MsgKind::kPageWrite: {
          PageWriteBody write = PageWriteBody::Decode(body);
          cur_pid_ = write.pid;
          cur_page_ = write.page;
          cur_block_ = Alloc();
          mode_ = Mode::kDiskWriting;
          SyscallRequest req = NativeRequest(NativeSys::kDiskWrite);
          req.a = cur_block_;
          req.data = std::move(write.content);
          return req;
        }
        case MsgKind::kSync: {
          SyncRecord record = SyncRecord::Decode(body);
          CopyAccounts(record.pid);
          ByteWriter ops(std::move(ops_log_));
          ops.U8(static_cast<uint8_t>(PsOp::kSync));
          ops.U64(record.pid.value);
          ops_log_ = ops.Take();
          ops_since_sync_++;
          return AfterService();
        }
        case MsgKind::kPageRequest: {
          PageRequestBody req_body = PageRequestBody::Decode(body);
          cur_pid_ = req_body.pid;
          cur_page_ = req_body.page;
          cur_cookie_ = req_body.cookie;
          cur_reply_to_ = req_body.reply_to;
          auto ait = backup_.find(cur_pid_);
          const BlockNum* block = nullptr;
          if (ait != backup_.end()) {
            if (auto pit = ait->second.pages.find(cur_page_); pit != ait->second.pages.end()) {
              block = &pit->second;
            }
          }
          if (block == nullptr) {
            // Never synced: deterministic zero fill at the faulting kernel.
            PageReplyBody reply;
            reply.pid = cur_pid_;
            reply.page = cur_page_;
            reply.cookie = cur_cookie_;
            reply.known = false;
            mode_ = Mode::kReplying;
            SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
            req.a = 3;  // kPageReply
            req.b = cur_channel_;
            req.data = reply.Encode();
            return req;
          }
          cur_block_ = *block;
          mode_ = Mode::kDiskReading;
          SyscallRequest req = NativeRequest(NativeSys::kDiskRead);
          req.a = cur_block_;
          return req;
        }
        case MsgKind::kUser:
        case MsgKind::kClose:
        default:
          // Close notifications and stray traffic change no state.
          return ReadAny();
      }
    }

    case Mode::kDiskWriting: {
      if (prev.rv < 0) {
        // Disk failure: the mirror absorbed it or the machine is beyond the
        // single-failure model; drop the block and continue.
        free_list_.push_back(cur_block_);
        return AfterService();
      }
      InstallWrite(cur_pid_, cur_page_, cur_block_);
      if (options_.tracer != nullptr) {
        options_.tracer->Record(TraceEventKind::kPageStore, kNoCluster, cur_pid_.value, 0,
                                cur_page_, cur_block_);
      }
      ByteWriter ops(std::move(ops_log_));
      ops.U8(static_cast<uint8_t>(PsOp::kWrite));
      ops.U64(cur_pid_.value);
      ops.U32(cur_page_);
      ops.U32(cur_block_);
      ops_log_ = ops.Take();
      ops_since_sync_++;
      return AfterService();
    }

    case Mode::kDiskReading: {
      PageReplyBody reply;
      reply.pid = cur_pid_;
      reply.page = cur_page_;
      reply.cookie = cur_cookie_;
      reply.known = true;
      if (prev.rv >= 0) {
        reply.content = prev.data;
        reply.content.resize(kAvmPageBytes, 0);
      } else {
        reply.known = false;  // double disk failure; zero-fill beats hanging
      }
      if (options_.tracer != nullptr) {
        options_.tracer->Record(TraceEventKind::kPageServe, kNoCluster, cur_pid_.value, 0,
                                cur_page_, reply.known ? 1 : 0);
      }
      mode_ = Mode::kReplying;
      SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
      req.a = 3;
      req.b = cur_channel_;
      req.data = reply.Encode();
      return req;
    }

    case Mode::kReplying:
      return AfterService();

    case Mode::kSendingSync:
      return ReadAny();
  }
  return ReadAny();
}

void PageServerProgram::ApplyServerSync(ByteReader& r) {
  // Replay the primary's op log against our mirror of the tables. The ops
  // are deterministic: allocation results are recorded, not recomputed.
  Bytes ops = r.Blob();
  ByteReader o(ops);
  while (!o.done()) {
    PsOp op = static_cast<PsOp>(o.U8());
    switch (op) {
      case PsOp::kWrite: {
        Gpid pid;
        pid.value = o.U64();
        PageNum page = o.U32();
        BlockNum block = o.U32();
        // Mirror the allocator: remove from free list / bump next_block_.
        auto it = std::find(free_list_.begin(), free_list_.end(), block);
        if (it != free_list_.end()) {
          free_list_.erase(it);
        } else if (block >= next_block_) {
          next_block_ = block + 1;
        }
        InstallWrite(pid, page, block);
        break;
      }
      case PsOp::kSync: {
        Gpid pid;
        pid.value = o.U64();
        CopyAccounts(pid);
        break;
      }
      case PsOp::kDrop: {
        Gpid pid;
        pid.value = o.U64();
        DropAccounts(pid);
        break;
      }
    }
  }
}

void PageServerProgram::SerializeState(ByteWriter& w) const {
  w.U8(static_cast<uint8_t>(mode_));
  auto put_accounts = [&](const std::map<Gpid, Account>& accounts) {
    w.U32(static_cast<uint32_t>(accounts.size()));
    for (const auto& [pid, acct] : accounts) {
      w.U64(pid.value);
      w.U32(static_cast<uint32_t>(acct.pages.size()));
      for (const auto& [page, block] : acct.pages) {
        w.U32(page);
        w.U32(block);
      }
    }
  };
  put_accounts(primary_);
  put_accounts(backup_);
  w.U32(static_cast<uint32_t>(free_list_.size()));
  for (BlockNum b : free_list_) {
    w.U32(b);
  }
  w.U32(next_block_);
  w.U64(cur_pid_.value);
  w.U32(cur_page_);
  w.U32(cur_block_);
  w.U64(cur_cookie_);
  w.U64(cur_channel_);
  w.U32(static_cast<uint32_t>(serviced_since_sync_.size()));
  for (const auto& [chan, count] : serviced_since_sync_) {
    w.U64(chan);
    w.U32(count);
  }
  w.Blob(ops_log_);
  w.U32(ops_since_sync_);
}

void PageServerProgram::RestoreState(ByteReader& r) {
  mode_ = static_cast<Mode>(r.U8());
  auto get_accounts = [&](std::map<Gpid, Account>& accounts) {
    accounts.clear();
    uint32_t n = r.U32();
    for (uint32_t i = 0; i < n; ++i) {
      Gpid pid;
      pid.value = r.U64();
      uint32_t m = r.U32();
      Account acct;
      for (uint32_t j = 0; j < m; ++j) {
        PageNum page = r.U32();
        acct.pages[page] = r.U32();
      }
      accounts[pid] = std::move(acct);
    }
  };
  get_accounts(primary_);
  get_accounts(backup_);
  refcount_.clear();
  for (const auto* accounts : {&primary_, &backup_}) {
    for (const auto& [pid, acct] : *accounts) {
      for (const auto& [page, block] : acct.pages) {
        refcount_[block]++;
      }
    }
  }
  free_list_.clear();
  uint32_t nf = r.U32();
  for (uint32_t i = 0; i < nf; ++i) {
    free_list_.push_back(r.U32());
  }
  next_block_ = r.U32();
  cur_pid_.value = r.U64();
  cur_page_ = r.U32();
  cur_block_ = r.U32();
  cur_cookie_ = r.U64();
  cur_channel_ = r.U64();
  serviced_since_sync_.clear();
  uint32_t ns = r.U32();
  for (uint32_t i = 0; i < ns; ++i) {
    uint64_t chan = r.U64();
    serviced_since_sync_[chan] = r.U32();
  }
  ops_log_ = r.Blob();
  ops_since_sync_ = r.U32();
}

bool PageServerProgram::BackupHasPage(Gpid pid, PageNum page) const {
  auto it = backup_.find(pid);
  return it != backup_.end() && it->second.pages.count(page) != 0;
}

bool PageServerProgram::PrimaryHasPage(Gpid pid, PageNum page) const {
  auto it = primary_.find(pid);
  return it != primary_.end() && it->second.pages.count(page) != 0;
}

}  // namespace auragen
