// The page server (§7.6): a peripheral server owning disk space that holds
// the paged-out state of every backed-up process.
//
// It keeps two accounts per process: the primary account (pages as last
// shipped) and the backup account (pages as of the last *successful* sync).
// Dirty pages arriving at sync time go to disk and into the primary
// account; the sync message — which the bus delivered atomically to the
// backup cluster, to this server, and to this server's backup — makes the
// backup account identical to the primary's. "After a sync, only one copy
// of each page will exist" (§7.8): accounts share disk blocks by refcount,
// and a second copy appears only when the primary ships a newer version of
// a page.
//
// Recovery paging (§7.10.2) reads from the *backup* account, which is why
// the account copy and the backup-PCB update riding the same atomic message
// is load-bearing: the page account can never run ahead of the PCB.
//
// Fault tolerance of the server itself is §7.9's active-backup scheme: page
// contents live on the dual-ported mirrored disk; the explicit ServerSync
// carries only a compact operation log (allocations and account copies),
// and the backup instance replays untrimmed request messages on takeover.

#ifndef AURAGEN_SRC_PAGING_PAGE_SERVER_H_
#define AURAGEN_SRC_PAGING_PAGE_SERVER_H_

#include <map>
#include <vector>

#include "src/kernel/native_body.h"

namespace auragen {

class Tracer;

struct PageServerOptions {
  // Send a ServerSync after this many serviced state-changing requests.
  uint32_t sync_every_ops = 64;
  // First usable disk block (blocks below are reserved).
  BlockNum first_block = 8;
  BlockNum num_blocks = 16384;
  // Write-only flight recorder; null disables server-side trace events.
  Tracer* tracer = nullptr;
};

class PageServerProgram : public NativeProgram {
 public:
  explicit PageServerProgram(PageServerOptions options);

  SyscallRequest Next(const SyscallResult& prev, bool first) override;
  void SerializeState(ByteWriter& w) const override;
  void RestoreState(ByteReader& r) override;
  void ApplyServerSync(ByteReader& r) override;
  uint64_t StepWork() const override { return 30; }

  // Introspection for tests.
  size_t NumAccounts() const { return primary_.size(); }
  bool BackupHasPage(Gpid pid, PageNum page) const;
  bool PrimaryHasPage(Gpid pid, PageNum page) const;
  uint64_t blocks_in_use() const { return refcount_.size(); }

 private:
  enum class Mode : uint8_t {
    kStart,
    kAwaitMessage,   // read-any pending
    kDiskWriting,    // page content on its way to disk
    kDiskReading,    // page content on its way back for a kPageRequest
    kReplying,       // kWriteChan of a page reply pending
    kSendingSync,    // kServerSyncSend pending
  };

  struct Account {
    std::map<PageNum, BlockNum> pages;
  };

  SyscallRequest ReadAny();
  SyscallRequest AfterService();
  BlockNum Alloc();
  void Release(BlockNum block);
  void InstallWrite(Gpid pid, PageNum page, BlockNum block);
  void CopyAccounts(Gpid pid);
  void DropAccounts(Gpid pid);

  PageServerOptions options_;
  Mode mode_ = Mode::kStart;

  std::map<Gpid, Account> primary_;
  std::map<Gpid, Account> backup_;
  std::map<BlockNum, uint32_t> refcount_;
  std::vector<BlockNum> free_list_;
  BlockNum next_block_;

  // In-flight operation context.
  Gpid cur_pid_;
  PageNum cur_page_ = 0;
  BlockNum cur_block_ = 0;
  uint64_t cur_cookie_ = 0;
  ClusterId cur_reply_to_ = kNoCluster;
  uint64_t cur_channel_ = 0;

  // ServerSync bookkeeping (§7.9).
  std::map<uint64_t, uint32_t> serviced_since_sync_;  // channel -> count
  Bytes ops_log_;
  uint32_t ops_since_sync_ = 0;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_PAGING_PAGE_SERVER_H_
