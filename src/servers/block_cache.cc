#include "src/servers/block_cache.h"

#include <utility>

#include "src/base/check.h"

namespace auragen {

BlockCache::BlockCache(uint32_t capacity) : capacity_(capacity) {
  AURAGEN_CHECK(capacity_ > 0) << "block cache needs at least one slot";
}

void BlockCache::Touch(Entry& e) {
  lru_.splice(lru_.begin(), lru_, e.lru_it);
}

const Bytes* BlockCache::Get(BlockNum block) {
  auto it = entries_.find(block);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  Touch(it->second);
  return &it->second.data;
}

void BlockCache::EvictOne() {
  // Scan from the cold end, skipping pinned (dirty) blocks.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto eit = entries_.find(*it);
    if (eit->second.dirty) {
      continue;
    }
    lru_.erase(std::next(it).base());
    entries_.erase(eit);
    ++evictions_;
    return;
  }
  AURAGEN_PANIC("buffer cache exhausted: every block is pinned dirty");
}

void BlockCache::Put(BlockNum block, Bytes data, bool dirty) {
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    Entry& e = it->second;
    e.data = std::move(data);
    if (dirty && !e.dirty) {
      e.dirty = true;
      ++dirty_count_;
    }
    Touch(e);
    return;
  }
  if (entries_.size() >= capacity_) {
    EvictOne();
  }
  lru_.push_front(block);
  Entry e;
  e.data = std::move(data);
  e.dirty = dirty;
  e.lru_it = lru_.begin();
  entries_.emplace(block, std::move(e));
  if (dirty) {
    ++dirty_count_;
  }
}

void BlockCache::MarkClean(BlockNum block) {
  auto it = entries_.find(block);
  if (it != entries_.end() && it->second.dirty) {
    it->second.dirty = false;
    --dirty_count_;
  }
}

DiskWriteBatch BlockCache::DirtyBlocks() const {
  DiskWriteBatch out;
  for (const auto& [block, entry] : entries_) {
    if (entry.dirty) {
      out.emplace_back(block, entry.data);
    }
  }
  return out;
}

}  // namespace auragen
