// Fixed-capacity write-back buffer cache for the file server (xv6's bcache
// layer, DESIGN.md §19). Blocks are keyed by disk block number; reads that
// hit skip the device entirely (no seek), writes dirty the cached copy and
// reach the disk only through the write-ahead log at the next group commit.
//
// Dirty blocks are pinned: eviction only ever removes clean blocks, so the
// cache can never silently drop an update that the log has not yet made
// durable. If every block is dirty the server has outrun its own commit
// high-water mark and the cache panics — a configuration bug, not a runtime
// condition (the file server forces a commit well before that point).

#ifndef AURAGEN_SRC_SERVERS_BLOCK_CACHE_H_
#define AURAGEN_SRC_SERVERS_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <map>

#include "src/base/codec.h"
#include "src/base/types.h"
#include "src/disk/disk.h"

namespace auragen {

class BlockCache {
 public:
  explicit BlockCache(uint32_t capacity);

  // Lookup; a hit refreshes recency and the pointer stays valid until the
  // next Put. Hit/miss accounting feeds the journal bench and tests.
  const Bytes* Get(BlockNum block);

  // Insert or overwrite. `dirty` marks the block as ahead of its home disk
  // location; a dirty mark sticks until MarkClean. May evict the least
  // recently used *clean* block to make room.
  void Put(BlockNum block, Bytes data, bool dirty);

  // Checkpoint completed: the home location now matches the cached copy.
  void MarkClean(BlockNum block);

  // All dirty blocks in ascending block order (deterministic batch layout).
  DiskWriteBatch DirtyBlocks() const;

  size_t size() const { return entries_.size(); }
  size_t dirty_count() const { return dirty_count_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint32_t capacity() const { return capacity_; }

 private:
  struct Entry {
    Bytes data;
    bool dirty = false;
    std::list<BlockNum>::iterator lru_it;
  };

  void Touch(Entry& e);
  void EvictOne();

  uint32_t capacity_;
  std::map<BlockNum, Entry> entries_;
  std::list<BlockNum> lru_;  // front = most recently used
  size_t dirty_count_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_SERVERS_BLOCK_CACHE_H_
