#include "src/servers/file_server.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"
#include "src/core/wire.h"
#include "src/disk/disk.h"
#include "src/trace/trace.h"

namespace auragen {

namespace {

constexpr uint32_t kSuperMagic = 0x41555246;  // "AURF"

SyscallRequest DiskWriteReq(BlockNum block, Bytes data) {
  SyscallRequest req = NativeRequest(NativeSys::kDiskWrite);
  req.a = block;
  req.data = std::move(data);
  return req;
}

SyscallRequest DiskReadReq(BlockNum block) {
  SyscallRequest req = NativeRequest(NativeSys::kDiskRead);
  req.a = block;
  return req;
}

}  // namespace

FileServerProgram::FileServerProgram(FileServerOptions options) : options_(options) {}

uint64_t FileServerProgram::FileSize(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return 0;
  }
  auto iit = inodes_.find(it->second);
  return iit == inodes_.end() ? 0 : iit->second.size;
}

BlockNum FileServerProgram::Alloc() {
  if (!free_list_.empty()) {
    BlockNum b = free_list_.back();
    free_list_.pop_back();
    return b;
  }
  AURAGEN_CHECK(next_block_ < options_.num_blocks) << "filesystem full";
  return next_block_++;
}

SyscallRequest FileServerProgram::ReadAny() {
  mode_ = Mode::kAwaitMessage;
  SyscallRequest req;
  req.num = Sys::kRead;
  req.a = kAnyChannel;
  return req;
}

// ------------------------------------------------------------------ replies

SyscallRequest FileServerProgram::ReplyData(uint64_t channel, const Bytes& data) {
  mode_ = Mode::kReplying;
  SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
  req.b = channel;
  req.data = EncodeTaggedBlob(ReqTag::kData, data);
  return req;
}

SyscallRequest FileServerProgram::ReplyStatus(uint64_t channel, int32_t status) {
  mode_ = Mode::kReplying;
  SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
  req.b = channel;
  req.data = EncodeTaggedI32(ReqTag::kStatus, status);
  return req;
}

SyscallRequest FileServerProgram::SendOpenReply(uint64_t control_channel,
                                                const OpenReplyBody& reply, Mode next_mode) {
  mode_ = next_mode;
  SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
  req.a = 1;  // MsgKind::kOpenReply
  req.b = control_channel;
  req.data = reply.Encode();
  return req;
}

// --------------------------------------------------------------------- sync

SyscallRequest FileServerProgram::StartSync() {
  // §7.9 file-server sync: flush the cache to disk (fresh blocks), commit
  // via superblock, then ship only the small runtime state by message.
  flush_plan_.clear();
  for (const auto& [inode_id, dirty] : tail_dirty_) {
    if (dirty) {
      flush_plan_.emplace_back(inode_id, Alloc());
    }
  }
  plan_idx_ = 0;
  if (!flush_plan_.empty()) {
    mode_ = Mode::kFlushTail;
    const auto& [inode_id, block] = flush_plan_[0];
    Bytes content = tail_cache_[inode_id];
    content.resize(kBlockSize, 0);
    return DiskWriteReq(block, std::move(content));
  }
  return ContinueMetaWrite();
}

SyscallRequest FileServerProgram::ContinueFlushTail() {
  // Previous tail write completed: splice the fresh block into the inode.
  const auto& [inode_id, block] = flush_plan_[plan_idx_];
  Inode& inode = inodes_[inode_id];
  uint32_t tail_idx = static_cast<uint32_t>(inode.size / kBlockSize);
  if (inode.size % kBlockSize == 0 && inode.size != 0) {
    tail_idx = static_cast<uint32_t>(inode.size / kBlockSize) - 1;
  }
  if (tail_idx < inode.blocks.size()) {
    pending_free_.push_back(inode.blocks[tail_idx]);
    inode.blocks[tail_idx] = block;
  } else {
    inode.blocks.push_back(block);
  }
  tail_dirty_[inode_id] = false;

  ++plan_idx_;
  if (plan_idx_ < flush_plan_.size()) {
    const auto& [next_inode, next_block] = flush_plan_[plan_idx_];
    Bytes content = tail_cache_[next_inode];
    content.resize(kBlockSize, 0);
    mode_ = Mode::kFlushTail;
    return DiskWriteReq(next_block, std::move(content));
  }
  return ContinueMetaWrite();
}

Bytes FileServerProgram::SerializeMeta() const {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(names_.size()));
  for (const auto& [name, inode] : names_) {
    w.Str(name);
    w.U32(inode);
  }
  w.U32(static_cast<uint32_t>(inodes_.size()));
  for (const auto& [id, inode] : inodes_) {
    w.U32(id);
    w.U64(inode.size);
    w.U32(static_cast<uint32_t>(inode.blocks.size()));
    for (BlockNum b : inode.blocks) {
      w.U32(b);
    }
  }
  w.U32(next_inode_);
  w.U32(next_block_);
  w.U32(static_cast<uint32_t>(free_list_.size()));
  for (BlockNum b : free_list_) {
    w.U32(b);
  }
  return w.Take();
}

void FileServerProgram::ParseMeta(const Bytes& blob) {
  ByteReader r(blob);
  names_.clear();
  inodes_.clear();
  uint32_t nn = r.U32();
  for (uint32_t i = 0; i < nn; ++i) {
    std::string name = r.Str();
    names_[name] = r.U32();
  }
  uint32_t ni = r.U32();
  for (uint32_t i = 0; i < ni; ++i) {
    uint32_t id = r.U32();
    Inode inode;
    inode.size = r.U64();
    uint32_t nb = r.U32();
    inode.blocks.resize(nb);
    for (BlockNum& b : inode.blocks) {
      b = r.U32();
    }
    inodes_[id] = std::move(inode);
  }
  next_inode_ = r.U32();
  next_block_ = r.U32();
  free_list_.clear();
  uint32_t nf = r.U32();
  for (uint32_t i = 0; i < nf; ++i) {
    free_list_.push_back(r.U32());
  }
}

SyscallRequest FileServerProgram::ContinueMetaWrite() {
  if (mode_ != Mode::kMetaWrite) {
    // First entry: chunk the metadata and allocate fresh blocks (shadow —
    // the committed copy stays intact until the superblock flips).
    Bytes meta = SerializeMeta();
    meta_chunks_.clear();
    new_meta_blocks_.clear();
    for (size_t at = 0; at < meta.size(); at += kBlockSize) {
      size_t n = std::min<size_t>(kBlockSize, meta.size() - at);
      Bytes chunk(meta.begin() + at, meta.begin() + at + n);
      meta_chunks_.push_back(std::move(chunk));
      new_meta_blocks_.push_back(Alloc());
    }
    plan_idx_ = 0;
    plan_offset_ = meta.size();
  } else {
    ++plan_idx_;
  }
  if (plan_idx_ < meta_chunks_.size()) {
    mode_ = Mode::kMetaWrite;
    return DiskWriteReq(new_meta_blocks_[plan_idx_], meta_chunks_[plan_idx_]);
  }
  // All metadata persisted: commit via the alternating superblock slot.
  ByteWriter sb;
  sb.U32(kSuperMagic);
  sb.U64(epoch_ + 1);
  sb.U32(static_cast<uint32_t>(plan_offset_));
  sb.U32(static_cast<uint32_t>(new_meta_blocks_.size()));
  for (BlockNum b : new_meta_blocks_) {
    sb.U32(b);
  }
  mode_ = Mode::kSuperWrite;
  return DiskWriteReq(static_cast<BlockNum>((epoch_ + 1) % 2), sb.Take());
}

// --------------------------------------------------------------- requests

SyscallRequest FileServerProgram::AfterService() {
  if (ops_since_sync_ >= options_.sync_every_ops) {
    return StartSync();
  }
  return ReadAny();
}

SyscallRequest FileServerProgram::HandleOpen(uint64_t control_channel,
                                             const OpenRequest& open) {
  if (open.name.rfind("ch:", 0) == 0) {
    // User-to-user channel pairing (§7.4.1): "the file server pairs up
    // openers to the same name and sends open replies back to the openers
    // and to their backups."
    auto it = pending_opens_.find(open.name);
    if (it == pending_opens_.end()) {
      PendingOpen pending;
      pending.cookie = open.cookie;
      pending.control_channel = control_channel;
      pending.opener = open.opener;
      pending.opener_cluster = open.opener_cluster;
      pending.opener_backup = open.opener_backup;
      pending.opener_mode = open.opener_mode;
      pending_opens_[open.name] = pending;
      return AfterService();  // first opener waits
    }
    PendingOpen first = it->second;
    pending_opens_.erase(it);
    uint64_t channel = AllocChannelId();

    OpenReplyBody to_first;
    to_first.request_cookie = first.cookie;
    to_first.status = 0;
    to_first.channel = ChannelId{channel};
    to_first.peer_pid = open.opener;
    to_first.peer_primary_cluster = open.opener_cluster;
    to_first.peer_backup_cluster = open.opener_backup;
    to_first.peer_kind = 0;  // kUserPeer
    to_first.peer_mode = open.opener_mode;

    pair_reply2_ = OpenReplyBody{};
    pair_reply2_.request_cookie = open.cookie;
    pair_reply2_.status = 0;
    pair_reply2_.channel = ChannelId{channel};
    pair_reply2_.peer_pid = first.opener;
    pair_reply2_.peer_primary_cluster = first.opener_cluster;
    pair_reply2_.peer_backup_cluster = first.opener_backup;
    pair_reply2_.peer_kind = 0;
    pair_reply2_.peer_mode = first.opener_mode;
    pair_reply2_channel_ = control_channel;

    return SendOpenReply(first.control_channel, to_first, Mode::kPairReply2);
  }

  // File open: bind a fresh channel to the (possibly new) file. The server
  // creates its own routing entry via kAcceptChan, then replies; the
  // opener's kernel and backup cluster materialize their entries from the
  // reply itself.
  uint32_t inode_id;
  if (auto it = names_.find(open.name); it != names_.end()) {
    inode_id = it->second;
  } else {
    inode_id = next_inode_++;
    names_[open.name] = inode_id;
    inodes_[inode_id] = Inode{};
  }
  uint64_t channel = AllocChannelId();
  chans_[channel] = Chan{inode_id, 0};

  ChanCreate accept;
  accept.channel = ChannelId{channel};
  accept.owner = my_pid_;
  accept.backup_entry = false;
  accept.peer_pid = open.opener;
  accept.peer_primary_cluster = open.opener_cluster;
  accept.peer_backup_cluster = open.opener_backup;
  accept.peer_kind = 0;  // kUserPeer (from the server's side)
  accept.peer_mode = open.opener_mode;

  pair_reply2_ = OpenReplyBody{};
  pair_reply2_.request_cookie = open.cookie;
  pair_reply2_.status = 0;
  pair_reply2_.channel = ChannelId{channel};
  pair_reply2_.peer_pid = my_pid_;
  pair_reply2_.peer_primary_cluster = my_cluster_;
  pair_reply2_.peer_backup_cluster = my_backup_;
  pair_reply2_.peer_kind = 2;  // kServerFile
  pair_reply2_.peer_mode = static_cast<uint8_t>(BackupMode::kHalfback);
  pair_reply2_channel_ = control_channel;

  mode_ = Mode::kAccepting;
  SyscallRequest req = NativeRequest(NativeSys::kAcceptChan);
  req.data = accept.Encode();
  return req;
}

SyscallRequest FileServerProgram::HandleFileRead(uint64_t channel, uint64_t max) {
  auto it = chans_.find(channel);
  if (it == chans_.end()) {
    return ReplyData(channel, {});
  }
  Chan& chan = it->second;
  const Inode& inode = inodes_[chan.inode];
  if (chan.offset >= inode.size || max == 0) {
    return ReplyData(channel, {});  // EOF
  }
  uint64_t want = std::min<uint64_t>(max, inode.size - chan.offset);

  cur_channel_ = channel;
  cur_inode_ = chan.inode;
  cur_max_ = want;
  plan_offset_ = chan.offset;
  plan_buffer_.clear();
  plan_blocks_.clear();
  uint32_t first_block = static_cast<uint32_t>(chan.offset / kBlockSize);
  uint32_t last_block = static_cast<uint32_t>((chan.offset + want - 1) / kBlockSize);
  for (uint32_t i = first_block; i <= last_block; ++i) {
    plan_blocks_.push_back(i);  // file-block indices; resolved per step
  }
  plan_idx_ = 0;
  chan.offset += want;
  mode_ = Mode::kReading;
  return StepRead();
}

// Advances the read plan: cached/uncommitted blocks are consumed inline,
// a committed block yields one kDiskRead, plan exhaustion yields the reply.
SyscallRequest FileServerProgram::StepRead() {
  const Inode& inode = inodes_[cur_inode_];
  bool has_partial = inode.size % kBlockSize != 0;
  uint32_t partial_idx = static_cast<uint32_t>(inode.size / kBlockSize);
  bool tail_in_cache = tail_cache_.count(cur_inode_) != 0;

  while (plan_idx_ < plan_blocks_.size()) {
    uint32_t fb = plan_blocks_[plan_idx_];
    bool from_cache = tail_in_cache && has_partial && fb == partial_idx;
    if (!from_cache && fb < inode.blocks.size()) {
      return DiskReadReq(inode.blocks[fb]);
    }
    Bytes chunk = from_cache ? tail_cache_[cur_inode_] : Bytes{};
    chunk.resize(kBlockSize, 0);
    plan_buffer_.insert(plan_buffer_.end(), chunk.begin(), chunk.end());
    ++plan_idx_;
  }
  uint64_t skip = plan_offset_ % kBlockSize;
  Bytes out;
  if (skip < plan_buffer_.size()) {
    size_t take = std::min<size_t>(cur_max_, plan_buffer_.size() - skip);
    out.assign(plan_buffer_.begin() + skip, plan_buffer_.begin() + skip + take);
  }
  plan_buffer_.clear();
  return ReplyData(cur_channel_, out);
}

SyscallRequest FileServerProgram::HandleFileWrite(uint64_t channel, Bytes data) {
  auto it = chans_.find(channel);
  if (it == chans_.end()) {
    return ReplyStatus(channel, -static_cast<int32_t>(Errc::kBadDescriptor));
  }
  cur_channel_ = channel;
  cur_inode_ = it->second.inode;
  Inode& inode = inodes_[cur_inode_];

  // Appends only (see DESIGN.md). If the committed tail is partial and not
  // yet cached, load it first, then re-enter.
  uint64_t tail_len = inode.size % kBlockSize;
  if (tail_len != 0 && tail_cache_.count(cur_inode_) == 0) {
    uint32_t tail_idx = static_cast<uint32_t>(inode.size / kBlockSize);
    AURAGEN_CHECK(tail_idx < inode.blocks.size());
    cur_data_ = std::move(data);
    mode_ = Mode::kTailLoad;
    return DiskReadReq(inode.blocks[tail_idx]);
  }

  Bytes tail = tail_cache_.count(cur_inode_) != 0 ? tail_cache_[cur_inode_] : Bytes{};
  tail.resize(tail_len);
  size_t written = data.size();
  tail.insert(tail.end(), data.begin(), data.end());
  inode.size += written;

  // Full 512-byte blocks go to fresh disk blocks now; the remainder stays in
  // the cache until the next sync flush.
  plan_blocks_.clear();
  meta_chunks_.clear();  // reuse as write-content holder
  size_t at = 0;
  bool replacing_committed_tail = tail_len != 0;
  while (tail.size() - at >= kBlockSize) {
    Bytes full(tail.begin() + at, tail.begin() + at + kBlockSize);
    meta_chunks_.push_back(std::move(full));
    plan_blocks_.push_back(Alloc());
    at += kBlockSize;
  }
  Bytes rest(tail.begin() + at, tail.end());
  if (!rest.empty()) {
    tail_cache_[cur_inode_] = rest;
    tail_dirty_[cur_inode_] = true;
  } else {
    tail_cache_.erase(cur_inode_);
    tail_dirty_.erase(cur_inode_);
  }

  if (plan_blocks_.empty()) {
    serviced_since_sync_[channel]++;
    ops_since_sync_++;
    return ReplyStatus(channel, static_cast<int32_t>(written));
  }
  // Splice the full blocks into the inode map immediately (in-memory only —
  // committed metadata still points at the old state until the next sync).
  uint32_t tail_idx = static_cast<uint32_t>(inode.blocks.size());
  if (replacing_committed_tail) {
    tail_idx = static_cast<uint32_t>((inode.size - written - tail_len) / kBlockSize);
  }
  for (size_t i = 0; i < plan_blocks_.size(); ++i) {
    uint32_t slot = tail_idx + static_cast<uint32_t>(i);
    if (slot < inode.blocks.size()) {
      pending_free_.push_back(inode.blocks[slot]);
      inode.blocks[slot] = plan_blocks_[i];
    } else {
      inode.blocks.push_back(plan_blocks_[i]);
    }
  }
  cur_max_ = written;  // remember the status value
  plan_idx_ = 0;
  mode_ = Mode::kWriting;
  return DiskWriteReq(plan_blocks_[0], meta_chunks_[0]);
}

// ----------------------------------------------------------------- the FSM

SyscallRequest FileServerProgram::Next(const SyscallResult& prev, bool first) {
  if (first) {
    mode_ = Mode::kStart;
  }
  switch (mode_) {
    case Mode::kStart:
      mode_ = Mode::kWho;
      return NativeRequest(NativeSys::kWhoAmI);

    case Mode::kWho: {
      ByteReader r(prev.data);
      my_pid_.value = r.U64();
      my_cluster_ = r.U32();
      my_backup_ = r.U32();
      mode_ = Mode::kBootSb0;
      return DiskReadReq(0);
    }

    case Mode::kBootSb0:
      boot_sb0_ = prev.rv >= 0 ? prev.data : Bytes{};
      mode_ = Mode::kBootSb1;
      return DiskReadReq(1);

    case Mode::kBootSb1: {
      auto parse_sb = [](const Bytes& raw, uint64_t* epoch, uint32_t* meta_len,
                         std::vector<BlockNum>* blocks) {
        if (raw.size() < 20) {
          return false;
        }
        ByteReader r(raw);
        if (r.U32() != kSuperMagic) {
          return false;
        }
        *epoch = r.U64();
        *meta_len = r.U32();
        uint32_t n = r.U32();
        blocks->clear();
        for (uint32_t i = 0; i < n; ++i) {
          blocks->push_back(r.U32());
        }
        return true;
      };
      uint64_t e0 = 0;
      uint64_t e1 = 0;
      uint32_t len0 = 0;
      uint32_t len1 = 0;
      std::vector<BlockNum> b0;
      std::vector<BlockNum> b1;
      bool ok0 = parse_sb(boot_sb0_, &e0, &len0, &b0);
      bool ok1 = prev.rv >= 0 && parse_sb(prev.data, &e1, &len1, &b1);
      if (!ok0 && !ok1) {
        // Virgin disk: format with an empty filesystem.
        epoch_ = 0;
        meta_blocks_.clear();
        return ContinueMetaWrite();  // empty meta -> straight to superblock
      }
      if (ok1 && (!ok0 || e1 > e0)) {
        epoch_ = e1;
        meta_blocks_ = b1;
        plan_offset_ = len1;
      } else {
        epoch_ = e0;
        meta_blocks_ = b0;
        plan_offset_ = len0;
      }
      if (meta_blocks_.empty()) {
        return ReadAny();
      }
      plan_idx_ = 0;
      plan_buffer_.clear();
      mode_ = Mode::kBootMeta;
      return DiskReadReq(meta_blocks_[0]);
    }

    case Mode::kBootMeta: {
      Bytes chunk = prev.rv >= 0 ? prev.data : Bytes(kBlockSize, 0);
      chunk.resize(kBlockSize, 0);
      plan_buffer_.insert(plan_buffer_.end(), chunk.begin(), chunk.end());
      ++plan_idx_;
      if (plan_idx_ < meta_blocks_.size()) {
        return DiskReadReq(meta_blocks_[plan_idx_]);
      }
      plan_buffer_.resize(plan_offset_);
      ParseMeta(plan_buffer_);
      plan_buffer_.clear();
      return ReadAny();
    }

    case Mode::kFormatSuper:
      return ReadAny();

    case Mode::kAwaitMessage: {
      ByteReader r(prev.data);
      uint64_t channel = r.U64();
      r.U64();  // src pid
      r.U32();  // binding tag
      MsgKind kind = static_cast<MsgKind>(r.U8());
      Bytes body = r.Blob();

      if (kind == MsgKind::kClose) {
        chans_.erase(channel);
        serviced_since_sync_[channel]++;
        ops_since_sync_++;
        return AfterService();
      }
      if (body.empty()) {
        return ReadAny();
      }
      serviced_since_sync_[channel]++;
      ops_since_sync_++;
      ByteReader b(body);
      ReqTag tag = static_cast<ReqTag>(b.U8());
      switch (tag) {
        case ReqTag::kOpen:
          return HandleOpen(channel, OpenRequest::Decode(b));
        case ReqTag::kFileRead:
          return HandleFileRead(channel, b.U64());
        case ReqTag::kFileWrite:
          return HandleFileWrite(channel, b.Blob());
        case ReqTag::kFileSeek: {
          uint64_t offset = b.U64();
          if (auto it = chans_.find(channel); it != chans_.end()) {
            it->second.offset = offset;
          }
          return ReplyStatus(channel, 0);
        }
        default:
          return AfterService();
      }
    }

    case Mode::kAccepting:
      return SendOpenReply(pair_reply2_channel_, pair_reply2_, Mode::kOpenReply);

    case Mode::kOpenReply:
    case Mode::kReplying:
      return AfterService();

    case Mode::kPairReply2:
      return SendOpenReply(pair_reply2_channel_, pair_reply2_, Mode::kOpenReply);

    case Mode::kTailLoad: {
      // The committed tail arrived; cache it and re-run the append.
      Bytes tail = prev.rv >= 0 ? prev.data : Bytes{};
      tail.resize(inodes_[cur_inode_].size % kBlockSize);
      tail_cache_[cur_inode_] = std::move(tail);
      tail_dirty_[cur_inode_] = false;
      return HandleFileWrite(cur_channel_, std::move(cur_data_));
    }

    case Mode::kReading: {
      Bytes chunk = prev.rv >= 0 ? prev.data : Bytes{};
      chunk.resize(kBlockSize, 0);
      plan_buffer_.insert(plan_buffer_.end(), chunk.begin(), chunk.end());
      ++plan_idx_;
      return StepRead();
    }

    case Mode::kWriting: {
      ++plan_idx_;
      if (plan_idx_ < plan_blocks_.size()) {
        return DiskWriteReq(plan_blocks_[plan_idx_], meta_chunks_[plan_idx_]);
      }
      meta_chunks_.clear();
      return ReplyStatus(cur_channel_, static_cast<int32_t>(cur_max_));
    }

    case Mode::kFlushTail:
      return ContinueFlushTail();

    case Mode::kMetaWrite:
      return ContinueMetaWrite();

    case Mode::kSuperWrite: {
      // Commit point passed: the new epoch is on disk. Old blocks are now
      // reclaimable (§7.9's "old copy cannot be destroyed until the sync is
      // complete" — it just was).
      epoch_ += 1;
      commits_++;
      if (options_.tracer != nullptr) {
        options_.tracer->Record(TraceEventKind::kFsCommit, my_cluster_, my_pid_.value, 0,
                                epoch_, commits_);
      }
      for (BlockNum b : meta_blocks_) {
        free_list_.push_back(b);
      }
      meta_blocks_ = new_meta_blocks_;
      new_meta_blocks_.clear();
      for (BlockNum b : pending_free_) {
        free_list_.push_back(b);
      }
      pending_free_.clear();

      // Ship the small runtime state (§7.9).
      ByteWriter w;
      ServerSyncPrefix prefix;
      for (const auto& [chan, count] : serviced_since_sync_) {
        prefix.serviced.emplace_back(ChannelId{chan}, count);
      }
      prefix.Serialize(w);
      ByteWriter opaque;
      opaque.U32(static_cast<uint32_t>(chans_.size()));
      for (const auto& [chan, state] : chans_) {
        opaque.U64(chan);
        opaque.U32(state.inode);
        opaque.U64(state.offset);
      }
      opaque.U32(static_cast<uint32_t>(pending_opens_.size()));
      for (const auto& [name, pending] : pending_opens_) {
        opaque.Str(name);
        opaque.U64(pending.cookie);
        opaque.U64(pending.control_channel);
        opaque.U64(pending.opener.value);
        opaque.U32(pending.opener_cluster);
        opaque.U32(pending.opener_backup);
        opaque.U8(pending.opener_mode);
      }
      opaque.U64(next_chan_counter_);
      w.Blob(opaque.bytes());
      serviced_since_sync_.clear();
      ops_since_sync_ = 0;
      mode_ = Mode::kSendingSync;
      SyscallRequest req = NativeRequest(NativeSys::kServerSyncSend);
      req.data = w.Take();
      return req;
    }

    case Mode::kSendingSync:
      return ReadAny();
  }
  return ReadAny();
}

void FileServerProgram::ApplyServerSync(ByteReader& r) { LoadRuntime(r.Blob()); }

void FileServerProgram::LoadRuntime(const Bytes& opaque) {
  ByteReader o(opaque);
  chans_.clear();
  uint32_t nc = o.U32();
  for (uint32_t i = 0; i < nc; ++i) {
    uint64_t chan = o.U64();
    Chan state;
    state.inode = o.U32();
    state.offset = o.U64();
    chans_[chan] = state;
  }
  pending_opens_.clear();
  uint32_t np = o.U32();
  for (uint32_t i = 0; i < np; ++i) {
    std::string name = o.Str();
    PendingOpen pending;
    pending.cookie = o.U64();
    pending.control_channel = o.U64();
    pending.opener.value = o.U64();
    pending.opener_cluster = o.U32();
    pending.opener_backup = o.U32();
    pending.opener_mode = o.U8();
    pending_opens_[name] = pending;
  }
  next_chan_counter_ = o.U64();
}

void FileServerProgram::SerializeState(ByteWriter& w) const {
  // Used only for halfback re-backup snapshots; the durable state is on
  // disk, so this carries the runtime tables plus boot identity of the
  // committed filesystem.
  w.U64(epoch_);
  w.U32(static_cast<uint32_t>(meta_blocks_.size()));
  for (BlockNum b : meta_blocks_) {
    w.U32(b);
  }
  ByteWriter opaque;
  opaque.U32(static_cast<uint32_t>(chans_.size()));
  for (const auto& [chan, state] : chans_) {
    opaque.U64(chan);
    opaque.U32(state.inode);
    opaque.U64(state.offset);
  }
  opaque.U32(0);  // pending opens omitted in snapshots
  opaque.U64(next_chan_counter_);
  w.Blob(opaque.bytes());
}

void FileServerProgram::RestoreState(ByteReader& r) {
  epoch_ = r.U64();
  meta_blocks_.clear();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; ++i) {
    meta_blocks_.push_back(r.U32());
  }
  LoadRuntime(r.Blob());
}

}  // namespace auragen
