#include "src/servers/file_server.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"
#include "src/core/wire.h"
#include "src/disk/disk.h"
#include "src/trace/trace.h"

namespace auragen {

namespace {

constexpr uint32_t kSuperMagic = 0x41555246;  // "AURF"
constexpr uint32_t kLogMagic = 0x4155524C;    // "AURL"

// Commit record: {magic u32, seq u64, epoch_after u64, n u32, n x home u32}.
// Must fit one block, which caps a batch at 122 homes.
constexpr uint32_t kMaxLogBlocks = (kBlockSize - 24) / 4;

SyscallRequest DiskWriteReq(BlockNum block, Bytes data) {
  SyscallRequest req = NativeRequest(NativeSys::kDiskWrite);
  req.a = block;
  req.data = std::move(data);
  return req;
}

SyscallRequest DiskReadReq(BlockNum block) {
  SyscallRequest req = NativeRequest(NativeSys::kDiskRead);
  req.a = block;
  return req;
}

// One multi-block transaction writing each image to the given block.
SyscallRequest DiskWriteVecReq(const DiskWriteBatch& batch) {
  SyscallRequest req = NativeRequest(NativeSys::kDiskWriteVec);
  ByteWriter w;
  w.U32(static_cast<uint32_t>(batch.size()));
  for (const auto& [block, image] : batch) {
    w.U32(block);
    w.Blob(image);
  }
  req.data = w.Take();
  return req;
}

// The same transaction redirected into the log region: image i goes to log
// block i, regardless of its eventual home.
SyscallRequest LogAppendReq(const DiskWriteBatch& batch) {
  SyscallRequest req = NativeRequest(NativeSys::kDiskWriteVec);
  ByteWriter w;
  w.U32(static_cast<uint32_t>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    w.U32(FileServerProgram::kLogDataStart + static_cast<BlockNum>(i));
    w.Blob(batch[i].second);
  }
  req.data = w.Take();
  return req;
}

}  // namespace

FileServerProgram::FileServerProgram(FileServerOptions options)
    : options_(options), cache_(options.cache_blocks) {
  AURAGEN_CHECK(options_.log_blocks >= 4 && options_.log_blocks <= kMaxLogBlocks)
      << "log_blocks out of range: " << options_.log_blocks;
  next_block_ = kLogDataStart + options_.log_blocks;
  AURAGEN_CHECK(next_block_ < options_.num_blocks) << "log region exceeds the disk";
}

uint64_t FileServerProgram::FileSize(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return 0;
  }
  auto iit = inodes_.find(it->second);
  return iit == inodes_.end() ? 0 : iit->second.size;
}

BlockNum FileServerProgram::Alloc() {
  if (!free_list_.empty()) {
    BlockNum b = free_list_.back();
    free_list_.pop_back();
    return b;
  }
  AURAGEN_CHECK(next_block_ < options_.num_blocks) << "filesystem full";
  return next_block_++;
}

SyscallRequest FileServerProgram::ReadAny() {
  mode_ = Mode::kAwaitMessage;
  SyscallRequest req;
  req.num = Sys::kRead;
  req.a = kAnyChannel;
  return req;
}

// ------------------------------------------------------------------ replies

SyscallRequest FileServerProgram::ReplyData(uint64_t channel, const Bytes& data) {
  mode_ = Mode::kReplying;
  SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
  req.b = channel;
  req.data = EncodeTaggedBlob(ReqTag::kData, data);
  return req;
}

SyscallRequest FileServerProgram::ReplyStatus(uint64_t channel, int32_t status) {
  mode_ = Mode::kReplying;
  SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
  req.b = channel;
  req.data = EncodeTaggedI32(ReqTag::kStatus, status);
  return req;
}

SyscallRequest FileServerProgram::SendOpenReply(uint64_t control_channel,
                                                const OpenReplyBody& reply, Mode next_mode) {
  mode_ = next_mode;
  SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
  req.a = 1;  // MsgKind::kOpenReply
  req.b = control_channel;
  req.data = reply.Encode();
  return req;
}

// --------------------------------------------------------------------- sync

// Group commit (DESIGN.md §19): everything dirtied since the last sync —
// partial tails, full data blocks, fresh metadata, the next superblock
// image — is assembled into ONE batch. The batch streams into the log
// region as a single multi-block transaction, one commit-record write makes
// it durable, and only then do the blocks migrate to their homes. Until the
// commit record lands, no home-location block has been touched, so §7.9's
// old copy survives any crash inside the window.
SyscallRequest FileServerProgram::StartSync() {
  commit_batch_.clear();

  // Dirty cache blocks, ascending block order (deterministic batch layout).
  // In-place home overwrite is safe because the home write happens only
  // after the commit record is durable.
  for (auto& [block, image] : cache_.DirtyBlocks()) {
    Bytes padded = std::move(image);
    padded.resize(kBlockSize, 0);
    commit_batch_.emplace_back(block, std::move(padded));
  }

  // Fresh metadata to shadow-allocated blocks, then the superblock image
  // that points at them. The old metadata blocks are freed in memory only
  // after the commit record is durable.
  Bytes meta = SerializeMeta();
  new_meta_blocks_.clear();
  for (size_t at = 0; at < meta.size(); at += kBlockSize) {
    size_t n = std::min<size_t>(kBlockSize, meta.size() - at);
    Bytes chunk(meta.begin() + at, meta.begin() + at + n);
    new_meta_blocks_.push_back(Alloc());
    commit_batch_.emplace_back(new_meta_blocks_.back(), std::move(chunk));
  }
  plan_offset_ = meta.size();

  ByteWriter sb;
  sb.U32(kSuperMagic);
  sb.U64(epoch_ + 1);
  sb.U32(static_cast<uint32_t>(meta.size()));
  sb.U32(static_cast<uint32_t>(new_meta_blocks_.size()));
  for (BlockNum b : new_meta_blocks_) {
    sb.U32(b);
  }
  commit_batch_.emplace_back(static_cast<BlockNum>((epoch_ + 1) % 2), sb.Take());

  AURAGEN_CHECK(commit_batch_.size() <= options_.log_blocks)
      << "commit batch overflows the log: " << commit_batch_.size();

  mode_ = Mode::kLogAppend;
  return LogAppendReq(commit_batch_);
}

// Checkpoint finished: the cache is clean relative to the home locations
// and the small §7.9 runtime state ships to the backup.
SyscallRequest FileServerProgram::FinishCommit() {
  for (const auto& [home, image] : commit_batch_) {
    cache_.MarkClean(home);
  }
  commit_batch_.clear();

  ByteWriter w;
  ServerSyncPrefix prefix;
  for (const auto& [chan, count] : serviced_since_sync_) {
    prefix.serviced.emplace_back(ChannelId{chan}, count);
  }
  prefix.Serialize(w);
  ByteWriter opaque;
  opaque.U32(static_cast<uint32_t>(chans_.size()));
  for (const auto& [chan, state] : chans_) {
    opaque.U64(chan);
    opaque.U32(state.inode);
    opaque.U64(state.offset);
  }
  opaque.U32(static_cast<uint32_t>(pending_opens_.size()));
  for (const auto& [name, pending] : pending_opens_) {
    opaque.Str(name);
    opaque.U64(pending.cookie);
    opaque.U64(pending.control_channel);
    opaque.U64(pending.opener.value);
    opaque.U32(pending.opener_cluster);
    opaque.U32(pending.opener_backup);
    opaque.U8(pending.opener_mode);
  }
  opaque.U64(next_chan_counter_);
  opaque.U64(log_seq_);
  w.Blob(opaque.bytes());
  serviced_since_sync_.clear();
  ops_since_sync_ = 0;
  mode_ = Mode::kSendingSync;
  SyscallRequest req = NativeRequest(NativeSys::kServerSyncSend);
  req.data = w.Take();
  return req;
}

Bytes FileServerProgram::SerializeMeta() const {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(names_.size()));
  for (const auto& [name, inode] : names_) {
    w.Str(name);
    w.U32(inode);
  }
  w.U32(static_cast<uint32_t>(inodes_.size()));
  for (const auto& [id, inode] : inodes_) {
    w.U32(id);
    w.U64(inode.size);
    w.U32(static_cast<uint32_t>(inode.blocks.size()));
    for (BlockNum b : inode.blocks) {
      w.U32(b);
    }
  }
  w.U32(next_inode_);
  w.U32(next_block_);
  w.U32(static_cast<uint32_t>(free_list_.size()));
  for (BlockNum b : free_list_) {
    w.U32(b);
  }
  return w.Take();
}

void FileServerProgram::ParseMeta(const Bytes& blob) {
  ByteReader r(blob);
  names_.clear();
  inodes_.clear();
  uint32_t nn = r.U32();
  for (uint32_t i = 0; i < nn; ++i) {
    std::string name = r.Str();
    names_[name] = r.U32();
  }
  uint32_t ni = r.U32();
  for (uint32_t i = 0; i < ni; ++i) {
    uint32_t id = r.U32();
    Inode inode;
    inode.size = r.U64();
    uint32_t nb = r.U32();
    inode.blocks.resize(nb);
    for (BlockNum& b : inode.blocks) {
      b = r.U32();
    }
    inodes_[id] = std::move(inode);
  }
  next_inode_ = r.U32();
  next_block_ = r.U32();
  free_list_.clear();
  uint32_t nf = r.U32();
  for (uint32_t i = 0; i < nf; ++i) {
    free_list_.push_back(r.U32());
  }
}

// --------------------------------------------------------------- requests

SyscallRequest FileServerProgram::AfterService() {
  // Commit on the op-count trigger, or early when dirty pressure nears the
  // log's capacity (xv6's log-full forced commit; the margin leaves room
  // for metadata chunks and the superblock).
  if (ops_since_sync_ >= options_.sync_every_ops ||
      cache_.dirty_count() >= options_.log_blocks / 2) {
    return StartSync();
  }
  return ReadAny();
}

SyscallRequest FileServerProgram::HandleOpen(uint64_t control_channel,
                                             const OpenRequest& open) {
  if (open.name.rfind("ch:", 0) == 0) {
    // User-to-user channel pairing (§7.4.1): "the file server pairs up
    // openers to the same name and sends open replies back to the openers
    // and to their backups."
    auto it = pending_opens_.find(open.name);
    if (it == pending_opens_.end()) {
      PendingOpen pending;
      pending.cookie = open.cookie;
      pending.control_channel = control_channel;
      pending.opener = open.opener;
      pending.opener_cluster = open.opener_cluster;
      pending.opener_backup = open.opener_backup;
      pending.opener_mode = open.opener_mode;
      pending_opens_[open.name] = pending;
      return AfterService();  // first opener waits
    }
    PendingOpen first = it->second;
    pending_opens_.erase(it);
    uint64_t channel = AllocChannelId();

    OpenReplyBody to_first;
    to_first.request_cookie = first.cookie;
    to_first.status = 0;
    to_first.channel = ChannelId{channel};
    to_first.peer_pid = open.opener;
    to_first.peer_primary_cluster = open.opener_cluster;
    to_first.peer_backup_cluster = open.opener_backup;
    to_first.peer_kind = 0;  // kUserPeer
    to_first.peer_mode = open.opener_mode;

    pair_reply2_ = OpenReplyBody{};
    pair_reply2_.request_cookie = open.cookie;
    pair_reply2_.status = 0;
    pair_reply2_.channel = ChannelId{channel};
    pair_reply2_.peer_pid = first.opener;
    pair_reply2_.peer_primary_cluster = first.opener_cluster;
    pair_reply2_.peer_backup_cluster = first.opener_backup;
    pair_reply2_.peer_kind = 0;
    pair_reply2_.peer_mode = first.opener_mode;
    pair_reply2_channel_ = control_channel;

    return SendOpenReply(first.control_channel, to_first, Mode::kPairReply2);
  }

  // File open: bind a fresh channel to the (possibly new) file. The server
  // creates its own routing entry via kAcceptChan, then replies; the
  // opener's kernel and backup cluster materialize their entries from the
  // reply itself.
  uint32_t inode_id;
  if (auto it = names_.find(open.name); it != names_.end()) {
    inode_id = it->second;
  } else {
    inode_id = next_inode_++;
    names_[open.name] = inode_id;
    inodes_[inode_id] = Inode{};
  }
  uint64_t channel = AllocChannelId();
  chans_[channel] = Chan{inode_id, 0};

  ChanCreate accept;
  accept.channel = ChannelId{channel};
  accept.owner = my_pid_;
  accept.backup_entry = false;
  accept.peer_pid = open.opener;
  accept.peer_primary_cluster = open.opener_cluster;
  accept.peer_backup_cluster = open.opener_backup;
  accept.peer_kind = 0;  // kUserPeer (from the server's side)
  accept.peer_mode = open.opener_mode;

  pair_reply2_ = OpenReplyBody{};
  pair_reply2_.request_cookie = open.cookie;
  pair_reply2_.status = 0;
  pair_reply2_.channel = ChannelId{channel};
  pair_reply2_.peer_pid = my_pid_;
  pair_reply2_.peer_primary_cluster = my_cluster_;
  pair_reply2_.peer_backup_cluster = my_backup_;
  pair_reply2_.peer_kind = 2;  // kServerFile
  pair_reply2_.peer_mode = static_cast<uint8_t>(BackupMode::kHalfback);
  pair_reply2_channel_ = control_channel;

  mode_ = Mode::kAccepting;
  SyscallRequest req = NativeRequest(NativeSys::kAcceptChan);
  req.data = accept.Encode();
  return req;
}

SyscallRequest FileServerProgram::HandleFileRead(uint64_t channel, uint64_t max) {
  auto it = chans_.find(channel);
  if (it == chans_.end()) {
    return ReplyData(channel, {});
  }
  Chan& chan = it->second;
  const Inode& inode = inodes_[chan.inode];
  if (chan.offset >= inode.size || max == 0) {
    return ReplyData(channel, {});  // EOF
  }
  uint64_t want = std::min<uint64_t>(max, inode.size - chan.offset);

  cur_channel_ = channel;
  cur_inode_ = chan.inode;
  cur_max_ = want;
  plan_offset_ = chan.offset;
  plan_buffer_.clear();
  plan_blocks_.clear();
  uint32_t first_block = static_cast<uint32_t>(chan.offset / kBlockSize);
  uint32_t last_block = static_cast<uint32_t>((chan.offset + want - 1) / kBlockSize);
  for (uint32_t i = first_block; i <= last_block; ++i) {
    plan_blocks_.push_back(i);  // file-block indices; resolved per step
  }
  plan_idx_ = 0;
  chan.offset += want;
  mode_ = Mode::kReading;
  return StepRead();
}

// Advances the read plan: cached blocks are consumed inline (a hit skips
// the seek entirely), a miss yields one kDiskRead that also populates the
// cache, plan exhaustion yields the reply.
SyscallRequest FileServerProgram::StepRead() {
  const Inode& inode = inodes_[cur_inode_];
  while (plan_idx_ < plan_blocks_.size()) {
    uint32_t fb = plan_blocks_[plan_idx_];
    Bytes chunk;
    if (fb < inode.blocks.size()) {
      BlockNum home = inode.blocks[fb];
      const Bytes* cached = cache_.Get(home);
      if (cached == nullptr) {
        cur_read_block_ = home;
        mode_ = Mode::kReading;
        return DiskReadReq(home);
      }
      chunk = *cached;
    }
    chunk.resize(kBlockSize, 0);
    plan_buffer_.insert(plan_buffer_.end(), chunk.begin(), chunk.end());
    ++plan_idx_;
  }
  uint64_t skip = plan_offset_ % kBlockSize;
  Bytes out;
  if (skip < plan_buffer_.size()) {
    size_t take = std::min<size_t>(cur_max_, plan_buffer_.size() - skip);
    out.assign(plan_buffer_.begin() + skip, plan_buffer_.begin() + skip + take);
  }
  plan_buffer_.clear();
  return ReplyData(cur_channel_, out);
}

// Writes land at the channel's offset — a read-modify-write through the
// buffer cache, zero disk I/O when the touched blocks are cached. The write
// is acknowledged immediately: §7.9's saved message queues re-execute
// un-synced acked writes at the backup, and the next group commit makes the
// blocks durable in one transaction.
//
// Positioned writes are what make the at-least-once replay safe. The disk
// can be ahead of the last shipped ServerSync (a commit record is durable
// before the sync message lands), so a takeover re-executes requests whose
// effects may already be committed. Re-executing a positioned write lays
// down identical bytes at an identical offset — idempotent, exactly the
// §7.9 argument for the raw disk server — where an append-at-EOF would
// duplicate the record and shift every later byte.
SyscallRequest FileServerProgram::HandleFileWrite(uint64_t channel, Bytes data) {
  auto it = chans_.find(channel);
  if (it == chans_.end()) {
    return ReplyStatus(channel, -static_cast<int32_t>(Errc::kBadDescriptor));
  }
  Chan& chan = it->second;
  cur_channel_ = channel;
  cur_inode_ = chan.inode;
  Inode& inode = inodes_[cur_inode_];
  if (data.empty()) {
    return ReplyStatus(channel, 0);
  }

  uint64_t begin = chan.offset;
  uint64_t end = begin + data.size();
  uint32_t first_fb = static_cast<uint32_t>(begin / kBlockSize);
  uint32_t last_fb = static_cast<uint32_t>((end - 1) / kBlockSize);

  // An edge block the write only partially covers must be loaded through
  // the cache first when it holds committed content (read-modify-write).
  for (uint32_t fb : {first_fb, last_fb}) {
    uint64_t blk_begin = static_cast<uint64_t>(fb) * kBlockSize;
    bool covered = begin <= blk_begin && end >= blk_begin + kBlockSize;
    bool has_old = fb < inode.blocks.size() && blk_begin < inode.size;
    if (!covered && has_old && cache_.Get(inode.blocks[fb]) == nullptr) {
      cur_data_ = std::move(data);
      cur_read_block_ = inode.blocks[fb];
      mode_ = Mode::kWriteLoad;
      return DiskReadReq(cur_read_block_);
    }
  }

  // Extend the block map across the write span; hole blocks a forward seek
  // skipped become zero-filled dirty cache blocks so stale disk content can
  // never surface as file bytes.
  uint32_t old_nblocks = static_cast<uint32_t>(inode.blocks.size());
  while (inode.blocks.size() <= last_fb) {
    inode.blocks.push_back(Alloc());
  }
  for (uint32_t fb = old_nblocks; fb < first_fb; ++fb) {
    cache_.Put(inode.blocks[fb], Bytes(kBlockSize, 0), /*dirty=*/true);
  }

  for (uint32_t fb = first_fb; fb <= last_fb; ++fb) {
    BlockNum home = inode.blocks[fb];
    uint64_t blk_begin = static_cast<uint64_t>(fb) * kBlockSize;
    bool covered = begin <= blk_begin && end >= blk_begin + kBlockSize;
    Bytes image;
    if (!covered) {
      if (const Bytes* cached = cache_.Get(home)) {
        image = *cached;
      }
      // A write starting past the committed EOF inside this block: the gap
      // bytes are file content now and must read as zeros, not stale disk.
      if (begin > inode.size && blk_begin < inode.size) {
        image.resize(kBlockSize, 0);
        std::fill(image.begin() + (inode.size - blk_begin),
                  image.begin() + (begin - blk_begin), 0);
      }
    }
    image.resize(kBlockSize, 0);
    uint64_t from = std::max<uint64_t>(begin, blk_begin);
    uint64_t to = std::min<uint64_t>(end, blk_begin + kBlockSize);
    std::copy(data.begin() + static_cast<size_t>(from - begin),
              data.begin() + static_cast<size_t>(to - begin),
              image.begin() + static_cast<size_t>(from - blk_begin));
    cache_.Put(home, std::move(image), /*dirty=*/true);
  }
  inode.size = std::max(inode.size, end);
  chan.offset = end;
  return ReplyStatus(channel, static_cast<int32_t>(data.size()));
}

// ----------------------------------------------------------------- the FSM

SyscallRequest FileServerProgram::BootFromSuper() {
  if (!boot_sb_valid_) {
    // Virgin disk: the first commit runs through the normal WAL path —
    // formats an empty filesystem and sends the initial sync.
    epoch_ = 0;
    meta_blocks_.clear();
    return StartSync();
  }
  if (meta_blocks_.empty()) {
    return ReadAny();
  }
  plan_idx_ = 0;
  plan_buffer_.clear();
  mode_ = Mode::kBootMeta;
  return DiskReadReq(meta_blocks_[0]);
}

SyscallRequest FileServerProgram::Next(const SyscallResult& prev, bool first) {
  if (first) {
    mode_ = Mode::kStart;
  }
  switch (mode_) {
    case Mode::kStart:
      mode_ = Mode::kWho;
      return NativeRequest(NativeSys::kWhoAmI);

    case Mode::kWho: {
      ByteReader r(prev.data);
      my_pid_.value = r.U64();
      my_cluster_ = r.U32();
      my_backup_ = r.U32();
      mode_ = Mode::kBootSb0;
      return DiskReadReq(0);
    }

    case Mode::kBootSb0:
      boot_sb0_ = prev.rv >= 0 ? prev.data : Bytes{};
      mode_ = Mode::kBootSb1;
      return DiskReadReq(1);

    case Mode::kBootSb1: {
      auto parse_sb = [](const Bytes& raw, uint64_t* epoch, uint32_t* meta_len,
                         std::vector<BlockNum>* blocks) {
        if (raw.size() < 20) {
          return false;
        }
        ByteReader r(raw);
        if (r.U32() != kSuperMagic) {
          return false;
        }
        *epoch = r.U64();
        *meta_len = r.U32();
        uint32_t n = r.U32();
        blocks->clear();
        for (uint32_t i = 0; i < n; ++i) {
          blocks->push_back(r.U32());
        }
        return true;
      };
      uint64_t e0 = 0;
      uint64_t e1 = 0;
      uint32_t len0 = 0;
      uint32_t len1 = 0;
      std::vector<BlockNum> b0;
      std::vector<BlockNum> b1;
      bool ok0 = parse_sb(boot_sb0_, &e0, &len0, &b0);
      bool ok1 = prev.rv >= 0 && parse_sb(prev.data, &e1, &len1, &b1);
      boot_sb_valid_ = ok0 || ok1;
      if (ok1 && (!ok0 || e1 > e0)) {
        epoch_ = e1;
        meta_blocks_ = b1;
        plan_offset_ = len1;
      } else if (ok0) {
        epoch_ = e0;
        meta_blocks_ = b0;
        plan_offset_ = len0;
      } else {
        epoch_ = 0;
        meta_blocks_.clear();
      }
      // Always inspect the commit-record slots before trusting the
      // superblock: a record with a higher epoch means a committed batch
      // whose home migration never finished.
      mode_ = Mode::kBootCr0;
      return DiskReadReq(kCrSlot0);
    }

    case Mode::kBootCr0:
      boot_cr0_ = prev.rv >= 0 ? prev.data : Bytes{};
      mode_ = Mode::kBootCr1;
      return DiskReadReq(kCrSlot1);

    case Mode::kBootCr1: {
      auto parse_cr = [](const Bytes& raw, uint64_t* seq, uint64_t* epoch,
                         std::vector<BlockNum>* homes) {
        if (raw.size() < 24) {
          return false;
        }
        ByteReader r(raw);
        if (r.U32() != kLogMagic) {
          return false;
        }
        *seq = r.U64();
        *epoch = r.U64();
        uint32_t n = r.U32();
        if (raw.size() < 24 + size_t{n} * 4) {
          return false;
        }
        homes->clear();
        for (uint32_t i = 0; i < n; ++i) {
          homes->push_back(r.U32());
        }
        return true;
      };
      uint64_t s0 = 0;
      uint64_t s1 = 0;
      uint64_t ce0 = 0;
      uint64_t ce1 = 0;
      std::vector<BlockNum> h0;
      std::vector<BlockNum> h1;
      bool ok0 = parse_cr(boot_cr0_, &s0, &ce0, &h0);
      bool ok1 = prev.rv >= 0 && parse_cr(prev.data, &s1, &ce1, &h1);
      boot_cr_seq_ = 0;
      boot_cr_epoch_ = 0;
      boot_cr_homes_.clear();
      if (ok1 && (!ok0 || s1 > s0)) {
        boot_cr_seq_ = s1;
        boot_cr_epoch_ = ce1;
        boot_cr_homes_ = std::move(h1);
      } else if (ok0) {
        boot_cr_seq_ = s0;
        boot_cr_epoch_ = ce0;
        boot_cr_homes_ = std::move(h0);
      }
      if (boot_cr_seq_ != 0) {
        log_seq_ = boot_cr_seq_;
      }
      if (!boot_cr_homes_.empty() &&
          (!boot_sb_valid_ || boot_cr_epoch_ > epoch_)) {
        // Committed but unchecked: replay the batch from the log. A torn
        // append (log blocks without a newer record) never reaches here and
        // is simply overwritten by the next commit.
        plan_idx_ = 0;
        commit_batch_.clear();
        mode_ = Mode::kBootReplay;
        return DiskReadReq(kLogDataStart);
      }
      return BootFromSuper();
    }

    case Mode::kBootReplay: {
      Bytes img = prev.rv >= 0 ? prev.data : Bytes{};
      img.resize(kBlockSize, 0);
      commit_batch_.emplace_back(boot_cr_homes_[plan_idx_], std::move(img));
      ++plan_idx_;
      if (plan_idx_ < boot_cr_homes_.size()) {
        return DiskReadReq(kLogDataStart + static_cast<BlockNum>(plan_idx_));
      }
      if (options_.tracer != nullptr) {
        options_.tracer->Record(TraceEventKind::kFsLogCommit, my_cluster_, my_pid_.value,
                                1, boot_cr_seq_, commit_batch_.size());
      }
      mode_ = Mode::kBootReplayWrite;
      return DiskWriteVecReq(commit_batch_);
    }

    case Mode::kBootReplayWrite:
      // Homes are current; reboot from the superblocks. Idempotent: the
      // replayed superblock now carries the record's epoch, so a crash
      // during replay just replays again, and a completed replay parses
      // clean with no second pass.
      commit_batch_.clear();
      mode_ = Mode::kBootSb0;
      return DiskReadReq(0);

    case Mode::kBootMeta: {
      Bytes chunk = prev.rv >= 0 ? prev.data : Bytes(kBlockSize, 0);
      chunk.resize(kBlockSize, 0);
      plan_buffer_.insert(plan_buffer_.end(), chunk.begin(), chunk.end());
      ++plan_idx_;
      if (plan_idx_ < meta_blocks_.size()) {
        return DiskReadReq(meta_blocks_[plan_idx_]);
      }
      plan_buffer_.resize(plan_offset_);
      ParseMeta(plan_buffer_);
      plan_buffer_.clear();
      return ReadAny();
    }

    case Mode::kAwaitMessage: {
      ByteReader r(prev.data);
      uint64_t channel = r.U64();
      r.U64();  // src pid
      r.U32();  // binding tag
      MsgKind kind = static_cast<MsgKind>(r.U8());
      Bytes body = r.Blob();

      if (kind == MsgKind::kClose) {
        chans_.erase(channel);
        serviced_since_sync_[channel]++;
        ops_since_sync_++;
        return AfterService();
      }
      if (body.empty()) {
        return ReadAny();
      }
      serviced_since_sync_[channel]++;
      ops_since_sync_++;
      ByteReader b(body);
      ReqTag tag = static_cast<ReqTag>(b.U8());
      switch (tag) {
        case ReqTag::kOpen:
          return HandleOpen(channel, OpenRequest::Decode(b));
        case ReqTag::kFileRead:
          return HandleFileRead(channel, b.U64());
        case ReqTag::kFileWrite:
          return HandleFileWrite(channel, b.Blob());
        case ReqTag::kFileSeek: {
          uint64_t offset = b.U64();
          if (auto it = chans_.find(channel); it != chans_.end()) {
            it->second.offset = offset;
          }
          return ReplyStatus(channel, 0);
        }
        default:
          return AfterService();
      }
    }

    case Mode::kAccepting:
      return SendOpenReply(pair_reply2_channel_, pair_reply2_, Mode::kOpenReply);

    case Mode::kOpenReply:
    case Mode::kReplying:
      return AfterService();

    case Mode::kPairReply2:
      return SendOpenReply(pair_reply2_channel_, pair_reply2_, Mode::kOpenReply);

    case Mode::kWriteLoad: {
      // The edge block arrived; cache it and re-run the write. If it is the
      // committed EOF block, its bytes past EOF are not file content — zero
      // them so an extension can never surface stale disk data.
      Bytes raw = prev.rv >= 0 ? prev.data : Bytes{};
      raw.resize(kBlockSize, 0);
      const Inode& inode = inodes_[cur_inode_];
      uint64_t eof_cut = inode.size % kBlockSize;
      if (eof_cut != 0 && inode.size / kBlockSize < inode.blocks.size() &&
          inode.blocks[inode.size / kBlockSize] == cur_read_block_) {
        std::fill(raw.begin() + eof_cut, raw.end(), 0);
      }
      cache_.Put(cur_read_block_, std::move(raw), /*dirty=*/false);
      return HandleFileWrite(cur_channel_, std::move(cur_data_));
    }

    case Mode::kReading: {
      Bytes chunk = prev.rv >= 0 ? prev.data : Bytes{};
      chunk.resize(kBlockSize, 0);
      cache_.Put(cur_read_block_, chunk, /*dirty=*/false);
      plan_buffer_.insert(plan_buffer_.end(), chunk.begin(), chunk.end());
      ++plan_idx_;
      return StepRead();
    }

    case Mode::kLogAppend: {
      // Batch is in the log region; one commit-record write (alternating
      // slots, higher sequence wins) is the atomic commit point.
      ByteWriter cr;
      cr.U32(kLogMagic);
      cr.U64(log_seq_ + 1);
      cr.U64(epoch_ + 1);
      cr.U32(static_cast<uint32_t>(commit_batch_.size()));
      for (const auto& [home, image] : commit_batch_) {
        cr.U32(home);
      }
      mode_ = Mode::kLogCommit;
      return DiskWriteReq(kCrSlot0 + static_cast<BlockNum>((log_seq_ + 1) % 2),
                          cr.Take());
    }

    case Mode::kLogCommit: {
      // Commit point passed: the batch is durable in the log. Old blocks
      // are now reclaimable (§7.9's "old copy cannot be destroyed until the
      // sync is complete" — it is now recoverable from the log even if the
      // home migration below never runs).
      log_seq_ += 1;
      epoch_ += 1;
      commits_++;
      if (options_.tracer != nullptr) {
        options_.tracer->Record(TraceEventKind::kFsCommit, my_cluster_, my_pid_.value, 0,
                                epoch_, commits_);
        options_.tracer->Record(TraceEventKind::kFsLogCommit, my_cluster_, my_pid_.value,
                                0, log_seq_, commit_batch_.size());
      }
      for (BlockNum b : meta_blocks_) {
        free_list_.push_back(b);
      }
      meta_blocks_ = new_meta_blocks_;
      new_meta_blocks_.clear();
      // Checkpoint: migrate the batch to the home locations.
      mode_ = Mode::kCheckpoint;
      return DiskWriteVecReq(commit_batch_);
    }

    case Mode::kCheckpoint:
      return FinishCommit();

    case Mode::kSendingSync:
      return ReadAny();
  }
  return ReadAny();
}

void FileServerProgram::ApplyServerSync(ByteReader& r) { LoadRuntime(r.Blob()); }

void FileServerProgram::LoadRuntime(const Bytes& opaque) {
  ByteReader o(opaque);
  chans_.clear();
  uint32_t nc = o.U32();
  for (uint32_t i = 0; i < nc; ++i) {
    uint64_t chan = o.U64();
    Chan state;
    state.inode = o.U32();
    state.offset = o.U64();
    chans_[chan] = state;
  }
  pending_opens_.clear();
  uint32_t np = o.U32();
  for (uint32_t i = 0; i < np; ++i) {
    std::string name = o.Str();
    PendingOpen pending;
    pending.cookie = o.U64();
    pending.control_channel = o.U64();
    pending.opener.value = o.U64();
    pending.opener_cluster = o.U32();
    pending.opener_backup = o.U32();
    pending.opener_mode = o.U8();
    pending_opens_[name] = pending;
  }
  next_chan_counter_ = o.U64();
  log_seq_ = o.U64();
}

void FileServerProgram::SerializeState(ByteWriter& w) const {
  // Used only for halfback re-backup snapshots; the durable state is on
  // disk, so this carries the runtime tables plus boot identity of the
  // committed filesystem.
  w.U64(epoch_);
  w.U64(log_seq_);
  w.U32(static_cast<uint32_t>(meta_blocks_.size()));
  for (BlockNum b : meta_blocks_) {
    w.U32(b);
  }
  ByteWriter opaque;
  opaque.U32(static_cast<uint32_t>(chans_.size()));
  for (const auto& [chan, state] : chans_) {
    opaque.U64(chan);
    opaque.U32(state.inode);
    opaque.U64(state.offset);
  }
  opaque.U32(0);  // pending opens omitted in snapshots
  opaque.U64(next_chan_counter_);
  opaque.U64(log_seq_);
  w.Blob(opaque.bytes());
}

void FileServerProgram::RestoreState(ByteReader& r) {
  epoch_ = r.U64();
  log_seq_ = r.U64();
  meta_blocks_.clear();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; ++i) {
    meta_blocks_.push_back(r.U32());
  }
  LoadRuntime(r.Blob());
}

}  // namespace auragen
