// The file server (§7.6, §7.9): a peripheral server owning a mirrored,
// dual-ported disk that holds an Auros filesystem.
//
// Filesystems are "logically the same as UNIX file systems ... but
// internally structured differently to allow the file server to sync
// correctly" (§7.6). The internal structure here is a journaled,
// cache-backed pipeline (DESIGN.md §19, after xv6's logging layer):
//
//   * a fixed-capacity write-back buffer cache absorbs reads and writes —
//     channel writes land at the channel's offset (read-modify-write of
//     cached blocks) and are acknowledged immediately. An un-synced acked
//     write is re-executed at the backup from the saved message queue
//     (§7.9); positioned writes make that at-least-once re-execution
//     idempotent — identical bytes at identical offsets — even when the
//     disk committed ahead of the last shipped sync, exactly the argument
//     the paper makes for the raw disk server;
//   * at each server sync the dirty blocks, fresh metadata and new
//     superblock image are appended to a write-ahead log region as ONE
//     multi-block disk transaction, then a single commit-record write
//     (alternating slots, higher sequence wins) atomically commits the
//     whole batch — group commit: every write since the last sync rides
//     one mirrored-disk round trip;
//   * only after the commit record is durable do the blocks migrate to
//     their home locations (checkpoint), so "an old copy, i.e., in the
//     state as of last sync, cannot be destroyed until the sync is
//     complete" (§7.9) — the old copy lives at the home location until the
//     new state is recoverable from the log;
//   * boot scans the commit-record slots: a record newer than the
//     superblock means a committed-but-unchecked batch, which is replayed
//     home; a torn append (blocks in the log, no record) is ignored.
//
// Because a substantial part of the server's state thus lives on the
// dual-ported disk, its explicit ServerSync message is small: request trim
// counts plus the runtime channel table and log position — "we avoid
// sending a large amount of information to the backup via the message
// system" (§7.9).
//
// The server also pairs user-to-user channels: open("ch:NAME") from two
// processes yields one channel between them (§7.4.1).

#ifndef AURAGEN_SRC_SERVERS_FILE_SERVER_H_
#define AURAGEN_SRC_SERVERS_FILE_SERVER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/wire.h"
#include "src/kernel/native_body.h"
#include "src/servers/block_cache.h"
#include "src/servers/protocol.h"

namespace auragen {

class Tracer;

struct FileServerOptions {
  uint32_t sync_every_ops = 16;
  BlockNum num_blocks = 16384;
  // Buffer cache capacity in blocks. Dirty blocks are pinned; a commit is
  // forced when dirty pressure reaches half the log capacity.
  uint32_t cache_blocks = 128;
  // Blocks in the write-ahead log region; bounds the batch one commit can
  // carry (the commit record holds at most 122 home pointers).
  uint32_t log_blocks = 96;
  // Write-only flight recorder; null disables server-side trace events.
  Tracer* tracer = nullptr;
};

class FileServerProgram : public NativeProgram {
 public:
  explicit FileServerProgram(FileServerOptions options);

  SyscallRequest Next(const SyscallResult& prev, bool first) override;
  void SerializeState(ByteWriter& w) const override;
  void RestoreState(ByteReader& r) override;
  void ApplyServerSync(ByteReader& r) override;
  uint64_t StepWork() const override { return 40; }

  // Test access.
  bool HasFile(const std::string& name) const { return names_.count(name) != 0; }
  uint64_t FileSize(const std::string& name) const;
  uint64_t commits() const { return commits_; }
  uint64_t log_seq() const { return log_seq_; }
  const BlockCache& cache() const { return cache_; }

  // On-disk layout (all in blocks). 0/1: superblock slots; 2/3: commit
  // record slots; then the log data region; file/meta data after that.
  static constexpr BlockNum kCrSlot0 = 2;
  static constexpr BlockNum kCrSlot1 = 3;
  static constexpr BlockNum kLogDataStart = 4;

 private:
  enum class Mode : uint8_t {
    kStart,
    kWho,           // kWhoAmI pending
    kBootSb0,       // superblock 0 read pending
    kBootSb1,       // superblock 1 read pending
    kBootCr0,       // commit-record slot 0 read pending
    kBootCr1,       // commit-record slot 1 read pending
    kBootReplay,    // log data block read pending (recovery replay)
    kBootReplayWrite,  // replayed batch migrating home (kDiskWriteVec)
    kBootMeta,      // metadata block chain read pending
    kAwaitMessage,
    kAccepting,     // kAcceptChan pending, open reply next
    kOpenReply,     // kWriteChan of an open reply pending
    kPairReply2,    // second pairing reply pending
    kWriteLoad,     // reading an edge block before a positioned write
    kReading,       // data block read pending (cache miss)
    kReplying,      // kWriteChan of a data/status reply pending
    kLogAppend,     // commit step 1: batch streaming into the log region
    kLogCommit,     // commit step 2: commit record write pending
    kCheckpoint,    // commit step 3: batch migrating to home locations
    kSendingSync,   // commit step 4: ServerSync message
  };

  struct Inode {
    uint64_t size = 0;
    std::vector<BlockNum> blocks;
  };
  struct Chan {
    uint32_t inode = 0;
    uint64_t offset = 0;
  };
  struct PendingOpen {
    uint64_t cookie = 0;
    uint64_t control_channel = 0;
    Gpid opener;
    ClusterId opener_cluster = kNoCluster;
    ClusterId opener_backup = kNoCluster;
    uint8_t opener_mode = 0;
  };

  // --- request handling helpers (each returns the next syscall) ---
  SyscallRequest ReadAny();
  SyscallRequest AfterService();
  SyscallRequest HandleOpen(uint64_t control_channel, const OpenRequest& open);
  SyscallRequest HandleFileRead(uint64_t channel, uint64_t max);
  SyscallRequest HandleFileWrite(uint64_t channel, Bytes data);
  SyscallRequest StartSync();
  SyscallRequest FinishCommit();
  SyscallRequest StepRead();
  SyscallRequest ReplyData(uint64_t channel, const Bytes& data);
  SyscallRequest ReplyStatus(uint64_t channel, int32_t status);
  SyscallRequest BootFromSuper();
  void LoadRuntime(const Bytes& opaque);
  SyscallRequest SendOpenReply(uint64_t control_channel, const OpenReplyBody& reply,
                               Mode next_mode);

  BlockNum Alloc();
  Bytes SerializeMeta() const;
  void ParseMeta(const Bytes& blob);
  uint64_t AllocChannelId() { return (0xffffull << 48) | next_chan_counter_++; }

  FileServerOptions options_;
  Mode mode_ = Mode::kStart;

  // Identity (environmental; learned via kWhoAmI at every start, §7.5).
  Gpid my_pid_;
  ClusterId my_cluster_ = kNoCluster;
  ClusterId my_backup_ = kNoCluster;

  // Committed filesystem state (serialized to disk at each sync).
  std::map<std::string, uint32_t> names_;
  std::map<uint32_t, Inode> inodes_;
  uint32_t next_inode_ = 1;
  BlockNum next_block_;  // first data block, past the log region
  std::vector<BlockNum> free_list_;
  uint64_t epoch_ = 0;
  uint64_t log_seq_ = 0;  // sequence of the last durable commit record
  std::vector<BlockNum> meta_blocks_;  // current committed metadata location

  // Uncommitted runtime state (travels in ServerSync).
  std::map<uint64_t, Chan> chans_;
  std::map<std::string, PendingOpen> pending_opens_;
  uint64_t next_chan_counter_ = 1;

  // Buffer cache over the home block space (never caches log/super blocks).
  BlockCache cache_;

  // In-flight op context.
  uint64_t cur_channel_ = 0;
  uint32_t cur_inode_ = 0;
  uint64_t cur_max_ = 0;
  Bytes cur_data_;
  BlockNum cur_read_block_ = 0;  // home block a kReading miss will fill
  std::vector<BlockNum> plan_blocks_;
  size_t plan_idx_ = 0;
  Bytes plan_buffer_;
  uint64_t plan_offset_ = 0;
  std::vector<BlockNum> new_meta_blocks_;
  // The in-flight commit batch: images (in log order) and home locations.
  DiskWriteBatch commit_batch_;
  Bytes boot_sb0_;
  Bytes boot_cr0_;
  // Parsed winning commit record during boot.
  uint64_t boot_cr_seq_ = 0;
  uint64_t boot_cr_epoch_ = 0;
  std::vector<BlockNum> boot_cr_homes_;
  bool boot_sb_valid_ = false;
  OpenReplyBody pair_reply2_;
  uint64_t pair_reply2_channel_ = 0;

  std::map<uint64_t, uint32_t> serviced_since_sync_;
  uint32_t ops_since_sync_ = 0;
  uint64_t commits_ = 0;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_SERVERS_FILE_SERVER_H_
