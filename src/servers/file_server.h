// The file server (§7.6, §7.9): a peripheral server owning a mirrored,
// dual-ported disk that holds an Auros filesystem.
//
// Filesystems are "logically the same as UNIX file systems ... but
// internally structured differently to allow the file server to sync
// correctly" (§7.6). The internal structure here is shadow-block commit:
//
//   * file data is written to freshly allocated blocks, never in place;
//   * at each server sync the metadata (names, inodes, allocator) is
//     serialized to fresh blocks, then one superblock write (alternating
//     between the two superblock slots, higher epoch wins) atomically
//     commits the new state;
//   * blocks of the previous state are only then returned to the free list —
//     "an old copy, i.e., in the state as of last sync, cannot be destroyed
//     until the sync is complete, in case a crash occurs during the
//     operation" (§7.9). This is also what makes the filesystem
//     "considerably more robust than ... UNIX".
//
// Because a substantial part of the server's state thus lives on the
// dual-ported disk, its explicit ServerSync message is small: request trim
// counts plus the runtime channel table — "we avoid sending a large amount
// of information to the backup via the message system" (§7.9).
//
// The server also pairs user-to-user channels: open("ch:NAME") from two
// processes yields one channel between them (§7.4.1).

#ifndef AURAGEN_SRC_SERVERS_FILE_SERVER_H_
#define AURAGEN_SRC_SERVERS_FILE_SERVER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/wire.h"
#include "src/kernel/native_body.h"
#include "src/servers/protocol.h"

namespace auragen {

class Tracer;

struct FileServerOptions {
  uint32_t sync_every_ops = 16;
  BlockNum num_blocks = 16384;
  // Write-only flight recorder; null disables server-side trace events.
  Tracer* tracer = nullptr;
};

class FileServerProgram : public NativeProgram {
 public:
  explicit FileServerProgram(FileServerOptions options);

  SyscallRequest Next(const SyscallResult& prev, bool first) override;
  void SerializeState(ByteWriter& w) const override;
  void RestoreState(ByteReader& r) override;
  void ApplyServerSync(ByteReader& r) override;
  uint64_t StepWork() const override { return 40; }

  // Test access.
  bool HasFile(const std::string& name) const { return names_.count(name) != 0; }
  uint64_t FileSize(const std::string& name) const;
  uint64_t commits() const { return commits_; }

 private:
  enum class Mode : uint8_t {
    kStart,
    kWho,          // kWhoAmI pending
    kBootSb0,      // superblock 0 read pending
    kBootSb1,      // superblock 1 read pending
    kBootMeta,     // metadata block chain read pending
    kFormatSuper,  // initial superblock write pending
    kAwaitMessage,
    kAccepting,    // kAcceptChan pending, open reply next
    kOpenReply,    // kWriteChan of an open reply pending
    kPairReply2,   // second pairing reply pending
    kTailLoad,     // reading a tail block before an append
    kReading,      // data block chain read pending
    kWriting,      // data block chain write pending
    kReplying,     // kWriteChan of a data/status reply pending
    kFlushTail,    // sync step 1: tail block writes
    kMetaWrite,    // sync step 2: metadata block writes
    kSuperWrite,   // sync step 3: superblock commit
    kSendingSync,  // sync step 4: ServerSync message
  };

  struct Inode {
    uint64_t size = 0;
    std::vector<BlockNum> blocks;
  };
  struct Chan {
    uint32_t inode = 0;
    uint64_t offset = 0;
  };
  struct PendingOpen {
    uint64_t cookie = 0;
    uint64_t control_channel = 0;
    Gpid opener;
    ClusterId opener_cluster = kNoCluster;
    ClusterId opener_backup = kNoCluster;
    uint8_t opener_mode = 0;
  };

  // --- request handling helpers (each returns the next syscall) ---
  SyscallRequest ReadAny();
  SyscallRequest AfterService();
  SyscallRequest HandleOpen(uint64_t control_channel, const OpenRequest& open);
  SyscallRequest HandleFileRead(uint64_t channel, uint64_t max);
  SyscallRequest HandleFileWrite(uint64_t channel, Bytes data);
  SyscallRequest StartSync();
  SyscallRequest ContinueFlushTail();
  SyscallRequest ContinueMetaWrite();
  SyscallRequest StepRead();
  SyscallRequest ReplyData(uint64_t channel, const Bytes& data);
  SyscallRequest ReplyStatus(uint64_t channel, int32_t status);
  void LoadRuntime(const Bytes& opaque);
  SyscallRequest SendOpenReply(uint64_t control_channel, const OpenReplyBody& reply,
                               Mode next_mode);

  BlockNum Alloc();
  Bytes SerializeMeta() const;
  void ParseMeta(const Bytes& blob);
  uint64_t AllocChannelId() { return (0xffffull << 48) | next_chan_counter_++; }

  FileServerOptions options_;
  Mode mode_ = Mode::kStart;

  // Identity (environmental; learned via kWhoAmI at every start, §7.5).
  Gpid my_pid_;
  ClusterId my_cluster_ = kNoCluster;
  ClusterId my_backup_ = kNoCluster;

  // Committed filesystem state (serialized to disk at each sync).
  std::map<std::string, uint32_t> names_;
  std::map<uint32_t, Inode> inodes_;
  uint32_t next_inode_ = 1;
  BlockNum next_block_ = 2;  // blocks 0/1: superblock slots
  std::vector<BlockNum> free_list_;
  uint64_t epoch_ = 0;
  std::vector<BlockNum> meta_blocks_;  // current committed metadata location

  // Uncommitted runtime state (travels in ServerSync).
  std::map<uint64_t, Chan> chans_;
  std::map<std::string, PendingOpen> pending_opens_;
  uint64_t next_chan_counter_ = 1;
  std::map<uint32_t, Bytes> tail_cache_;   // inode -> partial tail content
  std::map<uint32_t, bool> tail_dirty_;
  std::vector<BlockNum> pending_free_;

  // In-flight op context.
  uint64_t cur_channel_ = 0;
  uint32_t cur_inode_ = 0;
  uint64_t cur_max_ = 0;
  Bytes cur_data_;
  std::vector<BlockNum> plan_blocks_;
  size_t plan_idx_ = 0;
  Bytes plan_buffer_;
  uint64_t plan_offset_ = 0;
  std::vector<std::pair<uint32_t, BlockNum>> flush_plan_;  // inode -> new block
  std::vector<Bytes> meta_chunks_;
  std::vector<BlockNum> new_meta_blocks_;
  Bytes boot_sb0_;
  OpenReplyBody pair_reply2_;
  uint64_t pair_reply2_channel_ = 0;
  std::optional<SyscallRequest> resume_after_tail_;

  std::map<uint64_t, uint32_t> serviced_since_sync_;
  uint32_t ops_since_sync_ = 0;
  uint64_t commits_ = 0;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_SERVERS_FILE_SERVER_H_
