#include "src/servers/process_server.h"

namespace auragen {

SyscallRequest ProcessServerProgram::ReadAny() {
  mode_ = Mode::kAwaitMessage;
  SyscallRequest req;
  req.num = Sys::kRead;
  req.a = kAnyChannel;
  return req;
}

SyscallRequest ProcessServerProgram::StartSignal(Gpid target, uint32_t signum) {
  sig_target_ = target;
  sig_num_ = signum;
  mode_ = Mode::kSignalLookup;
  SyscallRequest req = NativeRequest(NativeSys::kFindChan);
  req.a = kBindSignalChannel;
  req.b = target.value;
  return req;
}

SyscallRequest ProcessServerProgram::Next(const SyscallResult& prev, bool first) {
  if (first) {
    mode_ = Mode::kStart;
  }
  switch (mode_) {
    case Mode::kStart:
      return ReadAny();

    case Mode::kRearmQuery:
      mode_ = Mode::kRearmTime;
      return NativeRequest(NativeSys::kSimTime);

    case Mode::kRearmTime: {
      // Post-takeover: stamp "now", then re-arm every pending alarm.
      now_cache_ = static_cast<SimTime>(prev.rv);
      rearm_iter_ = 0;
      [[fallthrough]];
    }
    case Mode::kRearmNext: {
      auto it = alarms_.upper_bound(rearm_iter_);
      if (it == alarms_.end()) {
        return ReadAny();
      }
      rearm_iter_ = it->first;
      mode_ = Mode::kRearmNext;
      SyscallRequest req = NativeRequest(NativeSys::kSetTimer);
      req.a = it->second.deadline > now_cache_ ? it->second.deadline - now_cache_ : 1;
      req.b = it->first;
      return req;
    }

    case Mode::kAwaitMessage: {
      ByteReader r(prev.data);
      cur_channel_ = r.U64();
      cur_src_.value = r.U64();
      uint32_t tag = r.U32();
      r.U8();  // msg kind
      Bytes body = r.Blob();
      if (body.empty()) {
        return ReadAny();
      }
      ByteReader b(body);
      ReqTag req_tag = static_cast<ReqTag>(b.U8());

      if (tag == kBindSelfChannel && req_tag == ReqTag::kTimerFire) {
        uint64_t cookie = b.U64();
        auto it = alarms_.find(cookie);
        if (it == alarms_.end()) {
          return ReadAny();  // cancelled or already fired pre-takeover
        }
        Alarm alarm = it->second;
        alarms_.erase(it);
        alarms_fired_++;
        return StartSignal(alarm.target, alarm.signum);
      }

      switch (req_tag) {
        case ReqTag::kTime: {
          mode_ = Mode::kTimeQuery;
          return NativeRequest(NativeSys::kSimTime);
        }
        case ReqTag::kAlarm: {
          pending_alarm_delay_ = b.U64();
          mode_ = Mode::kAlarmNow;
          return NativeRequest(NativeSys::kSimTime);
        }
        case ReqTag::kSignalReq: {
          Gpid target;
          target.value = b.U64();
          uint32_t signum = b.U32();
          return StartSignal(target, signum);
        }
        case ReqTag::kPsQuery: {
          ByteWriter w;
          w.U8(static_cast<uint8_t>(ReqTag::kData));
          ByteWriter payload;
          payload.U64(times_served_);
          payload.U64(alarms_fired_);
          payload.U64(alarms_.size());
          w.Blob(payload.bytes());
          mode_ = Mode::kReplying;
          SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
          req.b = cur_channel_;
          req.data = w.Take();
          return req;
        }
        default:
          return ReadAny();
      }
    }

    case Mode::kTimeQuery: {
      times_served_++;
      ByteWriter w;
      w.U8(static_cast<uint8_t>(ReqTag::kTime64));
      w.U64(static_cast<uint64_t>(prev.rv));
      mode_ = Mode::kReplying;
      SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
      req.b = cur_channel_;
      req.data = w.Take();
      return req;
    }

    case Mode::kAlarmNow: {
      SimTime now = static_cast<SimTime>(prev.rv);
      uint64_t cookie = next_cookie_++;
      Alarm alarm;
      alarm.target = cur_src_;
      alarm.deadline = now + pending_alarm_delay_;
      alarms_[cookie] = alarm;
      mode_ = Mode::kArming;
      SyscallRequest req = NativeRequest(NativeSys::kSetTimer);
      req.a = pending_alarm_delay_;
      req.b = cookie;
      return req;
    }

    case Mode::kArming:
    case Mode::kReplying:
      return ReadAny();

    case Mode::kSignalLookup: {
      uint64_t chan = static_cast<uint64_t>(prev.rv);
      if (chan == 0) {
        return ReadAny();  // target gone; drop the signal
      }
      mode_ = Mode::kSignalSend;
      SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
      req.a = 2;  // MsgKind::kSignal
      req.b = chan;
      req.data = EncodeSignalReq(sig_target_, sig_num_);
      return req;
    }

    case Mode::kSignalSend:
      return ReadAny();
  }
  return ReadAny();
}

void ProcessServerProgram::SerializeState(ByteWriter& w) const {
  w.U8(static_cast<uint8_t>(mode_));
  w.U32(static_cast<uint32_t>(alarms_.size()));
  for (const auto& [cookie, alarm] : alarms_) {
    w.U64(cookie);
    w.U64(alarm.target.value);
    w.U64(alarm.deadline);
    w.U32(alarm.signum);
  }
  w.U64(next_cookie_);
  w.U64(cur_channel_);
  w.U64(cur_src_.value);
  w.U64(sig_target_.value);
  w.U32(sig_num_);
  w.U64(pending_alarm_delay_);
  w.U64(times_served_);
  w.U64(alarms_fired_);
}

void ProcessServerProgram::RestoreState(ByteReader& r) {
  mode_ = static_cast<Mode>(r.U8());
  alarms_.clear();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t cookie = r.U64();
    Alarm alarm;
    alarm.target.value = r.U64();
    alarm.deadline = r.U64();
    alarm.signum = r.U32();
    alarms_[cookie] = alarm;
  }
  next_cookie_ = r.U64();
  cur_channel_ = r.U64();
  cur_src_.value = r.U64();
  sig_target_.value = r.U64();
  sig_num_ = r.U32();
  pending_alarm_delay_ = r.U64();
  times_served_ = r.U64();
  alarms_fired_ = r.U64();
  // Takeover entry point: re-arm timers before re-entering the read loop.
  mode_ = Mode::kRearmQuery;
}

}  // namespace auragen
