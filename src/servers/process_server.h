// The process server (§7.6): a *system* server — backed up and synchronized
// exactly like a user process (page-diff sync through the standard message
// system), in contrast to the peripheral servers' explicit-sync scheme.
//
// Responsibilities reproduced from the paper:
//   * time (§7.5.1): the `time` system call is "the responsibility of the
//     process server rather than the local kernel" — requests and answers
//     travel by message so a backup sees the same value;
//   * alarm (§7.5.2): schedules an alarm and later emits a SIGALRM message
//     on the target's signal channel;
//   * signal hub: other servers (tty ^C) route kill requests through it.
//
// Pending alarms are durable state (serialized, synced); the armed kernel
// timers behind them are cluster-local soft state, re-armed after takeover
// via WantsRunAfterRestore.

#ifndef AURAGEN_SRC_SERVERS_PROCESS_SERVER_H_
#define AURAGEN_SRC_SERVERS_PROCESS_SERVER_H_

#include <map>

#include "src/kernel/native_body.h"
#include "src/servers/protocol.h"

namespace auragen {

class ProcessServerProgram : public NativeProgram {
 public:
  ProcessServerProgram() = default;

  SyscallRequest Next(const SyscallResult& prev, bool first) override;
  void SerializeState(ByteWriter& w) const override;
  void RestoreState(ByteReader& r) override;
  bool WantsRunAfterRestore() const override { return true; }
  uint64_t StepWork() const override { return 25; }

  size_t pending_alarms() const { return alarms_.size(); }

 private:
  enum class Mode : uint8_t {
    kStart,
    kAwaitMessage,
    kTimeQuery,      // kSimTime pending for a kTime reply
    kReplying,       // kWriteChan pending
    kAlarmNow,       // kSimTime pending to stamp a new alarm's deadline
    kArming,         // kSetTimer pending
    kSignalLookup,   // kFindChan pending for a signal target
    kSignalSend,     // kWriteChan (signal) pending
    kRearmQuery,     // post-restore: about to ask for the current time
    kRearmTime,      // post-restore: kSimTime pending
    kRearmNext,      // post-restore: kSetTimer chain
  };

  struct Alarm {
    Gpid target;
    SimTime deadline = 0;
    uint32_t signum = kSigAlrm;
  };

  SyscallRequest ReadAny();
  SyscallRequest StartSignal(Gpid target, uint32_t signum);

  Mode mode_ = Mode::kStart;
  std::map<uint64_t, Alarm> alarms_;  // cookie -> alarm
  uint64_t next_cookie_ = 1;

  // In-flight context.
  uint64_t cur_channel_ = 0;
  Gpid cur_src_;
  Gpid sig_target_;
  uint32_t sig_num_ = 0;
  uint64_t pending_alarm_delay_ = 0;
  uint64_t rearm_iter_ = 0;   // cookie progress for the re-arm chain
  SimTime now_cache_ = 0;

  uint64_t times_served_ = 0;
  uint64_t alarms_fired_ = 0;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_SERVERS_PROCESS_SERVER_H_
