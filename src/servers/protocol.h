// Application-level protocol between user processes (or their kernels) and
// the operating-system server processes (§7.6).
//
// These bodies travel inside kUser messages on ordinary backed-up channels,
// so every request is automatically saved for the server's backup and every
// reply is automatically duplicate-suppressed on server rollforward — the
// §7.9 recovery story needs no special-casing per request type.
//
// Requests a kernel fabricates on a process's behalf (open, gettime, alarm)
// are encoded here too, since replay must regenerate them bit-identically.

#ifndef AURAGEN_SRC_SERVERS_PROTOCOL_H_
#define AURAGEN_SRC_SERVERS_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/base/codec.h"
#include "src/base/types.h"

namespace auragen {

enum class ReqTag : uint8_t {
  // --- to the file server (fd 0 control channel / file channels) ---
  kOpen = 1,       // {cookie, name, opener pid, opener cluster, opener backup,
                   //  opener mode}
  kFileRead = 2,   // on a file channel: {max_bytes}
  kFileWrite = 3,  // on a file channel: {payload}; reply kStatus
  kFileSeek = 4,   // on a file channel: {offset}
  kChClose = 5,    // close notification a server consumes from its queue

  // --- to the process server (fd 1 control channel) ---
  kTime = 16,      // reply kTime64
  kAlarm = 17,     // {delay_us}; no reply; SIGALRM later (§7.5.2)
  kSignalReq = 18, // server->proc-server: {target pid, signum}
  kPsQuery = 19,   // status query; reply kData (diagnostics)

  // --- to/from the tty server (fd 2 channel) ---
  kTtyWrite = 32,  // {payload}: emit to the terminal
  kTtyInput = 33,  // pushed by the server: one input line
  kTtyBind = 34,   // kernel-sent on channel creation: binds line to session

  // --- generic replies ---
  kData = 64,      // {payload}
  kStatus = 65,    // {i32}
  kTime64 = 66,    // {u64 microseconds}

  // --- local device/self traffic (never crosses the bus) ---
  kTimerFire = 80, // {u64 cookie} on the self channel (kSetTimer)
  kDevInput = 81,  // {u32 line, blob text}: terminal hardware input
};

struct OpenRequest {
  uint64_t cookie = 0;
  std::string name;
  Gpid opener;
  ClusterId opener_cluster = kNoCluster;
  ClusterId opener_backup = kNoCluster;
  uint8_t opener_mode = 0;

  Bytes Encode() const {
    ByteWriter w;
    w.U8(static_cast<uint8_t>(ReqTag::kOpen));
    w.U64(cookie);
    w.Str(name);
    w.U64(opener.value);
    w.U32(opener_cluster);
    w.U32(opener_backup);
    w.U8(opener_mode);
    return w.Take();
  }
  static OpenRequest Decode(ByteReader& r) {  // tag already consumed
    OpenRequest o;
    o.cookie = r.U64();
    o.name = r.Str();
    o.opener.value = r.U64();
    o.opener_cluster = r.U32();
    o.opener_backup = r.U32();
    o.opener_mode = r.U8();
    return o;
  }
};

inline Bytes EncodeTagged(ReqTag tag) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(tag));
  return w.Take();
}

inline Bytes EncodeTaggedU64(ReqTag tag, uint64_t v) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(tag));
  w.U64(v);
  return w.Take();
}

inline Bytes EncodeTaggedI32(ReqTag tag, int32_t v) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(tag));
  w.I32(v);
  return w.Take();
}

inline Bytes EncodeTaggedBlob(ReqTag tag, const Bytes& payload) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(tag));
  w.Blob(payload);
  return w.Take();
}

// {target pid, signum} (kSignalReq / kAlarm bookkeeping at the proc server).
inline Bytes EncodeSignalReq(Gpid target, uint32_t signum) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(ReqTag::kSignalReq));
  w.U64(target.value);
  w.U32(signum);
  return w.Take();
}

// Well-known signal numbers (§7.5.2).
inline constexpr uint32_t kSigAlrm = 14;
inline constexpr uint32_t kSigInt = 2;

// binding_tag conventions for ChanCreate (see wire.h).
inline constexpr uint32_t kBindNone = 0;
inline constexpr uint32_t kBindSignalChannel = 0xF1F1;
inline constexpr uint32_t kBindPageChannel = 0xF2F2;   // kernel <-> page server
inline constexpr uint32_t kBindReportChannel = 0xF3F3; // kernel -> proc server
inline constexpr uint32_t kBindSelfChannel = 0xF5F5;   // timers, device input
inline constexpr uint32_t kBindProcChannel = 0xF4F4;   // fd1: to the process server
inline constexpr uint32_t kBindFsChannel = 0xF6F6;     // fd0: to the file server
inline constexpr uint32_t kBindTtyLineBase = 0x1000;   // tag = base + line

}  // namespace auragen

#endif  // AURAGEN_SRC_SERVERS_PROTOCOL_H_
