#include "src/servers/tty_server.h"

namespace auragen {

SyscallRequest TtyServerProgram::ReadAny() {
  mode_ = Mode::kAwaitMessage;
  SyscallRequest req;
  req.num = Sys::kRead;
  req.a = kAnyChannel;
  return req;
}

Bytes TtyServerProgram::SnapshotState() const {
  // Small: line bindings and output sequence numbers — "only that
  // information which is actually needed to update the internal tables of
  // the backup" (§7.9).
  ByteWriter w;
  w.U32(static_cast<uint32_t>(lines_.size()));
  for (const auto& [line, session] : lines_) {
    w.U32(line);
    w.U64(session.channel);
    w.U64(session.owner.value);
    w.U64(session.out_seq);
  }
  return w.Take();
}

SyscallRequest TtyServerProgram::AfterService() {
  if (ops_since_sync_ >= options_.sync_every_ops) {
    ByteWriter w;
    ServerSyncPrefix prefix;
    for (const auto& [chan, count] : serviced_since_sync_) {
      prefix.serviced.emplace_back(ChannelId{chan}, count);
    }
    prefix.Serialize(w);
    w.Blob(SnapshotState());
    serviced_since_sync_.clear();
    ops_since_sync_ = 0;
    mode_ = Mode::kSendingSync;
    SyscallRequest req = NativeRequest(NativeSys::kServerSyncSend);
    req.data = w.Take();
    return req;
  }
  return ReadAny();
}

SyscallRequest TtyServerProgram::Next(const SyscallResult& prev, bool first) {
  if (first) {
    mode_ = Mode::kStart;
  }
  switch (mode_) {
    case Mode::kStart:
      return ReadAny();

    case Mode::kAwaitMessage: {
      ByteReader r(prev.data);
      uint64_t channel = r.U64();
      Gpid src;
      src.value = r.U64();
      uint32_t tag = r.U32();
      r.U8();  // kind
      Bytes body = r.Blob();
      if (body.empty()) {
        return ReadAny();
      }
      ByteReader b(body);
      ReqTag req_tag = static_cast<ReqTag>(b.U8());

      if (tag == kBindSelfChannel && req_tag == ReqTag::kDevInput) {
        uint32_t line = b.U32();
        Bytes text = b.Blob();
        auto it = lines_.find(line);
        if (it == lines_.end()) {
          return ReadAny();  // no session bound; input discarded
        }
        if (!text.empty() && text[0] == 0x03) {
          // ^C: route a SIGINT through the process server (§7.5.2).
          sig_target_ = it->second.owner;
          mode_ = Mode::kSignalLookup;
          SyscallRequest req = NativeRequest(NativeSys::kFindChan);
          req.a = kBindProcChannel;
          return req;
        }
        pending_channel_ = it->second.channel;
        pending_input_ = std::move(text);
        mode_ = Mode::kForwarding;
        SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
        req.b = pending_channel_;
        req.c = 1;  // device-driven: uncounted (rollforward cannot replay it)
        req.data = EncodeTaggedBlob(ReqTag::kTtyInput, pending_input_);
        return req;
      }

      if (req_tag == ReqTag::kTtyBind && tag >= kBindTtyLineBase &&
          tag < kBindTtyLineBase + 0x1000) {
        uint32_t line = tag - kBindTtyLineBase;
        Session& session = lines_[line];
        session.channel = channel;
        session.owner = src;
        serviced_since_sync_[channel]++;
        ops_since_sync_++;
        return AfterService();
      }

      if (req_tag == ReqTag::kTtyWrite && tag >= kBindTtyLineBase &&
          tag < kBindTtyLineBase + 0x1000) {
        uint32_t line = tag - kBindTtyLineBase;
        Session& session = lines_[line];
        session.channel = channel;
        session.owner = src;
        cur_line_ = line;
        serviced_since_sync_[channel]++;
        ops_since_sync_++;
        Bytes text = b.Blob();
        ByteWriter out;
        out.U32(line);
        out.U64(++session.out_seq);
        out.Blob(text);
        mode_ = Mode::kEmitting;
        SyscallRequest req = NativeRequest(NativeSys::kTtyEmit);
        req.data = out.Take();
        return req;
      }

      // Close notifications and unknown traffic.
      serviced_since_sync_[channel]++;
      ops_since_sync_++;
      return AfterService();
    }

    case Mode::kEmitting:
      return AfterService();

    case Mode::kForwarding:
      return ReadAny();

    case Mode::kSignalLookup: {
      uint64_t chan = static_cast<uint64_t>(prev.rv);
      if (chan == 0) {
        return ReadAny();
      }
      mode_ = Mode::kSignaling;
      SyscallRequest req = NativeRequest(NativeSys::kWriteChan);
      req.b = chan;
      req.c = 1;  // device-driven: uncounted
      req.data = EncodeSignalReq(sig_target_, kSigInt);
      return req;
    }

    case Mode::kSignaling:
    case Mode::kSendingSync:
      return ReadAny();
  }
  return ReadAny();
}

void TtyServerProgram::LoadSnapshot(const Bytes& snapshot) {
  ByteReader s(snapshot);
  lines_.clear();
  uint32_t n = s.U32();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t line = s.U32();
    Session session;
    session.channel = s.U64();
    session.owner.value = s.U64();
    session.out_seq = s.U64();
    lines_[line] = session;
  }
}

void TtyServerProgram::ApplyServerSync(ByteReader& r) { LoadSnapshot(r.Blob()); }

void TtyServerProgram::SerializeState(ByteWriter& w) const {
  w.Blob(SnapshotState());
  w.U32(ops_since_sync_);
}

void TtyServerProgram::RestoreState(ByteReader& r) {
  LoadSnapshot(r.Blob());
  ops_since_sync_ = r.U32();
}

}  // namespace auragen
