// The tty server (§7.6: "There is a tty server in each cluster having
// terminals"). A peripheral server with an active backup (§7.9): it must be
// core-resident — "the tty server cannot wait for a page before reading
// incoming characters".
//
// Output path: users write kTtyWrite on their fd 2 channel; the server
// stamps a per-line sequence number and emits via the kTtyEmit device
// syscall. The sequence number makes recovery-time re-emissions (requests
// serviced after the last server sync, §7.9) detectable: the machine-level
// transcript dedupes on (line, seq), and the raw transcript bounds the
// duplication window for the tests.
//
// Input path: terminal hardware input arrives on the self channel as
// kDevInput; the server forwards it as a kTtyInput message on the session
// channel bound to that line — from that point it is inside the fault-
// tolerance envelope. A ^C line instead becomes a kSignalReq to the process
// server (§7.5.2's "control C at a terminal").

#ifndef AURAGEN_SRC_SERVERS_TTY_SERVER_H_
#define AURAGEN_SRC_SERVERS_TTY_SERVER_H_

#include <map>

#include "src/kernel/native_body.h"
#include "src/servers/protocol.h"

namespace auragen {

struct TtyServerOptions {
  // ServerSync after this many serviced requests. 1 minimizes duplicate
  // output on recovery at the cost of one sync message per output (the
  // tradeoff bench_fileserver_sync sweeps).
  uint32_t sync_every_ops = 8;
};

class TtyServerProgram : public NativeProgram {
 public:
  explicit TtyServerProgram(TtyServerOptions options) : options_(options) {}

  SyscallRequest Next(const SyscallResult& prev, bool first) override;
  void SerializeState(ByteWriter& w) const override;
  void RestoreState(ByteReader& r) override;
  void ApplyServerSync(ByteReader& r) override;
  uint64_t StepWork() const override { return 20; }

 private:
  enum class Mode : uint8_t {
    kStart,
    kAwaitMessage,
    kEmitting,       // kTtyEmit pending
    kForwarding,     // kWriteChan of a kTtyInput pending
    kSignalLookup,   // kFindChan for the proc-server channel pending
    kSignaling,      // kWriteChan of a kSignalReq pending
    kSendingSync,
  };

  struct Session {
    uint64_t channel = 0;   // session channel bound to this line
    Gpid owner;
    uint64_t out_seq = 0;   // per-line output sequence (dedupe key)
  };

  SyscallRequest ReadAny();
  SyscallRequest AfterService();
  Bytes SnapshotState() const;
  void LoadSnapshot(const Bytes& snapshot);

  TtyServerOptions options_;
  Mode mode_ = Mode::kStart;
  std::map<uint32_t, Session> lines_;

  // In-flight context.
  uint32_t cur_line_ = 0;
  Gpid sig_target_;
  Bytes pending_input_;
  uint64_t pending_channel_ = 0;

  std::map<uint64_t, uint32_t> serviced_since_sync_;
  uint32_t ops_since_sync_ = 0;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_SERVERS_TTY_SERVER_H_
