#include "src/sim/cluster_model.h"

namespace auragen {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t Mix(uint64_t h, uint64_t w) {
  for (int i = 0; i < 8; ++i) {
    h ^= (w >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

ClusterModel::ClusterModel(ShardedEngine& engine, ClusterModelOptions options)
    : engine_(engine), opt_(options) {
  AURAGEN_CHECK(opt_.clusters >= 2) << "the model needs a destination to send to";
  AURAGEN_CHECK(engine_.num_shards() == 1 + opt_.clusters)
      << "engine shards (" << engine_.num_shards() << ") != 1 + clusters ("
      << opt_.clusters << ")";
  AURAGEN_CHECK(opt_.arbitration_us >= engine_.lookahead())
      << "bus arbitration below the engine lookahead breaks the contract";
  AURAGEN_CHECK(opt_.frame_time_us >= engine_.lookahead())
      << "frame transit below the engine lookahead breaks the contract";
  clusters_.resize(opt_.clusters);
  for (ClusterId c = 0; c < opt_.clusters; ++c) {
    clusters_[c].rng = Rng(opt_.seed * 0x9e3779b97f4a7c15ull + c + 1);
  }
}

void ClusterModel::Install() {
  for (ClusterId c = 0; c < opt_.clusters; ++c) {
    // Stagger starts so clusters don't tick in lockstep.
    engine_.ScheduleOn(ShardOfCluster(c), 1 + (c % 3), [this, c] { Quantum(c); });
  }
}

void ClusterModel::Quantum(ClusterId c) {
  PerCluster& pc = clusters_[c];
  ++pc.quanta;
  // The AVM stand-in: a seeded mix loop whose result feeds the fingerprint,
  // so reordering or dropping work is observable.
  uint64_t h = pc.accum;
  for (uint32_t i = 0; i < opt_.work_per_event; ++i) {
    h = Mix(h, pc.rng.Next());
  }
  pc.accum = h;
  if (++pc.since_send >= opt_.send_every) {
    pc.since_send = 0;
    // Transmit: reaches the shared bus shard after the arbitration latency —
    // the minimum intercluster effect latency that defines the lookahead.
    uint64_t payload = pc.accum;
    engine_.Trace(TraceEventKind::kSend, c, pc.quanta, 0, payload & 0xffff, 0);
    engine_.ScheduleOn(kSharedShard, opt_.arbitration_us,
                       [this, c, payload] { BusAccept(c, payload); });
  }
  SimTime now = engine_.ShardNow(ShardOfCluster(c));
  SimTime next = opt_.quantum_us + pc.rng.Below(2);
  if (now + next <= opt_.horizon_us) {
    engine_.ScheduleOn(ShardOfCluster(c), next, [this, c] { Quantum(c); });
  }
}

void ClusterModel::BusAccept(ClusterId src, uint64_t payload) {
  uint64_t frame_id = ++bus_frames_;
  // Deterministic destination spread, chosen from bus-shard state only.
  ClusterId dst =
      static_cast<ClusterId>((src + 1 + frame_id % (opt_.clusters - 1)) % opt_.clusters);
  engine_.Trace(TraceEventKind::kBusTx, src, 0, 0, frame_id, payload & 0xffff);
  engine_.ScheduleOn(ShardOfCluster(dst), opt_.frame_time_us,
                     [this, dst, frame_id, payload] { Deliver(dst, frame_id, payload); });
}

void ClusterModel::Deliver(ClusterId dst, uint64_t frame_id, uint64_t payload) {
  PerCluster& pc = clusters_[dst];
  ++pc.delivered;
  pc.accum = Mix(pc.accum, payload);
  engine_.Trace(TraceEventKind::kBusRx, dst, 0, 0, frame_id,
                engine_.ShardNow(ShardOfCluster(dst)));
}

uint64_t ClusterModel::Fingerprint() const {
  uint64_t h = 14695981039346656037ull;
  for (const PerCluster& pc : clusters_) {
    h = Mix(h, pc.accum);
    h = Mix(h, pc.quanta);
    h = Mix(h, pc.delivered);
  }
  h = Mix(h, bus_frames_);
  return h;
}

}  // namespace auragen
