// ClusterModel: a deterministic synthetic machine-shaped workload for the
// ShardedEngine — the scaling benchmark and the digest-equivalence tests
// drive this instead of the full Machine.
//
// The model mirrors the Auragen topology one-to-one with the shard layout
// the real machine will use (machine/shard_plan.h): shard 0 is the shared
// intercluster bus, shard 1+c is cluster c. Each cluster runs a stream of
// quantum events (a seeded FNV-mix spin standing in for AVM guest
// execution), and every few quanta transmits a frame: a cross-shard post to
// the bus shard after the arbitration latency, which the bus forwards to a
// destination cluster after the frame transit time. Both latencies are >=
// the engine lookahead, so the model honors the conservative contract the
// same way the real bus/disk cost model does (§5.1: no remote effect sooner
// than the minimum bus latency).
//
// Every piece of state is owned by exactly one shard (per-cluster
// accumulators by their cluster, the frame counter by the bus shard), so
// windows are race-free, and Fingerprint() — a fold over all end-state —
// must come out bit-identical for every thread count, as must the trace
// digest (kBusTx on accept, kBusRx per delivery).

#ifndef AURAGEN_SRC_SIM_CLUSTER_MODEL_H_
#define AURAGEN_SRC_SIM_CLUSTER_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/base/types.h"
#include "src/sim/sharded_engine.h"

namespace auragen {

struct ClusterModelOptions {
  uint32_t clusters = 8;
  // Must equal the engine's lookahead: the bus arbitration latency, i.e. the
  // soonest a cluster-side transmit can reach the shared bus shard.
  SimTime arbitration_us = 2;
  // Bus transit time from accept to delivery; must be >= arbitration_us.
  SimTime frame_time_us = 5;
  SimTime quantum_us = 3;        // per-cluster event cadence
  uint32_t work_per_event = 64;  // FNV-mix iterations per quantum (AVM stand-in)
  uint32_t send_every = 4;       // every Nth quantum transmits a frame
  SimTime horizon_us = 100'000;  // quanta stop rescheduling at this time
  uint64_t seed = 1;
};

class ClusterModel {
 public:
  // The engine must have 1 + clusters shards and lookahead <= arbitration_us.
  ClusterModel(ShardedEngine& engine, ClusterModelOptions options);

  ClusterModel(const ClusterModel&) = delete;
  ClusterModel& operator=(const ClusterModel&) = delete;

  // Schedules the initial quantum on every cluster shard.
  void Install();

  // Deterministic digest of all end-state (accumulators, counters): the
  // second equivalence oracle next to the trace digest.
  uint64_t Fingerprint() const;

  uint64_t frames_accepted() const { return bus_frames_; }

 private:
  static ShardId ShardOfCluster(ClusterId c) { return 1 + c; }

  void Quantum(ClusterId c);
  void BusAccept(ClusterId src, uint64_t payload);
  void Deliver(ClusterId dst, uint64_t frame_id, uint64_t payload);

  ShardedEngine& engine_;
  const ClusterModelOptions opt_;

  struct PerCluster {
    uint64_t accum = 14695981039346656037ull;  // FNV-1a offset basis
    uint64_t quanta = 0;
    uint64_t delivered = 0;
    uint32_t since_send = 0;
    Rng rng{0};
  };
  std::vector<PerCluster> clusters_;  // cluster c: touched only on shard 1+c
  uint64_t bus_frames_ = 0;           // touched only on the bus shard
};

}  // namespace auragen

#endif  // AURAGEN_SRC_SIM_CLUSTER_MODEL_H_
