#include "src/sim/engine.h"

#include <algorithm>

#include "src/base/log.h"

namespace auragen {

Engine::Engine() {
  Logger::Get().set_time_source([this] { return now_; });
}

Engine::~Engine() { Logger::Get().set_time_source({}); }

EventId Engine::Schedule(SimTime delay, Task fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Engine::ScheduleAt(SimTime when, Task fn) {
  AURAGEN_CHECK(when >= now_) << "scheduling into the past:" << when << "<" << now_;
  EventId id = next_id_++;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  queue_.push(Event{when, id, slot});
  ++live_events_;
  return id;
}

void Engine::Cancel(EventId id) {
  if (id == kNoEvent) {
    return;
  }
  cancelled_.push_back(id);
}

bool Engine::Step(SimTime until) {
  while (!queue_.empty()) {
    if (queue_.top().when > until || dispatch_limit_hit()) {
      return false;
    }
    Event ev = queue_.top();
    queue_.pop();
    --live_events_;
    Task fn = std::move(slots_[ev.slot]);
    free_slots_.push_back(ev.slot);
    if (!cancelled_.empty() &&
        std::find(cancelled_.begin(), cancelled_.end(), ev.id) != cancelled_.end()) {
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), ev.id),
                       cancelled_.end());
      continue;
    }
    now_ = ev.when;
    ++dispatched_;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventKind::kEngineDispatch, kNoCluster, 0, 0, ev.id, 0);
    }
    fn();
    return true;
  }
  return false;
}

uint64_t Engine::Run(SimTime until) {
  uint64_t n = 0;
  stop_requested_ = false;
  while (!stop_requested_ && Step(until)) {
    ++n;
  }
  if (queue_.empty()) {
    cancelled_.clear();
  }
  // Advance the clock to `until` when the horizon, not queue exhaustion,
  // ended the run — callers treat Run(t) as "simulate through t".
  if (until != kSimForever && now_ < until && !stop_requested_) {
    now_ = until;
  }
  return n;
}

}  // namespace auragen
