#include "src/sim/engine.h"

#include <algorithm>

#include "src/base/log.h"

namespace auragen {

Engine::Engine() {
  Logger::Get().set_time_source([this] { return now_; });
}

Engine::~Engine() { Logger::Get().set_time_source({}); }

EventId Engine::Schedule(SimTime delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Engine::ScheduleAt(SimTime when, std::function<void()> fn) {
  AURAGEN_CHECK(when >= now_) << "scheduling into the past:" << when << "<" << now_;
  EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  ++live_events_;
  return id;
}

void Engine::Cancel(EventId id) {
  if (id == kNoEvent) {
    return;
  }
  cancelled_.push_back(id);
}

bool Engine::Step(SimTime until) {
  while (!queue_.empty()) {
    if (queue_.top().when > until || dispatch_limit_hit()) {
      return false;
    }
    Event ev = queue_.top();
    queue_.pop();
    --live_events_;
    if (std::find(cancelled_.begin(), cancelled_.end(), ev.id) != cancelled_.end()) {
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), ev.id),
                       cancelled_.end());
      continue;
    }
    now_ = ev.when;
    ++dispatched_;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventKind::kEngineDispatch, kNoCluster, 0, 0, ev.id, 0);
    }
    ev.fn();
    return true;
  }
  return false;
}

uint64_t Engine::Run(SimTime until) {
  uint64_t n = 0;
  stop_requested_ = false;
  while (!stop_requested_ && Step(until)) {
    ++n;
  }
  if (queue_.empty()) {
    cancelled_.clear();
  }
  // Advance the clock to `until` when the horizon, not queue exhaustion,
  // ended the run — callers treat Run(t) as "simulate through t".
  if (until != kSimForever && now_ < until && !stop_requested_) {
    now_ = until;
  }
  return n;
}

}  // namespace auragen
