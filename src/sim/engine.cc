#include "src/sim/engine.h"

#include "src/base/log.h"

namespace auragen {

Engine::Engine() : owns_log_clock_(true) {
  Logger::Get().set_time_source([this] { return now_; });
}

Engine::Engine(NoLogClockTag) {}

Engine::~Engine() {
  if (owns_log_clock_) {
    Logger::Get().set_time_source({});
  }
}

EventId Engine::Schedule(SimTime delay, Task fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Engine::ScheduleAt(SimTime when, Task fn) {
  AURAGEN_CHECK(when >= now_) << "scheduling into the past:" << when << "<" << now_;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].task = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(Slot{std::move(fn), 1});
  }
  queue_.push(Event{when, next_seq_++, slot, slots_[slot].gen});
  ++live_events_;
  return MakeId(slot, slots_[slot].gen);
}

void Engine::Cancel(EventId id) {
  if (id == kNoEvent) {
    return;
  }
  uint32_t slot = static_cast<uint32_t>(id >> 32) - 1;
  uint32_t gen = static_cast<uint32_t>(id);
  if (slot >= slots_.size() || slots_[slot].gen != gen) {
    return;  // already fired, already cancelled, or not ours: no-op
  }
  // Kill the pending event in place: destroy the callable now (it may pin
  // buffers), advance the generation so the heap entry is skipped when it
  // surfaces. The slot returns to the free list at that point — not here —
  // so each slot keeps exactly one outstanding heap entry.
  slots_[slot].task = Task();
  ++slots_[slot].gen;
  --live_events_;
}

bool Engine::Step(SimTime until) {
  while (!queue_.empty()) {
    if (queue_.top().when > until || dispatch_limit_hit()) {
      return false;
    }
    Event ev = queue_.top();
    queue_.pop();
    if (slots_[ev.slot].gen != ev.gen) {
      // Cancelled while pending; the slot is free for reuse now that its
      // heap entry is gone.
      free_slots_.push_back(ev.slot);
      continue;
    }
    --live_events_;
    Task fn = std::move(slots_[ev.slot].task);
    ++slots_[ev.slot].gen;
    free_slots_.push_back(ev.slot);
    now_ = ev.when;
    ++dispatched_;
    last_dispatched_ = MakeId(ev.slot, ev.gen);
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventKind::kEngineDispatch, kNoCluster, 0, 0, last_dispatched_, 0);
    }
    fn();
    return true;
  }
  return false;
}

SimTime Engine::NextEventTime() const {
  // Stale (cancelled) entries can only sit at the top transiently — they are
  // popped by Step as they surface — but a caller may probe before any Step.
  // The top entry's time is still a lower bound; for exactness, skip ahead
  // only when the engine has no live work at all.
  if (live_events_ == 0) {
    return kSimForever;
  }
  AURAGEN_CHECK(!queue_.empty());
  return queue_.top().when;
}

uint64_t Engine::Run(SimTime until) {
  uint64_t n = 0;
  stop_requested_ = false;
  while (!stop_requested_ && Step(until)) {
    ++n;
  }
  // Advance the clock to `until` when the horizon, not queue exhaustion,
  // ended the run — callers treat Run(t) as "simulate through t". A run cut
  // short by Stop() or the dispatch-limit livelock guard did NOT simulate
  // through the horizon, so its clock stays at the last earned instant
  // (fault-campaign invariant checks compare against this clock).
  if (until != kSimForever && now_ < until && !stop_requested_ && !dispatch_limit_hit()) {
    now_ = until;
  }
  return n;
}

}  // namespace auragen
