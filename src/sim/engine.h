// Discrete-event simulation engine.
//
// The whole Auragen 4000 model — clusters, bus, disks, processes — runs on
// one Engine. Events fire in (time, sequence) order, so ties at the same
// instant are broken by scheduling order, making every run a deterministic
// function of the configuration and RNG seed. That determinism is an
// architectural invariant (DESIGN.md §4): crash/recovery equivalence tests
// compare whole-machine traces between runs.
//
// For parallel runs the Engine doubles as the per-shard core of
// ShardedEngine (sharded_engine.h): one Engine per cluster shard, driven
// window-by-window under conservative synchronization.

#ifndef AURAGEN_SRC_SIM_ENGINE_H_
#define AURAGEN_SRC_SIM_ENGINE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/base/check.h"
#include "src/base/task.h"
#include "src/base/types.h"
#include "src/trace/trace.h"

namespace auragen {

// Handle for cancelling a scheduled event. Encodes (slot, generation): the
// slot names the slab entry holding the callable, the generation says which
// occupancy of that slot the handle refers to. A handle therefore stays
// valid-to-cancel exactly while its event is pending; after the event fires
// (or is cancelled) the slot's generation moves on and the handle becomes a
// guaranteed no-op — cancelling late can never kill an unrelated event that
// happens to reuse the slot, and costs no bookkeeping.
using EventId = uint64_t;
inline constexpr EventId kNoEvent = 0;

class Engine {
 public:
  // Tag for embedded use (one Engine per shard): skips installing this
  // engine's clock as the process-wide Logger time source.
  struct NoLogClockTag {};
  static constexpr NoLogClockTag kNoLogClock{};

  Engine();
  explicit Engine(NoLogClockTag);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. Returns an id usable with
  // Cancel(). Callbacks may schedule further events freely. Task keeps hot
  // closures (delivery frames, message views) inline — no heap per event.
  EventId Schedule(SimTime delay, Task fn);

  // Schedules at an absolute time (>= Now()).
  EventId ScheduleAt(SimTime when, Task fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op (the common pattern: timers that usually fire). O(1): the slot's
  // generation is bumped so the heap entry is skipped when it surfaces; the
  // callable is destroyed immediately.
  void Cancel(EventId id);

  // Runs until the event queue empties or `until` is reached, whichever is
  // first. Returns the number of events dispatched. The clock advances to
  // `until` only when the run legitimately simulated through it — not when
  // Stop() or the dispatch limit cut the run short.
  uint64_t Run(SimTime until = kSimForever);

  // Runs exactly one event if any is pending before `until`. Returns false
  // when nothing was dispatched.
  bool Step(SimTime until = kSimForever);

  bool Empty() const { return live_events_ == 0; }
  uint64_t dispatched() const { return dispatched_; }
  uint64_t live_events() const { return live_events_; }

  // Absolute time of the earliest live pending event, or kSimForever when
  // none. Used by ShardedEngine to pick the next window.
  SimTime NextEventTime() const;

  // Advances the clock to `t` without dispatching anything. Only legal when
  // no pending event would be skipped. ShardedEngine uses this to align
  // every shard clock at control points between windows, so that schedules
  // issued outside callbacks base on the global simulated-through time.
  void AdvanceTo(SimTime t) {
    if (now_ < t) {
      AURAGEN_CHECK(NextEventTime() >= t)
          << "AdvanceTo(" << t << ") would skip a pending event at " << NextEventTime();
      now_ = t;
    }
  }

  // Id of the most recently dispatched event (valid after Step() returned
  // true). Lets an embedding driver trace dispatches without a callback in
  // the hot loop.
  EventId last_dispatched() const { return last_dispatched_; }

  // Livelock guard for fault campaigns: with a nonzero limit, Run()/Step()
  // refuse to dispatch past `limit` total events — a run stuck re-scheduling
  // at the same instant (so time never reaches the horizon) terminates with
  // dispatch_limit_hit() set instead of spinning forever. 0 disables.
  void set_dispatch_limit(uint64_t limit) { dispatch_limit_ = limit; }
  uint64_t dispatch_limit() const { return dispatch_limit_; }
  bool dispatch_limit_hit() const {
    return dispatch_limit_ != 0 && dispatched_ >= dispatch_limit_;
  }

  // Requests that Run() return after the current callback. The queue is
  // left intact; Run() can be called again.
  void Stop() { stop_requested_ = true; }

  // Write-only observability: when set, every dispatched event is recorded
  // as kEngineDispatch (masked out of the default trace configuration
  // because of its volume). Never read back by the simulation.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Test-only visibility into the cancel bookkeeping: heap entries whose
  // slot generation has moved on (they vanish as they surface). Bounded by
  // the number of Cancel() calls on still-pending events since the last
  // drain — cancel-after-fire contributes nothing.
  uint64_t stale_heap_entries() const { return queue_.size() - live_events_; }

 private:
  // The heap holds only POD keys; callables live in a slab addressed by
  // slot index. Heap shuffles therefore move 24-byte entries instead of
  // relocating whole Tasks (whose inline buffers are deliberately large).
  // `seq` breaks same-time ties in scheduling order; `gen` must match the
  // slot's current generation or the entry is a cancelled leftover.
  struct Event {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;  // FIFO among same-time events
    }
  };
  struct Slot {
    Task task;
    uint32_t gen = 1;
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t dispatched_ = 0;
  uint64_t dispatch_limit_ = 0;
  uint64_t live_events_ = 0;
  EventId last_dispatched_ = kNoEvent;
  bool stop_requested_ = false;
  bool owns_log_clock_ = false;
  Tracer* tracer_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Slot> slots_;  // slab of pending callables + generations
  std::vector<uint32_t> free_slots_;
};

}  // namespace auragen

#endif  // AURAGEN_SRC_SIM_ENGINE_H_
