// Discrete-event simulation engine.
//
// The whole Auragen 4000 model — clusters, bus, disks, processes — runs on
// one Engine. Events fire in (time, sequence) order, so ties at the same
// instant are broken by scheduling order, making every run a deterministic
// function of the configuration and RNG seed. That determinism is an
// architectural invariant (DESIGN.md §4): crash/recovery equivalence tests
// compare whole-machine traces between runs.

#ifndef AURAGEN_SRC_SIM_ENGINE_H_
#define AURAGEN_SRC_SIM_ENGINE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/base/check.h"
#include "src/base/task.h"
#include "src/base/types.h"
#include "src/trace/trace.h"

namespace auragen {

// Handle for cancelling a scheduled event.
using EventId = uint64_t;
inline constexpr EventId kNoEvent = 0;

class Engine {
 public:
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. Returns an id usable with
  // Cancel(). Callbacks may schedule further events freely. Task keeps hot
  // closures (delivery frames, message views) inline — no heap per event.
  EventId Schedule(SimTime delay, Task fn);

  // Schedules at an absolute time (>= Now()).
  EventId ScheduleAt(SimTime when, Task fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op (the common pattern: timers that usually fire).
  void Cancel(EventId id);

  // Runs until the event queue empties or `until` is reached, whichever is
  // first. Returns the number of events dispatched.
  uint64_t Run(SimTime until = kSimForever);

  // Runs exactly one event if any is pending before `until`. Returns false
  // when nothing was dispatched.
  bool Step(SimTime until = kSimForever);

  bool Empty() const { return live_events_ == 0; }
  uint64_t dispatched() const { return dispatched_; }

  // Livelock guard for fault campaigns: with a nonzero limit, Run()/Step()
  // refuse to dispatch past `limit` total events — a run stuck re-scheduling
  // at the same instant (so time never reaches the horizon) terminates with
  // dispatch_limit_hit() set instead of spinning forever. 0 disables.
  void set_dispatch_limit(uint64_t limit) { dispatch_limit_ = limit; }
  bool dispatch_limit_hit() const {
    return dispatch_limit_ != 0 && dispatched_ >= dispatch_limit_;
  }

  // Requests that Run() return after the current callback. The queue is
  // left intact; Run() can be called again.
  void Stop() { stop_requested_ = true; }

  // Write-only observability: when set, every dispatched event is recorded
  // as kEngineDispatch (masked out of the default trace configuration
  // because of its volume). Never read back by the simulation.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  // The heap holds only POD keys; callables live in a slab addressed by
  // slot index. Heap shuffles therefore move 24-byte entries instead of
  // relocating whole Tasks (whose inline buffers are deliberately large).
  struct Event {
    SimTime when;
    EventId id;
    uint32_t slot;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t dispatched_ = 0;
  uint64_t dispatch_limit_ = 0;
  uint64_t live_events_ = 0;
  bool stop_requested_ = false;
  Tracer* tracer_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Task> slots_;         // slab of pending callables
  std::vector<uint32_t> free_slots_;
  std::vector<EventId> cancelled_;  // sorted lazily; small in practice
};

}  // namespace auragen

#endif  // AURAGEN_SRC_SIM_ENGINE_H_
