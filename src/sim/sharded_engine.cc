#include "src/sim/sharded_engine.h"

#include <algorithm>

namespace auragen {

namespace {

// The shard whose callback is executing on this thread. Thread-local rather
// than a member: worker threads of different engines (parallel campaigns
// running parallel machines) must not see each other's context.
thread_local ShardedEngine* tl_engine = nullptr;
thread_local ShardId tl_shard = kNoShard;

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : lookahead_(options.lookahead_us) {
  AURAGEN_CHECK(options.num_shards >= 1) << "ShardedEngine needs at least one shard";
  AURAGEN_CHECK(lookahead_ >= 1) << "lookahead must be a positive sim-time interval";
  shards_.reserve(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_ = std::max<uint32_t>(1, std::min(options.threads, options.num_shards));
  if (threads_ > 1) {
    workers_.reserve(threads_ - 1);
    for (uint32_t t = 0; t + 1 < threads_; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ShardedEngine::~ShardedEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_workers_.notify_all();
    for (std::thread& w : workers_) {
      w.join();
    }
  }
}

SimTime ShardedEngine::ShardNow(ShardId shard) const {
  AURAGEN_CHECK(shard < shards_.size());
  return shards_[shard]->core.Now();
}

ShardId ShardedEngine::CurrentShard() const {
  return tl_engine == this ? tl_shard : kNoShard;
}

EventId ShardedEngine::ScheduleOn(ShardId shard, SimTime delay, Task fn) {
  AURAGEN_CHECK(shard < shards_.size());
  SimTime base;
  if (tl_engine == this) {
    base = shards_[tl_shard]->core.Now();
  } else {
    base = std::max(now_, shards_[shard]->core.Now());
  }
  return ScheduleAtOn(shard, base + delay, std::move(fn));
}

EventId ShardedEngine::ScheduleAtOn(ShardId shard, SimTime when, Task fn) {
  AURAGEN_CHECK(shard < shards_.size());
  if (tl_engine == this && tl_shard != shard) {
    // Cross-shard schedule from inside a window: the conservative contract.
    // The target shard may already be executing past `when` in this very
    // window, so the post must land at or after the window's end — which any
    // model latency >= lookahead guarantees from any point in the window.
    AURAGEN_CHECK(when >= active_window_end_)
        << "cross-shard schedule violates the lookahead contract: shard " << tl_shard
        << " -> " << shard << " at t=" << when << " inside window ending "
        << active_window_end_ << " (model latency must be >= lookahead)";
    shards_[tl_shard]->outbox.push_back(CrossPost{shard, when, std::move(fn)});
    // The destination id is assigned at the barrier drain; handles are only
    // valid for same-shard cancellation anyway, so none is returned.
    return kNoEvent;
  }
  if (tl_engine != this) {
    AURAGEN_CHECK(when >= now_) << "scheduling into the past:" << when << "<" << now_;
  }
  return shards_[shard]->core.ScheduleAt(when, std::move(fn));
}

void ShardedEngine::Cancel(ShardId shard, EventId id) {
  AURAGEN_CHECK(shard < shards_.size());
  if (tl_engine == this) {
    AURAGEN_CHECK(shard == tl_shard) << "cross-shard Cancel would race; shard " << tl_shard
                                     << " tried to cancel on shard " << shard;
  }
  shards_[shard]->core.Cancel(id);
}

void ShardedEngine::ScheduleControlAt(SimTime when, Task fn) {
  AURAGEN_CHECK(CurrentShard() == kNoShard)
      << "control events may only be scheduled from outside shard callbacks";
  AURAGEN_CHECK(when >= now_) << "control scheduled into the past: " << when << " < " << now_;
  controls_.emplace(when, std::move(fn));
}

void ShardedEngine::SyncShardClocks() {
  AURAGEN_CHECK(tl_engine == nullptr) << "SyncShardClocks from inside a callback";
  for (auto& sh : shards_) {
    Engine& core = sh->core;
    // Lenient on purpose: after a dispatch-limit halt a core may still hold
    // events behind the global clock; leave such a core where it stopped.
    if (core.Now() < now_ && core.NextEventTime() >= now_) {
      core.AdvanceTo(now_);
    }
  }
}

void ShardedEngine::RunControlsAt(SimTime at) {
  for (auto& sh : shards_) {
    sh->core.AdvanceTo(at);
  }
  now_ = std::max(now_, at);
  // Fire in insertion order. A control may schedule further controls at the
  // same instant; they are appended to the equal range and fire here too.
  while (!controls_.empty() && controls_.begin()->first <= at) {
    Task fn = std::move(controls_.begin()->second);
    controls_.erase(controls_.begin());
    fn();
  }
}

void ShardedEngine::Trace(TraceEventKind kind, ClusterId cluster, uint64_t gpid,
                          uint64_t channel, uint64_t a, uint64_t b) {
  if (tracer_ == nullptr || !tracer_->WantsKind(kind)) {
    return;
  }
  if (tl_engine == this) {
    Shard& sh = *shards_[tl_shard];
    sh.staged.push_back(Staged{sh.core.Now(), kind, cluster, gpid, channel, a, b});
  } else {
    tracer_->RecordAt(now_, kind, cluster, gpid, channel, a, b);
  }
}

void ShardedEngine::RunShardWindow(ShardId shard, SimTime window_end) {
  Shard& sh = *shards_[shard];
  Engine& core = sh.core;
  if (dispatch_limit_ != 0) {
    core.set_dispatch_limit(core.dispatched() + window_budget_);
  } else {
    core.set_dispatch_limit(0);
  }
  tl_engine = this;
  tl_shard = shard;
  // Dispatch everything strictly before the window end. Step pops cancelled
  // leftovers as they surface, so this also keeps the heap tidy.
  while (core.Step(window_end - 1)) {
    if (stage_dispatch_trace_) {
      sh.staged.push_back(Staged{core.Now(), TraceEventKind::kEngineDispatch, kNoCluster, 0,
                                 0, core.last_dispatched(), 0});
    }
  }
  tl_engine = nullptr;
  tl_shard = kNoShard;
}

void ShardedEngine::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    SimTime end;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_workers_.wait(lk, [&] { return shutdown_ || window_seq_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = window_seq_;
      end = published_end_;
    }
    uint32_t shard;
    while ((shard = next_shard_.fetch_add(1, std::memory_order_relaxed)) < shards_.size()) {
      RunShardWindow(shard, end);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++workers_parked_;
    }
    cv_main_.notify_one();
  }
}

void ShardedEngine::ExecuteWindowParallel(SimTime window_end) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    published_end_ = window_end;
    workers_parked_ = 0;
    next_shard_.store(0, std::memory_order_relaxed);
    ++window_seq_;
  }
  cv_workers_.notify_all();
  // The main thread is a full participant in the shard ticket race.
  uint32_t shard;
  while ((shard = next_shard_.fetch_add(1, std::memory_order_relaxed)) < shards_.size()) {
    RunShardWindow(shard, window_end);
  }
  // Wait until every worker has parked: only then is all shard state (heaps,
  // outboxes, staged traces) safely visible to the barrier, and only then
  // may next_shard_ be rearmed for the following window.
  std::unique_lock<std::mutex> lk(mu_);
  cv_main_.wait(lk, [&] { return workers_parked_ == workers_.size(); });
}

void ShardedEngine::BarrierDrain() {
  // 1. Deterministic trace merge: (ts, shard, intra-shard order). Events
  // staged by one shard are ts-nondecreasing already, so the comparator's
  // (shard, index) tie-break fully reproduces the sequential interleaving.
  if (tracer_ != nullptr) {
    merge_scratch_.clear();
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      const std::vector<Staged>& staged = shards_[s]->staged;
      for (uint32_t i = 0; i < staged.size(); ++i) {
        merge_scratch_.push_back(MergeRef{staged[i].ts, s, i});
      }
    }
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergeRef& a, const MergeRef& b) {
                if (a.ts != b.ts) return a.ts < b.ts;
                if (a.shard != b.shard) return a.shard < b.shard;
                return a.index < b.index;
              });
    for (const MergeRef& ref : merge_scratch_) {
      const Staged& e = shards_[ref.shard]->staged[ref.index];
      tracer_->RecordAt(e.ts, e.kind, e.cluster, e.gpid, e.channel, e.a, e.b);
    }
  }
  for (auto& sh : shards_) {
    sh->staged.clear();
  }

  // 2. Cross-shard posts, in (source shard, post order) order: destination
  // event ids and FIFO tie-breaks are thereby a pure function of the
  // per-shard schedules, never of thread timing.
  for (auto& sh : shards_) {
    for (CrossPost& post : sh->outbox) {
      shards_[post.dst]->core.ScheduleAt(post.when, std::move(post.fn));
    }
    sh->outbox.clear();
  }
}

uint64_t ShardedEngine::Run(SimTime until) {
  return Run(until, std::function<bool()>());
}

uint64_t ShardedEngine::Run(SimTime until, const std::function<bool()>& stop_pred) {
  AURAGEN_CHECK(tl_engine == nullptr) << "ShardedEngine::Run is not reentrant";
  stop_.store(false, std::memory_order_relaxed);
  limit_hit_ = false;
  bool pred_halt = false;
  const uint64_t start_dispatched = total_dispatched_;
  stage_dispatch_trace_ =
      tracer_ != nullptr && tracer_->WantsKind(TraceEventKind::kEngineDispatch);

  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
    if (dispatch_limit_ != 0 && total_dispatched_ >= dispatch_limit_) {
      limit_hit_ = true;
      break;
    }
    // Next window starts at the earliest pending event anywhere.
    SimTime window_start = kSimForever;
    for (const auto& sh : shards_) {
      window_start = std::min(window_start, sh->core.NextEventTime());
    }
    // A control due at or before the next shard event fires first, between
    // windows, with every shard clock aligned to the control time.
    const SimTime ctrl =
        controls_.empty() ? kSimForever : controls_.begin()->first;
    if (ctrl != kSimForever && ctrl <= window_start && ctrl <= until) {
      RunControlsAt(ctrl);
      if (stop_pred && stop_pred()) {
        pred_halt = true;
        break;
      }
      continue;
    }
    if (window_start == kSimForever || window_start > until) {
      break;  // drained (up to the horizon)
    }
    SimTime window_end = window_start + lookahead_;
    if (until != kSimForever && window_end > until + 1) {
      window_end = until + 1;  // dispatch through `until` inclusive, no further
    }
    if (window_end > ctrl) {
      window_end = ctrl;  // never dispatch past a pending control
    }
    window_budget_ =
        dispatch_limit_ == 0 ? 0 : dispatch_limit_ - total_dispatched_;
    active_window_end_ = window_end;
    if (threads_ > 1) {
      ExecuteWindowParallel(window_end);
    } else {
      for (uint32_t s = 0; s < shards_.size(); ++s) {
        RunShardWindow(s, window_end);
      }
    }
    uint64_t total = 0;
    for (const auto& sh : shards_) {
      total += sh->core.dispatched();
    }
    total_dispatched_ = total;
    BarrierDrain();
    now_ = std::max(now_, window_end - 1);
    if (stop_pred && stop_pred()) {
      pred_halt = true;
      break;
    }
  }

  // Advance to the horizon only when the run earned it (mirrors
  // Engine::Run's dispatch-limit/Stop semantics).
  if (until != kSimForever && now_ < until && !limit_hit_ && !pred_halt &&
      !stop_.load(std::memory_order_relaxed)) {
    now_ = until;
  }
  return total_dispatched_ - start_dispatched;
}

bool ShardedEngine::Empty() const {
  for (const auto& sh : shards_) {
    if (!sh->core.Empty()) {
      return false;
    }
  }
  return true;
}

uint64_t ShardedEngine::dispatched() const {
  uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->core.dispatched();
  }
  return total;
}

}  // namespace auragen
