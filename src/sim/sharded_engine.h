// ShardedEngine: conservative parallel discrete-event simulation.
//
// The single-heap Engine serializes every event in the machine, so wall
// clock is the hard ceiling on big topologies and seed campaigns. This
// engine shards the event space — one heap per cluster, plus shard 0 for
// shared components (bus arbitration, disks, process server) — and runs
// shards on a worker pool under conservative time-window synchronization
// (Chandy/Misra/Bryant style, per Treaster's survey of fault-tolerance
// techniques for large parallel systems).
//
// The synchronization unit comes straight from the paper's §5.1 bus
// atomicity model: a cluster never observes a remote effect sooner than the
// minimum intercluster bus/disk latency. That minimum is the *lookahead* L.
// Execution proceeds in windows [T, T+L): every shard dispatches its events
// inside the window in (time, sequence) order, in parallel with the other
// shards; at the window barrier, cross-shard schedules (bus deliveries,
// crash notices) are posted into the target shards. The lookahead contract
// makes the windows race-free by construction:
//
//   * a callback running on shard s may touch only shard-s state;
//   * a callback may schedule freely onto its own shard (any time >= now);
//   * a cross-shard schedule must land at or after the current window's end
//     (checked) — i.e. model latencies between shards must be >= L.
//
// Determinism is the non-negotiable invariant. Three mechanisms make a
// parallel run bit-identical to the sequential (threads=1) run:
//
//   1. per-shard execution is single-threaded and heap-ordered, so each
//      shard's event stream is a pure function of its inputs;
//   2. cross-shard posts are buffered per source shard and drained at the
//      barrier in (source shard, post order) order, so destination event
//      ids and FIFO tie-breaks never depend on thread timing;
//   3. trace records are staged per shard and merged at each barrier in
//      (timestamp, shard, shard order) order before folding into the master
//      Tracer digest — the merged stream, and hence the FNV digest, is a
//      pure function of the per-shard streams.
//
// Dispatch-limit (livelock guard) and Stop() take effect at window
// barriers: the window is the unit of deterministic progress, so a limited
// or stopped run halts at the same point for every thread count.

#ifndef AURAGEN_SRC_SIM_SHARDED_ENGINE_H_
#define AURAGEN_SRC_SIM_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/task.h"
#include "src/base/types.h"
#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace auragen {

using ShardId = uint32_t;
inline constexpr ShardId kNoShard = 0xffffffffu;
// Conventional home of shared components (bus, disks, machine-level timers).
inline constexpr ShardId kSharedShard = 0;

struct ShardedEngineOptions {
  // Shard 0 is shared; a machine with C clusters uses 1 + C shards.
  uint32_t num_shards = 1;
  // Worker threads driving windows. 1 = sequential reference execution
  // (same code path, no threads spawned); digests are identical for every
  // value. Clamped to num_shards.
  uint32_t threads = 1;
  // Conservative lookahead: the minimum cross-shard model latency, in
  // microseconds. Windows are [T, T+lookahead).
  SimTime lookahead_us = 2;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions options);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t threads() const { return threads_; }
  SimTime lookahead() const { return lookahead_; }

  // Global simulated-through time: the last completed window (or the Run()
  // horizon when the run earned it). Valid between Run() calls.
  SimTime Now() const { return now_; }
  // A shard's local clock: the time of its last dispatched event.
  SimTime ShardNow(ShardId shard) const;
  // The shard whose callback is executing on this thread, or kNoShard.
  ShardId CurrentShard() const;

  // Direct access to a shard's Engine core. Components homed on a shard
  // (kernels, disks) hold this reference and schedule on it natively; the
  // lookahead contract applies only to cross-shard traffic, which must go
  // through ScheduleOn/ScheduleAtOn.
  Engine& shard_core(ShardId shard) {
    AURAGEN_CHECK(shard < shards_.size());
    return shards_[shard]->core;
  }

  // Schedules onto `shard`. From inside a callback: same-shard schedules are
  // unrestricted; cross-shard schedules must land at or after the current
  // window's end (model latency >= lookahead guarantees this). From outside
  // Run(), any shard and any time >= Now() is legal.
  EventId ScheduleOn(ShardId shard, SimTime delay, Task fn);
  EventId ScheduleAtOn(ShardId shard, SimTime when, Task fn);

  // Cancels a pending event on `shard`. Inside a callback only the current
  // shard's events may be cancelled (a cross-shard cancel would race).
  // Cancelling an already-fired id is a no-op (see Engine::Cancel).
  void Cancel(ShardId shard, EventId id);

  // Runs windows until every shard is out of events at or before `until`.
  // Returns the number of events dispatched. The global clock advances to
  // `until` only when the run simulated through it (not on Stop() or a
  // dispatch-limit halt).
  uint64_t Run(SimTime until = kSimForever);

  // Run with a stop predicate, evaluated on the driving thread at every
  // window barrier and after every control batch — the deterministic units
  // of progress, so the halt point is identical for every thread count. A
  // predicate halt leaves the clock at the last completed window (no horizon
  // fast-forward). Returns the number of events dispatched.
  uint64_t Run(SimTime until, const std::function<bool()>& stop_pred);

  // Control events: machine-level actions (fault injection, console input,
  // restore timers) that must observe and mutate state across many shards.
  // They run on the driving thread *between* windows, with every shard clock
  // aligned to the control time (AdvanceTo), so they are data-race-free and
  // fire at the same deterministic point for every thread count. A control
  // fires only once every shard's next pending event is at or after its
  // time. Only legal from outside a shard callback (or from another control).
  void ScheduleControlAt(SimTime when, Task fn);
  void ScheduleControl(SimTime delay, Task fn) { ScheduleControlAt(now_ + delay, std::move(fn)); }

  // Aligns every shard core's clock with the global simulated-through time.
  // Call after Run() before issuing direct shard-core schedules from the
  // outside (e.g. spawning onto a machine that already ran): a core that
  // idled keeps the clock of its last event otherwise, and a delay-relative
  // schedule on it would land in the global past.
  void SyncShardClocks();

  // Requests a halt at the next window barrier (the deterministic unit of
  // progress). Callable from inside callbacks.
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  bool Empty() const;
  uint64_t dispatched() const;

  // Livelock guard, enforced deterministically at window granularity: each
  // window every shard receives the remaining global budget, and the run
  // halts at the first barrier where the total reaches the limit. The halt
  // point is identical for every thread count. 0 disables.
  void set_dispatch_limit(uint64_t limit) { dispatch_limit_ = limit; }
  bool dispatch_limit_hit() const { return limit_hit_; }

  // Master tracer for the deterministic multi-stream merge. Per-shard
  // records are staged locally and folded into this tracer at each barrier
  // in (ts, shard, shard order) order. kEngineDispatch records are staged
  // per dispatched event when the tracer's mask wants them.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Records a trace event from inside a callback: staged on the current
  // shard at its local time, merged at the barrier. Outside a callback,
  // falls through to the master tracer at global time.
  void Trace(TraceEventKind kind, ClusterId cluster, uint64_t gpid, uint64_t channel,
             uint64_t a, uint64_t b);

 private:
  // One staged trace record; ts is the recording shard's local clock.
  struct Staged {
    SimTime ts;
    TraceEventKind kind;
    ClusterId cluster;
    uint64_t gpid;
    uint64_t channel;
    uint64_t a;
    uint64_t b;
  };
  struct CrossPost {
    ShardId dst;
    SimTime when;
    Task fn;
  };
  struct Shard {
    Shard() : core(Engine::kNoLogClock) {}
    Engine core;
    std::vector<Staged> staged;    // this window's trace records, ts-ordered
    std::vector<CrossPost> outbox; // this window's cross-shard schedules
  };
  // Merge key for the barrier trace merge (ts, shard, intra-shard order).
  struct MergeRef {
    SimTime ts;
    uint32_t shard;
    uint32_t index;
  };

  void RunShardWindow(ShardId shard, SimTime window_end);
  void ExecuteWindowParallel(SimTime window_end);
  void BarrierDrain();
  void WorkerLoop();
  // Fires every control scheduled at `at` (in insertion order), with all
  // shard clocks advanced to `at` first.
  void RunControlsAt(SimTime at);

  const SimTime lookahead_;
  uint32_t threads_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;

  SimTime now_ = 0;
  uint64_t dispatch_limit_ = 0;
  uint64_t total_dispatched_ = 0;
  bool limit_hit_ = false;
  SimTime active_window_end_ = 0;    // immutable while a window executes
  uint64_t window_budget_ = 0;       // per-shard dispatch budget this window
  bool stage_dispatch_trace_ = false;
  std::atomic<bool> stop_{false};
  Tracer* tracer_ = nullptr;
  std::vector<MergeRef> merge_scratch_;
  // Pending control events, fired between windows on the driving thread.
  // multimap preserves insertion order among equal times.
  std::multimap<SimTime, Task> controls_;

  // Worker pool (only when threads_ > 1). Handshake: main publishes a
  // window under mu_ (bumping window_seq_), workers claim shards via the
  // next_shard_ ticket and park when the ticket runs out; main waits until
  // every worker is parked before touching shard state at the barrier.
  std::mutex mu_;
  std::condition_variable cv_workers_;
  std::condition_variable cv_main_;
  std::vector<std::thread> workers_;
  uint64_t window_seq_ = 0;
  SimTime published_end_ = 0;
  uint32_t workers_parked_ = 0;
  bool shutdown_ = false;
  std::atomic<uint32_t> next_shard_{0};
};

}  // namespace auragen

#endif  // AURAGEN_SRC_SIM_SHARDED_ENGINE_H_
