#include "src/trace/analysis.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_map>

namespace auragen {

void LatencyHistogram::Add(SimTime us) {
  int bucket = 0;
  while (bucket + 1 < kBuckets && (SimTime{1} << (bucket + 1)) <= us) ++bucket;
  if (us == 0) bucket = 0;
  ++buckets_[bucket];
  ++count_;
  total_us_ += us;
  if (us < min_us_) min_us_ = us;
  if (us > max_us_) max_us_ = us;
}

std::string LatencyHistogram::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "count=%" PRIu64 " mean=%.1fus min=%" PRIu64 "us max=%" PRIu64 "us",
                count_, mean_us(), min_us(), max_us());
  std::string out(buf);
  if (count_ == 0) return out;
  out += " |";
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    std::snprintf(buf, sizeof(buf), " [%" PRIu64 ",%" PRIu64 "):%" PRIu64,
                  i == 0 ? SimTime{0} : (SimTime{1} << i), SimTime{1} << (i + 1),
                  buckets_[i]);
    out += buf;
  }
  return out;
}

std::string TraceAnalysis::ToString() const {
  std::string out;
  out += "delivery latency    : " + delivery_latency.ToString() + "\n";
  out += "sync stall          : " + sync_stall.ToString() + "\n";
  out += "sync build          : " + sync_build.ToString() + "\n";
  out += "sync page enqueue   : " + sync_page_enqueue.ToString() + "\n";
  out += "sync flush pages    : " + sync_flush_pages.ToString() + "\n";
  out += "sync drain overlap  : " + sync_drain_overlap.ToString() + "\n";
  out += "crash->dispatch     : " + crash_to_dispatch.ToString() + "\n";
  out += "crash->recovered    : " + crash_to_recovered.ToString() + "\n";
  out += "rollforward replayed: " + rollforward_replayed.ToString() + "\n";
  return out;
}

TraceAnalysis AnalyzeTrace(const std::vector<TraceEvent>& events) {
  TraceAnalysis out;
  std::unordered_map<uint64_t, SimTime> tx_ts;     // frame id -> tx time
  std::unordered_map<uint64_t, SimTime> detect_ts; // dead cluster -> detect
  std::unordered_map<uint64_t, SimTime> enqueue_b; // gpid -> last flush-begin enqueue stall
  bool crash_outstanding = false;
  SimTime first_detect = 0;

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kBusTx:
        tx_ts[e.a] = e.ts;
        break;
      case TraceEventKind::kBusRx: {
        auto it = tx_ts.find(e.a);
        if (it != tx_ts.end() && e.ts >= it->second) {
          out.delivery_latency.Add(e.ts - it->second);
        }
        break;
      }
      case TraceEventKind::kSyncFlushBegin:
        out.sync_flush_pages.Add(e.a);
        out.sync_page_enqueue.Add(e.b);
        enqueue_b[e.gpid] = e.b;
        break;
      case TraceEventKind::kSyncTrigger: {
        out.sync_stall.Add(e.b);
        // kSyncFlushBegin precedes its kSyncTrigger at the same timestamp;
        // the difference of their b fields is the record-build portion.
        auto it = enqueue_b.find(e.gpid);
        if (it != enqueue_b.end() && e.b >= it->second) {
          out.sync_build.Add(e.b - it->second);
        }
        break;
      }
      case TraceEventKind::kSyncFlushAck:
        out.sync_drain_overlap.Add(e.b);
        break;
      case TraceEventKind::kCrashDetect:
        // Several survivors detect the same death; keep the earliest.
        if (detect_ts.find(e.a) == detect_ts.end()) detect_ts[e.a] = e.ts;
        if (!crash_outstanding) {
          crash_outstanding = true;
          first_detect = e.ts;
        }
        break;
      case TraceEventKind::kRecoveryDispatch:
        if (crash_outstanding) {
          out.crash_to_dispatch.Add(e.ts - first_detect);
          crash_outstanding = false;
        }
        break;
      case TraceEventKind::kCrashHandled: {
        auto it = detect_ts.find(e.a);
        if (it != detect_ts.end() && e.ts >= it->second) {
          out.crash_to_recovered.Add(e.ts - it->second);
        }
        break;
      }
      case TraceEventKind::kTakeover:
        out.rollforward_replayed.Add(e.b);
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace auragen
