#include "src/trace/analysis.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <utility>

namespace auragen {

int LatencyHistogram::MajorBucket(SimTime us) {
  int bucket = 0;
  while (bucket + 1 < kBuckets && (SimTime{1} << (bucket + 1)) <= us) ++bucket;
  if (us == 0) bucket = 0;
  return bucket;
}

void LatencyHistogram::Add(SimTime us) {
  const int major = MajorBucket(us);
  const SimTime lo = major == 0 ? 0 : (SimTime{1} << major);
  const SimTime width = (SimTime{1} << (major + 1)) - lo;  // bucket 0: [0,2)
  int sub;
  if (width >= kSubBuckets) {
    sub = static_cast<int>(((us - lo) * kSubBuckets) / width);
  } else {
    sub = static_cast<int>(us - lo);
  }
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  ++sub_buckets_[major][sub];
  ++count_;
  total_us_ += us;
  if (us < min_us_) min_us_ = us;
  if (us > max_us_) max_us_ = us;
}

SimTime LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t cum = 0;
  for (int major = 0; major < kBuckets; ++major) {
    const SimTime lo = major == 0 ? 0 : (SimTime{1} << major);
    const SimTime width = (SimTime{1} << (major + 1)) - lo;
    for (int sub = 0; sub < kSubBuckets; ++sub) {
      cum += sub_buckets_[major][sub];
      if (cum >= rank) {
        SimTime hi;
        if (width >= kSubBuckets) {
          hi = lo + (width * (sub + 1)) / kSubBuckets;
        } else {
          hi = lo + sub + 1;
        }
        SimTime value = hi == 0 ? 0 : hi - 1;  // inclusive upper edge
        if (value > max_us_) value = max_us_;
        if (value < min_us()) value = min_us();
        return value;
      }
    }
  }
  return max_us_;
}

std::string LatencyHistogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%" PRIu64 " mean=%.1fus min=%" PRIu64 "us max=%" PRIu64
                "us p50=%" PRIu64 "us p99=%" PRIu64 "us p999=%" PRIu64 "us",
                count_, mean_us(), min_us(), max_us(), p50(), p99(), p999());
  std::string out(buf);
  if (count_ == 0) return out;
  out += " |";
  for (int i = 0; i < kBuckets; ++i) {
    uint64_t in_major = 0;
    for (int s = 0; s < kSubBuckets; ++s) in_major += sub_buckets_[i][s];
    if (in_major == 0) continue;
    std::snprintf(buf, sizeof(buf), " [%" PRIu64 ",%" PRIu64 "):%" PRIu64,
                  i == 0 ? SimTime{0} : (SimTime{1} << i), SimTime{1} << (i + 1),
                  in_major);
    out += buf;
  }
  return out;
}

double TraceAnalysis::RequestGoodputPerSec() const {
  if (requests_completed == 0 || last_request_done_us <= first_request_us) {
    return 0.0;
  }
  const double span_s =
      static_cast<double>(last_request_done_us - first_request_us) / 1e6;
  return static_cast<double>(requests_completed) / span_s;
}

std::string TraceAnalysis::ToString() const {
  std::string out;
  out += "delivery latency    : " + delivery_latency.ToString() + "\n";
  out += "sync stall          : " + sync_stall.ToString() + "\n";
  out += "sync build          : " + sync_build.ToString() + "\n";
  out += "sync page enqueue   : " + sync_page_enqueue.ToString() + "\n";
  out += "sync flush pages    : " + sync_flush_pages.ToString() + "\n";
  out += "sync drain overlap  : " + sync_drain_overlap.ToString() + "\n";
  out += "crash->dispatch     : " + crash_to_dispatch.ToString() + "\n";
  out += "crash->recovered    : " + crash_to_recovered.ToString() + "\n";
  out += "rollforward replayed: " + rollforward_replayed.ToString() + "\n";
  if (disk_queue_wait.count() != 0) {
    out += "disk queue wait     : " + disk_queue_wait.ToString() + "\n";
  }
  if (fs_log_commits != 0 || fs_log_replays != 0) {
    out += "fs commit blocks    : " + fs_commit_blocks.ToString() + "\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "fs journal          : commits=%" PRIu64 " replays=%" PRIu64 "\n",
                  fs_log_commits, fs_log_replays);
    out += buf;
  }
  if (requests_completed != 0) {
    out += "request latency     : " + request_latency.ToString() + "\n";
    out += "request read lat    : " + request_read_latency.ToString() + "\n";
    out += "request write lat   : " + request_write_latency.ToString() + "\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "requests            : completed=%" PRIu64 " retries=%" PRIu64
                  " goodput=%.1f req/s over [%" PRIu64 "us,%" PRIu64 "us]\n",
                  requests_completed, request_retries, RequestGoodputPerSec(),
                  first_request_us, last_request_done_us);
    out += buf;
  }
  return out;
}

TraceAnalysis AnalyzeTrace(const std::vector<TraceEvent>& events) {
  TraceAnalysis out;
  std::unordered_map<uint64_t, SimTime> tx_ts;     // frame id -> tx time
  std::unordered_map<uint64_t, SimTime> detect_ts; // dead cluster -> detect
  std::unordered_map<uint64_t, SimTime> enqueue_b; // gpid -> last flush-begin enqueue stall
  // (gpid, tag) -> earliest issue mark. Ordered map: deterministic and
  // collision-free (tags repeat across sessions). Entries are kept (not
  // erased) after completion so a rollforward's re-executed marks cannot
  // re-pair an already-counted request; `completed` dedups the end marks.
  std::map<std::pair<uint64_t, uint64_t>, SimTime> issue_ts;
  std::map<std::pair<uint64_t, uint64_t>, bool> completed;
  bool crash_outstanding = false;
  SimTime first_detect = 0;

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kBusTx:
        tx_ts[e.a] = e.ts;
        break;
      case TraceEventKind::kBusRx: {
        auto it = tx_ts.find(e.a);
        if (it != tx_ts.end() && e.ts >= it->second) {
          out.delivery_latency.Add(e.ts - it->second);
        }
        break;
      }
      case TraceEventKind::kSyncFlushBegin:
        out.sync_flush_pages.Add(e.a);
        out.sync_page_enqueue.Add(e.b);
        enqueue_b[e.gpid] = e.b;
        break;
      case TraceEventKind::kSyncTrigger: {
        out.sync_stall.Add(e.b);
        // kSyncFlushBegin precedes its kSyncTrigger at the same timestamp;
        // the difference of their b fields is the record-build portion.
        auto it = enqueue_b.find(e.gpid);
        if (it != enqueue_b.end() && e.b >= it->second) {
          out.sync_build.Add(e.b - it->second);
        }
        break;
      }
      case TraceEventKind::kSyncFlushAck:
        out.sync_drain_overlap.Add(e.b);
        break;
      case TraceEventKind::kCrashDetect:
        // Several survivors detect the same death; keep the earliest.
        if (detect_ts.find(e.a) == detect_ts.end()) detect_ts[e.a] = e.ts;
        if (!crash_outstanding) {
          crash_outstanding = true;
          first_detect = e.ts;
        }
        break;
      case TraceEventKind::kRecoveryDispatch:
        if (crash_outstanding) {
          out.crash_to_dispatch.Add(e.ts - first_detect);
          crash_outstanding = false;
        }
        break;
      case TraceEventKind::kCrashHandled: {
        auto it = detect_ts.find(e.a);
        if (it != detect_ts.end() && e.ts >= it->second) {
          out.crash_to_recovered.Add(e.ts - it->second);
        }
        break;
      }
      case TraceEventKind::kTakeover:
        out.rollforward_replayed.Add(e.b);
        break;
      case TraceEventKind::kDiskQueueWait:
        out.disk_queue_wait.Add(e.a);
        break;
      case TraceEventKind::kFsLogCommit:
        out.fs_commit_blocks.Add(e.b);
        if (e.channel == 0) {
          ++out.fs_log_commits;
        } else {
          ++out.fs_log_replays;
        }
        break;
      case TraceEventKind::kRequestMark: {
        const auto key = std::make_pair(e.gpid, e.b);
        if (e.a == 1) {
          // Keep the earliest issue mark: a rollforward re-executes the
          // mark, and the client-visible latency starts at first issue.
          issue_ts.emplace(key, e.ts);
          if (out.first_request_us == 0 || e.ts < out.first_request_us) {
            out.first_request_us = e.ts;
          }
        } else if (e.a == 2) {
          auto it = issue_ts.find(key);
          if (it != issue_ts.end() && e.ts >= it->second &&
              !completed.count(key)) {
            completed[key] = true;
            const SimTime latency = e.ts - it->second;
            out.request_latency.Add(latency);
            const uint64_t op = e.b >> 24;
            if (op == 1) out.request_read_latency.Add(latency);
            if (op == 2) out.request_write_latency.Add(latency);
            ++out.requests_completed;
            if (e.ts > out.last_request_done_us) out.last_request_done_us = e.ts;
          }
        } else if (e.a == 3) {
          ++out.request_retries;
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

}  // namespace auragen
