// Post-hoc latency analysis over a captured trace: per-event-class
// histograms for the intervals the paper's design cares about — how long a
// frame is in flight, how long a sync stalls its primary, and how long
// recovery takes from crash detection to first dispatch / full completion.

#ifndef AURAGEN_SRC_TRACE_ANALYSIS_H_
#define AURAGEN_SRC_TRACE_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace auragen {

// Power-of-two bucketed histogram of microsecond intervals. Each power-of-
// two major bucket is subdivided into kSubBuckets log-linear sub-buckets
// (HDR-histogram style), bounding Percentile() error to 1/kSubBuckets of
// the value — tight enough to gate p99/p999 regressions at 20%.
class LatencyHistogram {
 public:
  void Add(SimTime us);

  uint64_t count() const { return count_; }
  SimTime total_us() const { return total_us_; }
  SimTime min_us() const { return count_ == 0 ? 0 : min_us_; }
  SimTime max_us() const { return max_us_; }
  double mean_us() const {
    return count_ == 0 ? 0.0 : static_cast<double>(total_us_) / static_cast<double>(count_);
  }

  // Value at quantile q in [0,1]: the upper edge of the sub-bucket holding
  // the ceil(q*count)-th smallest sample, clamped to [min_us, max_us].
  SimTime Percentile(double q) const;
  SimTime p50() const { return Percentile(0.50); }
  SimTime p99() const { return Percentile(0.99); }
  SimTime p999() const { return Percentile(0.999); }

  // "count=12 mean=34.5us min=3us max=96us p50=12us p99=90us p999=96us
  //  | [4,8):2 [8,16):7 ..."
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 40;     // [2^i, 2^(i+1)) us; bucket 0 = [0,2)
  static constexpr int kSubBuckets = 16;  // log-linear slices per major bucket

  static int MajorBucket(SimTime us);

  uint64_t sub_buckets_[kBuckets][kSubBuckets] = {};
  uint64_t count_ = 0;
  SimTime total_us_ = 0;
  SimTime min_us_ = kSimForever;
  SimTime max_us_ = 0;
};

struct TraceAnalysis {
  LatencyHistogram delivery_latency;     // bus tx -> rx, per (frame, receiver)
  LatencyHistogram sync_stall;           // primary stall per sync (§5.2)
  // Split of the sync stall (§8.3): record build vs inline page enqueue.
  // Async flushes have zero inline enqueue; their page shipping shows up in
  // sync_drain_overlap (trigger -> record sent) instead.
  LatencyHistogram sync_build;
  LatencyHistogram sync_page_enqueue;
  LatencyHistogram sync_flush_pages;     // pages shipped per flush (a count, not us)
  LatencyHistogram sync_drain_overlap;   // kSyncFlushAck.b; 0 for synchronous flushes
  LatencyHistogram crash_to_dispatch;    // crash detect -> first dispatch
  LatencyHistogram crash_to_recovered;   // crash detect -> handling complete
  LatencyHistogram rollforward_replayed; // saved messages replayed per takeover

  // Disk queueing + file-server journal (kDiskQueueWait / kFsLogCommit).
  // Group commit's before/after lives here: queue waits collapse and each
  // commit carries more blocks.
  LatencyHistogram disk_queue_wait;      // per-request wait behind the actuator
  LatencyHistogram fs_commit_blocks;     // blocks per durable commit (a count)
  uint64_t fs_log_commits = 0;           // commit records made durable
  uint64_t fs_log_replays = 0;           // committed batches replayed at boot

  // Serving-workload SLO intervals (kRequestMark pairs from guest `sys
  // mark`). Pairing keys on (gpid, tag) and keeps the *earliest* issue
  // mark, so a request whose primary dies mid-flight is charged the full
  // client-visible latency including detection and switchover.
  LatencyHistogram request_latency;        // all completed requests
  LatencyHistogram request_read_latency;   // op == 1 subset
  LatencyHistogram request_write_latency;  // op == 2 subset
  uint64_t requests_completed = 0;
  uint64_t request_retries = 0;            // phase-3 marks (resend/switchover)
  SimTime first_request_us = 0;            // earliest issue mark
  SimTime last_request_done_us = 0;        // latest completion mark

  // Completed requests per simulated second over the marked interval.
  double RequestGoodputPerSec() const;

  std::string ToString() const;
};

TraceAnalysis AnalyzeTrace(const std::vector<TraceEvent>& events);

}  // namespace auragen

#endif  // AURAGEN_SRC_TRACE_ANALYSIS_H_
