#include "src/trace/chrome_trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <unordered_map>

namespace auragen {

namespace {

// Track id inside a cluster's process row. Kernel-level events (no gpid)
// share tid 0; per-process events use the gpid counter.
uint64_t TidFor(const TraceEvent& e) {
  return e.gpid == 0 ? 0 : (e.gpid & 0xffffffffffffull);
}

int64_t PidFor(const TraceEvent& e) {
  // kNoCluster (machine/device-level events) gets its own row below the
  // per-cluster rows; the bus pair-matcher uses another.
  if (e.cluster == kNoCluster) return 1000;
  return static_cast<int64_t>(e.cluster);
}

constexpr int64_t kBusPid = 1001;

void AppendEvent(std::string* out, const char* ph, const char* name,
                 SimTime ts, SimTime dur, int64_t pid, uint64_t tid,
                 const TraceEvent& e) {
  char buf[384];
  if (dur > 0) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"auragen\",\"ph\":\"%s\","
                  "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                  ",\"pid\":%" PRId64 ",\"tid\":%" PRIu64 ",",
                  name, ph, ts, dur, pid, tid);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"auragen\",\"ph\":\"%s\",\"s\":\"t\","
                  "\"ts\":%" PRIu64 ",\"pid\":%" PRId64 ",\"tid\":%" PRIu64 ",",
                  name, ph, ts, pid, tid);
  }
  *out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"args\":{\"seq\":%" PRIu64 ",\"gpid\":\"%s\",\"channel\":\"%" PRIx64
                "\",\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
                e.seq, GpidStr(Gpid{e.gpid}).c_str(), e.channel, e.a, e.b);
  *out += buf;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEvent>& events) {
  // Pair bus tx/rx legs by frame id so frames render as duration slices.
  std::unordered_map<uint64_t, const TraceEvent*> tx_by_frame;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kBusTx) tx_by_frame[e.a] = &e;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",";
    first = false;
  };

  for (const TraceEvent& e : events) {
    const char* name = TraceEventKindName(e.kind);
    if (e.kind == TraceEventKind::kBusRx) {
      auto it = tx_by_frame.find(e.a);
      if (it != tx_by_frame.end() && e.ts >= it->second->ts) {
        comma();
        AppendEvent(&out, "X", "frame", it->second->ts, e.ts - it->second->ts,
                    kBusPid, e.cluster, e);
        continue;
      }
    }
    comma();
    AppendEvent(&out, "i", name, e.ts, 0, PidFor(e), TidFor(e), e);
  }

  // Name the synthetic rows so the viewer is self-describing.
  char meta[160];
  std::snprintf(meta, sizeof(meta),
                "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRId64
                ",\"args\":{\"name\":\"intercluster bus\"}}",
                first ? "" : ",", kBusPid);
  out += meta;
  std::snprintf(meta, sizeof(meta),
                ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1000,"
                "\"args\":{\"name\":\"machine devices\"}}");
  out += meta;
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<TraceEvent>& events) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << ExportChromeTrace(events);
  return f.good();
}

}  // namespace auragen
