// Chrome trace_event JSON export: load the output of ExportChromeTrace in
// chrome://tracing or https://ui.perfetto.dev to see the machine's timeline.
//
// Mapping: pid = cluster (plus a synthetic "bus" track), tid = gpid counter.
// Most events are instants ("ph":"i"); bus frames whose tx and rx legs are
// both in the trace become complete slices ("ph":"X") with real duration,
// which makes transit time visible at a glance.

#ifndef AURAGEN_SRC_TRACE_CHROME_TRACE_H_
#define AURAGEN_SRC_TRACE_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace auragen {

std::string ExportChromeTrace(const std::vector<TraceEvent>& events);

bool WriteChromeTrace(const std::string& path,
                      const std::vector<TraceEvent>& events);

}  // namespace auragen

#endif  // AURAGEN_SRC_TRACE_CHROME_TRACE_H_
