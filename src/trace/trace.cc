#include "src/trace/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace auragen {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;
constexpr char kTraceMagic[4] = {'A', 'T', 'R', 'C'};
constexpr uint32_t kTraceVersion = 1;

// One record in a trace file: eight little-endian u64 words.
struct FileRecord {
  uint64_t w[8];
};

FileRecord Pack(const TraceEvent& e) {
  return FileRecord{{e.seq, e.ts, static_cast<uint64_t>(e.kind),
                     static_cast<uint64_t>(e.cluster), e.gpid, e.channel, e.a,
                     e.b}};
}

TraceEvent Unpack(const FileRecord& r) {
  TraceEvent e;
  e.seq = r.w[0];
  e.ts = r.w[1];
  e.kind = static_cast<TraceEventKind>(r.w[2]);
  e.cluster = static_cast<ClusterId>(r.w[3]);
  e.gpid = r.w[4];
  e.channel = r.w[5];
  e.a = r.w[6];
  e.b = r.w[7];
  return e;
}

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSend: return "send";
    case TraceEventKind::kSendSuppressed: return "send-suppressed";
    case TraceEventKind::kDeliverPrimary: return "deliver-primary";
    case TraceEventKind::kDeliverBackup: return "deliver-backup";
    case TraceEventKind::kDeliverCount: return "deliver-count";
    case TraceEventKind::kSyncTrigger: return "sync-trigger";
    case TraceEventKind::kSyncApply: return "sync-apply";
    case TraceEventKind::kSyncTrim: return "sync-trim";
    case TraceEventKind::kPageShip: return "page-ship";
    case TraceEventKind::kPageFault: return "page-fault";
    case TraceEventKind::kPageReply: return "page-reply";
    case TraceEventKind::kCrashDetect: return "crash-detect";
    case TraceEventKind::kCrashHandled: return "crash-handled";
    case TraceEventKind::kTakeover: return "takeover";
    case TraceEventKind::kRecoveryDispatch: return "recovery-dispatch";
    case TraceEventKind::kBackupShip: return "backup-ship";
    case TraceEventKind::kBackupCreate: return "backup-create";
    case TraceEventKind::kClusterCrash: return "cluster-crash";
    case TraceEventKind::kClusterRestart: return "cluster-restart";
    case TraceEventKind::kSpawn: return "spawn";
    case TraceEventKind::kFork: return "fork";
    case TraceEventKind::kBirthNotice: return "birth-notice";
    case TraceEventKind::kExit: return "exit";
    case TraceEventKind::kSignalDeliver: return "signal-deliver";
    case TraceEventKind::kServerSyncSend: return "server-sync-send";
    case TraceEventKind::kServerSyncApply: return "server-sync-apply";
    case TraceEventKind::kFsCommit: return "fs-commit";
    case TraceEventKind::kPageStore: return "page-store";
    case TraceEventKind::kPageServe: return "page-serve";
    case TraceEventKind::kTtyEmit: return "tty-emit";
    case TraceEventKind::kDiskRead: return "disk-read";
    case TraceEventKind::kDiskWrite: return "disk-write";
    case TraceEventKind::kBusTx: return "bus-tx";
    case TraceEventKind::kBusRx: return "bus-rx";
    case TraceEventKind::kFaultInject: return "fault-inject";
    case TraceEventKind::kProcFail: return "proc-fail";
    case TraceEventKind::kSyncFlushBegin: return "sync-flush-begin";
    case TraceEventKind::kSyncFlushAck: return "sync-flush-ack";
    case TraceEventKind::kSyncAdaptive: return "sync-adaptive";
    case TraceEventKind::kRequestMark: return "request-mark";
    case TraceEventKind::kSwitchFwd: return "switch-fwd";
    case TraceEventKind::kSwitchHeld: return "switch-held";
    case TraceEventKind::kEngineDispatch: return "engine-dispatch";
    case TraceEventKind::kFsLogCommit: return "fs-log-commit";
    case TraceEventKind::kDiskQueueWait: return "disk-queue-wait";
    case TraceEventKind::kMaxKind: break;
  }
  return "unknown";
}

std::string FormatTraceEvent(const TraceEvent& e) {
  char buf[256];
  char cluster[16];
  if (e.cluster == kNoCluster) {
    std::snprintf(cluster, sizeof(cluster), "c-");
  } else {
    std::snprintf(cluster, sizeof(cluster), "c%u", e.cluster);
  }
  std::snprintf(buf, sizeof(buf),
                "#%-8" PRIu64 " t=%-10" PRIu64 " %-3s %-18s pid=%s ch=%" PRIx64
                " a=%" PRIu64 " b=%" PRIu64,
                e.seq, e.ts, cluster, TraceEventKindName(e.kind),
                GpidStr(Gpid{e.gpid}).c_str(), e.channel, e.a, e.b);
  return std::string(buf);
}

void TraceDigest::Fold(const TraceEvent& e) {
  const uint64_t words[7] = {e.ts,     static_cast<uint64_t>(e.kind),
                             static_cast<uint64_t>(e.cluster),
                             e.gpid,   e.channel,
                             e.a,      e.b};
  uint64_t h = hash;
  for (uint64_t w : words) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (i * 8)) & 0xff;
      h *= kFnvPrime;
    }
  }
  hash = h;
  ++count;
  last_ts = e.ts;
}

std::string TraceDigest::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 " (%" PRIu64 " events, last t=%" PRIu64 ")",
                hash, count, last_ts);
  return std::string(buf);
}

Tracer::Tracer(TraceOptions options) : options_(options) {
  clock_ = [] { return SimTime{0}; };
  if (!options_.unbounded && options_.ring_capacity > 0) {
    events_.reserve(options_.ring_capacity);
  }
}

void Tracer::Record(TraceEventKind kind, ClusterId cluster, uint64_t gpid,
                    uint64_t channel, uint64_t a, uint64_t b) {
  if (!WantsKind(kind)) return;  // skip the clock call for masked kinds
  if (record_hook_) {
    record_hook_(kind, cluster, gpid, channel, a, b);
    return;
  }
  RecordAt(clock_(), kind, cluster, gpid, channel, a, b);
}

void Tracer::RecordAt(SimTime ts, TraceEventKind kind, ClusterId cluster, uint64_t gpid,
                      uint64_t channel, uint64_t a, uint64_t b) {
  if (!WantsKind(kind)) return;
  TraceEvent e;
  e.seq = digest_.count;
  e.ts = ts;
  e.kind = kind;
  e.cluster = cluster;
  e.gpid = gpid;
  e.channel = channel;
  e.a = a;
  e.b = b;
  digest_.Fold(e);
  if (options_.unbounded) {
    events_.push_back(e);
  } else if (options_.ring_capacity > 0) {
    if (events_.size() < options_.ring_capacity) {
      events_.push_back(e);
    } else {
      events_[head_] = e;
      head_ = (head_ + 1) % options_.ring_capacity;
    }
  }
}

std::vector<TraceEvent> Tracer::Events() const {
  if (options_.unbounded || head_ == 0) return events_;
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

bool Tracer::SaveTo(const std::string& path) const {
  return SaveTrace(path, Events(), digest_);
}

bool SaveTrace(const std::string& path, const std::vector<TraceEvent>& events,
               const TraceDigest& digest) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(kTraceMagic, 4);
  uint32_t version = kTraceVersion;
  f.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t header[4] = {digest.hash, digest.count, digest.last_ts,
                              static_cast<uint64_t>(events.size())};
  f.write(reinterpret_cast<const char*>(header), sizeof(header));
  for (const TraceEvent& e : events) {
    FileRecord r = Pack(e);
    f.write(reinterpret_cast<const char*>(r.w), sizeof(r.w));
  }
  return f.good();
}

bool LoadTrace(const std::string& path, std::vector<TraceEvent>* events,
               TraceDigest* digest) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kTraceMagic, 4) != 0) return false;
  uint32_t version = 0;
  f.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!f || version != kTraceVersion) return false;
  uint64_t header[4];
  f.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!f) return false;
  if (digest != nullptr) {
    digest->hash = header[0];
    digest->count = header[1];
    digest->last_ts = header[2];
  }
  const uint64_t n = header[3];
  if (events != nullptr) {
    events->clear();
    events->reserve(n);
  }
  for (uint64_t i = 0; i < n; ++i) {
    FileRecord r;
    f.read(reinterpret_cast<char*>(r.w), sizeof(r.w));
    if (!f) return false;
    if (events != nullptr) events->push_back(Unpack(r));
  }
  return true;
}

DivergenceReport FindFirstDivergence(const std::vector<TraceEvent>& a,
                                     const std::vector<TraceEvent>& b) {
  DivergenceReport report;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      report.diverged = true;
      report.index = a[i].seq;
      report.description = "traces diverge at event #" + std::to_string(a[i].seq) +
                           "\n  A: " + FormatTraceEvent(a[i]) +
                           "\n  B: " + FormatTraceEvent(b[i]);
      if (i > 0) {
        report.description +=
            "\n  last agreeing event: " + FormatTraceEvent(a[i - 1]);
      }
      return report;
    }
  }
  if (a.size() != b.size()) {
    report.diverged = true;
    report.index = n;
    const char* shorter = a.size() < b.size() ? "A" : "B";
    const std::vector<TraceEvent>& longer = a.size() < b.size() ? b : a;
    report.description = std::string("trace ") + shorter + " ends after " +
                         std::to_string(n) + " events; other continues with" +
                         "\n  " + FormatTraceEvent(longer[n]);
  }
  return report;
}

}  // namespace auragen
