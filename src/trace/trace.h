// Deterministic event tracing ("flight recorder") for the whole machine.
//
// Same contract as src/core/metrics.h: tracing is write-only — no simulated
// component ever reads a trace back — so a traced run and an untraced run
// with the same seed execute identically. Every record carries sim-time and
// the identifiers of the thing it describes (cluster, gpid, channel), which
// makes a trace itself a pure function of configuration and seed: two
// identical-seed runs produce byte-identical traces, and DESIGN.md
// invariant 6 can be checked (and *diagnosed*, via FindFirstDivergence)
// event by event instead of by coarse end-state comparison.
//
// Two capture modes:
//   * kUnbounded  — keep every event (tests, tracedump captures);
//   * kRing       — bounded flight recorder: the last `ring_capacity` events
//                   survive, but the running digest still covers the whole
//                   run, so digest comparison works at any memory budget.

#ifndef AURAGEN_SRC_TRACE_TRACE_H_
#define AURAGEN_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/types.h"

namespace auragen {

// Values are stable: they are serialized in trace files and folded into
// digests. Append only; never renumber.
enum class TraceEventKind : uint8_t {
  // Message system (§5.1).
  kSend = 1,            // a = MsgKind, b = body bytes
  kSendSuppressed = 2,  // §5.4 duplicate suppression; a = budget left after
  kDeliverPrimary = 3,  // a = MsgKind, b = body bytes
  kDeliverBackup = 4,   // a = MsgKind, b = body bytes
  kDeliverCount = 5,    // count-only leg; a = writes_since_sync after bump

  // Sync machinery (§5.2, §7.8).
  kSyncTrigger = 10,    // a = sync_seq, b = primary stall us
  kSyncApply = 11,      // backup PCB updated; a = sync_seq
  kSyncTrim = 12,       // saved queue trimmed; a = messages discarded
  kPageShip = 13,       // dirty page enqueued at sync; a = page, b = bytes

  // Paging & recovery (§7.6, §7.10).
  kPageFault = 20,      // a = page, b = cookie
  kPageReply = 21,      // a = page, b = known (0: zero-fill)
  kCrashDetect = 22,    // a = dead cluster
  kCrashHandled = 23,   // a = dead cluster, b = handling duration us
  kTakeover = 24,       // a = 0 restart / 1 rollforward / 2 parked server,
                        // b = saved messages replayed
  kRecoveryDispatch = 25,  // first post-crash dispatch of an unaffected proc
  kBackupShip = 26,     // backup-create state shipped; b = bytes
  kBackupCreate = 27,   // backup materialized here; a = 1 if peripheral
  kClusterCrash = 28,
  kClusterRestart = 29,

  // Lifecycle (§7.7).
  kSpawn = 30,          // a = BackupMode
  kFork = 31,           // gpid = child; a = fork_seq, b = 1 if replayed
  kBirthNotice = 32,    // gpid = child; a = fork_seq
  kExit = 33,           // a = exit status (cast)
  kSignalDeliver = 34,  // a = signal number

  // Servers (§7.9).
  kServerSyncSend = 40,   // b = payload bytes
  kServerSyncApply = 41,
  kFsCommit = 42,         // file-server superblock commit; a = epoch
  kPageStore = 43,        // page server stored a page; a = page
  kPageServe = 44,        // page server served a request; a = page, b = known
  kTtyEmit = 45,          // a = line, b = emit seq
  kDiskRead = 46,         // a = block
  kDiskWrite = 47,        // a = block, b = bytes

  // Bus (§5.1 atomic multicast).
  kBusTx = 50,          // cluster = src; a = frame id, b = wire bytes
  kBusRx = 51,          // cluster = receiver; a = frame id, b = transit us

  // Fault injection (src/fault campaign harness).
  kFaultInject = 52,    // injector fired; a = FaultKind, b = action index
  kProcFail = 53,       // §10 individual-process fault; gpid = victim

  // Incremental sync pipeline (§8.3 overlap).
  kSyncFlushBegin = 54,  // flush captured; a = pages, b = inline enqueue
                         // stall us (0 when the drain is asynchronous)
  kSyncFlushAck = 55,    // record reached the outgoing queue; a = sync_seq,
                         // b = overlap us (drain time the primary ran through)
  kSyncAdaptive = 56,    // trigger retuned; a = new time limit us, b = pages
                         // observed at the flush that caused the change

  // Guest workload instrumentation (src/workload serving SLO layer).
  kRequestMark = 57,     // guest `sys mark`; a = phase (1 = request issued,
                         // 2 = reply received, 3 = retry/switchover),
                         // b = request tag (op << 24 | request index)

  // Segmented fabric (src/bus/fabric.h): trunk sequencing of cross-segment
  // multicasts and switch partitions.
  kSwitchFwd = 58,   // trunk re-injected a copy; cluster = frame src,
                     // channel = destination segment, a = origin frame id,
                     // b = trunk sequence number
  kSwitchHeld = 59,  // a failed switch held a frame; channel = segment,
                     // a = origin frame id, b = 0 egress / 1 trunk inbound

  // Simulation engine (very high volume; masked out by default).
  kEngineDispatch = 60,  // a = event id

  // Journaled file server (DESIGN.md §19).
  kFsLogCommit = 61,    // commit record durable (channel = 0) or replayed at
                        // boot (channel = 1); a = log seq, b = blocks in batch
  kDiskQueueWait = 62,  // request left the disk queue; gpid = bound server,
                        // channel = drive index, a = wait us, b = queue depth

  kMaxKind = 63,  // bitmask bound; keep kinds below this
};

const char* TraceEventKindName(TraceEventKind kind);

inline constexpr uint64_t TraceKindBit(TraceEventKind k) {
  return uint64_t{1} << static_cast<unsigned>(k) % 64;
}

// All kinds except the per-engine-event firehose.
inline constexpr uint64_t kDefaultTraceKindMask =
    ~uint64_t{0} & ~TraceKindBit(TraceEventKind::kEngineDispatch);

struct TraceEvent {
  uint64_t seq = 0;        // 0-based position in the whole run (never wraps)
  SimTime ts = 0;
  TraceEventKind kind = TraceEventKind::kSend;
  ClusterId cluster = kNoCluster;  // recording cluster (kNoCluster: machine)
  uint64_t gpid = 0;
  uint64_t channel = 0;
  uint64_t a = 0;          // kind-specific, see enum comments
  uint64_t b = 0;

  friend bool operator==(const TraceEvent& x, const TraceEvent& y) {
    return x.seq == y.seq && x.ts == y.ts && x.kind == y.kind &&
           x.cluster == y.cluster && x.gpid == y.gpid && x.channel == y.channel &&
           x.a == y.a && x.b == y.b;
  }
  friend bool operator!=(const TraceEvent& x, const TraceEvent& y) { return !(x == y); }
};

// One-line human-readable rendering ("t=12345us c0 send pid<0.16> ch=... ").
std::string FormatTraceEvent(const TraceEvent& e);

// Running digest over every event ever recorded (including ones a ring
// buffer has since dropped). FNV-1a over the serialized fields.
struct TraceDigest {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  uint64_t count = 0;
  SimTime last_ts = 0;

  void Fold(const TraceEvent& e);
  std::string ToString() const;

  friend bool operator==(const TraceDigest& x, const TraceDigest& y) {
    return x.hash == y.hash && x.count == y.count && x.last_ts == y.last_ts;
  }
  friend bool operator!=(const TraceDigest& x, const TraceDigest& y) { return !(x == y); }
};

struct TraceOptions {
  bool enabled = false;
  bool unbounded = true;         // false: ring-buffer flight recorder
  size_t ring_capacity = 65536;  // events kept when !unbounded
  uint64_t kind_mask = kDefaultTraceKindMask;
};

class Tracer {
 public:
  explicit Tracer(TraceOptions options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Timestamp source; the machine points this at its engine's clock.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  // Routing hook for parallel runs: when set, Record() hands the event to
  // the hook instead of folding it directly — the machine points this at
  // ShardedEngine::Trace, which stages records per shard and replays them
  // through RecordAt() at each window barrier in deterministic merge order.
  // RecordAt() itself is never intercepted (it is the merge sink).
  using RecordHook = std::function<void(TraceEventKind, ClusterId, uint64_t, uint64_t,
                                        uint64_t, uint64_t)>;
  void set_record_hook(RecordHook hook) { record_hook_ = std::move(hook); }

  bool WantsKind(TraceEventKind k) const { return (options_.kind_mask & TraceKindBit(k)) != 0; }

  // The single hot path. Callers guard with `if (tracer_ != nullptr)`, so the
  // tracing-off configuration costs one pointer test per hook point.
  void Record(TraceEventKind kind, ClusterId cluster, uint64_t gpid, uint64_t channel,
              uint64_t a, uint64_t b);

  // Record with an explicit timestamp instead of the clock callback. This is
  // the sink of ShardedEngine's deterministic multi-stream merge: per-shard
  // streams carry their own shard-local timestamps, and the merge replays
  // them here in (ts, shard, shard-order) order so the folded digest is a
  // pure function of the per-shard streams — identical at any thread count.
  void RecordAt(SimTime ts, TraceEventKind kind, ClusterId cluster, uint64_t gpid,
                uint64_t channel, uint64_t a, uint64_t b);

  // Events currently held, oldest first (the full run when unbounded; the
  // tail of the run in ring mode).
  std::vector<TraceEvent> Events() const;

  const TraceDigest& digest() const { return digest_; }
  uint64_t total_recorded() const { return digest_.count; }
  const TraceOptions& options() const { return options_; }

  // Binary trace file I/O (format: "ATRC" magic, version, digest, records).
  bool SaveTo(const std::string& path) const;

 private:
  TraceOptions options_;
  std::function<SimTime()> clock_;
  RecordHook record_hook_;
  std::vector<TraceEvent> events_;  // ring mode: circular, head_ = oldest
  size_t head_ = 0;
  TraceDigest digest_;
};

// Loads a trace file written by Tracer::SaveTo. Returns false on a missing
// or malformed file. The digest in the file covers the *whole* run even if
// the saved events are only a ring-buffer tail.
bool LoadTrace(const std::string& path, std::vector<TraceEvent>* events,
               TraceDigest* digest);
bool SaveTrace(const std::string& path, const std::vector<TraceEvent>& events,
               const TraceDigest& digest);

// First point where two event streams disagree. Comparing digests answers
// *whether* two runs diverged; this answers *where*, with full context.
struct DivergenceReport {
  bool diverged = false;
  uint64_t index = 0;       // seq of the first divergent event
  std::string description;  // human-readable: both events, or which side ended

  std::string ToString() const { return description; }
};

DivergenceReport FindFirstDivergence(const std::vector<TraceEvent>& a,
                                     const std::vector<TraceEvent>& b);

}  // namespace auragen

#endif  // AURAGEN_SRC_TRACE_TRACE_H_
