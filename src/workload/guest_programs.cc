#include "src/workload/guest_programs.h"

namespace auragen::workload {

Executable Pinger(const std::string& tag, int rounds) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r12, )" + std::to_string(rounds) + R"(
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

Executable Ponger(const std::string& tag, int rounds) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r12, )" + std::to_string(rounds) + R"(
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

Executable StatefulWorker(const std::string& tag, int rounds, int spin, int pages) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0           ; round
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r11, )" + std::to_string(spin) + R"(
    blt r9, r11, spin
    ; touch `pages` pages, 256 bytes apart, starting at 0x6000
    li r5, 0
    li r6, 0x6000
touch:
    st r8, r6, 0
    addi r6, r6, 256
    addi r5, r5, 1
    li r11, )" + std::to_string(pages) + R"(
    blt r5, r11, touch
    ; one read per round (feeder supplies)
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r11, )" + std::to_string(rounds) + R"(
    blt r8, r11, rounds
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

Executable WideStatefulWorker(const std::string& tag, int rounds, int spin,
                              int hot, int cold) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    ; prime the cold footprint once
    li r5, 0
    li r6, 0xA000
prime:
    st r5, r6, 0
    addi r6, r6, 256
    addi r5, r5, 1
    li r11, )" + std::to_string(cold) + R"(
    blt r5, r11, prime
    li r8, 0           ; round
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r11, )" + std::to_string(spin) + R"(
    blt r9, r11, spin
    ; dirty `hot` pages, 256 bytes apart
    li r5, 0
    li r6, 0x6000
touch:
    st r8, r6, 0
    addi r6, r6, 256
    addi r5, r5, 1
    li r11, )" + std::to_string(hot) + R"(
    blt r5, r11, touch
    ; one read per round (feeder supplies)
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r11, )" + std::to_string(rounds) + R"(
    blt r8, r11, rounds
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

Executable Feeder(const std::string& tag, int rounds, int pace) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(3 + tag.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, )" + std::to_string(pace) + R"(
    blt r9, r11, pace
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(rounds) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii "ch:)" + tag + R"("
buf: .word 0
)");
}

Executable ComputeJob(int total_spin) {
  return MustAssemble(R"(
start:
    li r9, 0
spin:
    addi r9, r9, 1
    li r11, )" + std::to_string(total_spin) + R"(
    blt r9, r11, spin
    exit 0
)");
}

Executable Teller(const std::string& channel, int count, int amount, int pace) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, )" + std::to_string(channel.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, )" + std::to_string(pace) + R"(
    blt r9, r11, pace
    li r11, buf
    li r12, )" + std::to_string(amount) + R"(
    st r12, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r11, )" + std::to_string(count) + R"(
    blt r8, r11, loop
    exit 0
.data
name: .ascii ")" + channel + R"("
buf: .word 0
)");
}

Executable FileChurner(const std::string& name, int records, int pace) {
  return MustAssemble(R"(
start:
    li r1, fname
    li r2, )" + std::to_string(name.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0            ; record index
wloop:
    li r9, 0
pace:
    addi r9, r9, 1
    li r11, )" + std::to_string(pace) + R"(
    blt r9, r11, pace
    ; record i carries i+1 (never zero, so a short read can't false-match)
    addi r12, r8, 1
    li r11, buf
    st r12, r11, 0
    ; mark issue: phase 1, tag = 2 << 24 | index (op 2 = write)
    li r12, 2
    li r1, 24
    shl r12, r12, r1
    or r2, r12, r8
    li r1, 1
    sys mark
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    ; mark done: phase 2
    li r12, 2
    li r1, 24
    shl r12, r12, r1
    or r2, r12, r8
    li r1, 2
    sys mark
    addi r8, r8, 1
    li r11, )" + std::to_string(records) + R"(
    blt r8, r11, wloop
    ; verify: re-open (fresh channel reads from offset 0), read back
    li r1, fname
    li r2, )" + std::to_string(name.size()) + R"(
    sys open
    mov r10, r0
    li r8, 0
    li r13, 0           ; mismatches
rloop:
    li r12, 0
    li r11, buf
    st r12, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    addi r12, r8, 1
    beq r2, r12, rok
    addi r13, r13, 1
rok:
    addi r8, r8, 1
    li r11, )" + std::to_string(records) + R"(
    blt r8, r11, rloop
    mov r1, r13
    sys exit
.data
fname: .ascii ")" + name + R"("
buf: .word 0
)");
}

Executable AccountManager(int total_txns) {
  return MustAssemble(R"(
start:
    li r1, name_a
    li r2, 6
    sys open
    mov r5, r0
    li r1, name_b
    li r2, 6
    sys open
    mov r6, r0
    li r1, logname
    li r2, 7
    sys open
    mov r7, r0          ; log fd
    li r11, fds
    st r5, r11, 0
    st r6, r11, 4
    li r1, fds
    li r2, 2
    sys bunch
    mov r13, r0         ; group id
    li r8, 0            ; txns applied
loop:
    mov r1, r13
    sys which
    mov r1, r0
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    li r11, balance
    ld r3, r11, 0
    add r3, r3, r2
    st r3, r11, 0
    ; append one byte to the log (blocks for the server's ack)
    mov r1, r7
    li r2, mark
    li r3, 1
    sys write
    addi r8, r8, 1
    ; progress dot every 8
    li r11, 8
    mod r12, r8, r11
    li r11, 0
    bne r12, r11, skip
    li r1, 2
    li r2, dot
    li r3, 1
    sys write
skip:
    li r11, )" + std::to_string(total_txns) + R"(
    blt r8, r11, loop
    ; print balance as four decimal digits
    li r11, balance
    ld r2, r11, 0
    li r9, 1000
    li r10, out
    li r5, 48
digits:
    div r4, r2, r9
    add r4, r4, r5
    stb r4, r10, 0
    mod r2, r2, r9
    li r4, 10
    div r9, r9, r4
    addi r10, r10, 1
    li r4, 0
    bne r9, r4, digits
    li r1, 2
    li r2, out
    li r3, 4
    sys write
    exit 0
.data
name_a: .ascii "ch:tla"
name_b: .ascii "ch:tlb"
logname: .ascii "txn.log"
fds: .space 8
buf: .word 0
balance: .word 0
mark: .ascii "#"
dot: .ascii "."
out: .space 8
)");
}

}  // namespace auragen::workload
