// Shared AVM guest-program builders (DESIGN.md §15.1).
//
// Every workload in the repo — the experiment benches, the examples, the
// fault campaign, and the KV serving subsystem — assembles its guest
// programs from this one library so a fix to a builder propagates
// everywhere. Builders return ready-to-spawn `Executable`s; parameters are
// baked into the assembly source, so two calls with equal arguments yield
// bit-identical images (the determinism contract extends through program
// text).

#ifndef AURAGEN_SRC_WORKLOAD_GUEST_PROGRAMS_H_
#define AURAGEN_SRC_WORKLOAD_GUEST_PROGRAMS_H_

#include <string>

#include "src/avm/assembler.h"

namespace auragen::workload {

// Ping-pong pair: `rounds` request/reply exchanges over a paired channel,
// then both exit. `tag` distinguishes channel names for concurrent pairs.
Executable Pinger(const std::string& tag, int rounds);
Executable Ponger(const std::string& tag, int rounds);

// Compute worker touching `pages` distinct pages per round for `rounds`
// rounds of `spin` loop iterations; reads one message per round from a
// feeder (so read-triggered policies engage), then exits.
Executable StatefulWorker(const std::string& tag, int rounds, int spin, int pages);

// StatefulWorker with a primed resident footprint: touches `cold` pages once
// at startup (at 0xA000), then dirties only `hot` pages (at 0x6000) per
// round. Separates sync modes that ship the whole resident set from
// dirty-only ones: after the first sync the cold pages are clean but still
// resident.
Executable WideStatefulWorker(const std::string& tag, int rounds, int spin,
                              int hot, int cold);

// Feeder for StatefulWorker: sends `rounds` ticks then exits.
Executable Feeder(const std::string& tag, int rounds, int pace = 500);

// Pure compute: spins then exits (capacity benches).
Executable ComputeJob(int total_spin);

// Bank-OLTP teller (the paper's §3 motivating workload): opens `channel`
// (full "ch:..." name), sends `count` transactions of fixed `amount`,
// paced by a `pace` spin loop, then exits.
Executable Teller(const std::string& channel, int count, int amount, int pace);

// File-append churner (journaled-fileserver workload): appends `records`
// 4-byte sequence words (record i carries i+1) to file `name`, paced by a
// `pace` spin loop, each write bracketed by kRequestMark issue/done events
// (op 2 in the tag's high byte, so tracedump attributes write latency).
// Then re-opens the file — a fresh channel reads from offset 0 — reads the
// records back and exits with the number of mismatches (0 = clean).
Executable FileChurner(const std::string& name, int records, int pace);

// Bank-OLTP account manager: bunches both teller channels (ch:tla/ch:tlb),
// applies each transaction to the balance, appends one byte per transaction
// to "txn.log", prints a '.' every 8 transactions and the final balance as
// four decimal digits.
Executable AccountManager(int total_txns);

}  // namespace auragen::workload

#endif  // AURAGEN_SRC_WORKLOAD_GUEST_PROGRAMS_H_
