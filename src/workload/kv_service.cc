#include "src/workload/kv_service.h"

#include <cstdio>

#include "src/base/check.h"
#include "src/base/rng.h"

namespace auragen::workload {
namespace {

// Key-space layout per partition: [base, base + max_local) are the
// sessions' private keys (local session index = session / partitions),
// [base + max_local, base + max_local + keys_per_partition) are shared.
constexpr uint32_t kPartitionKeyStride = 65536;

uint32_t MaxLocalSessions(const KvOptions& o) {
  return (o.sessions + o.partitions - 1) / o.partitions;
}

uint32_t PartitionSessions(uint32_t partition, const KvOptions& o) {
  if (partition >= o.sessions) return 0;
  return (o.sessions - partition - 1) / o.partitions + 1;
}

uint32_t KeyBase(uint32_t partition) { return partition * kPartitionKeyStride; }

std::string S(uint64_t v) { return std::to_string(v); }

// Zipf sampler over [0, n): weight(i) = 1/(i+1)^theta. theta == 0 is
// uniform. Deterministic given the rng stream.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double theta) {
    cumulative_.reserve(n);
    double total = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      double w = 1.0;
      for (double t = theta; t > 0.0; t -= 1.0) {
        w /= (t >= 1.0) ? static_cast<double>(i + 1) : Pow(i + 1, t);
      }
      total += w;
      cumulative_.push_back(total);
    }
  }

  uint32_t Sample(Rng& rng) const {
    const double u = rng.NextDouble() * cumulative_.back();
    uint32_t lo = 0, hi = static_cast<uint32_t>(cumulative_.size()) - 1;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (cumulative_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  // Deterministic x^t for t in (0,1) via exp/log is fine here: libm pow on
  // the same doubles is bit-stable within one build, and the plan is baked
  // into program text before the simulation starts, so cross-build drift
  // can never desynchronize a single run.
  static double Pow(uint32_t base, double t) {
    return __builtin_pow(static_cast<double>(base), t);
  }

  std::vector<double> cumulative_;
};

}  // namespace

std::string KvPrimaryChannel(uint32_t partition, uint32_t session) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ch:kv.%02u.%04u", partition, session);
  return buf;
}

std::string KvBackupChannel(uint32_t partition, uint32_t session) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ch:kw.%02u.%04u", partition, session);
  return buf;
}

std::string KvReplicaChannel(uint32_t partition) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ch:kr.%02u", partition);
  return buf;
}

std::vector<KvRequest> PlanSession(uint32_t session, const KvOptions& options) {
  AURAGEN_CHECK(options.partitions > 0 && options.sessions > 0);
  AURAGEN_CHECK(options.requests_per_session >= 2)
      << "need at least a private write and a closing private read";
  const uint32_t partition = session % options.partitions;
  const uint32_t base = KeyBase(partition);
  const uint32_t private_key = base + session / options.partitions;
  const uint32_t shared_base = base + MaxLocalSessions(options);

  Rng rng(options.seed ^ (0x517cc1b727220a95ull * (session + 1)));
  ZipfSampler zipf(options.keys_per_partition, options.zipf_theta);

  std::vector<KvRequest> plan;
  plan.reserve(options.requests_per_session);
  uint32_t expected = 0;  // last acked private-key write (store starts zeroed)
  for (uint32_t r = 0; r < options.requests_per_session; ++r) {
    KvRequest req;
    const bool first = r == 0;
    const bool last = r + 1 == options.requests_per_session;
    // First request always writes the private key and the last one always
    // reads it back, so every session exercises read-your-own-writes across
    // whatever faults the run injects in between.
    const bool private_op = first || last || rng.Chance(options.private_fraction);
    if (private_op) {
      req.key = private_key;
      req.verify = true;
      const bool write = first || (!last && rng.Chance(1.0 - options.read_fraction));
      if (write) {
        req.op = 2;
        req.value = session * 65536u + r + 1;  // unique, planner-known
        expected = req.value;
      } else {
        req.op = 1;
        req.value = expected;
      }
    } else {
      req.key = shared_base + zipf.Sample(rng);
      req.verify = false;
      if (rng.Chance(options.read_fraction)) {
        req.op = 1;
        req.value = 0;
      } else {
        req.op = 2;
        req.value = session * 65536u + r + 1;
      }
    }
    plan.push_back(req);
  }
  return plan;
}

// --- server program -------------------------------------------------------
//
// Register plan: r6 scratch base, r7 fd being served, r8 fin count,
// r9 bunch group, r10 replica fd, r11/r12 scratch, r13 "standalone" flag
// (1 = never forward writes to the replica).

Executable KvServerProgram(uint32_t partition, bool backup_role,
                           const KvOptions& options) {
  AURAGEN_CHECK(partition < options.partitions);
  const uint32_t nsess = PartitionSessions(partition, options);
  AURAGEN_CHECK(nsess > 0) << "partition " << partition << " has no sessions";
  const bool replicated = options.replicas == 2;
  const bool forwards = replicated && !backup_role;
  const uint32_t store_words = MaxLocalSessions(options) + options.keys_per_partition;
  // Backups bunch the replica channel alongside their client channels so
  // forwarded writes and direct (post-switchover) requests share one loop.
  const uint32_t bunch_count = backup_role ? nsess + 1 : nsess;

  std::string src = "start:\n    li r13, " + S(forwards ? 0 : 1) + "\n";
  if (replicated) {
    src += R"(
    li r1, rname
    li r2, 8
    sys open
    mov r10, r0
)";
  }
  src += R"(
    li r6, 0
open_loop:
    li r12, 16
    mul r1, r6, r12
    li r12, names
    add r1, r1, r12
    li r2, 13
    sys open
    li r12, 4
    mul r11, r6, r12
    li r12, fds
    add r11, r11, r12
    st r0, r11, 0
    addi r6, r6, 1
    li r12, )" + S(nsess) + R"(
    blt r6, r12, open_loop
)";
  if (backup_role) {
    src += "    li r11, fds\n    st r10, r11, " + S(nsess * 4) + "\n";
  }
  src += R"(
    li r1, fds
    li r2, )" + S(bunch_count) + R"(
    sys bunch
    mov r9, r0
    li r8, 0
serve:
    mov r1, r9
    sys which
    mov r7, r0
    mov r1, r7
    li r2, req
    li r3, 20
    sys read
    li r6, req
    ld r1, r6, 0
    ld r2, r6, 4
    ld r3, r6, 8
    ld r4, r6, 12
    ld r5, r6, 16
    ; per-session dedup entry: sess + ((session - P) / NPART) * 8
    li r11, )" + S(partition) + R"(
    sub r11, r2, r11
    li r12, )" + S(options.partitions) + R"(
    div r11, r11, r12
    li r12, 8
    mul r11, r11, r12
    li r12, sess
    add r11, r11, r12
    ld r12, r11, 0
    bge r12, r3, dup
    li r12, 1
    beq r1, r12, do_read
    li r12, 2
    beq r1, r12, do_write
    jmp do_fin
dup:
    ; retried request: answer from the (last_seq, last_value) cache so an
    ; acked write is never applied twice
    ld r12, r11, 4
    li r6, rep
    st r3, r6, 0
    st r12, r6, 4
    li r12, 0
    st r12, r6, 8
    jmp send_rep
do_read:
    li r12, )" + S(KeyBase(partition)) + R"(
    sub r12, r4, r12
    li r6, 4
    mul r12, r12, r6
    li r6, store
    add r12, r12, r6
    ld r4, r12, 0
    li r6, rep
    st r3, r6, 0
    st r4, r6, 4
    li r12, 0
    st r12, r6, 8
    jmp send_rep
do_write:
)";
  if (forwards) {
    src += R"(
    li r12, 1
    beq r13, r12, w_apply
    mov r1, r10
    li r2, req
    li r3, 20
    sys write
    li r12, 0
    bge r12, r0, w_peer_dead
    mov r1, r10
    li r2, ack
    li r3, 12
    sys read
    li r12, 0
    blt r12, r0, w_apply
w_peer_dead:
    li r13, 1
)";
  }
  src += R"(
w_apply:
    li r6, req
    ld r2, r6, 4
    ld r3, r6, 8
    ld r4, r6, 12
    ld r5, r6, 16
    li r11, )" + S(partition) + R"(
    sub r11, r2, r11
    li r12, )" + S(options.partitions) + R"(
    div r11, r11, r12
    li r12, 8
    mul r11, r11, r12
    li r12, sess
    add r11, r11, r12
    li r12, )" + S(KeyBase(partition)) + R"(
    sub r12, r4, r12
    li r6, 4
    mul r12, r12, r6
    li r6, store
    add r12, r12, r6
    st r5, r12, 0
    st r3, r11, 0
    st r5, r11, 4
    li r6, rep
    st r3, r6, 0
    st r5, r6, 4
    li r12, 0
    st r12, r6, 8
    jmp send_rep
do_fin:
)";
  if (forwards) {
    src += R"(
    li r12, 1
    beq r13, r12, f_apply
    mov r1, r10
    li r2, req
    li r3, 20
    sys write
    li r12, 0
    bge r12, r0, f_peer_dead
    mov r1, r10
    li r2, ack
    li r3, 12
    sys read
    li r12, 0
    blt r12, r0, f_apply
f_peer_dead:
    li r13, 1
)";
  }
  src += R"(
f_apply:
    li r6, req
    ld r2, r6, 4
    ld r3, r6, 8
    li r11, )" + S(partition) + R"(
    sub r11, r2, r11
    li r12, )" + S(options.partitions) + R"(
    div r11, r11, r12
    li r12, 8
    mul r11, r11, r12
    li r12, sess
    add r11, r11, r12
    st r3, r11, 0
    addi r8, r8, 1
    li r6, rep
    st r3, r6, 0
    li r12, 0
    st r12, r6, 4
    st r12, r6, 8
send_rep:
    mov r1, r7
    li r2, rep
    li r3, 12
    sys write
    li r12, )" + S(nsess) + R"(
    blt r8, r12, serve
    exit 0
.data
)";
  if (replicated) {
    src += "rname: .ascii \"" + KvReplicaChannel(partition) + "\"\n";
  }
  src += "names:\n";
  for (uint32_t s = partition; s < options.sessions; s += options.partitions) {
    const std::string name = backup_role ? KvBackupChannel(partition, s)
                                         : KvPrimaryChannel(partition, s);
    src += ".ascii \"" + name + "\"\n.space 3\n";
  }
  // Layout note: rname (8B) and the 16B-stride name table keep every later
  // label 4-aligned without an .align directive.
  src += R"(
fds: .space )" + S((nsess + 1) * 4) + R"(
sess: .space )" + S(nsess * 8) + R"(
req: .space 20
rep: .space 12
ack: .space 12
store: .space )" + S(store_words * 4) + R"(
)";
  return MustAssemble(src);
}

// --- client program -------------------------------------------------------
//
// Register plan: r6 table entry addr, r7 current fd, r8 request index,
// r9 backup fd, r10 primary fd, r11/r12 scratch, r13 verification-failure
// count (becomes the exit status).

Executable KvClientProgram(uint32_t session, const KvOptions& options) {
  AURAGEN_CHECK(session < options.sessions);
  const uint32_t partition = session % options.partitions;
  const bool replicated = options.replicas == 2;
  const std::vector<KvRequest> plan = PlanSession(session, options);
  const uint32_t nreq = static_cast<uint32_t>(plan.size());

  // Stagger session start deterministically so thousands of clients don't
  // issue their first request on the same work quantum.
  Rng rng(options.seed ^ (0xd6e8feb86659fd93ull * (session + 1)));
  const uint32_t stagger =
      options.think_spin == 0 ? 1 : 1 + static_cast<uint32_t>(rng.Below(4 * options.think_spin));

  std::string src = R"(
start:
    li r1, pname
    li r2, 13
    sys open
    mov r10, r0
)";
  if (replicated) {
    src += R"(
    li r1, bname
    li r2, 13
    sys open
    mov r9, r0
)";
  }
  src += R"(
    mov r7, r10
    li r13, 0
    ; deterministic per-session stagger
    li r11, 0
stagger:
    addi r11, r11, 1
    li r12, )" + S(stagger) + R"(
    blt r11, r12, stagger
    li r8, 0
req_loop:
    ; think time
    li r11, 0
think:
    addi r11, r11, 1
    li r12, )" + S(options.think_spin == 0 ? 1 : options.think_spin) + R"(
    blt r11, r12, think
    ; build request from the baked plan entry
    li r11, 12
    mul r6, r8, r11
    li r11, table
    add r6, r6, r11
    ld r1, r6, 0
    ld r2, r6, 4
    ld r3, r6, 8
    li r11, req
    li r12, 255
    and r12, r1, r12
    st r12, r11, 0
    li r12, )" + S(session) + R"(
    st r12, r11, 4
    addi r12, r8, 1
    st r12, r11, 8
    st r2, r11, 12
    st r3, r11, 16
    ; mark issue: phase 1, tag = op << 24 | index
    ld r12, r11, 0
    li r1, 24
    shl r12, r12, r1
    or r2, r12, r8
    li r1, 1
    sys mark
attempt:
    mov r1, r7
    li r2, req
    li r3, 20
    sys write
    li r12, 0
    bge r12, r0, fail
    mov r1, r7
    li r2, rep
    li r3, 12
    sys read
    li r12, 0
    bge r12, r0, fail
    ; mark completion: phase 2
    li r11, req
    ld r12, r11, 0
    li r1, 24
    shl r12, r12, r1
    or r2, r12, r8
    li r1, 2
    sys mark
    ; verify if the plan demands it
    li r11, 12
    mul r6, r8, r11
    li r11, table
    add r6, r6, r11
    ld r1, r6, 0
    li r11, 256
    and r11, r1, r11
    li r12, 0
    beq r11, r12, next
    ld r3, r6, 8
    li r11, rep
    ld r12, r11, 4
    beq r12, r3, next
    addi r13, r13, 1
next:
    addi r8, r8, 1
    li r12, )" + S(nreq) + R"(
    blt r8, r12, req_loop
    ; FIN: op 3, seq = nreq + 1, lets the server retire this session
    li r11, req
    li r12, 3
    st r12, r11, 0
    li r12, )" + S(session) + R"(
    st r12, r11, 4
    li r12, )" + S(nreq + 1) + R"(
    st r12, r11, 8
    li r12, 0
    st r12, r11, 12
    st r12, r11, 16
fin_attempt:
    mov r1, r7
    li r2, req
    li r3, 20
    sys write
    li r12, 0
    bge r12, r0, fin_fail
    mov r1, r7
    li r2, rep
    li r3, 12
    sys read
    li r12, 0
    bge r12, r0, fin_fail
    mov r1, r13
    sys exit
fail:
    ; channel failure: mark the retry, then switch to the replica once
    li r1, 3
    mov r2, r8
    sys mark
)";
  if (replicated) {
    src += R"(
    beq r7, r9, hard_fail
    mov r7, r9
    jmp attempt
)";
  }
  src += R"(
hard_fail:
    addi r13, r13, 1
    jmp next
fin_fail:
)";
  if (replicated) {
    src += R"(
    beq r7, r9, fin_hard_fail
    mov r7, r9
    jmp fin_attempt
)";
  }
  src += R"(
fin_hard_fail:
    addi r13, r13, 1
    mov r1, r13
    sys exit
.data
pname: .ascii ")" + KvPrimaryChannel(partition, session) + R"("
.space 3
)";
  if (replicated) {
    src += "bname: .ascii \"" + KvBackupChannel(partition, session) +
           "\"\n.space 3\n";
  }
  src += "table:\n";
  for (const KvRequest& r : plan) {
    src += ".word " + S(r.op | (r.verify ? 256u : 0u)) + "\n.word " + S(r.key) +
           "\n.word " + S(r.value) + "\n";
  }
  src += R"(
req: .space 20
rep: .space 12
)";
  return MustAssemble(src);
}

// --- deployment -----------------------------------------------------------

KvDeployment DeployKv(Machine& machine, const KvOptions& options) {
  AURAGEN_CHECK(options.replicas == 1 || options.replicas == 2);
  AURAGEN_CHECK(options.partitions <= 100 && options.sessions <= 10000)
      << "channel name encoding is %02u/%04u";
  const uint32_t C = machine.config().num_clusters;
  AURAGEN_CHECK(C >= 2);

  KvDeployment d;
  d.options = options;

  auto msgsys_backup = [&](ClusterId home) -> ClusterId {
    return (home + 1) % C;
  };

  for (uint32_t p = 0; p < options.partitions; ++p) {
    const ClusterId home =
        (options.primary_base + (options.spread_servers ? p : 0)) % C;
    Machine::UserSpawnOptions so;
    so.backup_cluster = msgsys_backup(home);
    d.primaries.push_back(
        machine.SpawnUserProgram(home, KvServerProgram(p, false, options), so));
    d.primary_clusters.push_back(home);
  }
  if (options.replicas == 2) {
    for (uint32_t p = 0; p < options.partitions; ++p) {
      const ClusterId home =
          (options.backup_base + (options.spread_servers ? p : 0)) % C;
      AURAGEN_CHECK(home != d.primary_clusters[p])
          << "app replica of partition " << p << " colocated with its primary";
      Machine::UserSpawnOptions so;
      so.backup_cluster = msgsys_backup(home);
      d.backups.push_back(
          machine.SpawnUserProgram(home, KvServerProgram(p, true, options), so));
      d.backup_clusters.push_back(home);
    }
  }
  std::vector<uint32_t> client_homes = options.client_clusters;
  if (client_homes.empty()) {
    for (uint32_t c = 0; c < C; ++c) client_homes.push_back(c);
  }
  for (uint32_t s = 0; s < options.sessions; ++s) {
    const ClusterId home = client_homes[s % client_homes.size()];
    Machine::UserSpawnOptions so;
    so.backup_cluster = msgsys_backup(home);
    d.clients.push_back(
        machine.SpawnUserProgram(home, KvClientProgram(s, options), so));
    d.client_clusters.push_back(home);
  }
  return d;
}

bool KvClientsDone(const Machine& machine, const KvDeployment& d) {
  for (Gpid pid : d.clients) {
    if (!machine.HasExited(pid)) return false;
  }
  return true;
}

uint64_t KvMismatchTotal(const Machine& machine, const KvDeployment& d) {
  uint64_t total = 0;
  for (Gpid pid : d.clients) {
    if (!machine.HasExited(pid)) {
      ++total;  // a stuck client is a lost session
      continue;
    }
    const int32_t status = machine.ExitStatus(pid);
    total += status < 0 ? 1 : static_cast<uint64_t>(status);
  }
  return total;
}

}  // namespace auragen::workload
