// Partitioned, replicated key-value service as an AVM guest application,
// plus its closed-loop traffic generator (DESIGN.md §15).
//
// The service is the repo's first guest *application* layer: server and
// client programs are assembled from generated AVM source and speak a tiny
// request/reply protocol over paper-semantics channels ("ch:" names paired
// by the file server, §7.4.1). Sessions are striped over partitions
// (partition = session % partitions); each partition owns a contiguous key
// range served out of the server's address space.
//
// Fault tolerance comes in two flavors, selected by `replicas`:
//   1 — the paper's way: the message system backs up each server process
//       and failover is transparent to clients (takeover + rollforward).
//   2 — application-level primary/backup chaining (the CORBA bank-server
//       shape): the primary forwards writes to a live replica and clients
//       retry/switch to the replica's channel when the primary's channel
//       dies. Used to measure switchover cost when the machine offers no
//       process backups (FtStrategy::kNone).
//
// Every acknowledged write is sequenced per session; servers keep a
// per-session (last_seq, last_value) table so a retried request is answered
// from cache, never applied twice — the "no acked write lost, none applied
// twice" invariant the fault campaign checks end-to-end.
//
// Clients mark request issue/completion with `sys mark`; the SLO layer
// (slo.h) folds the resulting kRequestMark trace events into p50/p99/p999
// and goodput.

#ifndef AURAGEN_SRC_WORKLOAD_KV_SERVICE_H_
#define AURAGEN_SRC_WORKLOAD_KV_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen::workload {

struct KvOptions {
  // Shape of the deployment.
  uint32_t sessions = 1000;           // closed-loop client sessions
  uint32_t partitions = 8;            // KV partitions (server processes)
  uint32_t replicas = 1;              // 1: message-system FT; 2: app-level P/B

  // Per-session traffic plan (deterministic in `seed`).
  uint32_t requests_per_session = 16;
  double read_fraction = 0.70;        // read share of shared-key ops
  double private_fraction = 0.25;     // ops against the session's own key
  uint32_t keys_per_partition = 64;   // shared keys per partition
  double zipf_theta = 0.99;           // 0 = uniform shared-key distribution
  uint32_t think_spin = 64;           // spin iterations between requests
  uint64_t seed = 1;

  // Placement (deterministic). Partition p's primary runs on cluster
  // (primary_base + (spread_servers ? p : 0)) % C; with replicas == 2 its
  // application backup runs on (backup_base + (spread_servers ? p : 0)) % C.
  // Clients round-robin over `client_clusters` (empty: all clusters).
  uint32_t primary_base = 0;
  uint32_t backup_base = 1;
  bool spread_servers = true;
  std::vector<uint32_t> client_clusters;
};

// One planned client request.
struct KvRequest {
  uint32_t op = 1;        // 1 = read, 2 = write
  bool verify = false;    // reply value must equal `value` (private keys)
  uint32_t key = 0;       // global key id
  uint32_t value = 0;     // write payload, or expected value for a verify read
};

// The deterministic per-session plan (exposed for tests).
std::vector<KvRequest> PlanSession(uint32_t session, const KvOptions& options);

// Channel names (fixed width so server name tables have a fixed stride).
std::string KvPrimaryChannel(uint32_t partition, uint32_t session);  // ch:kv.PP.SSSS
std::string KvBackupChannel(uint32_t partition, uint32_t session);   // ch:kw.PP.SSSS
std::string KvReplicaChannel(uint32_t partition);                    // ch:kr.PP

// Program builders (exposed for tests; DeployKv drives them).
Executable KvServerProgram(uint32_t partition, bool backup_role,
                           const KvOptions& options);
Executable KvClientProgram(uint32_t session, const KvOptions& options);

// A deployed service: pids and placement of everything spawned.
struct KvDeployment {
  KvOptions options;
  std::vector<Gpid> clients;              // by session
  std::vector<Gpid> primaries;            // by partition
  std::vector<Gpid> backups;              // by partition (replicas == 2)
  std::vector<ClusterId> primary_clusters;
  std::vector<ClusterId> backup_clusters;
  std::vector<ClusterId> client_clusters; // by session
};

// Spawns servers (primaries, then app backups, then clients, all in
// deterministic order) onto a booted machine. Must be called exactly once
// per machine.
KvDeployment DeployKv(Machine& machine, const KvOptions& options);

// True once every client — and, with app-level replicas, every backup — has
// exited. Safe as a RunUntil predicate under crash scenarios where a dead
// primary never reports an exit.
bool KvClientsDone(const Machine& machine, const KvDeployment& d);

// Sum of client exit statuses (each client exits with its count of
// verification failures: lost acked writes, wrong read-your-own-writes
// values, or exhausted retries). 0 == all invariants held.
uint64_t KvMismatchTotal(const Machine& machine, const KvDeployment& d);

}  // namespace auragen::workload

#endif  // AURAGEN_SRC_WORKLOAD_KV_SERVICE_H_
