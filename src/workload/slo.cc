#include "src/workload/slo.h"

#include <cstdio>

namespace auragen::workload {

std::string SloReport::ToString() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "sessions=%llu complete=%s mismatches=%llu\n",
                static_cast<unsigned long long>(sessions),
                complete ? "yes" : "NO",
                static_cast<unsigned long long>(mismatches));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "requests=%llu retries=%llu goodput=%.1f req/s over %.3fs\n",
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(retries), goodput_rps,
                duration_s);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "latency mean=%.1fus p50=%lluus p99=%lluus p999=%lluus "
                "max=%lluus (read p99=%lluus, write p99=%lluus)\n",
                mean_us, static_cast<unsigned long long>(p50_us),
                static_cast<unsigned long long>(p99_us),
                static_cast<unsigned long long>(p999_us),
                static_cast<unsigned long long>(max_us),
                static_cast<unsigned long long>(read_p99_us),
                static_cast<unsigned long long>(write_p99_us));
  out += buf;
  return out;
}

SloReport BuildSloReport(const std::vector<TraceEvent>& events,
                         const Machine& machine, const KvDeployment& d,
                         bool clients_done) {
  const TraceAnalysis analysis = AnalyzeTrace(events);
  SloReport r;
  r.sessions = d.clients.size();
  r.mismatches = KvMismatchTotal(machine, d);
  r.complete = clients_done;
  r.completed = analysis.requests_completed;
  r.retries = analysis.request_retries;
  r.mean_us = analysis.request_latency.mean_us();
  r.p50_us = analysis.request_latency.p50();
  r.p99_us = analysis.request_latency.p99();
  r.p999_us = analysis.request_latency.p999();
  r.max_us = analysis.request_latency.max_us();
  r.read_p99_us = analysis.request_read_latency.p99();
  r.write_p99_us = analysis.request_write_latency.p99();
  r.goodput_rps = analysis.RequestGoodputPerSec();
  if (analysis.last_request_done_us > analysis.first_request_us) {
    r.duration_s = static_cast<double>(analysis.last_request_done_us -
                                       analysis.first_request_us) /
                   1e6;
  }
  return r;
}

}  // namespace auragen::workload
