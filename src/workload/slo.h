// SLO reporting for the serving workload (DESIGN.md §15.3): folds the
// kRequestMark events a run produced into client-observed tail latency and
// goodput, and combines them with the deployment's correctness counters.

#ifndef AURAGEN_SRC_WORKLOAD_SLO_H_
#define AURAGEN_SRC_WORKLOAD_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/analysis.h"
#include "src/trace/trace.h"
#include "src/workload/kv_service.h"

namespace auragen::workload {

struct SloReport {
  // Correctness.
  uint64_t sessions = 0;
  uint64_t mismatches = 0;   // lost acked writes / bad read-your-own-writes
  bool complete = false;     // every session ran to completion

  // Client-observed latency (microseconds of simulated time).
  uint64_t completed = 0;    // requests with paired issue/completion marks
  uint64_t retries = 0;      // client resend/switchover events
  double mean_us = 0.0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  uint64_t max_us = 0;
  uint64_t read_p99_us = 0;
  uint64_t write_p99_us = 0;

  // Throughput over the marked interval.
  double goodput_rps = 0.0;
  double duration_s = 0.0;

  std::string ToString() const;
};

// Builds the report from a finished run's trace events and deployment.
// `complete` also requires KvClientsDone to have held when the caller
// stopped the machine; pass it explicitly since the machine may have been
// stopped on a timeout.
SloReport BuildSloReport(const std::vector<TraceEvent>& events,
                         const Machine& machine, const KvDeployment& d,
                         bool clients_done);

}  // namespace auragen::workload

#endif  // AURAGEN_SRC_WORKLOAD_SLO_H_
