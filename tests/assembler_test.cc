// Unit tests for the two-pass assembler.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/avm/cpu.h"

namespace auragen {
namespace {

Instr DecodeAt(const Executable& exe, uint32_t index) {
  return DecodeInstr(exe.image.data() + index * kAvmInstrBytes);
}

TEST(Assembler, BasicInstructions) {
  AsmOutput out = Assemble("li r1, 42\nmov r2, r1\nhalt\n");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.exe.image.size(), 3 * kAvmInstrBytes);
  Instr li = DecodeAt(out.exe, 0);
  EXPECT_EQ(li.op, Op::kLi);
  EXPECT_EQ(li.ra, 1);
  EXPECT_EQ(li.imm, 42u);
  EXPECT_EQ(DecodeAt(out.exe, 1).op, Op::kMov);
  EXPECT_EQ(DecodeAt(out.exe, 2).op, Op::kHalt);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  AsmOutput out = Assemble(R"(
start:
    jmp end
mid:
    nop
end:
    jmp mid
)");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(DecodeAt(out.exe, 0).imm, 2 * kAvmInstrBytes);  // end
  EXPECT_EQ(DecodeAt(out.exe, 2).imm, 1 * kAvmInstrBytes);  // mid
}

TEST(Assembler, EntryIsStartLabel) {
  AsmOutput out = Assemble("nop\nstart:\nhalt\n");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.exe.entry, kAvmInstrBytes);
}

TEST(Assembler, DataDirectives) {
  AsmOutput out = Assemble(R"(
    li r1, bytes
    halt
.data
words: .word 1, 0x10, -1
bytes: .byte 9, 10
text: .asciz "hi"
gap: .space 4
)");
  ASSERT_TRUE(out.ok) << out.error;
  // Data begins 8-aligned after 2 instructions.
  uint32_t data_base = 16;
  const Bytes& img = out.exe.image;
  ASSERT_GE(img.size(), data_base + 12 + 2 + 3 + 4);
  EXPECT_EQ(img[data_base], 1);
  EXPECT_EQ(img[data_base + 4], 0x10);
  EXPECT_EQ(img[data_base + 8], 0xff);  // -1 little-endian
  EXPECT_EQ(img[data_base + 12], 9);
  EXPECT_EQ(img[data_base + 13], 10);
  EXPECT_EQ(img[data_base + 14], 'h');
  EXPECT_EQ(img[data_base + 16], '\0');
  EXPECT_EQ(DecodeAt(out.exe, 0).imm, data_base + 12);  // bytes label
}

TEST(Assembler, RegistersAndAliases) {
  AsmOutput out = Assemble("mov sp, lr\n");
  ASSERT_TRUE(out.ok) << out.error;
  Instr in = DecodeAt(out.exe, 0);
  EXPECT_EQ(in.ra, kSpReg);
  EXPECT_EQ(in.rb, kLrReg);
}

TEST(Assembler, CharLiteralsAndEscapes) {
  AsmOutput out = Assemble("li r1, 'A'\nli r2, '\\n'\n");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(DecodeAt(out.exe, 0).imm, 'A');
  EXPECT_EQ(DecodeAt(out.exe, 1).imm, '\n');
}

TEST(Assembler, SyscallNames) {
  AsmOutput out = Assemble("sys write\nsys 17\n");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(DecodeAt(out.exe, 0).imm, static_cast<uint32_t>(Sys::kWrite));
  EXPECT_EQ(DecodeAt(out.exe, 1).imm, 17u);
}

TEST(Assembler, CommentsAndBlankLines) {
  AsmOutput out = Assemble(R"(
; full comment
    nop   ; trailing
# hash comment

    halt
)");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.exe.image.size(), 2 * kAvmInstrBytes);
}

TEST(Assembler, StringsMayContainCommentChars) {
  AsmOutput out = Assemble(".data\nmsg: .ascii \"a;b#c\"\n");
  ASSERT_TRUE(out.ok) << out.error;
  std::string s(out.exe.image.begin(), out.exe.image.end());
  EXPECT_NE(s.find("a;b#c"), std::string::npos);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  AsmOutput out = Assemble("nop\nbogus r1\n");
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("line 2"), std::string::npos);
  EXPECT_NE(out.error.find("bogus"), std::string::npos);
}

TEST(Assembler, UndefinedLabelFails) {
  AsmOutput out = Assemble("jmp nowhere\n");
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("undefined label"), std::string::npos);
}

TEST(Assembler, WrongOperandCountFails) {
  EXPECT_FALSE(Assemble("add r1, r2\n").ok);
  EXPECT_FALSE(Assemble("li r1\n").ok);
  EXPECT_FALSE(Assemble("jr 5\n").ok);
}

TEST(Assembler, PseudoExpansionSizesMatch) {
  // push/pop are 2 instructions; labels after them must account for that.
  AsmOutput out = Assemble(R"(
    push r1
after:
    halt
)");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.exe.image.size(), 3 * kAvmInstrBytes);
  // `after` = 2 instructions in.
  AsmOutput ref = Assemble("push r1\nafter:\njmp after\n");
  ASSERT_TRUE(ref.ok);
  EXPECT_EQ(DecodeAt(ref.exe, 2).imm, 2 * kAvmInstrBytes);
}

TEST(Assembler, ExitPseudo) {
  AsmOutput out = Assemble("exit 3\n");
  ASSERT_TRUE(out.ok) << out.error;
  Instr li = DecodeAt(out.exe, 0);
  EXPECT_EQ(li.op, Op::kLi);
  EXPECT_EQ(li.ra, 1);
  EXPECT_EQ(li.imm, 3u);
  EXPECT_EQ(DecodeAt(out.exe, 1).op, Op::kSys);
  EXPECT_EQ(DecodeAt(out.exe, 1).imm, static_cast<uint32_t>(Sys::kExit));
}

TEST(Assembler, RejectsOversizedImages) {
  std::string big = ".data\nblob: .space 70000\n";
  EXPECT_FALSE(Assemble(big).ok);
}

TEST(Executable, PageContentZeroPads) {
  AsmOutput out = Assemble("halt\n");
  ASSERT_TRUE(out.ok);
  Bytes page0 = out.exe.PageContent(0);
  EXPECT_EQ(page0.size(), kAvmPageBytes);
  EXPECT_EQ(page0[0], static_cast<uint8_t>(Op::kHalt));
  EXPECT_EQ(page0[kAvmPageBytes - 1], 0);
  EXPECT_EQ(out.exe.NumPages(), 1u);
}

TEST(Executable, SerializationRoundTrip) {
  Executable exe = MustAssemble("start:\n  li r1, 9\n  halt\n");
  ByteWriter w;
  exe.Serialize(w);
  ByteReader r(w.bytes());
  Executable back = Executable::Deserialize(r);
  EXPECT_EQ(back.image, exe.image);
  EXPECT_EQ(back.entry, exe.entry);
}

}  // namespace
}  // namespace auragen
