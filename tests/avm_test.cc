// Unit tests for the AVM: memory residency/dirty tracking, interpreter
// semantics, fault behaviour, and the state-capture properties the sync
// protocol depends on.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/avm/cpu.h"
#include "src/avm/memory.h"
#include "src/kernel/avm_body.h"

namespace auragen {
namespace {

TEST(GuestMemory, FaultsOnNonResident) {
  GuestMemory mem;
  uint8_t v = 0;
  EXPECT_EQ(mem.Read8(100, &v), GuestMemory::Access::kFault);
  EXPECT_EQ(mem.fault_page(), 0u);
  mem.MaterializeZero(0, /*dirty=*/false);
  EXPECT_EQ(mem.Read8(100, &v), GuestMemory::Access::kOk);
  EXPECT_EQ(v, 0);
}

TEST(GuestMemory, WriteSetsDirty) {
  GuestMemory mem;
  mem.MaterializeZero(2, false);
  EXPECT_FALSE(mem.Dirty(2));
  EXPECT_EQ(mem.Write32(2 * kAvmPageBytes + 4, 0xdead), GuestMemory::Access::kOk);
  EXPECT_TRUE(mem.Dirty(2));
  EXPECT_EQ(mem.DirtyPages(), (std::vector<PageNum>{2}));
  mem.ClearDirty(2);
  EXPECT_FALSE(mem.Dirty(2));
}

TEST(GuestMemory, CrossPageAccess) {
  GuestMemory mem;
  mem.MaterializeZero(0, false);
  // A 32-bit write straddling pages 0 and 1 faults until page 1 exists.
  uint32_t addr = kAvmPageBytes - 2;
  EXPECT_EQ(mem.Write32(addr, 0x11223344), GuestMemory::Access::kFault);
  EXPECT_EQ(mem.fault_page(), 1u);
  mem.MaterializeZero(1, false);
  EXPECT_EQ(mem.Write32(addr, 0x11223344), GuestMemory::Access::kOk);
  uint32_t v = 0;
  EXPECT_EQ(mem.Read32(addr, &v), GuestMemory::Access::kOk);
  EXPECT_EQ(v, 0x11223344u);
  EXPECT_TRUE(mem.Dirty(0));
  EXPECT_TRUE(mem.Dirty(1));
}

TEST(GuestMemory, OutOfRange) {
  GuestMemory mem;
  uint8_t v;
  EXPECT_EQ(mem.Read8(kAvmMemBytes, &v), GuestMemory::Access::kOutOfRange);
  EXPECT_EQ(mem.Write32(kAvmMemBytes - 2, 1), GuestMemory::Access::kOutOfRange);
}

TEST(GuestMemory, EvictAllDropsEverything) {
  GuestMemory mem;
  mem.InstallPageDirty(3, Bytes(kAvmPageBytes, 7));
  EXPECT_EQ(mem.resident_count(), 1u);
  mem.EvictAll();
  EXPECT_EQ(mem.resident_count(), 0u);
  EXPECT_TRUE(mem.DirtyPages().empty());
  uint8_t v;
  EXPECT_EQ(mem.Read8(3 * kAvmPageBytes, &v), GuestMemory::Access::kFault);
}

TEST(GuestMemory, ExtractInstallRoundTrip) {
  GuestMemory mem;
  Bytes content(kAvmPageBytes);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i);
  }
  mem.InstallPage(9, content);
  EXPECT_FALSE(mem.Dirty(9));
  EXPECT_EQ(mem.ExtractPage(9), content);
}

// --- interpreter ---

CpuContext RunProgram(const std::string& src, GuestMemory* mem_out = nullptr,
                      int max_steps = 100000) {
  Executable exe = MustAssemble(src);
  AvmBody body(exe);
  CpuContext ctx = body.context();
  GuestMemory& mem = body.memory();
  for (int i = 0; i < max_steps; ++i) {
    StepResult r = Step(ctx, mem);
    if (r.kind == StepKind::kHalt) {
      if (mem_out != nullptr) {
        *mem_out = mem;
      }
      return ctx;
    }
    if (r.kind == StepKind::kPageFault) {
      mem.MaterializeZero(r.fault_page, false);
      continue;
    }
    EXPECT_EQ(r.kind, StepKind::kOk) << "unexpected trap at step " << i;
    if (r.kind != StepKind::kOk) {
      break;
    }
  }
  return ctx;
}

TEST(Cpu, Arithmetic) {
  CpuContext ctx = RunProgram(R"(
    li r1, 10
    li r2, 3
    add r3, r1, r2    ; 13
    sub r4, r1, r2    ; 7
    mul r5, r1, r2    ; 30
    div r6, r1, r2    ; 3
    mod r7, r1, r2    ; 1
    halt
)");
  EXPECT_EQ(ctx.regs[3], 13u);
  EXPECT_EQ(ctx.regs[4], 7u);
  EXPECT_EQ(ctx.regs[5], 30u);
  EXPECT_EQ(ctx.regs[6], 3u);
  EXPECT_EQ(ctx.regs[7], 1u);
}

TEST(Cpu, SignedComparisonsAndShifts) {
  CpuContext ctx = RunProgram(R"(
    li r1, -5
    li r2, 3
    slt r3, r1, r2    ; 1 (signed)
    sltu r4, r1, r2   ; 0 (unsigned: 0xfffffffb > 3)
    li r5, 1
    li r6, 4
    shl r7, r5, r6    ; 16
    shr r8, r7, r6    ; 1
    halt
)");
  EXPECT_EQ(ctx.regs[3], 1u);
  EXPECT_EQ(ctx.regs[4], 0u);
  EXPECT_EQ(ctx.regs[7], 16u);
  EXPECT_EQ(ctx.regs[8], 1u);
}

TEST(Cpu, LoadsStoresAndData) {
  GuestMemory mem;
  CpuContext ctx = RunProgram(R"(
start:
    li r1, value
    ld r2, r1, 0
    addi r2, r2, 1
    st r2, r1, 0
    ldb r3, r1, 0
    halt
.data
value: .word 41
)", &mem);
  EXPECT_EQ(ctx.regs[2], 42u);
  EXPECT_EQ(ctx.regs[3], 42u);
}

TEST(Cpu, CallAndReturn) {
  CpuContext ctx = RunProgram(R"(
start:
    li r1, 5
    call double
    mov r4, r0
    halt
double:
    add r0, r1, r1
    ret
)");
  EXPECT_EQ(ctx.regs[4], 10u);
}

TEST(Cpu, PushPop) {
  CpuContext ctx = RunProgram(R"(
start:
    li r1, 111
    li r2, 222
    push r1
    push r2
    pop r3
    pop r4
    halt
)");
  EXPECT_EQ(ctx.regs[3], 222u);
  EXPECT_EQ(ctx.regs[4], 111u);
}

TEST(Cpu, DivideByZeroFaults) {
  Executable exe = MustAssemble(R"(
    li r1, 1
    li r2, 0
    div r3, r1, r2
    halt
)");
  AvmBody body(exe);
  CpuContext ctx = body.context();
  Step(ctx, body.memory());
  Step(ctx, body.memory());
  StepResult r = Step(ctx, body.memory());
  EXPECT_EQ(r.kind, StepKind::kFault);
  EXPECT_STREQ(r.fault_reason, "divide by zero");
}

TEST(Cpu, IllegalOpcodeFaults) {
  GuestMemory mem;
  mem.MaterializeZero(0, false);
  mem.Write8(0, 0xee);  // not a valid opcode
  CpuContext ctx;
  StepResult r = Step(ctx, mem);
  EXPECT_EQ(r.kind, StepKind::kFault);
}

TEST(Cpu, SyscallTrapAdvancesPc) {
  Executable exe = MustAssemble("sys yield\nhalt\n");
  AvmBody body(exe);
  CpuContext ctx = body.context();
  StepResult r = Step(ctx, body.memory());
  EXPECT_EQ(r.kind, StepKind::kSyscall);
  EXPECT_EQ(r.sys_num, static_cast<uint32_t>(Sys::kYield));
  EXPECT_EQ(ctx.pc, kAvmInstrBytes);
}

TEST(Cpu, ContextSerializationRoundTrip) {
  CpuContext ctx;
  for (uint32_t i = 0; i < kAvmNumRegs; ++i) {
    ctx.regs[i] = i * 1000 + 7;
  }
  ctx.pc = 0x1234;
  ByteWriter w;
  ctx.Serialize(w);
  ByteReader r(w.bytes());
  CpuContext back = CpuContext::Deserialize(r);
  EXPECT_TRUE(ctx == back);
}

TEST(Cpu, PageFaultHasNoSideEffects) {
  // A store to a non-resident page leaves pc and registers untouched.
  Executable exe = MustAssemble(R"(
    li r1, 7
    li r2, 0xC000
    st r1, r2, 0
    halt
)");
  AvmBody body(exe);
  CpuContext ctx = body.context();
  GuestMemory& mem = body.memory();
  Step(ctx, mem);
  Step(ctx, mem);
  uint32_t pc_before = ctx.pc;
  StepResult r = Step(ctx, mem);
  ASSERT_EQ(r.kind, StepKind::kPageFault);
  EXPECT_EQ(ctx.pc, pc_before);
  mem.MaterializeZero(r.fault_page, false);
  EXPECT_EQ(Step(ctx, mem).kind, StepKind::kOk);  // re-executes cleanly
  uint32_t v;
  mem.Read32(0xC000, &v);
  EXPECT_EQ(v, 7u);
}

TEST(AvmBody, ForkClonesMemoryAndDiffersR0) {
  Executable exe = MustAssemble(R"(
    li r5, 99
    li r2, 0x8000
    st r5, r2, 0
    sys fork
    halt
)");
  AvmBody parent(exe);
  BodyRun run = parent.Run(1000);
  while (run.kind == BodyRun::Kind::kPageFault) {
    parent.InstallPage(run.fault_page, /*known=*/false, {});
    run = parent.Run(1000);
  }
  ASSERT_EQ(run.kind, BodyRun::Kind::kSyscall);
  ASSERT_EQ(run.request.num, Sys::kFork);
  std::unique_ptr<AvmBody> child = parent.CloneForFork(1234);
  EXPECT_EQ(parent.context().regs[0], 1234u);
  EXPECT_EQ(child->context().regs[0], 0u);
  uint32_t v = 0;
  child->memory().Read32(0x8000, &v);
  EXPECT_EQ(v, 99u);
  // Child pages are all dirty so its first sync ships a full account.
  EXPECT_FALSE(child->memory().DirtyPages().empty());
}

TEST(AvmBody, SignalSpillAndReturn) {
  Executable exe = MustAssemble(R"(
    li r1, 5
    li r2, 6
    halt
)");
  AvmBody body(exe);
  BodyRun run = body.Run(1);  // executed li r1,5
  ASSERT_EQ(run.kind, BodyRun::Kind::kBudget);
  CpuContext before = body.context();
  ASSERT_TRUE(body.EnterSignal(0x40, 14));
  EXPECT_EQ(body.context().pc, 0x40u);
  EXPECT_EQ(body.context().regs[1], 14u);
  body.LeaveSignal();
  EXPECT_TRUE(body.context() == before);
}

TEST(AvmBody, CaptureRewindsBlockedSyscall) {
  Executable exe = MustAssemble(R"(
    li r1, 3
    sys read
    halt
)");
  AvmBody body(exe);
  BodyRun run = body.Run(100);
  ASSERT_EQ(run.kind, BodyRun::Kind::kSyscall);
  // Blocked in read: capture rewinds to the SYS instruction.
  Bytes ctx_blob = body.CaptureContext();
  ByteReader r(ctx_blob);
  CpuContext captured = CpuContext::Deserialize(r);
  EXPECT_EQ(captured.pc, kAvmInstrBytes);  // the SYS, not past it

  // A restored body re-issues the identical read.
  AvmBody restored(exe);
  restored.RestoreContext(ctx_blob);
  BodyRun again = restored.Run(100);
  ASSERT_EQ(again.kind, BodyRun::Kind::kSyscall);
  EXPECT_EQ(again.request.num, Sys::kRead);
  EXPECT_EQ(again.request.a, 3u);
}

TEST(Disassemble, CoversCommonOps) {
  Instr in;
  in.op = Op::kAddi;
  in.ra = 1;
  in.rb = 2;
  in.imm = 7;
  EXPECT_EQ(Disassemble(in), "addi r1, r2, 7");
  in.op = Op::kSys;
  in.imm = 4;
  EXPECT_EQ(Disassemble(in), "sys 4");
}

}  // namespace
}  // namespace auragen
