// Unit tests for src/base: ids, codecs, Result, deterministic RNG.

#include <gtest/gtest.h>

#include <set>

#include "src/base/codec.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace auragen {
namespace {

TEST(Gpid, EncodesClusterAndCounter) {
  Gpid g = Gpid::Make(7, 123456);
  EXPECT_EQ(g.origin_cluster(), 7u);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(kNoGpid.valid());
  EXPECT_EQ(Gpid::Make(7, 123456), g);
  EXPECT_NE(Gpid::Make(8, 123456), g);
  EXPECT_LT(Gpid::Make(7, 1), Gpid::Make(7, 2));
}

TEST(Gpid, SurvivesLargeCounters) {
  Gpid g = Gpid::Make(31, 0xffffffffffffull);
  EXPECT_EQ(g.origin_cluster(), 31u);
}

TEST(Codec, RoundTripsScalars) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I32(-42);
  w.I64(-1234567890123ll);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.I64(), -1234567890123ll);
  EXPECT_TRUE(r.done());
}

TEST(Codec, RoundTripsBlobsAndStrings) {
  ByteWriter w;
  w.Blob(Bytes{1, 2, 3});
  w.Str("auros");
  w.Blob(Bytes{});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.Blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.Str(), "auros");
  EXPECT_TRUE(r.Blob().empty());
}

TEST(Codec, ShortReadPanics) {
  ByteWriter w;
  w.U16(7);
  ByteReader r(w.bytes());
  r.U16();
  EXPECT_DEATH(r.U32(), "short message");
}

TEST(Codec, Fnv1aStableAndSensitive) {
  Bytes a{1, 2, 3};
  Bytes b{1, 2, 4};
  EXPECT_EQ(Fnv1a(a), Fnv1a(a));
  EXPECT_NE(Fnv1a(a), Fnv1a(b));
  EXPECT_NE(Fnv1a(a), Fnv1a(Bytes{}));
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.error(), Errc::kOk);

  Result<int> bad(Errc::kNoEntry);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::kNoEntry);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = OkResult();
  EXPECT_TRUE(ok.ok());
  Result<void> bad(Errc::kIo);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::kIo);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(54321);
  EXPECT_NE(Rng(12345).Next(), c.Next());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.Range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
  EXPECT_EQ(rng.Range(9, 9), 9u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(99);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  EXPECT_NE(a.Next(), b.Next());
}

}  // namespace
}  // namespace auragen
