// Unit tests for src/base: ids, codecs, Result, deterministic RNG.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>

#include "src/base/codec.h"
#include "src/base/task.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace auragen {
namespace {

TEST(Gpid, EncodesClusterAndCounter) {
  Gpid g = Gpid::Make(7, 123456);
  EXPECT_EQ(g.origin_cluster(), 7u);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(kNoGpid.valid());
  EXPECT_EQ(Gpid::Make(7, 123456), g);
  EXPECT_NE(Gpid::Make(8, 123456), g);
  EXPECT_LT(Gpid::Make(7, 1), Gpid::Make(7, 2));
}

TEST(Gpid, SurvivesLargeCounters) {
  Gpid g = Gpid::Make(31, 0xffffffffffffull);
  EXPECT_EQ(g.origin_cluster(), 31u);
}

TEST(Codec, RoundTripsScalars) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I32(-42);
  w.I64(-1234567890123ll);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.I64(), -1234567890123ll);
  EXPECT_TRUE(r.done());
}

TEST(Codec, RoundTripsBlobsAndStrings) {
  ByteWriter w;
  w.Blob(Bytes{1, 2, 3});
  w.Str("auros");
  w.Blob(Bytes{});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.Blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.Str(), "auros");
  EXPECT_TRUE(r.Blob().empty());
}

TEST(Codec, ShortReadPanics) {
  ByteWriter w;
  w.U16(7);
  ByteReader r(w.bytes());
  r.U16();
  EXPECT_DEATH(r.U32(), "short message");
}

TEST(Codec, Fnv1aStableAndSensitive) {
  Bytes a{1, 2, 3};
  Bytes b{1, 2, 4};
  EXPECT_EQ(Fnv1a(a), Fnv1a(a));
  EXPECT_NE(Fnv1a(a), Fnv1a(b));
  EXPECT_NE(Fnv1a(a), Fnv1a(Bytes{}));
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.error(), Errc::kOk);

  Result<int> bad(Errc::kNoEntry);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::kNoEntry);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = OkResult();
  EXPECT_TRUE(ok.ok());
  Result<void> bad(Errc::kIo);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::kIo);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(54321);
  EXPECT_NE(Rng(12345).Next(), c.Next());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.Range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
  EXPECT_EQ(rng.Range(9, 9), 9u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(99);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(ByteView, ViewsWithoutCopying) {
  Bytes owned{1, 2, 3, 4, 5};
  ByteView v(owned);  // implicit from Bytes
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.data(), owned.data());
  EXPECT_EQ(v[2], 3);
  ByteView sub = v.subview(1, 3);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.data(), owned.data() + 1);
  EXPECT_EQ(sub.ToBytes(), (Bytes{2, 3, 4}));
  EXPECT_TRUE(v == ByteView(owned));
  EXPECT_FALSE(v == sub);
}

TEST(ByteView, ReaderBlobViewIsZeroCopy) {
  ByteWriter w;
  w.U32(7);
  w.Blob(Bytes{9, 8, 7});
  Bytes encoded = w.Take();
  ByteReader r(encoded);
  EXPECT_EQ(r.U32(), 7u);
  ByteView body = r.BlobView();
  EXPECT_EQ(body.size(), 3u);
  EXPECT_GE(body.data(), encoded.data());
  EXPECT_LT(body.data(), encoded.data() + encoded.size());
  EXPECT_EQ(body.ToBytes(), (Bytes{9, 8, 7}));
}

TEST(BufferPool, RecyclesCapacityThroughPayloads) {
  BufferPool& pool = BufferPool::Get();
  uint64_t reuses0 = pool.reuses();
  const uint8_t* data0;
  {
    Bytes b = pool.Acquire();
    b.assign(1000, 42);
    data0 = b.data();
    PayloadPtr p = MakePayload(std::move(b));
    EXPECT_EQ(p->size(), 1000u);
    // Dropping the last reference returns the buffer to the pool.
  }
  Bytes again = pool.Acquire();
  EXPECT_EQ(pool.reuses(), reuses0 + 1);
  EXPECT_TRUE(again.empty());          // cleared, but capacity retained
  EXPECT_GE(again.capacity(), 1000u);
  EXPECT_EQ(again.data(), data0);      // the very same allocation came back
  pool.Release(std::move(again));
}

TEST(BufferPool, WriterDrawsFromThePool) {
  {
    ByteWriter warm;
    warm.Blob(Bytes(2000, 1));
    PayloadPtr p = MakePayload(warm.Take());
  }
  BufferPool& pool = BufferPool::Get();
  uint64_t reuses0 = pool.reuses();
  ByteWriter w;  // default ctor acquires from the pool
  EXPECT_EQ(pool.reuses(), reuses0 + 1);
  w.U32(5);
  Bytes out = w.Take();
  EXPECT_EQ(out.size(), 4u);
}

TEST(Task, InvokesInlineAndHeapCallables) {
  int hits = 0;
  Task small([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(small));
  small();
  EXPECT_EQ(hits, 1);

  // Force the heap path with a capture larger than the inline buffer.
  struct Big {
    unsigned char pad[Task::kInlineBytes + 32] = {};
    int* counter = nullptr;
  };
  Big big;
  big.counter = &hits;
  Task large([big] { ++*big.counter; });
  large();
  EXPECT_EQ(hits, 2);
}

TEST(Task, MoveTransfersOwnershipExactlyOnce) {
  auto counted = std::make_shared<int>(0);
  Task a([counted] { ++*counted; });
  EXPECT_EQ(counted.use_count(), 2);  // one in the task
  Task b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(counted.use_count(), 2);  // still exactly one task-held copy
  b();
  EXPECT_EQ(*counted, 1);
  Task c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counted, 2);
  EXPECT_DEATH(b(), "empty MoveFn");
}

}  // namespace
}  // namespace auragen
