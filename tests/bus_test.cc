// Unit tests for the intercluster bus: the §5.1 atomicity guarantees, the
// serialization property, dual-line failover, and the deliberate-violation
// hooks used by the negative recovery tests.

#include <gtest/gtest.h>

#include <vector>

#include "src/bus/intercluster_bus.h"
#include "src/bus/topology.h"
#include "src/sim/engine.h"
#include "src/sim/sharded_engine.h"

namespace auragen {
namespace {

struct Recorder : BusEndpoint {
  std::vector<Frame> frames;
  Engine* engine = nullptr;
  std::vector<SimTime> times;
  void OnFrame(const Frame& frame) override {
    frames.push_back(frame);
    if (engine != nullptr) {
      times.push_back(engine->Now());
    }
  }
};

struct BusFixture {
  Engine engine;
  BusConfig config;
  InterclusterBus bus{engine, config, 4};
  Recorder endpoints[4];

  BusFixture() {
    for (ClusterId c = 0; c < 4; ++c) {
      endpoints[c].engine = &engine;
      bus.AttachEndpoint(c, &endpoints[c]);
    }
  }
};

TEST(Bus, MulticastReachesExactlyTheTargets) {
  BusFixture f;
  f.bus.Transmit(0, MaskOf(1) | MaskOf(3), Bytes{42});
  f.engine.Run();
  EXPECT_TRUE(f.endpoints[0].frames.empty());
  ASSERT_EQ(f.endpoints[1].frames.size(), 1u);
  EXPECT_TRUE(f.endpoints[2].frames.empty());
  ASSERT_EQ(f.endpoints[3].frames.size(), 1u);
  EXPECT_EQ(*f.endpoints[1].frames[0].payload, Bytes{42});
  EXPECT_EQ(f.bus.stats().frames_sent, 1u);
  EXPECT_EQ(f.bus.stats().deliveries, 2u);
}

TEST(Bus, SelfDeliveryAfterTransmission) {
  BusFixture f;
  f.bus.Transmit(2, MaskOf(2), Bytes{7});
  f.engine.Run();
  ASSERT_EQ(f.endpoints[2].frames.size(), 1u);
  EXPECT_GT(f.engine.Now(), 0u);  // delivery cost simulated time
}

TEST(Bus, NoInterleaving) {
  // §5.1 guarantee 2: if A is accepted before B, A lands everywhere before
  // B lands anywhere. All four endpoints must see the same total order.
  BusFixture f;
  for (uint8_t i = 0; i < 10; ++i) {
    f.bus.Transmit(i % 4, MaskOf(0) | MaskOf(1) | MaskOf(2) | MaskOf(3), Bytes{i});
  }
  f.engine.Run();
  for (ClusterId c = 0; c < 4; ++c) {
    ASSERT_EQ(f.endpoints[c].frames.size(), 10u);
    for (uint8_t i = 0; i < 10; ++i) {
      EXPECT_EQ((*f.endpoints[c].frames[i].payload)[0], i) << "cluster " << c;
    }
  }
}

TEST(Bus, AllDestinationsSameInstant) {
  BusFixture f;
  f.bus.Transmit(0, MaskOf(1) | MaskOf(2) | MaskOf(3), Bytes{1});
  f.engine.Run();
  ASSERT_EQ(f.endpoints[1].times.size(), 1u);
  EXPECT_EQ(f.endpoints[1].times[0], f.endpoints[2].times[0]);
  EXPECT_EQ(f.endpoints[2].times[0], f.endpoints[3].times[0]);
}

TEST(Bus, DetachedEndpointMissesFrames) {
  BusFixture f;
  f.bus.DetachEndpoint(1);
  f.bus.Transmit(0, MaskOf(1) | MaskOf(2), Bytes{9});
  f.engine.Run();
  EXPECT_TRUE(f.endpoints[1].frames.empty());
  EXPECT_EQ(f.endpoints[2].frames.size(), 1u);
}

TEST(Bus, TransmissionTimeScalesWithSize) {
  BusFixture f;
  f.bus.Transmit(0, MaskOf(1), Bytes(16, 0));
  f.engine.Run();
  SimTime small = f.endpoints[1].times[0];

  BusFixture g;
  g.bus.Transmit(0, MaskOf(1), Bytes(4096, 0));
  g.engine.Run();
  SimTime large = g.endpoints[1].times[0];
  EXPECT_GT(large, small);
}

TEST(Bus, LineFailoverCostsTimeButDelivers) {
  BusFixture f;
  f.bus.Transmit(0, MaskOf(1), Bytes{1});
  f.engine.Run();
  SimTime normal = f.endpoints[1].times[0];

  BusFixture g;
  g.bus.FailLine(0);
  g.bus.Transmit(0, MaskOf(1), Bytes{1});
  g.engine.Run();
  ASSERT_EQ(g.endpoints[1].frames.size(), 1u);
  EXPECT_GT(g.endpoints[1].times[0], normal);
  EXPECT_EQ(g.bus.stats().failovers, 1u);
}

TEST(Bus, BothLinesDeadQueuesUntilRestore) {
  BusFixture f;
  f.bus.FailLine(0);
  f.bus.FailLine(1);
  f.bus.Transmit(0, MaskOf(1), Bytes{1});
  f.engine.Run();
  EXPECT_TRUE(f.endpoints[1].frames.empty());
  f.bus.RestoreLine(1);
  f.engine.Run();
  EXPECT_EQ(f.endpoints[1].frames.size(), 1u);
}

TEST(Bus, RestoreRestartsWhenOnlyUrgentFramesAreQueued) {
  // Regression: RestoreLine only checked the regular lane, so heartbeats
  // queued urgent during a dual-line outage stayed stranded forever after
  // the restore — every peer then saw heartbeat silence and declared false
  // crashes. The urgent lane must restart the pump too.
  BusFixture f;
  f.bus.FailLine(0);
  f.bus.FailLine(1);
  f.bus.Transmit(0, MaskOf(1), Bytes{7}, /*urgent=*/true);
  f.engine.Run();
  EXPECT_TRUE(f.endpoints[1].frames.empty());
  f.bus.RestoreLine(0);
  f.engine.Run();
  ASSERT_EQ(f.endpoints[1].frames.size(), 1u);
  EXPECT_EQ((*f.endpoints[1].frames[0].payload)[0], 7);
}

TEST(Bus, HeartbeatsQueuedUnderDualLineOutageDrainUrgentFirst) {
  // §7.10 liveness: after a dual-line outage ends, the queued heartbeats
  // win arbitration over the regular backlog that piled up alongside them.
  BusFixture f;
  f.bus.FailLine(0);
  f.bus.FailLine(1);
  f.bus.Transmit(0, MaskOf(1), Bytes{1});  // regular backlog, queued first
  f.bus.Transmit(0, MaskOf(1), Bytes{2});
  f.bus.Transmit(2, MaskOf(1), Bytes{99}, /*urgent=*/true);  // heartbeat
  f.engine.Run();
  EXPECT_TRUE(f.endpoints[1].frames.empty());
  f.bus.RestoreLine(1);
  f.engine.Run();
  ASSERT_EQ(f.endpoints[1].frames.size(), 3u);
  EXPECT_EQ((*f.endpoints[1].frames[0].payload)[0], 99);
  EXPECT_EQ((*f.endpoints[1].frames[1].payload)[0], 1);
  EXPECT_EQ((*f.endpoints[1].frames[2].payload)[0], 2);
}

TEST(Bus, InFlightFrameAbortedByLineFailureRetriesOnSurvivor) {
  // Failing the line mid-transmission kills the frame on the wire: it must
  // go back to the head of its lane and retry on the surviving line, with
  // only the successful attempt charged to the stats.
  BusFixture f;
  f.bus.Transmit(0, MaskOf(1), Bytes(16, 0));
  const SimTime frame_time = f.config.FrameTime(16 + Frame::kHeaderBytes);
  f.engine.Schedule(frame_time / 2, [&] { f.bus.FailLine(0); });
  f.engine.Run();
  ASSERT_EQ(f.endpoints[1].frames.size(), 1u);
  EXPECT_EQ(f.bus.stats().frames_sent, 1u);
  EXPECT_EQ(f.bus.stats().failovers, 1u);
  EXPECT_EQ(f.bus.stats().busy_us, frame_time);  // aborted attempt not charged
  EXPECT_EQ(f.endpoints[1].times[0],
            frame_time / 2 + f.config.line_failover_timeout_us + frame_time);
}

TEST(Bus, DualLineDeathMidTransmitKeepsAccountingConsistent) {
  // Regression: when both lines died mid-transmission the frame had already
  // been popped with busy_us charged, leaving the stats claiming a send that
  // never happened and `transmitting_` stranded. Now nothing is charged
  // until a transmission completes, and the restore replays the frame.
  BusFixture f;
  f.bus.Transmit(0, MaskOf(1), Bytes(16, 0));
  const SimTime frame_time = f.config.FrameTime(16 + Frame::kHeaderBytes);
  f.engine.Schedule(1, [&] {
    f.bus.FailLine(0);
    f.bus.FailLine(1);
  });
  f.engine.Run();
  EXPECT_TRUE(f.endpoints[1].frames.empty());
  EXPECT_EQ(f.bus.stats().frames_sent, 0u);
  EXPECT_EQ(f.bus.stats().busy_us, 0u);
  EXPECT_EQ(f.bus.stats().failover_wait_us, 0u);
  f.bus.RestoreLine(0);
  f.engine.Run();
  ASSERT_EQ(f.endpoints[1].frames.size(), 1u);
  EXPECT_EQ(f.bus.stats().frames_sent, 1u);
  EXPECT_EQ(f.bus.stats().busy_us, frame_time);
  EXPECT_EQ(f.bus.stats().failovers, 0u);  // line 0 came back; no failover path
}

TEST(Bus, ShardedModeDeliversAcrossShardsWithPropagationLatency) {
  // ShardPlan layout: arbitration on shard 0, each cluster on shard 1+c.
  // Both hops (sender->bus, line->receiver) carry arbitration_us, which is
  // what licenses the cross-shard posts under the lookahead contract.
  ShardedEngineOptions seo;
  seo.num_shards = 5;
  seo.threads = 1;
  seo.lookahead_us = 2;
  ShardedEngine engine(seo);
  BusConfig config;
  InterclusterBus bus(engine, config, 4);
  Recorder endpoints[4];
  for (ClusterId c = 0; c < 4; ++c) {
    bus.AttachEndpoint(c, &endpoints[c]);
  }
  bus.Transmit(0, MaskOf(1) | MaskOf(3), Bytes{42});
  engine.Run(10'000);
  ASSERT_EQ(endpoints[1].frames.size(), 1u);
  ASSERT_EQ(endpoints[3].frames.size(), 1u);
  EXPECT_EQ(*endpoints[1].frames[0].payload, Bytes{42});
  EXPECT_EQ(bus.stats().frames_sent, 1u);
  EXPECT_EQ(bus.stats().deliveries, 2u);
}

TEST(Bus, InjectedDropViolatesAllOrNothing) {
  BusFixture f;
  f.bus.InjectAtomicityViolation(AtomicityViolation::kDropPerDestination, 0.5, 42);
  for (int i = 0; i < 50; ++i) {
    f.bus.Transmit(0, MaskOf(1) | MaskOf(2), Bytes{static_cast<uint8_t>(i)});
  }
  f.engine.Run();
  // With p=0.5 per destination, the two receivers must disagree somewhere.
  EXPECT_NE(f.endpoints[1].frames.size(), f.endpoints[2].frames.size());
}

TEST(Bus, InjectedInterleavingBreaksSameInstantDelivery) {
  BusFixture f;
  f.bus.InjectAtomicityViolation(AtomicityViolation::kInterleave, 1.0, 7);
  f.bus.Transmit(0, MaskOf(1) | MaskOf(2), Bytes{1});
  f.engine.Run();
  ASSERT_EQ(f.endpoints[1].frames.size(), 1u);
  ASSERT_EQ(f.endpoints[2].frames.size(), 1u);
  // Jittered deliveries rarely coincide; allow equality only if jitter drew
  // the same value twice — assert at least the mechanism engaged by checking
  // the pair over several frames.
  bool diverged = f.endpoints[1].times[0] != f.endpoints[2].times[0];
  for (int i = 0; !diverged && i < 10; ++i) {
    f.bus.Transmit(0, MaskOf(1) | MaskOf(2), Bytes{2});
    f.engine.Run();
    diverged = f.endpoints[1].times.back() != f.endpoints[2].times.back();
  }
  EXPECT_TRUE(diverged);
}

TEST(Bus, AllDestinationsShareOnePayloadBuffer) {
  // Zero-copy plane (DESIGN.md §13): the three delivery legs of one frame
  // must see the *same* payload buffer — delivery allocates nothing per
  // destination.
  BusFixture f;
  f.bus.Transmit(0, MaskOf(1) | MaskOf(2) | MaskOf(3), Bytes(100, 5));
  f.engine.Run();
  ASSERT_EQ(f.endpoints[1].frames.size(), 1u);
  ASSERT_EQ(f.endpoints[2].frames.size(), 1u);
  ASSERT_EQ(f.endpoints[3].frames.size(), 1u);
  const Bytes* p = f.endpoints[1].frames[0].payload.get();
  EXPECT_EQ(f.endpoints[2].frames[0].payload.get(), p);
  EXPECT_EQ(f.endpoints[3].frames[0].payload.get(), p);
}

TEST(Bus, InterleaveViolationStillSharesThePayload) {
  // The violation path schedules one jittered closure per destination; each
  // closure copies the Frame header but must share the payload buffer, so
  // allocation stays O(1) in the destination count.
  BusFixture f;
  f.bus.InjectAtomicityViolation(AtomicityViolation::kInterleave, 1.0, 11);
  f.bus.Transmit(0, MaskOf(1) | MaskOf(2) | MaskOf(3), Bytes(100, 9));
  f.engine.Run();
  ASSERT_EQ(f.endpoints[1].frames.size(), 1u);
  ASSERT_EQ(f.endpoints[2].frames.size(), 1u);
  ASSERT_EQ(f.endpoints[3].frames.size(), 1u);
  const Bytes* p = f.endpoints[1].frames[0].payload.get();
  EXPECT_EQ(f.endpoints[2].frames[0].payload.get(), p);
  EXPECT_EQ(f.endpoints[3].frames[0].payload.get(), p);
}

TEST(Bus, FailoverWaitAccountedSeparatelyFromBusyTime) {
  // §E6 accounting: the line is idle while the sender waits out the dead-
  // line timeout, so that wait must not inflate transmit-busy time.
  BusFixture f;
  f.bus.Transmit(0, MaskOf(1), Bytes(16, 0));
  f.engine.Run();
  SimTime frame_time = f.config.FrameTime(16 + Frame::kHeaderBytes);
  EXPECT_EQ(f.bus.stats().busy_us, frame_time);
  EXPECT_EQ(f.bus.stats().failover_wait_us, 0u);

  BusFixture g;
  g.bus.FailLine(0);
  g.bus.Transmit(0, MaskOf(1), Bytes(16, 0));
  g.engine.Run();
  // Same transmit-busy time as the healthy run; the timeout shows up only
  // in failover_wait_us (and in the delivery timestamp).
  EXPECT_EQ(g.bus.stats().busy_us, frame_time);
  EXPECT_EQ(g.bus.stats().failover_wait_us, g.config.line_failover_timeout_us);
  EXPECT_EQ(g.bus.stats().failovers, 1u);
  ASSERT_EQ(g.endpoints[1].times.size(), 1u);
  EXPECT_EQ(g.endpoints[1].times[0],
            f.endpoints[1].times[0] + g.config.line_failover_timeout_us);
}

TEST(Bus, RejectsBadClusterCounts) {
  Engine engine;
  // The raw bus now carries up to kMaxClusters (a fabric segment bus is the
  // one that holds the paper's 2..32 bound — Topology::Validate enforces it).
  EXPECT_DEATH(InterclusterBus(engine, BusConfig{}, 1), "2..256");
  EXPECT_DEATH(InterclusterBus(engine, BusConfig{}, 257), "2..256");
  InterclusterBus legal(engine, BusConfig{}, 33);  // no longer fatal
  EXPECT_EQ(legal.num_clusters(), 33u);
}

TEST(Bus, TopologyEnforcesPaperSegmentBound) {
  EXPECT_NE(Topology().WithSegment(33).Validate(), "");
  EXPECT_NE(Topology().WithSegment(1).Validate(), "");
  EXPECT_EQ(Topology().WithSegment(32).Validate(), "");
}

}  // namespace
}  // namespace auragen
