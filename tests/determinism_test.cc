// Direct test of DESIGN.md invariant 6: a run is a pure function of its
// configuration and seed — two machines given identical inputs produce
// bit-identical transcripts, metrics, and event counts, including through a
// crash and recovery. Every other equivalence test in the suite rests on
// this property.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

struct Observed {
  std::string tty;
  uint64_t messages_sent = 0;
  uint64_t deliveries = 0;
  uint64_t syncs = 0;
  uint64_t takeovers = 0;
  uint64_t suppressed = 0;
  SimTime end_time = 0;
  uint64_t events = 0;

  friend bool operator==(const Observed& a, const Observed& b) {
    return a.tty == b.tty && a.messages_sent == b.messages_sent &&
           a.deliveries == b.deliveries && a.syncs == b.syncs &&
           a.takeovers == b.takeovers && a.suppressed == b.suppressed &&
           a.end_time == b.end_time && a.events == b.events;
  }
};

Observed RunOnce(uint64_t seed, bool crash) {
  MachineOptions options;
  options.config.num_clusters = 3;
  options.seed = seed;
  Machine machine(options);
  machine.Boot();

  Executable ping = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r12, 30
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:dt"
buf: .word 0
)");
  Executable pong = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    li r3, 26
    mod r2, r2, r3
    li r3, 97
    add r2, r2, r3
    li r11, out
    stb r2, r11, 0
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r12, 30
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:dt"
buf: .word 0
out: .byte 0
)");
  Machine::UserSpawnOptions a;
  a.backup_cluster = 1;
  Machine::UserSpawnOptions b;
  b.backup_cluster = 0;
  b.with_tty = true;
  machine.SpawnUserProgram(0, ping, a);
  machine.SpawnUserProgram(2, pong, b);
  if (crash) {
    machine.CrashClusterAt(machine.engine().Now() + 1'000, 2);
  }
  EXPECT_TRUE(machine.RunUntilAllExited(300'000'000));
  machine.Settle();

  Observed o;
  o.tty = machine.TtyOutput(0);
  o.messages_sent = machine.metrics().messages_sent;
  o.deliveries = machine.metrics().deliveries_primary + machine.metrics().deliveries_backup +
                 machine.metrics().deliveries_count_only;
  o.syncs = machine.metrics().syncs;
  o.takeovers = machine.metrics().takeovers;
  o.suppressed = machine.metrics().sends_suppressed;
  o.end_time = machine.engine().Now();
  o.events = machine.engine().dispatched();
  return o;
}

TEST(Determinism, IdenticalRunsAreBitIdentical) {
  Observed first = RunOnce(1, false);
  Observed second = RunOnce(1, false);
  EXPECT_TRUE(first == second);
  EXPECT_FALSE(first.tty.empty());
}

TEST(Determinism, HoldsThroughCrashAndRecovery) {
  Observed first = RunOnce(1, true);
  Observed second = RunOnce(1, true);
  EXPECT_TRUE(first == second);
  EXPECT_GE(first.takeovers, 1u);
}

TEST(Determinism, CrashedRunMatchesCleanRunExternally) {
  Observed clean = RunOnce(1, false);
  Observed crashed = RunOnce(1, true);
  // Internal traces differ (takeovers, replay), external output must not.
  EXPECT_EQ(clean.tty, crashed.tty);
  EXPECT_NE(clean.events, crashed.events);
}

}  // namespace
}  // namespace auragen
