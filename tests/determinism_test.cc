// Direct test of DESIGN.md invariant 6: a run is a pure function of its
// configuration and seed — two machines given identical inputs produce
// bit-identical transcripts, metrics, and event counts, including through a
// crash and recovery. Every other equivalence test in the suite rests on
// this property.
//
// The check runs through the trace subsystem: each run records a full event
// trace (engine dispatches included) whose FNV digest must match across
// identical-seed runs, and FindFirstDivergence pinpoints the first
// disagreeing event when it does not.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

struct Observed {
  std::string tty;
  uint64_t messages_sent = 0;
  uint64_t deliveries = 0;
  uint64_t syncs = 0;
  uint64_t takeovers = 0;
  uint64_t suppressed = 0;
  SimTime end_time = 0;
  uint64_t events = 0;
  TraceDigest digest;
  std::vector<TraceEvent> trace;

  friend bool operator==(const Observed& a, const Observed& b) {
    return a.tty == b.tty && a.messages_sent == b.messages_sent &&
           a.deliveries == b.deliveries && a.syncs == b.syncs &&
           a.takeovers == b.takeovers && a.suppressed == b.suppressed &&
           a.end_time == b.end_time && a.events == b.events && a.digest == b.digest;
  }
};

Observed RunOnce(uint64_t seed, bool crash) {
  MachineOptions options;
  options.config.num_clusters = 3;
  options.seed = seed;
  // Capture everything, engine dispatch firehose included: the digest then
  // covers the complete event-by-event behaviour of the run.
  options.trace.enabled = true;
  options.trace.unbounded = true;
  options.trace.kind_mask = ~uint64_t{0};
  Machine machine(options);
  machine.Boot();

  Executable ping = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r12, 30
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:dt"
buf: .word 0
)");
  Executable pong = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    li r11, buf
    ld r2, r11, 0
    li r3, 26
    mod r2, r2, r3
    li r3, 97
    add r2, r2, r3
    li r11, out
    stb r2, r11, 0
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r12, 30
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:dt"
buf: .word 0
out: .byte 0
)");
  Machine::UserSpawnOptions a;
  a.backup_cluster = 1;
  Machine::UserSpawnOptions b;
  b.backup_cluster = 0;
  b.with_tty = true;
  machine.SpawnUserProgram(0, ping, a);
  machine.SpawnUserProgram(2, pong, b);
  if (crash) {
    machine.CrashClusterAt(machine.Now() + 1'000, 2);
  }
  EXPECT_TRUE(machine.RunUntilAllExited(300'000'000));
  machine.Settle();

  Observed o;
  o.tty = machine.TtyOutput(0);
  o.messages_sent = machine.metrics().messages_sent;
  o.deliveries = machine.metrics().deliveries_primary + machine.metrics().deliveries_backup +
                 machine.metrics().deliveries_count_only;
  o.syncs = machine.metrics().syncs;
  o.takeovers = machine.metrics().takeovers;
  o.suppressed = machine.metrics().sends_suppressed;
  o.end_time = machine.Now();
  o.events = machine.dispatched();
  o.digest = machine.tracer()->digest();
  o.trace = machine.tracer()->Events();
  return o;
}

// On mismatch, fail with the first divergent event rather than a bare hash.
void ExpectSameTrace(const Observed& first, const Observed& second) {
  DivergenceReport report = FindFirstDivergence(first.trace, second.trace);
  EXPECT_FALSE(report.diverged) << report.ToString();
  EXPECT_EQ(first.digest.ToString(), second.digest.ToString());
  EXPECT_TRUE(first == second);
}

TEST(Determinism, IdenticalRunsAreBitIdentical) {
  Observed first = RunOnce(1, false);
  Observed second = RunOnce(1, false);
  ExpectSameTrace(first, second);
  EXPECT_FALSE(first.tty.empty());
  EXPECT_GT(first.digest.count, 0u);
}

TEST(Determinism, HoldsThroughCrashAndRecovery) {
  Observed first = RunOnce(1, true);
  Observed second = RunOnce(1, true);
  ExpectSameTrace(first, second);
  EXPECT_GE(first.takeovers, 1u);
}

TEST(Determinism, CrashedRunMatchesCleanRunExternally) {
  Observed clean = RunOnce(1, false);
  Observed crashed = RunOnce(1, true);
  // Internal traces differ (takeovers, replay), external output must not.
  EXPECT_EQ(clean.tty, crashed.tty);
  EXPECT_NE(clean.events, crashed.events);
  EXPECT_NE(clean.digest, crashed.digest);
}

TEST(Determinism, DivergentRunsAreFlaggedWithContext) {
  // Clean vs crashed run: genuinely different executions. The digests must
  // disagree and the checker must localize the disagreement with context.
  Observed clean = RunOnce(1, false);
  Observed crashed = RunOnce(1, true);
  EXPECT_NE(clean.digest, crashed.digest);
  DivergenceReport report = FindFirstDivergence(clean.trace, crashed.trace);
  EXPECT_TRUE(report.diverged);
  EXPECT_NE(report.description.find("diverge"), std::string::npos);
}

// Negative test for the checker itself: perturb one event of an otherwise
// identical run and the report must name exactly that event.
TEST(Determinism, DivergenceReportPinpointsFirstDifference) {
  Observed first = RunOnce(1, true);
  Observed second = RunOnce(1, true);
  ASSERT_FALSE(FindFirstDivergence(first.trace, second.trace).diverged);

  ASSERT_GT(second.trace.size(), 100u);
  const uint64_t k = second.trace.size() / 2;
  second.trace[k].a ^= 1;  // simulate a mid-run divergence
  DivergenceReport report = FindFirstDivergence(first.trace, second.trace);
  EXPECT_TRUE(report.diverged);
  EXPECT_EQ(report.index, second.trace[k].seq);
  // Context: the report renders both sides of the divergent event.
  EXPECT_NE(report.description.find(FormatTraceEvent(second.trace[k])), std::string::npos);
  EXPECT_NE(report.description.find(FormatTraceEvent(first.trace[k])), std::string::npos);

  // A truncated run is also a divergence, attributed to the first missing seq.
  std::vector<TraceEvent> shorter(first.trace.begin(), first.trace.end() - 1);
  DivergenceReport trunc = FindFirstDivergence(first.trace, shorter);
  EXPECT_TRUE(trunc.diverged);
  EXPECT_EQ(trunc.index, first.trace.back().seq);
}

}  // namespace
}  // namespace auragen
