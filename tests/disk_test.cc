// Unit tests for the disk substrate: block devices, service serialization,
// mirroring, dual-ported attachment, failure behaviour.

#include <gtest/gtest.h>

#include "src/disk/disk.h"
#include "src/sim/engine.h"

namespace auragen {
namespace {

TEST(BlockDevice, WriteThenRead) {
  Engine engine;
  BlockDevice disk(engine, DiskConfig{});
  Bytes data{1, 2, 3, 4};
  bool wrote = false;
  disk.Write(5, data, [&](Result<void> r) {
    EXPECT_TRUE(r.ok());
    wrote = true;
  });
  engine.Run();
  EXPECT_TRUE(wrote);

  Bytes got;
  disk.Read(5, [&](Result<Bytes> r) {
    ASSERT_TRUE(r.ok());
    got = std::move(r).value();
  });
  engine.Run();
  EXPECT_EQ(got, data);
}

TEST(BlockDevice, RequestsServeInOrder) {
  Engine engine;
  BlockDevice disk(engine, DiskConfig{});
  std::vector<int> order;
  disk.Write(1, Bytes{1}, [&](Result<void>) { order.push_back(1); });
  disk.Write(2, Bytes{2}, [&](Result<void>) { order.push_back(2); });
  disk.Read(1, [&](Result<Bytes>) { order.push_back(3); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(BlockDevice, FailedDeviceReturnsIo) {
  Engine engine;
  BlockDevice disk(engine, DiskConfig{});
  disk.Fail();
  Errc err = Errc::kOk;
  disk.Read(0, [&](Result<Bytes> r) { err = r.error(); });
  engine.Run();
  EXPECT_EQ(err, Errc::kIo);
}

TEST(BlockDevice, TimingScalesWithBytes) {
  Engine engine;
  DiskConfig config;
  BlockDevice disk(engine, config);
  disk.Write(0, Bytes(8, 0), [](Result<void>) {});
  engine.Run();
  SimTime small = engine.Now();
  disk.Write(0, Bytes(512, 0), [](Result<void>) {});
  engine.Run();
  EXPECT_GT(engine.Now() - small, small);
}

TEST(BlockDevice, OutOfRangePanics) {
  Engine engine;
  DiskConfig config;
  config.num_blocks = 4;
  BlockDevice disk(engine, config);
  EXPECT_DEATH(disk.Read(4, [](Result<Bytes>) {}), "past end");
}

TEST(MirroredDisk, WritesBothDrives) {
  Engine engine;
  MirroredDisk disk(engine, DiskConfig{}, 0, 1);
  disk.Write(3, Bytes{9, 9}, [](Result<void> r) { EXPECT_TRUE(r.ok()); });
  engine.Run();
  EXPECT_EQ(disk.drive(0).PeekBlock(3), (Bytes{9, 9}));
  EXPECT_EQ(disk.drive(1).PeekBlock(3), (Bytes{9, 9}));
}

TEST(MirroredDisk, SurvivesSingleDriveFailure) {
  Engine engine;
  MirroredDisk disk(engine, DiskConfig{}, 0, 1);
  disk.Write(3, Bytes{5}, [](Result<void>) {});
  engine.Run();
  disk.drive(0).Fail();

  Bytes got;
  disk.Read(3, [&](Result<Bytes> r) {
    ASSERT_TRUE(r.ok());
    got = std::move(r).value();
  });
  engine.Run();
  EXPECT_EQ(got, Bytes{5});

  // Writes keep landing on the survivor.
  disk.Write(4, Bytes{6}, [](Result<void> r) { EXPECT_TRUE(r.ok()); });
  engine.Run();
  EXPECT_EQ(disk.drive(1).PeekBlock(4), Bytes{6});
}

TEST(MirroredDisk, DoubleFailureReportsIo) {
  Engine engine;
  MirroredDisk disk(engine, DiskConfig{}, 0, 1);
  disk.drive(0).Fail();
  disk.drive(1).Fail();
  Errc err = Errc::kOk;
  disk.Write(0, Bytes{1}, [&](Result<void> r) { err = r.error(); });
  engine.Run();
  EXPECT_EQ(err, Errc::kIo);
}

TEST(MirroredDisk, DualPortedAttachment) {
  Engine engine;
  MirroredDisk disk(engine, DiskConfig{}, 2, 5);
  EXPECT_TRUE(disk.AttachedTo(2));
  EXPECT_TRUE(disk.AttachedTo(5));
  EXPECT_FALSE(disk.AttachedTo(3));
  EXPECT_EQ(disk.OtherPort(2), 5u);
  EXPECT_EQ(disk.OtherPort(5), 2u);
}

}  // namespace
}  // namespace auragen
