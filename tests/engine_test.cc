// Engine cancel/clock regression tests plus the ShardedEngine determinism
// suite: FIFO tie-breaks across shard merges, window semantics, the
// lookahead contract, and the parallel-vs-sequential digest matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/machine/shard_plan.h"
#include "src/sim/cluster_model.h"
#include "src/sim/engine.h"
#include "src/sim/sharded_engine.h"
#include "src/trace/trace.h"

namespace auragen {
namespace {

// --- Engine::Cancel bookkeeping ---------------------------------------

TEST(EngineCancel, AfterFireCannotKillSlotReuse) {
  // The ABA case the old cancelled-id list got wrong at scale: an id kept
  // past its event's dispatch must stay a no-op even when the slot has been
  // handed to a new event.
  Engine engine(Engine::kNoLogClock);
  bool second_fired = false;
  EventId first = engine.Schedule(1, [] {});
  engine.Run();
  // The freed slot is reused immediately; only the generation differs.
  EventId second = engine.Schedule(1, [&] { second_fired = true; });
  EXPECT_NE(first, second);
  engine.Cancel(first);  // must not touch the reused slot
  EXPECT_EQ(engine.live_events(), 1u);
  engine.Run();
  EXPECT_TRUE(second_fired);
}

TEST(EngineCancel, FiredIdsLeaveNoResidue) {
  // Cancelling after the fact used to append to a forever-growing vector
  // scanned on every dispatch. Now it's a generation check: nothing is
  // retained for fired ids, and stale heap entries exist only for events
  // cancelled while pending — and drain as they surface.
  Engine engine(Engine::kNoLogClock);
  std::vector<EventId> fired_ids;
  for (int round = 0; round < 100; ++round) {
    fired_ids.push_back(engine.Schedule(1, [] {}));
    engine.Run();
    for (EventId id : fired_ids) {
      engine.Cancel(id);  // all no-ops
    }
    EXPECT_EQ(engine.stale_heap_entries(), 0u) << "round " << round;
  }

  // Cancel-while-pending leaves one stale entry each...
  std::vector<EventId> pending;
  for (int i = 0; i < 8; ++i) {
    pending.push_back(engine.Schedule(10, [] {}));
  }
  for (EventId id : pending) {
    engine.Cancel(id);
  }
  EXPECT_EQ(engine.stale_heap_entries(), 8u);
  EXPECT_TRUE(engine.Empty());
  // ...which vanish the next time the heap drains.
  engine.Run();
  EXPECT_EQ(engine.stale_heap_entries(), 0u);
}

TEST(EngineCancel, DoubleCancelIsNoop) {
  Engine engine(Engine::kNoLogClock);
  bool fired = false;
  EventId id = engine.Schedule(5, [&] { fired = true; });
  EventId other = engine.Schedule(5, [&] { fired = true; });
  engine.Cancel(id);
  engine.Cancel(id);
  engine.Cancel(kNoEvent);
  engine.Run();
  EXPECT_TRUE(fired);  // `other` still fires
  engine.Cancel(other);  // after fire: no-op
}

TEST(EngineCancel, PreservesFifoOfSurvivors) {
  Engine engine(Engine::kNoLogClock);
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(engine.Schedule(5, [&order, i] { order.push_back(i); }));
  }
  engine.Cancel(ids[1]);
  engine.Cancel(ids[4]);
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5}));
}

// --- Engine clock semantics at run cut-offs ---------------------------

TEST(EngineClock, DispatchLimitDoesNotFastForward) {
  // A limited run did not simulate through the horizon; advancing the clock
  // to `until` anyway would timestamp post-run assertions in a future the
  // run never reached.
  Engine engine(Engine::kNoLogClock);
  for (SimTime t : {10u, 20u, 30u}) {
    engine.ScheduleAt(t, [] {});
  }
  engine.set_dispatch_limit(2);
  uint64_t n = engine.Run(100);
  EXPECT_EQ(n, 2u);
  EXPECT_TRUE(engine.dispatch_limit_hit());
  EXPECT_EQ(engine.Now(), 20u);  // the last earned instant, not 100
}

TEST(EngineClock, StopDoesNotFastForward) {
  Engine engine(Engine::kNoLogClock);
  engine.Schedule(10, [&] { engine.Stop(); });
  engine.Schedule(20, [] {});
  engine.Run(100);
  EXPECT_EQ(engine.Now(), 10u);
}

TEST(EngineClock, CleanHorizonStillFastForwards) {
  Engine engine(Engine::kNoLogClock);
  engine.Schedule(10, [] {});
  engine.Run(100);
  EXPECT_EQ(engine.Now(), 100u);
}

// --- ShardedEngine windows and merges ---------------------------------

TEST(ShardedEngine, TiesMergeInShardOrder) {
  // Same-instant records from different shards must fold into the master
  // tracer in shard order — the exact interleaving a sequential engine
  // produces — or the digest oracle is worthless.
  ShardedEngineOptions seo;
  seo.num_shards = 3;
  seo.threads = 1;
  TraceOptions to;
  to.enabled = true;
  Tracer tracer(to);
  ShardedEngine engine(seo);
  engine.set_tracer(&tracer);
  // Schedule in reverse shard order so FIFO-of-scheduling cannot mask a
  // broken merge.
  for (uint32_t s = 3; s-- > 0;) {
    engine.ScheduleAtOn(s, 7, [&engine, s] {
      engine.Trace(TraceEventKind::kSend, s, 100 + s, 0, 0, 0);
    });
  }
  engine.Run(10);
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(events[s].ts, 7u);
    EXPECT_EQ(events[s].gpid, 100 + s) << "merge order broke at position " << s;
  }
}

TEST(ShardedEngine, CrossShardPostsHonorLatency) {
  ShardedEngineOptions seo;
  seo.num_shards = 2;
  seo.threads = 2;
  seo.lookahead_us = 4;
  ShardedEngine engine(seo);
  std::vector<std::string> log;
  engine.ScheduleOn(1, 5, [&] {
    log.push_back("cluster@" + std::to_string(engine.ShardNow(1)));
    engine.ScheduleOn(kSharedShard, 4, [&] {
      log.push_back("bus@" + std::to_string(engine.ShardNow(kSharedShard)));
    });
  });
  engine.Run(100);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "cluster@5");
  EXPECT_EQ(log[1], "bus@9");
  EXPECT_EQ(engine.Now(), 100u);
  EXPECT_TRUE(engine.Empty());
}

TEST(ShardedEngineDeath, LookaheadContractViolationPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ShardedEngineOptions seo;
  seo.num_shards = 2;
  seo.threads = 1;
  seo.lookahead_us = 5;
  ShardedEngine engine(seo);
  engine.ScheduleOn(1, 10, [&] {
    engine.ScheduleOn(kSharedShard, 2, [] {});  // 2 < lookahead 5
  });
  EXPECT_DEATH(engine.Run(100), "lookahead contract");
}

TEST(ShardedEngineDeath, CrossShardCancelPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ShardedEngineOptions seo;
  seo.num_shards = 2;
  seo.threads = 1;
  ShardedEngine engine(seo);
  EventId id = engine.ScheduleOn(kSharedShard, 50, [] {});
  engine.ScheduleOn(1, 10, [&] { engine.Cancel(kSharedShard, id); });
  EXPECT_DEATH(engine.Run(100), "cross-shard Cancel");
}

TEST(ShardedEngine, StopHaltsAtWindowBarrier) {
  ShardedEngineOptions seo;
  seo.num_shards = 2;
  seo.threads = 2;
  ShardedEngine engine(seo);
  int later = 0;
  engine.ScheduleOn(1, 5, [&] { engine.Stop(); });
  engine.ScheduleOn(1, 50, [&] { ++later; });
  engine.Run(100);
  EXPECT_EQ(later, 0);
  EXPECT_FALSE(engine.Empty());
  EXPECT_LT(engine.Now(), 50u);  // no fast-forward past the halt
  engine.Run(100);  // resumable; drains the rest
  EXPECT_EQ(later, 1);
  EXPECT_TRUE(engine.Empty());
}

TEST(ShardedEngine, DispatchLimitIsThreadCountInvariant) {
  // The livelock guard must cut the run at the same window for every thread
  // count; otherwise limited campaigns would diverge between modes.
  auto run_limited = [](uint32_t threads) {
    ShardedEngineOptions seo;
    seo.num_shards = 5;
    seo.threads = threads;
    seo.lookahead_us = 2;
    ShardedEngine engine(seo);
    ClusterModelOptions cmo;
    cmo.clusters = 4;
    cmo.horizon_us = 4000;
    ClusterModel model(engine, cmo);
    model.Install();
    engine.set_dispatch_limit(500);
    engine.Run(4000);
    EXPECT_TRUE(engine.dispatch_limit_hit());
    EXPECT_LT(engine.Now(), 4000u);
    return std::make_pair(engine.dispatched(), model.Fingerprint());
  };
  auto seq = run_limited(1);
  auto par = run_limited(4);
  EXPECT_EQ(seq.first, par.first);
  EXPECT_EQ(seq.second, par.second);
}

// --- The oracle: parallel digests are bit-identical to sequential ------

TEST(ShardedEngine, ParallelDigestMatrixMatchesSequential) {
  for (uint32_t clusters : {4u, 8u}) {
    for (uint64_t seed : {1ull, 7ull, 42ull}) {
      uint64_t want_fp = 0;
      uint64_t want_hash = 0;
      uint64_t want_count = 0;
      for (uint32_t threads : {1u, 2u, 4u}) {
        ShardedEngineOptions seo;
        seo.num_shards = 1 + clusters;
        seo.threads = threads;
        seo.lookahead_us = 2;
        ShardedEngine engine(seo);
        TraceOptions to;
        to.enabled = true;
        Tracer tracer(to);
        engine.set_tracer(&tracer);
        ClusterModelOptions cmo;
        cmo.clusters = clusters;
        cmo.seed = seed;
        cmo.horizon_us = 20'000;
        ClusterModel model(engine, cmo);
        model.Install();
        engine.Run(25'000);
        ASSERT_TRUE(engine.Empty());
        EXPECT_GT(model.frames_accepted(), 0u);
        if (threads == 1) {
          want_fp = model.Fingerprint();
          want_hash = tracer.digest().hash;
          want_count = tracer.digest().count;
          continue;
        }
        EXPECT_EQ(model.Fingerprint(), want_fp)
            << "clusters=" << clusters << " seed=" << seed << " threads=" << threads;
        EXPECT_EQ(tracer.digest().hash, want_hash)
            << "clusters=" << clusters << " seed=" << seed << " threads=" << threads;
        EXPECT_EQ(tracer.digest().count, want_count)
            << "clusters=" << clusters << " seed=" << seed << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedEngine, RepeatRunsAreDeterministic) {
  auto digest_once = [] {
    ShardedEngineOptions seo;
    seo.num_shards = 9;
    seo.threads = 3;
    ShardedEngine engine(seo);
    TraceOptions to;
    to.enabled = true;
    Tracer tracer(to);
    engine.set_tracer(&tracer);
    ClusterModelOptions cmo;
    cmo.clusters = 8;
    cmo.horizon_us = 10'000;
    ClusterModel model(engine, cmo);
    model.Install();
    engine.Run();
    return tracer.digest();
  };
  EXPECT_EQ(digest_once(), digest_once());
}

// --- ShardPlan: the machine-topology seam ------------------------------

TEST(ShardPlan, DerivesShardsAndLookaheadFromConfig) {
  SystemConfig config;
  config.num_clusters = 6;
  DiskConfig disk;
  ShardPlan plan = MakeShardPlan(config, disk);
  EXPECT_EQ(plan.num_shards, 7u);
  // min(bus arbitration 2us, disk seek 200us)
  EXPECT_EQ(plan.lookahead_us, std::min(config.bus.arbitration_us, disk.seek_us));
  EXPECT_EQ(plan.shared_shard(), kSharedShard);
  EXPECT_EQ(plan.shard_of_cluster(0), 1u);
  EXPECT_EQ(plan.shard_of_cluster(5), 6u);
  ShardedEngineOptions seo = plan.EngineOptions(4);
  EXPECT_EQ(seo.num_shards, 7u);
  EXPECT_EQ(seo.threads, 4u);
  EXPECT_EQ(seo.lookahead_us, plan.lookahead_us);
  EXPECT_NE(plan.Describe().find("shards=7"), std::string::npos);
}

TEST(ShardPlanDeath, ZeroLatencyTopologyPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SystemConfig config;
  config.bus.arbitration_us = 0;
  DiskConfig disk;
  EXPECT_DEATH(MakeShardPlan(config, disk), "lookahead");
}

}  // namespace
}  // namespace auragen
