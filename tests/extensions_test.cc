// Tests for the §10 future-work extensions: individual-process failure
// recovery, and halfback backup re-creation when a crashed cluster returns
// to service (§7.3).

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

Executable Digits(int rounds, uint32_t spin) {
  return MustAssemble(R"(
start:
    li r8, 0
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, )" + std::to_string(spin) + R"(
    blt r9, r10, spin
    li r10, 48
    add r10, r10, r8
    li r11, digit
    stb r10, r11, 0
    li r1, 2
    li r2, digit
    li r3, 1
    sys write
    addi r8, r8, 1
    li r10, )" + std::to_string(rounds) + R"(
    blt r8, r10, rounds
    exit 7
.data
digit: .byte 0
)");
}

TEST(PartialFailure, SingleProcessFaultRecoversWithoutClusterCrash) {
  MachineOptions options;
  options.config.num_clusters = 2;
  Machine machine(options);
  machine.Boot();
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.backup_cluster = 0;
  Gpid victim = machine.SpawnUserProgram(1, Digits(10, 6000), opts);
  // A bystander in the same cluster keeps running untouched.
  Gpid bystander = machine.SpawnUserProgram(1, Digits(10, 9000), Machine::UserSpawnOptions{
                                                                     .backup_cluster = 0});
  machine.Run(60'000);
  EXPECT_GT(machine.metrics().syncs, 0u);
  machine.FailProcess(1, victim);

  ASSERT_TRUE(machine.RunUntilAllExited(90'000'000));
  machine.Settle();
  EXPECT_TRUE(machine.ClusterAlive(1));  // the cluster never crashed
  EXPECT_EQ(machine.ExitStatus(victim), 7);
  EXPECT_EQ(machine.ExitStatus(bystander), 7);
  EXPECT_EQ(machine.TtyOutput(0), "0123456789");
  EXPECT_EQ(machine.TtyDuplicates(), 0u);
  EXPECT_GE(machine.metrics().takeovers, 1u);
  // The victim now lives in its backup cluster; the bystander stayed put.
  EXPECT_EQ(machine.kernel(1).FindProcess(victim), nullptr);
}

TEST(PartialFailure, VictimWithoutBackupJustDies) {
  MachineOptions options;
  options.config.num_clusters = 2;
  options.config.strategy = FtStrategy::kNone;
  Machine machine(options);
  machine.Boot();
  Gpid victim = machine.SpawnUserProgram(1, Digits(100, 30000), Machine::UserSpawnOptions{});
  machine.Run(40'000);
  machine.FailProcess(1, victim);
  machine.Run(2'000'000);
  EXPECT_FALSE(machine.HasExited(victim));
  EXPECT_EQ(machine.kernel(1).FindProcess(victim), nullptr);
  EXPECT_EQ(machine.kernel(0).FindProcess(victim), nullptr);
}

TEST(HalfbackRestore, ServersRegainBackupsWhenClusterReturns) {
  MachineOptions options;
  options.config.num_clusters = 2;
  Machine machine(options);
  machine.Boot();

  // Kill cluster 0: fs/ps/tty take over in cluster 1, unprotected halfbacks.
  machine.CrashCluster(0);
  machine.Run(2'000'000);
  EXPECT_EQ(machine.tty_server_addr().primary, 1u);
  EXPECT_EQ(machine.tty_server_addr().backup, kNoCluster);

  // Cluster 0 returns to service: §7.3 "halfbacks have new backups created
  // only when the cluster in which the original primary ran is returned to
  // service".
  machine.RestoreCluster(0);
  machine.Run(2'000'000);
  EXPECT_EQ(machine.tty_server_addr().backup, 0u);
  EXPECT_EQ(machine.file_server_addr().backup, 0u);
  Pcb* parked = machine.kernel(0).FindProcess(Machine::kTtyPid);
  ASSERT_NE(parked, nullptr);
  EXPECT_TRUE(parked->server_backup);
  EXPECT_EQ(parked->state, ProcState::kParkedBackup);
}

TEST(HalfbackRestore, ReprotectedServerSurvivesSecondFailure) {
  MachineOptions options;
  options.config.num_clusters = 2;
  Machine machine(options);
  machine.Boot();

  machine.CrashCluster(0);
  machine.Run(2'000'000);
  machine.RestoreCluster(0);
  machine.Run(2'000'000);

  // Now kill cluster 1 — the servers' new home. Their re-created backups in
  // cluster 0 must take over and serve a fresh workload.
  machine.CrashCluster(1);
  machine.Run(2'000'000);
  EXPECT_EQ(machine.tty_server_addr().primary, 0u);

  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  Gpid pid = machine.SpawnUserProgram(0, Digits(5, 4000), opts);
  ASSERT_TRUE(machine.RunUntilAllExited(90'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 7);
  EXPECT_EQ(machine.TtyOutput(0), "01234");
}

}  // namespace
}  // namespace auragen
