// The segmented intercluster fabric (src/bus/fabric.h): hierarchical
// routing, the §5.1 atomicity guarantees across segment boundaries, switch
// hold-and-drain semantics, the single-segment bit-identity promise, and
// digest stability across machine thread counts and topologies.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/avm/assembler.h"
#include "src/bus/fabric.h"
#include "src/bus/topology.h"
#include "src/fault/campaign.h"
#include "src/machine/machine.h"
#include "src/sim/engine.h"

namespace auragen {
namespace {

struct Recorder : BusEndpoint {
  std::vector<Frame> frames;
  void OnFrame(const Frame& frame) override { frames.push_back(frame); }
};

// Two segments of two clusters each: 0,1 | 2,3.
struct FabricFixture {
  Engine engine;
  Topology topo = Topology::Uniform(2, 2);
  Fabric fabric{engine, topo};
  Recorder endpoints[4];

  FabricFixture() {
    for (ClusterId c = 0; c < 4; ++c) {
      fabric.AttachEndpoint(c, &endpoints[c]);
    }
  }
};

TEST(Fabric, SameSegmentTrafficNeverCrossesTheTrunk) {
  FabricFixture f;
  f.fabric.Transmit(0, MaskOf(1), Bytes{9});
  f.engine.Run();
  ASSERT_EQ(f.endpoints[1].frames.size(), 1u);
  EXPECT_EQ(f.fabric.trunk_forwards(), 0u);
  EXPECT_EQ(f.fabric.switch_stats(0).forwarded, 0u);
}

TEST(Fabric, CrossSegmentMulticastReachesEveryTargetOnce) {
  FabricFixture f;
  f.fabric.Transmit(0, MaskOf(1) | MaskOf(2) | MaskOf(3), Bytes{42});
  f.engine.Run();
  // All-or-none across the boundary: the local target and both remote
  // targets each see the frame exactly once; the source does not.
  EXPECT_TRUE(f.endpoints[0].frames.empty());
  ASSERT_EQ(f.endpoints[1].frames.size(), 1u);
  ASSERT_EQ(f.endpoints[2].frames.size(), 1u);
  ASSERT_EQ(f.endpoints[3].frames.size(), 1u);
  EXPECT_EQ(*f.endpoints[2].frames[0].payload, Bytes{42});
  // The whole frame crossed the trunk once and came back as one copy per
  // target segment (origin's local target included).
  EXPECT_EQ(f.fabric.switch_stats(0).forwarded, 1u);
  EXPECT_EQ(f.fabric.trunk_forwards(), 2u);
  EXPECT_EQ(f.fabric.switch_stats(1).injected, 1u);
}

// §5.1 guarantee 2 across segments: any two clusters that are targets of
// two frames see those frames in the same relative order, regardless of
// which segments the senders sat in.
void ExpectPairwiseConsistentOrder(const Recorder* endpoints, uint32_t n) {
  for (ClusterId a = 0; a < n; ++a) {
    for (ClusterId b = a + 1; b < n; ++b) {
      std::vector<uint64_t> at_a, at_b;  // frames common to both, by payload tag
      for (const Frame& fr : endpoints[a].frames) {
        if (MaskHas(fr.targets, b)) {
          at_a.push_back((*fr.payload)[0]);
        }
      }
      for (const Frame& fr : endpoints[b].frames) {
        if (MaskHas(fr.targets, a)) {
          at_b.push_back((*fr.payload)[0]);
        }
      }
      EXPECT_EQ(at_a, at_b) << "clusters " << a << " and " << b
                            << " disagree on their common delivery order";
    }
  }
}

TEST(Fabric, CrossSegmentOrderConsistentAtCommonDestinations) {
  FabricFixture f;
  // Senders in both segments, every frame targeting destinations in both
  // segments — the shape that breaks a naive deliver-locally-and-forward
  // fabric (order could invert between segments).
  for (uint8_t i = 0; i < 24; ++i) {
    const ClusterId src = i % 4;
    const ClusterMask all = MaskOfRange(0, 4) & ~MaskOf(src);
    f.fabric.Transmit(src, all, Bytes{i});
  }
  f.engine.Run();
  for (ClusterId c = 0; c < 4; ++c) {
    EXPECT_EQ(f.endpoints[c].frames.size(), 18u);  // 24 frames, src excluded
  }
  ExpectPairwiseConsistentOrder(f.endpoints, 4);
}

TEST(Fabric, OrderSurvivesSeededLineAndSwitchFailures) {
  FabricFixture f;
  Rng rng(7);
  for (uint8_t i = 0; i < 40; ++i) {
    const ClusterId src = static_cast<ClusterId>(rng.Below(4));
    ClusterMask targets;
    for (ClusterId c = 0; c < 4; ++c) {
      if (c != src && rng.Chance(0.6)) {
        targets |= MaskOf(c);
      }
    }
    if (!targets.any()) {
      targets = MaskOf((src + 1) % 4);
    }
    f.fabric.Transmit(src, targets, Bytes{i});
    switch (i) {
      case 10:
        f.fabric.FailLine(0);
        break;
      case 18:
        f.fabric.FailSwitch(1);
        break;
      case 26:
        f.fabric.RestoreSwitch(1);
        break;
      case 30:
        f.fabric.RestoreLine(0);
        break;
      default:
        break;
    }
  }
  f.engine.Run();
  uint64_t total = 0;
  for (const Recorder& r : f.endpoints) {
    total += r.frames.size();
  }
  BusStats stats = f.fabric.stats();
  EXPECT_EQ(total, stats.deliveries);  // nothing dropped, nothing duplicated
  ExpectPairwiseConsistentOrder(f.endpoints, 4);
}

TEST(Fabric, FailedSwitchHoldsThenDrainsFifo) {
  FabricFixture f;
  f.fabric.FailSwitch(0);
  EXPECT_FALSE(f.fabric.SwitchOk(0));
  f.fabric.Transmit(0, MaskOf(2), Bytes{1});
  f.fabric.Transmit(1, MaskOf(3), Bytes{2});
  f.fabric.Transmit(2, MaskOf(0), Bytes{3});  // inbound: holds at the trunk
  f.engine.Run();
  EXPECT_TRUE(f.endpoints[2].frames.empty());
  EXPECT_TRUE(f.endpoints[3].frames.empty());
  EXPECT_TRUE(f.endpoints[0].frames.empty());
  EXPECT_EQ(f.fabric.switch_stats(0).held, 2u);

  f.fabric.RestoreSwitch(0);
  f.engine.Run();
  ASSERT_EQ(f.endpoints[2].frames.size(), 1u);
  ASSERT_EQ(f.endpoints[3].frames.size(), 1u);
  ASSERT_EQ(f.endpoints[0].frames.size(), 1u);
  EXPECT_EQ(*f.endpoints[0].frames[0].payload, Bytes{3});
  // Egress order preserved through the hold.
  EXPECT_EQ(*f.endpoints[2].frames[0].payload, Bytes{1});
  EXPECT_EQ(*f.endpoints[3].frames[0].payload, Bytes{2});
}

TEST(Fabric, DetachedClusterSkippedOthersStillDelivered) {
  FabricFixture f;
  f.fabric.DetachEndpoint(3);
  f.fabric.Transmit(0, MaskOf(2) | MaskOf(3), Bytes{5});
  f.engine.Run();
  ASSERT_EQ(f.endpoints[2].frames.size(), 1u);
  EXPECT_TRUE(f.endpoints[3].frames.empty());
}

// ------------------------------------------------------------ machine level

TraceDigest BootDigest(MachineOptions options) {
  options.trace.enabled = true;
  options.trace.unbounded = true;
  options.trace.kind_mask = ~uint64_t{0};
  Machine machine(options);
  machine.Boot();
  machine.Run(150'000);
  return machine.tracer()->digest();
}

TEST(Fabric, SingleSegmentTopologyIsBitIdenticalToDefault) {
  MachineOptions defaulted;
  defaulted.config.num_clusters = 3;

  MachineOptions explicit_topo;
  explicit_topo.WithTopology(Topology::SingleSegment(3));

  EXPECT_EQ(BootDigest(defaulted), BootDigest(explicit_topo));
}

TEST(Fabric, MachineRejectsClusterCountDisagreement) {
  MachineOptions options;
  options.config.topology = Topology::Uniform(2, 2);  // 4 clusters
  options.config.num_clusters = 5;                    // bypassing WithTopology
  EXPECT_DEATH(Machine{options}, "single source of truth|keeps them in sync");
}

TEST(Fabric, PlacementRejectsBackupInOtherSegment) {
  MachineOptions options;
  options.WithTopology(Topology::Uniform(2, 2));
  options.placement.file = ClusterPair{0, 2};       // segments 0 and 1
  options.placement.file_disk = ClusterPair{0, 2};
  Machine machine(options);
  EXPECT_DEATH(machine.Boot(), "different fabric segments|span fabric segments");
}

// The campaign exercises boot, servers, user workloads, faults, and the
// determinism replay on the given fabric; digest equality across machine
// thread counts is the parallel-correctness oracle (DESIGN.md §17).
TraceDigest CampaignDigest(uint32_t clusters, uint32_t segments, uint32_t threads,
                           uint64_t seed, bool* ok) {
  CampaignOptions opt;
  opt.num_clusters = clusters;
  opt.num_segments = segments;
  opt.machine_threads = threads;
  opt.check_determinism = false;  // the matrix below is the replay
  ScenarioResult r = RunScenario(seed, opt);
  *ok = r.ok;
  return r.trace_digest;
}

TEST(Fabric, DigestMatrixAcrossThreadsAndTopologies) {
  const struct {
    uint32_t clusters;
    uint32_t segments;
  } shapes[] = {{4, 2}, {8, 4}};
  const uint64_t seed = 11;
  for (const auto& shape : shapes) {
    bool ok = false;
    TraceDigest base = CampaignDigest(shape.clusters, shape.segments, 1, seed, &ok);
    EXPECT_TRUE(ok) << shape.segments << " segments, 1 thread";
    for (uint32_t threads : {2u, 4u}) {
      bool ok_t = false;
      TraceDigest got = CampaignDigest(shape.clusters, shape.segments, threads, seed, &ok_t);
      EXPECT_TRUE(ok_t) << shape.segments << " segments, " << threads << " threads";
      EXPECT_EQ(base, got) << shape.segments << " segments: digest diverges at "
                           << threads << " machine threads";
    }
  }
}

TEST(Fabric, SegmentPartitionScenarioSurvives) {
  CampaignOptions opt;
  opt.num_segments = 2;
  // Find the first seeds whose plan is the segment-partition scenario; run
  // them end to end (reference, faulted, determinism replay).
  uint32_t run = 0;
  for (uint64_t seed = 1; seed <= 120 && run < 2; ++seed) {
    FaultPlan plan = MakeScenarioPlan(seed, opt);
    if (plan.scenario != ScenarioKind::kSegmentPartition) {
      continue;
    }
    ++run;
    ScenarioResult r = RunScenario(seed, opt);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
  }
  EXPECT_GE(run, 1u) << "no segment-partition plan in seeds 1..120";
}

// Ping writes `rounds` words to a named channel; pong echoes each back.
// Placed in different segments, every round trip crosses the trunk twice.
Executable Ping(int index, int rounds) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 6
    sys open
    mov r10, r0
    li r8, 0
loop:
    li r11, buf
    st r8, r11, 0
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r12, )" + std::to_string(rounds) + R"(
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:s)" + std::to_string(index) + R"("
buf: .word 0
)");
}

Executable Pong(int index, int rounds) {
  return MustAssemble(R"(
start:
    li r1, name
    li r2, 6
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r12, )" + std::to_string(rounds) + R"(
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:s)" + std::to_string(index) + R"("
buf: .word 0
)");
}

TEST(Fabric, FourSegment64ClusterMachineBootsAndServes) {
  MachineOptions options;
  options.WithTopology(Topology::Uniform(4, 16));
  ASSERT_EQ(options.config.num_clusters, 64u);
  Machine machine(options);
  machine.Boot();
  EXPECT_EQ(machine.bus().num_segments(), 4u);
  EXPECT_EQ(machine.shard_plan().num_shards, 1u + 64u + 3u);

  // A cross-segment ping/pong pair per segment boundary: the channel
  // fabrication, data frames, and exit records all ride the trunk.
  std::vector<Gpid> pids;
  for (uint32_t i = 0; i < 4; ++i) {
    const ClusterId ping_home = static_cast<ClusterId>(16 * i + 2);
    const ClusterId pong_home = static_cast<ClusterId>((16 * (i + 1) + 5) % 64);
    Machine::UserSpawnOptions popts;
    popts.backup_cluster = static_cast<ClusterId>(16 * i + 3);
    Machine::UserSpawnOptions qopts;
    qopts.backup_cluster = static_cast<ClusterId>((16 * (i + 1) + 6) % 64);
    pids.push_back(
        machine.SpawnUserProgram(ping_home, Ping(static_cast<int>(i), 4), popts));
    pids.push_back(
        machine.SpawnUserProgram(pong_home, Pong(static_cast<int>(i), 4), qopts));
  }
  EXPECT_TRUE(machine.RunUntilAllExited(120'000'000));
  machine.Settle();
  for (Gpid pid : pids) {
    ASSERT_TRUE(machine.HasExited(pid));
    EXPECT_EQ(machine.ExitStatus(pid), 0);
  }
  EXPECT_GT(machine.bus().trunk_forwards(), 0u);
}

}  // namespace
}  // namespace auragen
