// Deterministic fault-injection campaign (src/fault): plan generation is a
// pure function of the seed, generated plans respect the survivability
// constraints the invariant checks rely on, a campaign slice runs green,
// and the specific seeds that exposed real crash-path bugs during
// development stay fixed.

#include <gtest/gtest.h>

#include <string>

#include "src/fault/campaign.h"
#include "src/fault/fault_plan.h"

namespace auragen {
namespace {

FaultPlanInputs InputsFor(uint64_t seed) {
  CampaignOptions opt;
  FaultPlanInputs in;
  in.num_clusters = opt.num_clusters;
  CampaignWorkload wl = MakeCampaignWorkload(seed, opt.num_clusters);
  in.procs = wl.Placements();
  // Producer and consumer of each pair both appear in the placement list.
  EXPECT_EQ(in.procs.size(), wl.pairs.size() * 2);
  return in;
}

TEST(FaultPlan, GenerationIsDeterministic) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    FaultPlan a = MakeFaultPlan(seed, InputsFor(seed));
    FaultPlan b = MakeFaultPlan(seed, InputsFor(seed));
    EXPECT_EQ(a.Describe(), b.Describe()) << "seed " << seed;
    ASSERT_EQ(a.actions.size(), b.actions.size());
    for (size_t i = 0; i < a.actions.size(); ++i) {
      EXPECT_EQ(a.actions[i].at, b.actions[i].at);
      EXPECT_EQ(a.actions[i].cluster, b.actions[i].cluster);
    }
  }
}

TEST(FaultPlan, RespectsSurvivabilityConstraints) {
  for (uint64_t seed = 1; seed <= 500; ++seed) {
    FaultPlanInputs in = InputsFor(seed);
    FaultPlan plan = MakeFaultPlan(seed, in);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + plan.Describe());

    // Actions are scheduled in nondecreasing order.
    for (size_t i = 1; i < plan.actions.size(); ++i) {
      EXPECT_LE(plan.actions[i - 1].at, plan.actions[i].at);
    }

    // Replay the plan's crash/restore actions: at no instant are both
    // server-home clusters down, and no concurrently-dead cluster set
    // covers any process's {primary, backup} pair unless the plan runs the
    // workload in fullback mode (which re-protects after the first loss).
    std::vector<bool> dead(in.num_clusters, false);
    for (const FaultAction& action : plan.actions) {
      if (action.kind == FaultKind::kCrashCluster) {
        dead[action.cluster] = true;
      } else if (action.kind == FaultKind::kRestoreCluster) {
        dead[action.cluster] = false;
      } else {
        continue;
      }
      EXPECT_FALSE(dead[in.server_home_a] && dead[in.server_home_b]);
      if (!plan.fullback) {
        for (const ProcPlacement& p : in.procs) {
          EXPECT_FALSE(dead[p.primary] && dead[p.backup])
              << "quarterback pair fully covered: primary c" << p.primary
              << " backup c" << p.backup;
        }
      }
    }

    // Multi-crash scenarios must protect with fullback (replacement
    // backups), otherwise the second hit can be unsurvivable by design.
    int crashes = 0;
    for (const FaultAction& action : plan.actions) {
      crashes += action.kind == FaultKind::kCrashCluster ? 1 : 0;
    }
    if (crashes > 1 && plan.scenario != ScenarioKind::kCrashRestoreCrash &&
        plan.scenario != ScenarioKind::kRestoreRecrash) {
      EXPECT_TRUE(plan.fullback);
    }
  }
}

TEST(FaultCampaign, SliceRunsGreen) {
  CampaignOptions opt;
  opt.check_determinism = false;  // the dedicated seeds below replay-check
  CampaignSummary summary = RunCampaign(1, 20, opt);
  EXPECT_EQ(summary.failed, 0u) << (summary.failures.empty()
                                        ? std::string()
                                        : summary.failures.front().failure);
  EXPECT_EQ(summary.run, 20u);
}

// Seeds that reproduced real bugs, kept as pinned regressions. Each one
// failed (stall, AURAGEN_CHECK fire, or output divergence) on the code as
// of the pre-fix revision of this change:
//
//  - 187, 289: after a fullback's backup cluster died, peers kept sending
//    to the live primary without a save leg while the replacement image was
//    captured at crash-handling time — the new backup's saved queue
//    underflowed the sync trim ("backup queue shorter than primary reads").
//    Fixed by freezing peer channels (entry.unusable + held_for) and
//    deferring the capture until every live peer has certainly frozen.
//  - 399, 78: a takeover's kBackupReady overtook a slower peer's own crash
//    handling; the peer recorded the announced backup, then its patch pass
//    promoted that cluster into the primary slot — the real new primary
//    never saw another message. Fixed by repairing stale primary pointers
//    from the announcement's sender.
//  - 300: a page request addressed to the page server's parked backup
//    arrived before that cluster's own crash handling flipped the parked
//    entries; the request was dropped and the faulting process hung.
//    Fixed by parking such messages in the saved queue (delivery fallback).
//  - 305: a message's save leg arrived after the destination's takeover
//    flipped the backup entry to primary, and was dropped — the consumer
//    saw EOF instead of the final item. Fixed by delivering late save legs
//    to the flipped primary entry.
TEST(FaultCampaign, RegressionSeedsStayFixed) {
  CampaignOptions opt;
  for (uint64_t seed : {78ull, 187ull, 289ull, 300ull, 305ull, 399ull}) {
    ScenarioResult result = RunScenario(seed, opt);
    EXPECT_TRUE(result.ok) << "seed " << seed << " [" << result.scenario
                           << "]: " << result.failure;
  }
}

// The dual-line bus outage scenario (§7.1 double fault): both lines die
// back-to-back, queued traffic (heartbeats urgent-first) drains after the
// restore, and no peer falsely declares a crash during the dark window. A
// handful of the first seeds that draw this scenario must run green.
TEST(FaultCampaign, BusDualLineOutageScenarioSurvives) {
  CampaignOptions opt;
  int found = 0;
  for (uint64_t seed = 1; seed <= 200 && found < 3; ++seed) {
    FaultPlan plan = MakeScenarioPlan(seed, opt);
    if (plan.scenario != ScenarioKind::kBusDualLineOutage) {
      continue;
    }
    ++found;
    ScenarioResult result = RunScenario(seed, opt);
    EXPECT_TRUE(result.ok) << "seed " << seed << " [" << result.scenario
                           << "]: " << result.failure;
    // The outage must not be mistaken for a cluster failure.
    EXPECT_EQ(result.crashes_handled, 0u) << "seed " << seed;
    EXPECT_EQ(result.takeovers, 0u) << "seed " << seed;
  }
  EXPECT_EQ(found, 3) << "scenario kind never drawn in 200 seeds";
}

// A parallel campaign (seeds spread over a worker pool) must reproduce the
// sequential campaign seed for seed — same outcomes, same trace digests.
TEST(FaultCampaign, ParallelSeedsMatchSequential) {
  CampaignOptions opt;
  opt.check_determinism = false;
  std::vector<ScenarioResult> seq;
  RunCampaign(1, 8, opt, [&](const ScenarioResult& r) { seq.push_back(r); });
  opt.engine_threads = 3;
  std::vector<ScenarioResult> par;
  RunCampaign(1, 8, opt, [&](const ScenarioResult& r) { par.push_back(r); });
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].seed, par[i].seed) << "results must arrive in seed order";
    EXPECT_EQ(seq[i].ok, par[i].ok) << "seed " << seq[i].seed;
    EXPECT_EQ(seq[i].trace_digest, par[i].trace_digest) << "seed " << seq[i].seed;
    EXPECT_EQ(seq[i].scenario, par[i].scenario) << "seed " << seq[i].seed;
  }
}

}  // namespace
}  // namespace auragen
