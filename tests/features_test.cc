// Integration tests for the syscall surface beyond plain read/write: fork
// with birth notices (§7.7), asynchronous signals and alarm (§7.5.2),
// bunch/which (§7.5.1), and terminal input.

#include <gtest/gtest.h>

#include "src/avm/assembler.h"
#include "src/machine/machine.h"

namespace auragen {
namespace {

MachineOptions TwoClusters() {
  MachineOptions options;
  options.config.num_clusters = 2;
  return options;
}

TEST(Features, ForkParentAndChildBothRun) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Parent forks; child prints "c", parent prints "p"; both exit.
  Executable prog = MustAssemble(R"(
start:
    sys fork
    li r12, 0
    beq r0, r12, child
    li r1, 'p'
    sys putc
    exit 1
child:
    li r1, 'c'
    sys putc
    exit 2
)");
  Gpid parent = machine.SpawnUserProgram(0, prog);
  ASSERT_TRUE(machine.RunUntil(
      [&] { return machine.exit_statuses().size() >= 2; }, 10'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(parent), 1);
  EXPECT_EQ(machine.exit_statuses().size(), 2u);
  // Parent's pid printout 'p', child's 'c' — order free, both present.
  std::string all = machine.DebugOutput(parent);
  int32_t child_status = -1;
  for (const auto& [pid, status] : machine.exit_statuses()) {
    if (pid != parent.value) {
      child_status = status;
      all += machine.DebugOutput(Gpid{pid});
    }
  }
  EXPECT_EQ(child_status, 2);
  EXPECT_NE(all.find('p'), std::string::npos);
  EXPECT_NE(all.find('c'), std::string::npos);
  EXPECT_GE(machine.metrics().birth_notices, 1u);
}

TEST(Features, ForkedChildCanUseChannels) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Parent forks; the child opens ch:x and sends its computation; the
  // parent reads it and emits to the tty.
  Executable prog = MustAssemble(R"(
start:
    sys fork
    li r12, 0
    beq r0, r12, child
    ; parent: open and read
    li r1, name
    li r2, 4
    sys open
    mov r10, r0
    mov r1, r10
    li r2, buf
    li r3, 8
    sys read
    li r1, 2
    li r2, buf
    li r3, 3
    sys write
    exit 0
child:
    li r1, name
    li r2, 4
    sys open
    mov r10, r0
    mov r1, r10
    li r2, msg
    li r3, 3
    sys write
    exit 0
.data
name: .ascii "ch:x"
msg: .ascii "kid"
buf: .space 8
)");
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  machine.SpawnUserProgram(0, prog, opts);
  ASSERT_TRUE(machine.RunUntil(
      [&] { return machine.exit_statuses().size() >= 2; }, 20'000'000));
  machine.Settle();
  EXPECT_EQ(machine.TtyOutput(0), "kid");
}

TEST(Features, ForkedFamilySurvivesCrash) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Parent forks a child, prints 'P' each round on its tty; the child spins
  // and exits 2. The family's cluster crashes mid-run; both must complete
  // with the same identities (exactly two exit records — a re-forked child
  // with a fresh pid would add a third).
  Executable prog = MustAssemble(R"(
start:
    sys fork
    li r12, 0
    beq r0, r12, child
    li r8, 0
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, 4000
    blt r9, r10, spin
    li r1, 2
    li r2, out
    li r3, 1
    sys write
    addi r8, r8, 1
    li r10, 6
    blt r8, r10, rounds
    exit 1
child:
    li r9, 0
cspin:
    addi r9, r9, 1
    li r10, 30000
    blt r9, r10, cspin
    exit 2
.data
out: .ascii "P"
)");
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  opts.backup_cluster = 0;
  Gpid parent = machine.SpawnUserProgram(1, prog, opts);
  machine.Run(50'000);
  machine.CrashCluster(1);
  ASSERT_TRUE(machine.RunUntil(
      [&] { return machine.exit_statuses().size() >= 2; }, 60'000'000));
  machine.Settle();
  EXPECT_EQ(machine.TtyOutput(0), "PPPPPP");
  EXPECT_EQ(machine.TtyDuplicates(), 0u);
  EXPECT_EQ(machine.exit_statuses().size(), 2u);  // same child pid after replay
  EXPECT_EQ(machine.ExitStatus(parent), 1);
  for (const auto& [pid, status] : machine.exit_statuses()) {
    if (pid != parent.value) {
      EXPECT_EQ(status, 2);
    }
  }
}

TEST(Features, AlarmDeliversSignal) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Install a handler, request an alarm, spin until the handler sets a
  // flag, then exit with it.
  Executable prog = MustAssemble(R"(
start:
    li r1, handler
    sys sigset
    li r1, 3000        ; 3ms alarm
    sys alarm
wait:
    li r11, flag
    ld r2, r11, 0
    li r12, 0
    beq r2, r12, wait
    exit 9
handler:
    li r11, flag
    li r2, 1
    st r2, r11, 0
    sys sigret
.data
flag: .word 0
)");
  Gpid pid = machine.SpawnUserProgram(0, prog);
  ASSERT_TRUE(machine.RunUntilAllExited(20'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 9);
  // §7.5.2/§8.3: delivery of a non-ignored signal forces a sync.
  EXPECT_GE(machine.metrics().forced_signal_syncs, 1u);
}

TEST(Features, IgnoredSignalIsDiscardedAndCounted) {
  Machine machine(TwoClusters());
  machine.Boot();
  // No handler installed: the alarm signal must be dropped; the process
  // just spins a bit and exits normally.
  Executable prog = MustAssemble(R"(
start:
    li r1, 2000
    sys alarm
    li r2, 0
loop:
    addi r2, r2, 1
    li r3, 30000
    blt r2, r3, loop
    exit 4
)");
  Gpid pid = machine.SpawnUserProgram(0, prog);
  ASSERT_TRUE(machine.RunUntilAllExited(20'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 4);
  EXPECT_EQ(machine.metrics().forced_signal_syncs, 0u);
}

TEST(Features, BunchAndWhichPickLowestArrival) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Two senders write on two channels; the receiver bunches both fds and
  // uses which twice, echoing in arrival order.
  Executable sender_a = MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r1, r0
    li r2, msg
    li r3, 1
    sys write
    exit 0
.data
name: .ascii "ch:a"
msg: .ascii "A"
)");
  Executable sender_b = MustAssemble(R"(
start:
    li r8, 0
delay:
    addi r8, r8, 1
    li r9, 3000
    blt r8, r9, delay
    li r1, name
    li r2, 4
    sys open
    mov r1, r0
    li r2, msg
    li r3, 1
    sys write
    exit 0
.data
name: .ascii "ch:b"
msg: .ascii "B"
)");
  Executable receiver = MustAssemble(R"(
start:
    li r1, name_a
    li r2, 4
    sys open
    mov r5, r0
    li r1, name_b
    li r2, 4
    sys open
    mov r6, r0
    ; bunch {fd_a, fd_b}
    li r11, fds
    st r5, r11, 0
    st r6, r11, 4
    li r1, fds
    li r2, 2
    sys bunch
    mov r7, r0        ; group id
    li r8, 0          ; rounds done
again:
    mov r1, r7
    sys which
    mov r1, r0        ; readable fd
    li r2, buf
    li r3, 1
    sys read
    li r1, 2
    li r2, buf
    li r3, 1
    sys write
    addi r8, r8, 1
    li r9, 2
    blt r8, r9, again
    exit 0
.data
name_a: .ascii "ch:a"
name_b: .ascii "ch:b"
fds: .space 8
buf: .space 4
)");
  Machine::UserSpawnOptions ropts;
  ropts.with_tty = true;
  machine.SpawnUserProgram(0, sender_a);
  machine.SpawnUserProgram(0, sender_b);
  machine.SpawnUserProgram(1, receiver, ropts);
  ASSERT_TRUE(machine.RunUntil(
      [&] { return machine.exit_statuses().size() >= 3; }, 30'000'000));
  machine.Settle();
  // Sender A writes immediately, B after a delay: arrival order is "AB".
  EXPECT_EQ(machine.TtyOutput(0), "AB");
}

TEST(Features, TtyInputReachesReader) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r1, 2
    li r2, buf
    li r3, 16
    sys read           ; await terminal input
    mov r4, r0
    li r1, 2
    li r2, buf
    mov r3, r4
    sys write          ; echo back
    exit 0
.data
buf: .space 16
)");
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  Gpid pid = machine.SpawnUserProgram(0, prog, opts);
  machine.Run(30'000);  // give the write binding time to register
  machine.InjectTtyInput(0, "echo-me", machine.Now() + 1000);
  ASSERT_TRUE(machine.RunUntilAllExited(20'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 0);
  EXPECT_EQ(machine.TtyOutput(0), "echo-me");
}

TEST(Features, CtrlCDeliversSigint) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r1, handler
    sys sigset
    li r1, 2
    li r2, buf
    li r3, 4
    sys write          ; bind the tty line (first output)
wait:
    li r11, flag
    ld r2, r11, 0
    li r12, 0
    beq r2, r12, wait
    exit 3
handler:
    li r11, flag
    li r2, 1
    st r2, r11, 0
    sys sigret
.data
buf: .ascii "hi!\n"
flag: .word 0
)");
  Machine::UserSpawnOptions opts;
  opts.with_tty = true;
  Gpid pid = machine.SpawnUserProgram(1, prog, opts);
  machine.Run(40'000);
  machine.InjectTtyInput(0, "\x03", machine.Now() + 1000);
  ASSERT_TRUE(machine.RunUntilAllExited(30'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 3);
}

TEST(Features, EofOnPeerExit) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Peer writes one message and exits; reader reads the message, then gets
  // EOF (0) on the next read.
  Executable writer = MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r1, r0
    li r2, name
    li r3, 2
    sys write
    exit 0
.data
name: .ascii "ch:e"
)");
  Executable reader = MustAssemble(R"(
start:
    li r1, name
    li r2, 4
    sys open
    mov r10, r0
    mov r1, r10
    li r2, buf
    li r3, 8
    sys read
    li r12, 2
    bne r0, r12, bad    ; first read: 2 bytes
    mov r1, r10
    li r2, buf
    li r3, 8
    sys read
    li r12, 0
    bne r0, r12, bad    ; second read: EOF
    exit 0
bad:
    exit 1
.data
name: .ascii "ch:e"
buf: .space 8
)");
  machine.SpawnUserProgram(0, writer);
  Gpid rpid = machine.SpawnUserProgram(1, reader);
  ASSERT_TRUE(machine.RunUntilAllExited(30'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(rpid), 0);
}

TEST(Features, GetpidIsClusterTagged) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    sys getpid
    li r2, 24
    shr r1, r0, r2     ; top byte = cluster
    sys exit
)");
  Gpid p0 = machine.SpawnUserProgram(0, prog);
  Gpid p1 = machine.SpawnUserProgram(1, prog);
  ASSERT_TRUE(machine.RunUntilAllExited(5'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(p0), 0);
  EXPECT_EQ(machine.ExitStatus(p1), 1);
}

TEST(Features, DeliveryLatencyAggregatesAccrue) {
  Machine machine(TwoClusters());
  machine.Boot();
  // Cross-cluster writer/reader: every delivered message contributes one
  // bus-accept -> executive-arrival latency sample.
  Executable writer = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys write
    addi r8, r8, 1
    li r12, 8
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:dl"
buf: .word 7
)");
  Executable reader = MustAssemble(R"(
start:
    li r1, name
    li r2, 5
    sys open
    mov r10, r0
    li r8, 0
loop:
    mov r1, r10
    li r2, buf
    li r3, 4
    sys read
    addi r8, r8, 1
    li r12, 8
    blt r8, r12, loop
    exit 0
.data
name: .ascii "ch:dl"
buf: .word 0
)");
  machine.SpawnUserProgram(0, writer);
  machine.SpawnUserProgram(1, reader);
  ASSERT_TRUE(machine.RunUntilAllExited(30'000'000));
  machine.Settle();
  const Metrics& m = machine.metrics();
  EXPECT_GE(m.delivery_latency_samples, 8u);
  EXPECT_GT(m.delivery_latency_us_total, 0u);
  // Each sample crossed the bus, so the mean is at least one transit.
  EXPECT_GE(m.delivery_latency_us_total / m.delivery_latency_samples, 1u);
  // No crash: no rollforward time accrued.
  EXPECT_EQ(m.rollforward_replay_us, 0u);
}

TEST(Features, RollforwardReplayTimeAccruesOnCrash) {
  Machine machine(TwoClusters());
  machine.Boot();
  Executable prog = MustAssemble(R"(
start:
    li r8, 0
rounds:
    li r9, 0
spin:
    addi r9, r9, 1
    li r10, 4000
    blt r9, r10, spin
    addi r8, r8, 1
    li r10, 8
    blt r8, r10, rounds
    exit 3
)");
  Machine::UserSpawnOptions opts;
  opts.backup_cluster = 0;
  Gpid pid = machine.SpawnUserProgram(1, prog, opts);
  machine.Run(50'000);
  ASSERT_EQ(machine.metrics().rollforward_replay_us, 0u);
  machine.CrashCluster(1);
  ASSERT_TRUE(machine.RunUntilAllExited(60'000'000));
  machine.Settle();
  EXPECT_EQ(machine.ExitStatus(pid), 3);
  const Metrics& m = machine.metrics();
  EXPECT_GE(m.takeovers, 1u);
  // Crash handling (backup promotion + server work) takes measurable time.
  EXPECT_GT(m.rollforward_replay_us, 0u);
}

}  // namespace
}  // namespace auragen
